package skyway_test

import (
	"bytes"
	"fmt"

	"skyway"
)

// Transfer one object graph between two runtimes — the smallest complete
// Skyway program.
func Example() {
	cp := skyway.NewClassPath(
		&skyway.ClassDef{Name: "Point", Fields: []skyway.FieldDef{
			{Name: "x", Kind: skyway.Int32},
			{Name: "y", Kind: skyway.Int32},
		}},
	)
	reg := skyway.NewInProcRegistry()
	sender, _ := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "a", Registry: reg.Client()})
	receiver, _ := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "b", Registry: reg.Client()})

	k := sender.MustLoad("Point")
	p := sender.MustNew(k)
	sender.SetInt(p, k.FieldByName("x"), 3)
	sender.SetInt(p, k.FieldByName("y"), 4)

	var wire bytes.Buffer
	w := skyway.NewService(sender).NewWriter(&wire)
	_ = w.WriteObject(p)
	_ = w.Close()

	remote, _ := skyway.NewReader(receiver, &wire).ReadObject()
	rk := receiver.MustLoad("Point")
	fmt.Println(receiver.GetInt(remote, rk.FieldByName("x")), receiver.GetInt(remote, rk.FieldByName("y")))
	// Output: 3 4
}

// Shuffle phases let the same objects be re-sent in later rounds without
// any per-object cleanup: bumping the phase invalidates the previous
// round's bookkeeping wholesale.
func ExampleService_ShuffleStart() {
	cp := skyway.NewClassPath(
		&skyway.ClassDef{Name: "Rec", Fields: []skyway.FieldDef{{Name: "n", Kind: skyway.Int64}}},
	)
	reg := skyway.NewInProcRegistry()
	rt, _ := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "node", Registry: reg.Client()})
	svc := skyway.NewService(rt)

	k := rt.MustLoad("Rec")
	obj := rt.MustNew(k)
	h := rt.Pin(obj)
	defer h.Release()

	send := func() uint64 {
		var buf bytes.Buffer
		w := svc.NewWriter(&buf)
		_ = w.WriteObject(h.Addr())
		_ = w.Close()
		return w.Objects
	}
	fmt.Println("phase 1 copies:", send())
	svc.ShuffleStart()
	fmt.Println("phase 2 copies:", send())
	// Output:
	// phase 1 copies: 1
	// phase 2 copies: 1
}

// The compact wire mode (the paper's §5.2 future work) trades a little CPU
// for substantially fewer bytes.
func ExampleWithCompactHeaders() {
	cp := skyway.NewClassPath(
		&skyway.ClassDef{Name: "Rec", Fields: []skyway.FieldDef{{Name: "n", Kind: skyway.Int64}}},
	)
	reg := skyway.NewInProcRegistry()
	rt, _ := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "node", Registry: reg.Client()})
	svc := skyway.NewService(rt)
	k := rt.MustLoad("Rec")
	obj := rt.MustNew(k)
	h := rt.Pin(obj)
	defer h.Release()

	var std, compact bytes.Buffer
	w := svc.NewWriter(&std)
	_ = w.WriteObject(h.Addr())
	_ = w.Close()
	svc.ShuffleStart()
	w = svc.NewWriter(&compact, skyway.WithCompactHeaders())
	_ = w.WriteObject(h.Addr())
	_ = w.Close()
	fmt.Println(compact.Len() < std.Len())
	// Output: true
}
