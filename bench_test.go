package skyway_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices DESIGN.md calls out. The
// benchmarks drive the same harnesses as the cmd/ binaries; run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for paper-vs-measured notes.

import (
	"bytes"
	"fmt"
	"testing"

	"skyway"
	"skyway/internal/batch"
	"skyway/internal/core"
	"skyway/internal/datagen"
	"skyway/internal/experiments"
	"skyway/internal/klass"
	"skyway/internal/netsim"
	"skyway/internal/registry"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

// --- Figure 7 ---------------------------------------------------------------

// BenchmarkFig7JSBS reports per-library S/D+network time on the JSBS media
// workload. One benchmark iteration is a full 12-library comparison; the
// per-library results are attached as metrics.
func BenchmarkFig7JSBS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunJSBS(1500, netsim.Paper1GbE())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				b.ReportMetric(float64(r.Ser.Microseconds()), r.Lib+"-ser-µs")
				b.ReportMetric(float64(r.Deser.Microseconds()), r.Lib+"-deser-µs")
			}
		}
	}
}

// --- Figure 3 ---------------------------------------------------------------

// BenchmarkFig3Breakdown runs the §2.2 motivation experiment: TC over the
// LiveJournal-shaped graph under Kryo and the Java serializer.
func BenchmarkFig3Breakdown(b *testing.B) {
	cfg := experiments.DefaultSparkConfig()
	cfg.GraphScale = 0.05
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				b.ReportMetric(r.Breakdown.SDShare()*100, r.Serializer+"-sd-share-%")
			}
		}
	}
}

// --- Figure 8(a) / Table 2 ----------------------------------------------------

// benchSparkCell benchmarks one (app, serializer) cell over the
// LiveJournal-shaped graph, reporting the measured S/D microseconds per
// shuffled record.
func benchSparkCell(b *testing.B, app experiments.SparkApp, ser string) {
	cfg := experiments.DefaultSparkConfig()
	cfg.GraphScale = 0.05
	spec, err := datagen.GraphByName("LiveJournal", cfg.GraphScale)
	if err != nil {
		b.Fatal(err)
	}
	g := spec.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd, _, _, err := experiments.SparkRun(app, g, ser, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && bd.Records > 0 {
			b.ReportMetric(float64((bd.Ser+bd.Deser).Microseconds())/float64(bd.Records)*1000, "sd-ns/record")
			b.ReportMetric(float64(bd.ShuffleBytes)/float64(bd.Records), "bytes/record")
		}
	}
}

// BenchmarkFig8aSpark covers the Figure 8(a) matrix (LiveJournal-shaped
// graph; the other graphs differ only in scale and skew).
func BenchmarkFig8aSpark(b *testing.B) {
	for _, app := range experiments.SparkApps() {
		for _, ser := range experiments.SparkSerializers() {
			b.Run(fmt.Sprintf("%s/%s", app, ser), func(b *testing.B) {
				benchSparkCell(b, app, ser)
			})
		}
	}
}

// BenchmarkTable2Summary produces the Table 2 normalized summary in one
// iteration (all apps, one graph, three serializers).
func BenchmarkTable2Summary(b *testing.B) {
	cfg := experiments.DefaultSparkConfig()
	cfg.GraphScale = 0.05
	graphs := []datagen.GraphSpec{mustGraph(b, "LiveJournal", cfg.GraphScale)}
	for i := 0; i < b.N; i++ {
		cells, err := experiments.RunSparkMatrix(cfg, graphs, experiments.SparkApps())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Table 2 kryo:   %s", experiments.Table2(cells)["kryo"].Row())
			b.Logf("Table 2 skyway: %s", experiments.Table2(cells)["skyway"].Row())
		}
	}
}

func mustGraph(b *testing.B, name string, scale float64) datagen.GraphSpec {
	b.Helper()
	spec, err := datagen.GraphByName(name, scale)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// --- Table 1 -----------------------------------------------------------------

// BenchmarkTable1GraphGen measures generation of the four Table 1 datasets.
func BenchmarkTable1GraphGen(b *testing.B) {
	for _, spec := range datagen.PaperGraphs(0.05) {
		b.Run(spec.Name, func(b *testing.B) {
			var edges int
			for i := 0; i < b.N; i++ {
				g := spec.Generate()
				edges = g.M
			}
			b.ReportMetric(float64(edges), "edges")
		})
	}
}

// --- Figure 8(b) / Tables 3-4 ---------------------------------------------------

// BenchmarkFig8bFlink covers the Figure 8(b) matrix: QA-QE under the
// built-in tuple serializers and Skyway.
func BenchmarkFig8bFlink(b *testing.B) {
	gen := datagen.GenTPCH(0.3, 2024)
	for _, q := range batch.AllQueries() {
		for _, mode := range []string{"flink-builtin", "skyway"} {
			b.Run(fmt.Sprintf("%s/%s", q, mode), func(b *testing.B) {
				factory := batch.BuiltinFactory()
				if mode == "skyway" {
					factory = batch.SkywayFactory()
				}
				for i := 0; i < b.N; i++ {
					cp := klass.NewPath()
					batch.TPCHClasses(cp)
					c, err := batch.NewCluster(cp, batch.Config{Workers: 3}, factory)
					if err != nil {
						b.Fatal(err)
					}
					db, err := batch.Load(c, gen)
					if err != nil {
						b.Fatal(err)
					}
					b1, _, err := batch.Run(c, q, db)
					if err != nil {
						b.Fatal(err)
					}
					db.Free()
					if i == 0 && b1.Records > 0 {
						b.ReportMetric(float64((b1.Ser+b1.Deser).Microseconds())/float64(b1.Records)*1000, "sd-ns/record")
					}
				}
			})
		}
	}
}

// BenchmarkTable4Summary produces the Table 4 normalized summary.
func BenchmarkTable4Summary(b *testing.B) {
	cfg := experiments.DefaultFlinkConfig()
	cfg.SF = 0.3
	for i := 0; i < b.N; i++ {
		cells, err := experiments.RunFlinkMatrix(cfg, batch.AllQueries())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Table 4 skyway: %s", experiments.Table4(cells).Row())
		}
	}
}

// --- §5.2 extras ----------------------------------------------------------------

// BenchmarkMemOverhead measures the baddr header word's peak-heap cost.
func BenchmarkMemOverhead(b *testing.B) {
	cfg := experiments.DefaultSparkConfig()
	cfg.GraphScale = 0.05
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMemOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range res {
				b.ReportMetric(r.OverheadFraction*100, string(r.App)+"-overhead-%")
			}
		}
	}
}

// BenchmarkExtraBytes measures Skyway's byte inflation vs Kryo and its
// composition (headers / padding / pointers).
func BenchmarkExtraBytes(b *testing.B) {
	cfg := experiments.DefaultSparkConfig()
	cfg.GraphScale = 0.05
	for i := 0; i < b.N; i++ {
		eb, err := experiments.RunExtraBytes(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(eb.SkywayBytes)/float64(eb.KryoBytes), "bytes-vs-kryo")
			b.ReportMetric(eb.HeaderShare*100, "hdr-share-%")
			b.ReportMetric(eb.PadShare*100, "pad-share-%")
			b.ReportMetric(eb.PtrShare*100, "ptr-share-%")
		}
	}
}

// --- ablations -------------------------------------------------------------------

// ablationEnv builds a sender/receiver pair over the media schema.
func ablationEnv(b *testing.B) (*vm.Runtime, *vm.Runtime) {
	b.Helper()
	cp := klass.NewPath()
	datagen.MediaClasses(cp)
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "abl-snd", Registry: registry.InProc{R: reg}})
	if err != nil {
		b.Fatal(err)
	}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "abl-rcv", Registry: registry.InProc{R: reg}})
	if err != nil {
		b.Fatal(err)
	}
	return snd, rcv
}

// BenchmarkAblationRehash isolates the hashcode-preservation win: receiving
// a HashMap via Skyway (layout valid as-is) vs a reflective serializer that
// must rehash.
func BenchmarkAblationRehash(b *testing.B) {
	buildMap := func(rt *vm.Runtime, entries int) skyway.Addr {
		m, err := rt.NewHashMap(entries)
		if err != nil {
			b.Fatal(err)
		}
		mp := rt.Pin(m)
		defer mp.Release()
		for i := 0; i < entries; i++ {
			k := rt.MustNewString(fmt.Sprintf("key-%d", i))
			kp := rt.Pin(k)
			v := rt.MustNewString("value")
			vp := rt.Pin(v)
			if err := rt.HashMapPut(mp.Addr(), kp.Addr(), vp.Addr()); err != nil {
				b.Fatal(err)
			}
			kp.Release()
			vp.Release()
		}
		return mp.Addr()
	}
	const entries = 500

	b.Run("skyway-no-rehash", func(b *testing.B) {
		snd, rcv := ablationEnv(b)
		m := buildMap(snd, entries)
		mp := snd.Pin(m)
		defer mp.Release()
		sky := core.New(snd)
		for i := 0; i < b.N; i++ {
			sky.ShuffleStart()
			var buf bytes.Buffer
			w := sky.NewWriter(&buf)
			if err := w.WriteObject(mp.Addr()); err != nil {
				b.Fatal(err)
			}
			w.Close()
			r := core.NewReader(rcv, &buf)
			got, err := r.ReadObject()
			if err != nil {
				b.Fatal(err)
			}
			if !rcv.HashMapValid(got) {
				b.Fatal("skyway-received map needs rehash")
			}
			r.Free()
		}
	})
	b.Run("kryo-rehash", func(b *testing.B) {
		snd, rcv := ablationEnv(b)
		m := buildMap(snd, entries)
		mp := snd.Pin(m)
		defer mp.Release()
		reg := serial.NewRegistration(datagen.MediaClassNames()...)
		reg.Register(vm.HashMapClass)
		reg.Register(vm.HashMapNodeClass)
		reg.Register(vm.HashMapNodeClass + "[]")
		codec := serial.KryoCodec(reg)
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			enc := codec.NewEncoder(snd, &buf)
			if err := enc.Write(mp.Addr()); err != nil {
				b.Fatal(err)
			}
			enc.Flush()
			got, err := codec.NewDecoder(rcv, &buf).Read()
			if err != nil {
				b.Fatal(err)
			}
			if !rcv.HashMapValid(got) {
				b.Fatal("kryo decode left the map invalid")
			}
		}
	})
}

// BenchmarkAblationTypeStrings compares global integer type IDs against
// Java-style per-stream type strings: bytes and time for the same records.
func BenchmarkAblationTypeStrings(b *testing.B) {
	for _, mode := range []string{"registered-ids", "type-strings"} {
		b.Run(mode, func(b *testing.B) {
			snd, rcv := ablationEnv(b)
			gen := datagen.NewMediaGen(snd, 3)
			roots, release, err := gen.Batch(50)
			if err != nil {
				b.Fatal(err)
			}
			defer release()
			var codec serial.Codec
			if mode == "registered-ids" {
				codec = serial.KryoOptCodec(serial.NewRegistration(datagen.MediaClassNames()...))
			} else {
				codec = serial.JavaCodec()
			}
			var bytesOut int64
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				for _, root := range roots {
					enc := codec.NewEncoder(snd, &buf) // fresh stream: strings recur
					if err := enc.Write(root); err != nil {
						b.Fatal(err)
					}
					enc.Flush()
				}
				bytesOut = int64(buf.Len())
				dec := codec.NewDecoder(rcv, &buf)
				for {
					if _, err := dec.Read(); err != nil {
						break
					}
				}
			}
			b.ReportMetric(float64(bytesOut)/float64(len(roots)), "bytes/record")
		})
	}
}

// BenchmarkAblationStreaming compares flush-as-you-go segments against one
// monolithic buffer for a large transfer.
func BenchmarkAblationStreaming(b *testing.B) {
	for _, mode := range []struct {
		name string
		size int
	}{
		{"streaming-64KiB-segments", 64 << 10},
		{"buffer-everything", 64 << 20},
	} {
		b.Run(mode.name, func(b *testing.B) {
			snd, rcv := ablationEnv(b)
			gen := datagen.NewMediaGen(snd, 5)
			roots, release, err := gen.Batch(400)
			if err != nil {
				b.Fatal(err)
			}
			defer release()
			sky := core.New(snd)
			for i := 0; i < b.N; i++ {
				sky.ShuffleStart()
				var buf bytes.Buffer
				w := sky.NewWriter(&buf, core.WithBufferSize(mode.size))
				for _, root := range roots {
					if err := w.WriteObject(root); err != nil {
						b.Fatal(err)
					}
				}
				w.Close()
				r := core.NewReader(rcv, &buf)
				if _, err := r.ReadAll(); err != nil {
					b.Fatal(err)
				}
				r.Free()
			}
		})
	}
}

// BenchmarkAblationTopMarks compares sender-side top marks against the
// receiver re-walking the graph to find roots (the design top marks avoid).
func BenchmarkAblationTopMarks(b *testing.B) {
	snd, rcv := ablationEnv(b)
	gen := datagen.NewMediaGen(snd, 9)
	roots, release, err := gen.Batch(200)
	if err != nil {
		b.Fatal(err)
	}
	defer release()
	sky := core.New(snd)

	transfer := func() *core.Reader {
		sky.ShuffleStart()
		var buf bytes.Buffer
		w := sky.NewWriter(&buf)
		for _, root := range roots {
			if err := w.WriteObject(root); err != nil {
				b.Fatal(err)
			}
		}
		w.Close()
		return core.NewReader(rcv, &buf)
	}

	b.Run("top-marks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := transfer()
			got, err := r.ReadAll()
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != len(roots) {
				b.Fatal("root count mismatch")
			}
			r.Free()
		}
	})
	b.Run("receiver-traversal", func(b *testing.B) {
		// Simulate the alternative: roots must be recovered by walking
		// the received graph and finding objects no other object
		// references (a full traversal the paper's top marks avoid).
		for i := 0; i < b.N; i++ {
			r := transfer()
			got, err := r.ReadAll()
			if err != nil {
				b.Fatal(err)
			}
			// The extra pass: walk every object's references.
			referenced := make(map[skyway.Addr]bool)
			var walk func(a skyway.Addr)
			seen := make(map[skyway.Addr]bool)
			walk = func(a skyway.Addr) {
				if a == skyway.Null || seen[a] {
					return
				}
				seen[a] = true
				rcv.RefSlots(a, func(off uint32) {
					ref := skyway.Addr(rcv.Heap.Load(a, off, klass.Ref))
					if ref != skyway.Null {
						referenced[ref] = true
						walk(ref)
					}
				})
			}
			for _, g := range got {
				walk(g)
			}
			r.Free()
		}
	})
}

// BenchmarkAblationBaddr compares the baddr header word against the
// hash-table visited set a vanilla heap layout forces on the writer.
func BenchmarkAblationBaddr(b *testing.B) {
	for _, mode := range []struct {
		name  string
		baddr bool
	}{
		{"baddr-header-word", true},
		{"hash-table-visited-set", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cp := klass.NewPath()
			datagen.MediaClasses(cp)
			reg := registry.NewRegistry()
			hc := skyway.DefaultHeapConfig()
			hc.Layout = klass.Layout{Baddr: mode.baddr}
			snd, err := vm.NewRuntime(cp, vm.Options{Name: "abl", Heap: hc, Registry: registry.InProc{R: reg}})
			if err != nil {
				b.Fatal(err)
			}
			gen := datagen.NewMediaGen(snd, 4)
			roots, release, err := gen.Batch(300)
			if err != nil {
				b.Fatal(err)
			}
			defer release()
			sky := core.New(snd)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sky.ShuffleStart()
				w := sky.NewWriter(discard{}, core.WithTargetLayout(klass.Layout{Baddr: true}))
				for _, root := range roots {
					if err := w.WriteObject(root); err != nil {
						b.Fatal(err)
					}
				}
				w.Close()
			}
		})
	}
}

// BenchmarkAblationCompact quantifies the §5.2 future-work tradeoff: the
// compact wire encoding's byte savings vs its CPU cost, against the
// standard whole-image mode, end to end (send + receive).
func BenchmarkAblationCompact(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts []core.WriterOption
	}{
		{"standard", nil},
		{"compact-headers", []core.WriterOption{core.WithCompactHeaders()}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			snd, rcv := ablationEnv(b)
			gen := datagen.NewMediaGen(snd, 6)
			roots, release, err := gen.Batch(300)
			if err != nil {
				b.Fatal(err)
			}
			defer release()
			sky := core.New(snd)
			var wire int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sky.ShuffleStart()
				var buf bytes.Buffer
				w := sky.NewWriter(&buf, mode.opts...)
				for _, root := range roots {
					if err := w.WriteObject(root); err != nil {
						b.Fatal(err)
					}
				}
				w.Close()
				wire = buf.Len()
				r := core.NewReader(rcv, &buf)
				if _, err := r.ReadAll(); err != nil {
					b.Fatal(err)
				}
				r.Free()
			}
			b.ReportMetric(float64(wire)/300, "wire-bytes/record")
		})
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkTransferThroughput measures raw Skyway sender+receiver throughput
// on a large primitive-array payload (the best case for whole-object copy)
// and on a pointer-heavy graph (the worst case, every slot relativized).
func BenchmarkTransferThroughput(b *testing.B) {
	b.Run("primitive-arrays", func(b *testing.B) {
		snd, rcv := ablationEnv(b)
		ak := snd.MustLoad("double[]")
		arr := snd.MustNewArray(ak, 128<<10) // 1 MiB payload
		ah := snd.Pin(arr)
		defer ah.Release()
		sky := core.New(snd)
		b.SetBytes(int64(128 << 10 * 8))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sky.ShuffleStart()
			var buf bytes.Buffer
			w := sky.NewWriter(&buf)
			if err := w.WriteObject(ah.Addr()); err != nil {
				b.Fatal(err)
			}
			w.Close()
			r := core.NewReader(rcv, &buf)
			if _, err := r.ReadObject(); err != nil {
				b.Fatal(err)
			}
			r.Free()
		}
	})
	b.Run("pointer-graph", func(b *testing.B) {
		snd, rcv := ablationEnv(b)
		gen := datagen.NewMediaGen(snd, 12)
		roots, release, err := gen.Batch(500)
		if err != nil {
			b.Fatal(err)
		}
		defer release()
		sky := core.New(snd)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sky.ShuffleStart()
			var buf bytes.Buffer
			w := sky.NewWriter(&buf)
			for _, root := range roots {
				if err := w.WriteObject(root); err != nil {
					b.Fatal(err)
				}
			}
			w.Close()
			if i == 0 {
				b.SetBytes(int64(buf.Len()))
			}
			r := core.NewReader(rcv, &buf)
			if _, err := r.ReadAll(); err != nil {
				b.Fatal(err)
			}
			r.Free()
		}
	})
}
