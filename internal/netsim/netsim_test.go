package netsim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPaper1GbERates(t *testing.T) {
	m := Paper1GbE()
	// Effective rates: 1 GB of remote bytes costs ~1 s of blocking time.
	got := m.NetTime(1_000_000_000)
	if got < time.Second || got > time.Second+10*time.Millisecond {
		t.Errorf("NetTime(1GB) = %v", got)
	}
	if m.WriteTime(700_000_000) != time.Second {
		t.Errorf("WriteTime(700MB) = %v", m.WriteTime(700_000_000))
	}
	if m.ReadTime(1_200_000_000) != time.Second {
		t.Errorf("ReadTime(1.2GB) = %v", m.ReadTime(1_200_000_000))
	}
}

// The calibration target: at the paper's Figure 3 volumes (~14 GB shuffled,
// ~1400 s run), modelled write and read I/O must land in the low single-
// digit percent range the paper measured (1.4% / 1.1% under Kryo).
func TestCalibrationMatchesFig3Shares(t *testing.T) {
	m := Paper1GbE()
	const run = 1400.0 // seconds
	write := m.WriteTime(14_000_000_000).Seconds()
	read := m.FetchTime(5_000_000_000, 9_000_000_000).Seconds()
	if share := write / run; share < 0.005 || share > 0.03 {
		t.Errorf("write share %.1f%%, paper ~1.4%%", share*100)
	}
	if share := read / run; share < 0.005 || share > 0.03 {
		t.Errorf("read share %.1f%%, paper ~1.1%%", share*100)
	}
}

func TestZeroBytesCostNothing(t *testing.T) {
	m := Paper1GbE()
	if m.NetTime(0) != 0 || m.WriteTime(0) != 0 || m.ReadTime(0) != 0 {
		t.Error("zero-byte transfer has nonzero cost")
	}
	if m.FetchTime(0, 0) != 0 {
		t.Error("empty fetch has nonzero cost")
	}
}

func TestFetchSplitsLocalRemote(t *testing.T) {
	m := Paper1GbE()
	localOnly := m.FetchTime(1_000_000, 0)
	remoteOnly := m.FetchTime(0, 1_000_000)
	if remoteOnly <= localOnly {
		t.Errorf("remote fetch (%v) not costlier than local (%v)", remoteOnly, localOnly)
	}
	both := m.FetchTime(1_000_000, 1_000_000)
	if both != localOnly+remoteOnly {
		t.Errorf("FetchTime not additive: %v vs %v", both, localOnly+remoteOnly)
	}
}

func TestInfinibandFasterThanEthernet(t *testing.T) {
	e, ib := Paper1GbE(), Infiniband()
	if ib.NetTime(10_000_000) >= e.NetTime(10_000_000) {
		t.Error("InfiniBand not faster than 1GbE")
	}
}

// The paper's §1 claim at the model level: +50% bytes on 1 GbE raises the
// paper's TC/LiveJournal execution by only ~4% because I/O is a small slice
// of total time. Verify the model arithmetic: +50% bytes = +50% wire time.
func TestExtraBytesProportionality(t *testing.T) {
	m := Paper1GbE()
	base := m.NetTime(100_000_000) - m.NetLatency
	more := m.NetTime(150_000_000) - m.NetLatency
	ratio := float64(more) / float64(base)
	if ratio < 1.49 || ratio > 1.51 {
		t.Errorf("wire-time ratio = %f, want 1.5", ratio)
	}
}

// Property: costs are monotone in bytes and never negative.
func TestMonotoneQuick(t *testing.T) {
	m := Paper1GbE()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return m.NetTime(x) <= m.NetTime(y) &&
			m.WriteTime(x) <= m.WriteTime(y) &&
			m.ReadTime(x) <= m.ReadTime(y) &&
			m.NetTime(x) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Traffic is the one piece of netsim state shared across concurrent
// executor tasks; hammer it from many goroutines and check the totals.
func TestTrafficConcurrentAdders(t *testing.T) {
	var tr Traffic
	const workers, rounds = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tr.AddWrite(10)
				tr.AddFetch(3, 7)
				tr.AddFetch(5, 0) // all-local fetch: no transfer counted
			}
		}()
	}
	wg.Wait()
	s := tr.Snapshot()
	if s.Written != workers*rounds*10 {
		t.Errorf("written = %d", s.Written)
	}
	if s.LocalRead != workers*rounds*8 || s.RemoteRead != workers*rounds*7 {
		t.Errorf("local = %d remote = %d", s.LocalRead, s.RemoteRead)
	}
	if s.RemoteXfers != workers*rounds {
		t.Errorf("remote transfers = %d, want %d", s.RemoteXfers, workers*rounds)
	}
	if s.LocalRead+s.RemoteRead != s.Written+workers*rounds*5 {
		t.Errorf("byte balance off: %+v", s)
	}
}
