// Package netsim models the cluster fabric of the paper's testbed: node
// topology and the bandwidth-bound costs of disk and network I/O. CPU-side
// serialization work is really executed and measured; I/O time is computed
// from byte counts with this model (DESIGN.md, substitutions), preserving
// the paper's crossover analysis — e.g. §1's observation that shipping 50%
// more bytes over 1000 Mb/s Ethernet costs only ~4% while eliminating S/D
// saves >20%.
package netsim

import (
	"sync/atomic"
	"time"

	"skyway/internal/fault"
	"skyway/internal/obs"
)

// Modelled-fabric counters, exported on /metrics.
var (
	ctrSpillBytes    = obs.NewCounter("skyway_io_spill_bytes_total", "Bytes spilled to modelled shuffle files.")
	ctrLocalReadB    = obs.NewCounter("skyway_io_local_read_bytes_total", "Bytes fetched from modelled local disk.")
	ctrRemoteReadB   = obs.NewCounter("skyway_io_remote_read_bytes_total", "Bytes fetched across the modelled network.")
	ctrRemoteFetches = obs.NewCounter("skyway_io_remote_fetches_total", "Remote shuffle fetches (per-transfer latency units).")
)

// CostModel holds sustained bandwidths in bytes/second plus fixed per-
// transfer latencies.
type CostModel struct {
	// NetBandwidth models the inter-node link (paper: 1000 Mb/s Ethernet).
	NetBandwidth float64
	// DiskWriteBandwidth and DiskReadBandwidth model the local SSD that
	// shuffle files are spilled to and fetched from.
	DiskWriteBandwidth float64
	DiskReadBandwidth  float64
	// NetLatency is added once per remote fetch.
	NetLatency time.Duration
	// MemBandwidth models sustained single-core memcpy throughput — the
	// ceiling a memcpy-bound encode/decode path converges to once the
	// per-object work is gone (cmd/speedbench measures the real machine's
	// value; this is the modelled cluster's).
	MemBandwidth float64
	// Trace, when set, receives one modelled-I/O span per public cost query.
	// The span's duration is the modelled time, anchored at the query (the
	// fabric charges time without occupying wall-clock).
	Trace *obs.Tracer
}

// emit records one modelled-I/O span; cost math below goes through the
// private helpers so a composite query like FetchTime emits exactly once.
func (m CostModel) emit(name string, bytes int64, d time.Duration) {
	if m.Trace == nil || d <= 0 || !obs.Enabled() {
		return
	}
	m.Trace.Emit("io", name, time.Now(), d, obs.I64("bytes", bytes))
}

// Paper1GbE is the evaluation cluster's fabric: 1000 Mb/s Ethernet and one
// SATA SSD per node (§5). The bandwidths are *effective blocking* rates
// calibrated against the paper's own measured I/O shares rather than raw
// device speeds: Figure 3 reports write I/O at 1.4% and read I/O (network
// included) at 1.1% of a ~1400 s TriangleCounting run that shuffles ~14 GB,
// which is only possible because shuffle writes land in the page cache and
// Spark prefetches remote blocks concurrently with reduce computation. Raw
// device rates would overcharge every serializer's bytes several-fold.
func Paper1GbE() CostModel {
	return CostModel{
		NetBandwidth:       1.0e9, // 1000 Mb/s wire, ~87% hidden by prefetch overlap
		DiskWriteBandwidth: 700e6, // SSD behind the page cache
		DiskReadBandwidth:  1.2e9, // mostly page-cache hits
		NetLatency:         200 * time.Microsecond,
		MemBandwidth:       10e9, // single-core sustained memcpy, DDR4-era
	}
}

// Infiniband models the faster fabric the motivation experiment ran on
// (§2.2), where network cost is negligible next to S/D.
func Infiniband() CostModel {
	return CostModel{
		NetBandwidth:       5e9,
		DiskWriteBandwidth: 700e6,
		DiskReadBandwidth:  1.2e9,
		NetLatency:         50 * time.Microsecond,
		MemBandwidth:       10e9,
	}
}

func cost(bytes int64, bw float64) time.Duration {
	if bw <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bw * float64(time.Second))
}

func (m CostModel) netTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return m.NetLatency + cost(n, m.NetBandwidth)
}

func (m CostModel) readTime(n int64) time.Duration { return cost(n, m.DiskReadBandwidth) }

// NetTime returns the wire time for one remote transfer of n bytes.
func (m CostModel) NetTime(n int64) time.Duration {
	d := m.netTime(n)
	m.emit("net.transfer", n, d)
	return d
}

// WriteTime returns the disk time to spill n bytes of shuffle output.
func (m CostModel) WriteTime(n int64) time.Duration {
	d := cost(n, m.DiskWriteBandwidth)
	m.emit("disk.write", n, d)
	return d
}

// MemcpyTime returns the time to move n bytes through memory at the
// modelled memcpy ceiling — the floor under any serializer's encode or
// decode of n bytes, however cheap its per-object work.
func (m CostModel) MemcpyTime(n int64) time.Duration {
	d := cost(n, m.MemBandwidth)
	m.emit("mem.copy", n, d)
	return d
}

// ReadTime returns the disk time to read n bytes of local shuffle data.
func (m CostModel) ReadTime(n int64) time.Duration {
	d := m.readTime(n)
	m.emit("disk.read", n, d)
	return d
}

// FetchTime returns the read-side cost of a shuffle fetch: local bytes come
// off disk, remote bytes additionally cross the network (the paper folds
// network cost into read I/O, §2.2).
func (m CostModel) FetchTime(localBytes, remoteBytes int64) time.Duration {
	d := m.readTime(localBytes) + m.readTime(remoteBytes) + m.netTime(remoteBytes)
	// Failpoint: congestion on the modelled wire — charge extra fabric time
	// (arg duration, default 1ms) without touching any real clock.
	if fault.Eval(fault.NetsimFetchSlow) {
		d += fault.DurationArg(fault.NetsimFetchSlow, time.Millisecond)
	}
	m.emit("shuffle.fetch", localBytes+remoteBytes, d)
	return d
}

// Traffic accumulates the fabric's byte accounting for one simulated
// deployment: shuffle spill writes and local/remote fetches. Executor tasks
// running on concurrent goroutines record into one shared Traffic, so every
// counter is maintained atomically; a zero Traffic is ready to use.
type Traffic struct {
	written     int64
	localRead   int64
	remoteRead  int64
	remoteXfers int64
}

// AddWrite records n bytes spilled to shuffle files.
func (t *Traffic) AddWrite(n int64) {
	if n > 0 {
		atomic.AddInt64(&t.written, n)
		ctrSpillBytes.Add(n)
	}
}

// AddFetch records one shuffle fetch of local disk bytes and remote network
// bytes. A remote fetch of more than zero bytes counts as one transfer (the
// per-transfer latency unit of CostModel.NetTime).
func (t *Traffic) AddFetch(local, remote int64) {
	if local > 0 {
		atomic.AddInt64(&t.localRead, local)
		ctrLocalReadB.Add(local)
	}
	if remote > 0 {
		atomic.AddInt64(&t.remoteRead, remote)
		atomic.AddInt64(&t.remoteXfers, 1)
		ctrRemoteReadB.Add(remote)
		ctrRemoteFetches.Inc()
	}
}

// TrafficSnapshot is a consistent copy of the counters.
type TrafficSnapshot struct {
	Written     int64 // bytes spilled to shuffle files
	LocalRead   int64 // bytes fetched from local disk
	RemoteRead  int64 // bytes fetched across the network
	RemoteXfers int64 // remote fetches (latency units)
}

// Snapshot returns the current counter values.
func (t *Traffic) Snapshot() TrafficSnapshot {
	return TrafficSnapshot{
		Written:     atomic.LoadInt64(&t.written),
		LocalRead:   atomic.LoadInt64(&t.localRead),
		RemoteRead:  atomic.LoadInt64(&t.remoteRead),
		RemoteXfers: atomic.LoadInt64(&t.remoteXfers),
	}
}
