package netsim

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"skyway/internal/transport"
)

// LocalTransport is the in-process transport.Transport: the historical
// simulator behind the seam. Blocks live in a mutex-guarded map (or, with
// SpillDir set, in real block files whose reads and writes are measured),
// and the analytic CostModel prices whatever is not measured — exactly the
// accounting the single-process cluster has always reported.
type LocalTransport struct {
	Model CostModel
	// SpillDir, when set, stores blocks as real files there: write and read
	// times become measured, and only the remote network hop stays modelled
	// (the simulated cluster shares one machine).
	SpillDir string

	mu     sync.Mutex
	bcasts map[int][]byte
}

// NewLocalTransport builds the in-process transport over a cost model.
func NewLocalTransport(model CostModel, spillDir string) *LocalTransport {
	return &LocalTransport{Model: model, SpillDir: spillDir, bcasts: make(map[int][]byte)}
}

// NewShuffle implements transport.Transport.
func (t *LocalTransport) NewShuffle(seq int) (transport.Shuffle, error) {
	return &localShuffle{t: t, seq: seq, blocks: transport.NewBlockStore[blockKey]()}, nil
}

// WriteCost implements transport.Transport: modelled from bytes, or the
// measured file-write time when spilling to real files.
func (t *LocalTransport) WriteCost(n int64, measured time.Duration) time.Duration {
	if t.SpillDir != "" {
		return measured
	}
	return t.Model.WriteTime(n)
}

// FetchCost implements transport.Transport: fully modelled in-memory, or
// measured disk reads plus a modelled remote hop when spilling.
func (t *LocalTransport) FetchCost(local, remote int64, measured time.Duration) time.Duration {
	if t.SpillDir != "" {
		return measured + t.Model.NetTime(remote)
	}
	return t.Model.FetchTime(local, remote)
}

// Broadcast implements transport.Transport.
func (t *LocalTransport) Broadcast(seq int, payload []byte) (time.Duration, error) {
	t.mu.Lock()
	t.bcasts[seq] = payload
	t.mu.Unlock()
	return 0, nil
}

// FetchBroadcast implements transport.Transport. Every executor decodes from
// the same backing array; decoders only read it.
func (t *LocalTransport) FetchBroadcast(seq, ex int) ([]byte, time.Duration, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.bcasts[seq]
	if !ok {
		return nil, 0, fmt.Errorf("netsim: broadcast %d not published", seq)
	}
	return p, 0, nil
}

// BroadcastCost implements transport.Transport: one modelled network
// transfer per receiving executor.
func (t *LocalTransport) BroadcastCost(n int64, measured time.Duration) time.Duration {
	return measured + t.Model.NetTime(n)
}

// Close implements transport.Transport.
func (t *LocalTransport) Close() error {
	t.mu.Lock()
	t.bcasts = make(map[int][]byte)
	t.mu.Unlock()
	return nil
}

type blockKey struct{ src, dst int }

// localShuffle is one round's block store: serialized (mapper, partition)
// blocks land here on the map side and are taken — exactly once — by the
// partition's owning reducer. Parallel map and reduce tasks touch the store
// from concurrent goroutines; the shared BlockStore guards access and, with
// the arena knob on, parks each block off-heap.
type localShuffle struct {
	t   *LocalTransport
	seq int

	blocks *transport.BlockStore[blockKey]
}

// spillPath names the shuffle block file for one (mapper, reducer) pair of
// this round.
func (s *localShuffle) spillPath(src, dst int) string {
	return filepath.Join(s.t.SpillDir, fmt.Sprintf("shuffle-%d-%d-%d.block", s.seq, src, dst))
}

// Put implements transport.Shuffle.
func (s *localShuffle) Put(src, dst int, block []byte) (time.Duration, error) {
	if s.t.SpillDir != "" {
		start := time.Now()
		if err := os.WriteFile(s.spillPath(src, dst), block, 0o644); err != nil {
			return 0, fmt.Errorf("spill: %w", err)
		}
		return time.Since(start), nil
	}
	s.blocks.Put(blockKey{src, dst}, block)
	return 0, nil
}

// Fetch implements transport.Shuffle. The stored block (or spill file) keeps
// the original bytes until Drop, so a fetch whose copy was damaged in flight
// can be retried from the intact source.
func (s *localShuffle) Fetch(src, dst int) ([]byte, time.Duration, error) {
	block, ok := s.blocks.Get(blockKey{src, dst})
	if !ok && s.t.SpillDir != "" {
		// Fetch the real block file (measured read I/O).
		start := time.Now()
		b, err := os.ReadFile(s.spillPath(src, dst))
		if err != nil {
			if os.IsNotExist(err) {
				return nil, 0, nil
			}
			return nil, 0, fmt.Errorf("fetch: %w", err)
		}
		return b, time.Since(start), nil
	}
	return block, 0, nil
}

// Drop implements transport.Shuffle.
func (s *localShuffle) Drop(src, dst int) {
	s.blocks.Drop(blockKey{src, dst})
	if s.t.SpillDir != "" {
		os.Remove(s.spillPath(src, dst))
	}
}

// Close implements transport.Shuffle. Undropped spill files (an aborted
// stage) are left for the caller's directory cleanup, as they always were.
func (s *localShuffle) Close() error {
	s.blocks.Close()
	return nil
}
