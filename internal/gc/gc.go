// Package gc implements the collector for the simulated managed heap: a
// generational copying scavenger over eden/survivor spaces plus a Lisp-2
// mark-compact full collection of the old generation — a single-threaded
// stand-in for the Parallel Scavenge collector the paper modifies (§4).
//
// The collector understands Skyway input buffers: ranges in the heap's
// pinned buffer space are registered with the collector, never move, act as
// GC roots once parsed (they are live until explicitly freed), and have
// their dirty cards scanned for pointers into the moving generations.
package gc

import (
	"fmt"
	"time"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/obs"
)

// Process-wide collection counters, exported on /metrics. Per-collector
// accounting lives in Stats; these aggregate across every runtime in the
// process.
var (
	ctrScavenges = obs.NewCounter("skyway_gc_scavenges_total", "Young (copying) collections across all runtimes.")
	ctrFullGCs   = obs.NewCounter("skyway_gc_full_gcs_total", "Full mark-compact collections across all runtimes.")
	ctrPauseNS   = obs.NewCounter("skyway_gc_pause_ns_total", "Total stop-the-world collection pause time in nanoseconds.")
	ctrPromoted  = obs.NewCounter("skyway_gc_promoted_bytes_total", "Bytes promoted from the young to the old generation.")
	ctrCards     = obs.NewCounter("skyway_gc_cards_scanned_total", "Dirty cards scanned for old-to-young roots during scavenges.")
)

// Meta supplies the object-model knowledge the collector needs. It is
// implemented by the vm runtime, breaking what would otherwise be an import
// cycle between the collector and the class loader.
type Meta interface {
	// ObjectSize returns the padded byte size of the object at a.
	ObjectSize(a heap.Addr) uint32
	// RefSlots invokes fn with the byte offset of every reference slot of
	// the object at a (instance fields or array elements).
	RefSlots(a heap.Addr, fn func(off uint32))
}

// Handle is a GC root slot. Application code holds objects through handles;
// the collector rewrites handle targets when objects move.
type Handle struct {
	addr heap.Addr
	coll *Collector
	idx  int
}

// Addr returns the current address of the handled object.
func (h *Handle) Addr() heap.Addr { return h.addr }

// Set retargets the handle.
func (h *Handle) Set(a heap.Addr) { h.addr = a }

// Release drops the root; the handle must not be used afterwards.
func (h *Handle) Release() {
	if h.coll != nil {
		h.coll.release(h.idx)
		h.coll = nil
	}
}

// PinnedRange is a registered Skyway input-buffer chunk in buffer space.
type PinnedRange struct {
	Start heap.Addr
	Size  uint32
	// Parsed becomes true once the receiver has absolutized the chunk;
	// before that the collector treats the range as opaque bytes.
	Parsed bool
	freed  bool
}

// Stats accumulates collection counts for tests and reporting.
type Stats struct {
	Scavenges   int
	FullGCs     int
	PromotedB   uint64
	CopiedB     uint64
	CompactedB  uint64
	HandleCount int

	// PromotionFullGCs counts the FullGCs attributed to a scavenge that
	// bailed for lack of promotion headroom — the nested-collection path.
	// Such a pair is ONE pause (the full GC's); the bailed scavenge does
	// no work and records no pause, so pause accounting stays disjoint.
	PromotionFullGCs int

	// Pauses counts stop-the-world collection pauses; ScavengePause and
	// FullGCPause partition the total pause time (they never overlap),
	// and MaxPause is the longest single pause.
	Pauses        int
	ScavengePause time.Duration
	FullGCPause   time.Duration
	MaxPause      time.Duration

	// CardsScanned counts the dirty cards whose objects were scanned for
	// old-to-young roots during scavenges.
	CardsScanned uint64

	// PinnedScanned counts pinned input-buffer objects walked as GC roots.
	// On the arena decode path this stays at zero no matter how many bytes
	// are resident off-heap — the measurable statement of "the collector
	// never sees arena memory".
	PinnedScanned uint64
}

// TotalPause returns the summed stop-the-world time.
func (s Stats) TotalPause() time.Duration { return s.ScavengePause + s.FullGCPause }

// Merge accumulates other into s (cluster-wide GC accounting).
func (s *Stats) Merge(other Stats) {
	s.Scavenges += other.Scavenges
	s.FullGCs += other.FullGCs
	s.PromotedB += other.PromotedB
	s.CopiedB += other.CopiedB
	s.CompactedB += other.CompactedB
	s.HandleCount += other.HandleCount
	s.PromotionFullGCs += other.PromotionFullGCs
	s.Pauses += other.Pauses
	s.ScavengePause += other.ScavengePause
	s.FullGCPause += other.FullGCPause
	if other.MaxPause > s.MaxPause {
		s.MaxPause = other.MaxPause
	}
	s.CardsScanned += other.CardsScanned
	s.PinnedScanned += other.PinnedScanned
}

// Collector owns GC state for one heap.
type Collector struct {
	h    *heap.Heap
	meta Meta

	handles []*Handle
	free    []int

	pinned    []*PinnedRange
	freedPins int

	// TenureAge is the survival count after which a young object is
	// promoted to the old generation.
	TenureAge int

	// VerifyHook, when non-nil, runs before and after every collection
	// with a stage tag ("before-scavenge", "after-full-gc", ...). The vm
	// runtime wires the heap verifier here when SKYWAY_VERIFY is enabled —
	// the repro's VerifyBeforeGC/VerifyAfterGC.
	VerifyHook func(stage string)

	// Trace receives one span per collection pause ("gc"/"scavenge",
	// "gc"/"full-gc") when tracing is on; the vm runtime wires its own
	// tracer here. Nil is fine (spans no-op).
	Trace *obs.Tracer

	// promotionFallback marks that the last scavenge bailed for lack of
	// promotion headroom, so the next FullGC is attributed to promotion
	// pressure rather than an explicit request — and the pair reports one
	// pause, not two overlapping ones.
	promotionFallback bool

	stats Stats
}

// recordPause folds one finished stop-the-world pause into the statistics,
// counters, and trace. Exactly one call per collection that did work: a
// scavenge that bailed up front records nothing.
func (c *Collector) recordPause(kind, cause string, start time.Time, args ...obs.Arg) {
	pause := time.Since(start)
	c.stats.Pauses++
	if kind == "scavenge" {
		c.stats.ScavengePause += pause
	} else {
		c.stats.FullGCPause += pause
	}
	if pause > c.stats.MaxPause {
		c.stats.MaxPause = pause
	}
	ctrPauseNS.Add(pause.Nanoseconds())
	if c.Trace != nil && obs.Enabled() {
		args = append(args, obs.I64("cause_promotion", boolArg(cause == "promotion")))
		c.Trace.Emit("gc", kind, start, pause, args...)
	}
}

func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// New builds a collector for h using meta for object walking.
func New(h *heap.Heap, meta Meta) *Collector {
	return &Collector{h: h, meta: meta, TenureAge: 2}
}

// Stats returns a copy of the collection statistics.
func (c *Collector) Stats() Stats {
	s := c.stats
	s.HandleCount = len(c.handles) - len(c.free)
	return s
}

// NewHandle registers a new root pointing at a.
func (c *Collector) NewHandle(a heap.Addr) *Handle {
	h := &Handle{addr: a, coll: c}
	if n := len(c.free); n > 0 {
		h.idx = c.free[n-1]
		c.free = c.free[:n-1]
		c.handles[h.idx] = h
	} else {
		h.idx = len(c.handles)
		c.handles = append(c.handles, h)
	}
	return h
}

func (c *Collector) release(idx int) {
	c.handles[idx] = nil
	c.free = append(c.free, idx)
}

// Pin registers a Skyway input-buffer chunk with the collector.
func (c *Collector) Pin(start heap.Addr, size uint32) *PinnedRange {
	if !c.h.InBuffers(start) {
		panic(fmt.Sprintf("gc: pin outside buffer space at %#x", uint64(start)))
	}
	p := &PinnedRange{Start: start, Size: size}
	c.pinned = append(c.pinned, p)
	return p
}

// Unpin frees a pinned chunk: its objects stop being roots and the chunk's
// space returns to the buffer allocator for reuse (the explicit-free API of
// §3.2). The pinned list is swept lazily once freed entries accumulate.
func (c *Collector) Unpin(p *PinnedRange) {
	if p.freed {
		return
	}
	p.freed = true
	c.freedPins++
	c.h.FreeBufferRange(p.Start, p.Size)
	if c.freedPins*2 > len(c.pinned) && len(c.pinned) > 32 {
		live := c.pinned[:0]
		for _, q := range c.pinned {
			if !q.freed {
				live = append(live, q)
			}
		}
		c.pinned = live
		c.freedPins = 0
	}
}

// EachPinned invokes fn for every live pinned input-buffer chunk; the heap
// verifier enumerates chunks through this.
func (c *Collector) EachPinned(fn func(start heap.Addr, size uint32, parsed bool)) {
	for _, p := range c.pinned {
		if !p.freed {
			fn(p.Start, p.Size, p.Parsed)
		}
	}
}

// eachPinnedObject walks every object of every parsed, live pinned chunk.
func (c *Collector) eachPinnedObject(fn func(a heap.Addr)) {
	for _, p := range c.pinned {
		if p.freed || !p.Parsed {
			continue
		}
		a := p.Start
		end := p.Start.Add(p.Size)
		for a < end {
			c.stats.PinnedScanned++
			fn(a)
			a = a.Add(c.meta.ObjectSize(a))
		}
	}
}

// --- scavenge ---------------------------------------------------------------

// Scavenge performs a young collection: live eden/from-space objects are
// copied to to-space (or promoted to the old generation when aged out or
// when to-space is full), roots and old-to-young references found through
// the card table are updated, and the survivor spaces are swapped.
// Returns false — having done nothing — when the old generation cannot
// absorb a worst-case promotion of the entire young generation; the caller
// must run a full GC instead. Bailing up front keeps a scavenge atomic: a
// mid-copy promotion failure would leave half-forwarded objects behind.
func (c *Collector) Scavenge() bool {
	h := c.h
	if h.Old.Free() < h.Eden.Used()+h.From.Used() {
		// The caller will fall back to a full collection; mark it so that
		// FullGC attributes its (single) pause to promotion pressure. The
		// bail itself did no work and records no pause.
		c.promotionFallback = true
		return false
	}
	c.promotionFallback = false
	c.stats.Scavenges++
	ctrScavenges.Inc()
	pauseStart := time.Now()
	promoted0, copied0, cards0 := c.stats.PromotedB, c.stats.CopiedB, c.stats.CardsScanned
	if c.VerifyHook != nil {
		c.VerifyHook("before-scavenge")
	}

	// forward copies obj to its new home and returns the new address.
	var forward func(a heap.Addr) heap.Addr
	var scanQueue []heap.Addr
	forward = func(a heap.Addr) heap.Addr {
		if to, done := h.Forwarded(a); done {
			return to
		}
		size := c.meta.ObjectSize(a)
		age := h.Age(a)
		var dst heap.Addr
		if age+1 < c.TenureAge {
			dst = h.To.Alloc(uint64(size)) // Null when to-space is full
		}
		if dst == heap.Null {
			dst = h.AllocOld(size)
			if dst == heap.Null {
				// Ruled out by the headroom check above.
				panic("gc: promotion failure during scavenge")
			}
			c.stats.PromotedB += uint64(size)
		} else {
			c.stats.CopiedB += uint64(size)
		}
		h.CopyWords(dst, a, size)
		h.SetAge(dst, age+1)
		h.SetForwarded(a, dst)
		scanQueue = append(scanQueue, dst)
		return dst
	}

	fixSlot := func(owner heap.Addr, off uint32) {
		ref := heap.Addr(h.Load(owner, off, refKind))
		if ref == heap.Null || !h.InYoung(ref) {
			return
		}
		h.Store(owner, off, refKind, uint64(forward(ref)))
	}

	// Roots: handles.
	for _, hd := range c.handles {
		if hd == nil || hd.addr == heap.Null {
			continue
		}
		if h.InYoung(hd.addr) {
			hd.addr = forward(hd.addr)
		}
	}
	// Roots: old-generation objects on dirty cards (write-barrier remembered
	// set), walked linearly as HotSpot does within dirty card spans.
	c.eachOldObject(func(a heap.Addr) {
		size := c.meta.ObjectSize(a)
		if !h.RangeDirty(a, size) {
			return
		}
		c.stats.CardsScanned += cardSpan(a, size)
		c.meta.RefSlots(a, func(off uint32) { fixSlot(a, off) })
	})
	// Roots: parsed Skyway input buffers holding young pointers (possible
	// after application mutation); found via their dirty cards too.
	c.eachPinnedObject(func(a heap.Addr) {
		size := c.meta.ObjectSize(a)
		if !h.RangeDirty(a, size) {
			return
		}
		c.stats.CardsScanned += cardSpan(a, size)
		c.meta.RefSlots(a, func(off uint32) { fixSlot(a, off) })
	})

	// Transitive closure.
	for len(scanQueue) > 0 {
		a := scanQueue[len(scanQueue)-1]
		scanQueue = scanQueue[:len(scanQueue)-1]
		c.meta.RefSlots(a, func(off uint32) { fixSlot(a, off) })
	}

	// Reset young spaces: eden and from-space are now garbage; survivors
	// live in to-space. Swap semispaces.
	h.Eden.Reset()
	h.From.Reset()
	h.From, h.To = h.To, h.From
	// Cards for the young generation are meaningless; clear cards over the
	// old gen that no longer hold young pointers would require re-scanning,
	// so conservatively keep them dirty only if they still point young.
	c.recleanCards()
	if c.VerifyHook != nil {
		c.VerifyHook("after-scavenge")
	}
	promoted := c.stats.PromotedB - promoted0
	cards := c.stats.CardsScanned - cards0
	ctrPromoted.Add(int64(promoted))
	ctrCards.Add(int64(cards))
	c.recordPause("scavenge", "allocation", pauseStart,
		obs.I64("promoted_bytes", int64(promoted)),
		obs.I64("copied_bytes", int64(c.stats.CopiedB-copied0)),
		obs.I64("cards_scanned", int64(cards)))
	return true
}

// cardSpan returns how many card-table cards the object at a covers.
func cardSpan(a heap.Addr, size uint32) uint64 {
	return (uint64(a)+uint64(size)-1)/heap.CardSize - uint64(a)/heap.CardSize + 1
}

const refKind = klass.Ref

// recleanCards clears dirty cards over tenured spaces that no longer contain
// young pointers, keeping scavenge cost proportional to genuinely dirty data.
// Objects share 512-byte cards, so cleaning must be card-granular: first
// collect the cards still covering a young pointer, then clear only cards
// outside that set. (Cleaning per object wiped the boundary card a
// young-ref-holding neighbor depended on — caught by the heap verifier's
// missing-card check.)
func (c *Collector) recleanCards() {
	h := c.h
	keep := make(map[uint64]struct{})
	mark := func(a heap.Addr) {
		size := c.meta.ObjectSize(a)
		if !h.RangeDirty(a, size) {
			return
		}
		young := false
		c.meta.RefSlots(a, func(off uint32) {
			ref := heap.Addr(h.Load(a, off, refKind))
			if ref != heap.Null && h.InYoung(ref) {
				young = true
			}
		})
		if young {
			for card := uint64(a) / heap.CardSize; card <= (uint64(a)+uint64(size)-1)/heap.CardSize; card++ {
				keep[card] = struct{}{}
			}
		}
	}
	c.eachOldObject(mark)
	c.eachPinnedObject(mark)
	clean := func(a heap.Addr) {
		size := c.meta.ObjectSize(a)
		for card := uint64(a) / heap.CardSize; card <= (uint64(a)+uint64(size)-1)/heap.CardSize; card++ {
			if _, ok := keep[card]; !ok {
				h.CleanCards(heap.Addr(card*heap.CardSize), 1)
			}
		}
	}
	c.eachOldObject(clean)
	c.eachPinnedObject(clean)
}

// eachOldObject walks the old generation linearly.
func (c *Collector) eachOldObject(fn func(a heap.Addr)) {
	a := c.h.Old.Start
	for a < c.h.Old.Top {
		size := c.meta.ObjectSize(a)
		fn(a)
		a = a.Add(size)
	}
}
