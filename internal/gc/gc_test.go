package gc_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/vm"
)

// The collector tests run through the vm runtime (which implements gc.Meta)
// rather than a hand-rolled Meta, so what is exercised is what ships.

func newRT(t testing.TB) *vm.Runtime {
	t.Helper()
	cp := klass.NewPath()
	cp.MustDefine(
		&klass.ClassDef{Name: "N", Fields: []klass.FieldDef{
			{Name: "v", Kind: klass.Int64},
			{Name: "next", Kind: klass.Ref, Class: "N"},
		}},
	)
	rt, err := vm.NewRuntime(cp, vm.Options{Name: "gct", Heap: heap.Config{
		EdenSize:     96 << 10,
		SurvivorSize: 16 << 10,
		OldSize:      768 << 10,
		BufferSize:   128 << 10,
		Layout:       klass.Layout{Baddr: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestHandleReleaseMakesGarbage(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("N")
	h := rt.Pin(rt.MustNew(k))
	rt.GC.FullGC()
	liveBefore := rt.Heap.Old.Used()
	h.Release()
	rt.GC.FullGC()
	if rt.Heap.Old.Used() >= liveBefore {
		t.Errorf("old gen did not shrink after releasing the only root: %d -> %d",
			liveBefore, rt.Heap.Old.Used())
	}
}

func TestScavengePromotesAfterTenureAge(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("N")
	h := rt.Pin(rt.MustNew(k))
	defer h.Release()
	for i := 0; i < rt.GC.TenureAge+1; i++ {
		if !rt.GC.Scavenge() {
			t.Fatal("scavenge refused")
		}
	}
	if !rt.Heap.InOld(h.Addr()) {
		t.Errorf("object not promoted after %d scavenges", rt.GC.TenureAge+1)
	}
}

func TestScavengeBailsWhenOldFull(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("long[]")
	// Fill old gen almost completely.
	for {
		a := rt.Heap.AllocOld(4096)
		if a == heap.Null {
			break
		}
		rt.Heap.ZeroWords(a, 4096)
		rt.Heap.SetKlassWord(a, uint64(k.LID))
		rt.Heap.SetArrayLen(a, (4096-int(rt.Heap.Layout().ArrayHeaderSize()))/8)
	}
	// Put something in eden so the worst-case promotion exceeds old.Free.
	rt.Heap.AllocYoung(8192)
	if rt.GC.Scavenge() {
		t.Error("scavenge proceeded without promotion headroom")
	}
}

// A scavenge that bails for lack of promotion headroom and falls back to a
// full mark-compact must report ONE pause, attributed to promotion pressure
// — not a scavenge pause overlapping a full-GC pause.
func TestFallbackPauseAccountingDisjoint(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("long[]")
	// Fill old gen almost completely so the headroom check fails.
	for {
		a := rt.Heap.AllocOld(4096)
		if a == heap.Null {
			break
		}
		rt.Heap.ZeroWords(a, 4096)
		rt.Heap.SetKlassWord(a, uint64(k.LID))
		rt.Heap.SetArrayLen(a, (4096-int(rt.Heap.Layout().ArrayHeaderSize()))/8)
	}
	rt.Heap.AllocYoung(8192)

	before := rt.GC.Stats()
	// The vm allocation slow path: scavenge refuses, full GC runs.
	if rt.GC.Scavenge() {
		t.Fatal("scavenge proceeded without promotion headroom")
	}
	rt.GC.FullGC()
	s := rt.GC.Stats()

	if got := s.Pauses - before.Pauses; got != 1 {
		t.Errorf("fallback pair recorded %d pauses, want 1", got)
	}
	if s.Scavenges != before.Scavenges {
		t.Errorf("bailed scavenge was counted: %d -> %d", before.Scavenges, s.Scavenges)
	}
	if s.ScavengePause != before.ScavengePause {
		t.Errorf("bailed scavenge accrued pause time: %v -> %v", before.ScavengePause, s.ScavengePause)
	}
	if s.FullGCPause <= before.FullGCPause {
		t.Errorf("full GC pause not recorded: %v -> %v", before.FullGCPause, s.FullGCPause)
	}
	if got := s.PromotionFullGCs - before.PromotionFullGCs; got != 1 {
		t.Errorf("PromotionFullGCs delta = %d, want 1 (promotion-triggered attribution)", got)
	}
	// Disjoint partition: total pause time is exactly the two buckets.
	if s.TotalPause() != s.ScavengePause+s.FullGCPause {
		t.Errorf("TotalPause %v != ScavengePause %v + FullGCPause %v",
			s.TotalPause(), s.ScavengePause, s.FullGCPause)
	}
	// A later explicit full GC is NOT promotion-attributed: the fallback
	// mark must not stick.
	rt.GC.FullGC()
	s2 := rt.GC.Stats()
	if s2.PromotionFullGCs != s.PromotionFullGCs {
		t.Errorf("explicit FullGC after fallback still promotion-attributed: %d -> %d",
			s.PromotionFullGCs, s2.PromotionFullGCs)
	}
	if got := s2.Pauses - s.Pauses; got != 1 {
		t.Errorf("explicit FullGC recorded %d pauses, want 1", got)
	}
}

// A successful scavenge after a bail clears the promotion attribution.
func TestFallbackMarkClearedBySuccessfulScavenge(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("N")
	h := rt.Pin(rt.MustNew(k))
	defer h.Release()
	if !rt.GC.Scavenge() {
		t.Fatal("scavenge refused on a fresh heap")
	}
	s := rt.GC.Stats()
	if s.Scavenges != 1 || s.Pauses != 1 || s.ScavengePause <= 0 {
		t.Errorf("scavenge pause not recorded: %+v", s)
	}
	rt.GC.FullGC()
	if got := rt.GC.Stats().PromotionFullGCs; got != 0 {
		t.Errorf("FullGC after successful scavenge promotion-attributed: %d", got)
	}
}

func TestStatsMerge(t *testing.T) {
	a := gc.Stats{Scavenges: 1, FullGCs: 2, PromotedB: 10, Pauses: 3, ScavengePause: 5, FullGCPause: 7, MaxPause: 4, CardsScanned: 9}
	b := gc.Stats{Scavenges: 2, FullGCs: 1, PromotedB: 5, Pauses: 2, ScavengePause: 1, FullGCPause: 2, MaxPause: 6, CardsScanned: 1}
	a.Merge(b)
	if a.Scavenges != 3 || a.FullGCs != 3 || a.PromotedB != 15 || a.Pauses != 5 ||
		a.ScavengePause != 6 || a.FullGCPause != 9 || a.MaxPause != 6 || a.CardsScanned != 10 {
		t.Errorf("Merge = %+v", a)
	}
	if a.TotalPause() != 15 {
		t.Errorf("TotalPause = %v", a.TotalPause())
	}
}

func TestFullGCCompactsOldGen(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("N")
	// Tenure interleaved live/dead objects: pin every other one.
	var pins []interface {
		Addr() heap.Addr
		Release()
	}
	for i := 0; i < 200; i++ {
		h := rt.Pin(rt.MustNew(k))
		if i%2 == 0 {
			pins = append(pins, h)
		} else {
			defer h.Release() // keep alive through the tenuring GC only
		}
	}
	rt.GC.FullGC() // everything tenures
	used := rt.Heap.Old.Used()

	// Drop the odd pins (already deferred) by running a full GC after
	// releasing them explicitly.
	for _, p := range pins {
		_ = p
	}
	// Release the deferred (odd) handles early:
	// (they were deferred; emulate by collecting with only even pins).
	// Instead: release every second pinned handle now.
	for i, p := range pins {
		if i%2 == 1 {
			p.Release()
		}
	}
	rt.GC.FullGC()
	if rt.Heap.Old.Used() >= used {
		t.Errorf("full GC did not compact: %d -> %d", used, rt.Heap.Old.Used())
	}
	// Survivors must still be intact.
	vF := rt.MustLoad("N").FieldByName("v")
	for i, p := range pins {
		if i%2 == 1 {
			continue
		}
		_ = rt.GetLong(p.Addr(), vF) // must not panic
	}
}

func TestPinnedChunksSurviveAndAnchor(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("N")

	// Build a fake parsed input chunk holding one object.
	size := k.InstanceBytes(0)
	base := rt.Heap.AllocBuffer(klass.Pad(size))
	rt.Heap.ZeroWords(base, klass.Pad(size))
	rt.Heap.SetKlassWord(base, uint64(k.LID))
	pin := rt.GC.Pin(base, klass.Pad(size))
	pin.Parsed = true

	// Point the buffer object at a young object; dirty card via SetRef.
	young := rt.MustNew(k)
	rt.SetLong(young, k.FieldByName("v"), 1234)
	rt.SetRef(base, k.FieldByName("next"), young)

	rt.GC.FullGC()
	got := rt.GetRef(base, k.FieldByName("next"))
	if got == heap.Null || rt.GetLong(got, k.FieldByName("v")) != 1234 {
		t.Fatal("object referenced only from a pinned chunk was collected")
	}
	if rt.Heap.InYoung(got) {
		// FullGC tenures everything it keeps.
		t.Error("survivor left in young space after full GC")
	}

	// After unpinning, the chunk no longer roots anything.
	rt.GC.Unpin(pin)
	rt.GC.FullGC()
	if rt.Heap.Old.Used() != 0 {
		t.Errorf("unpinned chunk still anchors %d bytes", rt.Heap.Old.Used())
	}
}

func TestStatsCount(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("N")
	h := rt.Pin(rt.MustNew(k))
	defer h.Release()
	rt.GC.Scavenge()
	rt.GC.FullGC()
	s := rt.GC.Stats()
	if s.Scavenges != 1 || s.FullGCs != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.HandleCount != 1 {
		t.Errorf("HandleCount = %d", s.HandleCount)
	}
}

// Property: any random sequence of list builds, handle releases and
// collections preserves exactly the pinned lists' contents.
func TestGCSoakQuick(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("N")
	vF, nextF := k.FieldByName("v"), k.FieldByName("next")

	type listT struct {
		pin interface {
			Addr() heap.Addr
			Release()
		}
		vals []int64
	}
	var live []*listT

	buildList := func(seed int64, n int) *listT {
		l := &listT{}
		var headPin *gc.Handle
		var tail *gc.Handle
		for i := 0; i < n; i++ {
			node := rt.MustNew(k)
			v := seed*1000 + int64(i)
			rt.SetLong(node, vF, v)
			l.vals = append(l.vals, v)
			if headPin == nil {
				headPin = rt.Pin(node)
				tail = rt.Pin(node)
			} else {
				rt.SetRef(tail.Addr(), nextF, node)
				tail.Set(node)
			}
		}
		tail.Release()
		l.pin = headPin
		return l
	}
	checkList := func(l *listT) bool {
		cur := l.pin.Addr()
		for _, want := range l.vals {
			if cur == heap.Null || rt.GetLong(cur, vF) != want {
				return false
			}
			cur = rt.GetRef(cur, nextF)
		}
		return cur == heap.Null
	}

	f := func(ops []uint8) bool {
		for i, op := range ops {
			switch op % 4 {
			case 0:
				live = append(live, buildList(int64(i), 1+int(op)%20))
			case 1:
				if len(live) > 0 {
					victim := live[int(op)%len(live)]
					victim.pin.Release()
					live = append(live[:int(op)%len(live)], live[int(op)%len(live)+1:]...)
				}
			case 2:
				if !rt.GC.Scavenge() {
					rt.GC.FullGC()
				}
			case 3:
				rt.GC.FullGC()
			}
			for _, l := range live {
				if !checkList(l) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	for _, l := range live {
		l.pin.Release()
	}
}

func TestPinOutsideBufferSpacePanics(t *testing.T) {
	rt := newRT(t)
	defer func() {
		if recover() == nil {
			t.Error("Pin outside buffer space did not panic")
		}
	}()
	rt.GC.Pin(rt.Heap.Old.Start, 64)
}

func ExampleCollector_stats() {
	cp := klass.NewPath()
	cp.MustDefine(&klass.ClassDef{Name: "X", Fields: []klass.FieldDef{{Name: "v", Kind: klass.Int64}}})
	rt, _ := vm.NewRuntime(cp, vm.Options{Name: "ex"})
	h := rt.Pin(rt.MustNew(rt.MustLoad("X")))
	rt.GC.FullGC()
	fmt.Println(rt.GC.Stats().FullGCs)
	h.Release()
	// Output: 1
}

func TestFullGCWithoutEvacuationRoom(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("N")
	vF := k.FieldByName("v")

	// Fill the old generation with live (pinned) data.
	var pins []*gc.Handle
	arrK := rt.MustLoad("long[]")
	for {
		a := rt.Heap.AllocOld(4096)
		if a == heap.Null {
			break
		}
		rt.Heap.ZeroWords(a, 4096)
		rt.Heap.SetKlassWord(a, uint64(arrK.LID))
		rt.Heap.SetArrayLen(a, (4096-int(rt.Heap.Layout().ArrayHeaderSize()))/8)
		pins = append(pins, rt.GC.NewHandle(a))
	}
	// Live young objects that cannot be evacuated.
	young := rt.Pin(rt.MustNew(k))
	rt.SetLong(young.Addr(), vF, 4711)

	rt.GC.FullGC() // must not panic, must not lose the young object
	if rt.GetLong(young.Addr(), vF) != 4711 {
		t.Error("young object lost by non-evacuating full GC")
	}
	if !rt.Heap.InYoung(young.Addr()) {
		t.Error("young object moved despite no old-gen room")
	}
	for _, p := range pins {
		p.Release()
	}
	young.Release()
	rt.GC.FullGC()
	if rt.Heap.Old.Used() != 0 {
		t.Error("old gen not reclaimed after releasing roots")
	}
}

func TestRecleanKeepsSharedCardWithYoungPointer(t *testing.T) {
	// Two tenured neighbors share a 512-byte card; only the first holds a
	// young pointer. Card cleaning must be card-granular: cleaning the
	// youngless neighbor's span used to wipe the shared card, and the
	// second scavenge silently dropped the old-to-young edge.
	rt := newRT(t)
	k := rt.MustLoad("N")
	vf := k.FieldByName("v")
	nf := k.FieldByName("next")
	pa := rt.Pin(rt.MustNew(k))
	pb := rt.Pin(rt.MustNew(k))
	defer pa.Release()
	defer pb.Release()
	rt.GC.FullGC() // tenure both, adjacent in the old generation
	if !rt.Heap.InOld(pa.Addr()) || !rt.Heap.InOld(pb.Addr()) {
		t.Fatal("objects did not tenure")
	}

	young := rt.MustNew(k)
	rt.SetInt(young, vf, 777)
	rt.SetRef(pa.Addr(), nf, young) // dirties the shared card

	// First scavenge moves the young object and recleans cards; the
	// second must still find it through the old-to-young edge. With
	// TenureAge=2 a traced edge promotes the object on the second pass;
	// a dropped edge leaves the pointer dangling into survivor space
	// (where the stale bytes linger, so a value check alone cannot tell).
	for i := 0; i < 2; i++ {
		if !rt.GC.Scavenge() {
			t.Fatalf("scavenge %d refused", i)
		}
	}
	got := rt.GetRef(pa.Addr(), nf)
	if got == heap.Null || !rt.Heap.InOld(got) {
		t.Fatalf("old-to-young edge dropped by card recleaning: ref %#x not promoted", uint64(got))
	}
	if rt.GetInt(got, vf) != 777 {
		t.Fatalf("young object corrupted after reclean: v=%d", rt.GetInt(got, vf))
	}
}
