package gc

import (
	"time"

	"skyway/internal/heap"
	"skyway/internal/obs"
)

// FullGC performs a stop-the-world full collection: mark from all roots,
// then Lisp-2 sliding compaction of the old generation, with eden and
// from-space survivors evacuated into the old generation (everything that
// survives a full GC is tenured, as in Parallel Old). Pinned Skyway input
// buffers are unconditionally live, never move, and have their outgoing
// references rewritten like any other object.
func (c *Collector) FullGC() {
	c.stats.FullGCs++
	ctrFullGCs.Inc()
	// Attribution: a full GC reached through a scavenge headroom bail is
	// one promotion-triggered pause, not two overlapping collections (the
	// bailed scavenge recorded nothing).
	cause := "explicit"
	if c.promotionFallback {
		cause = "promotion"
		c.stats.PromotionFullGCs++
		c.promotionFallback = false
	}
	pauseStart := time.Now()
	compacted0 := c.stats.CompactedB
	h := c.h
	if c.VerifyHook != nil {
		c.VerifyHook("before-full-gc")
	}

	// --- mark ----------------------------------------------------------
	var stack []heap.Addr
	mark := func(a heap.Addr) {
		// Tagged arena addresses are not heap memory: the object graph they
		// name lives outside the collector's purview, costs no mark/compact
		// work, and is reclaimed wholesale when its region retires.
		if a == heap.Null || heap.IsArenaAddr(a) || h.Marked(a) {
			return
		}
		h.SetMarked(a, true)
		stack = append(stack, a)
	}
	for _, hd := range c.handles {
		if hd != nil && hd.addr != heap.Null {
			mark(hd.addr)
		}
	}
	c.eachPinnedObject(mark)
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c.meta.RefSlots(a, func(off uint32) {
			mark(heap.Addr(h.Load(a, off, refKind)))
		})
	}

	// --- compute forwarding addresses -----------------------------------
	// Live old-gen objects slide toward Old.Start; live young objects are
	// appended after them. A side table keeps the planned destinations so
	// mark words (which hold cached hashcodes) stay intact.
	type move struct {
		from, to heap.Addr
		size     uint32
	}
	fwd := make(map[heap.Addr]heap.Addr)
	var plans []move
	dest := h.Old.Start
	overflow := false
	plan := func(a heap.Addr) {
		if !h.Marked(a) || overflow {
			return
		}
		size := c.meta.ObjectSize(a)
		if uint64(dest)+uint64(size) > uint64(h.Old.End) {
			overflow = true
			return
		}
		fwd[a] = dest
		plans = append(plans, move{from: a, to: dest, size: size})
		dest = dest.Add(size)
	}
	// Old-gen compaction always fits (sliding cannot grow the region).
	c.eachOldObject(plan)
	oldPlans, oldDest := len(plans), dest
	// Young evacuation is all-or-nothing: if the survivors do not fit in
	// the old generation, leave the young generation in place — the heap
	// stays valid and the triggering allocation fails with OOM instead of
	// the collector dying.
	eachRegionObject(h, &h.Eden, c.meta, func(a heap.Addr) { plan(a) })
	eachRegionObject(h, &h.From, c.meta, func(a heap.Addr) { plan(a) })
	evacuate := !overflow
	if !evacuate {
		for _, m := range plans[oldPlans:] {
			delete(fwd, m.from)
		}
		plans = plans[:oldPlans]
		dest = oldDest
	}

	// --- update references ----------------------------------------------
	redirect := func(owner heap.Addr) {
		c.meta.RefSlots(owner, func(off uint32) {
			ref := heap.Addr(h.Load(owner, off, refKind))
			if to, moved := fwd[ref]; moved {
				h.Store(owner, off, refKind, uint64(to))
			}
		})
	}
	c.eachOldObject(func(a heap.Addr) {
		if h.Marked(a) {
			redirect(a)
		}
	})
	eachRegionObject(h, &h.Eden, c.meta, func(a heap.Addr) {
		if h.Marked(a) {
			redirect(a)
		}
	})
	eachRegionObject(h, &h.From, c.meta, func(a heap.Addr) {
		if h.Marked(a) {
			redirect(a)
		}
	})
	c.eachPinnedObject(redirect)
	for _, hd := range c.handles {
		if hd == nil {
			continue
		}
		if to, moved := fwd[hd.addr]; moved {
			hd.addr = to
		}
	}

	// --- move ------------------------------------------------------------
	// The plan list was built in walk order (old gen first, then young
	// evacuees), so every destination precedes or equals its source and
	// sliding copies never clobber a not-yet-moved live object. The list —
	// not a region re-walk — drives the moves, because a slide may stomp
	// the headers of dead objects a re-walk would need for skipping.
	var moved uint64
	for _, m := range plans {
		if m.to != m.from {
			h.CopyWords(m.to, m.from, m.size)
		}
		moved += uint64(m.size)
	}
	c.stats.CompactedB += moved

	h.Old.Top = dest
	if evacuate {
		h.Eden.Reset()
		h.From.Reset()
		h.To.Reset()
	} else {
		// Young objects stayed in place; just clear their marks.
		clearYoung := func(a heap.Addr) { h.SetMarked(a, false) }
		eachRegionObject(h, &h.Eden, c.meta, clearYoung)
		eachRegionObject(h, &h.From, c.meta, clearYoung)
	}

	// Clear mark bits on survivors and reset ages (tenured now).
	c.eachOldObject(func(a heap.Addr) {
		h.SetMarked(a, false)
		h.SetAge(a, 0)
	})
	c.eachPinnedObject(func(a heap.Addr) { h.SetMarked(a, false) })
	c.recleanCards()
	if c.VerifyHook != nil {
		c.VerifyHook("after-full-gc")
	}
	c.recordPause("full-gc", cause, pauseStart,
		obs.I64("compacted_bytes", int64(c.stats.CompactedB-compacted0)),
		obs.I64("evacuated", boolArg(evacuate)))
}

// eachRegionObject walks region r linearly. Valid only for bump-allocated
// regions whose every object is walkable via meta.
func eachRegionObject(h *heap.Heap, r *heap.Region, meta Meta, fn func(a heap.Addr)) {
	a := r.Start
	for a < r.Top {
		size := meta.ObjectSize(a)
		fn(a)
		a = a.Add(size)
	}
}
