// Package obs is the runtime observability layer: per-runtime ring-buffered
// trace spans plus process-wide atomic counters and gauges. The paper's whole
// evaluation is a time-and-byte accounting exercise (§2.2, Figs. 3/7/8), and
// this package is how a run is seen from the inside — GC pauses, Skyway
// transfers, executor tasks, and modelled I/O each become spans on their
// runtime's timeline.
//
// Tracing is off unless the SKYWAY_TRACE environment variable names an output
// file (or Enable is called). When off, the span API compiles down to a nil
// check and return: Tracer.Span returns a nil *Span whose methods no-op, so
// instrumented hot paths pay one atomic load. Counters are always live —
// a counter bump is a single atomic add — and are exported in Prometheus
// text format by WriteMetrics (served by cmd/skywayd's /metrics endpoint).
// Spans are exported as Chrome-trace-format JSON by WriteTrace; open the
// file in chrome://tracing or https://ui.perfetto.dev.
package obs

import (
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRingSize is the per-tracer span capacity. The ring overwrites its
// oldest spans when full (DroppedSpans counts the overwritten ones), so a
// long run keeps its tail — the part a trace viewer is usually opened for.
const SpanRingSize = 1 << 14

// enabled gates span recording. 0 = off, 1 = on.
var enabled atomic.Bool

// epoch anchors span timestamps so trace files start near ts=0.
var epoch = time.Now()

func init() {
	if os.Getenv("SKYWAY_TRACE") != "" {
		enabled.Store(true)
	}
}

// Enabled reports whether span recording is on.
func Enabled() bool { return enabled.Load() }

// Enable turns span recording on (tests and programmatic use; production
// runs enable via SKYWAY_TRACE).
func Enable() { enabled.Store(true) }

// Disable turns span recording off. Already-recorded spans are kept.
func Disable() { enabled.Store(false) }

// TracePath returns the SKYWAY_TRACE output file, or "".
func TracePath() string { return os.Getenv("SKYWAY_TRACE") }

// Arg is one key/value annotation on a span.
type Arg struct {
	Key string
	Val int64
}

// I64 builds an integer span annotation.
func I64(key string, v int64) Arg { return Arg{Key: key, Val: v} }

// span is one recorded event in a tracer's ring.
type span struct {
	cat, name string
	start     time.Time
	dur       time.Duration
	args      []Arg
}

// Tracer records spans for one timeline — one per simulated runtime (the
// Chrome trace maps each tracer to a thread row). Obtain tracers through
// NewTracer; the zero value and nil are safe to call Span/Emit on.
type Tracer struct {
	name string

	mu      sync.Mutex
	ring    [SpanRingSize]span
	next    int  // ring write cursor
	wrapped bool // ring has overwritten at least one span
	dropped uint64
}

var (
	tracersMu sync.Mutex
	tracers   []*Tracer
	byName    = map[string]*Tracer{}
)

// NewTracer returns the tracer named name, creating and registering it on
// first use. Tracers are deduplicated by name so that repeated cluster
// boots (one per experiment cell) share one timeline per runtime name.
func NewTracer(name string) *Tracer {
	tracersMu.Lock()
	defer tracersMu.Unlock()
	if t, ok := byName[name]; ok {
		return t
	}
	t := &Tracer{name: name}
	byName[name] = t
	tracers = append(tracers, t)
	return t
}

// Name returns the tracer's timeline name.
func (t *Tracer) Name() string { return t.name }

// allTracers snapshots the registry.
func allTracers() []*Tracer {
	tracersMu.Lock()
	defer tracersMu.Unlock()
	out := make([]*Tracer, len(tracers))
	copy(out, tracers)
	return out
}

// ResetForTesting clears all recorded spans (the tracer registry survives,
// so tracer pointers held by runtimes stay valid).
func ResetForTesting() {
	for _, t := range allTracers() {
		t.mu.Lock()
		t.next = 0
		t.wrapped = false
		t.dropped = 0
		t.mu.Unlock()
	}
}

// Span opens a span now; call End (optionally after Arg annotations) to
// record it. Returns nil — every method of which no-ops — when tracing is
// disabled or t is nil, so callers never guard call sites themselves.
func (t *Tracer) Span(cat, name string) *Span {
	if t == nil || !enabled.Load() {
		return nil
	}
	return &Span{t: t, cat: cat, name: name, start: time.Now()}
}

// Emit records a complete span with an externally supplied duration — used
// for modelled time (netsim I/O costs) and for spans whose start was
// captured before the emitting call (writer open → close).
func (t *Tracer) Emit(cat, name string, start time.Time, dur time.Duration, args ...Arg) {
	if t == nil || !enabled.Load() || start.IsZero() {
		return
	}
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = span{cat: cat, name: name, start: start, dur: dur, args: args}
	t.next++
	if t.next == SpanRingSize {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// DroppedSpans returns how many spans the ring has overwritten.
func (t *Tracer) DroppedSpans() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanCount returns how many spans the ring currently holds.
func (t *Tracer) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		return SpanRingSize
	}
	return t.next
}

// eachSpan visits the ring oldest-first under the tracer lock.
func (t *Tracer) eachSpan(fn func(s *span)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.wrapped {
		for i := t.next; i < SpanRingSize; i++ {
			fn(&t.ring[i])
		}
	}
	for i := 0; i < t.next; i++ {
		fn(&t.ring[i])
	}
}

// Span is an open span handle. A nil *Span is valid and inert.
type Span struct {
	t         *Tracer
	cat, name string
	start     time.Time
	args      []Arg
}

// Arg annotates the span; returns s for chaining. No-op on nil.
func (s *Span) Arg(key string, v int64) *Span {
	if s != nil {
		s.args = append(s.args, Arg{Key: key, Val: v})
	}
	return s
}

// End closes and records the span. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.Emit(s.cat, s.name, s.start, time.Since(s.start), s.args...)
}
