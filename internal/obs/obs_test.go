package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func withTracing(t *testing.T) {
	t.Helper()
	was := Enabled()
	Enable()
	ResetForTesting()
	t.Cleanup(func() {
		ResetForTesting()
		if !was {
			Disable()
		}
	})
}

func TestSpanDisabledIsNil(t *testing.T) {
	was := Enabled()
	Disable()
	defer func() {
		if was {
			Enable()
		}
	}()
	tr := NewTracer("t-disabled")
	sp := tr.Span("cat", "name")
	if sp != nil {
		t.Fatal("Span with tracing disabled should be nil")
	}
	// Nil-safe chain: must not panic and must not record.
	sp.Arg("k", 1).End()
	var nilT *Tracer
	nilT.Span("cat", "name").End()
	nilT.Emit("cat", "name", time.Now(), time.Second)
	if tr.SpanCount() != 0 {
		t.Fatalf("disabled tracer recorded %d spans", tr.SpanCount())
	}
}

func TestSpanRecordingAndDump(t *testing.T) {
	withTracing(t)
	tr := NewTracer("t-record")
	sp := tr.Span("gc", "scavenge")
	sp.Arg("promoted_bytes", 123).End()
	tr.Emit("io", "fetch", time.Now(), 5*time.Millisecond, I64("bytes", 77))
	if n := tr.SpanCount(); n != 2 {
		t.Fatalf("SpanCount = %d, want 2", n)
	}

	var buf bytes.Buffer
	if err := WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawScavenge, sawFetch, sawThreadName bool
	for _, ev := range doc.TraceEvents {
		switch ev["name"] {
		case "scavenge":
			sawScavenge = true
			if ev["cat"] != "gc" {
				t.Errorf("scavenge cat = %v", ev["cat"])
			}
			args, _ := ev["args"].(map[string]any)
			if args["promoted_bytes"] != float64(123) {
				t.Errorf("scavenge args = %v", args)
			}
		case "fetch":
			sawFetch = true
			if dur, _ := ev["dur"].(float64); dur < 4999 || dur > 5001 {
				t.Errorf("fetch dur = %v µs, want ~5000", ev["dur"])
			}
		case "thread_name":
			args, _ := ev["args"].(map[string]any)
			if args["name"] == "t-record" {
				sawThreadName = true
			}
		}
	}
	if !sawScavenge || !sawFetch || !sawThreadName {
		t.Errorf("trace missing events: scavenge=%v fetch=%v thread=%v", sawScavenge, sawFetch, sawThreadName)
	}
}

func TestTracerDedupByName(t *testing.T) {
	if NewTracer("t-dedup") != NewTracer("t-dedup") {
		t.Fatal("NewTracer did not dedup by name")
	}
}

func TestRingWrapsKeepingTail(t *testing.T) {
	withTracing(t)
	tr := NewTracer("t-wrap")
	start := time.Now()
	for i := 0; i < SpanRingSize+10; i++ {
		tr.Emit("c", "s", start, time.Duration(i))
	}
	if tr.SpanCount() != SpanRingSize {
		t.Fatalf("SpanCount = %d, want %d", tr.SpanCount(), SpanRingSize)
	}
	if tr.DroppedSpans() != 10 {
		t.Fatalf("DroppedSpans = %d, want 10", tr.DroppedSpans())
	}
	// Oldest surviving span is #10 (0-9 were overwritten).
	var first time.Duration
	seen := false
	tr.eachSpan(func(s *span) {
		if !seen {
			first = s.dur
			seen = true
		}
	})
	if first != 10 {
		t.Fatalf("oldest span dur = %d, want 10", first)
	}
}

func TestConcurrentEmit(t *testing.T) {
	withTracing(t)
	tr := NewTracer("t-conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("c", "s").Arg("i", int64(i)).End()
			}
		}()
	}
	wg.Wait()
	if tr.SpanCount() != 800 {
		t.Fatalf("SpanCount = %d, want 800", tr.SpanCount())
	}
}

func TestCountersAndMetricsExport(t *testing.T) {
	c := NewCounter("skyway_test_events_total", "test counter")
	if NewCounter("skyway_test_events_total", "other help") != c {
		t.Fatal("NewCounter did not dedup by name")
	}
	before := c.Value()
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if c.Value()-before != 42 {
		t.Fatalf("counter delta = %d, want 42", c.Value()-before)
	}

	RegisterGauge("skyway_test_level", "test gauge", func() float64 { return 2.5 })
	var buf bytes.Buffer
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{
		"# TYPE skyway_test_events_total counter",
		"# HELP skyway_test_events_total test counter",
		"# TYPE skyway_test_level gauge",
		"skyway_test_level 2.5",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("metrics output missing %q:\n%s", frag, out)
		}
	}
	// Gauge re-registration replaces the callback, not the series.
	RegisterGauge("skyway_test_level", "test gauge", func() float64 { return 9 })
	buf.Reset()
	if err := WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "# TYPE skyway_test_level gauge") != 1 {
		t.Error("gauge re-registration duplicated the series")
	}
	if !strings.Contains(buf.String(), "skyway_test_level 9") {
		t.Error("gauge re-registration did not replace the callback")
	}
}

func TestWriteTraceFile(t *testing.T) {
	withTracing(t)
	NewTracer("t-file").Span("c", "s").End()
	path := t.TempDir() + "/trace.json"
	if err := WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("trace file missing traceEvents")
	}
}
