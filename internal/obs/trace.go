package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// traceEvent is one Chrome-trace-format event ("X" = complete span, "M" =
// metadata). Timestamps and durations are microseconds, as the format
// requires.
type traceEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Dur  float64          `json:"dur,omitempty"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

type metaEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteTrace dumps every tracer's recorded spans as Chrome trace JSON
// ({"traceEvents": [...]}), one thread row per tracer, viewable in
// chrome://tracing or Perfetto.
func WriteTrace(w io.Writer) error {
	events := make([]any, 0, 256)
	events = append(events, metaEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]string{"name": "skyway"},
	})
	for tid, t := range allTracers() {
		events = append(events, metaEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid + 1,
			Args: map[string]string{"name": t.name},
		})
		t.eachSpan(func(s *span) {
			var args map[string]int64
			if len(s.args) > 0 {
				args = make(map[string]int64, len(s.args))
				for _, a := range s.args {
					args[a.Key] = a.Val
				}
			}
			events = append(events, traceEvent{
				Name: s.name, Cat: s.cat, Ph: "X",
				TS:  float64(s.start.Sub(epoch).Nanoseconds()) / 1e3,
				Dur: float64(s.dur.Nanoseconds()) / 1e3,
				PID: 1, TID: tid + 1, Args: args,
			})
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// WriteTraceFile writes the Chrome trace to path.
func WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DumpIfEnabled writes the trace to the SKYWAY_TRACE file when the
// variable is set — the exit hook every cmd/ binary runs.
func DumpIfEnabled() {
	path := TracePath()
	if path == "" {
		return
	}
	if err := WriteTraceFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "obs: writing SKYWAY_TRACE file: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "obs: trace written to %s (open in chrome://tracing)\n", path)
}
