package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing process-wide metric. Counters are
// always live (one atomic add per bump, no gating), so /metrics reflects
// every run in the process whether or not span tracing was on.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Gauge is a sampled metric backed by a callback, evaluated at export time.
type gauge struct {
	name, help string
	fn         func() float64
}

var (
	metricsMu sync.Mutex
	counters  []*Counter
	byMetric  = map[string]*Counter{}
	gauges    []gauge
	gaugeSet  = map[string]bool{}
)

// NewCounter returns the counter named name (Prometheus conventions:
// snake_case with a _total suffix), creating and registering it on first
// use. Deduplicated by name so package-level counters can be declared in
// var blocks across packages without coordination.
func NewCounter(name, help string) *Counter {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	if c, ok := byMetric[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	byMetric[name] = c
	counters = append(counters, c)
	return c
}

// Add increases the counter by n (negative n is ignored; counters are
// monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// RegisterGauge registers a callback-backed gauge. Re-registering a name
// replaces the callback (daemon restarts of a subsystem keep one series).
func RegisterGauge(name, help string, fn func() float64) {
	metricsMu.Lock()
	defer metricsMu.Unlock()
	if gaugeSet[name] {
		for i := range gauges {
			if gauges[i].name == name {
				gauges[i].fn = fn
			}
		}
		return
	}
	gaugeSet[name] = true
	gauges = append(gauges, gauge{name: name, help: help, fn: fn})
}

// WriteMetrics renders every registered counter and gauge in the Prometheus
// text exposition format (version 0.0.4), the format cmd/skywayd serves on
// /metrics.
func WriteMetrics(w io.Writer) error {
	metricsMu.Lock()
	cs := make([]*Counter, len(counters))
	copy(cs, counters)
	gs := make([]gauge, len(gauges))
	copy(gs, gauges)
	metricsMu.Unlock()

	sort.Slice(cs, func(i, j int) bool { return cs[i].name < cs[j].name })
	sort.Slice(gs, func(i, j int) bool { return gs[i].name < gs[j].name })

	for _, c := range cs {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gs {
		v := strconv.FormatFloat(g.fn(), 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			g.name, g.help, g.name, g.name, v); err != nil {
			return err
		}
	}
	return nil
}
