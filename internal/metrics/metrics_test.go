package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() Breakdown {
	return Breakdown{
		Compute: 100 * time.Millisecond,
		Ser:     40 * time.Millisecond,
		WriteIO: 10 * time.Millisecond,
		Deser:   30 * time.Millisecond,
		ReadIO:  20 * time.Millisecond,

		ShuffleBytes: 1000,
		LocalBytes:   400,
		RemoteBytes:  600,
		Records:      10,
	}
}

func TestTotalAndAdd(t *testing.T) {
	b := sample()
	if b.Total() != 200*time.Millisecond {
		t.Errorf("Total = %v", b.Total())
	}
	var acc Breakdown
	acc.Add(b)
	acc.Add(b)
	if acc.Total() != 400*time.Millisecond || acc.ShuffleBytes != 2000 || acc.Records != 20 {
		t.Errorf("Add accumulated wrong: %+v", acc)
	}
}

func TestWallVsSum(t *testing.T) {
	b := sample()
	if b.Sum() != 200*time.Millisecond {
		t.Errorf("Sum = %v", b.Sum())
	}
	// Sequential runs leave Wall zero: Total falls back to the component
	// sum, so historical numbers are unchanged.
	if b.Wall != 0 || b.Total() != b.Sum() {
		t.Errorf("zero-Wall Total = %v, want %v", b.Total(), b.Sum())
	}
	// Parallel runs record measured wall-clock, which Total prefers; the
	// components keep summing.
	b.Wall = 120 * time.Millisecond
	if b.Total() != 120*time.Millisecond {
		t.Errorf("Wall-based Total = %v", b.Total())
	}
	if b.Sum() != 200*time.Millisecond {
		t.Errorf("Sum changed with Wall: %v", b.Sum())
	}
	// Stages are barriers, so walls add across Add.
	acc := b
	acc.Add(b)
	if acc.Wall != 240*time.Millisecond || acc.Sum() != 400*time.Millisecond {
		t.Errorf("Add: wall %v sum %v", acc.Wall, acc.Sum())
	}
	// SDShare stays a share of CPU+IO component time (a wall denominator
	// could push it past 1 when components overlap).
	want := float64(70) / 200
	if math.Abs(b.SDShare()-want) > 1e-9 {
		t.Errorf("SDShare with Wall = %f, want %f", b.SDShare(), want)
	}
	if !strings.Contains(b.String(), "wall=120ms") {
		t.Errorf("String() missing wall: %s", b.String())
	}
}

// Regression: folding a sequential breakdown (Wall=0, elapsed = component
// sum) into a wall-based parallel one must not drop the sequential run's
// entire time from Total(). Pre-fix, Add merged Wall by plain addition, so
// parallel(Wall=120ms) + sequential(sum=200ms) totalled 120ms.
func TestAddMixedSequentialParallel(t *testing.T) {
	parallel := sample() // sum = 200ms
	parallel.Wall = 120 * time.Millisecond
	sequential := sample() // Wall = 0, Total = Sum = 200ms

	acc := parallel
	acc.Add(sequential)
	if want := 320 * time.Millisecond; acc.Total() != want {
		t.Errorf("parallel+sequential Total = %v, want %v (sequential stage dropped)", acc.Total(), want)
	}
	if acc.Sum() != 400*time.Millisecond {
		t.Errorf("components must still sum: %v", acc.Sum())
	}

	// Symmetric: a sequential accumulator absorbing a parallel stage must
	// become wall-based rather than discarding the parallel wall.
	acc = sequential
	acc.Add(parallel)
	if want := 320 * time.Millisecond; acc.Total() != want {
		t.Errorf("sequential+parallel Total = %v, want %v", acc.Total(), want)
	}

	// Sequential-only accumulation stays component-summed (Wall zero).
	acc = sequential
	acc.Add(sequential)
	if acc.Wall != 0 || acc.Total() != 400*time.Millisecond {
		t.Errorf("sequential-only Add: wall=%v total=%v", acc.Wall, acc.Total())
	}

	// A zero Breakdown folded into a parallel one changes nothing.
	acc = parallel
	acc.Add(Breakdown{})
	if acc.Total() != 120*time.Millisecond {
		t.Errorf("parallel+zero Total = %v", acc.Total())
	}
}

func TestSDShare(t *testing.T) {
	b := sample()
	want := float64(70) / 200
	if math.Abs(b.SDShare()-want) > 1e-9 {
		t.Errorf("SDShare = %f, want %f", b.SDShare(), want)
	}
	var zero Breakdown
	if zero.SDShare() != 0 {
		t.Error("zero breakdown SDShare not 0")
	}
}

func TestNormalize(t *testing.T) {
	b := sample()
	half := Breakdown{
		Compute: 50 * time.Millisecond,
		Ser:     20 * time.Millisecond,
		WriteIO: 5 * time.Millisecond,
		Deser:   15 * time.Millisecond,
		ReadIO:  10 * time.Millisecond,

		ShuffleBytes: 500,
	}
	r := Normalize(half, b)
	if math.Abs(r.Overall-0.5) > 1e-9 || math.Abs(r.Size-0.5) > 1e-9 {
		t.Errorf("Normalize = %+v", r)
	}
	// Zero base yields NaN, not a panic or Inf.
	r = Normalize(b, Breakdown{})
	if !math.IsNaN(r.Ser) || !math.IsNaN(r.Size) {
		t.Errorf("zero-base Normalize = %+v", r)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %f", g)
	}
	if !math.IsNaN(Geomean(nil)) {
		t.Error("Geomean(nil) not NaN")
	}
	if !math.IsNaN(Geomean([]float64{1, -1})) {
		t.Error("Geomean with negative not NaN")
	}
}

func TestSummaryCells(t *testing.T) {
	var s Summary
	s.Add(Ratio{Overall: 0.5, Ser: 0.4, WriteIO: 1.0, Deser: 0.2, ReadIO: 0.9, Size: 1.5})
	s.Add(Ratio{Overall: 2.0, Ser: 0.9, WriteIO: 1.2, Deser: 0.3, ReadIO: 1.1, Size: 3.0})
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	cell := s.Cell("Overall")
	if !strings.Contains(cell, "0.50 ~ 2.00") || !strings.Contains(cell, "(1.00)") {
		t.Errorf("Overall cell = %q", cell)
	}
	if s.Cell("nope") != "-" {
		t.Error("unknown column did not return placeholder")
	}
	row := s.Row()
	for _, col := range []string{"Overall", "Ser", "Write", "Des", "Read", "Size"} {
		if !strings.Contains(row, col+"=") {
			t.Errorf("Row missing %s: %q", col, row)
		}
	}
}

func TestSummarySkipsNaN(t *testing.T) {
	var s Summary
	s.Add(Ratio{Overall: 1.0, Ser: math.NaN()})
	s.Add(Ratio{Overall: 2.0, Ser: 0.5})
	if cell := s.Cell("Ser"); !strings.Contains(cell, "0.50 ~ 0.50") {
		t.Errorf("Ser cell = %q", cell)
	}
}

func TestBreakdownString(t *testing.T) {
	s := sample().String()
	for _, frag := range []string{"total=200ms", "ser=40ms", "deser=30ms", "local=400", "remote=600"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}

// Property: normalization by self is all ones (when every component is
// nonzero), and Geomean of [x] is x.
func TestNormalizeSelfQuick(t *testing.T) {
	f := func(a, b, c, d, e uint16, n uint16) bool {
		bd := Breakdown{
			Compute: time.Duration(a) + 1, Ser: time.Duration(b) + 1,
			WriteIO: time.Duration(c) + 1, Deser: time.Duration(d) + 1,
			ReadIO: time.Duration(e) + 1, ShuffleBytes: int64(n) + 1,
		}
		r := Normalize(bd, bd)
		ok := func(v float64) bool { return math.Abs(v-1) < 1e-9 }
		return ok(r.Overall) && ok(r.Ser) && ok(r.WriteIO) && ok(r.Deser) && ok(r.ReadIO) && ok(r.Size)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
