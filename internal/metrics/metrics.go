// Package metrics defines the run-time breakdown the paper's evaluation
// reports (Figures 3 and 8): computation time, serialization time, shuffle
// write I/O, deserialization time, read I/O (network included), plus byte
// accounting split into locally and remotely fetched shuffle data.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Breakdown is one run's cost decomposition. CPU-side components (Compute,
// Ser, Deser) are measured; I/O components are modelled from byte counts by
// a netsim.CostModel, matching the paper's bandwidth-bound I/O.
//
// The five component durations are per-node aggregates: they sum across
// executors, like the paper's per-node breakdown (§2.2). Wall, when set,
// is the run's end-to-end elapsed time; with tasks executing concurrently
// it is driven by the slowest executor of each stage and is therefore less
// than the component sum. Sequential runs leave Wall zero, in which case
// the component sum *is* the elapsed time.
type Breakdown struct {
	Compute time.Duration
	Ser     time.Duration
	WriteIO time.Duration
	Deser   time.Duration
	ReadIO  time.Duration

	// Wall is the end-to-end elapsed time of a run whose tasks executed
	// concurrently: per stage, the slowest executor's component sum;
	// across stages (which are barriers) those maxima add. Zero on
	// sequential runs.
	Wall time.Duration

	// ShuffleBytes is the total serialized shuffle volume; LocalBytes and
	// RemoteBytes split fetches by origin (Figure 3(b)).
	ShuffleBytes int64
	LocalBytes   int64
	RemoteBytes  int64

	// Records counts shuffled records, for sanity checks across codecs.
	Records int64
}

// Sum returns the added-up component time — the aggregate CPU and modelled
// I/O across all executors. For a sequential run this equals the elapsed
// time; for a parallel run it exceeds it.
func (b Breakdown) Sum() time.Duration {
	return b.Compute + b.Ser + b.WriteIO + b.Deser + b.ReadIO
}

// Total returns the end-to-end time: the measured wall-clock when the run
// recorded one (parallel execution), otherwise the component sum.
func (b Breakdown) Total() time.Duration {
	if b.Wall > 0 {
		return b.Wall
	}
	return b.Sum()
}

// Add accumulates other into b. Stages are barriers, so end-to-end times
// add: when either side is wall-based, the merged Wall is the sum of both
// sides' Totals — a sequential stage (Wall zero, elapsed time = component
// sum) folded into a parallel run contributes its component sum, not zero.
// (Plain `b.Wall += other.Wall` silently dropped the sequential side's
// entire elapsed time from Total.)
func (b *Breakdown) Add(other Breakdown) {
	if b.Wall > 0 || other.Wall > 0 {
		b.Wall = b.Total() + other.Total()
	}
	b.Compute += other.Compute
	b.Ser += other.Ser
	b.WriteIO += other.WriteIO
	b.Deser += other.Deser
	b.ReadIO += other.ReadIO
	b.ShuffleBytes += other.ShuffleBytes
	b.LocalBytes += other.LocalBytes
	b.RemoteBytes += other.RemoteBytes
	b.Records += other.Records
}

// SDShare returns the fraction of time spent in S/D functions — the
// quantity §2.2 reports as >30% for Spark. The share is computed over the
// component sum so it stays a per-node CPU ratio, comparable between
// sequential and parallel runs (dividing the summed S/D time by a max-based
// wall-clock could exceed 1).
func (b Breakdown) SDShare() float64 {
	t := b.Sum()
	if t == 0 {
		return 0
	}
	return float64(b.Ser+b.Deser) / float64(t)
}

// String renders a one-line summary.
func (b Breakdown) String() string {
	wall := ""
	if b.Wall > 0 {
		wall = fmt.Sprintf(" (wall=%v)", b.Wall.Round(time.Millisecond))
	}
	return fmt.Sprintf("total=%v%s compute=%v ser=%v writeIO=%v deser=%v readIO=%v bytes=%d (local=%d remote=%d)",
		b.Total().Round(time.Millisecond), wall, b.Compute.Round(time.Millisecond), b.Ser.Round(time.Millisecond),
		b.WriteIO.Round(time.Millisecond), b.Deser.Round(time.Millisecond), b.ReadIO.Round(time.Millisecond),
		b.ShuffleBytes, b.LocalBytes, b.RemoteBytes)
}

// Ratio is one normalized comparison entry (a cell of Table 2 / Table 4).
type Ratio struct {
	Overall, Ser, WriteIO, Deser, ReadIO, Size float64
}

// Normalize divides b's components by base's, producing Table 2-style
// normalized performance (lower is better; size > 1 means more bytes).
func Normalize(b, base Breakdown) Ratio {
	div := func(x, y time.Duration) float64 {
		if y == 0 {
			return math.NaN()
		}
		return float64(x) / float64(y)
	}
	sz := math.NaN()
	if base.ShuffleBytes > 0 {
		sz = float64(b.ShuffleBytes) / float64(base.ShuffleBytes)
	}
	return Ratio{
		Overall: div(b.Total(), base.Total()),
		Ser:     div(b.Ser, base.Ser),
		WriteIO: div(b.WriteIO, base.WriteIO),
		Deser:   div(b.Deser, base.Deser),
		ReadIO:  div(b.ReadIO, base.ReadIO),
		Size:    sz,
	}
}

// Summary aggregates ratios into the min~max(geomean) cells of Table 2.
type Summary struct{ ratios []Ratio }

// Add appends one normalized run.
func (s *Summary) Add(r Ratio) { s.ratios = append(s.ratios, r) }

// Len returns the number of accumulated ratios.
func (s *Summary) Len() int { return len(s.ratios) }

type col struct {
	name string
	get  func(Ratio) float64
}

var columns = []col{
	{"Overall", func(r Ratio) float64 { return r.Overall }},
	{"Ser", func(r Ratio) float64 { return r.Ser }},
	{"Write", func(r Ratio) float64 { return r.WriteIO }},
	{"Des", func(r Ratio) float64 { return r.Deser }},
	{"Read", func(r Ratio) float64 { return r.ReadIO }},
	{"Size", func(r Ratio) float64 { return r.Size }},
}

// Cell formats one column as "lo ~ hi (geomean)" over the added ratios,
// skipping NaNs.
func (s *Summary) Cell(name string) string {
	for _, c := range columns {
		if c.name != name {
			continue
		}
		var vals []float64
		for _, r := range s.ratios {
			v := c.get(r)
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return "-"
		}
		sort.Float64s(vals)
		return fmt.Sprintf("%.2f ~ %.2f (%.2f)", vals[0], vals[len(vals)-1], Geomean(vals))
	}
	return "-"
}

// Row renders all columns, Table 2 style.
func (s *Summary) Row() string {
	parts := make([]string, len(columns))
	for i, c := range columns {
		parts[i] = c.name + "=" + s.Cell(c.name)
	}
	return strings.Join(parts, "  ")
}

// Geomean returns the geometric mean of vals.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	var logs float64
	for _, v := range vals {
		if v <= 0 {
			return math.NaN()
		}
		logs += math.Log(v)
	}
	return math.Exp(logs / float64(len(vals)))
}
