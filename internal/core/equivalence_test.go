package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"skyway/internal/heap"
)

// Property: compact mode and standard mode are observationally equivalent —
// for any random graph, both decode to structurally identical results with
// identical field values — while compact never uses more wire bytes.
func TestCompactEquivalenceQuick(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	pk := snd.MustLoad("Pair")
	vF, nF := ck.FieldByName("v"), ck.FieldByName("next")

	f := func(vals []float64, links []uint8, hashSel uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 25 {
			vals = vals[:25]
		}
		handles := make([]interface {
			Addr() heap.Addr
			Release()
		}, len(vals))
		for i, v := range vals {
			c := snd.MustNew(ck)
			snd.SetDouble(c, vF, v)
			handles[i] = snd.Pin(c)
		}
		defer func() {
			for _, h := range handles {
				h.Release()
			}
		}()
		for i := range handles {
			if len(links) == 0 {
				break
			}
			tgt := int(links[i%len(links)]) % len(handles)
			snd.SetRef(handles[i].Addr(), nF, handles[tgt].Addr())
		}
		// Hash a subset so both hashed and unhashed marks travel.
		for i := range handles {
			if (uint8(i)+hashSel)%3 == 0 {
				snd.HashCode(handles[i].Addr())
			}
		}
		root := snd.MustNew(pk)
		snd.SetRef(root, pk.FieldByName("a"), handles[0].Addr())
		snd.SetRef(root, pk.FieldByName("b"), handles[len(handles)-1].Addr())
		rootPin := snd.Pin(root)
		defer rootPin.Release()

		transfer := func(opts ...WriterOption) (heap.Addr, int, bool) {
			sky.ShuffleStart()
			var buf bytes.Buffer
			w := sky.NewWriter(&buf, append(opts, WithBufferSize(256))...)
			if err := w.WriteObject(rootPin.Addr()); err != nil {
				return heap.Null, 0, false
			}
			if err := w.Close(); err != nil {
				return heap.Null, 0, false
			}
			n := buf.Len()
			got, err := NewReader(rcv, &buf).ReadObject()
			return got, n, err == nil
		}
		stdRoot, stdBytes, ok := transfer()
		if !ok {
			return false
		}
		cmpRoot, cmpBytes, ok := transfer(WithCompactHeaders())
		if !ok {
			return false
		}
		if cmpBytes > stdBytes {
			return false
		}

		// Structural lockstep walk comparing values and cached hashes.
		type pairT struct{ a, b heap.Addr }
		seen := make(map[pairT]bool)
		rck := rcv.MustLoad("Cell")
		rpk := rcv.MustLoad("Pair")
		var walk func(a, b heap.Addr, depth int) bool
		walk = func(a, b heap.Addr, depth int) bool {
			if depth > 120 {
				return true
			}
			if (a == heap.Null) != (b == heap.Null) {
				return false
			}
			if a == heap.Null || seen[pairT{a, b}] {
				return true
			}
			seen[pairT{a, b}] = true
			if rcv.KlassOf(a) != rcv.KlassOf(b) {
				return false
			}
			ha, oka := rcv.Heap.HashOf(a)
			hb, okb := rcv.Heap.HashOf(b)
			if oka != okb || ha != hb {
				return false
			}
			if rcv.KlassOf(a) == rck {
				if rcv.GetDouble(a, rck.FieldByName("v")) != rcv.GetDouble(b, rck.FieldByName("v")) {
					return false
				}
				return walk(rcv.GetRef(a, rck.FieldByName("next")), rcv.GetRef(b, rck.FieldByName("next")), depth+1)
			}
			return walk(rcv.GetRef(a, rpk.FieldByName("a")), rcv.GetRef(b, rpk.FieldByName("a")), depth+1) &&
				walk(rcv.GetRef(a, rpk.FieldByName("b")), rcv.GetRef(b, rpk.FieldByName("b")), depth+1)
		}
		return walk(stdRoot, cmpRoot, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
