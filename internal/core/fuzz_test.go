package core

import (
	"bytes"
	"io"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

// fuzzHeap keeps per-iteration runtimes cheap: the fuzzer boots a fresh
// receiver for every input so a poisoned heap can never leak between cases.
func fuzzHeap() heap.Config {
	return heap.Config{
		EdenSize:     1 << 20,
		SurvivorSize: 256 << 10,
		OldSize:      4 << 20,
		BufferSize:   4 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
}

// fuzzSeeds encodes real Skyway streams (standard and compact, single and
// multi-root) so mutation starts from wire-valid inputs that reach the deep
// validation layers rather than dying at the magic check.
func fuzzSeeds(f *testing.F, cp *klass.Path, reg *registry.Registry) [][]byte {
	f.Helper()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "fuzz-snd", Registry: registry.InProc{R: reg}, Heap: fuzzHeap()})
	if err != nil {
		f.Fatal(err)
	}
	sky := New(snd)
	date := func() heap.Addr {
		dk := snd.MustLoad("Date")
		yk := snd.MustLoad("Year4D")
		yo := snd.MustNew(yk)
		snd.SetInt(yo, yk.FieldByName("value"), 2018)
		yp := snd.Pin(yo)
		defer yp.Release()
		do := snd.MustNew(dk)
		snd.SetRef(do, dk.FieldByName("year"), yp.Addr())
		snd.SetInt(do, dk.FieldByName("month"), 3)
		snd.SetInt(do, dk.FieldByName("day"), 24)
		return do
	}

	var seeds [][]byte
	encode := func(opts ...WriterOption) {
		var buf bytes.Buffer
		w := sky.NewWriter(&buf, opts...)
		d := date()
		dh := snd.Pin(d)
		if err := w.WriteObject(dh.Addr()); err != nil {
			f.Fatal(err)
		}
		if err := w.WriteObject(dh.Addr()); err != nil { // shared root → back-reference
			f.Fatal(err)
		}
		dh.Release()
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	encode()
	encode(WithCompactHeaders())
	encode(WithBufferSize(128)) // force multi-segment streaming
	return seeds
}

// FuzzReaderDecode drives arbitrary bytes through the hardened decode path.
// The invariant matches the chaos suite's: every input either decodes or
// fails with a structured *DecodeError — never a panic, never a silent
// wrong answer from a malformed frame.
func FuzzReaderDecode(f *testing.F) {
	cp := klass.NewPath()
	cp.MustDefine(
		&klass.ClassDef{Name: "Date", Fields: []klass.FieldDef{
			{Name: "year", Kind: klass.Ref, Class: "Year4D"},
			{Name: "month", Kind: klass.Int32},
			{Name: "day", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: "Year4D", Fields: []klass.FieldDef{
			{Name: "value", Kind: klass.Int32},
		}},
	)
	reg := registry.NewRegistry()
	for _, seed := range fuzzSeeds(f, cp, reg) {
		f.Add(seed)
	}
	// Handcrafted near-valid frames (more live in testdata/fuzz/).
	hdr := []byte("SKYW\x02\x01\x00\x00")
	f.Add([]byte("SKYJ\x02\x01\x00\x00"))                            // bad magic
	f.Add([]byte("SKYW\x09\x01\x00\x00"))                            // unknown version
	f.Add(append(append([]byte{}, hdr...), 'S', 0xFF, 0xFF, 0xFF, 0xFF)) // absurd segment length
	f.Add(append(append([]byte{}, hdr...), 'T', 0, 0))               // truncated top mark
	f.Add(append(append([]byte{}, hdr...), 'Z'))                     // unknown tag
	f.Add(append(append([]byte{}, hdr...), 'T', 0, 0, 0, 0, 0, 0, 0, 9)) // top into no chunks

	f.Fuzz(func(t *testing.T, data []byte) {
		rcv, err := vm.NewRuntime(cp, vm.Options{Name: "fuzz-rcv", Registry: registry.InProc{R: reg}, Heap: fuzzHeap()})
		if err != nil {
			t.Fatal(err)
		}
		rd := NewReader(rcv, bytes.NewReader(data))
		defer rd.Free()
		for {
			_, err := rd.ReadObject()
			if err == io.EOF {
				return
			}
			if err != nil {
				if _, ok := AsDecodeError(err); !ok {
					t.Fatalf("decoder surfaced unstructured error %T: %v", err, err)
				}
				return
			}
		}
	})
}
