package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"skyway/internal/arena"
	"skyway/internal/fault"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/vm"
)

// Arena decode mode (the SKYWAY_ARENA path): received segments are staged
// into an mmap-backed region outside the managed heap and are NEVER
// absolutized. The linear scan still runs — every structural property a
// malformed stream could abuse (type IDs, declared lengths, reference
// shape) is validated with exactly the checks, error kinds and messages of
// the eager path — but it commits nothing: klass words keep their global
// type IDs, reference slots keep their biased relative addresses. Roots
// come back as tagged arena addresses (heap.ComposeArenaAddr) that the vm
// accessor layer resolves on demand, promoting an object into the managed
// heap only when a workload mutates it. The collector never pins, scans or
// compacts a byte of it; Free releases the whole region at once.

// Promote is the copy-on-write promotion funnel: it absolutizes the single
// object at a (an arena handle returned by an arena-mode Reader) into the
// managed heap and returns its managed address. Managed addresses pass
// through unchanged. The object's reference slots stay lazy — they come
// back tagged, not translated.
func Promote(rt *vm.Runtime, a heap.Addr) (heap.Addr, error) {
	return rt.Promote(a)
}

// ReaderOption configures NewReader.
type ReaderOption func(*Reader)

// WithArena stages this reader's segments into an off-heap arena region
// instead of pinned buffer space, and defers absolutization to first
// mutation.
func WithArena() ReaderOption {
	return func(rd *Reader) { rd.arena = true }
}

// ArenaRegion returns the reader's arena region (nil before the first
// segment, or on a non-arena reader). The dataflow layer uses it to bind
// shuffle-stage regions to their stage epoch for wholesale reclamation.
func (rd *Reader) ArenaRegion() *arena.Region { return rd.region }

// arenaRegion returns the reader's region, creating it on first use, and
// refuses to touch a region that was retired out from under the stream
// (the arena.region.premature-free failpoint, or a stage-epoch backstop
// firing early): that must surface as a structured resource error, never
// as a read of unmapped memory.
func (rd *Reader) arenaRegion() (*arena.Region, error) {
	if rd.region == nil {
		rd.region = rd.rt.Arena.NewRegion()
	}
	if rd.region.Retired() {
		return nil, rd.decodeErrf(DecodeResource, 0,
			"arena region %d retired while its stream was still open", rd.region.ID())
	}
	return rd.region, nil
}

// readSegmentArena stages one standard segment of n bytes into the arena:
// map, fill, validate (CRC + injected damage), then commit to the region's
// relative-address table. A segment that fails validation is unmapped
// before the error surfaces — it never enters the table.
func (rd *Reader) readSegmentArena(n, wireCRC uint32) error {
	reg, err := rd.arenaRegion()
	if err != nil {
		return err
	}
	seg, err := reg.Stage(n)
	if err != nil {
		return rd.decodeWrap(DecodeResource, uint64(n), err)
	}
	if err := rd.fillStaged(seg, wireCRC); err != nil {
		reg.Discard(seg)
		return err
	}
	rd.commitArena(reg, seg, n)
	return nil
}

// readCompactSegmentArena re-inflates a compact segment into a staged arena
// mapping instead of a heap chunk; everything downstream (validation scan,
// translation, promotion) is shared with the standard arena path.
func (rd *Reader) readCompactSegmentArena(phys []byte, decoded uint32) error {
	reg, err := rd.arenaRegion()
	if err != nil {
		return err
	}
	seg, err := reg.Stage(decoded)
	if err != nil {
		return rd.decodeWrap(DecodeResource, uint64(decoded), err)
	}
	if err := rd.decodeCompactSegmentBytes(phys, seg); err != nil {
		reg.Discard(seg)
		return err
	}
	rd.commitArena(reg, seg, decoded)
	return nil
}

// commitArena publishes a validated staged segment: region table first,
// then the reader's chunk table (same startRel bookkeeping as the eager
// path, with base left Null — arena chunks have no heap address).
func (rd *Reader) commitArena(reg *arena.Region, seg []byte, n uint32) {
	startRel := rd.received()
	reg.Commit(startRel, seg)
	rd.chunks = append(rd.chunks, chunk{startRel: startRel, size: n, seg: seg})
	rd.Bytes += uint64(n)
	ctrChunks.Inc()
	ctrBytesRecv.Add(int64(n))
}

// decodeCompactSegmentBytes is decodeCompactSegment retargeted at a raw
// little-endian segment image: identical record grammar, identical
// validation and error text, but the inflated standard image is written
// with heap.StoreBytes instead of heap stores.
func (rd *Reader) decodeCompactSegmentBytes(phys, seg []byte) error {
	rt := rd.rt
	layout := rt.Heap.Layout()
	decoded := uint32(len(seg))
	pos := 0
	a := uint32(0)

	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(phys[pos:])
		if n <= 0 {
			return 0, rd.decodeErrf(DecodeLength, uint64(pos), "compact segment truncated (uvarint)")
		}
		pos += n
		return v, nil
	}

	for pos < len(phys) {
		if a >= decoded {
			return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment inflates past its declared size")
		}
		tid64, err := readUvarint()
		if err != nil {
			return err
		}
		k, err := rt.KlassByTID(int32(uint32(tid64)))
		if err == nil {
			err = checkKlassKinds(k)
		}
		if err != nil {
			return rd.decodeWrap(DecodeType, uint64(pos), err)
		}
		if pos >= len(phys) {
			return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment truncated (flags)")
		}
		flags := phys[pos]
		pos++
		var hash uint32
		hashed := flags&compactFlagHashed != 0
		if hashed {
			if pos+4 > len(phys) {
				return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment truncated (hash)")
			}
			hash = binary.LittleEndian.Uint32(phys[pos:])
			pos += 4
		}
		isArray := flags&compactFlagArray != 0
		if isArray != k.IsArray {
			return rd.decodeErrf(DecodeType, uint64(pos), "compact record array flag disagrees with class %s", k.Name)
		}

		size := k.Size
		payloadOff := layout.HeaderSize()
		arrayLen := uint64(0)
		if isArray {
			arrayLen, err = readUvarint()
			if err != nil {
				return err
			}
			if arrayLen > uint64(decoded) {
				return rd.decodeErrf(DecodeLength, uint64(pos), "compact record array length %d implausible", arrayLen)
			}
			// Widen before multiplying (cf. vm.NewArray): InstanceBytes
			// computes in uint32, so arrayLen near 2^32/ElemSize would wrap
			// to a tiny size that passes the overrun check below and plants
			// an oversized array-length header in the chunk. arrayLen <=
			// decoded above bounds the uint64 product.
			if uint64(k.Size)+arrayLen*uint64(k.ElemSize()) > uint64(decoded-a) {
				return rd.decodeErrf(DecodeLength, uint64(pos), "compact record array length %d overruns its chunk", arrayLen)
			}
			size = k.InstanceBytes(int(arrayLen))
			payloadOff = layout.ArrayHeaderSize()
		}
		if uint64(a)+uint64(size) > uint64(decoded) {
			return rd.decodeErrf(DecodeLength, uint64(pos), "compact record overruns its chunk")
		}
		payload := size - payloadOff
		if pos+int(payload) > len(phys) {
			return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment truncated (payload)")
		}

		// Re-inflate the standard wire image in place.
		heap.StoreBytes(seg, a+klass.OffMark, klass.Int64, composeMark(hash, hashed))
		heap.StoreBytes(seg, a+klass.OffKlass, klass.Int64, tid64)
		if layout.Baddr {
			heap.StoreBytes(seg, a+uint32(layout.OffBaddr()), klass.Int64, 0)
		}
		if isArray {
			heap.StoreBytes(seg, a+layout.OffArrayLen(), klass.Int64, arrayLen)
		}
		if payload > 0 {
			copy(seg[a+payloadOff:a+size], phys[pos:pos+int(payload)])
		}
		pos += int(payload)
		a += size
	}
	if a != decoded {
		return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment inflated to %d bytes, expected %d", a, decoded)
	}
	return nil
}

// validateArena is the arena-mode counterpart of absolutize: the same
// linear scan with the same validation order and the same forward-reference
// deferral, but the only bytes it writes are registered §3.3 field updates
// (and the injected post-checksum corruption the scan exists to catch).
// Type IDs stay global, references stay relative — resolution is the
// accessor layer's job, object by object, on demand.
func (rd *Reader) validateArena() error {
	rt := rd.rt
	// Failpoint: the region is reclaimed out from under the live stream —
	// a lifecycle bug (or this injection) that the retired-region guard
	// must turn into a structured error.
	if fault.Eval(fault.ArenaRegionPrematureFree) && rd.region != nil {
		rd.region.ForceRetire()
	}
	if len(rd.chunks) == 0 {
		return nil
	}
	reg, err := rd.arenaRegion()
	if err != nil {
		return err
	}
	limit := rd.received()
	objects0 := rd.Objects
	defer func() { ctrObjectsRecv.Add(int64(rd.Objects - objects0)) }()
	for ; rd.parsed < len(rd.chunks); rd.parsed++ {
		c := &rd.chunks[rd.parsed]
		seg := c.seg
		off := c.done
		for off < c.size {
			relOff := c.startRel + uint64(off)
			tid := int32(uint32(heap.LoadBytes(seg, off+klass.OffKlass, klass.Int64)))
			k := rd.lastKlass
			if k == nil || tid != rd.lastTID {
				var err error
				k, err = rt.KlassByTID(tid)
				if err == nil {
					err = checkKlassKinds(k)
				}
				if err != nil {
					return rd.decodeWrap(DecodeType, relOff, err)
				}
				rd.lastTID, rd.lastKlass = tid, k
			}
			size := k.Size
			if k.IsArray {
				n := int(int64(heap.LoadBytes(seg, off+rt.Heap.Layout().OffArrayLen(), klass.Int64)))
				// Widen before multiplying — same wrap hazard as the eager
				// scan (see Reader.absolutize): n is a wire-supplied length.
				if n < 0 || uint64(n) > uint64(c.size) ||
					uint64(k.Size)+uint64(n)*uint64(k.ElemSize()) > uint64(c.size-off) {
					return rd.decodeErrf(DecodeLength, relOff, "array length %d of %s exceeds its chunk", n, k.Name)
				}
				size = k.InstanceBytes(n)
			}
			if uint64(off)+uint64(size) > uint64(c.size) {
				return rd.decodeErrf(DecodeLength, relOff, "%d-byte %s overruns its chunk", size, k.Name)
			}

			// Collect the object's reference slot offsets.
			var refBase uint32
			var refCount int
			var refOffsets []uint32
			if k.IsArray {
				if k.Elem == klass.Ref {
					refBase = rt.Heap.Layout().ArrayHeaderSize()
					refCount = int(int64(heap.LoadBytes(seg, off+rt.Heap.Layout().OffArrayLen(), klass.Int64)))
				}
			} else {
				refOffsets = k.RefOffsets
				refCount = len(refOffsets)
			}
			slotOff := func(i int) uint32 {
				if refOffsets != nil {
					return refOffsets[i]
				}
				return refBase + uint32(i)*8
			}

			// Failpoint: stomp a real reference slot with an unaligned,
			// out-of-space relative pointer — post-checksum corruption the
			// CRC cannot see, which the bounds check below must reject.
			if refCount > 0 && fault.Eval(fault.CoreChunkBadPtr) {
				heap.StoreBytes(seg, off+slotOff(0), klass.Ref, 0xDEADBEEF)
			}

			// Verify every reference is well formed and resolvable; a
			// well-formed forward reference beyond the received data defers
			// the rest of the scan, exactly as in the eager path.
			for i := 0; i < refCount; i++ {
				rel := heap.LoadBytes(seg, off+slotOff(i), klass.Ref)
				if rel == 0 {
					continue
				}
				if rel < relBias || rel%klass.WordSize != 0 || rel > heap.BaddrRelMask {
					return rd.decodeErrf(DecodePointer, relOff,
						"reference slot %d of %s holds malformed relative address %#x", i, k.Name, rel)
				}
				if rel >= limit {
					c.done = off
					return nil
				}
			}

			// No commit: the image stays relativized. Registered field
			// updates are the one exception — they must be applied exactly
			// once, at receive time, on both paths, so the update function
			// sees the object through its tagged handle.
			if !k.IsArray {
				for _, u := range rt.UpdatesFor(k) {
					v := u.Fn(rt, heap.ComposeArenaAddr(reg.ID(), relOff))
					heap.StoreBytes(seg, off+u.Field.Offset, u.Field.Kind, v)
				}
			}
			rd.Objects++
			off += size
			c.done = off
		}
	}
	return nil
}

// verifyTopArena is the SKYWAY_VERIFY top-mark audit for arena streams: all
// chunks validated, and the named root resolving to an object whose global
// type ID is loadable.
func (rd *Reader) verifyTopArena(rel uint64) error {
	if rd.parsed < len(rd.chunks) {
		c := &rd.chunks[rd.parsed]
		return fmt.Errorf("skyway: verify: top mark %#x arrived with arena chunk %d validated only to %d/%d bytes",
			rel, rd.parsed, c.done, c.size)
	}
	if rel != 0 {
		a, err := rd.translate(rel)
		if err != nil {
			return fmt.Errorf("skyway: verify: top mark: %w", err)
		}
		i := sort.Search(len(rd.chunks), func(i int) bool { return rd.chunks[i].startRel > rel }) - 1
		c := &rd.chunks[i]
		tid := int32(uint32(heap.LoadBytes(c.seg, uint32(rel-c.startRel)+klass.OffKlass, klass.Int64)))
		if _, err := rd.rt.KlassByTID(tid); err != nil {
			return fmt.Errorf("skyway: verify: top mark %#x names %#x whose type ID %d is not loadable: %v",
				rel, uint64(a), tid, err)
		}
	}
	return nil
}
