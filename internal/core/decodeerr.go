package core

import (
	"errors"
	"fmt"
)

// DecodeKind classifies what a received stream got wrong.
type DecodeKind string

// Decode error kinds, one per validation layer of the receive path.
const (
	// DecodeFrame: the stream-level framing is broken — bad magic, an
	// unsupported version, an unknown frame tag, or a stream that ends
	// mid-frame.
	DecodeFrame DecodeKind = "frame"
	// DecodeChecksum: a segment's payload does not match its CRC-32C — the
	// bytes were damaged in flight.
	DecodeChecksum DecodeKind = "checksum"
	// DecodeLength: a declared length is impossible — zero, unaligned,
	// implausibly large, or inconsistent with the data that follows.
	DecodeLength DecodeKind = "length"
	// DecodeType: an object's global type ID does not resolve to a class,
	// or its shape disagrees with the resolved class.
	DecodeType DecodeKind = "type"
	// DecodePointer: a relative pointer falls outside the received stream
	// space, or a top mark names data that never arrived.
	DecodePointer DecodeKind = "pointer"
	// DecodeResource: the receiver could not stage the stream — input-buffer
	// space exhausted. Retrying after freeing buffers may succeed; the other
	// kinds are permanent properties of the bytes.
	DecodeResource DecodeKind = "resource"
)

// DecodeError is the structured error every malformed or damaged Skyway
// stream surfaces as. The receive path validates each segment before any of
// it is absolutized into the heap, so a DecodeError guarantees the heap was
// left exactly as it was — degraded, never corrupted. Consumers branch on
// Kind (dataflow retries torn transfers, gives up on resource exhaustion)
// and errors.As/Is work through it.
type DecodeError struct {
	Kind   DecodeKind
	Stream uint16 // stream ID from the header; 0 when the header never parsed
	Offset uint64 // relative stream offset or byte position, when known
	Detail string
	Err    error // wrapped cause, when any
}

func (e *DecodeError) Error() string {
	msg := fmt.Sprintf("skyway: decode [%s]", e.Kind)
	if e.Stream != 0 {
		msg += fmt.Sprintf(" stream %d", e.Stream)
	}
	if e.Offset != 0 {
		msg += fmt.Sprintf(" at %#x", e.Offset)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

func (e *DecodeError) Unwrap() error { return e.Err }

// AsDecodeError unwraps err to a *DecodeError, if it is one.
func AsDecodeError(err error) (*DecodeError, bool) {
	var de *DecodeError
	ok := errors.As(err, &de)
	return de, ok
}

// decodeErrf builds a DecodeError bound to this reader's stream.
func (rd *Reader) decodeErrf(kind DecodeKind, offset uint64, format string, args ...any) *DecodeError {
	return &DecodeError{Kind: kind, Stream: rd.streamID, Offset: offset, Detail: fmt.Sprintf(format, args...)}
}

// decodeWrap wraps a cause (an unexpected EOF, a class-load failure) as a
// DecodeError bound to this reader's stream.
func (rd *Reader) decodeWrap(kind DecodeKind, offset uint64, err error) *DecodeError {
	return &DecodeError{Kind: kind, Stream: rd.streamID, Offset: offset, Err: err}
}
