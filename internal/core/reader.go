package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"time"

	"skyway/internal/arena"
	"skyway/internal/fault"
	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/obs"
	"skyway/internal/verify"
	"skyway/internal/vm"
)

// Receiver-side transfer counters, exported on /metrics.
var (
	ctrObjectsRecv  = obs.NewCounter("skyway_transfer_objects_received_total", "Objects absolutized out of received Skyway chunks.")
	ctrBytesRecv    = obs.NewCounter("skyway_transfer_bytes_received_total", "Bytes received into pinned input-buffer chunks.")
	ctrChunks       = obs.NewCounter("skyway_transfer_chunks_total", "Input-buffer chunks allocated for incoming segments.")
	ctrRecvStreams  = obs.NewCounter("skyway_transfer_recv_streams_total", "Skyway receiver streams drained to end-of-stream.")
	ctrDecodeErrors = obs.NewCounter("skyway_transfer_decode_errors_total", "Streams rejected by receive-path validation (DecodeError).")
)

// Reader receives a Skyway stream into the runtime's heap: each incoming
// segment is copied verbatim into a chunk allocated in the heap's pinned
// buffer space, and when a top mark arrives the new chunks are absolutized
// in one linear scan — type IDs become klass words, relative addresses
// become heap addresses — after which the objects are immediately usable
// (§4.3). Chunks are registered with the collector as pinned, immortal
// ranges until Free is called.
//
// The reader trusts nothing about the bytes: segments are checksummed (wire
// v2) and every structural property — frame shape, declared lengths, type
// IDs, relative pointers — is validated before any of the chunk is
// absolutized into live heap state. A malformed stream surfaces as a
// *DecodeError and leaves the heap untouched beyond pinned (and freeable)
// raw chunks; it can never panic the receiver or plant a dangling pointer.
type Reader struct {
	rt *vm.Runtime
	r  *bufio.Reader

	headerRead  bool
	streamID    uint16
	compact     bool
	checksummed bool // wire v2: per-segment CRC-32C

	chunks []chunk // ascending startRel; the relative→absolute table
	parsed int     // chunks[:parsed] are absolutized (or arena-validated)

	pins []*gc.PinnedRange

	// arena selects the lazy-absolutization decode path (arena_reader.go):
	// segments stage into region instead of pinned buffer space, roots come
	// back as tagged arena addresses.
	arena  bool
	region *arena.Region

	// One-entry klass cache: shuffle streams carry long runs of one
	// record class, so the TID→klass map lookup usually short-circuits.
	lastTID   int32
	lastKlass *klass.Klass

	// verify enables the SKYWAY_VERIFY debug assertions on top-mark
	// framing and chunk relativization.
	verify bool

	// Objects and Bytes report per-reader transfer volume.
	Objects uint64
	Bytes   uint64

	// openedAt anchors the stream's receive span; zero when tracing was
	// disabled at open time. eofSeen keeps the span single-shot when
	// ReadObject is called again after end-of-stream.
	openedAt time.Time
	eofSeen  bool
}

type chunk struct {
	startRel uint64
	base     heap.Addr
	size     uint32
	// seg is the arena-mode segment image (base stays Null); eager chunks
	// leave it nil.
	seg []byte
	// done tracks absolutization progress within the chunk: a segment can
	// end mid-graph (the sender flushed because its output buffer filled,
	// §4.2 streaming), leaving objects whose references point beyond the
	// received data; those are deferred until more segments arrive — the
	// paper's "block the computation on buffers into which data is being
	// streamed until the absolutization pass is done" (§4.3).
	done uint32
}

// NewReader opens a Skyway object input stream over r for runtime rt.
func NewReader(rt *vm.Runtime, r io.Reader, opts ...ReaderOption) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 16<<10)
	}
	rd := &Reader{rt: rt, r: br, verify: verify.Enabled()}
	for _, opt := range opts {
		opt(rd)
	}
	if obs.Enabled() {
		rd.openedAt = time.Now()
	}
	return rd
}

// ReadObject returns the next transferred root object. It consumes frames
// until a top mark arrives, absolutizing newly received chunks. io.EOF is
// returned at end of stream; any malformed input surfaces as a *DecodeError.
func (rd *Reader) ReadObject() (heap.Addr, error) {
	a, err := rd.readObject()
	if err != nil && err != io.EOF {
		if _, ok := AsDecodeError(err); ok {
			ctrDecodeErrors.Inc()
		}
	}
	return a, err
}

func (rd *Reader) readObject() (heap.Addr, error) {
	if !rd.headerRead {
		target, sid, compact, checksummed, err := readHeader(rd.r)
		if err != nil {
			return heap.Null, err
		}
		if target != rd.rt.Heap.Layout() {
			return heap.Null, &DecodeError{Kind: DecodeFrame, Stream: sid,
				Detail: fmt.Sprintf("stream was adjusted for layout %+v but receiver heap uses %+v", target, rd.rt.Heap.Layout())}
		}
		rd.streamID = sid
		rd.compact = compact
		rd.checksummed = checksummed
		rd.headerRead = true
	}
	for {
		tag, err := rd.r.ReadByte()
		if err != nil {
			return heap.Null, rd.decodeWrap(DecodeFrame, 0, noEOF(err))
		}
		switch tag {
		case frameSegment:
			if err := rd.readSegment(); err != nil {
				return heap.Null, err
			}
		case frameCompact:
			if err := rd.readCompactSegment(); err != nil {
				return heap.Null, err
			}
		case frameTop:
			var b [8]byte
			if _, err := io.ReadFull(rd.r, b[:]); err != nil {
				return heap.Null, rd.decodeWrap(DecodeFrame, 0, noEOF(err))
			}
			if rd.arena {
				err = rd.validateArena()
			} else {
				err = rd.absolutize()
			}
			if err != nil {
				return heap.Null, err
			}
			rel := binary.BigEndian.Uint64(b[:])
			// Chunks may legitimately remain unabsolutized here: with
			// shared-chain concurrent senders a root can reference claimed
			// objects whose bytes arrive in a later segment, the §4.3
			// "block the computation on buffers into which data is being
			// streamed" case. The frameEnd check below catches references
			// that never resolve.
			if rd.verify {
				vt := rd.verifyTop
				if rd.arena {
					vt = rd.verifyTopArena
				}
				if err := vt(rel); err != nil {
					return heap.Null, err
				}
			}
			if rel == 0 {
				return heap.Null, nil
			}
			return rd.translate(rel)
		case frameEnd:
			// §4.3 framing invariant at its sound enforcement point: a
			// forward reference may defer absolutization mid-stream (data
			// still in flight), but a stream that ENDS with deferred chunks
			// holds references that will never resolve — corruption, not
			// streaming.
			if rd.parsed < len(rd.chunks) {
				return heap.Null, rd.decodeErrf(DecodePointer, rd.received(),
					"stream ended with %d chunk(s) not absolutized (unresolved forward reference)",
					len(rd.chunks)-rd.parsed)
			}
			if !rd.eofSeen {
				rd.eofSeen = true
				ctrRecvStreams.Inc()
				if !rd.openedAt.IsZero() {
					rd.rt.Trace.Emit("transfer", "skyway.recv", rd.openedAt, time.Since(rd.openedAt),
						obs.I64("objects", int64(rd.Objects)),
						obs.I64("bytes", int64(rd.Bytes)),
						obs.I64("chunks", int64(len(rd.chunks))),
						obs.I64("stream_id", int64(rd.streamID)))
				}
			}
			return heap.Null, io.EOF
		default:
			return heap.Null, rd.decodeErrf(DecodeFrame, 0, "unknown frame tag %#x", tag)
		}
	}
}

// ReadAll reads every remaining root in the stream.
func (rd *Reader) ReadAll() ([]heap.Addr, error) {
	var out []heap.Addr
	for {
		a, err := rd.ReadObject()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
}

// stageChunk allocates a new pinned input-buffer chunk of `size` bytes to
// hold the segment being received.
func (rd *Reader) stageChunk(size uint32) (heap.Addr, error) {
	var base heap.Addr
	// Failpoint: a receiver under memory pressure loses the allocation race
	// at exactly this safepoint.
	if !fault.Eval(fault.CoreAllocBuffer) {
		base = rd.rt.Heap.AllocBuffer(size)
	}
	if base == heap.Null {
		return heap.Null, rd.decodeErrf(DecodeResource, uint64(size),
			"input-buffer space exhausted allocating %d-byte chunk (free unused buffers or enlarge Config.BufferSize)", size)
	}
	return base, nil
}

// checkSegment verifies the segment payload against its wire CRC (v2
// streams) after applying any injected wire damage. Runs before a single
// byte reaches the heap.
func (rd *Reader) checkSegment(payload []byte, wireCRC uint32) error {
	// Failpoints: damage in flight — a flipped bit, a torn (zero-filled)
	// tail. Injected before the checksum gate, which must catch both.
	if fault.Eval(fault.CoreChunkBitflip) && len(payload) > 0 {
		payload[len(payload)/2] ^= 0x10
	}
	if fault.Eval(fault.CoreChunkTruncate) && len(payload) >= 2 {
		for i := len(payload) / 2; i < len(payload); i++ {
			payload[i] = 0
		}
	}
	if !rd.checksummed {
		return nil
	}
	if got := crc32.Checksum(payload, crcTable); got != wireCRC {
		return rd.decodeErrf(DecodeChecksum, 0, "segment CRC %#x does not match wire CRC %#x over %d bytes", got, wireCRC, len(payload))
	}
	return nil
}

// corruptStaged applies the post-checksum type-ID failpoint: corruption
// that a valid CRC cannot rule out (a buggy sender, receiver-side memory
// damage). It stomps the first object's klass word, exercising the
// absolutization-time class validation. The matching pointer failpoint
// lives in absolutize, where a real reference slot is known.
func corruptStaged(tmp []byte) {
	if fault.Eval(fault.CoreChunkBadTID) && len(tmp) >= int(klass.OffKlass)+8 {
		binary.LittleEndian.PutUint64(tmp[klass.OffKlass:], 0x7FFFFFF0)
	}
}

// fillStaged receives one segment payload into dst — which may alias the
// pinned chunk directly — and validates it in place: injected wire damage,
// then the CRC gate, then the post-checksum corruption point.
func (rd *Reader) fillStaged(dst []byte, wireCRC uint32) error {
	if _, err := io.ReadFull(rd.r, dst); err != nil {
		return rd.decodeWrap(DecodeFrame, 0, noEOF(err))
	}
	if err := rd.checkSegment(dst, wireCRC); err != nil {
		return err
	}
	corruptStaged(dst)
	return nil
}

// readSegment allocates an input-buffer chunk and receives the segment into
// it. The chunk is pinned immediately (unparsed) so the collector treats
// the raw bytes as opaque.
//
// On hosts whose byte order matches the slab encoding the wire bytes are
// read directly into the pinned chunk through heap.ByteView and checksummed
// in place — the decode path's only copy is the socket read itself. The
// portable fallback stages through a recycled buffer. Either way, a segment
// that fails mid-receive (short read, CRC mismatch) frees its chunk before
// surfacing the error: the chunk is not yet pinned or listed, so the range
// would otherwise leak from buffer space.
func (rd *Reader) readSegment() error {
	var lenb [4]byte
	if _, err := io.ReadFull(rd.r, lenb[:]); err != nil {
		return rd.decodeWrap(DecodeFrame, 0, noEOF(err))
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n == 0 || n%klass.WordSize != 0 || n > maxSegmentBytes {
		return rd.decodeErrf(DecodeLength, uint64(n), "bad segment length %d", n)
	}
	var wireCRC uint32
	if rd.checksummed {
		var crcb [4]byte
		if _, err := io.ReadFull(rd.r, crcb[:]); err != nil {
			return rd.decodeWrap(DecodeFrame, 0, noEOF(err))
		}
		wireCRC = binary.BigEndian.Uint32(crcb[:])
	}
	if rd.arena {
		return rd.readSegmentArena(n, wireCRC)
	}
	base, err := rd.stageChunk(n)
	if err != nil {
		return err
	}
	h := rd.rt.Heap
	if dst := h.ByteView(base, n); dst != nil {
		if err := rd.fillStaged(dst, wireCRC); err != nil {
			h.FreeBufferRange(base, n)
			return err
		}
	} else {
		tmp := getBuf(int(n))[:n]
		err := rd.fillStaged(tmp, wireCRC)
		if err == nil {
			h.CopyIn(base, n, tmp)
		}
		putBuf(tmp)
		if err != nil {
			h.FreeBufferRange(base, n)
			return err
		}
	}

	startRel := uint64(relBias)
	if len(rd.chunks) > 0 {
		last := rd.chunks[len(rd.chunks)-1]
		startRel = last.startRel + uint64(last.size)
	}
	rd.chunks = append(rd.chunks, chunk{startRel: startRel, base: base, size: n})
	rd.pins = append(rd.pins, rd.rt.GC.Pin(base, n))
	rd.Bytes += uint64(n)
	ctrChunks.Inc()
	ctrBytesRecv.Add(int64(n))
	return nil
}

// readCompactSegment receives a compact segment (§5.2 future-work mode):
// the wire carries compressed records; the chunk is allocated at the
// declared inflated size and each record is re-expanded into the standard
// in-heap image before the shared absolutization pass runs over it.
func (rd *Reader) readCompactSegment() error {
	var hdr [8]byte
	if _, err := io.ReadFull(rd.r, hdr[:]); err != nil {
		return rd.decodeWrap(DecodeFrame, 0, noEOF(err))
	}
	phys := binary.BigEndian.Uint32(hdr[:4])
	decoded := binary.BigEndian.Uint32(hdr[4:])
	if decoded == 0 || decoded%klass.WordSize != 0 || phys == 0 ||
		decoded > maxSegmentBytes || phys > maxSegmentBytes {
		return rd.decodeErrf(DecodeLength, uint64(decoded), "bad compact segment lengths %d/%d", phys, decoded)
	}
	var wireCRC uint32
	if rd.checksummed {
		var crcb [4]byte
		if _, err := io.ReadFull(rd.r, crcb[:]); err != nil {
			return rd.decodeWrap(DecodeFrame, 0, noEOF(err))
		}
		wireCRC = binary.BigEndian.Uint32(crcb[:])
	}
	// The compact path cannot avoid a staging buffer — records are
	// re-inflated, not copied verbatim — but the buffer is recycled across
	// segments instead of allocated per segment.
	buf := getBuf(int(phys))[:phys]
	defer putBuf(buf)
	if _, err := io.ReadFull(rd.r, buf); err != nil {
		return rd.decodeWrap(DecodeFrame, 0, noEOF(err))
	}
	if err := rd.checkSegment(buf, wireCRC); err != nil {
		return err
	}
	if rd.arena {
		return rd.readCompactSegmentArena(buf, decoded)
	}
	base, err := rd.stageChunk(decoded)
	if err != nil {
		return err
	}
	// Pin before decoding so a decode error cannot leave an unaccounted
	// raw range in buffer space.
	pin := rd.rt.GC.Pin(base, decoded)
	if err := rd.decodeCompactSegment(buf, base, decoded); err != nil {
		rd.rt.GC.Unpin(pin)
		return err
	}
	startRel := uint64(relBias)
	if len(rd.chunks) > 0 {
		last := rd.chunks[len(rd.chunks)-1]
		startRel = last.startRel + uint64(last.size)
	}
	rd.chunks = append(rd.chunks, chunk{startRel: startRel, base: base, size: decoded})
	rd.pins = append(rd.pins, pin)
	rd.Bytes += uint64(decoded)
	ctrChunks.Inc()
	ctrBytesRecv.Add(int64(decoded))
	return nil
}

// checkKlassKinds is the reader-side counterpart of the writer's putKind
// panic: a klass whose field or element kind has no defined size (a
// malformed or out-of-sync class definition) would make every sized
// accessor silently drop bytes, so a stream resolving to one is rejected as
// a structured decode error before any of its objects are absolutized.
func checkKlassKinds(k *klass.Klass) error {
	if k.IsArray {
		if k.ElemSize() == 0 {
			return fmt.Errorf("array class %s has element kind %v of undefined size", k.Name, k.Elem)
		}
		return nil
	}
	for i := range k.Fields {
		if k.Fields[i].Kind.Size() == 0 {
			return fmt.Errorf("class %s field %s has kind %v of undefined size", k.Name, k.Fields[i].Name, k.Fields[i].Kind)
		}
	}
	return nil
}

// translate maps a (biased) relative address to its heap address using the
// chunk table — the paper's two-step translation for buffers that span
// multiple, possibly underfilled chunks.
func (rd *Reader) translate(rel uint64) (heap.Addr, error) {
	i := sort.Search(len(rd.chunks), func(i int) bool { return rd.chunks[i].startRel > rel }) - 1
	if i < 0 || rel-rd.chunks[i].startRel >= uint64(rd.chunks[i].size) {
		return heap.Null, rd.decodeErrf(DecodePointer, rel, "relative address outside received chunks")
	}
	if rd.arena {
		// Arena chunks have no heap address: the handle IS the (tagged)
		// relative address, resolved per access by the vm layer.
		return heap.ComposeArenaAddr(rd.region.ID(), rel), nil
	}
	return rd.chunks[i].base + heap.Addr(rel-rd.chunks[i].startRel), nil
}

// received returns the end of the received relative address space.
func (rd *Reader) received() uint64 {
	if len(rd.chunks) == 0 {
		return relBias
	}
	last := rd.chunks[len(rd.chunks)-1]
	return last.startRel + uint64(last.size)
}

// absolutize performs the linear scan over the not-yet-parsed chunk suffix:
// resolve each object's global type ID to a local klass (loading the class
// on demand), rewrite the klass word, absolutize every reference slot,
// apply registered field updates, and dirty the card table so the collector
// sees pointers out of the buffer (§4.3). The scan stops at the first
// object with a reference into data not yet received (an in-flight graph)
// and resumes from there on the next call.
//
// Validation order is the §4.3 hardening contract: an object's class, its
// size against its chunk, and every one of its reference slots are checked
// before the first mutation of the object — absolutization commits per
// object, never partially.
func (rd *Reader) absolutize() error {
	rt := rd.rt
	h := rt.Heap
	limit := rd.received()
	objects0 := rd.Objects
	defer func() { ctrObjectsRecv.Add(int64(rd.Objects - objects0)) }()
	for ; rd.parsed < len(rd.chunks); rd.parsed++ {
		c := &rd.chunks[rd.parsed]
		a := c.base + heap.Addr(c.done)
		end := c.base + heap.Addr(c.size)
		for a < end {
			relOff := c.startRel + uint64(a-c.base)
			tid := int32(uint32(h.KlassWord(a)))
			k := rd.lastKlass
			if k == nil || tid != rd.lastTID {
				var err error
				k, err = rt.KlassByTID(tid)
				if err == nil {
					err = checkKlassKinds(k)
				}
				if err != nil {
					return rd.decodeWrap(DecodeType, relOff, err)
				}
				rd.lastTID, rd.lastKlass = tid, k
			}
			size := k.Size
			if k.IsArray {
				n := h.ArrayLen(a)
				// Widen before multiplying (cf. vm.NewArray): InstanceBytes
				// computes in uint32, so a wire-supplied length near
				// 2^32/ElemSize would wrap to a tiny size that passes the
				// overrun check below while refCount=n drives slot reads and
				// absolutization writes far past the chunk. The n<=c.size
				// pre-check bounds n so the uint64 product cannot itself
				// overflow.
				if n < 0 || uint64(n) > uint64(c.size) ||
					uint64(k.Size)+uint64(n)*uint64(k.ElemSize()) > uint64(end-a) {
					return rd.decodeErrf(DecodeLength, relOff, "array length %d of %s exceeds its chunk", n, k.Name)
				}
				size = k.InstanceBytes(n)
			}
			if uint64(a)+uint64(size) > uint64(end) {
				return rd.decodeErrf(DecodeLength, relOff, "%d-byte %s overruns its chunk", size, k.Name)
			}

			// Collect the object's reference slot offsets.
			var refBase uint32
			var refCount int
			var refOffsets []uint32
			if k.IsArray {
				if k.Elem == klass.Ref {
					refBase = h.Layout().ArrayHeaderSize()
					refCount = h.ArrayLen(a)
				}
			} else {
				refOffsets = k.RefOffsets
				refCount = len(refOffsets)
			}
			slotOff := func(i int) uint32 {
				if refOffsets != nil {
					return refOffsets[i]
				}
				return refBase + uint32(i)*8
			}

			// Failpoint: stomp a real reference slot with an unaligned,
			// out-of-space relative pointer — post-checksum corruption the
			// CRC cannot see, which the bounds check below must reject.
			if refCount > 0 && fault.Eval(fault.CoreChunkBadPtr) {
				h.Store(a, slotOff(0), klass.Ref, 0xDEADBEEF)
			}

			// First pass: verify every reference is well formed and
			// resolvable. A malformed pointer (below the bias, unaligned,
			// or outside the 40-bit stream space) is corruption and fails
			// now; a well-formed forward reference beyond the received data
			// defers the rest of the scan (nothing mutated yet).
			for i := 0; i < refCount; i++ {
				rel := h.Load(a, slotOff(i), klass.Ref)
				if rel == 0 {
					continue
				}
				if rel < relBias || rel%klass.WordSize != 0 || rel > heap.BaddrRelMask {
					return rd.decodeErrf(DecodePointer, relOff,
						"reference slot %d of %s holds malformed relative address %#x", i, k.Name, rel)
				}
				if rel >= limit {
					c.done = uint32(a - c.base)
					return nil
				}
			}

			// Commit: install the klass word, absolutize references,
			// apply field updates.
			h.SetKlassWord(a, uint64(k.LID))
			for i := 0; i < refCount; i++ {
				off := slotOff(i)
				rel := h.Load(a, off, klass.Ref)
				if rel == 0 {
					continue
				}
				abs, err := rd.translate(rel)
				if err != nil {
					return err
				}
				h.Store(a, off, klass.Ref, uint64(abs))
			}
			if !k.IsArray {
				for _, u := range rt.UpdatesFor(k) {
					//skyway:allow staleaddr — a walks a chunk in pinned buffer space, which never moves (§4.3)
					h.Store(a, u.Field.Offset, u.Field.Kind, u.Fn(rt, a))
				}
			}
			rd.Objects++
			a += heap.Addr(size)
			c.done = uint32(a - c.base)
		}
		// The chunk is now walkable; tell the collector and dirty its
		// cards so the next scavenge scans it for young pointers.
		rd.pins[rd.parsed].Parsed = true
		h.DirtyRange(c.base, c.size)
	}
	return nil
}

// verifyTop checks the §4.3 framing invariant under SKYWAY_VERIFY: by the
// time a top mark arrives the sender has flushed every byte of the graph it
// names, so absolutize must have consumed every received chunk, and the
// named root must resolve to a live object. When a chunk is left behind,
// the chunk-level relativization audit explains why.
func (rd *Reader) verifyTop(rel uint64) error {
	for i := rd.parsed; i < len(rd.chunks); i++ {
		c := &rd.chunks[i]
		vs := verify.CheckChunk(rd.rt.Heap, rd.rt, verify.Chunk{
			Base: c.base, Size: c.size, Done: c.done, Limit: rd.received(),
		})
		return fmt.Errorf("skyway: verify: top mark %#x arrived with chunk %d absolutized only to %d/%d bytes; audit: %v",
			rel, i, c.done, c.size, vs)
	}
	if rel != 0 {
		a, err := rd.translate(rel)
		if err != nil {
			return fmt.Errorf("skyway: verify: top mark: %w", err)
		}
		if !rd.rt.ValidKlassWord(rd.rt.Heap.KlassWord(a)) {
			return fmt.Errorf("skyway: verify: top mark %#x names %#x whose klass word %#x is not a loaded class",
				rel, uint64(a), rd.rt.Heap.KlassWord(a))
		}
	}
	return nil
}

// Free releases every input chunk this reader created. The objects inside
// become garbage (unless reachable some other way, which the application
// must not assume). Mirrors the explicit buffer-free API of §3.2.
func (rd *Reader) Free() {
	for _, p := range rd.pins {
		rd.rt.GC.Unpin(p)
	}
	rd.pins = nil
	if rd.region != nil {
		rd.region.Release()
		rd.region = nil
	}
	rd.chunks = nil
	rd.parsed = 0
}
