package core

import (
	"bytes"
	"io"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/race"
	"skyway/internal/verify"
	"skyway/internal/vm"
)

// --- kind-size validation (the putKind silent-truncation bugfix) -------------

// putKind used to silently no-op on a kind whose size is not 1/2/4/8,
// leaving zero bytes where a field's value should be — corruption without a
// diagnostic. The writer now panics (an undefined-size kind in a loaded
// class is a programming error on the encode side) and the reader rejects
// the class with a structured decode error before any field is read.
func TestPutKindUndefinedSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("putKind silently accepted a kind of undefined size")
		}
	}()
	var b [8]byte
	putKind(b[:], klass.Invalid, 0x1234)
}

func TestCheckKlassKindsRejectsUndefinedSizes(t *testing.T) {
	bad := &klass.Klass{Name: "Bad", Fields: []klass.Field{{Name: "x", Kind: klass.Invalid}}}
	if err := checkKlassKinds(bad); err == nil {
		t.Error("class with an Invalid-kind field passed kind validation")
	}
	badArr := &klass.Klass{Name: "Bad[]", IsArray: true, Elem: klass.Invalid}
	if err := checkKlassKinds(badArr); err == nil {
		t.Error("array class with an Invalid element kind passed kind validation")
	}
	ok := &klass.Klass{Name: "OK", Fields: []klass.Field{{Name: "x", Kind: klass.Int64}, {Name: "r", Kind: klass.Ref}}}
	if err := checkKlassKinds(ok); err != nil {
		t.Errorf("well-formed class rejected: %v", err)
	}
	okArr := &klass.Klass{Name: "long[]", IsArray: true, Elem: klass.Int64}
	if err := checkKlassKinds(okArr); err != nil {
		t.Errorf("well-formed array class rejected: %v", err)
	}
}

// --- steady-state allocation discipline --------------------------------------

// allocCorpus pins a few long[] arrays on rt — enough payload for the writer
// to flush many segments per pass — and returns their addresses. Handles are
// released via t.Cleanup.
func allocCorpus(t *testing.T, rt *vm.Runtime, arrays, elems int) []heap.Addr {
	t.Helper()
	k := rt.MustLoad("long[]")
	roots := make([]heap.Addr, 0, arrays)
	for i := 0; i < arrays; i++ {
		a := rt.MustNewArray(k, elems)
		for j := 0; j < elems; j += 31 {
			rt.ArraySetLong(a, j, int64(i+j))
		}
		h := rt.Pin(a)
		t.Cleanup(h.Release)
		roots = append(roots, h.Addr())
	}
	return roots
}

func skipIfInstrumented(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("allocation benchmark skipped in -short mode")
	}
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	if verify.Enabled() {
		t.Skip("the heap verifier allocates during its walks")
	}
}

// TestEncodeSteadyStateAllocs pins the writer's hot-path memory discipline:
// after warmup, encoding a multi-segment corpus must not allocate per
// segment — the output buffer and compact scratch recycle through the
// process-wide pool, and primitive arrays bulk-copy without staging. The
// budget covers only per-pass fixed costs (the Writer itself, its maps).
func TestEncodeSteadyStateAllocs(t *testing.T) {
	skipIfInstrumented(t)
	snd, _, sky := testCluster(t)
	roots := allocCorpus(t, snd, 8, 64<<10) // 4 MiB payload, ~16 segments/pass

	var buf bytes.Buffer
	pass := func() {
		sky.ShuffleStart()
		buf.Reset()
		w := sky.NewWriter(&buf)
		for _, a := range roots {
			if err := w.WriteObject(a); err != nil {
				panic(err)
			}
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
	}
	pass() // warm the pools and learn the corpus size
	corpus := buf.Len()

	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pass()
		}
	})
	const budget = 128 << 10
	if bpo := res.AllocedBytesPerOp(); bpo > budget {
		t.Errorf("encode pass over a %d-byte corpus allocates %d bytes/op, budget %d (segment buffers must recycle)",
			corpus, bpo, budget)
	}
}

// TestDecodeSteadyStateAllocs is the decode-side counterpart: wire segments
// land directly in the pinned chunk (no staging copy), so a pass allocates
// only the Reader's fixed state plus one small pin bookkeeping record per
// chunk — never segment-sized buffers.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	skipIfInstrumented(t)
	snd, rcv, sky := testCluster(t)
	roots := allocCorpus(t, snd, 8, 64<<10)

	var buf bytes.Buffer
	sky.ShuffleStart()
	w := sky.NewWriter(&buf)
	for _, a := range roots {
		if err := w.WriteObject(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)

	pass := func() {
		r := NewReader(rcv, bytes.NewReader(wire))
		for {
			if _, err := r.ReadObject(); err != nil {
				if err == io.EOF {
					break
				}
				panic(err)
			}
		}
		r.Free()
	}
	pass() // warm the pools

	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pass()
		}
	})
	const budget = 128 << 10
	if bpo := res.AllocedBytesPerOp(); bpo > budget {
		t.Errorf("decode pass over a %d-byte corpus allocates %d bytes/op, budget %d (wire bytes must land in place)",
			len(wire), bpo, budget)
	}
}

// TestArenaDecodeSteadyStateAllocs is the lazy-path counterpart: received
// segments stage into anonymous mappings outside both the managed heap and
// the Go heap, so an arena decode pass must allocate (a) zero managed-heap
// bytes — no pinned chunks, no young objects, no collections — and (b) only
// the Reader's fixed Go-side state, never segment-sized buffers.
func TestArenaDecodeSteadyStateAllocs(t *testing.T) {
	skipIfInstrumented(t)
	snd, rcv, sky := testCluster(t)
	roots := allocCorpus(t, snd, 8, 64<<10)

	var buf bytes.Buffer
	sky.ShuffleStart()
	w := sky.NewWriter(&buf)
	for _, a := range roots {
		if err := w.WriteObject(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)

	pass := func() {
		r := NewReader(rcv, bytes.NewReader(wire), WithArena())
		for {
			if _, err := r.ReadObject(); err != nil {
				if err == io.EOF {
					break
				}
				panic(err)
			}
		}
		r.Free()
	}
	pass() // warm the pools

	before := rcv.GC.Stats()
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pass()
		}
	})
	after := rcv.GC.Stats()

	if used := rcv.Heap.BufferUsed(); used != 0 {
		t.Errorf("arena decode left %d bytes of pinned buffer space in use; segments must stage off-heap", used)
	}
	if after.Scavenges != before.Scavenges || after.FullGCs != before.FullGCs {
		t.Errorf("arena decode triggered collections (scavenges %d→%d, full GCs %d→%d); the managed heap must stay untouched",
			before.Scavenges, after.Scavenges, before.FullGCs, after.FullGCs)
	}
	const budget = 128 << 10
	if bpo := res.AllocedBytesPerOp(); bpo > budget {
		t.Errorf("arena decode pass over a %d-byte corpus allocates %d bytes/op, budget %d (segments must land in the region mapping)",
			len(wire), bpo, budget)
	}
}

// TestFullGCScanIndependentOfArenaBytes pins the tentpole's GC payoff: a
// full collection's root-scan work must not grow with resident arena bytes.
// Eagerly decoded streams park their objects in pinned chunks the collector
// walks on every full GC; the same streams held in arena regions contribute
// zero pinned-object scans — whether one stream is resident or four.
func TestFullGCScanIndependentOfArenaBytes(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	roots := allocCorpus(t, snd, 2, 16<<10)

	var buf bytes.Buffer
	sky.ShuffleStart()
	w := sky.NewWriter(&buf)
	for _, a := range roots {
		if err := w.WriteObject(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)

	decode := func(rt *vm.Runtime, opts ...ReaderOption) *Reader {
		t.Helper()
		r := NewReader(rt, bytes.NewReader(wire), opts...)
		for {
			if _, err := r.ReadObject(); err != nil {
				if err == io.EOF {
					return r
				}
				t.Fatal(err)
			}
		}
	}
	scansAfterFullGC := func(rt *vm.Runtime) uint64 {
		before := rt.GC.Stats().PinnedScanned
		rt.GC.FullGC()
		return rt.GC.Stats().PinnedScanned - before
	}

	// Eager baseline: pinned chunks resident, every object walked as a root.
	eagerRd := decode(rcv)
	if eager := scansAfterFullGC(rcv); eager == 0 {
		t.Fatal("eager decode left no pinned objects for the full GC to scan; the baseline is broken")
	}
	eagerRd.Free() // unpin the eager chunks so only arena residency remains

	// One arena stream resident vs. four. Zero pinned scans both ways —
	// scan work is independent of what the regions hold.
	for _, streams := range []int{1, 4} {
		var rds []*Reader
		for i := 0; i < streams; i++ {
			rds = append(rds, decode(rcv, WithArena()))
		}
		if rcv.Arena.Bytes() == 0 {
			t.Fatal("arena decode staged nothing")
		}
		if scans := scansAfterFullGC(rcv); scans != 0 {
			t.Errorf("full GC over %d resident arena streams (%d bytes) scanned %d pinned objects, want 0",
				streams, rcv.Arena.Bytes(), scans)
		}
		for _, r := range rds {
			r.Free()
		}
	}
}
