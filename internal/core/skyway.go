// Package core implements Skyway's data transfer (§3, §4): the sender-side
// object-graph copy with pointer relativization (Algorithm 2), the streaming
// buffer protocol, and the receiver-side chunked input buffers with linear
// absolutization (§4.3).
//
// A Skyway value is the per-runtime service state: the shuffle-phase counter
// driven by ShuffleStart (§4.2 "Multi-phase data shuffling") and the stream
// ID allocator used to disambiguate concurrent sender threads sharing
// objects (§4.2 "Support for Threads").
package core

import (
	"sync"
	"sync/atomic"

	"skyway/internal/vm"
)

// Skyway is the per-runtime transfer service.
type Skyway struct {
	rt *vm.Runtime

	// phaseMu orders the shuffle-phase bump against in-flight writers:
	// every WriteObject holds the read side for its whole traversal, and
	// ShuffleStart takes the write side, so sid can never advance (and, on
	// 8-bit wrap, clearAllBaddrs can never run) while a writer is claiming
	// baddr words under the old phase. Without this, a concurrent sender
	// could publish a claim composed with a stale phase just after the
	// bump — the §4.2 hazard the sequential harness never exercised.
	phaseMu    sync.RWMutex
	sid        uint32 // current shuffle phase ID (8-bit, atomically read on the hot path)
	nextStream uint32 // stream/thread ID allocator (16-bit space)

	stats Stats
}

// Stats aggregates transfer statistics across a runtime's streams.
type Stats struct {
	ObjectsSent     uint64
	BytesSent       uint64
	ObjectsReceived uint64
	BytesReceived   uint64
	// Byte composition of sent data, for the §5.2 "extra bytes" analysis:
	// headers (incl. array length words), padding, and pointer slots.
	HeaderBytes  uint64
	PaddingBytes uint64
	PointerBytes uint64
	// OverflowHits counts shared-object visits resolved through the
	// thread-local hash table instead of the baddr word.
	OverflowHits uint64
}

// New creates the Skyway service for a runtime.
func New(rt *vm.Runtime) *Skyway {
	return &Skyway{rt: rt, sid: 1, nextStream: 0}
}

// Runtime returns the runtime the service is bound to.
func (s *Skyway) Runtime() *vm.Runtime { return s.rt }

// ShuffleStart begins a new shuffling phase (§3.3): baddr bookkeeping from
// the previous phase becomes stale wholesale, so output buffers are
// logically cleared without touching any object. The 8-bit phase space
// wraps; on wrap every live baddr word is cleared so phase 1 starts clean.
//
// ShuffleStart blocks until every in-flight WriteObject call has returned;
// writers that outlive the bump get a phase-mismatch error on their next
// WriteObject rather than silently mixing phases.
func (s *Skyway) ShuffleStart() {
	s.phaseMu.Lock()
	defer s.phaseMu.Unlock()
	next := uint8(atomic.LoadUint32(&s.sid)) + 1
	if next == 0 {
		s.clearAllBaddrs()
		next = 1
	}
	atomic.StoreUint32(&s.sid, uint32(next))
}

// Phase returns the current shuffle phase ID.
func (s *Skyway) Phase() uint8 { return uint8(atomic.LoadUint32(&s.sid)) }

// Snapshot returns a copy of the accumulated statistics.
func (s *Skyway) Snapshot() Stats {
	return Stats{
		ObjectsSent:     atomic.LoadUint64(&s.stats.ObjectsSent),
		BytesSent:       atomic.LoadUint64(&s.stats.BytesSent),
		ObjectsReceived: atomic.LoadUint64(&s.stats.ObjectsReceived),
		BytesReceived:   atomic.LoadUint64(&s.stats.BytesReceived),
		HeaderBytes:     atomic.LoadUint64(&s.stats.HeaderBytes),
		PaddingBytes:    atomic.LoadUint64(&s.stats.PaddingBytes),
		PointerBytes:    atomic.LoadUint64(&s.stats.PointerBytes),
		OverflowHits:    atomic.LoadUint64(&s.stats.OverflowHits),
	}
}

func (s *Skyway) allocStreamID() uint16 {
	id := atomic.AddUint32(&s.nextStream, 1)
	return uint16(id) // 16-bit wrap matches the 2-byte baddr field
}

// clearAllBaddrs walks every live object and zeroes its baddr word. Called
// only on 8-bit phase wraparound (every 255 shuffles).
func (s *Skyway) clearAllBaddrs() {
	h := s.rt.Heap
	if !h.Layout().Baddr {
		return
	}
	clearRegion := func(start, top uint64) {
		a := start
		for a < top {
			size := s.rt.ObjectSize(addr(a))
			// Atomic: baddr words are only ever accessed atomically (the
			// atomicbaddr analyzer enforces this). phaseMu already excludes
			// concurrent writer CASes during the wrap clear.
			h.AtomicSetBaddr(addr(a), 0)
			a += uint64(size)
		}
	}
	clearRegion(uint64(h.Eden.Start), uint64(h.Eden.Top))
	clearRegion(uint64(h.From.Start), uint64(h.From.Top))
	clearRegion(uint64(h.Old.Start), uint64(h.Old.Top))
	// Buffer space may contain unparsed chunks; parsed objects there were
	// received with baddr already zero and writers reset them per phase,
	// so chunks are left untouched.
}

// The baddr word encoding (§4.2) lives in internal/heap (ComposeBaddr and
// friends): it is a property of the object header that the collector and
// the verifier share with this transfer layer.
