package core

import (
	"encoding/binary"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

// Compact transfer mode — the paper's stated future work (§5.2): "Since
// headers and paddings dominate these extra bytes, future work could focus
// on compressing headers and paddings during sending."
//
// In compact mode the logical transfer is unchanged — relative addresses,
// top marks and the receiver-side absolutization all operate on the fully
// laid-out object images — but the wire encoding of each object drops the
// header words that are reconstructible:
//
//	record := tid(uvarint) flags(u8) [hash(u32)] [arraylen(uvarint)] payload
//
// where payload is the raw post-header bytes (reference slots already
// relativized). The mark word travels only when the object actually has a
// cached hashcode (flag bit 0); the baddr word and padding words at fixed
// positions are never sent. The receiver re-inflates each record into a
// normal input-buffer chunk, so everything downstream of the segment
// decoder — translation table, card marking, pinning, field updates — is
// shared with the standard mode. Compact segments trade sender/receiver
// CPU for bytes; BenchmarkAblationCompact quantifies the trade.
const (
	compactFlagHashed = 1 << 0
	compactFlagArray  = 1 << 1
)

// appendCompact encodes the full object image img (in target layout, header
// already fixed up) into dst.
func appendCompact(dst []byte, img []byte, target klass.Layout, isArray bool) []byte {
	var tmp [binary.MaxVarintLen64]byte
	tid := binary.LittleEndian.Uint64(img[klass.OffKlass:])
	dst = append(dst, tmp[:binary.PutUvarint(tmp[:], tid)]...)

	mark := binary.LittleEndian.Uint64(img[klass.OffMark:])
	hash, hashed := markHash(mark)
	var flags byte
	if hashed {
		flags |= compactFlagHashed
	}
	if isArray {
		flags |= compactFlagArray
	}
	dst = append(dst, flags)
	if hashed {
		var h [4]byte
		binary.LittleEndian.PutUint32(h[:], hash)
		dst = append(dst, h[:]...)
	}
	payloadOff := target.HeaderSize()
	if isArray {
		n := binary.LittleEndian.Uint64(img[target.OffArrayLen():])
		dst = append(dst, tmp[:binary.PutUvarint(tmp[:], n)]...)
		payloadOff = target.ArrayHeaderSize()
	}
	return append(dst, img[payloadOff:]...)
}

// markHash extracts the cached hashcode from a mark word.
func markHash(mark uint64) (uint32, bool) {
	const hashedBit = 1 << 3
	if mark&hashedBit == 0 {
		return 0, false
	}
	return uint32(mark >> 8), true
}

// composeMark builds a mark word carrying only a cached hashcode.
func composeMark(hash uint32, hashed bool) uint64 {
	if !hashed {
		return 0
	}
	return uint64(hash)<<8 | 1<<3
}

// decodeCompactSegment inflates a compact segment (phys bytes) into the
// freshly allocated chunk at base spanning decoded bytes, leaving objects in
// exactly the state a standard segment would: klass word holding the global
// type ID, baddr zero, references still relative.
func (rd *Reader) decodeCompactSegment(phys []byte, base heap.Addr, decoded uint32) error {
	rt := rd.rt
	h := rt.Heap
	layout := h.Layout()
	pos := 0
	a := base
	end := base + heap.Addr(decoded)

	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(phys[pos:])
		if n <= 0 {
			return 0, rd.decodeErrf(DecodeLength, uint64(pos), "compact segment truncated (uvarint)")
		}
		pos += n
		return v, nil
	}

	for pos < len(phys) {
		if a >= end {
			return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment inflates past its declared size")
		}
		tid64, err := readUvarint()
		if err != nil {
			return err
		}
		k, err := rt.KlassByTID(int32(uint32(tid64)))
		if err == nil {
			err = checkKlassKinds(k)
		}
		if err != nil {
			return rd.decodeWrap(DecodeType, uint64(pos), err)
		}
		if pos >= len(phys) {
			return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment truncated (flags)")
		}
		flags := phys[pos]
		pos++
		var hash uint32
		hashed := flags&compactFlagHashed != 0
		if hashed {
			if pos+4 > len(phys) {
				return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment truncated (hash)")
			}
			hash = binary.LittleEndian.Uint32(phys[pos:])
			pos += 4
		}
		isArray := flags&compactFlagArray != 0
		if isArray != k.IsArray {
			return rd.decodeErrf(DecodeType, uint64(pos), "compact record array flag disagrees with class %s", k.Name)
		}

		size := k.Size
		payloadOff := layout.HeaderSize()
		arrayLen := uint64(0)
		if isArray {
			arrayLen, err = readUvarint()
			if err != nil {
				return err
			}
			if arrayLen > uint64(decoded) {
				return rd.decodeErrf(DecodeLength, uint64(pos), "compact record array length %d implausible", arrayLen)
			}
			// Widen before multiplying (cf. vm.NewArray): InstanceBytes
			// computes in uint32, so arrayLen near 2^32/ElemSize would wrap
			// to a tiny size that passes the overrun check below and plants
			// an oversized array-length header in the chunk. arrayLen <=
			// decoded above bounds the uint64 product.
			if uint64(k.Size)+arrayLen*uint64(k.ElemSize()) > uint64(end-a) {
				return rd.decodeErrf(DecodeLength, uint64(pos), "compact record array length %d overruns its chunk", arrayLen)
			}
			size = k.InstanceBytes(int(arrayLen))
			payloadOff = layout.ArrayHeaderSize()
		}
		if uint64(a)+uint64(size) > uint64(end) {
			return rd.decodeErrf(DecodeLength, uint64(pos), "compact record overruns its chunk")
		}
		payload := size - payloadOff
		if pos+int(payload) > len(phys) {
			return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment truncated (payload)")
		}

		// Re-inflate the standard image.
		h.SetMark(a, composeMark(hash, hashed))
		h.SetKlassWord(a, tid64)
		if layout.Baddr {
			h.AtomicSetBaddr(a, 0)
		}
		if isArray {
			h.SetArrayLen(a, int(arrayLen))
		}
		if payload > 0 {
			h.CopyIn(a+heap.Addr(payloadOff), payload, phys[pos:])
		}
		pos += int(payload)
		a += heap.Addr(size)
	}
	if a != end {
		return rd.decodeErrf(DecodeLength, uint64(pos), "compact segment inflated to %d bytes, expected %d", uint64(a-base), decoded)
	}
	return nil
}
