package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"skyway/internal/heap"
)

// gatedWriter blocks its first Write until released, so a WriteObject call
// can be held in flight deliberately.
type gatedWriter struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
	return len(p), nil
}

// ShuffleStart must be a barrier against in-flight writers: the phase bump
// wholesale-invalidates the previous phase's baddr claims, so letting sID
// advance mid-traversal would let a writer publish claims composed with a
// stale phase (§4.2). The sequential harness never exercised this.
func TestShuffleStartWaitsForInflightWrite(t *testing.T) {
	snd, _, sky := testCluster(t)
	d := newDate(t, snd, 2020, 1, 1)
	dp := snd.Pin(d)
	defer dp.Release()

	g := &gatedWriter{started: make(chan struct{}), release: make(chan struct{})}
	w := sky.NewWriter(g)
	done := make(chan error, 1)
	go func() { done <- w.WriteObject(dp.Addr()) }()
	<-g.started

	before := sky.Phase()
	bumped := make(chan struct{})
	go func() {
		sky.ShuffleStart()
		close(bumped)
	}()
	select {
	case <-bumped:
		t.Fatal("ShuffleStart returned while a WriteObject was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	if got := sky.Phase(); got != before {
		t.Fatalf("phase advanced to %d under an in-flight writer", got)
	}

	close(g.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	<-bumped
	if got := sky.Phase(); got != before+1 {
		t.Errorf("phase = %d after ShuffleStart, want %d", got, before+1)
	}
}

// Concurrent writers sharing one heap, several WriteObject calls each, all
// roots reaching one shared chain: exactly one stream claims each shared
// object's baddr word per phase, every other stream must resolve it through
// its hash-table fallback, and every output buffer must still decode to a
// complete private copy (§4.2 "Support for Threads"). Run under -race and
// SKYWAY_VERIFY this doubles as the memory-model check for the CAS path.
func TestConcurrentWritersShareChainAcrossRoots(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	pk := snd.MustLoad("Pair")
	vF, nF := ck.FieldByName("v"), ck.FieldByName("next")

	// A 200-cell chain every root points into.
	const chainLen = 200
	var chainSum float64
	head := snd.MustNew(ck)
	hp := snd.Pin(head)
	defer hp.Release()
	snd.SetDouble(hp.Addr(), vF, 0)
	for i := 1; i < chainLen; i++ {
		c := snd.MustNew(ck)
		snd.SetDouble(c, vF, float64(i))
		chainSum += float64(i)
		// Prepend so one allocation at a time stays reachable.
		snd.SetRef(c, nF, hp.Addr())
		hp.Release()
		hp = snd.Pin(c)
	}

	const writers, rootsPer = 4, 8
	roots := make([][]heap.Addr, writers)
	for i := range roots {
		for j := 0; j < rootsPer; j++ {
			p := snd.MustNew(pk)
			snd.SetRef(p, pk.FieldByName("a"), hp.Addr())
			roots[i] = append(roots[i], p)
			h := snd.Pin(p)
			defer h.Release()
		}
	}

	bufs := make([]bytes.Buffer, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := sky.NewWriter(&bufs[i])
			for _, r := range roots[i] {
				if err := w.WriteObject(r); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = w.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	if sky.Snapshot().OverflowHits == 0 {
		t.Error("no overflow-table hits despite cross-stream sharing")
	}

	// Every stream decodes to rootsPer complete copies of the graph.
	rck := rcv.MustLoad("Cell")
	rpk := rcv.MustLoad("Pair")
	rvF, rnF := rck.FieldByName("v"), rck.FieldByName("next")
	for i := range bufs {
		r := NewReader(rcv, &bufs[i])
		for j := 0; j < rootsPer; j++ {
			got, err := r.ReadObject()
			if err != nil {
				t.Fatalf("stream %d root %d: %v", i, j, err)
			}
			var sum float64
			n := 0
			for c := rcv.GetRef(got, rpk.FieldByName("a")); c != heap.Null; c = rcv.GetRef(c, rnF) {
				sum += rcv.GetDouble(c, rvF)
				n++
			}
			if n != chainLen || sum != chainSum {
				t.Fatalf("stream %d root %d: chain %d cells sum %v, want %d cells sum %v",
					i, j, n, sum, chainLen, chainSum)
			}
		}
		r.Free()
	}
}
