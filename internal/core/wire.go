package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

func addr(a uint64) heap.Addr { return heap.Addr(a) }

// Wire protocol. A stream opens with a fixed header and then carries frames:
//
//	header := "SKYW" ver(u8) flags(u8) streamID(u16 BE)
//	frame  := 'S' len(u32 BE) bytes      -- a flushed output-buffer segment;
//	                                        the receiver turns it into one
//	                                        input-buffer chunk, so objects
//	                                        never span chunks (§4.3)
//	        | 'T' rel(u64 BE)            -- top mark: the relative address of
//	                                        a root object (§4.2 "Root Object
//	                                        Recognition"); rel 0 is null
//	        | 'E'                        -- end of stream
//
// flags bit 0 records whether the object images carry a baddr header word,
// i.e. the receiver layout the sender adjusted the clones to (§3.1).
const (
	wireMagic   = "SKYW"
	wireVersion = 1

	frameSegment = 'S'
	frameCompact = 'C' // compact segment: physLen(u32) decodedLen(u32) bytes
	frameTop     = 'T'
	frameEnd     = 'E'

	flagBaddr   = 1 << 0
	flagCompact = 1 << 1
)

// relBias offsets all relative addresses by one word so that relative
// address 0 can keep meaning null.
const relBias = heap.RelBias

func writeHeader(w io.Writer, target klass.Layout, streamID uint16, compact bool) error {
	var h [8]byte
	copy(h[:4], wireMagic)
	h[4] = wireVersion
	if target.Baddr {
		h[5] |= flagBaddr
	}
	if compact {
		h[5] |= flagCompact
	}
	binary.BigEndian.PutUint16(h[6:], streamID)
	_, err := w.Write(h[:])
	return err
}

func readHeader(r io.Reader) (target klass.Layout, streamID uint16, compact bool, err error) {
	var h [8]byte
	if _, err = io.ReadFull(r, h[:]); err != nil {
		return target, 0, false, fmt.Errorf("skyway: reading stream header: %w", err)
	}
	if string(h[:4]) != wireMagic {
		return target, 0, false, fmt.Errorf("skyway: bad stream magic %q", h[:4])
	}
	if h[4] != wireVersion {
		return target, 0, false, fmt.Errorf("skyway: unsupported stream version %d", h[4])
	}
	target.Baddr = h[5]&flagBaddr != 0
	return target, binary.BigEndian.Uint16(h[6:]), h[5]&flagCompact != 0, nil
}
