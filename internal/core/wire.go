package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

func addr(a uint64) heap.Addr { return heap.Addr(a) }

// Wire protocol. A stream opens with a fixed header and then carries frames:
//
//	header := "SKYW" ver(u8) flags(u8) streamID(u16 BE)
//	frame  := 'S' len(u32 BE) [crc(u32 BE)] bytes
//	                                     -- a flushed output-buffer segment;
//	                                        the receiver turns it into one
//	                                        input-buffer chunk, so objects
//	                                        never span chunks (§4.3)
//	        | 'T' rel(u64 BE)            -- top mark: the relative address of
//	                                        a root object (§4.2 "Root Object
//	                                        Recognition"); rel 0 is null
//	        | 'E'                        -- end of stream
//
// flags bit 0 records whether the object images carry a baddr header word,
// i.e. the receiver layout the sender adjusted the clones to (§3.1).
//
// Versioning: ver 1 frames carry no checksum. Ver 2 (current) adds a
// CRC-32C of the payload to every 'S' and 'C' frame, between the length
// words and the bytes, so a torn or bit-flipped transfer is rejected before
// any of it reaches the heap. Readers accept both; writers emit ver 2.
// Future format changes bump the version byte — old readers reject unknown
// versions loudly rather than misparsing (the golden wire-vector tests pin
// the current encoding byte for byte).
const (
	wireMagic   = "SKYW"
	wireVersion = 2
	// wireVersionNoCRC is the legacy checksum-free format, still accepted
	// on receive.
	wireVersionNoCRC = 1

	frameSegment = 'S'
	frameCompact = 'C' // compact segment: physLen(u32) decodedLen(u32) [crc(u32)] bytes
	frameTop     = 'T'
	frameEnd     = 'E'

	flagBaddr   = 1 << 0
	flagCompact = 1 << 1
)

// relBias offsets all relative addresses by one word so that relative
// address 0 can mean null (§4.2's r_addr bias).
const relBias = heap.RelBias

// maxSegmentBytes caps a declared segment length. Writers flush far below
// it (an oversized object gets a dedicated segment sized to the object); a
// declared length beyond it is corruption, not a big object, and is rejected
// before the receiver tries to stage it.
const maxSegmentBytes = 1 << 30

// crcTable is the Castagnoli polynomial table (hardware-accelerated on
// amd64/arm64), shared by senders and receivers.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func writeHeader(w io.Writer, target klass.Layout, streamID uint16, compact bool) error {
	var h [8]byte
	copy(h[:4], wireMagic)
	h[4] = wireVersion
	if target.Baddr {
		h[5] |= flagBaddr
	}
	if compact {
		h[5] |= flagCompact
	}
	binary.BigEndian.PutUint16(h[6:], streamID)
	_, err := w.Write(h[:])
	return err
}

func readHeader(r io.Reader) (target klass.Layout, streamID uint16, compact, checksummed bool, err error) {
	var h [8]byte
	if _, err = io.ReadFull(r, h[:]); err != nil {
		return target, 0, false, false, &DecodeError{Kind: DecodeFrame, Detail: "reading stream header", Err: noEOF(err)}
	}
	if string(h[:4]) != wireMagic {
		return target, 0, false, false, &DecodeError{Kind: DecodeFrame, Detail: fmt.Sprintf("bad stream magic %q", h[:4])}
	}
	switch h[4] {
	case wireVersion:
		checksummed = true
	case wireVersionNoCRC:
		checksummed = false
	default:
		return target, 0, false, false, &DecodeError{Kind: DecodeFrame, Detail: fmt.Sprintf("unsupported stream version %d", h[4])}
	}
	target.Baddr = h[5]&flagBaddr != 0
	return target, binary.BigEndian.Uint16(h[6:]), h[5]&flagCompact != 0, checksummed, nil
}

// noEOF maps a bare io.EOF to io.ErrUnexpectedEOF: inside a frame, running
// out of bytes is truncation, not a clean end of stream.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
