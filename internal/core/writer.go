package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync/atomic"
	"time"

	"skyway/internal/fault"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/obs"
	"skyway/internal/verify"
)

// Process-wide transfer counters, exported on /metrics.
var (
	ctrObjectsSent  = obs.NewCounter("skyway_transfer_objects_sent_total", "Objects copied into Skyway output buffers.")
	ctrBytesSent    = obs.NewCounter("skyway_transfer_bytes_sent_total", "Bytes written to Skyway output streams.")
	ctrOverflowHits = obs.NewCounter("skyway_transfer_overflow_hits_total", "Shared-object visits resolved through the thread-local hash table instead of the baddr word.")
	ctrSendStreams  = obs.NewCounter("skyway_transfer_send_streams_total", "Skyway sender streams closed.")
)

// DefaultBufferSize is the default output-buffer capacity. Output buffers
// live in native (non-heap) memory — here an ordinary Go byte slice — so the
// collector can never reclaim objects that are still being streamed (§3.2).
const DefaultBufferSize = 256 << 10

// Writer streams object graphs into a destination, implementing the sender
// side of Skyway: a BFS "GC-like" traversal that clones every reachable
// object into the output buffer, relativizes its reference fields, rewrites
// its klass word to the global type ID, and flushes the buffer in segments
// as it fills (Algorithm 2).
type Writer struct {
	sky *Skyway
	w   io.Writer

	streamID uint16
	sid      uint8 // shuffle phase the writer was opened in
	target   klass.Layout
	// targetKlass caches source-klass → target-layout klass for
	// heterogeneous transfers (§3.1); nil when layouts match.
	targetKlass map[int32]*klass.Klass

	// buf is the physical output buffer, drawn from the process-wide pool
	// and returned on Close; its capacity may exceed limit. All flush and
	// growth decisions run against limit — the *logical* capacity — so
	// segmentation (and therefore the wire bytes) is independent of what
	// the pool happened to hand out.
	buf       []byte
	limit     int    // logical buffer capacity governing segment flushes
	fixedBuf  bool   // WithBufferSize pinned limit explicitly
	flushed   uint64 // ob.flushedBytes (biased: starts at relBias)
	allocable uint64 // ob.allocableAddr (biased)

	// hdr and vec are reusable frame-write scratch: the segment header and
	// the two-element vector handed to net.Buffers, so a flush allocates
	// nothing and reaches a net.Conn destination as one writev.
	hdr [13]byte
	vec net.Buffers

	// pendingTops queues top marks until the next segment flush so that
	// one root per WriteObject does not force one segment per root; the
	// paper writes top marks into the buffer for the same reason.
	pendingTops []uint64

	// Local stat accumulators, folded into the shared service stats on
	// Flush/Close (hot-loop atomics are expensive).
	headerB, padB, ptrB, overflowHits uint64
	statObjects, statBytes            uint64

	// Per-writer cumulative composition totals (never reset), reported on
	// the stream's transfer span at Close.
	totHeaderB, totPadB, totPtrB, totOverflow uint64

	// openedAt anchors the stream's transfer span; zero when tracing was
	// disabled at open time.
	openedAt time.Time

	// payloadB caches per-klass unpadded payload sizes for the byte-
	// composition accounting.
	payloadB map[int32]uint64

	// overflow is the thread-local visited table used when an object's
	// baddr word is owned by another stream this phase, or when the heap
	// layout has no baddr word at all (the paper's hash-table fallback).
	overflow map[heap.Addr]uint64

	gray     []grayRec
	grayHead int

	headerWritten bool
	closed        bool
	growBuf       bool // buffer may still grow toward DefaultBufferSize
	verify        bool // SKYWAY_VERIFY debug assertions on relativized refs

	// Compact mode (§5.2 future work): headers/padding are compressed on
	// the wire; decodedInBuf tracks how many logical (inflated) bytes the
	// physical buffer corresponds to.
	compact      bool
	scratch      []byte
	decodedInBuf uint32

	// Objects and Bytes report per-writer transfer volume.
	Objects uint64
	Bytes   uint64
}

type grayRec struct {
	obj  heap.Addr
	rel  uint64
	k    *klass.Klass
	size uint32
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithBufferSize sets the output-buffer capacity in bytes.
func WithBufferSize(n int) WriterOption {
	return func(w *Writer) { w.limit, w.fixedBuf = n, true }
}

// WithTargetLayout makes the writer emit object images in a different
// header geometry than the sender heap's — the paper's heterogeneous
// cluster support, where format adjustment costs fall on the sender only.
func WithTargetLayout(l klass.Layout) WriterOption {
	return func(w *Writer) { w.target = l }
}

// WithCompactHeaders enables the compact wire encoding: reconstructible
// header words (klass pointer, unhashed mark, baddr) and padding are
// compressed out of each object record and re-inflated on the receiver —
// the header/padding compression the paper proposes as future work (§5.2).
// Trades sender and receiver CPU for wire bytes.
func WithCompactHeaders() WriterOption {
	return func(w *Writer) { w.compact = true }
}

// NewWriter opens a Skyway object output stream over w.
func (s *Skyway) NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	wr := &Writer{
		sky:      s,
		w:        w,
		streamID: s.allocStreamID(),
		sid:      s.Phase(),
		target:   s.rt.Heap.Layout(),

		flushed:   relBias,
		allocable: relBias,
		verify:    verify.Enabled(),
	}
	if obs.Enabled() {
		wr.openedAt = time.Now()
	}
	for _, o := range opts {
		o(wr)
	}
	if !wr.fixedBuf {
		// Start small and grow geometrically up to DefaultBufferSize:
		// short streams (one record per stream, as in JSBS) stay cheap
		// while long shuffle streams still flush in large segments.
		wr.limit = 4 << 10
		wr.growBuf = true
	}
	wr.buf = getBuf(wr.limit)
	if wr.target != s.rt.Heap.Layout() {
		wr.targetKlass = make(map[int32]*klass.Klass)
	}
	return wr
}

// visitedOverflow returns the lazily built hash-table fallback.
func (w *Writer) visitedOverflow() map[heap.Addr]uint64 {
	if w.overflow == nil {
		w.overflow = make(map[heap.Addr]uint64)
	}
	return w.overflow
}

// WriteObject transfers the object graph reachable from root. If root was
// already copied in the current shuffle phase (by this writer), only a
// backward reference (top mark) is emitted. A Null root writes a null top
// mark.
func (w *Writer) WriteObject(root heap.Addr) error {
	if w.closed {
		return fmt.Errorf("skyway: write on closed stream")
	}
	// Hold the phase guard for the whole traversal: ShuffleStartAll cannot
	// advance sID (or clear baddr words on wrap) while this writer is
	// claiming them, so every claim this call publishes is composed with
	// the phase checked below.
	w.sky.phaseMu.RLock()
	defer w.sky.phaseMu.RUnlock()
	if w.sky.Phase() != w.sid {
		return fmt.Errorf("skyway: writer opened in shuffle phase %d used in phase %d; open a new writer after ShuffleStart", w.sid, w.sky.Phase())
	}
	if !w.headerWritten {
		if err := writeHeader(w.w, w.target, w.streamID, w.compact); err != nil {
			return err
		}
		w.headerWritten = true
	}
	if root == heap.Null {
		return w.writeTop(0)
	}
	rel, visited, err := w.visit(root)
	if err != nil {
		return err
	}
	if visited {
		// WRITEBACKWARDREFERENCE: the graph is already in the buffer.
		return w.writeTop(rel)
	}
	for w.grayHead < len(w.gray) {
		rec := w.gray[w.grayHead]
		w.grayHead++
		if err := w.cloneInBuffer(&rec); err != nil {
			return err
		}
	}
	w.gray = w.gray[:0]
	w.grayHead = 0
	return w.writeTop(rel)
}

// visit returns the relative buffer address of obj, recording it as visited
// and queueing it for cloning when seen for the first time this phase.
func (w *Writer) visit(obj heap.Addr) (rel uint64, already bool, err error) {
	h := w.sky.rt.Heap
	sid := w.sid
	if !h.Layout().Baddr {
		// No baddr header word on this heap (vanilla layout): every
		// visit goes through the hash table — the design the baddr
		// field exists to avoid (ablation: AblationBaddr).
		if rel, ok := w.visitedOverflow()[obj]; ok {
			return rel, true, nil
		}
		rel = w.allocable
		w.overflow[obj] = rel
		if err := w.enqueue(obj, rel); err != nil {
			return 0, false, err
		}
		return rel, false, nil
	}
	for {
		v := h.AtomicBaddr(obj)
		if heap.BaddrPhase(v) == sid {
			if heap.BaddrStream(v) == w.streamID {
				return heap.BaddrRel(v), true, nil
			}
			// Claimed by another stream this phase: fall back to
			// the thread-local table (§4.2 Support for Threads).
			w.overflowHits++
			if rel, ok := w.visitedOverflow()[obj]; ok {
				return rel, true, nil
			}
			rel = w.allocable
			w.overflow[obj] = rel
			if err := w.enqueue(obj, rel); err != nil {
				return 0, false, err
			}
			return rel, false, nil
		}
		// Stale phase: try to claim the baddr word.
		rel = w.allocable
		if h.CasBaddr(obj, v, heap.ComposeBaddr(sid, w.streamID, rel)) {
			if err := w.enqueue(obj, rel); err != nil {
				return 0, false, err
			}
			return rel, false, nil
		}
		// Lost the race; retry the load.
	}
}

func (w *Writer) enqueue(obj heap.Addr, rel uint64) error {
	rt := w.sky.rt
	k := rt.KlassOf(obj)
	size, err := w.targetSize(obj, k)
	if err != nil {
		return err
	}
	if rel != w.allocable {
		panic("skyway: gray queue out of order")
	}
	w.allocable += uint64(size)
	if w.allocable-relBias > heap.BaddrRelMask {
		return fmt.Errorf("skyway: stream exceeded 1 TiB relative address space")
	}
	w.gray = append(w.gray, grayRec{obj: obj, rel: rel, k: k, size: size})
	return nil
}

// targetSize returns the clone's size under the target layout.
func (w *Writer) targetSize(obj heap.Addr, k *klass.Klass) (uint32, error) {
	rt := w.sky.rt
	if w.targetKlass == nil {
		if !k.IsArray {
			return k.Size, nil
		}
		//skyway:allow wiretaint — encode path: obj lives in the local heap, so its length header was written by this process's allocator, not read off the wire
		return k.InstanceBytes(rt.Heap.ArrayLen(obj)), nil
	}
	tk, err := w.targetKlassOf(k)
	if err != nil {
		return 0, err
	}
	if tk.IsArray {
		//skyway:allow wiretaint — encode path: obj lives in the local heap, so its length header was written by this process's allocator, not read off the wire
		return tk.InstanceBytes(rt.Heap.ArrayLen(obj)), nil
	}
	return tk.Size, nil
}

func (w *Writer) targetKlassOf(k *klass.Klass) (*klass.Klass, error) {
	if tk, ok := w.targetKlass[k.LID]; ok {
		return tk, nil
	}
	rt := w.sky.rt
	var tk *klass.Klass
	var err error
	if k.IsArray {
		tk, err = klass.ResolveArray(k.Name, w.target)
	} else {
		var super *klass.Klass
		def := rt.ClassPath().Lookup(k.Name)
		if def == nil {
			return nil, fmt.Errorf("skyway: class %s missing from classpath", k.Name)
		}
		if def.Super != "" {
			sk := rt.KlassByName(def.Super)
			if sk == nil {
				return nil, fmt.Errorf("skyway: superclass %s of %s not loaded", def.Super, k.Name)
			}
			super, err = w.targetKlassOf(sk)
			if err != nil {
				return nil, err
			}
		}
		tk, err = klass.ResolveLayout(def, super, w.target)
	}
	if err != nil {
		return nil, err
	}
	tk.TID = k.TID
	w.targetKlass[k.LID] = tk
	return tk, nil
}

// cloneInBuffer copies the gray record's object into the output buffer at
// its relative address (CLONEINBUFFER + header update + reference
// relativization, Algorithm 2 lines 10-27).
func (w *Writer) cloneInBuffer(rec *grayRec) error {
	rt := w.sky.rt
	h := rt.Heap
	obj, k, size := rec.obj, rec.k, rec.size
	if k.TID < 0 {
		return fmt.Errorf("skyway: class %s has no global type ID (runtime %s is not attached to a registry)", k.Name, rt.Name)
	}

	// need over-estimates the physical bytes this object adds to the
	// buffer; in compact mode records can carry up to ~16 bytes of
	// framing beyond the payload.
	need := int(size)
	if w.compact {
		need += 16
	}
	if len(w.buf)+need > w.limit {
		if w.growBuf && w.limit < DefaultBufferSize {
			// Grow the logical capacity instead of flushing a tiny segment.
			next := w.limit * 2
			for next < len(w.buf)+need {
				next *= 2
			}
			if next > DefaultBufferSize && len(w.buf)+need <= DefaultBufferSize {
				next = DefaultBufferSize
			}
			w.limit = next
		}
		if len(w.buf)+need > w.limit {
			if err := w.flushSegment(); err != nil {
				return err
			}
			if need > w.limit {
				// Oversized object: give it a dedicated segment.
				w.limit = need
			}
		}
	}
	w.ensureCap(len(w.buf) + need)

	var img []byte
	if w.compact {
		// Build the standard image in scratch; it is compacted onto
		// the wire after the header/reference fixups below.
		if cap(w.scratch) < int(size) {
			putBuf(w.scratch)
			w.scratch = getBuf(int(size))
		}
		img = w.scratch[:size]
	} else {
		if rec.rel-w.flushed != uint64(len(w.buf)) {
			panic("skyway: buffer position diverged from relative address")
		}
		pos := len(w.buf)
		w.buf = w.buf[:pos+int(size)]
		img = w.buf[pos : pos+int(size)]
	}

	srcL := h.Layout()
	if w.targetKlass == nil {
		// Same layout: whole-object copy, then patch the header and
		// reference slots in place. This is Skyway's fast path — no
		// per-field access for primitive data.
		h.CopyOut(obj, size, img)
	} else {
		if err := w.cloneCrossLayout(obj, k, img); err != nil {
			return err
		}
	}

	// Header update: reset GC/lock/age bits preserving the hashcode,
	// install the global type ID, clear the clone's baddr.
	binary.LittleEndian.PutUint64(img[klass.OffMark:], heap.ResetTransientMarkBits(h.Mark(obj)))
	binary.LittleEndian.PutUint64(img[klass.OffKlass:], uint64(uint32(k.TID)))
	if w.target.Baddr {
		binary.LittleEndian.PutUint64(img[w.target.OffBaddr():], 0)
	}

	// Relativize references.
	var ptrSlots uint64
	if k.IsArray {
		if k.Elem == klass.Ref {
			n := h.ArrayLen(obj)
			srcBase := srcL.ArrayHeaderSize()
			dstBase := w.target.ArrayHeaderSize()
			ptrSlots = uint64(n)
			for i := 0; i < n; i++ {
				if err := w.relativize(img, obj, srcBase+uint32(i)*8, dstBase+uint32(i)*8); err != nil {
					return err
				}
			}
		}
	} else if len(k.RefOffsets) > 0 {
		dstK := k
		if w.targetKlass != nil {
			dstK, _ = w.targetKlassOf(k)
		}
		ptrSlots = uint64(len(k.RefOffsets))
		for i, srcOff := range k.RefOffsets {
			if err := w.relativize(img, obj, srcOff, dstK.RefOffsets[i]); err != nil {
				return err
			}
		}
	}

	if w.compact {
		w.buf = appendCompact(w.buf, img, w.target, k.IsArray)
		w.decodedInBuf += size
	}

	// Accounting for the byte-composition analysis (§5.2).
	w.Objects++
	w.Bytes += uint64(size)
	hdr := uint64(w.target.HeaderSize())
	if k.IsArray {
		hdr = uint64(w.target.ArrayHeaderSize())
	}
	w.statObjects++
	w.statBytes += uint64(size)
	w.headerB += hdr
	w.ptrB += ptrSlots * 8
	w.padB += uint64(size) - hdr - w.payloadBytes(k, obj)
	return nil
}

// ensureCap grows the physical buffer to hold at least n bytes, recycling
// the old backing through the pool. Physical growth never affects
// segmentation: every flush decision reads w.limit, not cap(w.buf).
func (w *Writer) ensureCap(n int) {
	if cap(w.buf) >= n {
		return
	}
	if n < w.limit {
		n = w.limit
	}
	bigger := getBuf(n)[:len(w.buf)]
	copy(bigger, w.buf)
	putBuf(w.buf)
	w.buf = bigger
}

// relativize writes the relative address of the object referenced at
// srcOff into the clone image at dstOff, visiting the referee if new.
func (w *Writer) relativize(img []byte, obj heap.Addr, srcOff, dstOff uint32) error {
	o := heap.Addr(w.sky.rt.Heap.Load(obj, srcOff, klass.Ref))
	if o == heap.Null {
		binary.LittleEndian.PutUint64(img[dstOff:], 0)
		return nil
	}
	childRel, _, err := w.visit(o)
	if err != nil {
		return err
	}
	if w.verify && (childRel < relBias || childRel >= w.allocable) {
		// §4.2 invariant: a relativized pointer always lands inside the
		// stream's allocated relative space. Trips only on verifier-visible
		// bookkeeping corruption, e.g. a stale baddr claim surviving a
		// phase change.
		return fmt.Errorf("skyway: verify: relativized pointer %#x outside allocated relative space [%#x, %#x)",
			childRel, uint64(relBias), w.allocable)
	}
	binary.LittleEndian.PutUint64(img[dstOff:], childRel)
	return nil
}

// payloadBytes returns the unpadded payload size (field data incl. pointer
// slots) of obj, used to attribute the remainder to padding.
func (w *Writer) payloadBytes(k *klass.Klass, obj heap.Addr) uint64 {
	if k.IsArray {
		return uint64(uint32(w.sky.rt.Heap.ArrayLen(obj)) * k.ElemSize())
	}
	if w.payloadB == nil {
		w.payloadB = make(map[int32]uint64)
	}
	if n, ok := w.payloadB[k.LID]; ok {
		return n
	}
	var n uint64
	for _, f := range k.Fields {
		n += uint64(f.Kind.Size())
	}
	w.payloadB[k.LID] = n
	return n
}

// foldStats publishes the writer's local accumulators into the shared
// service stats.
func (w *Writer) foldStats() {
	if w.statObjects == 0 && w.overflowHits == 0 {
		return
	}
	atomic.AddUint64(&w.sky.stats.ObjectsSent, w.statObjects)
	atomic.AddUint64(&w.sky.stats.BytesSent, w.statBytes)
	atomic.AddUint64(&w.sky.stats.HeaderBytes, w.headerB)
	atomic.AddUint64(&w.sky.stats.PointerBytes, w.ptrB)
	atomic.AddUint64(&w.sky.stats.PaddingBytes, w.padB)
	atomic.AddUint64(&w.sky.stats.OverflowHits, w.overflowHits)
	ctrObjectsSent.Add(int64(w.statObjects))
	ctrBytesSent.Add(int64(w.statBytes))
	ctrOverflowHits.Add(int64(w.overflowHits))
	w.totHeaderB += w.headerB
	w.totPtrB += w.ptrB
	w.totPadB += w.padB
	w.totOverflow += w.overflowHits
	w.statObjects, w.statBytes, w.headerB, w.ptrB, w.padB, w.overflowHits = 0, 0, 0, 0, 0, 0
}

// cloneCrossLayout builds obj's image field by field under the target
// layout (heterogeneous clusters, §3.1).
func (w *Writer) cloneCrossLayout(obj heap.Addr, k *klass.Klass, img []byte) error {
	rt := w.sky.rt
	h := rt.Heap
	tk, err := w.targetKlassOf(k)
	if err != nil {
		return err
	}
	clear(img)
	if k.IsArray {
		n := h.ArrayLen(obj)
		binary.LittleEndian.PutUint64(img[w.target.OffArrayLen():], uint64(n))
		es := k.ElemSize()
		if es == 0 {
			// Same contract as putKind: this is our own heap handing us a
			// klass with an unsized element kind — a corrupted klass table,
			// not wire input — so it is a programming error, not an error
			// return.
			panic(fmt.Sprintf("skyway: array class %s has element kind of undefined size", k.Name))
		}
		srcBase := h.Layout().ArrayHeaderSize()
		dstBase := w.target.ArrayHeaderSize()
		// Source and target element layouts always agree for primitive and
		// reference payloads (same kind, little-endian in either header
		// geometry), so the payload moves as one bulk copy instead of a
		// per-element load/store loop; es divides the word size, so only the
		// sub-word tail — at most 7 bytes — goes element by element, and the
		// cleared image keeps the padding identical to what the loop left.
		//skyway:allow wiretaint — encode path: obj lives in the local heap, so its length header was written by this process's allocator, not read off the wire
		total := uint32(n) * es
		whole := total &^ (klass.WordSize - 1)
		if whole > 0 {
			h.CopyOut(obj.Add(srcBase), whole, img[dstBase:dstBase+whole])
		}
		for i := int(whole) / int(es); i < n; i++ {
			v := h.Load(obj, srcBase+uint32(i)*es, k.Elem)
			putKind(img[dstBase+uint32(i)*es:], k.Elem, v)
		}
		return nil
	}
	for i := range k.Fields {
		src := &k.Fields[i]
		dst := &tk.Fields[i]
		putKind(img[dst.Offset:], src.Kind, h.Load(obj, src.Offset, src.Kind))
	}
	return nil
}

// putKind stores v into b with the kind's width. A kind whose size is not
// one of {1,2,4,8} panics: the klass came from this process's own klass
// table, so an unsized kind is memory corruption or a construction bug, and
// silently writing nothing would drop field bytes from the wire image.
// (The reader-side counterpart, checkKlassKinds, returns a DecodeError
// instead — there the malformed klass is attacker-reachable input.)
func putKind(b []byte, k klass.Kind, v uint64) {
	switch k.Size() {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		panic(fmt.Sprintf("skyway: field kind %v has undefined size", k))
	}
}

// flushSegment streams the current buffer out as one segment/chunk — with
// its CRC-32C, so the receiver rejects torn or bit-flipped transfers — then
// emits any queued top marks (whose objects are now fully on the wire).
func (w *Writer) flushSegment() error {
	// Failpoint: the transport fails mid-flush (a severed connection, a
	// full pipe). Surfaces to the caller exactly like a Write error.
	if err := fault.Inject(fault.CoreWriteFail); err != nil {
		return err
	}
	if len(w.buf) > 0 {
		crc := crc32.Checksum(w.buf, crcTable)
		hn := 9
		if w.compact {
			w.hdr[0] = frameCompact
			binary.BigEndian.PutUint32(w.hdr[1:], uint32(len(w.buf)))
			binary.BigEndian.PutUint32(w.hdr[5:], w.decodedInBuf)
			binary.BigEndian.PutUint32(w.hdr[9:], crc)
			hn = 13
		} else {
			w.hdr[0] = frameSegment
			binary.BigEndian.PutUint32(w.hdr[1:], uint32(len(w.buf)))
			binary.BigEndian.PutUint32(w.hdr[5:], crc)
		}
		if err := w.writeVec(w.hdr[:hn], w.buf); err != nil {
			return err
		}
		if w.compact {
			w.flushed += uint64(w.decodedInBuf)
			w.decodedInBuf = 0
		} else {
			w.flushed += uint64(len(w.buf))
		}
		w.buf = w.buf[:0]
	}
	for _, rel := range w.pendingTops {
		if w.verify && rel != 0 && (rel < relBias || rel >= w.flushed) {
			// Framing invariant: a top mark reaches the wire only after
			// every byte of the graph it names has been flushed.
			return fmt.Errorf("skyway: verify: top mark %#x outside flushed relative space [%#x, %#x)",
				rel, uint64(relBias), w.flushed)
		}
		w.hdr[0] = frameTop
		binary.BigEndian.PutUint64(w.hdr[1:], rel)
		if _, err := w.w.Write(w.hdr[:9]); err != nil {
			return err
		}
	}
	w.pendingTops = w.pendingTops[:0]
	return nil
}

// writeVec writes a header+payload pair as one vectored write: a single
// writev syscall when the destination is a net.Conn (net.Buffers fast path),
// a plain sequential pair of writes — byte-identical on the wire — for
// buffered and in-memory destinations. The two-element vector is reused
// across flushes, so this allocates nothing.
func (w *Writer) writeVec(hdr, payload []byte) error {
	w.vec = append(w.vec[:0], hdr, payload)
	_, err := w.vec.WriteTo(w.w)
	w.vec = w.vec[:0]
	return err
}

// writeTop queues a top mark; it reaches the wire with the next segment
// flush, after the bytes of every object it refers to.
func (w *Writer) writeTop(rel uint64) error {
	w.pendingTops = append(w.pendingTops, rel)
	return nil
}

// Flush forces any buffered segment and queued top marks onto the
// underlying writer.
func (w *Writer) Flush() error {
	w.foldStats()
	return w.flushSegment()
}

// Close flushes and terminates the stream. The Writer cannot be reused.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.foldStats()
	if !w.headerWritten {
		if err := writeHeader(w.w, w.target, w.streamID, w.compact); err != nil {
			return err
		}
		w.headerWritten = true
	}
	if err := w.flushSegment(); err != nil {
		return err
	}
	// The stream is fully on the wire: recycle the output buffer and
	// compact scratch for the next writer (per-stage encoder reuse — a
	// concurrent sender opening one encoder per stage draws warm buffers
	// instead of allocating fresh ones).
	putBuf(w.buf)
	putBuf(w.scratch)
	w.buf, w.scratch = nil, nil
	w.hdr[0] = frameEnd
	_, err := w.w.Write(w.hdr[:1])
	ctrSendStreams.Inc()
	if !w.openedAt.IsZero() {
		w.sky.rt.Trace.Emit("transfer", "skyway.send", w.openedAt, time.Since(w.openedAt),
			obs.I64("objects", int64(w.Objects)),
			obs.I64("bytes", int64(w.Bytes)),
			obs.I64("header_bytes", int64(w.totHeaderB)),
			obs.I64("pointer_bytes", int64(w.totPtrB)),
			obs.I64("padding_bytes", int64(w.totPadB)),
			obs.I64("overflow_hits", int64(w.totOverflow)),
			obs.I64("stream_id", int64(w.streamID)))
	}
	return err
}
