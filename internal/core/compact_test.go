package core

import (
	"bytes"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/vm"
)

// Tests for the compact wire mode (§5.2 future work): the logical transfer
// must be indistinguishable from the standard mode while the wire carries
// fewer bytes.

func compactTransfer(t *testing.T, snd, rcv *vm.Runtime, sky *Skyway, roots ...heap.Addr) []heap.Addr {
	t.Helper()
	var buf bytes.Buffer
	w := sky.NewWriter(&buf, WithCompactHeaders(), WithBufferSize(512))
	for _, r := range roots {
		if err := w.WriteObject(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(rcv, &buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCompactRoundTripSimple(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2018, 3, 24)
	got := compactTransfer(t, snd, rcv, sky, d)
	dk := rcv.MustLoad("Date")
	yk := rcv.MustLoad("Year4D")
	if rcv.GetInt(got[0], dk.FieldByName("month")) != 3 {
		t.Error("field corrupted")
	}
	yo := rcv.GetRef(got[0], dk.FieldByName("year"))
	if rcv.GetInt(yo, yk.FieldByName("value")) != 2018 {
		t.Error("reference corrupted")
	}
}

func TestCompactPreservesHashcode(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2020, 7, 7)
	want := snd.HashCode(d)
	got := compactTransfer(t, snd, rcv, sky, d)
	if h, ok := rcv.Heap.HashOf(got[0]); !ok || h != want {
		t.Errorf("hash = %#x,%v want %#x", h, ok, want)
	}
}

func TestCompactUnhashedStaysUnhashed(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	// Never call HashCode on the sender: the receiver copy must arrive
	// without a cached hash (and without the bytes to carry one).
	d := newDate(t, snd, 2021, 8, 8)
	got := compactTransfer(t, snd, rcv, sky, d)
	if _, ok := rcv.Heap.HashOf(got[0]); ok {
		t.Error("unhashed object arrived hashed")
	}
}

func TestCompactSharedAndCycles(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	pk := snd.MustLoad("Pair")
	a := snd.MustNew(ck)
	ap := snd.Pin(a)
	b := snd.MustNew(ck)
	a = ap.Addr()
	snd.SetRef(a, ck.FieldByName("next"), b)
	snd.SetRef(b, ck.FieldByName("next"), a) // cycle
	p := snd.MustNew(pk)
	a = ap.Addr()
	ap.Release()
	snd.SetRef(p, pk.FieldByName("a"), a)
	snd.SetRef(p, pk.FieldByName("b"), a) // shared

	got := compactTransfer(t, snd, rcv, sky, p)
	rpk := rcv.MustLoad("Pair")
	rck := rcv.MustLoad("Cell")
	ga := rcv.GetRef(got[0], rpk.FieldByName("a"))
	gb := rcv.GetRef(got[0], rpk.FieldByName("b"))
	if ga != gb {
		t.Error("shared object duplicated")
	}
	g2 := rcv.GetRef(ga, rck.FieldByName("next"))
	if rcv.GetRef(g2, rck.FieldByName("next")) != ga {
		t.Error("cycle broken")
	}
}

func TestCompactArraysAndStrings(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ak := snd.MustLoad(vm.StringClass + "[]")
	arr := snd.MustNewArray(ak, 3)
	arrPin := snd.Pin(arr)
	for i, s := range []string{"alpha", "βeta", ""} {
		so := snd.MustNewString(s)
		snd.ArraySetRef(arrPin.Addr(), i, so)
	}
	got := compactTransfer(t, snd, rcv, sky, arrPin.Addr())
	arrPin.Release()
	want := []string{"alpha", "βeta", ""}
	for i := range want {
		if s := rcv.GoString(rcv.ArrayGetRef(got[0], i)); s != want[i] {
			t.Errorf("elem %d = %q", i, s)
		}
	}

	dk := snd.MustLoad("double[]")
	da := snd.MustNewArray(dk, 100)
	for i := 0; i < 100; i++ {
		snd.ArraySetDouble(da, i, float64(i)*1.5)
	}
	got = compactTransfer(t, snd, rcv, sky, da)
	for i := 0; i < 100; i++ {
		if rcv.ArrayGetDouble(got[0], i) != float64(i)*1.5 {
			t.Fatalf("double elem %d corrupted", i)
		}
	}
}

func TestCompactSavesBytes(t *testing.T) {
	buildChain := func(rt *vm.Runtime, sky *Skyway) heap.Addr {
		ck := rt.MustLoad("Cell")
		head := rt.MustNew(ck)
		hp := rt.Pin(head)
		prev := rt.Pin(head)
		for i := 1; i < 500; i++ {
			c := rt.MustNew(ck)
			rt.SetDouble(c, ck.FieldByName("v"), float64(i))
			rt.SetRef(prev.Addr(), ck.FieldByName("next"), c)
			prev.Set(c)
		}
		prev.Release()
		defer hp.Release()
		return hp.Addr()
	}

	snd, rcv, sky := testCluster(t)
	head := buildChain(snd, sky)
	hp := snd.Pin(head)
	defer hp.Release()

	var std bytes.Buffer
	w := sky.NewWriter(&std)
	if err := w.WriteObject(hp.Addr()); err != nil {
		t.Fatal(err)
	}
	w.Close()

	sky.ShuffleStart()
	var comp bytes.Buffer
	w = sky.NewWriter(&comp, WithCompactHeaders())
	if err := w.WriteObject(hp.Addr()); err != nil {
		t.Fatal(err)
	}
	w.Close()

	if comp.Len() >= std.Len() {
		t.Errorf("compact stream (%d B) not smaller than standard (%d B)", comp.Len(), std.Len())
	}
	// Cells are 40 B with a 24 B header; compact should roughly halve.
	if float64(comp.Len()) > 0.75*float64(std.Len()) {
		t.Errorf("compact stream only %d B vs %d B standard — less than 25%% savings", comp.Len(), std.Len())
	}
	// And it still decodes identically.
	got, err := NewReader(rcv, &comp).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	rck := rcv.MustLoad("Cell")
	n := 0
	for cur := got; cur != heap.Null; cur = rcv.GetRef(cur, rck.FieldByName("next")) {
		n++
	}
	if n != 500 {
		t.Errorf("decoded chain length %d", n)
	}
}

func TestCompactTruncationRejected(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2022, 2, 22)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf, WithCompactHeaders())
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut += 5 {
		if _, err := NewReader(rcv, bytes.NewReader(full[:cut])).ReadObject(); err == nil {
			t.Fatalf("truncation at %d decoded", cut)
		}
	}
}

func TestCompactWithFieldUpdates(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	if err := rcv.RegisterUpdate("Date", "day", func(rt *vm.Runtime, obj heap.Addr) uint64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	d := newDate(t, snd, 2019, 9, 19)
	got := compactTransfer(t, snd, rcv, sky, d)
	dk := rcv.MustLoad("Date")
	if rcv.GetInt(got[0], dk.FieldByName("day")) != 1 {
		t.Error("field update skipped in compact mode")
	}
}
