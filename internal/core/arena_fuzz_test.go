package core

import (
	"bytes"
	"io"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

// FuzzArenaHandle drives adversarial relativized segments through the arena
// decode path and its bounds-checked handles. The invariant extends
// FuzzReaderDecode's: every input either fails with a structured
// *DecodeError, or decodes — on BOTH paths, eager and lazy, with identical
// accept/reject verdicts — and every field of every decoded root is then
// readable through tagged handles with values identical to the eager copy.
// A read through a handle must never escape its region segment; the vm
// accessor layer panics on escape, which the fuzzer would surface.
func FuzzArenaHandle(f *testing.F) {
	cp := klass.NewPath()
	cp.MustDefine(
		&klass.ClassDef{Name: "Date", Fields: []klass.FieldDef{
			{Name: "year", Kind: klass.Ref, Class: "Year4D"},
			{Name: "month", Kind: klass.Int32},
			{Name: "day", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: "Year4D", Fields: []klass.FieldDef{
			{Name: "value", Kind: klass.Int32},
		}},
	)
	reg := registry.NewRegistry()
	for _, seed := range fuzzSeeds(f, cp, reg) {
		f.Add(seed)
	}
	// Arena-pointed adversarial frames: a reference whose relative address
	// aims below the bias, past the segment, or at an unaligned word — the
	// shapes a forged handle would need bounds checks to stop.
	hdr := []byte("SKYW\x02\x01\x00\x00")
	f.Add(append(append([]byte{}, hdr...), 'S', 0, 0, 0, 8, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8))
	f.Add(append(append([]byte{}, hdr...), 'T', 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		newRT := func(name string) *vm.Runtime {
			rt, err := vm.NewRuntime(cp, vm.Options{Name: name, Registry: registry.InProc{R: reg}, Heap: fuzzHeap()})
			if err != nil {
				t.Fatal(err)
			}
			return rt
		}
		eagerRT, arenaRT := newRT("fuzz-eager"), newRT("fuzz-arena")
		erd := NewReader(eagerRT, bytes.NewReader(data))
		ard := NewReader(arenaRT, bytes.NewReader(data), WithArena())
		defer erd.Free()
		defer ard.Free()

		for {
			ea, eerr := erd.ReadObject()
			aa, aerr := ard.ReadObject()
			if (eerr == nil) != (aerr == nil) {
				t.Fatalf("decode verdicts diverge: eager err=%v, arena err=%v", eerr, aerr)
			}
			if eerr != nil {
				for _, err := range []error{eerr, aerr} {
					if err == io.EOF {
						continue
					}
					if _, ok := AsDecodeError(err); !ok {
						t.Fatalf("decoder surfaced unstructured error %T: %v", err, err)
					}
				}
				return
			}
			compareDates(t, eagerRT, arenaRT, ea, aa)
		}
	})
}

// compareDates walks the two-level Date graph on both runtimes, comparing
// every field read through the respective handles.
func compareDates(t *testing.T, ert, art *vm.Runtime, ea, aa heap.Addr) {
	t.Helper()
	if (ea == heap.Null) != (aa == heap.Null) {
		t.Fatal("null-ness of decoded roots diverges")
	}
	if ea == heap.Null {
		return
	}
	ek, ak := ert.KlassOf(ea), art.KlassOf(aa)
	if ek.Name != ak.Name {
		t.Fatalf("decoded root types diverge: eager %s, arena %s", ek.Name, ak.Name)
	}
	if ek.Name != "Date" {
		return
	}
	for _, field := range []string{"month", "day"} {
		fe, fa := ek.FieldByName(field), ak.FieldByName(field)
		if ev, av := ert.GetInt(ea, fe), art.GetInt(aa, fa); ev != av {
			t.Fatalf("Date.%s diverges: eager %d, arena %d", field, ev, av)
		}
	}
	ey := ert.GetRef(ea, ek.FieldByName("year"))
	ay := art.GetRef(aa, ak.FieldByName("year"))
	if (ey == heap.Null) != (ay == heap.Null) {
		t.Fatal("Date.year null-ness diverges")
	}
	if ey == heap.Null {
		return
	}
	eyk, ayk := ert.KlassOf(ey), art.KlassOf(ay)
	if eyk.Name != ayk.Name {
		t.Fatalf("Date.year types diverge: eager %s, arena %s", eyk.Name, ayk.Name)
	}
	if eyk.Name == "Year4D" {
		if ev, av := ert.GetInt(ey, eyk.FieldByName("value")), art.GetInt(ay, ayk.FieldByName("value")); ev != av {
			t.Fatalf("Year4D.value diverges: eager %d, arena %d", ev, av)
		}
	}
}
