package core

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

// testClusterPath returns the shared classpath used by testCluster.
func testClusterPath() *klass.Path {
	cp := klass.NewPath()
	cp.MustDefine(
		&klass.ClassDef{Name: "Date", Fields: []klass.FieldDef{
			{Name: "year", Kind: klass.Ref, Class: "Year4D"},
			{Name: "month", Kind: klass.Int32},
			{Name: "day", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: "Year4D", Fields: []klass.FieldDef{
			{Name: "value", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: "Cell", Fields: []klass.FieldDef{
			{Name: "v", Kind: klass.Float64},
			{Name: "next", Kind: klass.Ref, Class: "Cell"},
		}},
	)
	return cp
}

// newSenderFor boots a sender runtime on cp with a fresh registry, returning
// the registry client (for further runtimes) and the sender.
func newSenderFor(t *testing.T, cp *klass.Path) (registry.Client, *vm.Runtime) {
	t.Helper()
	reg := registry.InProc{R: registry.NewRegistry()}
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "edge-snd", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return reg, snd
}

// Edge-case coverage for the transfer core beyond the happy paths in
// core_test.go.

func TestEmptyStream(t *testing.T) {
	_, rcv, sky := testCluster(t)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(rcv, &buf).ReadObject(); err != io.EOF {
		t.Errorf("empty stream read = %v, want EOF", err)
	}
}

func TestDoubleCloseIsIdempotent(t *testing.T) {
	_, _, sky := testCluster(t)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Error("second Close wrote more bytes")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	snd, _, sky := testCluster(t)
	d := newDate(t, snd, 2020, 1, 1)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	w.Close()
	if err := w.WriteObject(d); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestTruncatedStreamErrors(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2020, 2, 2)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	full := buf.Bytes()

	// Any strict prefix must produce an error (or EOF for the empty
	// prefix), never a bogus object.
	for cut := 1; cut < len(full)-1; cut += 7 {
		r := NewReader(rcv, bytes.NewReader(full[:cut]))
		if _, err := r.ReadObject(); err == nil {
			t.Fatalf("truncation at %d bytes read an object", cut)
		}
	}
}

func TestGarbageMagicRejected(t *testing.T) {
	_, rcv, _ := testCluster(t)
	r := NewReader(rcv, bytes.NewReader([]byte("NOTSKYWAYDATA___")))
	if _, err := r.ReadObject(); err == nil {
		t.Error("garbage stream accepted")
	}
}

func TestOversizedObjectGetsOwnSegment(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	// A primitive array far larger than the writer buffer.
	ak := snd.MustLoad("double[]")
	arr := snd.MustNewArray(ak, 4096) // 32 KiB payload
	for i := 0; i < 4096; i++ {
		snd.ArraySetDouble(arr, i, float64(i))
	}
	var buf bytes.Buffer
	w := sky.NewWriter(&buf, WithBufferSize(1024))
	if err := w.WriteObject(arr); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i += 257 {
		if rcv.ArrayGetDouble(got, i) != float64(i) {
			t.Fatalf("elem %d corrupted", i)
		}
	}
}

func TestPhaseWraparoundClearsBaddrs(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 1990, 6, 6)
	dp := snd.Pin(d)
	defer dp.Release()

	// Drive the 8-bit phase counter all the way around.
	for i := 0; i < 300; i++ {
		sky.ShuffleStart()
	}
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(dp.Addr()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	dk := rcv.MustLoad("Date")
	if rcv.GetInt(got, dk.FieldByName("month")) != 6 {
		t.Error("transfer after wraparound corrupted")
	}
}

func TestManyWritersSixteenBitStreamIDs(t *testing.T) {
	// The baddr stream field is 16 bits; writer IDs wrap. Two writers
	// whose IDs collide after a wrap must still not share buffer state
	// because they are in different phases by then in practice — here we
	// just verify allocation keeps working far past 2^16.
	snd, _, sky := testCluster(t)
	d := newDate(t, snd, 2001, 1, 1)
	dp := snd.Pin(d)
	defer dp.Release()
	for i := 0; i < 70000; i += 7001 {
		// Sample a few IDs across the range cheaply.
		for j := 0; j < 7001; j++ {
			_ = sky.NewWriter(io.Discard)
		}
		sky.ShuffleStart() // new phase invalidates prior claims
		w := sky.NewWriter(io.Discard)
		if err := w.WriteObject(dp.Addr()); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStatsAcrossReceive(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2010, 10, 10)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r := NewReader(rcv, &buf)
	if _, err := r.ReadObject(); err != nil {
		t.Fatal(err)
	}
	if r.Objects != w.Objects {
		t.Errorf("reader saw %d objects, writer sent %d", r.Objects, w.Objects)
	}
	if r.Bytes == 0 || uint64(r.Bytes) != w.Bytes {
		t.Errorf("reader bytes %d, writer bytes %d", r.Bytes, w.Bytes)
	}
}

func TestBufferSpaceExhaustion(t *testing.T) {
	// A receiver with a tiny buffer space reports a helpful error rather
	// than corrupting state.
	cp := testClusterPath()
	reg, snd := newSenderFor(t, cp)
	rcvCfg := heap.DefaultConfig()
	rcvCfg.BufferSize = 4 << 10
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "tiny-rcv", Heap: rcvCfg, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	sky := New(snd)

	// Send more than 4 KiB of cells.
	ck := snd.MustLoad("Cell")
	head := snd.MustNew(ck)
	hp := snd.Pin(head)
	prev := snd.Pin(head)
	for i := 0; i < 500; i++ {
		c := snd.MustNew(ck)
		snd.SetRef(prev.Addr(), ck.FieldByName("next"), c)
		prev.Set(c)
	}
	prev.Release()
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(hp.Addr()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	hp.Release()

	if _, err := NewReader(rcv, &buf).ReadObject(); err == nil {
		t.Error("buffer-space exhaustion not reported")
	}
}

func TestBufferSpaceRecycledAcrossTransfers(t *testing.T) {
	// Repeated transfer + Free must run indefinitely inside a bounded
	// buffer space: freed chunks are reused (§3.2 explicit-free API).
	cp := testClusterPath()
	reg, snd := newSenderFor(t, cp)
	rcvCfg := heap.DefaultConfig()
	rcvCfg.BufferSize = 64 << 10
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "recycle-rcv", Heap: rcvCfg, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	sky := New(snd)
	d := newDate(t, snd, 2024, 1, 1)
	dp := snd.Pin(d)
	defer dp.Release()

	// Each round sends ~20 KiB; 100 rounds = ~2 MiB through a 64 KiB space.
	ck := snd.MustLoad("Cell")
	head := snd.MustNew(ck)
	hp := snd.Pin(head)
	prev := snd.Pin(head)
	for i := 0; i < 500; i++ {
		c := snd.MustNew(ck)
		snd.SetRef(prev.Addr(), ck.FieldByName("next"), c)
		prev.Set(c)
	}
	prev.Release()
	defer hp.Release()

	for round := 0; round < 100; round++ {
		sky.ShuffleStart()
		var buf bytes.Buffer
		w := sky.NewWriter(&buf)
		if err := w.WriteObject(hp.Addr()); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		w.Close()
		r := NewReader(rcv, &buf)
		if _, err := r.ReadObject(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		r.Free()
	}
}

// TestHugeArrayLengthRejected pins the widened size check in absolutize:
// InstanceBytes computes Pad(Size + n*ElemSize) in uint32, so a wire-supplied
// ref-array length of 2^29 (8-byte elements) wraps to a tiny size that passes
// the per-object overrun check while refCount=n would drive slot reads and
// absolutization writes far past the chunk. A length that large only passes
// the n<=chunkSize plausibility check when the chunk itself is huge (the wire
// format permits 1 GiB segments), so rather than stream a gigabyte through
// the reader, the test stages a small real chunk and fabricates the chunk
// table entry such a segment would register.
func TestHugeArrayLengthRejected(t *testing.T) {
	_, rcv, _ := testCluster(t)
	h := rcv.Heap
	ak := rcv.MustLoad("Date[]")

	base := h.AllocBuffer(4096)
	if base == heap.Null {
		t.Fatal("AllocBuffer failed")
	}
	// A staged wire image's klass word holds the global type ID.
	h.SetKlassWord(base, uint64(uint32(ak.TID)))
	h.SetArrayLen(base, 1<<29)

	rd := NewReader(rcv, bytes.NewReader(nil))
	rd.chunks = append(rd.chunks, chunk{startRel: relBias, base: base, size: 1 << 30})
	err := rd.absolutize()
	de, ok := AsDecodeError(err)
	if !ok {
		t.Fatalf("absolutize = %v, want DecodeError", err)
	}
	if de.Kind != DecodeLength {
		t.Errorf("DecodeError kind = %s, want %s", de.Kind, DecodeLength)
	}
}

// TestCompactHugeArrayLengthRejected pins the same uint32 wrap on the compact
// decode path: a compact record can declare a 2^29-element ref array in a few
// bytes of varint, and the wrapped size would both pass the overrun check and
// plant an oversized array-length header for absolutize to trip over. The
// record must be rejected before any byte of it reaches the chunk.
func TestCompactHugeArrayLengthRejected(t *testing.T) {
	_, rcv, _ := testCluster(t)
	h := rcv.Heap
	ak := rcv.MustLoad("Date[]")

	base := h.AllocBuffer(4096)
	if base == heap.Null {
		t.Fatal("AllocBuffer failed")
	}
	var tmp [binary.MaxVarintLen64]byte
	var phys []byte
	phys = append(phys, tmp[:binary.PutUvarint(tmp[:], uint64(uint32(ak.TID)))]...)
	phys = append(phys, compactFlagArray)
	phys = append(phys, tmp[:binary.PutUvarint(tmp[:], 1<<29)]...)

	rd := NewReader(rcv, bytes.NewReader(nil))
	err := rd.decodeCompactSegment(phys, base, 1<<30)
	de, ok := AsDecodeError(err)
	if !ok {
		t.Fatalf("decodeCompactSegment = %v, want DecodeError", err)
	}
	if de.Kind != DecodeLength {
		t.Errorf("DecodeError kind = %s, want %s", de.Kind, DecodeLength)
	}
	// Rejection must precede the first mutation of the chunk.
	if h.KlassWord(base) != 0 || h.ArrayLen(base) != 0 {
		t.Error("rejected compact record was partially inflated into the chunk")
	}
}

func TestHashSetTransferStaysValid(t *testing.T) {
	// The §1 headline applied to sets: a transferred HashSet's layout is
	// immediately valid because element hashcodes ride in the mark words.
	snd, rcv, sky := testCluster(t)
	s, err := snd.NewHashSet(16)
	if err != nil {
		t.Fatal(err)
	}
	sp := snd.Pin(s)
	defer sp.Release()
	for i := 0; i < 40; i++ {
		e := snd.MustNewString("elem")
		eh := snd.Pin(e)
		if _, err := snd.HashSetAdd(sp.Addr(), eh.Addr()); err != nil {
			t.Fatal(err)
		}
		eh.Release()
	}

	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(sp.Addr()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	if rcv.HashSetLen(got) != 40 {
		t.Fatalf("received set has %d elements", rcv.HashSetLen(got))
	}
	// Every received element must be found through the received table
	// without any rehash.
	n := 0
	rcv.HashSetEach(got, func(e heap.Addr) {
		if !rcv.HashSetContains(got, e) {
			t.Fatal("received element not found via hash lookup")
		}
		n++
	})
	if n != 40 {
		t.Fatalf("iterated %d elements", n)
	}
	setK := rcv.KlassOf(got)
	if !rcv.HashMapValid(rcv.GetRef(got, setK.FieldByName("map"))) {
		t.Error("received set's map needs a rehash")
	}
}
