package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"skyway/internal/fault"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/vm"
)

// cachedHash reads the identity hash cached in an object's mark word without
// assigning one — for arena-resident objects straight from the relativized
// image, for promoted or managed objects from the word slab — so the
// equivalence walk can compare hash state across decode modes.
func cachedHash(rt *vm.Runtime, a heap.Addr) (uint32, bool) {
	if heap.IsArenaAddr(a) {
		reg := rt.Arena.MustRegion(heap.ArenaRegionOf(a))
		if p := reg.PromotedAddr(heap.ArenaRelOf(a)); p != heap.Null {
			return rt.Heap.HashOf(p)
		}
		b, err := reg.Resolve(heap.ArenaRelOf(a)+uint64(klass.OffMark), 8)
		if err != nil {
			panic(err)
		}
		return heap.MarkHash(heap.LoadBytes(b, 0, klass.Int64))
	}
	return rt.Heap.HashOf(a)
}

// TestArenaEquivalenceQuick is the arena counterpart of the compact
// equivalence property: for any random Cell graph, the lazy (arena) decode
// must be observationally identical to eager absolutization — same
// structure, same field values, same cached hashes — reading entirely
// through bounds-checked handles into the relativized image. A second phase
// then mutates every reachable cell identically on both sides, driving the
// copy-on-write promotion funnel, and re-walks: lazy-after-promotion must
// still match eager.
func TestArenaEquivalenceQuick(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	pk := snd.MustLoad("Pair")
	vF, nF := ck.FieldByName("v"), ck.FieldByName("next")
	rck := rcv.MustLoad("Cell")
	rpk := rcv.MustLoad("Pair")
	rvF, rnF := rck.FieldByName("v"), rck.FieldByName("next")
	raF, rbF := rpk.FieldByName("a"), rpk.FieldByName("b")

	f := func(vals []float64, links []uint8, hashSel uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 25 {
			vals = vals[:25]
		}
		handles := make([]interface {
			Addr() heap.Addr
			Release()
		}, len(vals))
		for i, v := range vals {
			c := snd.MustNew(ck)
			snd.SetDouble(c, vF, v)
			handles[i] = snd.Pin(c)
		}
		defer func() {
			for _, h := range handles {
				h.Release()
			}
		}()
		for i := range handles {
			if len(links) == 0 {
				break
			}
			tgt := int(links[i%len(links)]) % len(handles)
			snd.SetRef(handles[i].Addr(), nF, handles[tgt].Addr())
		}
		for i := range handles {
			if (uint8(i)+hashSel)%3 == 0 {
				snd.HashCode(handles[i].Addr())
			}
		}
		root := snd.MustNew(pk)
		snd.SetRef(root, pk.FieldByName("a"), handles[0].Addr())
		snd.SetRef(root, pk.FieldByName("b"), handles[len(handles)-1].Addr())
		rootPin := snd.Pin(root)
		defer rootPin.Release()

		sky.ShuffleStart()
		var buf bytes.Buffer
		w := sky.NewWriter(&buf, WithBufferSize(256))
		if err := w.WriteObject(rootPin.Addr()); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		wire := buf.Bytes()

		eagerRoot, err := NewReader(rcv, bytes.NewReader(wire)).ReadObject()
		if err != nil {
			return false
		}
		ard := NewReader(rcv, bytes.NewReader(wire), WithArena())
		arenaRoot, err := ard.ReadObject()
		if err != nil {
			return false
		}
		// The lazy path must actually be lazy: the root is a tagged handle
		// into a resident region, not a heap copy.
		if !heap.IsArenaAddr(arenaRoot) {
			t.Fatal("arena decode returned an untagged (managed) root")
		}
		if reg := ard.ArenaRegion(); reg == nil || reg.Bytes() == 0 {
			t.Fatal("arena decode staged no region bytes")
		}

		type pairT struct{ a, b heap.Addr }
		var walk func(seen map[pairT]bool, a, b heap.Addr, depth int, mutate bool) bool
		walk = func(seen map[pairT]bool, a, b heap.Addr, depth int, mutate bool) bool {
			if depth > 120 {
				return true
			}
			if (a == heap.Null) != (b == heap.Null) {
				return false
			}
			if a == heap.Null || seen[pairT{a, b}] {
				return true
			}
			seen[pairT{a, b}] = true
			if rcv.KlassOf(a) != rcv.KlassOf(b) {
				return false
			}
			ha, oka := cachedHash(rcv, a)
			hb, okb := cachedHash(rcv, b)
			if oka != okb || ha != hb {
				return false
			}
			if rcv.KlassOf(a) == rck {
				va, vb := rcv.GetDouble(a, rvF), rcv.GetDouble(b, rvF)
				if va != vb {
					return false
				}
				if mutate {
					// Identical mutation on both sides: the arena side
					// promotes on this first write.
					rcv.SetDouble(a, rvF, va*2+1)
					rcv.SetDouble(b, rvF, va*2+1)
				}
				return walk(seen, rcv.GetRef(a, rnF), rcv.GetRef(b, rnF), depth+1, mutate)
			}
			return walk(seen, rcv.GetRef(a, raF), rcv.GetRef(b, raF), depth+1, mutate) &&
				walk(seen, rcv.GetRef(a, rbF), rcv.GetRef(b, rbF), depth+1, mutate)
		}
		if !walk(make(map[pairT]bool), eagerRoot, arenaRoot, 0, false) {
			return false
		}
		// Promotion-heavy phase: mutate every reachable cell mid-stage, then
		// verify the mixed promoted/lazy graph still matches eager.
		if !walk(make(map[pairT]bool), eagerRoot, arenaRoot, 0, true) {
			return false
		}
		if ard.ArenaRegion().Promotions() == 0 {
			t.Fatal("mutating every cell promoted nothing")
		}
		return walk(make(map[pairT]bool), eagerRoot, arenaRoot, 0, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestArenaCompactEquivalence: Arena is a pure receiver-side policy, so it
// composes with the compact wire encoding — a compact stream decoded lazily
// must match the same stream decoded eagerly.
func TestArenaCompactEquivalence(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	vF, nF := ck.FieldByName("v"), ck.FieldByName("next")

	var prev heap.Addr
	pins := make([]interface{ Release() }, 0, 8)
	defer func() {
		for _, p := range pins {
			p.Release()
		}
	}()
	for i := 0; i < 8; i++ {
		c := snd.MustNew(ck)
		snd.SetDouble(c, vF, float64(i)*1.5)
		snd.SetRef(c, nF, prev)
		h := snd.Pin(c)
		pins = append(pins, h)
		prev = h.Addr()
	}

	sky.ShuffleStart()
	var buf bytes.Buffer
	w := sky.NewWriter(&buf, WithCompactHeaders(), WithBufferSize(128))
	if err := w.WriteObject(prev); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	eager, err := NewReader(rcv, bytes.NewReader(wire)).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewReader(rcv, bytes.NewReader(wire), WithArena()).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	rck := rcv.MustLoad("Cell")
	a, b := eager, lazy
	for a != heap.Null || b != heap.Null {
		if (a == heap.Null) != (b == heap.Null) {
			t.Fatal("compact arena chain shorter or longer than eager")
		}
		if va, vb := rcv.GetDouble(a, rck.FieldByName("v")), rcv.GetDouble(b, rck.FieldByName("v")); va != vb {
			t.Fatalf("compact arena value %v, eager %v", vb, va)
		}
		a = rcv.GetRef(a, rck.FieldByName("next"))
		b = rcv.GetRef(b, rck.FieldByName("next"))
	}
}

// TestArenaFreeRetiresRegion: Free drops the decoder's reference and the
// region — no other references outstanding — is reclaimed from the space.
func TestArenaFreeRetiresRegion(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	wire := encodeOneDate(t, snd, sky)
	rd := NewReader(rcv, bytes.NewReader(wire), WithArena())
	if _, err := rd.ReadObject(); err != nil {
		t.Fatal(err)
	}
	reg := rd.ArenaRegion()
	if reg == nil || reg.Retired() {
		t.Fatal("decode did not leave a live region")
	}
	if rcv.Arena.Regions() != 1 {
		t.Fatalf("space holds %d regions, want 1", rcv.Arena.Regions())
	}
	rd.Free()
	if !reg.Retired() {
		t.Fatal("Free did not retire the sole-reference region")
	}
	if rcv.Arena.Regions() != 0 {
		t.Fatalf("space holds %d regions after Free, want 0", rcv.Arena.Regions())
	}
}

// TestArenaUseAfterRetirePanics is the lifecycle regression test: reading
// through a tagged handle whose region was force-retired (the stage-epoch
// backstop firing while someone still holds a record) must panic loudly
// naming the retired region — never touch unmapped memory, never return
// stale bytes.
func TestArenaUseAfterRetirePanics(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	wire := encodeOneDate(t, snd, sky)
	rd := NewReader(rcv, bytes.NewReader(wire), WithArena())
	root, err := rd.ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	rd.ArenaRegion().ForceRetire()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("read through a retired region's handle did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "retired region") {
			t.Fatalf("use-after-retire panic %v does not name the retired region", r)
		}
	}()
	dk := rcv.MustLoad("Date")
	rcv.GetInt(root, dk.FieldByName("month"))
}

// TestArenaPromoteFailpoint: the arena.promote.fail failpoint surfaces as a
// structured *fault.Error from the error-returning Promote funnel, and the
// object stays readable (unpromoted) afterwards.
func TestArenaPromoteFailpoint(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	wire := encodeOneDate(t, snd, sky)
	rd := NewReader(rcv, bytes.NewReader(wire), WithArena())
	defer rd.Free()
	root, err := rd.ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Configure(fault.ArenaPromoteFail + ":on*times=1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
	if _, err := Promote(rcv, root); err == nil {
		t.Fatal("promotion under arena.promote.fail reported success")
	} else {
		var fe *fault.Error
		if !errors.As(err, &fe) {
			t.Fatalf("promotion failure is %T, want *fault.Error in the chain: %v", err, err)
		}
	}
	dk := rcv.MustLoad("Date")
	if got := rcv.GetInt(root, dk.FieldByName("month")); got != 3 {
		t.Fatalf("object unreadable after failed promotion: month = %d", got)
	}
	// The point has burned its one firing; the retry succeeds and the
	// promoted copy serves subsequent reads.
	p, err := Promote(rcv, root)
	if err != nil {
		t.Fatal(err)
	}
	if heap.IsArenaAddr(p) || p == heap.Null {
		t.Fatalf("promotion returned %#x, want a managed address", uint64(p))
	}
	if got := rcv.GetInt(root, dk.FieldByName("month")); got != 3 {
		t.Fatalf("promoted copy disagrees: month = %d", got)
	}
}

// encodeOneDate encodes the canonical two-object Date graph and returns the
// wire bytes.
func encodeOneDate(t *testing.T, snd *vm.Runtime, sky *Skyway) []byte {
	t.Helper()
	dk := snd.MustLoad("Date")
	yk := snd.MustLoad("Year4D")
	yo := snd.MustNew(yk)
	snd.SetInt(yo, yk.FieldByName("value"), 2018)
	yp := snd.Pin(yo)
	defer yp.Release()
	do := snd.MustNew(dk)
	snd.SetRef(do, dk.FieldByName("year"), yp.Addr())
	snd.SetInt(do, dk.FieldByName("month"), 3)
	snd.SetInt(do, dk.FieldByName("day"), 24)
	dp := snd.Pin(do)
	defer dp.Release()

	sky.ShuffleStart()
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(dp.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
