package core

import (
	"bytes"
	"io"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

// testCluster builds two runtimes (sender, receiver) sharing a classpath
// and an in-process registry — the minimal two-node cluster.
func testCluster(t *testing.T) (*vm.Runtime, *vm.Runtime, *Skyway) {
	t.Helper()
	cp := klass.NewPath()
	cp.MustDefine(
		&klass.ClassDef{Name: "Date", Fields: []klass.FieldDef{
			{Name: "year", Kind: klass.Ref, Class: "Year4D"},
			{Name: "month", Kind: klass.Int32},
			{Name: "day", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: "Year4D", Fields: []klass.FieldDef{
			{Name: "value", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: "Cell", Fields: []klass.FieldDef{
			{Name: "v", Kind: klass.Float64},
			{Name: "next", Kind: klass.Ref, Class: "Cell"},
		}},
		&klass.ClassDef{Name: "Pair", Fields: []klass.FieldDef{
			{Name: "a", Kind: klass.Ref, Class: "Cell"},
			{Name: "b", Kind: klass.Ref, Class: "Cell"},
		}},
	)
	reg := registry.NewRegistry()
	sender, err := vm.NewRuntime(cp, vm.Options{Name: "sender", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := vm.NewRuntime(cp, vm.Options{Name: "receiver", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	return sender, receiver, New(sender)
}

func newDate(t *testing.T, rt *vm.Runtime, y, m, d int) heap.Addr {
	t.Helper()
	dk := rt.MustLoad("Date")
	yk := rt.MustLoad("Year4D")
	yo := rt.MustNew(yk)
	rt.SetInt(yo, yk.FieldByName("value"), int64(y))
	yp := rt.Pin(yo)
	defer yp.Release()
	do := rt.MustNew(dk)
	rt.SetRef(do, dk.FieldByName("year"), yp.Addr())
	rt.SetInt(do, dk.FieldByName("month"), int64(m))
	rt.SetInt(do, dk.FieldByName("day"), int64(d))
	return do
}

func TestRoundTripSimpleObject(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	var buf bytes.Buffer

	d := newDate(t, snd, 2018, 3, 24)
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(rcv, &buf)
	got, err := r.ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	dk := rcv.MustLoad("Date")
	yk := rcv.MustLoad("Year4D")
	if rcv.KlassOf(got) != dk {
		t.Fatalf("received klass %s", rcv.KlassOf(got).Name)
	}
	if rcv.GetInt(got, dk.FieldByName("month")) != 3 || rcv.GetInt(got, dk.FieldByName("day")) != 24 {
		t.Error("primitive fields corrupted")
	}
	yo := rcv.GetRef(got, dk.FieldByName("year"))
	if yo == heap.Null || rcv.GetInt(yo, yk.FieldByName("value")) != 2018 {
		t.Error("referenced object corrupted")
	}
	if _, err := r.ReadObject(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestRoundTripCycle(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	vF, nF := ck.FieldByName("v"), ck.FieldByName("next")

	// Two-cell cycle.
	a := snd.MustNew(ck)
	ap := snd.Pin(a)
	b := snd.MustNew(ck)
	a = ap.Addr()
	ap.Release()
	snd.SetDouble(a, vF, 1.5)
	snd.SetDouble(b, vF, -2.25)
	snd.SetRef(a, nF, b)
	snd.SetRef(b, nF, a)

	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(a); err != nil {
		t.Fatal(err)
	}
	w.Close()

	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	rck := rcv.MustLoad("Cell")
	rvF, rnF := rck.FieldByName("v"), rck.FieldByName("next")
	gb := rcv.GetRef(got, rnF)
	if rcv.GetDouble(got, rvF) != 1.5 || rcv.GetDouble(gb, rvF) != -2.25 {
		t.Error("values corrupted")
	}
	if rcv.GetRef(gb, rnF) != got {
		t.Error("cycle broken")
	}
}

func TestRoundTripSharedObject(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	pk := snd.MustLoad("Pair")

	c := snd.MustNew(ck)
	cp := snd.Pin(c)
	p := snd.MustNew(pk)
	c = cp.Addr()
	cp.Release()
	snd.SetDouble(c, ck.FieldByName("v"), 42)
	snd.SetRef(p, pk.FieldByName("a"), c)
	snd.SetRef(p, pk.FieldByName("b"), c)

	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(p); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	rpk := rcv.MustLoad("Pair")
	ga := rcv.GetRef(got, rpk.FieldByName("a"))
	gb := rcv.GetRef(got, rpk.FieldByName("b"))
	if ga != gb {
		t.Error("shared object duplicated within one stream")
	}
	if w.Objects != 2 {
		t.Errorf("sent %d objects, want 2", w.Objects)
	}
}

func TestRoundTripArraysAndStrings(t *testing.T) {
	snd, rcv, sky := testCluster(t)

	ak := snd.MustLoad(vm.StringClass + "[]")
	arr := snd.MustNewArray(ak, 3)
	arrPin := snd.Pin(arr)
	for i, s := range []string{"alpha", "beta", ""} {
		so := snd.MustNewString(s)
		snd.ArraySetRef(arrPin.Addr(), i, so)
	}

	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(arrPin.Addr()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	arrPin.Release()

	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	if rcv.ArrayLen(got) != 3 {
		t.Fatalf("array len = %d", rcv.ArrayLen(got))
	}
	want := []string{"alpha", "beta", ""}
	for i := range want {
		if s := rcv.GoString(rcv.ArrayGetRef(got, i)); s != want[i] {
			t.Errorf("elem %d = %q, want %q", i, s, want[i])
		}
	}
}

func TestRoundTripPrimitiveArrays(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ak := snd.MustLoad("double[]")
	arr := snd.MustNewArray(ak, 5)
	vals := []float64{0, math.Pi, -1e300, math.Inf(1), 1e-300}
	for i, v := range vals {
		snd.ArraySetDouble(arr, i, v)
	}
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(arr); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if g := rcv.ArrayGetDouble(got, i); g != v {
			t.Errorf("elem %d = %v, want %v", i, g, v)
		}
	}
}

func TestHashcodePreservation(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2020, 1, 1)
	want := snd.HashCode(d)

	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	if h, ok := rcv.Heap.HashOf(got); !ok || h != want {
		t.Errorf("hashcode not preserved: %#x,%v want %#x", h, ok, want)
	}
}

func TestStreamingManySegments(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	vF, nF := ck.FieldByName("v"), ck.FieldByName("next")

	// A long list forces many small-segment flushes.
	const n = 2000
	head := snd.MustNew(ck)
	hp := snd.Pin(head)
	prev := snd.Pin(head)
	snd.SetDouble(head, vF, 0)
	for i := 1; i < n; i++ {
		c := snd.MustNew(ck)
		snd.SetDouble(c, vF, float64(i))
		snd.SetRef(prev.Addr(), nF, c)
		prev.Set(c)
	}
	prev.Release()

	var buf bytes.Buffer
	w := sky.NewWriter(&buf, WithBufferSize(256)) // tiny buffer
	if err := w.WriteObject(hp.Addr()); err != nil {
		t.Fatal(err)
	}
	w.Close()
	hp.Release()

	r := NewReader(rcv, &buf)
	got, err := r.ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	rck := rcv.MustLoad("Cell")
	rvF, rnF := rck.FieldByName("v"), rck.FieldByName("next")
	for i := 0; i < n; i++ {
		if got == heap.Null {
			t.Fatalf("list truncated at %d", i)
		}
		if rcv.GetDouble(got, rvF) != float64(i) {
			t.Fatalf("cell %d corrupted", i)
		}
		got = rcv.GetRef(got, rnF)
	}
	if got != heap.Null {
		t.Error("trailing cells")
	}
	if len(r.chunks) < 10 {
		t.Errorf("expected many chunks, got %d", len(r.chunks))
	}
}

func TestMultipleRootsSharingSubgraph(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	pk := snd.MustLoad("Pair")

	shared := snd.MustNew(ck)
	sp := snd.Pin(shared)
	snd.SetDouble(shared, ck.FieldByName("v"), 7)

	p1 := snd.MustNew(pk)
	p1p := snd.Pin(p1)
	p2 := snd.MustNew(pk)
	p1 = p1p.Addr()
	p1p.Release()
	shared = sp.Addr()
	sp.Release()
	snd.SetRef(p1, pk.FieldByName("a"), shared)
	snd.SetRef(p2, pk.FieldByName("b"), shared)

	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(p1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteObject(p2); err != nil {
		t.Fatal(err)
	}
	// Re-sending an already-sent root emits only a backward reference.
	objsBefore := w.Objects
	if err := w.WriteObject(p1); err != nil {
		t.Fatal(err)
	}
	if w.Objects != objsBefore {
		t.Error("re-send copied objects again")
	}
	w.Close()

	r := NewReader(rcv, &buf)
	roots, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 3 {
		t.Fatalf("%d roots", len(roots))
	}
	rpk := rcv.MustLoad("Pair")
	s1 := rcv.GetRef(roots[0], rpk.FieldByName("a"))
	s2 := rcv.GetRef(roots[1], rpk.FieldByName("b"))
	if s1 != s2 {
		t.Error("subgraph shared across roots was duplicated")
	}
	if roots[0] != roots[2] {
		t.Error("backward reference did not resolve to the same root")
	}
}

func TestShufflePhasesResendObjects(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 1999, 12, 31)
	dp := snd.Pin(d)
	defer dp.Release()

	send := func() int {
		var buf bytes.Buffer
		w := sky.NewWriter(&buf)
		if err := w.WriteObject(dp.Addr()); err != nil {
			t.Fatal(err)
		}
		w.Close()
		got, err := NewReader(rcv, &buf).ReadObject()
		if err != nil {
			t.Fatal(err)
		}
		return int(w.Objects) + int(uint64(got)*0) // use got
	}
	if n := send(); n != 2 {
		t.Fatalf("first send copied %d objects", n)
	}
	// New phase: the same objects must be copied afresh.
	sky.ShuffleStart()
	if n := send(); n != 2 {
		t.Fatalf("second phase copied %d objects, want 2", n)
	}
}

func TestWriterPhaseGuard(t *testing.T) {
	snd, _, sky := testCluster(t)
	d := newDate(t, snd, 2000, 1, 1)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	sky.ShuffleStart()
	if err := w.WriteObject(d); err == nil {
		t.Error("writer spanning phases did not error")
	}
}

func TestNullRoot(t *testing.T) {
	_, rcv, sky := testCluster(t)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(heap.Null); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	if got != heap.Null {
		t.Error("null root arrived non-null")
	}
}

func TestFieldUpdateOnReceive(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	if err := rcv.RegisterUpdate("Date", "day", func(rt *vm.Runtime, obj heap.Addr) uint64 { return 1 }); err != nil {
		t.Fatal(err)
	}
	d := newDate(t, snd, 2018, 3, 24)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	dk := rcv.MustLoad("Date")
	if rcv.GetInt(got, dk.FieldByName("day")) != 1 {
		t.Error("field update not applied")
	}
	if rcv.GetInt(got, dk.FieldByName("month")) != 3 {
		t.Error("unrelated field touched")
	}
}

func TestReceiverSurvivesGC(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2018, 3, 24)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	// Input buffers are pinned GC roots: the received graph survives a
	// full GC without the application holding any handle.
	for i := 0; i < 100; i++ {
		rcv.MustNewArray(rcv.MustLoad("long[]"), 64)
	}
	rcv.GC.FullGC()
	dk := rcv.MustLoad("Date")
	yk := rcv.MustLoad("Year4D")
	yo := rcv.GetRef(got, dk.FieldByName("year"))
	if rcv.GetInt(yo, yk.FieldByName("value")) != 2018 {
		t.Error("received graph corrupted by GC")
	}
}

func TestReceivedObjectsReferencingYoungSurviveScavenge(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2018, 3, 24)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the received object to point at a fresh young object, then
	// scavenge: the card table over buffer space must keep it alive.
	dk := rcv.MustLoad("Date")
	yk := rcv.MustLoad("Year4D")
	fresh := rcv.MustNew(yk)
	rcv.SetInt(fresh, yk.FieldByName("value"), 777)
	rcv.SetRef(got, dk.FieldByName("year"), fresh)
	if !rcv.GC.Scavenge() {
		t.Fatal("scavenge refused")
	}
	yo := rcv.GetRef(got, dk.FieldByName("year"))
	if yo == heap.Null || rcv.GetInt(yo, yk.FieldByName("value")) != 777 {
		t.Error("young object referenced from input buffer lost")
	}
}

func TestFreeReleasesBufferObjects(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2018, 3, 24)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r := NewReader(rcv, &buf)
	if _, err := r.ReadObject(); err != nil {
		t.Fatal(err)
	}
	r.Free()
	// After Free the collector must not walk the chunk (no panic on GC).
	rcv.GC.FullGC()
}

func TestConcurrentWritersSharedObjects(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	pk := snd.MustLoad("Pair")

	shared := snd.MustNew(ck)
	sp := snd.Pin(shared)
	defer sp.Release()
	snd.SetDouble(sp.Addr(), ck.FieldByName("v"), 3.5)

	const writers = 4
	roots := make([]heap.Addr, writers)
	for i := range roots {
		p := snd.MustNew(pk)
		snd.SetRef(p, pk.FieldByName("a"), sp.Addr())
		roots[i] = p
		h := snd.Pin(p)
		defer h.Release()
	}

	bufs := make([]bytes.Buffer, writers)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := sky.NewWriter(&bufs[i])
			if err := w.WriteObject(roots[i]); err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	// The shared object's baddr word can only be claimed by one stream;
	// the others must have gone through the thread-local hash table
	// (§4.2 Support for Threads).
	if sky.Snapshot().OverflowHits == 0 {
		t.Error("no overflow-table hits despite cross-stream sharing")
	}
	// Every stream must carry its own copy of the shared object
	// ("distinct copies in multiple output buffers", §4.2).
	for i := range bufs {
		got, err := NewReader(rcv, &bufs[i]).ReadObject()
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		rpk := rcv.MustLoad("Pair")
		c := rcv.GetRef(got, rpk.FieldByName("a"))
		if rcv.GetDouble(c, rcv.MustLoad("Cell").FieldByName("v")) != 3.5 {
			t.Fatalf("stream %d shared object corrupted", i)
		}
	}
}

func TestHeterogeneousLayoutTransfer(t *testing.T) {
	// Sender has baddr; receiver runs a vanilla (no-baddr) layout. The
	// sender pays the format adjustment (§3.1).
	cp := klass.NewPath()
	cp.MustDefine(&klass.ClassDef{Name: "Date", Fields: []klass.FieldDef{
		{Name: "year", Kind: klass.Ref, Class: "Year4D"},
		{Name: "month", Kind: klass.Int32},
		{Name: "day", Kind: klass.Int32},
	}}, &klass.ClassDef{Name: "Year4D", Fields: []klass.FieldDef{
		{Name: "value", Kind: klass.Int32},
	}})
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "snd", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	rcvCfg := heap.DefaultConfig()
	rcvCfg.Layout = klass.Layout{Baddr: false}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "rcv", Heap: rcvCfg, Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	sky := New(snd)

	d := newDate(t, snd, 2024, 6, 30)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf, WithTargetLayout(klass.Layout{Baddr: false}))
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()

	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	dk := rcv.MustLoad("Date")
	yk := rcv.MustLoad("Year4D")
	if rcv.GetInt(got, dk.FieldByName("month")) != 6 {
		t.Error("field corrupted across layouts")
	}
	yo := rcv.GetRef(got, dk.FieldByName("year"))
	if rcv.GetInt(yo, yk.FieldByName("value")) != 2024 {
		t.Error("reference corrupted across layouts")
	}
}

func TestLayoutMismatchRejected(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	d := newDate(t, snd, 2020, 5, 5)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf, WithTargetLayout(klass.Layout{Baddr: false}))
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Receiver heap has baddr; the stream was adjusted for no-baddr.
	if _, err := NewReader(rcv, &buf).ReadObject(); err == nil {
		t.Error("layout mismatch not rejected")
	}
}

func TestDetachedRuntimeCannotSend(t *testing.T) {
	cp := klass.NewPath()
	cp.MustDefine(&klass.ClassDef{Name: "Date", Fields: []klass.FieldDef{{Name: "x", Kind: klass.Int32}}})
	rt, err := vm.NewRuntime(cp, vm.Options{Name: "detached"})
	if err != nil {
		t.Fatal(err)
	}
	sky := New(rt)
	d := rt.MustNew(rt.MustLoad("Date"))
	w := sky.NewWriter(io.Discard)
	if err := w.WriteObject(d); err == nil {
		t.Error("sending without a registry succeeded")
	}
}

// Property: arbitrary random object graphs survive the round trip with
// structure and primitive payloads intact.
func TestRoundTripRandomGraphsQuick(t *testing.T) {
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	pk := snd.MustLoad("Pair")
	vF, nF := ck.FieldByName("v"), ck.FieldByName("next")

	f := func(vals []float64, links []uint8) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 40 {
			vals = vals[:40]
		}
		// Build cells, then wire random next links (possibly cyclic).
		cells := make([]heap.Addr, len(vals))
		pins := make([]interface{ Release() }, 0, len(vals)+1)
		defer func() {
			for _, p := range pins {
				p.Release()
			}
		}()
		cellPins := make([]*struct{ h interface{ Addr() heap.Addr } }, 0)
		_ = cellPins
		handles := make([]interface {
			Addr() heap.Addr
			Release()
		}, len(vals))
		for i, v := range vals {
			c := snd.MustNew(ck)
			snd.SetDouble(c, vF, v)
			h := snd.Pin(c)
			handles[i] = h
			pins = append(pins, h)
			cells[i] = c
		}
		for i := range cells {
			if len(links) == 0 {
				break
			}
			tgt := int(links[i%len(links)]) % len(cells)
			snd.SetRef(handles[i].Addr(), nF, handles[tgt].Addr())
		}
		root := snd.MustNew(pk)
		snd.SetRef(root, pk.FieldByName("a"), handles[0].Addr())
		snd.SetRef(root, pk.FieldByName("b"), handles[len(cells)-1].Addr())

		var buf bytes.Buffer
		sky.ShuffleStart()
		w := sky.NewWriter(&buf, WithBufferSize(512))
		if err := w.WriteObject(root); err != nil {
			return false
		}
		if err := w.Close(); err != nil {
			return false
		}
		got, err := NewReader(rcv, &buf).ReadObject()
		if err != nil {
			return false
		}
		// Walk both graphs in lockstep (bounded by size).
		type pairT struct{ s, r heap.Addr }
		seen := make(map[pairT]bool)
		var walk func(s, r heap.Addr, depth int) bool
		walk = func(s, r heap.Addr, depth int) bool {
			if depth > 200 {
				return true
			}
			if (s == heap.Null) != (r == heap.Null) {
				return false
			}
			if s == heap.Null || seen[pairT{s, r}] {
				return true
			}
			seen[pairT{s, r}] = true
			sk := snd.KlassOf(s)
			rk := rcv.KlassOf(r)
			if sk.Name != rk.Name {
				return false
			}
			if sk.Name == "Cell" {
				if snd.GetDouble(s, vF) != rcv.GetDouble(r, rcv.MustLoad("Cell").FieldByName("v")) {
					return false
				}
				return walk(snd.GetRef(s, nF), rcv.GetRef(r, rcv.MustLoad("Cell").FieldByName("next")), depth+1)
			}
			aok := walk(snd.GetRef(s, pk.FieldByName("a")), rcv.GetRef(r, rcv.MustLoad("Pair").FieldByName("a")), depth+1)
			bok := walk(snd.GetRef(s, pk.FieldByName("b")), rcv.GetRef(r, rcv.MustLoad("Pair").FieldByName("b")), depth+1)
			return aok && bok
		}
		return walk(root, got, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestByteCompositionStats(t *testing.T) {
	snd, _, sky := testCluster(t)
	d := newDate(t, snd, 2018, 3, 24)
	var buf bytes.Buffer
	w := sky.NewWriter(&buf)
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	st := sky.Snapshot()
	if st.ObjectsSent != 2 {
		t.Errorf("ObjectsSent = %d", st.ObjectsSent)
	}
	if st.BytesSent != uint64(w.Bytes) {
		t.Errorf("BytesSent = %d, writer says %d", st.BytesSent, w.Bytes)
	}
	if st.HeaderBytes+st.PaddingBytes+st.PointerBytes > st.BytesSent {
		t.Error("composition exceeds total")
	}
	if st.HeaderBytes == 0 || st.PointerBytes == 0 {
		t.Error("composition not accounted")
	}
}

func TestConcurrentWritersShareLargeGraph(t *testing.T) {
	// Race-detector stress for the §4.2 concurrent-sender path: a long
	// chain shared by every writer means thousands of overlapping baddr
	// CAS claims and whole-object copies of the same words. Any
	// non-atomic access to a claimable header word surfaces here under
	// -race long before it corrupts a real shuffle.
	snd, rcv, sky := testCluster(t)
	ck := snd.MustLoad("Cell")
	vf := ck.FieldByName("v")
	nf := ck.FieldByName("next")

	const chain = 4000
	head := snd.Pin(snd.MustNew(ck))
	snd.SetDouble(head.Addr(), vf, 0)
	for i := 1; i < chain; i++ {
		c := snd.MustNew(ck)
		next := snd.Pin(c)
		snd.SetDouble(next.Addr(), vf, float64(i))
		snd.SetRef(next.Addr(), nf, head.Addr())
		head.Release()
		head = next
	}
	defer head.Release()

	const writers = 4
	bufs := make([]bytes.Buffer, writers)
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := sky.NewWriter(&bufs[i])
			if err := w.WriteObject(head.Addr()); err != nil {
				errs[i] = err
				return
			}
			errs[i] = w.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}

	// Every stream must carry an intact private copy of the whole chain.
	rck := rcv.MustLoad("Cell")
	rvf := rck.FieldByName("v")
	rnf := rck.FieldByName("next")
	for i := range bufs {
		r := NewReader(rcv, &bufs[i])
		got, err := r.ReadObject()
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		n, want := 0, float64(chain-1)
		for a := got; a != heap.Null; a = rcv.GetRef(a, rnf) {
			if v := rcv.GetDouble(a, rvf); v != want {
				t.Fatalf("stream %d node %d: v=%f want %f", i, n, v, want)
			}
			n++
			want--
		}
		if n != chain {
			t.Fatalf("stream %d chain length %d, want %d", i, n, chain)
		}
		r.Free()
		rcv.GC.FullGC() // reclaim before the next stream lands
	}
}
