package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

// Soak: random interleavings of sends, receives, GCs on both sides, frees
// and phase changes must preserve every transferred value. This is the
// closest thing to the paper's Spark runs in miniature: transfer activity
// and collector activity continuously overlapping.
func TestTransferGCInterleavingSoak(t *testing.T) {
	cp := testClusterPath()
	reg := registry.InProc{R: registry.NewRegistry()}
	small := heap.Config{
		EdenSize:     192 << 10,
		SurvivorSize: 32 << 10,
		OldSize:      1 << 20,
		BufferSize:   1 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "soak-snd", Heap: small, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "soak-rcv", Heap: small, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	sky := New(snd)
	ck := snd.MustLoad("Cell")
	rck := rcv.MustLoad("Cell")
	vF, nF := ck.FieldByName("v"), ck.FieldByName("next")

	type received struct {
		rd   *Reader
		pin  interface{ Addr() heap.Addr }
		rel  func()
		vals []float64
	}
	var inflight []*received
	checkReceived := func(r *received) bool {
		cur := r.pin.Addr()
		for _, want := range r.vals {
			if cur == heap.Null || rcv.GetDouble(cur, rck.FieldByName("v")) != want {
				return false
			}
			cur = rcv.GetRef(cur, rck.FieldByName("next"))
		}
		return cur == heap.Null
	}

	f := func(ops []uint8) bool {
		defer func() {
			for _, r := range inflight {
				r.rel()
				r.rd.Free()
			}
			inflight = nil
		}()
		for i, op := range ops {
			switch op % 6 {
			case 0, 1: // send+receive a fresh list
				n := 1 + int(op)%15
				vals := make([]float64, n)
				head := snd.MustNew(ck)
				hp := snd.Pin(head)
				prev := snd.Pin(head)
				for j := 0; j < n; j++ {
					vals[j] = float64(i*100 + j)
					if j == 0 {
						snd.SetDouble(hp.Addr(), vF, vals[j])
						continue
					}
					c := snd.MustNew(ck)
					snd.SetDouble(c, vF, vals[j])
					snd.SetRef(prev.Addr(), nF, c)
					prev.Set(c)
				}
				prev.Release()
				var buf bytes.Buffer
				w := sky.NewWriter(&buf, WithBufferSize(256))
				if err := w.WriteObject(hp.Addr()); err != nil {
					t.Logf("write: %v", err)
					return false
				}
				w.Close()
				hp.Release()
				rd := NewReader(rcv, &buf)
				got, err := rd.ReadObject()
				if err != nil {
					t.Logf("read: %v", err)
					return false
				}
				h := rcv.Pin(got)
				inflight = append(inflight, &received{rd: rd, pin: h, rel: h.Release, vals: vals})
			case 2: // free the oldest received graph
				if len(inflight) > 0 {
					r := inflight[0]
					r.rel()
					r.rd.Free()
					inflight = inflight[1:]
				}
			case 3: // sender GC
				if !snd.GC.Scavenge() {
					snd.GC.FullGC()
				}
			case 4: // receiver GC (full every few ops)
				if op%2 == 0 {
					rcv.GC.FullGC()
				} else if !rcv.GC.Scavenge() {
					rcv.GC.FullGC()
				}
			case 5: // new shuffle phase + receiver allocation noise
				sky.ShuffleStart()
				for j := 0; j < 5; j++ {
					rcv.MustNewArray(rcv.MustLoad("double[]"), 32)
				}
			}
			for _, r := range inflight {
				if !checkReceived(r) {
					t.Logf("op %d (%d): received graph corrupted", i, op%6)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactHeterogeneousCombined(t *testing.T) {
	// Compact wire encoding composed with target-layout adjustment: a
	// baddr sender feeding a vanilla receiver over the compressed format.
	cp := testClusterPath()
	reg, snd := newSenderFor(t, cp)
	rcvCfg := heap.DefaultConfig()
	rcvCfg.Layout = klass.Layout{Baddr: false}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "vanilla", Heap: rcvCfg, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	sky := New(snd)
	d := newDate(t, snd, 2030, 12, 1)
	want := snd.HashCode(d)

	var buf bytes.Buffer
	w := sky.NewWriter(&buf, WithCompactHeaders(), WithTargetLayout(klass.Layout{Baddr: false}))
	if err := w.WriteObject(d); err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, err := NewReader(rcv, &buf).ReadObject()
	if err != nil {
		t.Fatal(err)
	}
	dk := rcv.MustLoad("Date")
	if rcv.GetInt(got, dk.FieldByName("month")) != 12 {
		t.Error("field corrupted")
	}
	if h, ok := rcv.Heap.HashOf(got); !ok || h != want {
		t.Error("hashcode lost across compact heterogeneous transfer")
	}
}
