package core

import "sync"

// Hot-path buffer recycling. Every segment used to cost at least one fresh
// []byte of segment size: the writer's output buffer and compact scratch,
// and the reader's compact staging buffer. Under a shuffle those are the
// dominant allocations — exactly the "serialization-shaped" GC pressure the
// transfer design is meant to avoid — so they all draw from one process-wide
// pool and return on Close/decode-complete. The standard (non-compact)
// decode path needs no buffer at all anymore: wire bytes are read straight
// into the pinned chunk through heap.ByteView.

// maxPooledBuf caps what returns to the pool: a one-off oversized-object
// buffer (a single record bigger than any normal segment) should be freed,
// not pinned in the pool forever.
const maxPooledBuf = 4 << 20

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, DefaultBufferSize)
		return &b
	},
}

// getBuf returns a zero-length buffer with capacity at least n.
func getBuf(n int) []byte {
	b := *bufPool.Get().(*[]byte)
	if cap(b) < n {
		// Too small for this caller; recycle it for a smaller one and
		// allocate at the requested size.
		bufPool.Put(&b)
		return make([]byte, 0, n)
	}
	return b[:0]
}

// putBuf recycles a buffer obtained from getBuf. Safe on nil.
func putBuf(b []byte) {
	if b == nil || cap(b) > maxPooledBuf {
		return
	}
	b = b[:0]
	bufPool.Put(&b)
}
