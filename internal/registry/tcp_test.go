package registry

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// stallListener accepts connections and never responds — the failure mode
// a LOOKUP without deadlines hangs on forever.
type stallListener struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
	acc   int
	done  chan struct{}
}

func newStallListener(t *testing.T) *stallListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stallListener{ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.acc++
			s.mu.Unlock()
			// Read and discard forever, sending nothing back.
			go func() {
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.mu.Lock()
		for _, c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-s.done
	})
	return s
}

func (s *stallListener) accepted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acc
}

func TestTCPClientTimesOutOnStalledServer(t *testing.T) {
	s := newStallListener(t)

	c, err := Dial(s.ln.Addr().String(),
		WithTimeout(30*time.Millisecond), WithRetries(2), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, err := c.Lookup("some.Class"); err == nil {
		t.Fatal("Lookup against a stalled server succeeded")
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("Lookup took %v; deadlines are not bounding the stall", elapsed)
	}
	// Each retry must have abandoned the dead connection and dialed fresh:
	// a timed-out exchange leaves the old stream mid-frame.
	if got := s.accepted(); got != 3 {
		t.Errorf("server accepted %d connections, want 3 (1 initial + 2 retries)", got)
	}

	if _, err := c.RequestView(); err == nil {
		t.Fatal("RequestView against a stalled server succeeded")
	}
	if _, err := c.Reverse(1); err == nil {
		t.Fatal("Reverse against a stalled server succeeded")
	}
}

// A peer speaking a different framing generation must be severed at the
// hello, not silently desynced: without the version check the server would
// consume a pre-nonce client's op byte as part of the nonce and misparse
// every frame after it.
func TestServerSeversVersionMismatch(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()

	for _, tc := range []struct {
		name  string
		hello []byte
	}{
		// An old (pre-hello) client's first frame: nonce(u32) then op.
		{"versionless", []byte{0, 0, 0, 1, opView}},
		{"wrong version", append([]byte(protoMagic), protoVersion+1)},
	} {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(tc.hello); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var b [1]byte
		if n, err := conn.Read(b[:]); err == nil || n != 0 {
			t.Errorf("%s client got %d bytes (err=%v), want severed connection", tc.name, n, err)
		}
		conn.Close()
	}
}

// A client must survive a one-off stall: when the real server comes back
// (here: the stalled endpoint is replaced by a live Server on a new dial),
// the retry path re-establishes the connection and the lookup succeeds.
func TestTCPClientRecoversAfterRedial(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String(),
		WithTimeout(time.Second), WithRetries(2), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Lookup("a.B"); err != nil {
		t.Fatal(err)
	}
	// Sever the client's connection under it; the next exchange must
	// redial transparently instead of failing on the dead socket.
	c.mu.Lock()
	c.conn.Close()
	c.mu.Unlock()
	id, err := c.Lookup("c.D")
	if err != nil {
		t.Fatalf("Lookup after severed connection: %v", err)
	}
	if name, _ := reg.NameOf(id); name != "c.D" {
		t.Errorf("recovered lookup assigned %d (%s)", id, name)
	}
}

// stallOnceProxy stalls the FIRST accepted connection forever (reading and
// discarding, answering nothing) and transparently proxies every later
// connection to the real server at backend. It manufactures the deadline
// regression's exchange N: an attempt that genuinely times out mid-exchange.
type stallOnceProxy struct {
	ln  net.Listener
	mu  sync.Mutex
	acc int
}

func newStallOnceProxy(t *testing.T, backend string) *stallOnceProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &stallOnceProxy{ln: ln}
	var wg sync.WaitGroup
	var conns []net.Conn
	var connsMu sync.Mutex
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			connsMu.Lock()
			conns = append(conns, c)
			connsMu.Unlock()
			p.mu.Lock()
			p.acc++
			n := p.acc
			p.mu.Unlock()
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				if n == 1 {
					// Exchange N's fate: swallow the request, answer nothing.
					buf := make([]byte, 256)
					for {
						if _, err := c.Read(buf); err != nil {
							return
						}
					}
				}
				up, err := net.Dial("tcp", backend)
				if err != nil {
					return
				}
				connsMu.Lock()
				conns = append(conns, up)
				connsMu.Unlock()
				defer up.Close()
				done := make(chan struct{})
				go func() { io.Copy(up, c); up.(*net.TCPConn).CloseWrite(); close(done) }()
				io.Copy(c, up)
				<-done
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		connsMu.Lock()
		for _, c := range conns {
			c.Close()
		}
		connsMu.Unlock()
		wg.Wait()
	})
	return p
}

func (p *stallOnceProxy) accepted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acc
}

// TestTimeoutDoesNotPoisonNextExchange is the regression test for the
// deadline-lifecycle bug: exchange N times out (its attempt's deadline
// trips), the retry succeeds on a fresh connection, and exchange N+1 reuses
// that healthy connection AFTER the earlier deadline instant has passed. If
// any exit path of an attempt leaked its armed deadline instead of resetting
// it via defer, exchange N+1's first read would fail instantly with a stale
// i/o timeout and force a spurious redial — observable below as a third
// accepted connection (or, with the retry budget exhausted, a failed lookup).
func TestTimeoutDoesNotPoisonNextExchange(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()
	proxy := newStallOnceProxy(t, ln.Addr().String())

	const timeout = 60 * time.Millisecond
	c, err := Dial(proxy.ln.Addr().String(),
		WithTimeout(timeout), WithRetries(1), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Exchange N: the first attempt stalls and must be killed by its own
	// deadline; the retry lands on a proxied connection and succeeds.
	start := time.Now()
	idN, err := c.Lookup("exchange.N")
	if err != nil {
		t.Fatalf("Lookup(exchange.N) with one stalled attempt: %v", err)
	}
	if elapsed := time.Since(start); elapsed < timeout {
		t.Fatalf("lookup returned in %v, before the %v deadline could have tripped — exchange N never timed out", elapsed, timeout)
	}
	if got := proxy.accepted(); got != 2 {
		t.Fatalf("proxy accepted %d connections after exchange N, want 2 (stalled + retry)", got)
	}

	// Outlive the timed-out attempt's deadline instant, then run exchange
	// N+1 on the reused connection.
	time.Sleep(timeout + 20*time.Millisecond)
	idN1, err := c.Lookup("exchange.N1")
	if err != nil {
		t.Fatalf("Lookup(exchange.N+1) on the reused connection: %v (stale deadline poisoned the exchange)", err)
	}
	if idN1 == idN {
		t.Fatalf("exchange N+1 got exchange N's id %d", idN)
	}
	if got := proxy.accepted(); got != 2 {
		t.Errorf("proxy accepted %d connections after exchange N+1, want still 2 — a leaked deadline forced a redial", got)
	}
	if name, _ := reg.NameOf(idN1); name != "exchange.N1" {
		t.Errorf("exchange N+1 resolved to %q", name)
	}
}

// TestServerCloseDuringAcceptStorm hammers a Server with concurrent dials
// while Close runs, many rounds. Pinned invariants (under -race): no handler
// goroutine outlives Close (wg.Wait covers the accept window), a connection
// accepted after Close is severed rather than tracked, and Close returns
// exactly once with the listener down.
func TestServerCloseDuringAcceptStorm(t *testing.T) {
	for round := 0; round < 20; round++ {
		reg := NewRegistry()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(reg, ln)
		addr := ln.Addr().String()

		var dialers sync.WaitGroup
		for i := 0; i < 8; i++ {
			dialers.Add(1)
			go func() {
				defer dialers.Done()
				for j := 0; j < 5; j++ {
					c, err := Dial(addr, WithTimeout(200*time.Millisecond), WithRetries(0))
					if err != nil {
						return // listener already down
					}
					c.Lookup("storm.Class") // may fail mid-close; must not hang or race
					c.Close()
				}
			}()
		}
		// Close concurrently with the dial storm; vary the overlap window.
		time.Sleep(time.Duration(round%4) * 500 * time.Microsecond)
		if err := srv.Close(); err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		dialers.Wait()
		// The listener must be down: a fresh dial cannot reach a handler.
		if c, err := Dial(addr, WithTimeout(50*time.Millisecond), WithRetries(0)); err == nil {
			if _, err := c.Lookup("after.Close"); err == nil {
				t.Fatalf("round %d: lookup succeeded against a closed server", round)
			}
			c.Close()
		}
	}
}
