package registry

import (
	"net"
	"sync"
	"testing"
	"time"
)

// stallListener accepts connections and never responds — the failure mode
// a LOOKUP without deadlines hangs on forever.
type stallListener struct {
	ln    net.Listener
	mu    sync.Mutex
	conns []net.Conn
	acc   int
	done  chan struct{}
}

func newStallListener(t *testing.T) *stallListener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &stallListener{ln: ln, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, c)
			s.acc++
			s.mu.Unlock()
			// Read and discard forever, sending nothing back.
			go func() {
				buf := make([]byte, 256)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		s.mu.Lock()
		for _, c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-s.done
	})
	return s
}

func (s *stallListener) accepted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acc
}

func TestTCPClientTimesOutOnStalledServer(t *testing.T) {
	s := newStallListener(t)

	c, err := Dial(s.ln.Addr().String(),
		WithTimeout(30*time.Millisecond), WithRetries(2), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	if _, err := c.Lookup("some.Class"); err == nil {
		t.Fatal("Lookup against a stalled server succeeded")
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("Lookup took %v; deadlines are not bounding the stall", elapsed)
	}
	// Each retry must have abandoned the dead connection and dialed fresh:
	// a timed-out exchange leaves the old stream mid-frame.
	if got := s.accepted(); got != 3 {
		t.Errorf("server accepted %d connections, want 3 (1 initial + 2 retries)", got)
	}

	if _, err := c.RequestView(); err == nil {
		t.Fatal("RequestView against a stalled server succeeded")
	}
	if _, err := c.Reverse(1); err == nil {
		t.Fatal("Reverse against a stalled server succeeded")
	}
}

// A peer speaking a different framing generation must be severed at the
// hello, not silently desynced: without the version check the server would
// consume a pre-nonce client's op byte as part of the nonce and misparse
// every frame after it.
func TestServerSeversVersionMismatch(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()

	for _, tc := range []struct {
		name  string
		hello []byte
	}{
		// An old (pre-hello) client's first frame: nonce(u32) then op.
		{"versionless", []byte{0, 0, 0, 1, opView}},
		{"wrong version", append([]byte(protoMagic), protoVersion+1)},
	} {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(tc.hello); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var b [1]byte
		if n, err := conn.Read(b[:]); err == nil || n != 0 {
			t.Errorf("%s client got %d bytes (err=%v), want severed connection", tc.name, n, err)
		}
		conn.Close()
	}
}

// A client must survive a one-off stall: when the real server comes back
// (here: the stalled endpoint is replaced by a live Server on a new dial),
// the retry path re-establishes the connection and the lookup succeeds.
func TestTCPClientRecoversAfterRedial(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String(),
		WithTimeout(time.Second), WithRetries(2), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Lookup("a.B"); err != nil {
		t.Fatal(err)
	}
	// Sever the client's connection under it; the next exchange must
	// redial transparently instead of failing on the dead socket.
	c.mu.Lock()
	c.conn.Close()
	c.mu.Unlock()
	id, err := c.Lookup("c.D")
	if err != nil {
		t.Fatalf("Lookup after severed connection: %v", err)
	}
	if name, _ := reg.NameOf(id); name != "c.D" {
		t.Errorf("recovered lookup assigned %d (%s)", id, name)
	}
}
