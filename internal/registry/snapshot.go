package registry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot/Restore support the §4.1 fault-tolerance story: the application
// (e.g. Spark) restarts the cluster after a crash and relaunches the driver
// registry; persisting the type registry lets the restarted driver hand out
// the same IDs, so shuffle files written before the crash stay readable.

// Snapshot writes the registry's full contents to w in ID order.
func (r *Registry) Snapshot(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("SKYREG1\n"); err != nil {
		return err
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(names)))
	if _, err := bw.Write(n[:]); err != nil {
		return err
	}
	for _, name := range names {
		binary.BigEndian.PutUint32(n[:], uint32(len(name)))
		if _, err := bw.Write(n[:]); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore loads a snapshot into an empty registry, reproducing the exact
// name → ID assignment. Restoring into a non-empty registry is an error:
// IDs already handed out could silently change meaning.
func Restore(r io.Reader) (*Registry, error) {
	br := bufio.NewReader(r)
	header := make([]byte, 8)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, fmt.Errorf("registry: reading snapshot header: %w", err)
	}
	if string(header) != "SKYREG1\n" {
		return nil, fmt.Errorf("registry: bad snapshot header %q", header)
	}
	var n [4]byte
	if _, err := io.ReadFull(br, n[:]); err != nil {
		return nil, err
	}
	count := binary.BigEndian.Uint32(n[:])
	if count > 1<<24 {
		return nil, fmt.Errorf("registry: implausible snapshot size %d", count)
	}
	reg := NewRegistry()
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, n[:]); err != nil {
			return nil, err
		}
		ln := binary.BigEndian.Uint32(n[:])
		if ln > 1<<20 {
			return nil, fmt.Errorf("registry: implausible name length %d", ln)
		}
		name := make([]byte, ln)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		if id := reg.LookupOrAssign(string(name)); id != int32(i) {
			return nil, fmt.Errorf("registry: snapshot entry %d (%s) resolved to ID %d", i, name, id)
		}
	}
	return reg, nil
}
