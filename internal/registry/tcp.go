package registry

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"skyway/internal/fault"
)

// Wire protocol (Algorithm 1's driver daemon): length-free binary frames on
// a persistent TCP connection, one request/response pair at a time.
//
//	hello    := "SKYR" ver(u8)        -- once, immediately after connect
//	request  := nonce(u32) op(u8) payload
//	response := nonce(u32) payload
//	op 'V' (REQUEST_VIEW): no payload  → resp: count(u32) {id(i32) name(str)}*
//	op 'L' (LOOKUP):       name(str)   → resp: id(i32)
//	op 'R' (REVERSE):      id(i32)     → resp: name(str)
//	op 'A' (ANNOUNCE):     id(i32) addr(str) → resp: id(i32)
//	op 'P' (PEERS):        no payload  → resp: count(u32) {id(i32) addr(str)}*
//	str := len(u32) bytes
//
// The hello versions the framing (like the Skyway stream header does):
// version 3 adds the peer-advertisement ops (ANNOUNCE/PEERS — executor
// block servers publish their shuffle listen addresses through the driver's
// registry, which is how a TCP cluster discovers its peers); version 2 was
// the nonce-prefixed framing below; version 1 was the nonce-free framing it
// replaced. The server severs any connection whose hello does not match its
// own version, so a mixed-version cluster fails loudly at the first
// exchange instead of desyncing — without the hello, a v2 server would
// consume a v1 client's op byte as part of the nonce and both sides would
// misparse every frame after it. A v1 server reading a v2 hello sees an
// unknown op and severs likewise. Driver and executors are still expected
// to be upgraded together; the hello turns a skew into a clean connection
// error rather than crossed type IDs.
//
// The nonce makes the client's retry policy safe against replay: every
// registry operation is idempotent on the server (LookupOrAssign assigns at
// most once per name), but a duplicated request — a retry racing a response
// that was merely delayed, or a frame replayed by the transport — leaves an
// extra response buffered on the connection, and without the nonce the
// *next* exchange would consume that stale response as its own answer,
// silently crossing type IDs between classes. The server echoes the request
// nonce; a client that reads a response with the wrong nonce severs the
// connection and retries on a fresh one.
const (
	protoMagic   = "SKYR"
	protoVersion = 3 // nonce-prefixed framing + peer advertisement

	opView     = 'V'
	opLookup   = 'L'
	opReverse  = 'R'
	opAnnounce = 'A'
	opPeers    = 'P'
)

func writeStr(w io.Writer, s string) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// maxViewEntries bounds the entry count a view response may claim: a
// corrupt or hostile peer must not be able to drive map preallocation (or
// panic make with a negative count) before the entries are even read.
const maxViewEntries = 1 << 20

func readStr(r io.Reader) (string, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	ln := binary.BigEndian.Uint32(n[:])
	if ln > 1<<20 {
		return "", fmt.Errorf("registry: implausible string length %d", ln)
	}
	b := make([]byte, ln)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeI32(w io.Writer, v int32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	_, err := w.Write(b[:])
	return err
}

func readI32(r io.Reader) (int32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int32(binary.BigEndian.Uint32(b[:])), nil
}

// Server exposes a Registry over TCP — the driver's daemon thread.
type Server struct {
	reg *Registry
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// Serve starts accepting worker connections on ln. It returns immediately;
// call Close to stop.
func Serve(reg *Registry, ln net.Listener) *Server {
	s := &Server{reg: reg, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server, severs outstanding worker connections, and waits
// for the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	// Version hello: a mismatched peer is severed before any framing is
	// consumed (see the protocol comment above).
	var hello [len(protoMagic) + 1]byte
	if _, err := io.ReadFull(r, hello[:]); err != nil {
		return
	}
	if string(hello[:len(protoMagic)]) != protoMagic || hello[len(protoMagic)] != protoVersion {
		return
	}
	for {
		nonce, err := readI32(r)
		if err != nil {
			return
		}
		op, err := r.ReadByte()
		if err != nil {
			return
		}
		// Echo the request nonce ahead of the payload so the client can
		// tell this response from a stale one left by a replayed request.
		if err := writeI32(w, nonce); err != nil {
			return
		}
		switch op {
		case opView:
			view := s.reg.View()
			if err := writeI32(w, int32(len(view))); err != nil {
				return
			}
			for name, id := range view {
				if err := writeI32(w, id); err != nil {
					return
				}
				if err := writeStr(w, name); err != nil {
					return
				}
			}
		case opLookup:
			name, err := readStr(r)
			if err != nil {
				return
			}
			if err := writeI32(w, s.reg.LookupOrAssign(name)); err != nil {
				return
			}
		case opReverse:
			id, err := readI32(r)
			if err != nil {
				return
			}
			name, ok := s.reg.NameOf(id)
			if !ok {
				name = "" // empty string signals unknown
			}
			if err := writeStr(w, name); err != nil {
				return
			}
		case opAnnounce:
			id, err := readI32(r)
			if err != nil {
				return
			}
			addr, err := readStr(r)
			if err != nil {
				return
			}
			s.reg.Announce(id, addr)
			if err := writeI32(w, id); err != nil {
				return
			}
		case opPeers:
			peers := s.reg.Peers()
			if err := writeI32(w, int32(len(peers))); err != nil {
				return
			}
			for id, addr := range peers {
				if err := writeI32(w, id); err != nil {
					return
				}
				if err := writeStr(w, addr); err != nil {
					return
				}
			}
		default:
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// TCPClient is a worker's connection to a remote driver registry. A LOOKUP
// during class loading must not hang an executor forever, so every exchange
// runs under a connection deadline and failed exchanges are retried — with
// backoff, over a fresh connection (a timed-out request leaves the old
// connection's framing in an unknown state) — a bounded number of times.
type TCPClient struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// nonce numbers exchanges; the server echoes it so a response can be
	// matched to its request (see the protocol comment above).
	nonce uint32

	timeout time.Duration
	retries int
	backoff time.Duration
}

// DialOption tunes a TCPClient's failure handling.
type DialOption func(*TCPClient)

// WithTimeout bounds each request/response exchange (and each connection
// attempt). Default 5s.
func WithTimeout(d time.Duration) DialOption { return func(c *TCPClient) { c.timeout = d } }

// WithRetries sets how many times a failed exchange is retried over a fresh
// connection before the error is surfaced. Default 2.
func WithRetries(n int) DialOption { return func(c *TCPClient) { c.retries = n } }

// WithBackoff sets the delay before the first retry; it doubles on each
// subsequent one. Default 50ms.
func WithBackoff(d time.Duration) DialOption { return func(c *TCPClient) { c.backoff = d } }

// Dial connects to a driver registry server.
func Dial(addr string, opts ...DialOption) (*TCPClient, error) {
	c := &TCPClient{addr: addr, timeout: 5 * time.Second, retries: 2, backoff: 50 * time.Millisecond}
	for _, o := range opts {
		o(c)
	}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// redial (re)establishes the connection. Caller holds c.mu (or owns c).
func (c *TCPClient) redial() error {
	// Failpoint: the driver is unreachable for this dial attempt.
	if err := fault.Inject(fault.RegistryDial); err != nil {
		return fmt.Errorf("registry: dial %s: %w", c.addr, err)
	}
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("registry: dial %s: %w", c.addr, err)
	}
	c.conn, c.r, c.w = conn, bufio.NewReader(conn), bufio.NewWriter(conn)
	// The version hello is buffered here and flushed ahead of the first
	// exchange; a mismatched server severs the connection, so the exchange
	// fails with a connection error instead of desyncing.
	c.w.WriteString(protoMagic)
	c.w.WriteByte(protoVersion)
	return nil
}

// drop severs the current connection so the next attempt redials. Caller
// holds c.mu.
func (c *TCPClient) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// exchange runs one request/response pair under the deadline/retry policy.
// It owns the nonce framing: the request is built in full (nonce, op,
// payload from writeReq), sent, and the echoed response nonce is verified
// before readResp consumes the payload. A nonce mismatch means the bytes on
// the connection belong to some other exchange — a response replayed or left
// behind by a duplicated request — so the connection is severed and the
// exchange retried on a fresh one, which makes retries safe against replay.
func (c *TCPClient) exchange(op byte, writeReq func(w io.Writer) error, readResp func(r *bufio.Reader) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff << (attempt - 1))
		}
		// Failpoint: the connection dies between exchanges, exercising the
		// redial path below.
		if fault.Eval(fault.RegistryExchangeDrop) {
			c.drop()
		}
		if c.conn == nil {
			if err = c.redial(); err != nil {
				continue
			}
		}
		// Failpoint: a stalled network before the exchange (arg duration);
		// stalls beyond the timeout trip the per-exchange deadline.
		fault.Sleep(fault.RegistryExchangeDelay)
		c.nonce++
		nonce := int32(c.nonce)
		var req bytes.Buffer
		writeI32(&req, nonce)
		req.WriteByte(op)
		if writeReq != nil {
			if err := writeReq(&req); err != nil {
				return err
			}
		}
		err = func() error {
			// The per-exchange deadline lives exactly as long as this
			// attempt: the deferred zero-value reset runs on EVERY return
			// path, so no exit — a timeout, a torn frame, a nonce mismatch
			// — can leak an already-expiring deadline into a later exchange
			// that reuses the connection. (Resetting only on the success
			// path poisons the next exchange the moment any failure path
			// keeps the connection: its reads inherit a deadline that has
			// already passed and fail instantly.)
			conn := c.conn
			conn.SetDeadline(time.Now().Add(c.timeout))
			defer conn.SetDeadline(time.Time{})
			if _, err := c.w.Write(req.Bytes()); err != nil {
				return err
			}
			// Failpoint: the transport replays the request frame. The
			// server answers both copies; the second response stays
			// buffered on the connection, where only the nonce check
			// keeps the NEXT exchange from adopting it as its answer.
			if fault.Eval(fault.RegistryExchangeDup) {
				if _, err := c.w.Write(req.Bytes()); err != nil {
					return err
				}
			}
			if err := c.w.Flush(); err != nil {
				return err
			}
			echo, err := readI32(c.r)
			if err != nil {
				return err
			}
			if echo != nonce {
				return fmt.Errorf("registry: response nonce %#x does not match request nonce %#x (stale or replayed response)", uint32(echo), uint32(nonce))
			}
			return readResp(c.r)
		}()
		if err == nil {
			return nil
		}
		// The exchange died mid-frame (or answered out of order); the
		// stream state is unknown.
		c.drop()
	}
	return fmt.Errorf("registry: request failed after %d attempts: %w", c.retries+1, err)
}

// RequestView implements Client.
func (c *TCPClient) RequestView() (map[string]int32, error) {
	var out map[string]int32
	err := c.exchange(opView, nil, func(r *bufio.Reader) error {
		n, err := readI32(r)
		if err != nil {
			return err
		}
		if n < 0 || n > maxViewEntries {
			return fmt.Errorf("registry: view entry count %d out of range", n)
		}
		out = make(map[string]int32, n)
		for i := int32(0); i < n; i++ {
			id, err := readI32(r)
			if err != nil {
				return err
			}
			name, err := readStr(r)
			if err != nil {
				return err
			}
			out[name] = id
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Lookup implements Client.
func (c *TCPClient) Lookup(name string) (int32, error) {
	var id int32
	err := c.exchange(opLookup,
		func(w io.Writer) error { return writeStr(w, name) },
		func(r *bufio.Reader) error {
			var err error
			id, err = readI32(r)
			return err
		})
	if err != nil {
		return -1, err
	}
	return id, nil
}

// Reverse implements Client.
func (c *TCPClient) Reverse(id int32) (string, error) {
	var name string
	err := c.exchange(opReverse,
		func(w io.Writer) error { return writeI32(w, id) },
		func(r *bufio.Reader) error {
			var err error
			name, err = readStr(r)
			return err
		})
	if err != nil {
		return "", err
	}
	if name == "" {
		return "", fmt.Errorf("registry: unknown type ID %d", id)
	}
	return name, nil
}

// maxPeerEntries bounds the peer count a PEERS response may claim, with the
// same full-width pre-validation discipline as maxViewEntries: a corrupt
// peer must not drive map preallocation before any entry is read.
const maxPeerEntries = 1 << 16

// Announce implements PeerClient: it publishes an executor block server's
// shuffle listen address under its executor ID.
func (c *TCPClient) Announce(id int32, addr string) error {
	return c.exchange(opAnnounce,
		func(w io.Writer) error {
			if err := writeI32(w, id); err != nil {
				return err
			}
			return writeStr(w, addr)
		},
		func(r *bufio.Reader) error {
			echo, err := readI32(r)
			if err != nil {
				return err
			}
			if echo != id {
				return fmt.Errorf("registry: ANNOUNCE echoed id %d, want %d", echo, id)
			}
			return nil
		})
}

// Peers implements PeerClient: the advertised executor ID → address map.
func (c *TCPClient) Peers() (map[int32]string, error) {
	var out map[int32]string
	err := c.exchange(opPeers, nil, func(r *bufio.Reader) error {
		n, err := readI32(r)
		if err != nil {
			return err
		}
		if n < 0 || n > maxPeerEntries {
			return fmt.Errorf("registry: peer entry count %d out of range", n)
		}
		out = make(map[int32]string, n)
		for i := int32(0); i < n; i++ {
			id, err := readI32(r)
			if err != nil {
				return err
			}
			addr, err := readStr(r)
			if err != nil {
				return err
			}
			out[id] = addr
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
