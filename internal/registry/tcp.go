package registry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Wire protocol (Algorithm 1's driver daemon): length-free binary frames on
// a persistent TCP connection, one request/response pair at a time.
//
//	request  := op(u8) payload
//	op 'V' (REQUEST_VIEW): no payload  → resp: count(u32) {id(i32) name(str)}*
//	op 'L' (LOOKUP):       name(str)   → resp: id(i32)
//	op 'R' (REVERSE):      id(i32)     → resp: name(str)
//	str := len(u32) bytes
const (
	opView    = 'V'
	opLookup  = 'L'
	opReverse = 'R'
)

func writeStr(w io.Writer, s string) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readStr(r io.Reader) (string, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	ln := binary.BigEndian.Uint32(n[:])
	if ln > 1<<20 {
		return "", fmt.Errorf("registry: implausible string length %d", ln)
	}
	b := make([]byte, ln)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeI32(w io.Writer, v int32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	_, err := w.Write(b[:])
	return err
}

func readI32(r io.Reader) (int32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int32(binary.BigEndian.Uint32(b[:])), nil
}

// Server exposes a Registry over TCP — the driver's daemon thread.
type Server struct {
	reg *Registry
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// Serve starts accepting worker connections on ln. It returns immediately;
// call Close to stop.
func Serve(reg *Registry, ln net.Listener) *Server {
	s := &Server{reg: reg, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server, severs outstanding worker connections, and waits
// for the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		op, err := r.ReadByte()
		if err != nil {
			return
		}
		switch op {
		case opView:
			view := s.reg.View()
			if err := writeI32(w, int32(len(view))); err != nil {
				return
			}
			for name, id := range view {
				if err := writeI32(w, id); err != nil {
					return
				}
				if err := writeStr(w, name); err != nil {
					return
				}
			}
		case opLookup:
			name, err := readStr(r)
			if err != nil {
				return
			}
			if err := writeI32(w, s.reg.LookupOrAssign(name)); err != nil {
				return
			}
		case opReverse:
			id, err := readI32(r)
			if err != nil {
				return
			}
			name, ok := s.reg.NameOf(id)
			if !ok {
				name = "" // empty string signals unknown
			}
			if err := writeStr(w, name); err != nil {
				return
			}
		default:
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// TCPClient is a worker's connection to a remote driver registry. A LOOKUP
// during class loading must not hang an executor forever, so every exchange
// runs under a connection deadline and failed exchanges are retried — with
// backoff, over a fresh connection (a timed-out request leaves the old
// connection's framing in an unknown state) — a bounded number of times.
type TCPClient struct {
	mu   sync.Mutex
	addr string
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	timeout time.Duration
	retries int
	backoff time.Duration
}

// DialOption tunes a TCPClient's failure handling.
type DialOption func(*TCPClient)

// WithTimeout bounds each request/response exchange (and each connection
// attempt). Default 5s.
func WithTimeout(d time.Duration) DialOption { return func(c *TCPClient) { c.timeout = d } }

// WithRetries sets how many times a failed exchange is retried over a fresh
// connection before the error is surfaced. Default 2.
func WithRetries(n int) DialOption { return func(c *TCPClient) { c.retries = n } }

// WithBackoff sets the delay before the first retry; it doubles on each
// subsequent one. Default 50ms.
func WithBackoff(d time.Duration) DialOption { return func(c *TCPClient) { c.backoff = d } }

// Dial connects to a driver registry server.
func Dial(addr string, opts ...DialOption) (*TCPClient, error) {
	c := &TCPClient{addr: addr, timeout: 5 * time.Second, retries: 2, backoff: 50 * time.Millisecond}
	for _, o := range opts {
		o(c)
	}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

// redial (re)establishes the connection. Caller holds c.mu (or owns c).
func (c *TCPClient) redial() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
	if err != nil {
		return fmt.Errorf("registry: dial %s: %w", c.addr, err)
	}
	c.conn, c.r, c.w = conn, bufio.NewReader(conn), bufio.NewWriter(conn)
	return nil
}

// drop severs the current connection so the next attempt redials. Caller
// holds c.mu.
func (c *TCPClient) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// exchange runs one request/response pair under the deadline/retry policy.
// op reads and writes through c.r/c.w, which point at the current (possibly
// fresh) connection on every attempt.
func (c *TCPClient) exchange(op func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff << (attempt - 1))
		}
		if c.conn == nil {
			if err = c.redial(); err != nil {
				continue
			}
		}
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		if err = op(); err == nil {
			c.conn.SetDeadline(time.Time{})
			return nil
		}
		// The exchange died mid-frame; the stream state is unknown.
		c.drop()
	}
	return fmt.Errorf("registry: request failed after %d attempts: %w", c.retries+1, err)
}

// RequestView implements Client.
func (c *TCPClient) RequestView() (map[string]int32, error) {
	var out map[string]int32
	err := c.exchange(func() error {
		if err := c.w.WriteByte(opView); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		n, err := readI32(c.r)
		if err != nil {
			return err
		}
		out = make(map[string]int32, n)
		for i := int32(0); i < n; i++ {
			id, err := readI32(c.r)
			if err != nil {
				return err
			}
			name, err := readStr(c.r)
			if err != nil {
				return err
			}
			out[name] = id
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Lookup implements Client.
func (c *TCPClient) Lookup(name string) (int32, error) {
	var id int32
	err := c.exchange(func() error {
		if err := c.w.WriteByte(opLookup); err != nil {
			return err
		}
		if err := writeStr(c.w, name); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		var err error
		id, err = readI32(c.r)
		return err
	})
	if err != nil {
		return -1, err
	}
	return id, nil
}

// Reverse implements Client.
func (c *TCPClient) Reverse(id int32) (string, error) {
	var name string
	err := c.exchange(func() error {
		if err := c.w.WriteByte(opReverse); err != nil {
			return err
		}
		if err := writeI32(c.w, id); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		var err error
		name, err = readStr(c.r)
		return err
	})
	if err != nil {
		return "", err
	}
	if name == "" {
		return "", fmt.Errorf("registry: unknown type ID %d", id)
	}
	return name, nil
}

// Close implements Client.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
