package registry

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Wire protocol (Algorithm 1's driver daemon): length-free binary frames on
// a persistent TCP connection, one request/response pair at a time.
//
//	request  := op(u8) payload
//	op 'V' (REQUEST_VIEW): no payload  → resp: count(u32) {id(i32) name(str)}*
//	op 'L' (LOOKUP):       name(str)   → resp: id(i32)
//	op 'R' (REVERSE):      id(i32)     → resp: name(str)
//	str := len(u32) bytes
const (
	opView    = 'V'
	opLookup  = 'L'
	opReverse = 'R'
)

func writeStr(w io.Writer, s string) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readStr(r io.Reader) (string, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	ln := binary.BigEndian.Uint32(n[:])
	if ln > 1<<20 {
		return "", fmt.Errorf("registry: implausible string length %d", ln)
	}
	b := make([]byte, ln)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeI32(w io.Writer, v int32) error {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	_, err := w.Write(b[:])
	return err
}

func readI32(r io.Reader) (int32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return int32(binary.BigEndian.Uint32(b[:])), nil
}

// Server exposes a Registry over TCP — the driver's daemon thread.
type Server struct {
	reg *Registry
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
}

// Serve starts accepting worker connections on ln. It returns immediately;
// call Close to stop.
func Serve(reg *Registry, ln net.Listener) *Server {
	s := &Server{reg: reg, ln: ln, conns: make(map[net.Conn]bool)}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server, severs outstanding worker connections, and waits
// for the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		op, err := r.ReadByte()
		if err != nil {
			return
		}
		switch op {
		case opView:
			view := s.reg.View()
			if err := writeI32(w, int32(len(view))); err != nil {
				return
			}
			for name, id := range view {
				if err := writeI32(w, id); err != nil {
					return
				}
				if err := writeStr(w, name); err != nil {
					return
				}
			}
		case opLookup:
			name, err := readStr(r)
			if err != nil {
				return
			}
			if err := writeI32(w, s.reg.LookupOrAssign(name)); err != nil {
				return
			}
		case opReverse:
			id, err := readI32(r)
			if err != nil {
				return
			}
			name, ok := s.reg.NameOf(id)
			if !ok {
				name = "" // empty string signals unknown
			}
			if err := writeStr(w, name); err != nil {
				return
			}
		default:
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// TCPClient is a worker's connection to a remote driver registry.
type TCPClient struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a driver registry server.
func Dial(addr string) (*TCPClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("registry: dial %s: %w", addr, err)
	}
	return &TCPClient{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// RequestView implements Client.
func (c *TCPClient) RequestView() (map[string]int32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.WriteByte(opView); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	n, err := readI32(c.r)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int32, n)
	for i := int32(0); i < n; i++ {
		id, err := readI32(c.r)
		if err != nil {
			return nil, err
		}
		name, err := readStr(c.r)
		if err != nil {
			return nil, err
		}
		out[name] = id
	}
	return out, nil
}

// Lookup implements Client.
func (c *TCPClient) Lookup(name string) (int32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.WriteByte(opLookup); err != nil {
		return -1, err
	}
	if err := writeStr(c.w, name); err != nil {
		return -1, err
	}
	if err := c.w.Flush(); err != nil {
		return -1, err
	}
	return readI32(c.r)
}

// Reverse implements Client.
func (c *TCPClient) Reverse(id int32) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.w.WriteByte(opReverse); err != nil {
		return "", err
	}
	if err := writeI32(c.w, id); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	name, err := readStr(c.r)
	if err != nil {
		return "", err
	}
	if name == "" {
		return "", fmt.Errorf("registry: unknown type ID %d", id)
	}
	return name, nil
}

// Close implements Client.
func (c *TCPClient) Close() error { return c.conn.Close() }
