// Package registry implements Skyway's automated global class numbering
// (§4.1, Algorithm 1). A driver maintains the cluster-wide map from type
// strings to integer type IDs; each worker runtime holds a registry view —
// a locally cached subset — populated in bulk at startup (REQUEST_VIEW) and
// extended lazily on class load (LOOKUP). The receive path additionally
// resolves IDs back to names (REVERSE) so an unloaded class can be loaded by
// name, which is why Skyway cannot substitute a hash of the class name for
// the registry (§4.1).
package registry

import (
	"fmt"
	"sort"
	"sync"

	"skyway/internal/obs"
)

// Registry counters, exported on /metrics (skywayd's primary gauges).
var (
	ctrRegistrations  = obs.NewCounter("skyway_registry_registrations_total", "Fresh type IDs assigned by driver registries.")
	ctrLookups        = obs.NewCounter("skyway_registry_lookups_total", "LOOKUP requests served (hit or assign).")
	ctrRemoteLookups  = obs.NewCounter("skyway_registry_view_misses_total", "Worker-view misses that issued a remote LOOKUP.")
	ctrRemoteReverses = obs.NewCounter("skyway_registry_view_reverses_total", "Worker-view misses that issued a remote REVERSE.")
)

// Registry is the driver-side complete type registry. Alongside the type
// numbering it carries the cluster's peer advertisements: executor block
// servers announce their shuffle listen addresses here, and the driver's
// transport discovers them with Peers — the registry doubles as the
// cluster's one piece of coordination state, so a TCP cluster needs no
// second discovery service.
type Registry struct {
	mu    sync.RWMutex
	ids   map[string]int32
	names []string // index = ID
	peers map[int32]string
}

// NewRegistry returns an empty driver registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]int32), peers: make(map[int32]string)}
}

// Populate registers the driver JVM's own loaded classes at startup
// (Algorithm 1, driver part 1).
func (r *Registry) Populate(names []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range names {
		r.lookupOrAssignLocked(n)
	}
}

// LookupOrAssign returns the global ID for name, assigning a fresh one if
// the name has never been seen (Algorithm 1, driver part 2, "LOOKUP").
func (r *Registry) LookupOrAssign(name string) int32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookupOrAssignLocked(name)
}

func (r *Registry) lookupOrAssignLocked(name string) int32 {
	ctrLookups.Inc()
	if id, ok := r.ids[name]; ok {
		return id
	}
	id := int32(len(r.names))
	r.ids[name] = id
	r.names = append(r.names, name)
	ctrRegistrations.Inc()
	return id
}

// NameOf resolves an ID back to its type string ("REVERSE").
func (r *Registry) NameOf(id int32) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id < 0 || int(id) >= len(r.names) {
		return "", false
	}
	return r.names[id], true
}

// View snapshots the full registry ("REQUEST_VIEW").
func (r *Registry) View() map[string]int32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int32, len(r.ids))
	for n, id := range r.ids {
		out[n] = id
	}
	return out
}

// Len returns the number of registered types.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Names returns all registered type strings in ID order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Announce records an executor block server's shuffle address under its
// executor ID ("ANNOUNCE"). Re-announcing overwrites — an executor that
// restarted on a new port simply advertises again.
func (r *Registry) Announce(id int32, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.peers == nil {
		r.peers = make(map[int32]string)
	}
	r.peers[id] = addr
}

// Peers snapshots the advertised executor ID → address map ("PEERS").
func (r *Registry) Peers() map[int32]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[int32]string, len(r.peers))
	for id, addr := range r.peers {
		out[id] = addr
	}
	return out
}

// Client is the worker side's connection to the driver. Implementations:
// InProc (same-process driver) and TCPClient (remote driver).
type Client interface {
	// RequestView fetches the driver's complete current registry.
	RequestView() (map[string]int32, error)
	// Lookup returns the global ID for a class name, registering it if new.
	Lookup(name string) (int32, error)
	// Reverse resolves a global ID back to a class name.
	Reverse(id int32) (string, error)
	// Close releases the connection.
	Close() error
}

// InProc is a Client wired directly to a Registry in the same process, used
// by single-process clusters (the common configuration for the simulated
// multi-node experiments).
type InProc struct{ R *Registry }

// RequestView implements Client.
func (c InProc) RequestView() (map[string]int32, error) { return c.R.View(), nil }

// Lookup implements Client.
func (c InProc) Lookup(name string) (int32, error) { return c.R.LookupOrAssign(name), nil }

// Reverse implements Client.
func (c InProc) Reverse(id int32) (string, error) {
	n, ok := c.R.NameOf(id)
	if !ok {
		return "", fmt.Errorf("registry: unknown type ID %d", id)
	}
	return n, nil
}

// Close implements Client.
func (c InProc) Close() error { return nil }

// Announce implements PeerClient.
func (c InProc) Announce(id int32, addr string) error {
	c.R.Announce(id, addr)
	return nil
}

// Peers implements PeerClient.
func (c InProc) Peers() (map[int32]string, error) { return c.R.Peers(), nil }

// PeerClient is the optional Client capability behind peer discovery:
// executor block servers Announce their shuffle listen addresses, and the
// driver-side transport Peers them back. Both InProc and TCPClient
// implement it; the capability is separate from Client so registry views
// (which only translate type IDs) stay unaware of cluster topology.
type PeerClient interface {
	// Announce publishes an executor block server's listen address.
	Announce(id int32, addr string) error
	// Peers returns the advertised executor ID → address map.
	Peers() (map[int32]string, error)
}

// View is the worker's registry view: the local cache of name↔ID mappings
// (Figure 5's "Registry View"). It consults the client only on misses, so
// each type string crosses the network at most once per worker (§4.1).
type View struct {
	mu      sync.RWMutex
	client  Client
	ids     map[string]int32
	names   map[int32]string
	misses  int // remote LOOKUPs issued
	reverse int // remote REVERSEs issued
}

// NewView creates a worker registry view backed by client, primed with a
// bulk REQUEST_VIEW (Algorithm 1, worker part 1).
func NewView(client Client) (*View, error) {
	v := &View{
		client: client,
		ids:    make(map[string]int32),
		names:  make(map[int32]string),
	}
	m, err := client.RequestView()
	if err != nil {
		return nil, fmt.Errorf("registry: REQUEST_VIEW: %w", err)
	}
	for n, id := range m {
		v.ids[n] = id
		v.names[id] = n
	}
	return v, nil
}

// IDFor returns the global ID for name, consulting the driver on a miss
// (Algorithm 1, worker part 2).
func (v *View) IDFor(name string) (int32, error) {
	v.mu.RLock()
	id, ok := v.ids[name]
	v.mu.RUnlock()
	if ok {
		return id, nil
	}
	id, err := v.client.Lookup(name)
	if err != nil {
		return -1, fmt.Errorf("registry: LOOKUP %s: %w", name, err)
	}
	v.mu.Lock()
	v.ids[name] = id
	v.names[id] = name
	v.misses++
	v.mu.Unlock()
	ctrRemoteLookups.Inc()
	return id, nil
}

// NameFor resolves id to a class name, consulting the driver on a miss.
func (v *View) NameFor(id int32) (string, error) {
	v.mu.RLock()
	n, ok := v.names[id]
	v.mu.RUnlock()
	if ok {
		return n, nil
	}
	n, err := v.client.Reverse(id)
	if err != nil {
		return "", err
	}
	v.mu.Lock()
	v.names[id] = n
	v.ids[n] = id
	v.reverse++
	v.mu.Unlock()
	ctrRemoteReverses.Inc()
	return n, nil
}

// RemoteLookups reports how many LOOKUP and REVERSE round trips the view has
// issued — the quantity §4.1 argues is orders of magnitude below the
// per-object type strings of the standard Java serializer.
func (v *View) RemoteLookups() (lookups, reverses int) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.misses, v.reverse
}

// Known returns the cached type strings, sorted, for diagnostics.
func (v *View) Known() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.ids))
	for n := range v.ids {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
