package registry

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
)

func TestLookupOrAssignStable(t *testing.T) {
	r := NewRegistry()
	a := r.LookupOrAssign("java.lang.Object")
	b := r.LookupOrAssign("org.apache.spark.rdd.RDD")
	if a == b {
		t.Fatal("distinct classes share an ID")
	}
	if got := r.LookupOrAssign("java.lang.Object"); got != a {
		t.Fatal("repeated lookup changed the ID")
	}
	if n, ok := r.NameOf(a); !ok || n != "java.lang.Object" {
		t.Fatalf("NameOf(%d) = %q, %v", a, n, ok)
	}
	if _, ok := r.NameOf(99); ok {
		t.Fatal("NameOf of unassigned ID succeeded")
	}
}

func TestPopulateAndView(t *testing.T) {
	r := NewRegistry()
	r.Populate([]string{"A", "B", "C"})
	v := r.View()
	if len(v) != 3 {
		t.Fatalf("view has %d entries", len(v))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	names := r.Names()
	for i, n := range names {
		if v[n] != int32(i) {
			t.Errorf("Names()[%d] = %s but View says %d", i, n, v[n])
		}
	}
}

func TestViewCacheAvoidsRemoteLookups(t *testing.T) {
	r := NewRegistry()
	r.Populate([]string{"A", "B"})
	v, err := NewView(InProc{R: r})
	if err != nil {
		t.Fatal(err)
	}
	// Cached names must not hit the driver.
	if _, err := v.IDFor("A"); err != nil {
		t.Fatal(err)
	}
	if l, _ := v.RemoteLookups(); l != 0 {
		t.Errorf("cached lookup went remote (%d)", l)
	}
	// A miss does.
	if _, err := v.IDFor("C"); err != nil {
		t.Fatal(err)
	}
	if l, _ := v.RemoteLookups(); l != 1 {
		t.Errorf("lookup count = %d, want 1", l)
	}
	// And only once — §4.1: "a type string at most once per class per
	// machine".
	if _, err := v.IDFor("C"); err != nil {
		t.Fatal(err)
	}
	if l, _ := v.RemoteLookups(); l != 1 {
		t.Errorf("second lookup of C went remote")
	}
	if len(v.Known()) != 3 {
		t.Errorf("Known = %v", v.Known())
	}
}

func TestConcurrentAssignIsConsistent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	ids := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ids[w] = append(ids[w], r.LookupOrAssign(fmt.Sprintf("class-%d", i)))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range ids[0] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d saw class-%d as %d, worker 0 as %d", w, i, ids[w][i], ids[0][i])
			}
		}
	}
}

func TestTCPProtocol(t *testing.T) {
	reg := NewRegistry()
	reg.Populate([]string{"seed.Class"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	view, err := c.RequestView()
	if err != nil {
		t.Fatal(err)
	}
	if view["seed.Class"] != 0 {
		t.Errorf("view = %v", view)
	}

	id, err := c.Lookup("worker.Class")
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Errorf("Lookup assigned %d", id)
	}
	name, err := c.Reverse(id)
	if err != nil || name != "worker.Class" {
		t.Errorf("Reverse = %q, %v", name, err)
	}
	if _, err := c.Reverse(42); err == nil {
		t.Error("Reverse of unknown ID succeeded")
	}
}

func TestTCPViewThroughClient(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()

	// Two workers through independent connections must agree on IDs
	// regardless of lookup order (Figure 5's scenario).
	c1, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	v1, err := NewView(c1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewView(c2)
	if err != nil {
		t.Fatal(err)
	}
	idA1, _ := v1.IDFor("A")
	idB2, _ := v2.IDFor("B")
	idA2, _ := v2.IDFor("A")
	idB1, _ := v1.IDFor("B")
	if idA1 != idA2 || idB1 != idB2 {
		t.Errorf("IDs disagree: A %d/%d, B %d/%d", idA1, idA2, idB1, idB2)
	}
	n, err := v1.NameFor(idB1)
	if err != nil || n != "B" {
		t.Errorf("NameFor = %q, %v", n, err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()

	const workers = 6
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			c, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if _, err := c.Lookup(fmt.Sprintf("class-%d", i)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if reg.Len() != 50 {
		t.Errorf("registry has %d classes, want 50", reg.Len())
	}
}

// Property: IDs are dense (0..n-1) and name↔ID is a bijection no matter the
// interleaving of registrations.
func TestRegistryBijectionQuick(t *testing.T) {
	f := func(names []string) bool {
		r := NewRegistry()
		seen := make(map[string]bool)
		for _, n := range names {
			if n == "" {
				continue
			}
			r.LookupOrAssign(n)
			seen[n] = true
		}
		if r.Len() != len(seen) {
			return false
		}
		for name, id := range r.View() {
			back, ok := r.NameOf(id)
			if !ok || back != name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	r := NewRegistry()
	names := []string{"java.lang.Object", "a.B", "c.D", "e.F[]"}
	r.Populate(names)

	var buf bytes.Buffer
	if err := r.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != r.Len() {
		t.Fatalf("restored %d of %d types", restored.Len(), r.Len())
	}
	for _, n := range names {
		if restored.LookupOrAssign(n) != r.LookupOrAssign(n) {
			t.Errorf("ID of %s changed across snapshot/restore", n)
		}
	}
	// A restarted driver can keep assigning fresh IDs.
	if id := restored.LookupOrAssign("new.Class"); id != int32(len(names)) {
		t.Errorf("fresh assignment after restore = %d", id)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := Restore(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot accepted")
	}
}
