package registry

import (
	"errors"
	"net"
	"testing"
	"time"

	"skyway/internal/fault"
)

// faultServer boots a live registry server and a client with fast retry
// settings for failpoint tests.
func faultServer(t *testing.T, spec string) (*Registry, *TCPClient) {
	t.Helper()
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	t.Cleanup(func() { srv.Close() })
	if err := fault.Configure(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
	c, err := Dial(ln.Addr().String(),
		WithTimeout(time.Second), WithRetries(2), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return reg, c
}

// TestExchangeNonceRejectsReplayedResponse is the regression test for the
// replayed-exchange bug: a duplicated request frame makes the server answer
// twice, leaving a stale response buffered on the connection. Before the
// exchange nonce, the NEXT lookup consumed that stale response as its own
// answer and silently returned the wrong type ID — a replayed exchange
// treated as success. With the nonce, the client detects the stale response,
// drops the connection, and retries; every lookup returns its own ID.
func TestExchangeNonceRejectsReplayedResponse(t *testing.T) {
	reg, c := faultServer(t, fault.RegistryExchangeDup+":on*times=1")

	idAlpha, err := c.Lookup("pkg.Alpha")
	if err != nil {
		t.Fatalf("Lookup(Alpha) under dup: %v", err)
	}
	idBeta, err := c.Lookup("pkg.Beta")
	if err != nil {
		t.Fatalf("Lookup(Beta) after dup: %v", err)
	}
	if idBeta == idAlpha {
		t.Fatalf("replayed response adopted: Beta got Alpha's id %d", idAlpha)
	}
	if name, _ := reg.NameOf(idBeta); name != "pkg.Beta" {
		t.Fatalf("Beta resolved to id %d = %q", idBeta, name)
	}
	if name, _ := reg.NameOf(idAlpha); name != "pkg.Alpha" {
		t.Fatalf("Alpha resolved to id %d = %q", idAlpha, name)
	}
}

// TestExchangeNonceSurvivesRepeatedReplay hammers the dup failpoint on every
// exchange: each lookup must still map to its own name.
func TestExchangeNonceSurvivesRepeatedReplay(t *testing.T) {
	reg, c := faultServer(t, fault.RegistryExchangeDup+":on")

	names := []string{"a.A", "b.B", "c.C", "d.D", "e.E"}
	for _, n := range names {
		id, err := c.Lookup(n)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", n, err)
		}
		if got, _ := reg.NameOf(id); got != n {
			t.Fatalf("Lookup(%s) = id %d, which is %q", n, id, got)
		}
	}
}

// TestExchangeDropRedials severs the connection right before an exchange;
// the retry policy must redial and complete the lookup.
func TestExchangeDropRedials(t *testing.T) {
	reg, c := faultServer(t, fault.RegistryExchangeDrop+":on*times=1")

	id, err := c.Lookup("x.Y")
	if err != nil {
		t.Fatalf("Lookup under drop: %v", err)
	}
	if name, _ := reg.NameOf(id); name != "x.Y" {
		t.Fatalf("lookup resolved to %q", name)
	}
}

// TestDialFailpointSurfacesAndRecovers: a persistent dial failure surfaces
// as a *fault.Error through Dial; a transient one is absorbed by the
// exchange retry policy.
func TestDialFailpointSurfacesAndRecovers(t *testing.T) {
	reg := NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(reg, ln)
	defer srv.Close()

	if err := fault.Configure(fault.RegistryDial + ":on"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	_, err = Dial(ln.Addr().String(), WithTimeout(time.Second))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Point != fault.RegistryDial {
		t.Fatalf("Dial under persistent dial fault = %v, want *fault.Error", err)
	}

	// Transient: the dial fails once, then the client connects and works.
	if err := fault.Configure(fault.RegistryDial + ":on*times=1"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(ln.Addr().String(),
		WithTimeout(time.Second), WithRetries(2), WithBackoff(time.Millisecond))
	if err == nil {
		defer c.Close()
		if _, err := c.Lookup("p.Q"); err != nil {
			t.Fatalf("Lookup after transient dial fault: %v", err)
		}
		return
	}
	// Dial itself performs no retry; the first connection attempt absorbed
	// the injected failure, so a second Dial must succeed.
	c, err = Dial(ln.Addr().String(), WithTimeout(time.Second))
	if err != nil {
		t.Fatalf("second Dial after transient fault: %v", err)
	}
	defer c.Close()
	if _, err := c.Lookup("p.Q"); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeDelayInjectsLatency: the delay failpoint stalls an exchange by
// its arg duration without failing it.
func TestExchangeDelayInjectsLatency(t *testing.T) {
	_, c := faultServer(t, fault.RegistryExchangeDelay+":on*times=1*arg=30ms")

	start := time.Now()
	if _, err := c.Lookup("slow.Class"); err != nil {
		t.Fatalf("Lookup under delay: %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed exchange took only %v", d)
	}
}
