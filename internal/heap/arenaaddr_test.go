package heap

import (
	"testing"

	"skyway/internal/klass"
)

func TestArenaAddrRoundTrip(t *testing.T) {
	cases := []struct {
		region uint32
		rel    uint64
	}{
		{1, RelBias},
		{1, 0x12345678},
		{uint32(ArenaRegionMask), BaddrRelMask},
		{42, 0},
	}
	for _, c := range cases {
		a := ComposeArenaAddr(c.region, c.rel)
		if !IsArenaAddr(a) {
			t.Errorf("ComposeArenaAddr(%d, %#x) not tagged", c.region, c.rel)
		}
		if got := ArenaRegionOf(a); got != c.region {
			t.Errorf("ArenaRegionOf(%#x) = %d, want %d", uint64(a), got, c.region)
		}
		if got := ArenaRelOf(a); got != c.rel {
			t.Errorf("ArenaRelOf(%#x) = %#x, want %#x", uint64(a), got, c.rel)
		}
	}
	// Managed addresses and baddr words never carry the tag: the slab tops
	// out far below 2^63 and baddr's top bits hold phase bits below bit 63.
	if IsArenaAddr(Null) || IsArenaAddr(Addr(1<<40)) {
		t.Error("untagged address classified as an arena handle")
	}
	// Composition masks oversized fields instead of corrupting neighbors.
	a := ComposeArenaAddr(1<<24|7, 1<<41|0x99)
	if ArenaRegionOf(a) != 7 || ArenaRelOf(a) != 0x99 {
		t.Errorf("oversized fields leaked across boundaries: region %d rel %#x",
			ArenaRegionOf(a), ArenaRelOf(a))
	}
}

func TestLoadStoreBytesLittleEndian(t *testing.T) {
	b := make([]byte, 16)
	for _, c := range []struct {
		kind klass.Kind
		v    uint64
	}{
		{klass.Int64, 0x1122334455667788},
		{klass.Ref, 0xFFEEDDCCBBAA9988},
		{klass.Int32, 0xCAFEBABE},
		{klass.Char, 0xBEEF},
		{klass.Int8, 0x7F},
	} {
		for i := range b {
			b[i] = 0
		}
		StoreBytes(b, 4, c.kind, c.v)
		if got := LoadBytes(b, 4, c.kind); got != c.v {
			t.Errorf("%v: LoadBytes after StoreBytes = %#x, want %#x", c.kind, got, c.v)
		}
	}
	// Bit-identity with the wire: a stored Int32 must read back LE from the
	// raw image, matching what CopyOut emits and Heap.Load would see.
	StoreBytes(b, 0, klass.Int32, 0x04030201)
	if b[0] != 1 || b[1] != 2 || b[2] != 3 || b[3] != 4 {
		t.Errorf("StoreBytes wrote %v, want little-endian 01 02 03 04", b[:4])
	}
}

func TestLoadBytesBoundsPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s escaped its image without panicking", name)
			}
		}()
		f()
	}
	b := make([]byte, 8)
	mustPanic("LoadBytes past end", func() { LoadBytes(b, 4, klass.Int64) })
	mustPanic("LoadBytes offset overflow", func() { LoadBytes(b, ^uint32(0), klass.Int8) })
	mustPanic("StoreBytes past end", func() { StoreBytes(b, 8, klass.Int8, 1) })
	mustPanic("LoadBytes zero-size kind", func() { LoadBytes(b, 0, klass.Invalid) })
}
