package heap

import "skyway/internal/klass"

// Skyway baddr word encoding (§4.2). The baddr header word records, for the
// current shuffle phase, where in the sender's output buffer the object's
// clone lives:
//
//	bits 56..63  phase ID (sID); 0 only in a cleared word
//	bits 40..55  stream/thread ID
//	bits  0..39  relative buffer address (5 bytes, 1 TiB of stream space)
//
// The encoding lives here — not in the transfer layer — because it is a
// property of the object header itself: the collector copies it, the
// verifier audits it, and concurrent sender threads CAS it through the
// heap's atomic word operations.
const (
	// BaddrRelMask masks the relative-address field of a baddr word.
	BaddrRelMask    = (uint64(1) << 40) - 1
	baddrStreamMask = uint64(0xFFFF) << 40
	baddrPhaseShift = 56
)

// RelBias offsets all relative buffer addresses by one word so that relative
// address 0 can keep meaning null. Every in-flight relative address is
// therefore in [RelBias, flushed).
const RelBias = klass.WordSize

// ComposeBaddr packs a shuffle phase, stream ID and relative buffer address
// into a baddr word. A composed word is never zero: phases start at 1 and
// wrap back to 1, so a zero phase occurs only in a cleared word.
func ComposeBaddr(sid uint8, stream uint16, rel uint64) uint64 {
	return uint64(sid)<<baddrPhaseShift | uint64(stream)<<40 | rel&BaddrRelMask
}

// BaddrPhase extracts the shuffle phase ID of a baddr word.
func BaddrPhase(v uint64) uint8 { return uint8(v >> baddrPhaseShift) }

// BaddrStream extracts the stream/thread ID of a baddr word.
func BaddrStream(v uint64) uint16 { return uint16((v & baddrStreamMask) >> 40) }

// BaddrRel extracts the relative buffer address of a baddr word.
func BaddrRel(v uint64) uint64 { return v & BaddrRelMask }
