package heap

import (
	"bytes"
	"testing"
	"testing/quick"

	"skyway/internal/klass"
)

func testHeap() *Heap {
	return New(Config{
		EdenSize:     1 << 20,
		SurvivorSize: 64 << 10,
		OldSize:      1 << 20,
		BufferSize:   1 << 20,
		Layout:       klass.Layout{Baddr: true},
	})
}

func TestRegionsDisjointAndAligned(t *testing.T) {
	h := testHeap()
	regions := []*Region{&h.Eden, &h.From, &h.To, &h.Old, &h.Buffers}
	prevEnd := Addr(klass.WordSize)
	for i, r := range regions {
		if r.Start != prevEnd {
			t.Errorf("region %d starts at %#x, want %#x", i, uint64(r.Start), uint64(prevEnd))
		}
		if uint64(r.Start)%klass.WordSize != 0 {
			t.Errorf("region %d start unaligned", i)
		}
		prevEnd = r.End
	}
}

func TestNullIsNotAllocatable(t *testing.T) {
	h := testHeap()
	a := h.AllocYoung(16)
	if a == Null {
		t.Fatal("young alloc failed")
	}
	if a == 0 {
		t.Fatal("allocated the null address")
	}
}

func TestWordRoundTrip(t *testing.T) {
	h := testHeap()
	a := h.AllocYoung(32)
	h.StoreWord(a, 0xDEADBEEFCAFEBABE)
	if got := h.LoadWord(a); got != 0xDEADBEEFCAFEBABE {
		t.Errorf("LoadWord = %#x", got)
	}
}

func TestSubWordFields(t *testing.T) {
	h := testHeap()
	a := h.AllocYoung(64)
	// Pack 8 bytes into one word; they must not clobber each other.
	for i := uint32(0); i < 8; i++ {
		h.Store(a, 24+i, klass.Int8, uint64(0x10+i))
	}
	for i := uint32(0); i < 8; i++ {
		if got := h.Load(a, 24+i, klass.Int8); got != uint64(0x10+i) {
			t.Errorf("byte %d = %#x", i, got)
		}
	}
	h.Store(a, 32, klass.Int16, 0xBEEF)
	h.Store(a, 34, klass.Int16, 0xCAFE)
	h.Store(a, 36, klass.Int32, 0x12345678)
	if h.Load(a, 32, klass.Int16) != 0xBEEF || h.Load(a, 34, klass.Int16) != 0xCAFE {
		t.Error("int16 fields corrupted")
	}
	if h.Load(a, 36, klass.Int32) != 0x12345678 {
		t.Error("int32 field corrupted")
	}
}

// Property: storing at any (offset, kind) then loading returns the value
// truncated to the kind's width, and neighbouring bytes are untouched.
func TestStoreLoadQuick(t *testing.T) {
	h := testHeap()
	a := h.AllocYoung(128)
	kinds := []klass.Kind{klass.Int8, klass.Int16, klass.Int32, klass.Int64}
	f := func(slot uint8, kindSel uint8, v uint64) bool {
		kind := kinds[int(kindSel)%len(kinds)]
		sz := kind.Size()
		off := (uint32(slot) % (96 / sz)) * sz // aligned slot inside payload
		h.ZeroWords(a, 128)
		h.Store(a, off, kind, v)
		want := v
		switch sz {
		case 1:
			want &= 0xFF
		case 2:
			want &= 0xFFFF
		case 4:
			want &= 0xFFFFFFFF
		}
		if h.Load(a, off, kind) != want {
			return false
		}
		// All other bytes must be zero.
		var sum uint64
		for w := uint32(0); w < 128; w += 8 {
			sum |= h.LoadWord(a + Addr(w))
		}
		return sum == want<<((uint64(off)%8)*8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyOutCopyInRoundTrip(t *testing.T) {
	h := testHeap()
	a := h.AllocYoung(64)
	for i := uint32(0); i < 64; i++ {
		h.Store(a, i, klass.Int8, uint64(i*7+1))
	}
	buf := make([]byte, 64)
	h.CopyOut(a, 64, buf)
	b := h.AllocYoung(64)
	h.CopyIn(b, 64, buf)
	buf2 := make([]byte, 64)
	h.CopyOut(b, 64, buf2)
	if !bytes.Equal(buf, buf2) {
		t.Error("CopyOut/CopyIn not byte-identical")
	}
}

func TestMarkWordBits(t *testing.T) {
	h := testHeap()
	a := h.AllocYoung(32)
	h.SetMark(a, 0)
	if _, ok := h.HashOf(a); ok {
		t.Error("fresh object claims a hash")
	}
	h.SetHash(a, 0x7FFFABCD)
	if hv, ok := h.HashOf(a); !ok || hv != 0x7FFFABCD {
		t.Errorf("HashOf = %#x,%v", hv, ok)
	}
	h.SetAge(a, 3)
	h.SetMarked(a, true)
	if h.Age(a) != 3 || !h.Marked(a) {
		t.Error("age/mark bits wrong")
	}
	// Hash must survive age/mark mutation and transient-bit reset.
	m := ResetTransientMarkBits(h.Mark(a))
	h.SetMark(a, m)
	if hv, ok := h.HashOf(a); !ok || hv != 0x7FFFABCD {
		t.Error("hash lost by ResetTransientMarkBits")
	}
	if h.Marked(a) || h.Age(a) != 0 {
		t.Error("transient bits not reset")
	}
}

func TestForwarding(t *testing.T) {
	h := testHeap()
	a := h.AllocYoung(32)
	b := h.AllocYoung(32)
	h.SetMark(a, 0)
	if _, fwd := h.Forwarded(a); fwd {
		t.Error("fresh object claims forwarding")
	}
	h.SetForwarded(a, b)
	to, fwd := h.Forwarded(a)
	if !fwd || to != b {
		t.Errorf("Forwarded = %#x,%v", uint64(to), fwd)
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := testHeap()
	n := 0
	for h.AllocYoung(1024) != Null {
		n++
	}
	if n != (1<<20)/1024 {
		t.Errorf("allocated %d KiB chunks from a 1 MiB eden", n)
	}
}

func TestCardTable(t *testing.T) {
	h := testHeap()
	a := h.AllocOld(4096)
	if h.CardDirty(a) {
		t.Error("card dirty before any store")
	}
	h.DirtyCard(a + 600) // second card of the object
	if h.CardDirty(a) {
		t.Error("wrong card dirtied")
	}
	if !h.RangeDirty(a, 4096) {
		t.Error("RangeDirty missed the dirty card")
	}
	h.CleanCards(a, 4096)
	if h.RangeDirty(a, 4096) {
		t.Error("CleanCards left dirt")
	}
	h.DirtyRange(a, 4096)
	for off := uint32(0); off < 4096; off += CardSize {
		if !h.CardDirty(a + Addr(off)) {
			t.Errorf("card at +%d not dirty after DirtyRange", off)
		}
	}
}

func TestAtomicCas(t *testing.T) {
	h := testHeap()
	a := h.AllocYoung(32)
	h.StoreWord(a+16, 7)
	if h.CasWord(a+16, 8, 9) {
		t.Error("CAS succeeded with wrong expected value")
	}
	if !h.CasWord(a+16, 7, 9) {
		t.Error("CAS failed with right expected value")
	}
	if h.LoadWord(a+16) != 9 {
		t.Error("CAS did not store")
	}
}

func TestBufferFreeListReuse(t *testing.T) {
	h := testHeap()
	a := h.AllocBuffer(4096)
	b := h.AllocBuffer(4096)
	if a == Null || b == Null {
		t.Fatal("buffer allocs failed")
	}
	topBefore := h.Buffers.Top
	// Freeing the bump tail rewinds the top.
	h.FreeBufferRange(b, 4096)
	if h.Buffers.Top != topBefore-4096 {
		t.Error("tail free did not rewind the bump pointer")
	}
	b2 := h.AllocBuffer(4096)
	if b2 != b {
		t.Errorf("tail realloc got %#x, want %#x", uint64(b2), uint64(b))
	}
	// Freeing an interior chunk lists it; a smaller alloc carves it.
	h.FreeBufferRange(a, 4096)
	c := h.AllocBuffer(1024)
	if c != a {
		t.Errorf("first-fit alloc got %#x, want %#x", uint64(c), uint64(a))
	}
	d := h.AllocBuffer(3072)
	if d != a+1024 {
		t.Errorf("split remainder alloc got %#x, want %#x", uint64(d), uint64(a+1024))
	}
}

// checkBufInvariants asserts the buffer allocator's internal consistency:
// every free span lies inside buffer space, is non-empty, spans are mutually
// disjoint, and BufferUsed never exceeds the bump extent.
func checkBufInvariants(t *testing.T, h *Heap) {
	t.Helper()
	for i, s := range h.bufFree {
		if s.Start >= s.End {
			t.Fatalf("free span %d empty or inverted: [%#x, %#x)", i, uint64(s.Start), uint64(s.End))
		}
		if !h.Buffers.Contains(s.Start) || s.End > h.Buffers.Top {
			t.Fatalf("free span %d [%#x, %#x) outside allocated buffer space (top %#x)",
				i, uint64(s.Start), uint64(s.End), uint64(h.Buffers.Top))
		}
		for j, o := range h.bufFree[:i] {
			if s.Start < o.End && o.Start < s.End {
				t.Fatalf("free spans %d and %d overlap", i, j)
			}
		}
	}
	if h.BufferUsed() > h.Buffers.Used() {
		t.Fatalf("BufferUsed %d exceeds bump extent %d", h.BufferUsed(), h.Buffers.Used())
	}
}

// TestBufferInterleavedFreeAlloc drives the free-list through interleaved
// frees and allocations of different-sized chunks — the pattern a Skyway
// receiver produces when streams of different record sizes are freed out of
// order (§3.2 explicit free).
func TestBufferInterleavedFreeAlloc(t *testing.T) {
	h := testHeap()
	sizes := []uint32{512, 4096, 1024, 8192, 2048, 512, 4096, 1024}
	addrs := make([]Addr, len(sizes))
	for i, n := range sizes {
		addrs[i] = h.AllocBuffer(n)
		if addrs[i] == Null {
			t.Fatalf("alloc %d (%d bytes) failed", i, n)
		}
		checkBufInvariants(t, h)
	}
	// Free every other chunk (interior holes of mixed sizes).
	for i := 0; i < len(sizes); i += 2 {
		h.FreeBufferRange(addrs[i], sizes[i])
		checkBufInvariants(t, h)
	}
	used := h.BufferUsed()
	var freed uint64
	for i := 0; i < len(sizes); i += 2 {
		freed += uint64(sizes[i])
	}
	var total uint64
	for _, n := range sizes {
		total += uint64(n)
	}
	if used != total-freed {
		t.Fatalf("BufferUsed = %d, want %d", used, total-freed)
	}
	// Small allocations must be served out of the holes (first-fit), not
	// fresh bump space.
	topBefore := h.Buffers.Top
	for _, n := range []uint32{256, 256, 1024, 512} {
		if a := h.AllocBuffer(n); a == Null {
			t.Fatalf("hole alloc of %d failed", n)
		} else if a >= topBefore {
			t.Fatalf("alloc of %d bytes at %#x came from bump space, not a hole", n, uint64(a))
		}
		checkBufInvariants(t, h)
	}
	if h.Buffers.Top != topBefore {
		t.Fatal("hole-served allocations advanced the bump pointer")
	}
	// An allocation larger than any hole falls through to bump space.
	big := h.AllocBuffer(16384)
	if big == Null || big < topBefore {
		t.Fatalf("oversized alloc got %#x, want fresh bump space above %#x", uint64(big), uint64(topBefore))
	}
	checkBufInvariants(t, h)
}

// TestBufferReuseBeforeExhaustion frees and reallocates same-sized chunks in
// a loop sized to overflow buffer space many times over — the allocator must
// recycle rather than exhaust (the receive path of a long run frees each
// stream's chunks after consumption).
func TestBufferReuseBeforeExhaustion(t *testing.T) {
	h := testHeap() // 1 MiB of buffer space
	const chunk = 64 << 10
	rounds := int(h.Buffers.Free()/chunk) * 8
	for i := 0; i < rounds; i++ {
		a := h.AllocBuffer(chunk)
		if a == Null {
			t.Fatalf("round %d: buffer space exhausted despite frees", i)
		}
		// Hold two chunks at once so frees are not pure tail rewinds.
		b := h.AllocBuffer(chunk)
		if b == Null {
			t.Fatalf("round %d: second alloc failed", i)
		}
		h.FreeBufferRange(a, chunk)
		h.FreeBufferRange(b, chunk)
		checkBufInvariants(t, h)
	}
	if hw := h.BufferHighWater(); hw != 2*chunk {
		t.Errorf("BufferHighWater = %d, want %d (two live chunks at peak)", hw, 2*chunk)
	}
}

// TestBufferHighWater pins the high-water semantics: it tracks peak live
// bytes, not the bump extent, and never decreases on frees.
func TestBufferHighWater(t *testing.T) {
	h := testHeap()
	if h.BufferHighWater() != 0 {
		t.Fatal("fresh heap has nonzero buffer high-water mark")
	}
	a := h.AllocBuffer(8192)
	b := h.AllocBuffer(4096)
	if got := h.BufferHighWater(); got != 8192+4096 {
		t.Fatalf("high water = %d, want %d", got, 8192+4096)
	}
	h.FreeBufferRange(b, 4096)
	h.FreeBufferRange(a, 8192)
	if got := h.BufferHighWater(); got != 8192+4096 {
		t.Fatalf("high water dropped to %d after frees", got)
	}
	if used := h.BufferUsed(); used != 0 {
		t.Fatalf("BufferUsed = %d after freeing everything", used)
	}
	// Reusing a hole keeps the mark until live bytes exceed the old peak.
	h.AllocBuffer(4096)
	if got := h.BufferHighWater(); got != 8192+4096 {
		t.Fatalf("high water moved to %d on hole reuse below the peak", got)
	}
}

func TestFreeBufferOutsideSpacePanics(t *testing.T) {
	h := testHeap()
	defer func() {
		if recover() == nil {
			t.Error("freeing non-buffer range did not panic")
		}
	}()
	h.FreeBufferRange(h.Old.Start, 64)
}
