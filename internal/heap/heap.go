// Package heap implements the simulated managed heap: a word-addressed slab
// with the 64-bit object layout of the paper's Figure 6 (mark word, klass
// word, Skyway's baddr word, array length, padded payload), generational
// regions (eden, two survivor spaces, old generation, and a pinned buffer
// space for Skyway input buffers), and a card table.
//
// Addresses are byte offsets into the slab; every object is 8-byte aligned
// and address 0 is the null reference. The slab is stored as []uint64 so
// that the Skyway writer can CAS baddr words through sync/atomic without
// unsafe pointer arithmetic; the one deliberate unsafe construction in the
// package (view.go) reinterprets word ranges as byte slices on little-endian
// hosts so bulk transfers are single memcpys instead of per-word loops.
package heap

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"skyway/internal/klass"
)

// Addr is a byte address within a Heap. 0 is the null reference.
type Addr uint64

// Null is the null reference.
const Null Addr = 0

// Add returns the address n bytes past a. Code outside the heap and core
// layers must derive addresses through Add (or the typed accessors) rather
// than raw Addr arithmetic, so that every address computation is auditable —
// the skywayvet addrarith analyzer enforces this.
func (a Addr) Add(n uint32) Addr { return a + Addr(n) }

// CardSize is the card-table granularity in bytes, matching the 512-byte
// cards of HotSpot's Parallel Scavenge collector.
const CardSize = 512

// Config sizes the heap regions, in bytes. All sizes are rounded up to a
// word multiple.
type Config struct {
	// EdenSize is the young-generation allocation buffer.
	EdenSize uint64
	// SurvivorSize sizes each of the two survivor semispaces.
	SurvivorSize uint64
	// OldSize is the tenured generation for promoted objects.
	OldSize uint64
	// BufferSize is the pinned tenured space that holds Skyway input
	// buffers (§4.3: input buffers live in the old generation and are
	// never moved or reclaimed until explicitly freed).
	BufferSize uint64
	// Layout selects the object header geometry.
	Layout klass.Layout
}

// DefaultConfig returns a modest heap suitable for tests and examples.
func DefaultConfig() Config {
	return Config{
		EdenSize:     8 << 20,
		SurvivorSize: 1 << 20,
		OldSize:      32 << 20,
		BufferSize:   16 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
}

// Region is a contiguous allocation area with a bump pointer.
type Region struct {
	Start Addr
	End   Addr
	Top   Addr
}

// Contains reports whether a lies within the region bounds.
func (r *Region) Contains(a Addr) bool { return a >= r.Start && a < r.End }

// Used returns the number of allocated bytes.
func (r *Region) Used() uint64 { return uint64(r.Top - r.Start) }

// Free returns the number of unallocated bytes.
func (r *Region) Free() uint64 { return uint64(r.End - r.Top) }

// Reset empties the region.
func (r *Region) Reset() { r.Top = r.Start }

// Alloc bump-allocates size bytes, returning Null when the region is full.
// The collector allocates survivor copies through this directly.
func (r *Region) Alloc(size uint64) Addr {
	if uint64(r.End-r.Top) < size {
		return Null
	}
	a := r.Top
	r.Top += Addr(size)
	return a
}

// Heap is one simulated managed heap. It is owned by a single runtime; only
// the atomic word operations (used for Skyway's concurrent baddr updates)
// are safe for concurrent use.
type Heap struct {
	words  []uint64
	layout klass.Layout

	Eden     Region
	From     Region // survivor from-space
	To       Region // survivor to-space
	Old      Region
	Buffers  Region // pinned Skyway input-buffer space
	cards    []byte // dirty card map covering the whole slab
	sizeEstB uint64

	// bufFree holds explicitly freed input-buffer chunks for reuse —
	// §3.2: "Skyway does not reuse an old input buffer unless the
	// developer explicitly frees the buffer". First-fit; chunk sizes are
	// uniform enough in practice that fragmentation stays bounded.
	bufFree []Region

	// bufHighWater is the peak of BufferUsed over the heap's lifetime —
	// the §5.2 memory-overhead figure for input-buffer space.
	bufHighWater uint64
}

// New builds a heap from cfg.
func New(cfg Config) *Heap {
	round := func(n uint64) uint64 { return (n + klass.WordSize - 1) &^ uint64(klass.WordSize-1) }
	eden := round(cfg.EdenSize)
	surv := round(cfg.SurvivorSize)
	old := round(cfg.OldSize)
	buf := round(cfg.BufferSize)
	// Address 0 is reserved for null, so the slab starts one word in.
	total := uint64(klass.WordSize) + eden + 2*surv + old + buf
	h := &Heap{
		words:  make([]uint64, total/klass.WordSize),
		layout: cfg.Layout,
		cards:  make([]byte, (total+CardSize-1)/CardSize),
	}
	cursor := Addr(klass.WordSize)
	carve := func(n uint64) Region {
		r := Region{Start: cursor, End: cursor + Addr(n), Top: cursor}
		cursor += Addr(n)
		return r
	}
	h.Eden = carve(eden)
	h.From = carve(surv)
	h.To = carve(surv)
	h.Old = carve(old)
	h.Buffers = carve(buf)
	h.sizeEstB = total
	return h
}

// Layout returns the header geometry of this heap.
func (h *Heap) Layout() klass.Layout { return h.layout }

// TotalBytes returns the slab size in bytes.
func (h *Heap) TotalBytes() uint64 { return h.sizeEstB }

// UsedBytes returns the sum of allocated bytes across regions.
func (h *Heap) UsedBytes() uint64 {
	return h.Eden.Used() + h.From.Used() + h.Old.Used() + h.Buffers.Used()
}

// --- word and sub-word access -------------------------------------------

func (h *Heap) check(a Addr) uint64 {
	i := uint64(a) >> 3
	if a == Null || uint64(a)&7 != 0 || i >= uint64(len(h.words)) {
		panic(fmt.Sprintf("heap: bad word address %#x", uint64(a)))
	}
	return i
}

// LoadWord reads the 8-byte word at a (a must be word-aligned).
func (h *Heap) LoadWord(a Addr) uint64 { return h.words[h.check(a)] }

// StoreWord writes the 8-byte word at a.
func (h *Heap) StoreWord(a Addr, v uint64) { h.words[h.check(a)] = v }

// AtomicLoadWord atomically reads the word at a.
func (h *Heap) AtomicLoadWord(a Addr) uint64 { return atomic.LoadUint64(&h.words[h.check(a)]) }

// AtomicStoreWord atomically writes the word at a. Required for words that
// concurrent sender threads may CAS (baddr words): mixing plain stores with
// CAS on the same word is a data race.
func (h *Heap) AtomicStoreWord(a Addr, v uint64) { atomic.StoreUint64(&h.words[h.check(a)], v) }

// CasWord performs a compare-and-swap on the word at a. Skyway uses this to
// claim baddr words when multiple sender threads race on a shared object
// (§4.2 "Support for Threads").
func (h *Heap) CasWord(a Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&h.words[h.check(a)], old, new)
}

// Load reads a field of the given kind at byte offset a+off. The returned
// value holds the raw bits zero-extended to 64 bits. Sub-word fields are
// little-endian within their word, so CopyOut/CopyIn round-trip exactly.
func (h *Heap) Load(a Addr, off uint32, k klass.Kind) uint64 {
	ba := uint64(a) + uint64(off)
	sz := uint64(k.Size())
	w := h.words[ba>>3]
	shift := (ba & 7) * 8
	switch sz {
	case 8:
		return w
	case 4:
		return (w >> shift) & 0xFFFFFFFF
	case 2:
		return (w >> shift) & 0xFFFF
	case 1:
		return (w >> shift) & 0xFF
	}
	panic("heap: invalid field kind")
}

// Store writes a field of the given kind at byte offset a+off.
func (h *Heap) Store(a Addr, off uint32, k klass.Kind, v uint64) {
	ba := uint64(a) + uint64(off)
	sz := uint64(k.Size())
	idx := ba >> 3
	shift := (ba & 7) * 8
	switch sz {
	case 8:
		h.words[idx] = v
		return
	case 4:
		mask := uint64(0xFFFFFFFF) << shift
		h.words[idx] = h.words[idx]&^mask | (v&0xFFFFFFFF)<<shift
		return
	case 2:
		mask := uint64(0xFFFF) << shift
		h.words[idx] = h.words[idx]&^mask | (v&0xFFFF)<<shift
		return
	case 1:
		mask := uint64(0xFF) << shift
		h.words[idx] = h.words[idx]&^mask | (v&0xFF)<<shift
		return
	}
	panic("heap: invalid field kind")
}

// CopyOut serializes n bytes starting at a into dst, little-endian. n and a
// must be word-aligned: object images always are. This is the "transfer the
// entirety of each object" memcpy at the core of Skyway's sender — a real
// memcpy when the host byte order permits a byte view, a per-word encoding
// loop otherwise.
func (h *Heap) CopyOut(a Addr, n uint32, dst []byte) {
	if uint32(len(dst)) < n {
		panic("heap: CopyOut destination too small")
	}
	if src := h.ByteView(a, n); src != nil {
		copy(dst, src)
		return
	}
	wi := uint64(a) >> 3
	for i := uint32(0); i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], h.words[wi])
		wi++
	}
}

// CopyIn deserializes n bytes from src into the heap at a.
func (h *Heap) CopyIn(a Addr, n uint32, src []byte) {
	if uint32(len(src)) < n {
		panic("heap: CopyIn source too small")
	}
	if dst := h.ByteView(a, n); dst != nil {
		copy(dst, src[:n])
		return
	}
	wi := uint64(a) >> 3
	for i := uint32(0); i < n; i += 8 {
		h.words[wi] = binary.LittleEndian.Uint64(src[i:])
		wi++
	}
}

// CopyWords copies n bytes (word multiple) from src to dst within the heap.
// Regions may not overlap.
func (h *Heap) CopyWords(dst, src Addr, n uint32) {
	d := uint64(dst) >> 3
	s := uint64(src) >> 3
	copy(h.words[d:d+uint64(n)/8], h.words[s:s+uint64(n)/8])
}

// ZeroWords clears n bytes (word multiple) starting at a.
func (h *Heap) ZeroWords(a Addr, n uint32) {
	i := uint64(a) >> 3
	for end := i + uint64(n)/8; i < end; i++ {
		h.words[i] = 0
	}
}

// --- allocation -----------------------------------------------------------

// AllocYoung bump-allocates size bytes (word multiple) in eden, returning
// Null when eden is exhausted; the runtime then triggers a scavenge.
func (h *Heap) AllocYoung(size uint32) Addr { return h.Eden.Alloc(uint64(size)) }

// AllocOld bump-allocates in the old generation.
func (h *Heap) AllocOld(size uint32) Addr { return h.Old.Alloc(uint64(size)) }

// AllocBuffer allocates in the pinned buffer space used for Skyway input
// buffers. Buffer space is never compacted; chunks return to a free list
// only on an explicit free (§3.2) and are reused first-fit.
func (h *Heap) AllocBuffer(size uint32) Addr {
	for i := range h.bufFree {
		span := &h.bufFree[i]
		if uint64(span.End-span.Start) >= uint64(size) {
			a := span.Start
			span.Start += Addr(size)
			if span.Start == span.End {
				h.bufFree = append(h.bufFree[:i], h.bufFree[i+1:]...)
			}
			h.noteBufferUse()
			return a
		}
	}
	a := h.Buffers.Alloc(uint64(size))
	if a != Null {
		h.noteBufferUse()
	}
	return a
}

// BufferUsed returns the bytes currently live in buffer space: the bump
// extent minus the explicitly freed spans awaiting reuse.
func (h *Heap) BufferUsed() uint64 {
	used := h.Buffers.Used()
	for _, span := range h.bufFree {
		used -= uint64(span.End - span.Start)
	}
	return used
}

// BufferHighWater returns the peak of BufferUsed over the heap's lifetime.
func (h *Heap) BufferHighWater() uint64 { return h.bufHighWater }

func (h *Heap) noteBufferUse() {
	if u := h.BufferUsed(); u > h.bufHighWater {
		h.bufHighWater = u
	}
}

// FreeBufferRange returns an explicitly freed input-buffer chunk to the
// allocator for reuse.
func (h *Heap) FreeBufferRange(a Addr, size uint32) {
	if !h.Buffers.Contains(a) {
		panic(fmt.Sprintf("heap: freeing non-buffer range %#x", uint64(a)))
	}
	end := a + Addr(size)
	// Reclaim trivially when the chunk is the bump tail; otherwise list it.
	if end == h.Buffers.Top {
		h.Buffers.Top = a
		return
	}
	h.bufFree = append(h.bufFree, Region{Start: a, End: end, Top: a})
}

// InYoung reports whether a is in eden or a survivor space.
func (h *Heap) InYoung(a Addr) bool {
	return h.Eden.Contains(a) || h.From.Contains(a) || h.To.Contains(a)
}

// InOld reports whether a is in the old generation proper.
func (h *Heap) InOld(a Addr) bool { return h.Old.Contains(a) }

// InBuffers reports whether a is in the pinned buffer space.
func (h *Heap) InBuffers(a Addr) bool { return h.Buffers.Contains(a) }

// --- card table ------------------------------------------------------------

// DirtyCard marks the card containing a. The runtime's reference write
// barrier calls this for stores into tenured space so the scavenger can find
// old-to-young pointers, and the Skyway receiver calls it for every card of
// a freshly absolutized input buffer (§4.3 "Interaction with GC").
func (h *Heap) DirtyCard(a Addr) { h.cards[uint64(a)/CardSize] = 1 }

// DirtyRange marks every card overlapping [a, a+n).
func (h *Heap) DirtyRange(a Addr, n uint32) {
	for c := uint64(a) / CardSize; c <= (uint64(a)+uint64(n)-1)/CardSize; c++ {
		h.cards[c] = 1
	}
}

// CardDirty reports whether the card containing a is dirty.
func (h *Heap) CardDirty(a Addr) bool { return h.cards[uint64(a)/CardSize] != 0 }

// RangeDirty reports whether any card overlapping [a, a+n) is dirty.
func (h *Heap) RangeDirty(a Addr, n uint32) bool {
	for c := uint64(a) / CardSize; c <= (uint64(a)+uint64(n)-1)/CardSize; c++ {
		if h.cards[c] != 0 {
			return true
		}
	}
	return false
}

// CleanCards clears every card overlapping [a, a+n).
func (h *Heap) CleanCards(a Addr, n uint64) {
	if n == 0 {
		return
	}
	for c := uint64(a) / CardSize; c <= (uint64(a)+n-1)/CardSize; c++ {
		h.cards[c] = 0
	}
}
