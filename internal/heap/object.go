package heap

import "skyway/internal/klass"

// Mark word layout (Figure 6's "mark" field):
//
//	bits 0..1   lock state
//	bit  2      GC mark (used by the full collector)
//	bit  3      hashed flag (the identity hash has been computed)
//	bits 4..7   object age (scavenge survival count)
//	bits 8..39  cached 32-bit identity hashcode
//	bits 62..63 forwarding tag during a scavenge
//
// Skyway copies the mark word verbatim (after resetting lock/GC/age bits),
// which is what preserves hashcodes across the transfer and lets hash-based
// structures be reused without rehashing (§1, §4.2 "Header Update").
const (
	markLockMask   = 0x3
	markGCBit      = 1 << 2
	markHashedBit  = 1 << 3
	markAgeShift   = 4
	markAgeMask    = uint64(0xF) << markAgeShift
	markHashShift  = 8
	markHashMask   = uint64(0xFFFFFFFF) << markHashShift
	markFwdTag     = uint64(3) << 62
	markFwdTagMask = uint64(3) << 62
)

// Mark returns the mark word of the object at a.
func (h *Heap) Mark(a Addr) uint64 { return h.LoadWord(a + klass.OffMark) }

// SetMark stores the mark word of the object at a.
func (h *Heap) SetMark(a Addr, m uint64) { h.StoreWord(a+klass.OffMark, m) }

// KlassWord returns the klass word of the object at a. In a live object it
// holds the klass LID; inside a Skyway buffer it holds the global type ID.
func (h *Heap) KlassWord(a Addr) uint64 { return h.LoadWord(a + klass.OffKlass) }

// SetKlassWord stores the klass word of the object at a.
func (h *Heap) SetKlassWord(a Addr, v uint64) { h.StoreWord(a+klass.OffKlass, v) }

// Baddr returns the Skyway baddr header word. Panics when the layout has no
// baddr word.
func (h *Heap) Baddr(a Addr) uint64 {
	return h.LoadWord(a + Addr(h.layout.OffBaddr()))
}

// SetBaddr stores the Skyway baddr header word.
func (h *Heap) SetBaddr(a Addr, v uint64) {
	h.StoreWord(a+Addr(h.layout.OffBaddr()), v)
}

// AtomicBaddr atomically reads the Skyway baddr header word. Baddr words are
// shared between concurrent sender threads (which CAS them), so any read
// that can race a transfer must go through this instead of Baddr.
func (h *Heap) AtomicBaddr(a Addr) uint64 {
	return h.AtomicLoadWord(a + Addr(h.layout.OffBaddr()))
}

// AtomicSetBaddr atomically stores the Skyway baddr header word.
func (h *Heap) AtomicSetBaddr(a Addr, v uint64) {
	h.AtomicStoreWord(a+Addr(h.layout.OffBaddr()), v)
}

// CasBaddr compare-and-swaps the baddr word; used when concurrent sender
// threads race to claim a shared object.
func (h *Heap) CasBaddr(a Addr, old, new uint64) bool {
	return h.CasWord(a+Addr(h.layout.OffBaddr()), old, new)
}

// ArrayLen returns the element count of the array object at a.
func (h *Heap) ArrayLen(a Addr) int {
	return int(h.LoadWord(a + Addr(h.layout.OffArrayLen())))
}

// SetArrayLen stores the element count of the array object at a.
func (h *Heap) SetArrayLen(a Addr, n int) {
	h.StoreWord(a+Addr(h.layout.OffArrayLen()), uint64(n))
}

// ElemOffset returns the byte offset (from the object start) of element i of
// an array with the given element kind.
func (h *Heap) ElemOffset(k klass.Kind, i int) uint32 {
	return h.layout.ArrayHeaderSize() + uint32(i)*k.Size()
}

// Marked reports the GC mark bit.
func (h *Heap) Marked(a Addr) bool { return h.Mark(a)&markGCBit != 0 }

// SetMarked sets or clears the GC mark bit.
func (h *Heap) SetMarked(a Addr, v bool) {
	m := h.Mark(a)
	if v {
		m |= markGCBit
	} else {
		m &^= markGCBit
	}
	h.SetMark(a, m)
}

// Age returns the scavenge survival count of the object at a.
func (h *Heap) Age(a Addr) int { return int((h.Mark(a) & markAgeMask) >> markAgeShift) }

// SetAge stores the scavenge survival count.
func (h *Heap) SetAge(a Addr, age int) {
	if age > 15 {
		age = 15
	}
	h.SetMark(a, h.Mark(a)&^markAgeMask|uint64(age)<<markAgeShift)
}

// HashOf returns the cached identity hashcode and whether one has been
// computed for the object at a.
func (h *Heap) HashOf(a Addr) (uint32, bool) {
	m := h.Mark(a)
	return uint32((m & markHashMask) >> markHashShift), m&markHashedBit != 0
}

// SetHash caches an identity hashcode in the mark word.
func (h *Heap) SetHash(a Addr, hash uint32) {
	m := h.Mark(a)
	m = m&^markHashMask | uint64(hash)<<markHashShift | markHashedBit
	h.SetMark(a, m)
}

// MarkHash extracts the cached identity hashcode from a raw mark word —
// HashOf for object images that live outside the word slab (arena segments).
func MarkHash(m uint64) (uint32, bool) {
	return uint32((m & markHashMask) >> markHashShift), m&markHashedBit != 0
}

// MarkWithHash returns m with the identity hashcode cached — SetHash for
// out-of-slab object images.
func MarkWithHash(m uint64, hash uint32) uint64 {
	return m&^markHashMask | uint64(hash)<<markHashShift | markHashedBit
}

// ResetTransientMarkBits returns m with the lock, GC and age bits cleared
// while preserving the hashcode — Algorithm 2's RESETMARKBITS applied to the
// buffer clone's header.
func ResetTransientMarkBits(m uint64) uint64 {
	return m &^ (markLockMask | markGCBit | markAgeMask | markFwdTagMask)
}

// Forwarded reports whether the mark word at a carries a scavenge forwarding
// pointer, and if so returns the forwarded address.
func (h *Heap) Forwarded(a Addr) (Addr, bool) {
	m := h.Mark(a)
	if m&markFwdTagMask == markFwdTag {
		return Addr(m &^ markFwdTagMask), true
	}
	return Null, false
}

// SetForwarded overwrites the mark word at a with a forwarding pointer. The
// object's real header must already have been copied to the new location.
func (h *Heap) SetForwarded(a, to Addr) {
	h.SetMark(a, uint64(to)|markFwdTag)
}
