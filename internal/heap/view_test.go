package heap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"skyway/internal/klass"
)

// TestByteViewRoundTrip pins the contract the decode fast path relies on:
// the byte view aliases the slab with exactly the little-endian encoding
// CopyOut defines, in both directions.
func TestByteViewRoundTrip(t *testing.T) {
	h := New(DefaultConfig())
	const n = 64
	a := h.AllocBuffer(n)
	if a == Null {
		t.Fatal("AllocBuffer failed")
	}

	v := h.ByteView(a, n)
	if v == nil {
		t.Skip("no byte view on this host (big-endian)")
	}
	if len(v) != n {
		t.Fatalf("view length %d, want %d", len(v), n)
	}

	// Write through the view; words must read back as little-endian.
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	copy(v, src)
	for w := 0; w < n/8; w++ {
		want := binary.LittleEndian.Uint64(src[w*8:])
		if got := h.LoadWord(a.Add(uint32(w * 8))); got != want {
			t.Fatalf("word %d: %#x, want %#x", w, got, want)
		}
	}

	// CopyOut must produce the same bytes the view shows, with the view
	// disabled (portable word loop) and enabled (memcpy path).
	outFast := make([]byte, n)
	h.CopyOut(a, n, outFast)
	prev := SetByteView(false)
	outSlow := make([]byte, n)
	h.CopyOut(a, n, outSlow)
	SetByteView(prev)
	if !bytes.Equal(outFast, src) || !bytes.Equal(outSlow, src) {
		t.Fatalf("CopyOut mismatch:\nfast %x\nslow %x\nwant %x", outFast, outSlow, src)
	}

	// And CopyIn through both paths must land identical slab words.
	for i := range src {
		src[i] = byte(200 - i)
	}
	h.CopyIn(a, n, src)
	fastWords := make([]uint64, n/8)
	for w := range fastWords {
		fastWords[w] = h.LoadWord(a.Add(uint32(w * 8)))
	}
	h.ZeroWords(a, n)
	prev = SetByteView(false)
	h.CopyIn(a, n, src)
	SetByteView(prev)
	for w := range fastWords {
		if got := h.LoadWord(a.Add(uint32(w * 8))); got != fastWords[w] {
			t.Fatalf("CopyIn word %d: fast %#x, slow %#x", w, fastWords[w], got)
		}
	}
}

// TestByteViewBounds pins the panic contract: a view is as bounds-checked as
// the word accessors it bypasses.
func TestByteViewBounds(t *testing.T) {
	h := New(DefaultConfig())
	a := h.AllocBuffer(64)
	if h.ByteView(a, 0) != nil {
		t.Fatal("zero-length view should be nil")
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	if hostLittleEndian && byteViewEnabled {
		mustPanic("unaligned addr", func() { h.ByteView(a+1, 8) })
		mustPanic("unaligned len", func() { h.ByteView(a, klass.WordSize-1) })
		mustPanic("null", func() { h.ByteView(Null, 8) })
		mustPanic("past slab", func() { h.ByteView(a, 1<<30) })
	}
}
