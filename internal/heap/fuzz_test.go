package heap

import "testing"

// FuzzBaddrRoundTrip pins the baddr bit layout (§4.2): phase, stream, and
// relative address must survive compose/decompose for every input, and a
// recomposed word must be bit-identical — the CAS claim protocol depends on
// exact equality of these words.
func FuzzBaddrRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint16(0), uint64(0))
	f.Add(uint8(1), uint16(1), uint64(RelBias))
	f.Add(uint8(255), uint16(65535), BaddrRelMask)
	f.Add(uint8(3), uint16(9), uint64(1)<<40)     // rel overflowing its field
	f.Add(uint8(7), uint16(512), ^uint64(0))      // all bits set
	f.Fuzz(func(t *testing.T, sid uint8, stream uint16, rel uint64) {
		v := ComposeBaddr(sid, stream, rel)
		if got := BaddrPhase(v); got != sid {
			t.Fatalf("phase %d decoded as %d from %#x", sid, got, v)
		}
		if got := BaddrStream(v); got != stream {
			t.Fatalf("stream %d decoded as %d from %#x", stream, got, v)
		}
		if got := BaddrRel(v); got != rel&BaddrRelMask {
			t.Fatalf("rel %#x decoded as %#x from %#x", rel&BaddrRelMask, got, v)
		}
		if v2 := ComposeBaddr(BaddrPhase(v), BaddrStream(v), BaddrRel(v)); v2 != v {
			t.Fatalf("recompose of %#x gives %#x", v, v2)
		}
	})
}
