package heap

import (
	"encoding/binary"

	"skyway/internal/klass"
)

// Arena handle encoding. Segments staged into an off-heap arena region stay
// relativized — their reference slots still hold the sender's baddr-relative
// addresses — and the runtime reads them through tagged addresses instead of
// absolutizing the whole chunk up front:
//
//	bit  63      arena tag (managed heap addresses never set it: the word
//	             slab tops out far below 2^63 bytes)
//	bits 40..62  arena region ID (23 bits)
//	bits  0..39  biased relative address within the region's shuffle stream,
//	             the same 5-byte field a baddr word carries
//
// A tagged address is NOT a heap.Addr in disguise: passing one to the word
// slab fails loudly in Heap.check (the index is astronomically out of
// range). The vm accessor layer routes tagged addresses to the arena and
// only there; the collector skips them entirely, which is the whole point —
// arena-resident object graphs cost the GC nothing.
const (
	// ArenaTag marks a tagged arena address.
	ArenaTag = uint64(1) << 63
	// ArenaRegionMask masks the region-ID field (after shifting).
	ArenaRegionMask = (uint64(1) << 23) - 1
	arenaRegionShift = 40
)

// IsArenaAddr reports whether a is a tagged arena address.
func IsArenaAddr(a Addr) bool { return uint64(a)&ArenaTag != 0 }

// ComposeArenaAddr packs a region ID and a biased relative address into a
// tagged arena address. rel keeps the baddr bias: relative address 0 still
// means null, so a composed handle always has rel >= RelBias.
func ComposeArenaAddr(region uint32, rel uint64) Addr {
	return Addr(ArenaTag | uint64(region&uint32(ArenaRegionMask))<<arenaRegionShift | rel&BaddrRelMask)
}

// ArenaRegionOf extracts the region ID of a tagged arena address.
func ArenaRegionOf(a Addr) uint32 {
	return uint32(uint64(a) >> arenaRegionShift & ArenaRegionMask)
}

// ArenaRelOf extracts the biased relative address of a tagged arena address.
func ArenaRelOf(a Addr) uint64 { return uint64(a) & BaddrRelMask }

// --- bounds-checked byte-image accessors -----------------------------------
//
// LoadBytes/StoreBytes are the arena-side siblings of Heap.Load/Heap.Store:
// field accessors over a raw little-endian object image. Wire images are
// little-endian by construction (CopyOut), so reading them in place is
// bit-identical to staging into the word slab and calling Heap.Load. Unlike
// the heap variants — whose bounds are implied by the slab — these take an
// explicit image and panic on any access that would leave it; the arena
// resolves a handle to exactly the bytes of one region segment, so an
// out-of-bounds offset can only mean a validation bug, never silent memory
// disclosure.

// LoadBytes reads a field of the given kind at byte offset off of the object
// image b, zero-extended to 64 bits.
func LoadBytes(b []byte, off uint32, k klass.Kind) uint64 {
	end := uint64(off) + uint64(k.Size())
	if end > uint64(len(b)) || k.Size() == 0 {
		panic("heap: arena field access out of bounds")
	}
	switch k.Size() {
	case 8:
		return binary.LittleEndian.Uint64(b[off:])
	case 4:
		return uint64(binary.LittleEndian.Uint32(b[off:]))
	case 2:
		return uint64(binary.LittleEndian.Uint16(b[off:]))
	default:
		return uint64(b[off])
	}
}

// StoreBytes writes a field of the given kind at byte offset off of the
// object image b.
func StoreBytes(b []byte, off uint32, k klass.Kind, v uint64) {
	end := uint64(off) + uint64(k.Size())
	if end > uint64(len(b)) || k.Size() == 0 {
		panic("heap: arena field access out of bounds")
	}
	switch k.Size() {
	case 8:
		binary.LittleEndian.PutUint64(b[off:], v)
	case 4:
		binary.LittleEndian.PutUint32(b[off:], uint32(v))
	case 2:
		binary.LittleEndian.PutUint16(b[off:], uint16(v))
	default:
		b[off] = byte(v)
	}
}
