package heap

import (
	"fmt"
	"unsafe"

	"skyway/internal/klass"
)

// The slab is []uint64 so baddr words can be CASed through sync/atomic, but
// the wire format is defined in bytes: every segment copy used to go through
// a per-word encoding/binary loop. On little-endian hosts the slab's in-
// memory bytes already ARE the wire bytes (sub-word fields are little-endian
// within their word by construction), so the one unsafe construction below —
// reinterpreting a word range as a byte slice — turns both CopyIn and
// CopyOut into a single memcpy and lets the reader receive wire bytes
// directly into a pinned chunk with zero staging copies. Big-endian hosts
// (none in practice for Go's first-class ports) simply never get a view and
// fall back to the word loop, which is the portable definition of the
// format, not a different one.

// hostLittleEndian reports whether native byte order matches the wire's
// little-endian slab encoding.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// byteViewEnabled lets benchmarks force the portable copy path to measure
// the double-copy baseline; see SetByteView.
var byteViewEnabled = true

// SetByteView toggles the direct byte-view fast path, returning the previous
// setting. It exists for benchmarks (cmd/speedbench's "decode-copy" figure
// measures the pre-view double-copy baseline) and tests that need the
// portable word-loop path exercised on little-endian hosts. Not safe to
// toggle while other goroutines touch the heap.
func SetByteView(enabled bool) bool {
	prev := byteViewEnabled
	byteViewEnabled = enabled
	return prev
}

// ByteView returns the raw byte image of the n bytes at a, aliasing the
// slab: writes through the returned slice are heap writes. a and n must be
// word-aligned and in bounds (the caller's chunk was just allocated, so this
// panics on violation exactly like the word accessors). Returns nil when the
// host byte order does not match the slab encoding (or the view is disabled
// for benchmarking); callers must fall back to CopyIn/CopyOut.
func (h *Heap) ByteView(a Addr, n uint32) []byte {
	if !byteViewEnabled || !hostLittleEndian || n == 0 {
		return nil
	}
	if uint64(a)&7 != 0 || n%klass.WordSize != 0 {
		panic(fmt.Sprintf("heap: unaligned byte view [%#x, +%d)", uint64(a), n))
	}
	i := uint64(a) >> 3
	end := i + uint64(n)>>3
	if a == Null || end > uint64(len(h.words)) {
		panic(fmt.Sprintf("heap: byte view [%#x, +%d) outside slab", uint64(a), n))
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&h.words[i])), n)
}
