package arena

// Blob is a single standalone off-heap allocation: the transport layer's
// unit of arena-side block storage. Serialized shuffle blocks parked in a
// block store between Put and Drop are bulk data the collector (managed or
// Go) has no business scanning; a Blob keeps them in their own anonymous
// mapping, freed as a unit when the block is dropped.
type Blob struct {
	b      []byte
	mapped bool
}

// NewBlob stores data in a fresh Blob. With offHeap set the bytes are
// copied into an anonymous mapping (falling back to the Go slice when the
// platform or the mapping refuses); otherwise the slice is adopted as is.
func NewBlob(data []byte, offHeap bool) *Blob {
	if offHeap && len(data) > 0 {
		if m, err := mmapAnon(len(data)); err == nil {
			copy(m, data)
			return &Blob{b: m, mapped: true}
		}
	}
	return &Blob{b: data}
}

// Bytes returns the stored block. The view is invalidated by Free.
func (b *Blob) Bytes() []byte { return b.b }

// Free releases the blob's mapping. The blob must not be read afterwards.
func (b *Blob) Free() {
	if b.mapped {
		munmap(b.b)
	}
	b.b = nil
	b.mapped = false
}
