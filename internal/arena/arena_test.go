package arena

import (
	"strings"
	"testing"

	"skyway/internal/heap"
)

// stage maps, fills, and commits one segment at startRel.
func stage(t *testing.T, r *Region, startRel uint64, data []byte) {
	t.Helper()
	b, err := r.Stage(uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	copy(b, data)
	r.Commit(startRel, b)
}

func TestEnabled(t *testing.T) {
	for env, want := range map[string]bool{"": false, "0": false, "1": true, "on": true} {
		if got := Enabled(env); got != want {
			t.Errorf("Enabled(%q) = %v, want %v", env, got, want)
		}
	}
}

func TestRegionResolveBounds(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion()
	defer r.Release()
	stage(t, r, 8, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	stage(t, r, 16, []byte{9, 10, 11, 12, 13, 14, 15, 16})

	// Exact hits, including across the segment boundary in the table.
	if b, err := r.Resolve(8, 8); err != nil || b[0] != 1 || b[7] != 8 {
		t.Fatalf("Resolve(8, 8) = %v, %v", b, err)
	}
	if b, err := r.Resolve(20, 4); err != nil || b[0] != 13 {
		t.Fatalf("Resolve(20, 4) = %v, %v", b, err)
	}

	// Below the first segment: structured error naming the bound.
	if _, err := r.Resolve(4, 4); err == nil || !strings.Contains(err.Error(), "below region") {
		t.Fatalf("Resolve below region = %v, want below-region error", err)
	}
	// Overrunning a segment end must fail even though the next mapping
	// exists — a read never crosses from one segment into another.
	if _, err := r.Resolve(12, 8); err == nil || !strings.Contains(err.Error(), "overrun") {
		t.Fatalf("Resolve crossing segment end = %v, want overrun error", err)
	}
	// Past the last segment.
	if _, err := r.Resolve(24, 1); err == nil {
		t.Fatal("Resolve past the last segment succeeded")
	}
}

func TestRegionRefcountAndRetire(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion()
	stage(t, r, 8, make([]byte, 64))
	r.Retain() // second decoder

	r.Release()
	if r.Retired() {
		t.Fatal("region retired while a reference was outstanding")
	}
	if _, err := r.Resolve(8, 8); err != nil {
		t.Fatalf("resolve with one reference left: %v", err)
	}
	r.Release()
	if !r.Retired() {
		t.Fatal("region survived its last release")
	}
	if s.Regions() != 0 {
		t.Fatalf("space still tracks %d regions after retirement", s.Regions())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Resolve on a retired region did not panic")
		}
	}()
	r.Resolve(8, 8)
}

func TestRetireThroughSkipsUnboundRegions(t *testing.T) {
	s := NewSpace()
	bound := s.NewRegion()
	late := s.NewRegion()
	broadcast := s.NewRegion()
	bound.BindEpoch(3)
	late.BindEpoch(7)
	// broadcast stays at epoch 0: exempt from the stage backstop.

	s.RetireThrough(5)
	if !bound.Retired() {
		t.Error("region bound to epoch 3 survived RetireThrough(5)")
	}
	if late.Retired() {
		t.Error("region bound to epoch 7 retired by RetireThrough(5)")
	}
	if broadcast.Retired() {
		t.Error("unbound broadcast region retired by the stage backstop")
	}
	late.Release()
	broadcast.Release()
}

func TestSetPromotedFirstWins(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion()
	winner, loser := heap.Addr(0x100), heap.Addr(0x200)
	var freed []heap.Addr
	record := func(a heap.Addr) func() { return func() { freed = append(freed, a) } }

	if got := r.SetPromoted(8, winner, record(winner)); got != winner {
		t.Fatalf("first SetPromoted returned %#x, want %#x", got, winner)
	}
	// A racing promotion of the same root loses: the existing address wins
	// and the caller is told to free its copy itself.
	if got := r.SetPromoted(8, loser, record(loser)); got != winner {
		t.Fatalf("racing SetPromoted returned %#x, want established %#x", got, winner)
	}
	if got := r.PromotedAddr(8); got != winner {
		t.Fatalf("PromotedAddr = %#x, want %#x", got, winner)
	}
	if r.Promotions() != 1 {
		t.Fatalf("Promotions() = %d, want 1", r.Promotions())
	}
	if got := r.PromotedAddr(16); got != heap.Null {
		t.Fatalf("PromotedAddr of never-promoted rel = %#x, want Null", got)
	}

	// Retirement runs only the winning entry's free hook.
	r.Release()
	if len(freed) != 1 || freed[0] != winner {
		t.Fatalf("retire freed %v, want exactly the winner %#x", freed, winner)
	}
}

func TestMustRegionPanicsAfterRetire(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion()
	id := r.ID()
	if s.MustRegion(id) != r {
		t.Fatal("MustRegion did not return the live region")
	}
	r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegion on a retired ID did not panic")
		}
	}()
	s.MustRegion(id)
}

func TestSpaceBytesAcrossRegions(t *testing.T) {
	s := NewSpace()
	a, b := s.NewRegion(), s.NewRegion()
	stage(t, a, 8, make([]byte, 100))
	stage(t, b, 8, make([]byte, 28))
	if got := s.Bytes(); got != 128 {
		t.Fatalf("Space.Bytes() = %d, want 128", got)
	}
	a.Release()
	if got := s.Bytes(); got != 28 {
		t.Fatalf("Space.Bytes() after retiring one region = %d, want 28", got)
	}
	b.Release()
}

func TestBlobOffHeapRoundTrip(t *testing.T) {
	data := []byte("shuffle block payload")
	for _, offHeap := range []bool{true, false} {
		src := append([]byte(nil), data...)
		bl := NewBlob(src, offHeap)
		if string(bl.Bytes()) != string(data) {
			t.Fatalf("offHeap=%v: Blob holds %q, want %q", offHeap, bl.Bytes(), data)
		}
		if offHeap {
			// The mapping is a copy: mutating the source must not show
			// through, or a recycled sender buffer would corrupt the block.
			src[0] = 'X'
			if bl.Bytes()[0] != 's' {
				t.Fatalf("off-heap blob aliases its source slice")
			}
		}
		bl.Free()
		if bl.Bytes() != nil {
			t.Fatalf("offHeap=%v: Bytes() non-nil after Free", offHeap)
		}
		bl.Free() // double free is a no-op, not a crash
	}
	empty := NewBlob(nil, true)
	if len(empty.Bytes()) != 0 {
		t.Fatal("empty blob is not empty")
	}
	empty.Free()
}
