//go:build !unix

package arena

// Fallback for platforms without anonymous mmap: plain Go allocations. The
// lifecycle (and the use-after-retire discipline) is identical; only the
// "outside the runtime heap" property is approximated.
func mmapAnon(n int) ([]byte, error) { return make([]byte, n), nil }

func munmap(b []byte) {}
