// Package arena provides mmap-backed off-heap regions for received Skyway
// segments. Chunks staged here stay relativized — no absolutization scan —
// and the managed collector never sees them: region memory is outside the
// word slab, outside the pinned-range root set, outside card scanning. The
// GC cost of holding gigabytes of received-but-unmutated shuffle data is
// therefore zero, which is the receive-side half of the GC-or-serialization
// squeeze the arena exists to escape.
//
// Lifecycle: a region is created per decoder stream, accumulates the
// stream's segments, and is reclaimed as a unit. Reclamation is
// refcounted — each open decoder holds one reference, released by Free —
// with a stage-epoch backstop: internal/dataflow binds shuffle-stage
// regions to the shuffle sequence number and force-retires them when the
// stage retires, so a leaked decoder cannot pin a region forever. Regions
// never bound to a stage (broadcast streams, whose decoded records stay
// live for the whole job) are exempt from the backstop and live until
// their refcount drains.
package arena

import (
	"fmt"
	"sync"
	"sync/atomic"

	"skyway/internal/fault"
	"skyway/internal/heap"
	"skyway/internal/obs"
)

var (
	ctrRegions   = obs.NewCounter("skyway_arena_regions_total", "Arena regions created for received streams.")
	ctrReclaimed = obs.NewCounter("skyway_arena_regions_reclaimed_total", "Arena regions retired and unmapped.")
	ctrStaged    = obs.NewCounter("skyway_arena_bytes_staged_total", "Segment bytes staged into arena regions.")
	ctrPromoted  = obs.NewCounter("skyway_arena_promotions_total", "Arena object graph roots promoted into the managed heap on mutation.")
)

// Enabled reports whether the arena decode path is selected by environment
// (the SKYWAY_ARENA knob). Codecs consult it as a default; tests flip the
// explicit per-codec flag instead.
func Enabled(env string) bool { return env != "" && env != "0" }

// segment is one committed wire segment: size bytes of relativized object
// images whose biased relative addresses span [startRel, startRel+size).
type segment struct {
	startRel uint64
	b        []byte
}

// Region holds the staged segments of one received stream. All methods are
// safe for concurrent use; reads after retirement panic rather than touch
// unmapped memory.
//
// The read path (Resolve, PromotedAddr) sits under every field access of an
// arena-resident object, so it must not take locks: the segment table and
// the promotion map are published copy-on-write through atomic pointers,
// and mu only serializes the writers (Commit, SetPromoted, BindEpoch,
// retire) that build the next copy.
type Region struct {
	id    uint32
	space *Space

	// segs is the sorted, append-only segment table; readers load the
	// current snapshot with one atomic load.
	segs atomic.Pointer[[]segment]
	// promoted maps a root object's biased relative address to its mutated
	// copy in the managed heap's pinned buffer space (non-moving, so the
	// recorded address stays valid); each entry's free hook returns the
	// copy's storage when the region retires. nil until the first promotion,
	// so the common all-reads case is one pointer load.
	promoted atomic.Pointer[map[uint64]promotion]

	mu    sync.Mutex
	bytes uint64 // guarded by mu
	// epoch is the shuffle sequence number this region was bound to, or 0
	// for unbound (broadcast) regions exempt from the stage backstop.
	// Guarded by mu.
	epoch uint64

	refs    atomic.Int32
	retired atomic.Bool
}

// ID returns the region's arena-address region ID.
func (r *Region) ID() uint32 { return r.id }

// Bytes returns the total staged segment bytes resident in the region.
func (r *Region) Bytes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytes
}

// Retired reports whether the region has been reclaimed.
func (r *Region) Retired() bool { return r.retired.Load() }

// Stage maps a fresh n-byte buffer for an incoming segment. The buffer is
// not yet readable through handles: the decoder fills and validates it,
// then either Commits it into the region's address table or Discards it.
func (r *Region) Stage(n uint32) ([]byte, error) {
	if err := fault.Inject(fault.ArenaMapFail); err != nil {
		return nil, err
	}
	b, err := mmapAnon(int(n))
	if err != nil {
		return nil, fmt.Errorf("arena: map %d bytes: %w", n, err)
	}
	return b, nil
}

// Commit publishes a staged, validated segment at biased relative address
// startRel. Segments arrive in stream order, so the table stays sorted; the
// new table is published as a fresh copy so concurrent Resolve calls never
// observe a partially appended slice.
func (r *Region) Commit(startRel uint64, b []byte) {
	r.mu.Lock()
	var old []segment
	if p := r.segs.Load(); p != nil {
		old = *p
	}
	next := make([]segment, len(old)+1)
	copy(next, old)
	next[len(old)] = segment{startRel: startRel, b: b}
	r.segs.Store(&next)
	r.bytes += uint64(len(b))
	r.mu.Unlock()
	ctrStaged.Add(int64(len(b)))
}

// Discard unmaps a staged buffer that failed validation.
func (r *Region) Discard(b []byte) { munmap(b) }

// Resolve returns the n bytes at biased relative address rel as a view into
// the region's mapping, or an error naming the violated bound. It never
// returns memory outside the segment containing rel: an access that would
// cross a segment end fails rather than spill into an adjacent mapping.
func (r *Region) Resolve(rel uint64, n uint32) ([]byte, error) {
	if r.retired.Load() {
		panic(fmt.Sprintf("arena: use of retired region %d (rel %#x)", r.id, rel))
	}
	var segs []segment
	if p := r.segs.Load(); p != nil {
		segs = *p
	}
	// Binary search the sorted segment table for the segment holding rel.
	lo, hi := 0, len(segs)
	for lo < hi {
		mid := (lo + hi) / 2
		if segs[mid].startRel <= rel {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, fmt.Errorf("arena: relative address %#x below region %d", rel, r.id)
	}
	s := segs[lo-1]
	off := rel - s.startRel
	if off+uint64(n) > uint64(len(s.b)) {
		return nil, fmt.Errorf("arena: %d bytes at relative address %#x overrun segment [%#x,%#x) of region %d",
			n, rel, s.startRel, s.startRel+uint64(len(s.b)), r.id)
	}
	return s.b[off : off+uint64(n) : off+uint64(n)], nil
}

// promotion is one promoted object: its managed (pinned, non-moving)
// address and the hook that frees that storage at region retirement.
type promotion struct {
	addr heap.Addr
	free func()
}

// SetPromoted records the promoted copy of the object at biased relative
// address rel, returning the winning address: rel's existing copy if a
// concurrent promotion got there first (the caller's copy is then garbage
// and the caller must free it), addr otherwise.
func (r *Region) SetPromoted(rel uint64, addr heap.Addr, free func()) heap.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	var old map[uint64]promotion
	if p := r.promoted.Load(); p != nil {
		old = *p
	}
	if prev, ok := old[rel]; ok {
		return prev.addr
	}
	next := make(map[uint64]promotion, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[rel] = promotion{addr: addr, free: free}
	r.promoted.Store(&next)
	ctrPromoted.Inc()
	return addr
}

// PromotedAddr returns the managed address of the promoted copy of the
// object at rel, or heap.Null if the object was never promoted.
func (r *Region) PromotedAddr(rel uint64) heap.Addr {
	p := r.promoted.Load()
	if p == nil {
		return heap.Null
	}
	if e, ok := (*p)[rel]; ok {
		return e.addr
	}
	return heap.Null
}

// Promotions returns the number of object roots promoted out of the region.
func (r *Region) Promotions() int {
	if p := r.promoted.Load(); p != nil {
		return len(*p)
	}
	return 0
}

// BindEpoch ties the region to a shuffle stage sequence number, making it
// eligible for the stage-retirement backstop. Broadcast regions are never
// bound.
func (r *Region) BindEpoch(epoch uint64) {
	r.mu.Lock()
	r.epoch = epoch
	r.mu.Unlock()
}

// Retain adds a reference (one per open decoder).
func (r *Region) Retain() { r.refs.Add(1) }

// Release drops a reference; the last release retires the region.
func (r *Region) Release() {
	if r.refs.Add(-1) <= 0 {
		r.retire()
	}
}

// ForceRetire reclaims the region regardless of outstanding references —
// the stage-epoch backstop, and the fault injector's premature-free hook.
// Subsequent handle reads panic loudly instead of reading freed memory.
func (r *Region) ForceRetire() { r.retire() }

func (r *Region) retire() {
	if r.retired.Swap(true) {
		return
	}
	r.mu.Lock()
	var segs []segment
	if p := r.segs.Swap(nil); p != nil {
		segs = *p
	}
	var promoted map[uint64]promotion
	if p := r.promoted.Swap(nil); p != nil {
		promoted = *p
	}
	r.bytes = 0
	r.mu.Unlock()
	for _, s := range segs {
		munmap(s.b)
	}
	// Promoted copies die with the region: by the time a stage retires it,
	// the consuming workload has copied out whatever it keeps.
	for _, p := range promoted {
		if p.free != nil {
			p.free()
		}
	}
	if r.space != nil {
		r.space.drop(r.id)
	}
	ctrReclaimed.Inc()
}

// Space is the per-runtime registry of live regions; tagged arena
// addresses resolve through it. The lookup sits under every arena field
// access, so the region table is published copy-on-write: readers take one
// atomic load, mu serializes the rare writers (region create/retire).
type Space struct {
	mu      sync.Mutex
	regions atomic.Pointer[map[uint32]*Region]
	nextID  uint32 // guarded by mu
}

// NewSpace returns an empty arena space.
func NewSpace() *Space {
	s := &Space{}
	empty := make(map[uint32]*Region)
	s.regions.Store(&empty)
	return s
}

// NewRegion creates and registers a fresh region with one reference held
// by the caller.
func (s *Space) NewRegion() *Region {
	s.mu.Lock()
	s.nextID++
	if uint64(s.nextID) > heap.ArenaRegionMask {
		s.mu.Unlock()
		panic("arena: region IDs exhausted")
	}
	r := &Region{id: s.nextID, space: s}
	r.refs.Store(1)
	s.publish(func(m map[uint32]*Region) { m[r.id] = r })
	s.mu.Unlock()
	ctrRegions.Inc()
	return r
}

// publish replaces the region table with a copy transformed by mutate.
// Callers hold s.mu.
func (s *Space) publish(mutate func(map[uint32]*Region)) {
	old := *s.regions.Load()
	next := make(map[uint32]*Region, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	mutate(next)
	s.regions.Store(&next)
}

// Region returns the live region with the given ID, or nil if it was
// retired or never existed.
func (s *Space) Region(id uint32) *Region {
	return (*s.regions.Load())[id]
}

// MustRegion is Region for callers holding a tagged address: a missing
// region means the handle outlived its stage, and reading through it must
// fail loudly.
func (s *Space) MustRegion(id uint32) *Region {
	if r := s.Region(id); r != nil {
		return r
	}
	panic(fmt.Sprintf("arena: use of retired region %d", id))
}

// Bytes returns the total staged bytes across live regions.
func (s *Space) Bytes() uint64 {
	var n uint64
	for _, r := range *s.regions.Load() {
		n += r.Bytes()
	}
	return n
}

// Regions returns the number of live regions.
func (s *Space) Regions() int {
	return len(*s.regions.Load())
}

// RetireThrough force-retires every region bound to a stage epoch <= epoch.
// Unbound regions (broadcast) are untouched. This is the reclamation edge
// the paper ties to explicit buffer management (§3.2): when a shuffle stage
// retires, the whole region goes at once, no per-object work.
func (s *Space) RetireThrough(epoch uint64) {
	var doomed []*Region
	for _, r := range *s.regions.Load() {
		r.mu.Lock()
		bound := r.epoch != 0 && r.epoch <= epoch
		r.mu.Unlock()
		if bound {
			doomed = append(doomed, r)
		}
	}
	for _, r := range doomed {
		r.ForceRetire()
	}
}

func (s *Space) drop(id uint32) {
	s.mu.Lock()
	s.publish(func(m map[uint32]*Region) { delete(m, id) })
	s.mu.Unlock()
}
