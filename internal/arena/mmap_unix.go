//go:build unix

package arena

import "syscall"

// mmapAnon maps n bytes of anonymous private memory — genuinely outside the
// Go heap, so the runtime GC never scans it and RSS is returned to the OS at
// munmap, mirroring how a real off-heap arena behaves under a JVM.
func mmapAnon(n int) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	return syscall.Mmap(-1, 0, n, syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_ANON|syscall.MAP_PRIVATE)
}

func munmap(b []byte) {
	if len(b) == 0 {
		return
	}
	// Unmapping can only fail on a corrupted mapping; the region is being
	// retired either way, so there is nothing useful to do with the error.
	_ = syscall.Munmap(b)
}
