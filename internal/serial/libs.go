package serial

// The library lineup reproduces the design space of Figure 7: one codec per
// design point rather than the paper's 90 near-duplicate libraries (see
// DESIGN.md, substitutions). Speed ordering follows from the mechanisms:
// schema-compiled > manual > cached-accessor registered > reflective with
// descriptors > name-per-object.

// JavaCodec mimics java.io.ObjectOutputStream: full class descriptors with
// field names and superclass chains, reflective field access by name, fixed
// integer widths, and receiver-side rehashing of hash structures.
func JavaCodec() Codec {
	return NewCodec(Strategy{
		LibName:      "java",
		Type:         TypeFullDescriptor,
		Access:       AccessReflective,
		Varint:       false,
		RehashOnRead: true,
	})
}

// KryoCodec mimics Kryo's default FieldSerializer: registered integer type
// IDs, cached field accessors, varint integers, rehash on read.
func KryoCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "kryo",
		Type:         TypeRegisteredID,
		Access:       AccessCached,
		Varint:       true,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// KryoManualCodec mimics Kryo with hand-written per-class serializers — the
// strongest Kryo configuration in Figure 7 (kryo-manual).
func KryoManualCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "kryo-manual",
		Type:         TypeRegisteredID,
		Access:       AccessGenerated,
		Varint:       true,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// KryoOptCodec mimics kryo-opt: registered IDs and cached accessors with
// fixed-width encoding (faster, larger).
func KryoOptCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "kryo-opt",
		Type:         TypeRegisteredID,
		Access:       AccessCached,
		Varint:       false,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// ColferCodec mimics Colfer's compiler-generated marshalers — the closest
// contender to Skyway in Figure 7: schema-compiled access, registered IDs,
// fixed-width primitives with bulk array copies.
func ColferCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "colfer",
		Type:         TypeRegisteredID,
		Access:       AccessGenerated,
		Varint:       false,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// ProtostuffCodec mimics protostuff's schema-generated codecs with varint
// wire format.
func ProtostuffCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "protostuff",
		Type:         TypeRegisteredID,
		Access:       AccessGenerated,
		Varint:       true,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// ProtostuffRuntimeCodec mimics protostuff-runtime: schema derived at run
// time, so field access is cached-reflective rather than generated.
func ProtostuffRuntimeCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "protostuff-runtime",
		Type:         TypeRegisteredID,
		Access:       AccessCached,
		Varint:       true,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// DatakernelCodec mimics datakernel's bytecode-generated serializers:
// generated access, fixed width.
func DatakernelCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "datakernel",
		Type:         TypeRegisteredID,
		Access:       AccessGenerated,
		Varint:       false,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// AvroGenericCodec mimics avro-generic: schema resolved per record through
// reflective-by-name access, varint encoding.
func AvroGenericCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "avro-generic",
		Type:         TypeRegisteredID,
		Access:       AccessReflective,
		Varint:       true,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// ThriftCodec mimics thrift: generated access with per-field tags; we model
// it as cached access + varint.
func ThriftCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "thrift",
		Type:         TypeRegisteredID,
		Access:       AccessCached,
		Varint:       true,
		RehashOnRead: true,
		Reg:          reg,
	})
}

// JsonLikeCodec mimics name-string-per-object text-ish formats (the slow
// tail of Figure 7): class name with every object, reflective access.
func JsonLikeCodec() Codec {
	return NewCodec(Strategy{
		LibName:      "json-databind",
		Type:         TypeNameString,
		Access:       AccessReflective,
		Varint:       false,
		RehashOnRead: true,
	})
}

// FSTCodec mimics fst-flat-pre: Java-compatible class descriptors but with
// generated (preregistered) field access.
func FSTCodec() Codec {
	return NewCodec(Strategy{
		LibName:      "fst-flat-pre",
		Type:         TypeFullDescriptor,
		Access:       AccessGenerated,
		Varint:       false,
		RehashOnRead: true,
	})
}

// SmileCodec mimics smile/jackson databind: binary JSON with class names on
// the wire and cached property accessors, varint-packed numbers.
func SmileCodec() Codec {
	return NewCodec(Strategy{
		LibName:      "smile-databind",
		Type:         TypeNameString,
		Access:       AccessCached,
		Varint:       true,
		RehashOnRead: true,
	})
}

// CBORCodec mimics cbor/jackson databind: binary JSON with class names and
// cached accessors, fixed-width numbers.
func CBORCodec() Codec {
	return NewCodec(Strategy{
		LibName:      "cbor-databind",
		Type:         TypeNameString,
		Access:       AccessCached,
		Varint:       false,
		RehashOnRead: true,
	})
}

// WoblyCodec mimics wobly: registered integer IDs but runtime-reflective
// field access with fixed-width encoding.
func WoblyCodec(reg *Registration) Codec {
	return NewCodec(Strategy{
		LibName:      "wobly",
		Type:         TypeRegisteredID,
		Access:       AccessReflective,
		Varint:       false,
		RehashOnRead: true,
		Reg:          reg,
	})
}
