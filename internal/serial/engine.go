package serial

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/vm"
)

// TypeRep selects how a codec represents object types on the wire — the
// axis §1 problem (2) is about.
type TypeRep uint8

const (
	// TypeFullDescriptor writes a Java-serializer-style class descriptor
	// the first time a class appears in a stream: class name, every field
	// name with its signature, and the full superclass chain; later
	// occurrences use a descriptor back reference. Spark-style usage
	// opens many short streams, so descriptors recur per batch.
	TypeFullDescriptor TypeRep = iota
	// TypeNameString writes the class name string with every object —
	// the worst case the paper attributes 50-byte outputs for 1-byte
	// fields to.
	TypeNameString
	// TypeRegisteredID writes a varint ID from a manual Registration
	// table (Kryo, Colfer, Protostuff).
	TypeRegisteredID
)

// FieldAccess selects how a codec reads and writes object fields — the
// §1 problem (1) axis.
type FieldAccess uint8

const (
	// AccessReflective resolves every field by name through the klass's
	// string-keyed lookup for every object, like java.io's reflective
	// Reflection.getField/setField path.
	AccessReflective FieldAccess = iota
	// AccessCached iterates a precomputed accessor list (Kryo's
	// FieldSerializer after caching Field objects).
	AccessCached
	// AccessGenerated behaves like hand-written per-class functions:
	// accessor list plus bulk word copies for primitive array payloads
	// (Kryo-manual, Colfer's generated code, Protostuff schemas).
	AccessGenerated
)

// Strategy configures the serialization engine to mimic one library.
type Strategy struct {
	LibName string
	Type    TypeRep
	Access  FieldAccess
	// Varint zig-zag encodes integers (Kryo/Colfer/Protostuff); fixed
	// width otherwise (Java).
	Varint bool
	// RehashOnRead rebuilds hash-based structures after deserialization,
	// which general-purpose serializers must do because identity hashes
	// are not preserved (§1, §2.1).
	RehashOnRead bool
	// Reg is required when Type == TypeRegisteredID.
	Reg *Registration
}

// NewCodec builds a Codec from a strategy.
func NewCodec(s Strategy) Codec {
	if s.Type == TypeRegisteredID && s.Reg == nil {
		panic("serial: " + s.LibName + ": registered-ID codec without a Registration")
	}
	return &engineCodec{s: s}
}

type engineCodec struct{ s Strategy }

func (c *engineCodec) Name() string { return c.s.LibName }

func (c *engineCodec) NewEncoder(rt *vm.Runtime, w io.Writer) Encoder {
	cw := &countingWriter{w: w}
	return &engineEncoder{
		s:       c.s,
		rt:      rt,
		cw:      cw,
		w:       bufio.NewWriterSize(cw, 8<<10),
		handles: make(map[heap.Addr]uint64),
		descs:   make(map[int32]uint64),
	}
}

func (c *engineCodec) NewDecoder(rt *vm.Runtime, r io.Reader) Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 8<<10)
	}
	return &engineDecoder{
		s:     c.s,
		rt:    rt,
		r:     br,
		descs: make(map[uint64]*klass.Klass),
	}
}

// Wire tags.
const (
	tagNull    = 0
	tagBackref = 1
	tagObject  = 2

	typeTagDesc    = 0 // inline descriptor follows
	typeTagDescRef = 1 // back reference to an earlier descriptor
)

// --- encoder -----------------------------------------------------------------

type engineEncoder struct {
	s  Strategy
	rt *vm.Runtime
	cw *countingWriter
	w  *bufio.Writer

	handles    map[heap.Addr]uint64
	nextHandle uint64
	descs      map[int32]uint64 // klass LID -> descriptor handle
	nextDesc   uint64

	scratch [binary.MaxVarintLen64]byte
	// bulk is the reusable staging buffer for the schema-compiled
	// primitive-array fast path (used only when the heap can't hand out a
	// direct byte view); it grows to the largest array seen and lives as
	// long as the stream, so steady-state encoding allocates nothing per
	// array.
	bulk []byte
}

func (e *engineEncoder) Bytes() int64  { return e.cw.n + int64(e.w.Buffered()) }
func (e *engineEncoder) Flush() error  { return e.w.Flush() }
func (e *engineEncoder) u8(v byte)     { e.w.WriteByte(v) }
func (e *engineEncoder) uvar(v uint64) { e.w.Write(e.scratch[:binary.PutUvarint(e.scratch[:], v)]) }

func (e *engineEncoder) str(s string) {
	e.uvar(uint64(len(s)))
	e.w.WriteString(s)
}

func (e *engineEncoder) fixed(v uint64, size uint32) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.w.Write(b[8-size:])
}

// Write serializes the graph rooted at root. Back-reference handles are
// scoped to one root graph (Kryo's per-writeObject reset); class
// descriptors persist for the life of the stream.
func (e *engineEncoder) Write(root heap.Addr) error {
	clear(e.handles)
	e.nextHandle = 0
	return e.writeRef(root)
}

func (e *engineEncoder) writeRef(o heap.Addr) error {
	if o == heap.Null {
		e.u8(tagNull)
		return nil
	}
	if h, ok := e.handles[o]; ok {
		e.u8(tagBackref)
		e.uvar(h)
		return nil
	}
	e.u8(tagObject)
	e.handles[o] = e.nextHandle
	e.nextHandle++

	rt := e.rt
	k := rt.KlassOf(o)
	if err := e.writeType(k); err != nil {
		return err
	}
	if k.IsArray {
		n := rt.Heap.ArrayLen(o)
		e.uvar(uint64(n))
		if k.Elem == klass.Ref {
			for i := 0; i < n; i++ {
				if err := e.writeRef(rt.ArrayGetRef(o, i)); err != nil {
					return err
				}
			}
			return nil
		}
		return e.writePrimArray(o, k, n)
	}
	return e.writeFields(o, k)
}

func (e *engineEncoder) writePrimArray(o heap.Addr, k *klass.Klass, n int) error {
	es := k.ElemSize()
	base := e.rt.Heap.Layout().ArrayHeaderSize()
	if e.s.Access == AccessGenerated && !e.s.Varint {
		// Bulk copy path of schema-compiled serializers. When the heap can
		// expose the payload words directly (little-endian hosts) the array
		// bytes go straight from the slab into the stream writer — no
		// staging buffer at all; otherwise they stage through the reusable
		// e.bulk scratch.
		total := uint32(n) * es
		if total == 0 {
			return nil
		}
		pad := klass.Pad(total)
		if v := e.rt.Heap.ByteView(o.Add(base), pad); v != nil {
			e.w.Write(v[:total])
			return nil
		}
		if cap(e.bulk) < int(pad) {
			e.bulk = make([]byte, pad)
		}
		buf := e.bulk[:pad]
		e.rt.Heap.CopyOut(o.Add(base), pad, buf)
		e.w.Write(buf[:total])
		return nil
	}
	for i := 0; i < n; i++ {
		v := e.rt.Heap.Load(o, base+uint32(i)*es, k.Elem)
		e.writePrim(v, k.Elem)
	}
	return nil
}

func (e *engineEncoder) writePrim(raw uint64, kind klass.Kind) {
	if e.s.Varint {
		switch kind {
		case klass.Int32:
			e.uvar(zigzag(int64(int32(raw))))
			return
		case klass.Int64:
			e.uvar(zigzag(int64(raw)))
			return
		case klass.Int16:
			e.uvar(zigzag(int64(int16(raw))))
			return
		}
	}
	e.fixed(raw, kind.Size())
}

func (e *engineEncoder) writeFields(o heap.Addr, k *klass.Klass) error {
	switch e.s.Access {
	case AccessReflective:
		// Resolve every field through the name-keyed reflective lookup,
		// exactly the per-object cost §1 problem (1) describes.
		for i := range k.Fields {
			if k.Fields[i].Transient {
				continue
			}
			f := k.FieldByName(k.Fields[i].Name)
			if f == nil {
				return fmt.Errorf("serial: reflective lookup of %s.%s failed", k.Name, k.Fields[i].Name)
			}
			if err := e.writeFieldValue(o, f); err != nil {
				return err
			}
		}
	default:
		for i := range k.Fields {
			if k.Fields[i].Transient {
				continue
			}
			if err := e.writeFieldValue(o, &k.Fields[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *engineEncoder) writeFieldValue(o heap.Addr, f *klass.Field) error {
	if f.Kind == klass.Ref {
		return e.writeRef(e.rt.GetRef(o, f))
	}
	raw := e.rt.Heap.Load(o, f.Offset, f.Kind)
	if e.s.Access == AccessReflective {
		// Reflective Field.get boxes the primitive.
		boxField(raw)
	}
	e.writePrim(raw, f.Kind)
	return nil
}

func (e *engineEncoder) writeType(k *klass.Klass) error {
	switch e.s.Type {
	case TypeRegisteredID:
		id, ok := e.s.Reg.IDOf(k.Name)
		if !ok {
			return fmt.Errorf("serial: %s: class %s is not registered", e.s.LibName, k.Name)
		}
		e.uvar(uint64(id))
		return nil
	case TypeNameString:
		e.str(k.Name)
		return nil
	default: // TypeFullDescriptor
		if h, ok := e.descs[k.LID]; ok {
			e.u8(typeTagDescRef)
			e.uvar(h)
			return nil
		}
		e.u8(typeTagDesc)
		e.descs[k.LID] = e.nextDesc
		e.nextDesc++
		e.writeDescriptor(k)
		return nil
	}
}

// writeDescriptor emits the Java-style class description: the class name,
// every declared field's name and signature, and recursively the entire
// superclass chain down to the root — the metadata §2.2 blames for the Java
// serializer's read I/O blow-up.
func (e *engineEncoder) writeDescriptor(k *klass.Klass) {
	e.str(k.Name)
	if k.IsArray {
		e.u8(1)
		e.u8(byte(k.Elem))
		e.str(k.ElemClass)
		return
	}
	e.u8(0)
	own := 0
	for i := range k.Fields {
		if k.Fields[i].DeclaredBy == k.Name && !k.Fields[i].Transient {
			own++
		}
	}
	e.uvar(uint64(own))
	for i := range k.Fields {
		f := &k.Fields[i]
		if f.DeclaredBy != k.Name || f.Transient {
			continue
		}
		e.str(f.Name)
		e.u8(byte(f.Kind))
		if f.Kind == klass.Ref {
			e.str(f.Class)
		}
	}
	if k.Super != nil {
		e.u8(1)
		e.writeDescriptor(k.Super)
	} else {
		e.u8(0)
	}
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// boxSink keeps boxed field values reachable so the allocations below are
// real. JVM reflective field access boxes every primitive (Integer.valueOf
// and friends) and that garbage is a large share of reflection's cost; the
// reflective baselines reproduce it with one true allocation per field.
// Atomic because encoders for different executors may box concurrently.
var boxSink atomic.Pointer[uint64]

func boxField(v uint64) {
	b := new(uint64)
	*b = v
	boxSink.Store(b)
}

// --- decoder -----------------------------------------------------------------

type engineDecoder struct {
	s  Strategy
	rt *vm.Runtime
	r  *bufio.Reader

	handleTab []*gc.Handle
	descs     map[uint64]*klass.Klass
	nextDesc  uint64
	rehash    []*gc.Handle // completed hash maps awaiting rehash

	objects uint64
	// bulk mirrors engineEncoder.bulk: the reusable primitive-array staging
	// buffer for hosts where the heap can't be filled in place.
	bulk []byte
}

func (d *engineDecoder) Objects() uint64 { return d.objects }

// Read reconstructs one root graph. All intermediate objects are held via
// GC handles so allocation-triggered collections cannot invalidate them;
// handles are released before returning.
func (d *engineDecoder) Read() (heap.Addr, error) {
	if _, err := d.r.Peek(1); err != nil {
		return heap.Null, err // io.EOF at stream end
	}
	h, err := d.readRef()
	defer d.releaseAll()
	if err != nil {
		return heap.Null, err
	}
	// Rebuild hash structures whose key hashes changed (fresh identity
	// hashes on this runtime) — the receiver-side rehashing cost Skyway
	// eliminates.
	if d.s.RehashOnRead {
		for _, mh := range d.rehash {
			if err := d.rt.HashMapRehash(mh.Addr()); err != nil {
				return heap.Null, err
			}
		}
	}
	d.rehash = d.rehash[:0]
	if h == nil {
		return heap.Null, nil
	}
	return h.Addr(), nil
}

func (d *engineDecoder) releaseAll() {
	for _, h := range d.handleTab {
		h.Release()
	}
	d.handleTab = d.handleTab[:0]
}

func (d *engineDecoder) u8() (byte, error) { return d.r.ReadByte() }

func (d *engineDecoder) uvar() (uint64, error) { return binary.ReadUvarint(d.r) }

func (d *engineDecoder) str() (string, error) {
	n, err := d.uvar()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("serial: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *engineDecoder) fixed(size uint32) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[8-size:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

func (d *engineDecoder) readPrim(kind klass.Kind) (uint64, error) {
	if d.s.Varint {
		switch kind {
		case klass.Int16, klass.Int32, klass.Int64:
			u, err := d.uvar()
			if err != nil {
				return 0, err
			}
			return uint64(unzigzag(u)), nil
		}
	}
	return d.fixed(kind.Size())
}

// readRef returns a handle to the decoded object, or nil for null.
func (d *engineDecoder) readRef() (*gc.Handle, error) {
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNull:
		return nil, nil
	case tagBackref:
		h, err := d.uvar()
		if err != nil {
			return nil, err
		}
		if h >= uint64(len(d.handleTab)) {
			return nil, fmt.Errorf("serial: bad back reference %d", h)
		}
		return d.handleTab[h], nil
	case tagObject:
		return d.readObject()
	default:
		return nil, fmt.Errorf("serial: bad tag %d", tag)
	}
}

func (d *engineDecoder) readObject() (*gc.Handle, error) {
	rt := d.rt
	k, err := d.readType()
	if err != nil {
		return nil, err
	}
	var oh *gc.Handle
	if k.IsArray {
		n64, err := d.uvar()
		if err != nil {
			return nil, err
		}
		if n64 > 1<<28 {
			return nil, fmt.Errorf("serial: implausible array length %d", n64)
		}
		n := int(n64)
		arr, err := rt.NewArray(k, n)
		if err != nil {
			return nil, err
		}
		oh = rt.Pin(arr)
		d.handleTab = append(d.handleTab, oh)
		d.objects++
		if k.Elem == klass.Ref {
			for i := 0; i < n; i++ {
				ch, err := d.readRef()
				if err != nil {
					return nil, err
				}
				if ch != nil {
					rt.ArraySetRef(oh.Addr(), i, ch.Addr())
				}
			}
			return oh, nil
		}
		if err := d.readPrimArray(oh, k, n); err != nil {
			return nil, err
		}
		return oh, nil
	}

	obj, err := rt.New(k)
	if err != nil {
		return nil, err
	}
	oh = rt.Pin(obj)
	d.handleTab = append(d.handleTab, oh)
	d.objects++
	if err := d.readFields(oh, k); err != nil {
		return nil, err
	}
	if k.Name == vm.HashMapClass && d.s.RehashOnRead {
		d.rehash = append(d.rehash, oh)
	}
	return oh, nil
}

func (d *engineDecoder) readPrimArray(oh *gc.Handle, k *klass.Klass, n int) error {
	es := k.ElemSize()
	base := d.rt.Heap.Layout().ArrayHeaderSize()
	if d.s.Access == AccessGenerated && !d.s.Varint {
		total := uint32(n) * es
		if total == 0 {
			return nil
		}
		pad := klass.Pad(total)
		if v := d.rt.Heap.ByteView(oh.Addr().Add(base), pad); v != nil {
			// Wire bytes land straight in the slab. The pad tail of the last
			// word is zeroed explicitly — the staging path always wrote
			// zeros there, and compact-mode re-encoding would otherwise leak
			// stale pad bytes onto the wire.
			if _, err := io.ReadFull(d.r, v[:total]); err != nil {
				return err
			}
			clear(v[total:])
			return nil
		}
		if cap(d.bulk) < int(pad) {
			d.bulk = make([]byte, pad)
		}
		buf := d.bulk[:pad]
		clear(buf[total:]) // reuse: the pad tail must stay zero
		if _, err := io.ReadFull(d.r, buf[:total]); err != nil {
			return err
		}
		d.rt.Heap.CopyIn(oh.Addr().Add(base), pad, buf)
		return nil
	}
	for i := 0; i < n; i++ {
		v, err := d.readPrim(k.Elem)
		if err != nil {
			return err
		}
		//skyway:allow writebarrier — primitive arrays only: reference arrays take the readRef path, so k.Elem is never Ref here
		d.rt.Heap.Store(oh.Addr(), base+uint32(i)*es, k.Elem, v)
	}
	return nil
}

func (d *engineDecoder) readFields(oh *gc.Handle, k *klass.Klass) error {
	for i := range k.Fields {
		if k.Fields[i].Transient {
			// Not on the wire; stays zero (Java's transient default).
			continue
		}
		var f *klass.Field
		if d.s.Access == AccessReflective {
			// Reflective set-by-name on the receiver (§1 problem 1).
			f = k.FieldByName(k.Fields[i].Name)
			if f == nil {
				return fmt.Errorf("serial: reflective lookup of %s.%s failed", k.Name, k.Fields[i].Name)
			}
		} else {
			f = &k.Fields[i]
		}
		if f.Kind == klass.Ref {
			ch, err := d.readRef()
			if err != nil {
				return err
			}
			if ch != nil {
				d.rt.SetRef(oh.Addr(), f, ch.Addr())
			}
			continue
		}
		v, err := d.readPrim(f.Kind)
		if err != nil {
			return err
		}
		if d.s.Access == AccessReflective {
			// Reflective Field.set unboxes a boxed primitive.
			boxField(v)
		}
		d.rt.SetRaw(oh.Addr(), f, v)
	}
	return nil
}

func (d *engineDecoder) readType() (*klass.Klass, error) {
	switch d.s.Type {
	case TypeRegisteredID:
		id, err := d.uvar()
		if err != nil {
			return nil, err
		}
		name, ok := d.s.Reg.NameOf(uint32(id))
		if !ok {
			return nil, fmt.Errorf("serial: %s: unregistered type ID %d", d.s.LibName, id)
		}
		return d.rt.LoadClass(name)
	case TypeNameString:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		// Resolve the type from its string — the per-object reflective
		// class lookup of §1 problem (2).
		return d.rt.LoadClass(name)
	default: // TypeFullDescriptor
		tag, err := d.u8()
		if err != nil {
			return nil, err
		}
		if tag == typeTagDescRef {
			h, err := d.uvar()
			if err != nil {
				return nil, err
			}
			k, ok := d.descs[h]
			if !ok {
				return nil, fmt.Errorf("serial: bad descriptor reference %d", h)
			}
			return k, nil
		}
		k, err := d.readDescriptor()
		if err != nil {
			return nil, err
		}
		d.descs[d.nextDesc] = k
		d.nextDesc++
		return k, nil
	}
}

// readDescriptor consumes a full class description and resolves it against
// the locally loaded class, verifying field-by-field compatibility (the
// paper's same-class-version assumption, §3.1).
func (d *engineDecoder) readDescriptor() (*klass.Klass, error) {
	name, err := d.str()
	if err != nil {
		return nil, err
	}
	k, err := d.rt.LoadClass(name)
	if err != nil {
		return nil, err
	}
	isArr, err := d.u8()
	if err != nil {
		return nil, err
	}
	if isArr == 1 {
		if _, err := d.u8(); err != nil { // elem kind
			return nil, err
		}
		if _, err := d.str(); err != nil { // elem class
			return nil, err
		}
		return k, nil
	}
	cur := k
	for {
		n, err := d.uvar()
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			fname, err := d.str()
			if err != nil {
				return nil, err
			}
			kindB, err := d.u8()
			if err != nil {
				return nil, err
			}
			if klass.Kind(kindB) == klass.Ref {
				if _, err := d.str(); err != nil {
					return nil, err
				}
			}
			f := cur.FieldByName(fname)
			if f == nil || f.Kind != klass.Kind(kindB) {
				return nil, fmt.Errorf("serial: class %s: incompatible field %s", cur.Name, fname)
			}
		}
		more, err := d.u8()
		if err != nil {
			return nil, err
		}
		if more == 0 {
			return k, nil
		}
		superName, err := d.str()
		if err != nil {
			return nil, err
		}
		cur = d.rt.KlassByName(superName)
		if cur == nil {
			if cur, err = d.rt.LoadClass(superName); err != nil {
				return nil, err
			}
		}
		// Consume the super descriptor's array flag (always 0: a
		// superclass is never an array type).
		if flag, err := d.u8(); err != nil {
			return nil, err
		} else if flag != 0 {
			return nil, fmt.Errorf("serial: array superclass in descriptor of %s", name)
		}
	}
}
