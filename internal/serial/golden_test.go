package serial

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/vm"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire vectors")

// Golden wire vectors pin the on-the-wire encoding of the codecs the
// benchmarks compare — including Skyway's versioned format (v2 with per-
// frame CRC-32C). Any intentional format change must update the vectors
// (go test ./internal/serial -run Golden -update) AND bump the wire
// version; an accidental change fails here byte for byte.

// goldenGraph builds the pinned object graph: two Media objects sharing a
// deterministic structure, the second written twice to exercise stream
// back-references.
func goldenGraph(t *testing.T, rt *vm.Runtime) []heap.Addr {
	t.Helper()
	a := rt.Pin(buildMedia(t, rt, "skyway://golden/a.mkv", 1920, 1080))
	t.Cleanup(a.Release)
	b := rt.Pin(buildMedia(t, rt, "skyway://golden/b.webm", 640, 480))
	t.Cleanup(b.Release)
	return []heap.Addr{a.Addr(), b.Addr(), b.Addr()}
}

func goldenEncode(t *testing.T, c Codec, snd *vm.Runtime) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := c.NewEncoder(snd, &buf)
	for _, root := range goldenGraph(t, snd) {
		if err := enc.Write(root); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkGoldenDecode decodes the checked-in bytes (not the freshly encoded
// ones) and verifies the graph, proving current readers accept the pinned
// format.
func checkGoldenDecode(t *testing.T, c Codec, rcv *vm.Runtime, wire []byte) {
	t.Helper()
	dec := c.NewDecoder(rcv, bytes.NewReader(wire))
	mk := rcv.MustLoad("Media")
	uris := []string{"skyway://golden/a.mkv", "skyway://golden/b.webm", "skyway://golden/b.webm"}
	widths := []int64{1920, 640, 640}
	for i, wantURI := range uris {
		got, err := dec.Read()
		if err != nil {
			t.Fatalf("decoding golden root %d: %v", i, err)
		}
		if rcv.KlassOf(got) != mk {
			t.Fatalf("root %d decoded as %s", i, rcv.KlassOf(got).Name)
		}
		if s := rcv.GoString(rcv.GetRef(got, mk.FieldByName("uri"))); s != wantURI {
			t.Fatalf("root %d uri = %q, want %q", i, s, wantURI)
		}
		if w := rcv.GetInt(got, mk.FieldByName("width")); w != widths[i] {
			t.Fatalf("root %d width = %d, want %d", i, w, widths[i])
		}
		if d := rcv.GetLong(got, mk.FieldByName("duration")); d != 1234567890123 {
			t.Fatalf("root %d duration = %d", i, d)
		}
	}
	if _, err := dec.Read(); err != io.EOF {
		t.Fatalf("after golden roots: %v, want EOF", err)
	}
}

func TestGoldenWireVectors(t *testing.T) {
	reg := testRegistration()
	cases := []struct {
		name  string
		codec func(snd, rcv *vm.Runtime) Codec
	}{
		{"java", func(_, _ *vm.Runtime) Codec { return JavaCodec() }},
		{"kryo", func(_, _ *vm.Runtime) Codec { return KryoCodec(reg) }},
		{"skyway", func(snd, rcv *vm.Runtime) Codec { return NewSkywayCodec(snd, rcv) }},
		{"skyway-compact", func(snd, rcv *vm.Runtime) Codec {
			c := NewSkywayCodec(snd, rcv)
			c.Compact = true
			return c
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snd, rcv := testPair(t)
			c := tc.codec(snd, rcv)
			wire := goldenEncode(t, c, snd)
			path := filepath.Join("testdata", "golden", tc.name+".bin")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, wire, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if !bytes.Equal(wire, want) {
				t.Fatalf("%s encoding drifted from golden vector: %s",
					tc.name, diffBytes(want, wire))
			}
			checkGoldenDecode(t, c, rcv, want)
		})
	}
}

// diffBytes reports the first divergence between two wire images.
func diffBytes(want, got []byte) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			return fmt.Sprintf("lengths %d/%d, first differing byte at offset %#x: %#02x != %#02x",
				len(want), len(got), i, got[i], want[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d bytes, golden has %d", len(got), len(want))
}
