package serial

import (
	"bytes"
	"testing"

	"skyway/internal/datagen"
)

// Robustness: decoders fed truncated or corrupted streams must return
// errors, never panic or fabricate objects.

func TestDecodersSurviveTruncation(t *testing.T) {
	snd, rcv := testPair(t)
	m := buildMedia(t, snd, "http://example/x", 10, 20)
	for _, c := range allCodecs() {
		var buf bytes.Buffer
		enc := c.NewEncoder(snd, &buf)
		if err := enc.Write(m); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		enc.Flush()
		full := buf.Bytes()
		for cut := 1; cut < len(full); cut += 11 {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on truncation at %d: %v", c.Name(), cut, r)
					}
				}()
				dec := c.NewDecoder(rcv, bytes.NewReader(full[:cut]))
				if _, err := dec.Read(); err == nil {
					t.Errorf("%s: truncation at %d decoded successfully", c.Name(), cut)
				}
			}()
		}
	}
}

func TestDecodersSurviveBitFlips(t *testing.T) {
	snd, rcv := testPair(t)
	m := buildMedia(t, snd, "u", 1, 2)
	rng := datagen.NewRNG(123)
	for _, c := range allCodecs() {
		var buf bytes.Buffer
		enc := c.NewEncoder(snd, &buf)
		if err := enc.Write(m); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		enc.Flush()
		orig := buf.Bytes()
		for trial := 0; trial < 40; trial++ {
			mut := append([]byte(nil), orig...)
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			func() {
				defer func() {
					// A panic is a bug; an error or even a
					// silently different object is acceptable
					// (bit flips in payload bytes are not
					// detectable without checksums, which none
					// of the modelled libraries carry).
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on bit flip: %v", c.Name(), r)
					}
				}()
				dec := c.NewDecoder(rcv, bytes.NewReader(mut))
				_, _ = dec.Read()
			}()
		}
	}
}
