package serial

import (
	"io"

	"skyway/internal/core"
	"skyway/internal/heap"
	"skyway/internal/vm"
)

// SkywayCodec adapts the Skyway transfer service to the Codec interface so
// harnesses can swap it in wherever a baseline serializer is used — the
// drop-in integration §3.3 is about.
type SkywayCodec struct {
	// Services maps each runtime to its Skyway service. A codec is shared
	// by senders and receivers, and Skyway state is per runtime.
	services map[*vm.Runtime]*core.Skyway
	// Compact switches writers to the compact wire encoding (the header/
	// padding compression the paper proposes as future work, §5.2).
	Compact bool
}

// NewSkywayCodec builds the adapter for a set of runtimes.
func NewSkywayCodec(runtimes ...*vm.Runtime) *SkywayCodec {
	c := &SkywayCodec{services: make(map[*vm.Runtime]*core.Skyway, len(runtimes))}
	for _, rt := range runtimes {
		c.services[rt] = core.New(rt)
	}
	return c
}

// NewSkywayCompactCodec builds the adapter in compact wire mode.
func NewSkywayCompactCodec(runtimes ...*vm.Runtime) *SkywayCodec {
	c := NewSkywayCodec(runtimes...)
	c.Compact = true
	return c
}

// ServiceFor returns (registering if needed) the Skyway service for rt.
func (c *SkywayCodec) ServiceFor(rt *vm.Runtime) *core.Skyway {
	s, ok := c.services[rt]
	if !ok {
		s = core.New(rt)
		c.services[rt] = s
	}
	return s
}

// ShuffleStartAll begins a new shuffle phase on every runtime (§3.3's
// shuffleStart mark, applied cluster-wide by the harness).
func (c *SkywayCodec) ShuffleStartAll() {
	for _, s := range c.services {
		s.ShuffleStart()
	}
}

// Name implements Codec.
func (c *SkywayCodec) Name() string {
	if c.Compact {
		return "skyway-compact"
	}
	return "skyway"
}

// NewEncoder implements Codec.
func (c *SkywayCodec) NewEncoder(rt *vm.Runtime, w io.Writer) Encoder {
	cw := &countingWriter{w: w}
	var opts []core.WriterOption
	if c.Compact {
		opts = append(opts, core.WithCompactHeaders())
	}
	return &skywayEncoder{w: c.ServiceFor(rt).NewWriter(cw, opts...), cw: cw}
}

// NewDecoder implements Codec.
func (c *SkywayCodec) NewDecoder(rt *vm.Runtime, r io.Reader) Decoder {
	return &skywayDecoder{r: core.NewReader(rt, r)}
}

type skywayEncoder struct {
	w  *core.Writer
	cw *countingWriter
}

func (e *skywayEncoder) Write(root heap.Addr) error { return e.w.WriteObject(root) }

func (e *skywayEncoder) Flush() error {
	// Closing emits the end frame so the matching Decoder sees EOF; a
	// Skyway stream is one shuffle transfer, flushed when complete.
	return e.w.Close()
}

func (e *skywayEncoder) Bytes() int64 { return e.cw.n }

type skywayDecoder struct{ r *core.Reader }

func (d *skywayDecoder) Read() (heap.Addr, error) { return d.r.ReadObject() }

func (d *skywayDecoder) Objects() uint64 { return d.r.Objects }

// Free releases the decoder's input buffers (explicit-free API, §3.2).
func (d *skywayDecoder) Free() { d.r.Free() }
