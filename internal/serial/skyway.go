package serial

import (
	"io"
	"os"
	"sync"

	"skyway/internal/arena"
	"skyway/internal/core"
	"skyway/internal/heap"
	"skyway/internal/vm"
)

// SkywayCodec adapts the Skyway transfer service to the Codec interface so
// harnesses can swap it in wherever a baseline serializer is used — the
// drop-in integration §3.3 is about.
type SkywayCodec struct {
	// mu guards services: executor tasks on concurrent goroutines open
	// encoders and decoders through one shared codec.
	mu sync.RWMutex
	// services maps each runtime to its Skyway service. A codec is shared
	// by senders and receivers, and Skyway state is per runtime.
	services map[*vm.Runtime]*core.Skyway
	// Compact switches writers to the compact wire encoding (the header/
	// padding compression the paper proposes as future work, §5.2).
	Compact bool
	// Arena switches decoders to the off-heap arena path: received
	// segments stay relativized outside the managed heap and absolutize
	// lazily on first mutation. The wire format is unchanged — Arena is a
	// pure receiver-side policy, freely combinable with Compact. Defaults
	// to the SKYWAY_ARENA environment knob.
	Arena bool
}

// NewSkywayCodec builds the adapter for a set of runtimes.
func NewSkywayCodec(runtimes ...*vm.Runtime) *SkywayCodec {
	c := &SkywayCodec{
		services: make(map[*vm.Runtime]*core.Skyway, len(runtimes)),
		Arena:    arena.Enabled(os.Getenv("SKYWAY_ARENA")),
	}
	for _, rt := range runtimes {
		c.services[rt] = core.New(rt)
	}
	return c
}

// NewSkywayCompactCodec builds the adapter in compact wire mode.
func NewSkywayCompactCodec(runtimes ...*vm.Runtime) *SkywayCodec {
	c := NewSkywayCodec(runtimes...)
	c.Compact = true
	return c
}

// ServiceFor returns (registering if needed) the Skyway service for rt.
func (c *SkywayCodec) ServiceFor(rt *vm.Runtime) *core.Skyway {
	c.mu.RLock()
	s, ok := c.services[rt]
	c.mu.RUnlock()
	if ok {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok = c.services[rt]; !ok {
		s = core.New(rt)
		c.services[rt] = s
	}
	return s
}

// ShuffleStartAll begins a new shuffle phase on every runtime (§3.3's
// shuffleStart mark, applied cluster-wide by the harness). Each service's
// ShuffleStart blocks until that runtime's in-flight writers drain, so the
// bump is a true barrier against the previous phase.
func (c *SkywayCodec) ShuffleStartAll() {
	c.mu.RLock()
	services := make([]*core.Skyway, 0, len(c.services))
	for _, s := range c.services {
		services = append(services, s)
	}
	c.mu.RUnlock()
	for _, s := range services {
		s.ShuffleStart()
	}
}

// ConcurrentEncoders implements ConcurrentCodec: Skyway encoders on one
// heap may run on concurrent goroutines — per-object visited state lives in
// the CAS-claimed baddr header words and per-writer hash-table fallbacks
// (§4.2), not in shared mutable tables.
func (c *SkywayCodec) ConcurrentEncoders() bool { return true }

// Name implements Codec.
func (c *SkywayCodec) Name() string {
	if c.Compact {
		return "skyway-compact"
	}
	if c.Arena {
		return "skyway-arena"
	}
	return "skyway"
}

// NewEncoder implements Codec.
func (c *SkywayCodec) NewEncoder(rt *vm.Runtime, w io.Writer) Encoder {
	cw := &countingWriter{w: w}
	var opts []core.WriterOption
	if c.Compact {
		opts = append(opts, core.WithCompactHeaders())
	}
	return &skywayEncoder{w: c.ServiceFor(rt).NewWriter(cw, opts...), cw: cw}
}

// NewDecoder implements Codec.
func (c *SkywayCodec) NewDecoder(rt *vm.Runtime, r io.Reader) Decoder {
	var opts []core.ReaderOption
	if c.Arena {
		opts = append(opts, core.WithArena())
	}
	return &skywayDecoder{r: core.NewReader(rt, r, opts...)}
}

type skywayEncoder struct {
	w  *core.Writer
	cw *countingWriter
}

func (e *skywayEncoder) Write(root heap.Addr) error { return e.w.WriteObject(root) }

func (e *skywayEncoder) Flush() error {
	// Closing emits the end frame so the matching Decoder sees EOF; a
	// Skyway stream is one shuffle transfer, flushed when complete.
	return e.w.Close()
}

func (e *skywayEncoder) Bytes() int64 { return e.cw.n }

type skywayDecoder struct{ r *core.Reader }

func (d *skywayDecoder) Read() (heap.Addr, error) { return d.r.ReadObject() }

func (d *skywayDecoder) Objects() uint64 { return d.r.Objects }

// Free releases the decoder's input buffers (explicit-free API, §3.2).
func (d *skywayDecoder) Free() { d.r.Free() }

// ArenaRegion exposes the decoder's arena region (nil on the eager path)
// so the dataflow layer can bind shuffle-stage regions to their stage
// epoch for wholesale reclamation.
func (d *skywayDecoder) ArenaRegion() *arena.Region { return d.r.ArenaRegion() }
