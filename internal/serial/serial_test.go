package serial

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

func testPath() *klass.Path {
	p := klass.NewPath()
	p.MustDefine(
		&klass.ClassDef{Name: "Media", Fields: []klass.FieldDef{
			{Name: "uri", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "width", Kind: klass.Int32},
			{Name: "height", Kind: klass.Int32},
			{Name: "duration", Kind: klass.Int64},
			{Name: "bitrate", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: "Wrapper", Fields: []klass.FieldDef{
			{Name: "media", Kind: klass.Ref, Class: "Media"},
			{Name: "samples", Kind: klass.Ref, Class: "long[]"},
		}},
		&klass.ClassDef{Name: "Base", Fields: []klass.FieldDef{
			{Name: "id", Kind: klass.Int64},
		}},
		&klass.ClassDef{Name: "Derived", Super: "Base", Fields: []klass.FieldDef{
			{Name: "extra", Kind: klass.Int32},
		}},
	)
	return p
}

func testPair(t *testing.T) (*vm.Runtime, *vm.Runtime) {
	t.Helper()
	cp := testPath()
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "snd", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "rcv", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	return snd, rcv
}

func testRegistration() *Registration {
	return NewRegistration(
		"Media", "Wrapper", "Base", "Derived",
		vm.StringClass, vm.CharArrayClass, vm.HashMapClass, vm.HashMapNodeClass,
		vm.HashMapClass+"$table", // unused; keeps IDs stable if extended
		vm.HashMapNodeClass+"[]", vm.StringClass+"[]", "long[]", "int[]", vm.ObjectClass+"[]", "Wrapper[]",
	)
}

func buildMedia(t *testing.T, rt *vm.Runtime, uri string, w, h int) heap.Addr {
	t.Helper()
	mk := rt.MustLoad("Media")
	s := rt.MustNewString(uri)
	sp := rt.Pin(s)
	defer sp.Release()
	m := rt.MustNew(mk)
	rt.SetRef(m, mk.FieldByName("uri"), sp.Addr())
	rt.SetInt(m, mk.FieldByName("width"), int64(w))
	rt.SetInt(m, mk.FieldByName("height"), int64(h))
	rt.SetLong(m, mk.FieldByName("duration"), 1234567890123)
	rt.SetInt(m, mk.FieldByName("bitrate"), -256)
	return m
}

func allCodecs() []Codec {
	reg := testRegistration()
	return []Codec{
		JavaCodec(),
		KryoCodec(reg),
		KryoManualCodec(reg),
		KryoOptCodec(reg),
		ColferCodec(reg),
		ProtostuffCodec(reg),
		ProtostuffRuntimeCodec(reg),
		DatakernelCodec(reg),
		AvroGenericCodec(reg),
		ThriftCodec(reg),
		JsonLikeCodec(),
		FSTCodec(),
		SmileCodec(),
		CBORCodec(),
		WoblyCodec(reg),
	}
}

func TestAllCodecsRoundTripMedia(t *testing.T) {
	for _, c := range allCodecs() {
		t.Run(c.Name(), func(t *testing.T) {
			snd, rcv := testPair(t)
			m := buildMedia(t, snd, "http://example/video.mkv", 1920, 1080)

			var buf bytes.Buffer
			enc := c.NewEncoder(snd, &buf)
			if err := enc.Write(m); err != nil {
				t.Fatal(err)
			}
			if err := enc.Flush(); err != nil {
				t.Fatal(err)
			}
			if enc.Bytes() == 0 || enc.Bytes() != int64(buf.Len()) {
				t.Errorf("Bytes() = %d, buffer has %d", enc.Bytes(), buf.Len())
			}

			dec := c.NewDecoder(rcv, &buf)
			got, err := dec.Read()
			if err != nil {
				t.Fatal(err)
			}
			mk := rcv.MustLoad("Media")
			if rcv.GetInt(got, mk.FieldByName("width")) != 1920 ||
				rcv.GetInt(got, mk.FieldByName("height")) != 1080 {
				t.Error("dimensions corrupted")
			}
			if rcv.GetLong(got, mk.FieldByName("duration")) != 1234567890123 {
				t.Error("long corrupted")
			}
			if rcv.GetInt(got, mk.FieldByName("bitrate")) != -256 {
				t.Error("negative int corrupted")
			}
			uri := rcv.GetRef(got, mk.FieldByName("uri"))
			if rcv.GoString(uri) != "http://example/video.mkv" {
				t.Error("string corrupted")
			}
			if dec.Objects() == 0 {
				t.Error("Objects() not counted")
			}
			if _, err := dec.Read(); err != io.EOF {
				t.Errorf("want EOF, got %v", err)
			}
		})
	}
}

func TestAllCodecsSharedAndArrays(t *testing.T) {
	for _, c := range allCodecs() {
		t.Run(c.Name(), func(t *testing.T) {
			snd, rcv := testPair(t)
			wk := snd.MustLoad("Wrapper")

			m := buildMedia(t, snd, "u", 1, 2)
			mp := snd.Pin(m)
			arrK := snd.MustLoad("long[]")
			arr := snd.MustNewArray(arrK, 9)
			for i := 0; i < 9; i++ {
				snd.ArraySetLong(arr, i, int64(i)*-3)
			}
			ap := snd.Pin(arr)
			w1 := snd.MustNew(wk)
			w1p := snd.Pin(w1)
			w2 := snd.MustNew(wk)
			w1 = w1p.Addr()
			snd.SetRef(w1, wk.FieldByName("media"), mp.Addr())
			snd.SetRef(w1, wk.FieldByName("samples"), ap.Addr())
			snd.SetRef(w2, wk.FieldByName("media"), mp.Addr())
			snd.SetRef(w2, wk.FieldByName("samples"), ap.Addr())

			// One root graph sharing m and arr through two wrappers.
			pk := wk // reuse Wrapper as a pair-ish root via array
			_ = pk
			rootK := snd.MustLoad("Wrapper[]")
			root := snd.MustNewArray(rootK, 2)
			snd.ArraySetRef(root, 0, w1p.Addr())
			snd.ArraySetRef(root, 1, w2)

			var buf bytes.Buffer
			enc := c.NewEncoder(snd, &buf)
			if err := enc.Write(root); err != nil {
				// Wrapper[] may be unregistered for ID codecs.
				t.Fatalf("write: %v", err)
			}
			enc.Flush()

			dec := c.NewDecoder(rcv, &buf)
			got, err := dec.Read()
			if err != nil {
				t.Fatal(err)
			}
			rwk := rcv.MustLoad("Wrapper")
			g1 := rcv.ArrayGetRef(got, 0)
			g2 := rcv.ArrayGetRef(got, 1)
			if rcv.GetRef(g1, rwk.FieldByName("media")) != rcv.GetRef(g2, rwk.FieldByName("media")) {
				t.Error("shared media duplicated within a root graph")
			}
			garr := rcv.GetRef(g1, rwk.FieldByName("samples"))
			for i := 0; i < 9; i++ {
				if rcv.ArrayGetLong(garr, i) != int64(i)*-3 {
					t.Fatalf("array elem %d corrupted", i)
				}
			}
			mp.Release()
			ap.Release()
			w1p.Release()
		})
	}
}

func TestAllCodecsInheritance(t *testing.T) {
	for _, c := range allCodecs() {
		t.Run(c.Name(), func(t *testing.T) {
			snd, rcv := testPair(t)
			dk := snd.MustLoad("Derived")
			d := snd.MustNew(dk)
			snd.SetLong(d, dk.FieldByName("id"), 99)
			snd.SetInt(d, dk.FieldByName("extra"), -7)

			var buf bytes.Buffer
			enc := c.NewEncoder(snd, &buf)
			if err := enc.Write(d); err != nil {
				t.Fatal(err)
			}
			enc.Flush()
			got, err := c.NewDecoder(rcv, &buf).Read()
			if err != nil {
				t.Fatal(err)
			}
			rdk := rcv.MustLoad("Derived")
			if rcv.GetLong(got, rdk.FieldByName("id")) != 99 || rcv.GetInt(got, rdk.FieldByName("extra")) != -7 {
				t.Error("inherited/own fields corrupted")
			}
		})
	}
}

func TestUnregisteredClassFails(t *testing.T) {
	snd, _ := testPair(t)
	reg := NewRegistration("Media") // String deliberately missing
	c := KryoCodec(reg)
	m := buildMedia(t, snd, "u", 1, 1)
	enc := c.NewEncoder(snd, io.Discard)
	if err := enc.Write(m); err == nil {
		t.Error("serializing an unregistered class succeeded")
	}
}

func TestNullRoot(t *testing.T) {
	for _, c := range allCodecs() {
		snd, rcv := testPair(t)
		var buf bytes.Buffer
		enc := c.NewEncoder(snd, &buf)
		if err := enc.Write(heap.Null); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		enc.Flush()
		got, err := c.NewDecoder(rcv, &buf).Read()
		if err != nil || got != heap.Null {
			t.Errorf("%s: null round trip = %v, %v", c.Name(), got, err)
		}
	}
}

func TestJavaDescriptorBytesDominateSmallObjects(t *testing.T) {
	// §2.2: a tiny object under the Java serializer drags whole class
	// descriptors onto the wire; registered-ID codecs don't.
	snd, _ := testPair(t)
	reg := testRegistration()
	m := buildMedia(t, snd, "u", 1, 1)

	measure := func(c Codec) int64 {
		var buf bytes.Buffer
		enc := c.NewEncoder(snd, &buf)
		if err := enc.Write(m); err != nil {
			t.Fatal(err)
		}
		enc.Flush()
		return enc.Bytes()
	}
	javaBytes := measure(JavaCodec())
	kryoBytes := measure(KryoCodec(reg))
	if javaBytes <= kryoBytes {
		t.Errorf("java bytes (%d) not larger than kryo bytes (%d)", javaBytes, kryoBytes)
	}
}

func TestHashMapRehashOnRead(t *testing.T) {
	snd, rcv := testPair(t)
	reg := testRegistration()
	c := KryoCodec(reg)

	m, err := snd.NewHashMap(16)
	if err != nil {
		t.Fatal(err)
	}
	mp := snd.Pin(m)
	defer mp.Release()
	for i := 0; i < 40; i++ {
		k := snd.MustNewString("k")
		kp := snd.Pin(k)
		v := snd.MustNewString("v")
		vp := snd.Pin(v)
		if err := snd.HashMapPut(mp.Addr(), kp.Addr(), vp.Addr()); err != nil {
			t.Fatal(err)
		}
		kp.Release()
		vp.Release()
	}

	var buf bytes.Buffer
	enc := c.NewEncoder(snd, &buf)
	if err := enc.Write(mp.Addr()); err != nil {
		t.Fatal(err)
	}
	enc.Flush()
	got, err := c.NewDecoder(rcv, &buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	if rcv.HashMapLen(got) != 40 {
		t.Fatalf("map len = %d", rcv.HashMapLen(got))
	}
	// After the decoder's rehash the bucket layout must match the fresh
	// identity hashes on the receiving runtime.
	if !rcv.HashMapValid(got) {
		t.Error("map not rehashed on read")
	}
}

// Property: primitive values of every width round-trip through every codec.
func TestPrimitiveWidthsQuick(t *testing.T) {
	snd, rcv := testPair(t)
	mk := snd.MustLoad("Media")
	codecs := allCodecs()
	f := func(w, h, bit int32, dur int64, sel uint8) bool {
		c := codecs[int(sel)%len(codecs)]
		m := buildMedia(t, snd, "q", 0, 0)
		snd.SetInt(m, mk.FieldByName("width"), int64(w))
		snd.SetInt(m, mk.FieldByName("height"), int64(h))
		snd.SetInt(m, mk.FieldByName("bitrate"), int64(bit))
		snd.SetLong(m, mk.FieldByName("duration"), dur)
		var buf bytes.Buffer
		enc := c.NewEncoder(snd, &buf)
		if err := enc.Write(m); err != nil {
			return false
		}
		enc.Flush()
		got, err := c.NewDecoder(rcv, &buf).Read()
		if err != nil {
			return false
		}
		rmk := rcv.MustLoad("Media")
		return rcv.GetInt(got, rmk.FieldByName("width")) == int64(w) &&
			rcv.GetInt(got, rmk.FieldByName("height")) == int64(h) &&
			rcv.GetInt(got, rmk.FieldByName("bitrate")) == int64(bit) &&
			rcv.GetLong(got, rmk.FieldByName("duration")) == dur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSkywayCodecAdapter(t *testing.T) {
	snd, rcv := testPair(t)
	c := NewSkywayCodec(snd, rcv)
	m := buildMedia(t, snd, "adapter", 640, 480)

	var buf bytes.Buffer
	enc := c.NewEncoder(snd, &buf)
	if err := enc.Write(m); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := c.NewDecoder(rcv, &buf)
	got, err := dec.Read()
	if err != nil {
		t.Fatal(err)
	}
	mk := rcv.MustLoad("Media")
	if rcv.GetInt(got, mk.FieldByName("width")) != 640 {
		t.Error("adapter round trip corrupted data")
	}
	if _, err := dec.Read(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	c.ShuffleStartAll()
	if c.ServiceFor(snd).Phase() != 2 {
		t.Error("ShuffleStartAll did not advance phase")
	}
}

func TestTransientFieldSemantics(t *testing.T) {
	// Java semantics: conventional serializers skip transient fields (the
	// receiver sees the zero value); Skyway's whole-object copy ships them.
	cp := klass.NewPath()
	cp.MustDefine(&klass.ClassDef{Name: "Conn", Fields: []klass.FieldDef{
		{Name: "id", Kind: klass.Int64},
		{Name: "fd", Kind: klass.Int64, Transient: true},
	}})
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "ts", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "tr", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	ck := snd.MustLoad("Conn")
	obj := snd.MustNew(ck)
	snd.SetLong(obj, ck.FieldByName("id"), 7)
	snd.SetLong(obj, ck.FieldByName("fd"), 42)
	oh := snd.Pin(obj)
	defer oh.Release()

	codecs := map[string]Codec{
		"java":   JavaCodec(),
		"kryo":   KryoCodec(NewRegistration("Conn")),
		"skyway": NewSkywayCodec(snd, rcv),
	}
	for name, c := range codecs {
		var buf bytes.Buffer
		enc := c.NewEncoder(snd, &buf)
		if err := enc.Write(oh.Addr()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		enc.Flush()
		got, err := c.NewDecoder(rcv, &buf).Read()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rck := rcv.MustLoad("Conn")
		if rcv.GetLong(got, rck.FieldByName("id")) != 7 {
			t.Errorf("%s: persistent field lost", name)
		}
		fd := rcv.GetLong(got, rck.FieldByName("fd"))
		if name == "skyway" {
			if fd != 42 {
				t.Errorf("skyway did not ship the transient field (whole-object copy): fd=%d", fd)
			}
		} else if fd != 0 {
			t.Errorf("%s serialized a transient field: fd=%d", name, fd)
		}
	}
}
