// Package serial implements the serialization/deserialization baselines the
// paper compares Skyway against (§2, §5.1): a Java-serializer-like codec
// (per-stream class descriptors with full field metadata, reflective
// field access by name, receiver-side rehashing), a Kryo-like codec
// (manually registered integer type IDs, cached field accessors), hand-
// written "manual" codecs, and schema-compiled codecs in the Colfer /
// Protostuff mould. All of them operate on the same simulated managed heap
// as Skyway, so the cost differences come from the mechanisms the paper
// blames: string-keyed reflective lookups, per-field function calls, type
// strings on the wire, and object re-creation on receive.
package serial

import (
	"io"

	"skyway/internal/heap"
	"skyway/internal/vm"
)

// Codec constructs encoders and decoders for one serialization library.
type Codec interface {
	// Name identifies the library (e.g. "kryo-manual", "java").
	Name() string
	// NewEncoder opens a serialization stream writing to w.
	NewEncoder(rt *vm.Runtime, w io.Writer) Encoder
	// NewDecoder opens a deserialization stream reading from r.
	NewDecoder(rt *vm.Runtime, r io.Reader) Decoder
}

// Encoder serializes object graphs. Back references are tracked per stream,
// as in the Java serializer and Kryo.
type Encoder interface {
	// Write serializes the graph rooted at root.
	Write(root heap.Addr) error
	// Flush drains buffered output.
	Flush() error
	// Bytes reports total payload bytes produced so far.
	Bytes() int64
}

// Decoder deserializes object graphs produced by the matching Encoder.
type Decoder interface {
	// Read reconstructs the next root; io.EOF at end of stream.
	Read() (heap.Addr, error)
	// Objects reports how many objects have been created so far.
	Objects() uint64
}

// ConcurrentCodec is an optional Codec capability: a codec whose encoders
// may run on concurrent goroutines over a single runtime's heap (Skyway's
// §4.2 multi-threaded senders). Baseline codecs do not implement it — their
// encode paths touch per-runtime mutable state (identity-hash computation,
// reflective accessor caches), so the harness keeps their block encoding
// sequential per executor.
type ConcurrentCodec interface {
	// ConcurrentEncoders reports whether encoders for one runtime are safe
	// to drive from multiple goroutines at once.
	ConcurrentEncoders() bool
}

// Registration is a Kryo-style manual class registration table: the order
// of Register calls defines integer IDs that must match on every node
// (§2.1). Codecs with TypeRegisteredID require one.
type Registration struct {
	ids   map[string]uint32
	names []string
}

// NewRegistration builds a table from names in registration order.
func NewRegistration(names ...string) *Registration {
	r := &Registration{ids: make(map[string]uint32, len(names))}
	for _, n := range names {
		r.Register(n)
	}
	return r
}

// Register appends a class (idempotent).
func (r *Registration) Register(name string) {
	if _, ok := r.ids[name]; ok {
		return
	}
	r.ids[name] = uint32(len(r.names))
	r.names = append(r.names, name)
}

// IDOf returns the registered ID for a class name.
func (r *Registration) IDOf(name string) (uint32, bool) {
	id, ok := r.ids[name]
	return id, ok
}

// NameOf returns the class name for a registered ID.
func (r *Registration) NameOf(id uint32) (string, bool) {
	if int(id) >= len(r.names) {
		return "", false
	}
	return r.names[id], true
}

// countingWriter tracks bytes written.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
