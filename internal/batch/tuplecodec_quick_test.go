package batch

import (
	"bytes"
	"testing"
	"testing/quick"

	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

// Property: arbitrary lineitem tuples survive the built-in tuple serializer
// bit-exactly, with and without lazy field sets.
func TestTupleCodecQuick(t *testing.T) {
	cp := klass.NewPath()
	TPCHClasses(cp)
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "tq-s", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "tq-r", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	lk := snd.MustLoad(LineItemClass)

	fieldNames := make([]string, len(lk.Fields))
	for i := range lk.Fields {
		fieldNames[i] = lk.Fields[i].Name
	}

	f := func(ok, pk int32, qty, price float64, rf byte, lazySel uint8) bool {
		row := snd.MustNew(lk)
		rh := snd.Pin(row)
		defer rh.Release()
		snd.SetInt(rh.Addr(), lk.FieldByName("orderkey"), int64(ok))
		snd.SetInt(rh.Addr(), lk.FieldByName("partkey"), int64(pk))
		snd.SetDouble(rh.Addr(), lk.FieldByName("quantity"), qty)
		snd.SetDouble(rh.Addr(), lk.FieldByName("extendedprice"), price)
		snd.SetInt(rh.Addr(), lk.FieldByName("returnflag"), int64(rf))

		// Random subset of needed fields (always include orderkey).
		needed := []string{"orderkey"}
		for i, n := range fieldNames {
			if lazySel&(1<<(uint(i)%8)) != 0 {
				needed = append(needed, n)
			}
		}
		codec := NewTupleCodec(LineItemClass, needed)
		var buf bytes.Buffer
		enc := codec.NewEncoder(snd, &buf)
		if err := enc.Write(rh.Addr()); err != nil {
			return false
		}
		if err := enc.Flush(); err != nil {
			return false
		}
		got, err := codec.NewDecoder(rcv, &buf).Read()
		if err != nil {
			return false
		}
		rlk := rcv.MustLoad(LineItemClass)
		if rcv.GetInt(got, rlk.FieldByName("orderkey")) != int64(ok) {
			return false
		}
		inNeeded := func(name string) bool {
			for _, n := range needed {
				if n == name {
					return true
				}
			}
			return false
		}
		if inNeeded("quantity") && rcv.GetDouble(got, rlk.FieldByName("quantity")) != qty {
			return false
		}
		if !inNeeded("quantity") && rcv.GetDouble(got, rlk.FieldByName("quantity")) != 0 {
			return false
		}
		if inNeeded("returnflag") && byte(rcv.GetInt(got, rlk.FieldByName("returnflag"))) != rf {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
