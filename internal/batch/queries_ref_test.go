package batch

import (
	"math"
	"sort"
	"testing"

	"skyway/internal/datagen"
)

// Reference implementations of QA–QE computed directly over the generator's
// Go structs — no heap, no exchanges, no serializers. The engine must match
// these digests exactly, which pins down join/filter/aggregate semantics
// independently of the data-transfer plumbing.

func refQA(db *datagen.TPCH) float64 {
	const cutoff = datagen.TPCHDays - 120
	type agg struct {
		qty, price, disc, charge float64
		n                        int64
	}
	res := make(map[int64]*agg)
	for i := range db.LineItems {
		li := &db.LineItems[i]
		if int64(li.ShipDate) > cutoff {
			continue
		}
		key := int64(li.ReturnFlag)<<8 | int64(li.LineStatus)
		a := res[key]
		if a == nil {
			a = &agg{}
			res[key] = a
		}
		a.qty += li.Quantity
		a.price += li.ExtendedPrice
		a.disc += li.ExtendedPrice * (1 - li.Discount)
		a.charge += li.ExtendedPrice * (1 - li.Discount) * (1 + li.Tax)
		a.n++
	}
	var digest float64
	for key, a := range res {
		digest += float64(key) + a.qty + a.price + a.disc + a.charge + float64(a.n)
	}
	return math.Round(digest*100) / 100
}

func refQD(db *datagen.TPCH) float64 {
	const yearStart = datagen.TPCHDays / 2
	const yearEnd = yearStart + 360
	late := make(map[int32]bool)
	for i := range db.LineItems {
		li := &db.LineItems[i]
		if li.ReceiptDate > li.CommitDate {
			late[li.OrderKey] = true
		}
	}
	var counts [4]int64
	for i := range db.Orders {
		o := &db.Orders[i]
		if o.OrderDate < yearStart || o.OrderDate >= yearEnd || !late[o.OrderKey] {
			continue
		}
		q := (int64(o.OrderDate) - yearStart) / 90
		if q > 3 {
			q = 3
		}
		counts[q]++
	}
	var digest float64
	for q, n := range counts {
		digest += float64(n) * float64(q+1)
	}
	return digest
}

func refQE(db *datagen.TPCH) float64 {
	orderCust := make(map[int32]int32, len(db.Orders))
	for i := range db.Orders {
		orderCust[db.Orders[i].OrderKey] = db.Orders[i].CustKey
	}
	lost := make(map[int32]float64)
	for i := range db.LineItems {
		li := &db.LineItems[i]
		if li.ReturnFlag != 'R' {
			continue
		}
		cust, ok := orderCust[li.OrderKey]
		if !ok {
			continue
		}
		lost[cust] += li.ExtendedPrice * (1 - li.Discount)
	}
	type kv struct {
		c int32
		v float64
	}
	all := make([]kv, 0, len(lost))
	var total float64
	for c, v := range lost {
		all = append(all, kv{c, v})
		total += v
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].c < all[j].c
	})
	var digest float64
	for i := 0; i < len(all) && i < 20; i++ {
		digest += all[i].v * float64(i+1)
	}
	return math.Round((total+digest)*100) / 100
}

func TestQueriesMatchReference(t *testing.T) {
	gen := datagen.GenTPCH(0.3, 99)
	c := newTestCluster(t, BuiltinFactory())
	db, err := Load(c, gen)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Free()

	cases := []struct {
		q   Query
		ref func(*datagen.TPCH) float64
	}{
		{QA, refQA},
		{QD, refQD},
		{QE, refQE},
	}
	for _, tc := range cases {
		_, got, err := Run(c, tc.q, db)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		want := tc.ref(gen)
		if got != want {
			t.Errorf("%s digest = %v, reference = %v", tc.q, got, want)
		}
	}
}

func TestQBAndQCNonTrivial(t *testing.T) {
	// QB and QC involve multi-way joins whose reference versions would
	// duplicate the engine; instead pin down non-triviality invariants.
	gen := datagen.GenTPCH(0.3, 99)
	c := newTestCluster(t, BuiltinFactory())
	db, err := Load(c, gen)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Free()

	bdB, digestB, err := Run(c, QB, db)
	if err != nil {
		t.Fatal(err)
	}
	if digestB <= 0 {
		t.Errorf("QB digest %v", digestB)
	}
	if bdB.Records == 0 {
		t.Error("QB exchanged nothing")
	}
	bdC, digestC, err := Run(c, QC, db)
	if err != nil {
		t.Fatal(err)
	}
	if digestC <= 0 {
		t.Errorf("QC digest %v (no pending BUILDING orders found)", digestC)
	}
	if bdC.Records == 0 {
		t.Error("QC exchanged nothing")
	}
}

func TestRunUnknownQuery(t *testing.T) {
	c := newTestCluster(t, BuiltinFactory())
	db, err := Load(c, datagen.GenTPCH(0.05, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Free()
	if _, _, err := Run(c, Query("QZ"), db); err == nil {
		t.Error("unknown query did not error")
	}
}
