package batch

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

var updateGolden = flag.Bool("update", false, "rewrite golden wire vectors")

// TestGoldenTupleWire pins the schema-ordered tuple encoding (§5.3): fixed
// field widths in schema order, strings as u32 length + UTF-16 code units,
// nulls as 0xFFFFFFFF. The checked-in bytes must decode byte for byte.
func TestGoldenTupleWire(t *testing.T) {
	cp := klass.NewPath()
	TPCHClasses(cp)
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "golden-snd", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "golden-rcv", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}

	ck := snd.MustLoad(CustomerClass)
	row := snd.Pin(snd.MustNew(ck))
	defer row.Release()
	snd.SetInt(row.Addr(), ck.FieldByName("custkey"), 42)
	snd.SetInt(row.Addr(), ck.FieldByName("nationkey"), 7)
	name := snd.Pin(snd.MustNewString("Customer#000000042"))
	defer name.Release()
	snd.SetRef(row.Addr(), ck.FieldByName("name"), name.Addr())
	snd.SetRef(row.Addr(), ck.FieldByName("mktsegment"), heap.Null)
	snd.SetDouble(row.Addr(), ck.FieldByName("acctbal"), 711.56)

	codec := NewTupleCodec(CustomerClass, nil)
	var buf bytes.Buffer
	enc := codec.NewEncoder(snd, &buf)
	for i := 0; i < 2; i++ {
		if err := enc.Write(row.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "golden", "tuple-customer.bin")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("tuple encoding drifted from golden vector (%d bytes, golden %d)", buf.Len(), len(want))
	}

	dec := codec.NewDecoder(rcv, bytes.NewReader(want))
	rk := rcv.MustLoad(CustomerClass)
	for i := 0; i < 2; i++ {
		got, err := dec.Read()
		if err != nil {
			t.Fatalf("decoding golden row %d: %v", i, err)
		}
		if rcv.GetInt(got, rk.FieldByName("custkey")) != 42 {
			t.Fatalf("row %d custkey = %d", i, rcv.GetInt(got, rk.FieldByName("custkey")))
		}
		if s := rcv.GoString(rcv.GetRef(got, rk.FieldByName("name"))); s != "Customer#000000042" {
			t.Fatalf("row %d name = %q", i, s)
		}
		if rcv.GetRef(got, rk.FieldByName("mktsegment")) != heap.Null {
			t.Fatalf("row %d null string materialized", i)
		}
		if v := rcv.GetDouble(got, rk.FieldByName("acctbal")); v != 711.56 {
			t.Fatalf("row %d acctbal = %v", i, v)
		}
	}
	if _, err := dec.Read(); err != io.EOF {
		t.Fatalf("after golden rows: %v, want EOF", err)
	}
}
