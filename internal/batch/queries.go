package batch

import (
	"fmt"
	"math"
	"sort"

	"skyway/internal/datagen"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/metrics"
)

// The five TPC-H-derived queries of §5.3 (Table 3). Each returns a scalar
// digest of its result set so runs under different serializers can be
// checked for identical answers.
//
//	QA  pricing summary for items shipped in the window     (TPC-H Q1 shape)
//	QB  minimum-cost supplier per part per region            (Q2 shape)
//	QC  shipping priority / revenue of pending orders        (Q3 shape)
//	QD  late orders per quarter                              (Q4 shape)
//	QE  lost revenue from returned items by customer         (Q10 shape)

// Query identifies one of the five workloads.
type Query string

// The query set.
const (
	QA Query = "QA"
	QB Query = "QB"
	QC Query = "QC"
	QD Query = "QD"
	QE Query = "QE"
)

// AllQueries lists the benchmark queries in report order.
func AllQueries() []Query { return []Query{QA, QB, QC, QD, QE} }

// Describe returns the Table 3 description of q.
func Describe(q Query) string {
	switch q {
	case QA:
		return "Report pricing details for all items shipped within the last 120 days."
	case QB:
		return "List the minimum cost supplier for each region for each item in the database."
	case QC:
		return "Retrieve the shipping priority and potential revenue of all pending orders."
	case QD:
		return "Count the number of late orders in each quarter of a given year."
	case QE:
		return "Report all items returned by customers sorted by the lost revenue."
	}
	return "unknown query"
}

// Run executes q over db on cluster c, returning the cost breakdown and the
// result digest.
func Run(c *Cluster, q Query, db *DB) (metrics.Breakdown, float64, error) {
	switch q {
	case QA:
		return runQA(c, db)
	case QB:
		return runQB(c, db)
	case QC:
		return runQC(c, db)
	case QD:
		return runQD(c, db)
	case QE:
		return runQE(c, db)
	}
	return metrics.Breakdown{}, 0, fmt.Errorf("batch: unknown query %q", q)
}

// field helpers --------------------------------------------------------------

func fInt(ex *Executor, row heap.Addr, k *klass.Klass, name string) int64 {
	return ex.RT.GetInt(row, k.FieldByName(name))
}

func fDouble(ex *Executor, row heap.Addr, k *klass.Klass, name string) float64 {
	return ex.RT.GetDouble(row, k.FieldByName(name))
}

// newAggRow builds an AggRow tuple; strings in tag are optional.
func newAggRow(ex *Executor, key int64, v1, v2, v3, v4 float64, count int64) (heap.Addr, error) {
	k, err := ex.RT.LoadClass(AggRowClass)
	if err != nil {
		return heap.Null, err
	}
	row, err := ex.RT.New(k)
	if err != nil {
		return heap.Null, err
	}
	ex.RT.SetLong(row, k.FieldByName("key"), key)
	ex.RT.SetDouble(row, k.FieldByName("v1"), v1)
	ex.RT.SetDouble(row, k.FieldByName("v2"), v2)
	ex.RT.SetDouble(row, k.FieldByName("v3"), v3)
	ex.RT.SetDouble(row, k.FieldByName("v4"), v4)
	ex.RT.SetLong(row, k.FieldByName("count"), count)
	return row, nil
}

// --- QA: pricing summary ------------------------------------------------------

func runQA(c *Cluster, db *DB) (metrics.Breakdown, float64, error) {
	const cutoff = datagen.TPCHDays - 120
	type agg struct {
		qty, price, disc, charge float64
		n                        int64
	}
	results := make(map[int64]*agg)

	bd, err := c.Exchange(AggRowClass, []string{"key", "v1", "v2", "v3", "v4", "count"},
		func(ex *Executor, emit Emit) error {
			lk := ex.RT.MustLoad(LineItemClass)
			n := db.LineItem.Rows(ex)
			for i := 0; i < n; i++ {
				row := db.LineItem.Row(ex, i)
				if fInt(ex, row, lk, "shipdate") > cutoff {
					continue
				}
				flag := fInt(ex, row, lk, "returnflag")
				status := fInt(ex, row, lk, "linestatus")
				key := flag<<8 | status
				price := fDouble(ex, row, lk, "extendedprice")
				disc := fDouble(ex, row, lk, "discount")
				tax := fDouble(ex, row, lk, "tax")
				out, err := newAggRow(ex,
					key,
					fDouble(ex, row, lk, "quantity"),
					price,
					price*(1-disc),
					price*(1-disc)*(1+tax),
					1)
				if err != nil {
					return err
				}
				emit(int(key)%c.Workers(), out)
			}
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			ak := ex.RT.MustLoad(AggRowClass)
			for _, row := range rows {
				key := fInt(ex, row, ak, "key")
				a := results[key]
				if a == nil {
					a = &agg{}
					results[key] = a
				}
				a.qty += fDouble(ex, row, ak, "v1")
				a.price += fDouble(ex, row, ak, "v2")
				a.disc += fDouble(ex, row, ak, "v3")
				a.charge += fDouble(ex, row, ak, "v4")
				a.n += fInt(ex, row, ak, "count")
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	var digest float64
	for key, a := range results {
		digest += float64(key) + a.qty + a.price + a.disc + a.charge + float64(a.n)
	}
	return bd, round2(digest), nil
}

// --- QB: minimum-cost supplier per part per region ----------------------------

func runQB(c *Cluster, db *DB) (metrics.Breakdown, float64, error) {
	var bd metrics.Breakdown

	// Dimension maps (nation → region) are replicated; build once per
	// executor.
	nationRegion := make([]map[int32]int32, c.Workers())
	setup, err := c.Compute(func(ex *Executor) error {
		nk := ex.RT.MustLoad(NationClass)
		m := make(map[int32]int32)
		db.Nation.Each(ex, func(row heap.Addr) {
			m[int32(fInt(ex, row, nk, "nationkey"))] = int32(fInt(ex, row, nk, "regionkey"))
		})
		nationRegion[ex.ID] = m
		return nil
	})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(setup)

	// Exchange 1: partsupp rows by partkey.
	type costRow struct {
		part, supp int32
		cost       float64
	}
	costsByPart := make([]map[int32][]costRow, c.Workers())
	for i := range costsByPart {
		costsByPart[i] = make(map[int32][]costRow)
	}
	x1, err := c.Exchange(PartSuppClass, nil,
		func(ex *Executor, emit Emit) error {
			db.PartSupp.Each(ex, func(row heap.Addr) {
				pk := ex.RT.MustLoad(PartSuppClass)
				part := int32(fInt(ex, row, pk, "partkey"))
				emit(int(part)%c.Workers(), row)
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			pk := ex.RT.MustLoad(PartSuppClass)
			for _, row := range rows {
				cr := costRow{
					part: int32(fInt(ex, row, pk, "partkey")),
					supp: int32(fInt(ex, row, pk, "suppkey")),
					cost: fDouble(ex, row, pk, "supplycost"),
				}
				costsByPart[ex.ID][cr.part] = append(costsByPart[ex.ID][cr.part], cr)
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x1)

	// Exchange 2: supplier rows by suppkey hash, so each worker can map
	// suppkey → region for the cost rows it owns. Suppliers are small;
	// replicate by emitting to every worker (broadcast join).
	suppRegion := make([]map[int32]int32, c.Workers())
	for i := range suppRegion {
		suppRegion[i] = make(map[int32]int32)
	}
	x2, err := c.Exchange(SupplierClass, []string{"suppkey", "nationkey"},
		func(ex *Executor, emit Emit) error {
			db.Supplier.Each(ex, func(row heap.Addr) {
				// Broadcasting the same row to every worker keeps it live
				// across emit calls that may allocate; re-derive the address
				// from a handle on each send.
				rh := ex.RT.Pin(row)
				for w := 0; w < c.Workers(); w++ {
					emit(w, rh.Addr())
				}
				rh.Release()
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			sk := ex.RT.MustLoad(SupplierClass)
			for _, row := range rows {
				supp := int32(fInt(ex, row, sk, "suppkey"))
				nation := int32(fInt(ex, row, sk, "nationkey"))
				suppRegion[ex.ID][supp] = nationRegion[ex.ID][nation]
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x2)

	// Local min-cost per (part, region).
	type prKey struct {
		part   int32
		region int32
	}
	mins := make(map[prKey]float64)
	fin, err := c.Compute(func(ex *Executor) error {
		for part, rows := range costsByPart[ex.ID] {
			for _, cr := range rows {
				region, ok := suppRegion[ex.ID][cr.supp]
				if !ok {
					continue
				}
				k := prKey{part, region}
				if cur, ok := mins[k]; !ok || cr.cost < cur {
					mins[k] = cr.cost
				}
			}
		}
		return nil
	})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(fin)

	var digest float64
	for k, v := range mins {
		digest += float64(k.part)*7 + float64(k.region)*13 + v
	}
	return bd, round2(digest), nil
}

// --- QC: shipping priority of pending orders ----------------------------------

func runQC(c *Cluster, db *DB) (metrics.Breakdown, float64, error) {
	var bd metrics.Breakdown
	const date = datagen.TPCHDays / 2
	segment := "BUILDING"

	// Exchange 1: filtered customers by custkey (build side).
	buildingCust := make([]map[int32]bool, c.Workers())
	for i := range buildingCust {
		buildingCust[i] = make(map[int32]bool)
	}
	x1, err := c.Exchange(CustomerClass, []string{"custkey", "mktsegment"},
		func(ex *Executor, emit Emit) error {
			ck := ex.RT.MustLoad(CustomerClass)
			db.Customer.Each(ex, func(row heap.Addr) {
				seg := ex.RT.GetRef(row, ck.FieldByName("mktsegment"))
				if seg != heap.Null && ex.RT.GoString(seg) == segment {
					emit(int(fInt(ex, row, ck, "custkey"))%c.Workers(), row)
				}
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			ck := ex.RT.MustLoad(CustomerClass)
			for _, row := range rows {
				buildingCust[ex.ID][int32(fInt(ex, row, ck, "custkey"))] = true
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x1)

	// Exchange 2: pending orders by custkey (probe), re-keyed by orderkey.
	pendingOrders := make([]map[int32]int64, c.Workers()) // orderkey → orderdate<<8|prio
	for i := range pendingOrders {
		pendingOrders[i] = make(map[int32]int64)
	}
	x2, err := c.Exchange(OrdersClass, []string{"orderkey", "custkey", "orderdate", "shippriority"},
		func(ex *Executor, emit Emit) error {
			ok := ex.RT.MustLoad(OrdersClass)
			db.Orders.Each(ex, func(row heap.Addr) {
				if fInt(ex, row, ok, "orderdate") < date {
					emit(int(fInt(ex, row, ok, "custkey"))%c.Workers(), row)
				}
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			ok := ex.RT.MustLoad(OrdersClass)
			for _, row := range rows {
				cust := int32(fInt(ex, row, ok, "custkey"))
				if !buildingCust[ex.ID][cust] {
					continue
				}
				okey := int32(fInt(ex, row, ok, "orderkey"))
				pendingOrders[ex.ID][okey] = fInt(ex, row, ok, "orderdate")<<8 | fInt(ex, row, ok, "shippriority")
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x2)

	// Qualifying orders must be visible on the workers that receive the
	// lineitem probe (partitioned by orderkey): merge the per-worker maps
	// (driver-side broadcast of a small set).
	qualified := make(map[int32]int64)
	merge, err := c.Compute(func(ex *Executor) error {
		for k, v := range pendingOrders[ex.ID] {
			qualified[k] = v
		}
		return nil
	})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(merge)

	// Exchange 3: late-shipped lineitems by orderkey; aggregate revenue.
	revenue := make(map[int32]float64)
	x3, err := c.Exchange(LineItemClass, []string{"orderkey", "extendedprice", "discount", "shipdate"},
		func(ex *Executor, emit Emit) error {
			lk := ex.RT.MustLoad(LineItemClass)
			db.LineItem.Each(ex, func(row heap.Addr) {
				if fInt(ex, row, lk, "shipdate") > date {
					emit(int(fInt(ex, row, lk, "orderkey"))%c.Workers(), row)
				}
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			lk := ex.RT.MustLoad(LineItemClass)
			for _, row := range rows {
				okey := int32(fInt(ex, row, lk, "orderkey"))
				if _, ok := qualified[okey]; !ok {
					continue
				}
				price := fDouble(ex, row, lk, "extendedprice")
				disc := fDouble(ex, row, lk, "discount")
				revenue[okey] += price * (1 - disc)
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x3)

	// Top-10 revenue digest.
	vals := make([]float64, 0, len(revenue))
	for _, v := range revenue {
		vals = append(vals, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	var digest float64
	for i, v := range vals {
		if i >= 10 {
			break
		}
		digest += v
	}
	return bd, round2(digest), nil
}

// --- QD: late orders per quarter ----------------------------------------------

func runQD(c *Cluster, db *DB) (metrics.Breakdown, float64, error) {
	var bd metrics.Breakdown
	const yearStart = datagen.TPCHDays / 2
	const yearEnd = yearStart + 360

	// Exchange 1: late lineitems by orderkey (commit missed).
	lateOrders := make([]map[int32]bool, c.Workers())
	for i := range lateOrders {
		lateOrders[i] = make(map[int32]bool)
	}
	x1, err := c.Exchange(LineItemClass, []string{"orderkey", "commitdate", "receiptdate"},
		func(ex *Executor, emit Emit) error {
			lk := ex.RT.MustLoad(LineItemClass)
			db.LineItem.Each(ex, func(row heap.Addr) {
				if fInt(ex, row, lk, "receiptdate") > fInt(ex, row, lk, "commitdate") {
					emit(int(fInt(ex, row, lk, "orderkey"))%c.Workers(), row)
				}
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			lk := ex.RT.MustLoad(LineItemClass)
			for _, row := range rows {
				lateOrders[ex.ID][int32(fInt(ex, row, lk, "orderkey"))] = true
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x1)

	// Exchange 2: orders in the year window by orderkey; count late per
	// quarter.
	counts := [4]int64{}
	x2, err := c.Exchange(OrdersClass, []string{"orderkey", "orderdate"},
		func(ex *Executor, emit Emit) error {
			ok := ex.RT.MustLoad(OrdersClass)
			db.Orders.Each(ex, func(row heap.Addr) {
				d := fInt(ex, row, ok, "orderdate")
				if d >= yearStart && d < yearEnd {
					emit(int(fInt(ex, row, ok, "orderkey"))%c.Workers(), row)
				}
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			ok := ex.RT.MustLoad(OrdersClass)
			for _, row := range rows {
				okey := int32(fInt(ex, row, ok, "orderkey"))
				if !lateOrders[ex.ID][okey] {
					continue
				}
				q := (fInt(ex, row, ok, "orderdate") - yearStart) / 90
				if q > 3 {
					q = 3
				}
				counts[q]++
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x2)

	var digest float64
	for q, n := range counts {
		digest += float64(n) * float64(q+1)
	}
	return bd, digest, nil
}

// --- QE: returned items by lost revenue ----------------------------------------

func runQE(c *Cluster, db *DB) (metrics.Breakdown, float64, error) {
	var bd metrics.Breakdown

	// Exchange 1: orders by orderkey (build: orderkey → custkey).
	orderCust := make([]map[int32]int32, c.Workers())
	for i := range orderCust {
		orderCust[i] = make(map[int32]int32)
	}
	x1, err := c.Exchange(OrdersClass, []string{"orderkey", "custkey"},
		func(ex *Executor, emit Emit) error {
			ok := ex.RT.MustLoad(OrdersClass)
			db.Orders.Each(ex, func(row heap.Addr) {
				emit(int(fInt(ex, row, ok, "orderkey"))%c.Workers(), row)
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			ok := ex.RT.MustLoad(OrdersClass)
			for _, row := range rows {
				orderCust[ex.ID][int32(fInt(ex, row, ok, "orderkey"))] = int32(fInt(ex, row, ok, "custkey"))
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x1)

	// Exchange 2: returned lineitems by orderkey; revenue lost per
	// customer.
	lost := make(map[int32]float64)
	x2, err := c.Exchange(LineItemClass, []string{"orderkey", "extendedprice", "discount", "returnflag"},
		func(ex *Executor, emit Emit) error {
			lk := ex.RT.MustLoad(LineItemClass)
			db.LineItem.Each(ex, func(row heap.Addr) {
				if byte(fInt(ex, row, lk, "returnflag")) == 'R' {
					emit(int(fInt(ex, row, lk, "orderkey"))%c.Workers(), row)
				}
			})
			return nil
		},
		func(ex *Executor, rows []heap.Addr) error {
			lk := ex.RT.MustLoad(LineItemClass)
			for _, row := range rows {
				okey := int32(fInt(ex, row, lk, "orderkey"))
				cust, ok := orderCust[ex.ID][okey]
				if !ok {
					continue
				}
				price := fDouble(ex, row, lk, "extendedprice")
				disc := fDouble(ex, row, lk, "discount")
				lost[cust] += price * (1 - disc)
			}
			return nil
		})
	if err != nil {
		return bd, 0, err
	}
	bd.Add(x2)

	// Digest: total lost revenue plus top-20 weighting.
	type kv struct {
		c int32
		v float64
	}
	all := make([]kv, 0, len(lost))
	var total float64
	for cust, v := range lost {
		all = append(all, kv{cust, v})
		total += v
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].c < all[j].c
	})
	var digest float64
	for i := 0; i < len(all) && i < 20; i++ {
		digest += all[i].v * float64(i+1)
	}
	return bd, round2(total + digest), nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
