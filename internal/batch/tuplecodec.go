package batch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

// TupleCodec is Flink's built-in serializer model: the tuple type of every
// exchange is known at plan time, so the wire format carries no type
// information at all — fields are written in schema order with fixed
// widths, strings as length-prefixed UTF-16 code units. Deserialization is
// lazy: only the fields the downstream operators access are materialized
// into the received tuple; the rest are parsed and skipped (§5.3 "Flink
// does not deserialize all fields of a row upon receiving it").
type TupleCodec struct {
	class  string
	needed map[string]bool // nil = materialize everything
}

// NewTupleCodec builds the serializer for one tuple class; needed lists the
// fields to materialize on receive (empty = all).
func NewTupleCodec(class string, needed []string) *TupleCodec {
	c := &TupleCodec{class: class}
	if len(needed) > 0 {
		c.needed = make(map[string]bool, len(needed))
		for _, f := range needed {
			c.needed[f] = true
		}
	}
	return c
}

// Name implements serial.Codec.
func (c *TupleCodec) Name() string { return "flink-builtin" }

// NewEncoder implements serial.Codec.
func (c *TupleCodec) NewEncoder(rt *vm.Runtime, w io.Writer) serial.Encoder {
	return &tupleEncoder{c: c, rt: rt, w: w, bw: bufio.NewWriterSize(w, 32<<10)}
}

// NewDecoder implements serial.Codec.
func (c *TupleCodec) NewDecoder(rt *vm.Runtime, r io.Reader) serial.Decoder {
	return &tupleDecoder{c: c, rt: rt, r: bufio.NewReaderSize(r, 32<<10)}
}

const nullString = uint32(0xFFFFFFFF)

// maxStringUnits caps the decoded length of a single string field. The wire
// format carries no type information, so a corrupt or adversarial stream can
// place any u32 where a length belongs; without a cap the decoder would try
// to allocate (and Discard) gigabytes before any later check fires. 16M
// UTF-16 code units (32 MiB payload) is far beyond any real tuple field.
const maxStringUnits = 1 << 24

type tupleEncoder struct {
	c  *TupleCodec
	rt *vm.Runtime
	w  io.Writer
	bw *bufio.Writer
	n  int64
	k  *klass.Klass
}

func (e *tupleEncoder) Bytes() int64 { return e.n + int64(e.bw.Buffered()) }

func (e *tupleEncoder) Flush() error {
	err := e.bw.Flush()
	return err
}

func (e *tupleEncoder) put(b []byte) {
	e.bw.Write(b)
	e.n += int64(len(b))
}

// Write implements serial.Encoder: one schema-ordered record, no type tag.
func (e *tupleEncoder) Write(row heap.Addr) error {
	if e.k == nil {
		k, err := e.rt.LoadClass(e.c.class)
		if err != nil {
			return err
		}
		e.k = k
	}
	if got := e.rt.KlassOf(row); got != e.k {
		return fmt.Errorf("batch: tuple serializer for %s fed a %s", e.k.Name, got.Name)
	}
	var scratch [8]byte
	for i := range e.k.Fields {
		f := &e.k.Fields[i]
		if f.Kind == klass.Ref {
			if f.Class != vm.StringClass {
				return fmt.Errorf("batch: tuple field %s.%s: only String references are supported by the built-in serializer", e.k.Name, f.Name)
			}
			s := e.rt.GetRef(row, f)
			if s == heap.Null {
				binary.BigEndian.PutUint32(scratch[:4], nullString)
				e.put(scratch[:4])
				continue
			}
			// Write the backing char[] directly: length + UTF-16
			// code units.
			val := e.rt.GetRef(s, e.rt.KlassOf(s).FieldByName("value"))
			n := e.rt.ArrayLen(val)
			binary.BigEndian.PutUint32(scratch[:4], uint32(n))
			e.put(scratch[:4])
			for j := 0; j < n; j++ {
				binary.BigEndian.PutUint16(scratch[:2], e.rt.ArrayGetChar(val, j))
				e.put(scratch[:2])
			}
			continue
		}
		raw := e.rt.Heap.Load(row, f.Offset, f.Kind)
		sz := f.Kind.Size()
		switch sz {
		case 1:
			scratch[0] = byte(raw)
		case 2:
			binary.BigEndian.PutUint16(scratch[:2], uint16(raw))
		case 4:
			binary.BigEndian.PutUint32(scratch[:4], uint32(raw))
		default:
			binary.BigEndian.PutUint64(scratch[:], raw)
		}
		e.put(scratch[:sz])
	}
	return nil
}

type tupleDecoder struct {
	c       *TupleCodec
	rt      *vm.Runtime
	r       *bufio.Reader
	k       *klass.Klass
	objects uint64
}

func (d *tupleDecoder) Objects() uint64 { return d.objects }

// Read implements serial.Decoder: parse one record, materializing only the
// needed fields.
func (d *tupleDecoder) Read() (heap.Addr, error) {
	if _, err := d.r.Peek(1); err != nil {
		return heap.Null, err
	}
	if d.k == nil {
		k, err := d.rt.LoadClass(d.c.class)
		if err != nil {
			return heap.Null, err
		}
		d.k = k
	}
	row, err := d.rt.New(d.k)
	if err != nil {
		return heap.Null, err
	}
	rh := d.rt.Pin(row)
	defer rh.Release()
	d.objects++

	var scratch [8]byte
	for i := range d.k.Fields {
		f := &d.k.Fields[i]
		wanted := d.c.needed == nil || d.c.needed[f.Name]
		if f.Kind == klass.Ref {
			if _, err := io.ReadFull(d.r, scratch[:4]); err != nil {
				return heap.Null, err
			}
			n := binary.BigEndian.Uint32(scratch[:4])
			if n == nullString {
				continue
			}
			if n > maxStringUnits {
				return heap.Null, fmt.Errorf("batch: tuple field %s.%s: string length %d exceeds the %d-unit cap (corrupt stream?)", d.k.Name, f.Name, n, maxStringUnits)
			}
			if !wanted {
				// Lazy: skip the payload without building objects.
				if _, err := d.r.Discard(int(n) * 2); err != nil {
					return heap.Null, err
				}
				continue
			}
			s, err := d.readString(int(n))
			if err != nil {
				return heap.Null, err
			}
			d.rt.SetRef(rh.Addr(), f, s)
			continue
		}
		sz := f.Kind.Size()
		if !wanted {
			if _, err := d.r.Discard(int(sz)); err != nil {
				return heap.Null, err
			}
			continue
		}
		if _, err := io.ReadFull(d.r, scratch[:sz]); err != nil {
			return heap.Null, err
		}
		var raw uint64
		switch sz {
		case 1:
			raw = uint64(scratch[0])
		case 2:
			raw = uint64(binary.BigEndian.Uint16(scratch[:2]))
		case 4:
			raw = uint64(binary.BigEndian.Uint32(scratch[:4]))
		default:
			raw = binary.BigEndian.Uint64(scratch[:])
		}
		d.rt.SetRaw(rh.Addr(), f, raw)
	}
	return rh.Addr(), nil
}

// readString materializes a String object (with backing char[]) from n
// UTF-16 code units, while protecting intermediates from GC.
func (d *tupleDecoder) readString(n int) (heap.Addr, error) {
	arrK, err := d.rt.LoadClass(vm.CharArrayClass)
	if err != nil {
		return heap.Null, err
	}
	strK, err := d.rt.LoadClass(vm.StringClass)
	if err != nil {
		return heap.Null, err
	}
	arr, err := d.rt.NewArray(arrK, n)
	if err != nil {
		return heap.Null, err
	}
	var ah *gc.Handle = d.rt.Pin(arr)
	defer ah.Release()
	var scratch [2]byte
	var hash int32
	for j := 0; j < n; j++ {
		if _, err := io.ReadFull(d.r, scratch[:]); err != nil {
			return heap.Null, err
		}
		u := binary.BigEndian.Uint16(scratch[:])
		d.rt.ArraySetChar(ah.Addr(), j, u)
		hash = 31*hash + int32(u)
	}
	s, err := d.rt.New(strK)
	if err != nil {
		return heap.Null, err
	}
	d.rt.SetRef(s, strK.FieldByName("value"), ah.Addr())
	d.rt.SetInt(s, strK.FieldByName("hash"), int64(hash))
	return s, nil
}
