package batch

import (
	"fmt"

	"skyway/internal/datagen"
	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/vm"
)

// Heap row classes for the TPC-H-shaped tables. Field order matches the
// generator structs; only the columns QA–QE touch are carried.
const (
	LineItemClass = "tpch.LineItem"
	OrdersClass   = "tpch.Orders"
	CustomerClass = "tpch.Customer"
	SupplierClass = "tpch.Supplier"
	PartClass     = "tpch.Part"
	PartSuppClass = "tpch.PartSupp"
	NationClass   = "tpch.Nation"
	RegionClass   = "tpch.Region"
	// AggRowClass is the generic keyed aggregate row queries exchange.
	AggRowClass = "tpch.AggRow"
)

// TPCHClasses defines the row schemas on cp (idempotent).
func TPCHClasses(cp *klass.Path) {
	vm.EnsureBuiltins(cp)
	if cp.Lookup(LineItemClass) != nil {
		return
	}
	cp.MustDefine(
		&klass.ClassDef{Name: LineItemClass, Fields: []klass.FieldDef{
			{Name: "orderkey", Kind: klass.Int32},
			{Name: "partkey", Kind: klass.Int32},
			{Name: "suppkey", Kind: klass.Int32},
			{Name: "quantity", Kind: klass.Float64},
			{Name: "extendedprice", Kind: klass.Float64},
			{Name: "discount", Kind: klass.Float64},
			{Name: "tax", Kind: klass.Float64},
			{Name: "returnflag", Kind: klass.Int8},
			{Name: "linestatus", Kind: klass.Int8},
			{Name: "shipdate", Kind: klass.Int32},
			{Name: "commitdate", Kind: klass.Int32},
			{Name: "receiptdate", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: OrdersClass, Fields: []klass.FieldDef{
			{Name: "orderkey", Kind: klass.Int32},
			{Name: "custkey", Kind: klass.Int32},
			{Name: "orderdate", Kind: klass.Int32},
			{Name: "shippriority", Kind: klass.Int32},
			{Name: "totalprice", Kind: klass.Float64},
		}},
		&klass.ClassDef{Name: CustomerClass, Fields: []klass.FieldDef{
			{Name: "custkey", Kind: klass.Int32},
			{Name: "nationkey", Kind: klass.Int32},
			{Name: "name", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "mktsegment", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "acctbal", Kind: klass.Float64},
		}},
		&klass.ClassDef{Name: SupplierClass, Fields: []klass.FieldDef{
			{Name: "suppkey", Kind: klass.Int32},
			{Name: "nationkey", Kind: klass.Int32},
			{Name: "name", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "acctbal", Kind: klass.Float64},
		}},
		&klass.ClassDef{Name: PartClass, Fields: []klass.FieldDef{
			{Name: "partkey", Kind: klass.Int32},
			{Name: "size", Kind: klass.Int32},
			{Name: "name", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "type", Kind: klass.Ref, Class: vm.StringClass},
		}},
		&klass.ClassDef{Name: PartSuppClass, Fields: []klass.FieldDef{
			{Name: "partkey", Kind: klass.Int32},
			{Name: "suppkey", Kind: klass.Int32},
			{Name: "supplycost", Kind: klass.Float64},
		}},
		&klass.ClassDef{Name: NationClass, Fields: []klass.FieldDef{
			{Name: "nationkey", Kind: klass.Int32},
			{Name: "regionkey", Kind: klass.Int32},
			{Name: "name", Kind: klass.Ref, Class: vm.StringClass},
		}},
		&klass.ClassDef{Name: RegionClass, Fields: []klass.FieldDef{
			{Name: "regionkey", Kind: klass.Int32},
			{Name: "name", Kind: klass.Ref, Class: vm.StringClass},
		}},
		&klass.ClassDef{Name: AggRowClass, Fields: []klass.FieldDef{
			{Name: "key", Kind: klass.Int64},
			{Name: "v1", Kind: klass.Float64},
			{Name: "v2", Kind: klass.Float64},
			{Name: "v3", Kind: klass.Float64},
			{Name: "v4", Kind: klass.Float64},
			{Name: "count", Kind: klass.Int64},
			{Name: "tag", Kind: klass.Ref, Class: vm.StringClass},
		}},
	)
}

// Table is one table's rows partitioned across executors, held in pinned
// heap ArrayLists.
type Table struct {
	Class string
	pins  []*gc.Handle
}

// Rows returns the row count on executor ex.
func (t *Table) Rows(ex *Executor) int { return ex.RT.ListLen(t.pins[ex.ID].Addr()) }

// Row returns row i on executor ex.
func (t *Table) Row(ex *Executor, i int) heap.Addr {
	return ex.RT.ListGet(t.pins[ex.ID].Addr(), i)
}

// Each iterates executor ex's partition.
func (t *Table) Each(ex *Executor, fn func(row heap.Addr)) {
	n := t.Rows(ex)
	for i := 0; i < n; i++ {
		fn(t.Row(ex, i))
	}
}

// Free releases the table's pins.
func (t *Table) Free() {
	for _, p := range t.pins {
		p.Release()
	}
}

// DB is the loaded database.
type DB struct {
	LineItem, Orders, Customer, Supplier *Table
	Part, PartSupp, Nation, Region       *Table
}

// Free releases every table.
func (db *DB) Free() {
	for _, t := range []*Table{db.LineItem, db.Orders, db.Customer, db.Supplier, db.Part, db.PartSupp, db.Nation, db.Region} {
		t.Free()
	}
}

// Load materializes the generated database as heap rows, round-robin
// partitioned across executors; small dimension tables (nation, region)
// are replicated to every executor, Flink-broadcast style.
func Load(c *Cluster, db *datagen.TPCH) (*DB, error) {
	TPCHClasses(c.CP)
	out := &DB{}
	var err error

	newTable := func(class string) (*Table, error) {
		t := &Table{Class: class}
		for _, ex := range c.Execs {
			l, err := ex.RT.NewArrayList(1024)
			if err != nil {
				return nil, err
			}
			t.pins = append(t.pins, ex.RT.Pin(l))
		}
		return t, nil
	}

	type fieldSetter func(ex *Executor, k *klass.Klass, rh *gc.Handle) error
	load := func(class string, n int, replicate bool, set func(i int) fieldSetter) (*Table, error) {
		t, err := newTable(class)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			targets := []int{i % c.Workers()}
			if replicate {
				targets = targets[:0]
				for w := 0; w < c.Workers(); w++ {
					targets = append(targets, w)
				}
			}
			for _, w := range targets {
				ex := c.Execs[w]
				k, err := ex.RT.LoadClass(class)
				if err != nil {
					return nil, err
				}
				row, err := ex.RT.New(k)
				if err != nil {
					return nil, err
				}
				rh := ex.RT.Pin(row)
				if err := set(i)(ex, k, rh); err != nil {
					rh.Release()
					return nil, err
				}
				if err := ex.RT.ListAdd(t.pins[ex.ID].Addr(), rh.Addr()); err != nil {
					rh.Release()
					return nil, err
				}
				rh.Release()
			}
		}
		return t, nil
	}

	setStr := func(ex *Executor, k *klass.Klass, rh *gc.Handle, field, val string) error {
		s, err := ex.RT.NewString(val)
		if err != nil {
			return err
		}
		// Read the row through its handle: allocating the string may
		// have triggered a collection that moved the row.
		ex.RT.SetRef(rh.Addr(), k.FieldByName(field), s)
		return nil
	}

	out.LineItem, err = load(LineItemClass, len(db.LineItems), false, func(i int) fieldSetter {
		return func(ex *Executor, k *klass.Klass, rh *gc.Handle) error {
			row := rh.Addr()
			li := &db.LineItems[i]
			ex.RT.SetInt(row, k.FieldByName("orderkey"), int64(li.OrderKey))
			ex.RT.SetInt(row, k.FieldByName("partkey"), int64(li.PartKey))
			ex.RT.SetInt(row, k.FieldByName("suppkey"), int64(li.SuppKey))
			ex.RT.SetDouble(row, k.FieldByName("quantity"), li.Quantity)
			ex.RT.SetDouble(row, k.FieldByName("extendedprice"), li.ExtendedPrice)
			ex.RT.SetDouble(row, k.FieldByName("discount"), li.Discount)
			ex.RT.SetDouble(row, k.FieldByName("tax"), li.Tax)
			ex.RT.SetInt(row, k.FieldByName("returnflag"), int64(li.ReturnFlag))
			ex.RT.SetInt(row, k.FieldByName("linestatus"), int64(li.LineStatus))
			ex.RT.SetInt(row, k.FieldByName("shipdate"), int64(li.ShipDate))
			ex.RT.SetInt(row, k.FieldByName("commitdate"), int64(li.CommitDate))
			ex.RT.SetInt(row, k.FieldByName("receiptdate"), int64(li.ReceiptDate))
			return nil
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batch: loading lineitem: %w", err)
	}

	out.Orders, err = load(OrdersClass, len(db.Orders), false, func(i int) fieldSetter {
		return func(ex *Executor, k *klass.Klass, rh *gc.Handle) error {
			row := rh.Addr()
			o := &db.Orders[i]
			ex.RT.SetInt(row, k.FieldByName("orderkey"), int64(o.OrderKey))
			ex.RT.SetInt(row, k.FieldByName("custkey"), int64(o.CustKey))
			ex.RT.SetInt(row, k.FieldByName("orderdate"), int64(o.OrderDate))
			ex.RT.SetInt(row, k.FieldByName("shippriority"), int64(o.ShipPriority))
			ex.RT.SetDouble(row, k.FieldByName("totalprice"), o.TotalPrice)
			return nil
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batch: loading orders: %w", err)
	}

	out.Customer, err = load(CustomerClass, len(db.Customers), false, func(i int) fieldSetter {
		return func(ex *Executor, k *klass.Klass, rh *gc.Handle) error {
			row := rh.Addr()
			cu := &db.Customers[i]
			ex.RT.SetInt(row, k.FieldByName("custkey"), int64(cu.CustKey))
			ex.RT.SetInt(row, k.FieldByName("nationkey"), int64(cu.NationKey))
			ex.RT.SetDouble(row, k.FieldByName("acctbal"), cu.AcctBal)
			if err := setStr(ex, k, rh, "name", cu.Name); err != nil {
				return err
			}
			return setStr(ex, k, rh, "mktsegment", cu.MktSegment)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batch: loading customer: %w", err)
	}

	out.Supplier, err = load(SupplierClass, len(db.Suppliers), false, func(i int) fieldSetter {
		return func(ex *Executor, k *klass.Klass, rh *gc.Handle) error {
			row := rh.Addr()
			s := &db.Suppliers[i]
			ex.RT.SetInt(row, k.FieldByName("suppkey"), int64(s.SuppKey))
			ex.RT.SetInt(row, k.FieldByName("nationkey"), int64(s.NationKey))
			ex.RT.SetDouble(row, k.FieldByName("acctbal"), s.AcctBal)
			return setStr(ex, k, rh, "name", s.Name)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batch: loading supplier: %w", err)
	}

	out.Part, err = load(PartClass, len(db.Parts), false, func(i int) fieldSetter {
		return func(ex *Executor, k *klass.Klass, rh *gc.Handle) error {
			row := rh.Addr()
			p := &db.Parts[i]
			ex.RT.SetInt(row, k.FieldByName("partkey"), int64(p.PartKey))
			ex.RT.SetInt(row, k.FieldByName("size"), int64(p.Size))
			if err := setStr(ex, k, rh, "name", p.Name); err != nil {
				return err
			}
			return setStr(ex, k, rh, "type", p.Type)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batch: loading part: %w", err)
	}

	out.PartSupp, err = load(PartSuppClass, len(db.PartSupps), false, func(i int) fieldSetter {
		return func(ex *Executor, k *klass.Klass, rh *gc.Handle) error {
			row := rh.Addr()
			ps := &db.PartSupps[i]
			ex.RT.SetInt(row, k.FieldByName("partkey"), int64(ps.PartKey))
			ex.RT.SetInt(row, k.FieldByName("suppkey"), int64(ps.SuppKey))
			ex.RT.SetDouble(row, k.FieldByName("supplycost"), ps.SupplyCost)
			return nil
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batch: loading partsupp: %w", err)
	}

	out.Nation, err = load(NationClass, len(db.Nations), true, func(i int) fieldSetter {
		return func(ex *Executor, k *klass.Klass, rh *gc.Handle) error {
			row := rh.Addr()
			n := &db.Nations[i]
			ex.RT.SetInt(row, k.FieldByName("nationkey"), int64(n.NationKey))
			ex.RT.SetInt(row, k.FieldByName("regionkey"), int64(n.RegionKey))
			return setStr(ex, k, rh, "name", n.Name)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batch: loading nation: %w", err)
	}

	out.Region, err = load(RegionClass, len(db.Regions), true, func(i int) fieldSetter {
		return func(ex *Executor, k *klass.Klass, rh *gc.Handle) error {
			row := rh.Addr()
			r := &db.Regions[i]
			ex.RT.SetInt(row, k.FieldByName("regionkey"), int64(r.RegionKey))
			return setStr(ex, k, rh, "name", r.Name)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batch: loading region: %w", err)
	}
	return out, nil
}
