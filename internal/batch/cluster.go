// Package batch is a miniature Flink batch engine (§5.3): typed tuple
// datasets partitioned across worker runtimes, hash exchanges between
// operators, and Flink's signature serialization design — a statically
// chosen, schema-specialized serializer per exchanged tuple type, with lazy
// deserialization that materializes only the fields downstream operators
// touch. Skyway plugs into the same exchange path through the shared
// serial.Codec interface.
package batch

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"time"

	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/metrics"
	"skyway/internal/netsim"
	"skyway/internal/obs"
	"skyway/internal/registry"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

// CodecFactory selects the serializer for one exchange of rows of the given
// class; needed lists the fields downstream operators will read (lazy
// deserialization hint — ignored by serializers without that capability).
type CodecFactory func(c *Cluster, class string, needed []string) serial.Codec

// Config sizes a cluster.
type Config struct {
	Workers int
	Heap    heap.Config
	Model   netsim.CostModel
}

// Cluster is one simulated Flink deployment.
type Cluster struct {
	CP    *klass.Path
	Reg   *registry.Registry
	Execs []*Executor
	Model netsim.CostModel

	// NewCodec picks the serializer per exchange (built-in tuple
	// serializers vs Skyway).
	NewCodec CodecFactory

	// PeakHeap tracks maximum observed executor heap usage.
	PeakHeap uint64
}

// Executor is one task-manager runtime.
type Executor struct {
	ID int
	RT *vm.Runtime
}

// DefaultHeap sizes task-manager heaps for the bundled queries.
func DefaultHeap() heap.Config {
	return heap.Config{
		EdenSize:     48 << 20,
		SurvivorSize: 4 << 20,
		OldSize:      128 << 20,
		BufferSize:   192 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
}

// NewCluster boots the task managers over a shared classpath and registry.
func NewCluster(cp *klass.Path, cfg Config, factory CodecFactory) (*Cluster, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Heap.EdenSize == 0 {
		cfg.Heap = DefaultHeap()
	}
	if cfg.Model.NetBandwidth == 0 {
		cfg.Model = netsim.Paper1GbE()
	}
	if cfg.Model.Trace == nil {
		cfg.Model.Trace = obs.NewTracer("fabric")
	}
	reg := registry.NewRegistry()
	c := &Cluster{CP: cp, Reg: reg, Model: cfg.Model, NewCodec: factory}
	for i := 0; i < cfg.Workers; i++ {
		rt, err := vm.NewRuntime(cp, vm.Options{
			Name:     fmt.Sprintf("tm-%d", i),
			Heap:     cfg.Heap,
			Registry: registry.InProc{R: reg},
		})
		if err != nil {
			return nil, err
		}
		c.Execs = append(c.Execs, &Executor{ID: i, RT: rt})
	}
	return c, nil
}

// Workers returns the task-manager count.
func (c *Cluster) Workers() int { return len(c.Execs) }

// GCStats aggregates collector statistics across the task managers.
func (c *Cluster) GCStats() gc.Stats {
	var s gc.Stats
	for _, ex := range c.Execs {
		s.Merge(ex.RT.GC.Stats())
	}
	return s
}

// BufferPeak returns the largest input-buffer high-water mark across the
// task managers.
func (c *Cluster) BufferPeak() uint64 {
	var peak uint64
	for _, ex := range c.Execs {
		if hw := ex.RT.Heap.BufferHighWater(); hw > peak {
			peak = hw
		}
	}
	return peak
}

func (c *Cluster) sampleHeaps() {
	for _, ex := range c.Execs {
		if u := ex.RT.Heap.UsedBytes(); u > c.PeakHeap {
			c.PeakHeap = u
		}
	}
}

// BuiltinFactory returns Flink's native behaviour: a schema-specialized
// tuple serializer per exchange with lazy deserialization of the needed
// fields only.
func BuiltinFactory() CodecFactory {
	return func(c *Cluster, class string, needed []string) serial.Codec {
		return NewTupleCodec(class, needed)
	}
}

// SkywayFactory returns a factory that transfers rows via Skyway; one
// service per runtime is shared across exchanges, and every exchange is a
// new shuffle phase. Codecs are cached per cluster — never across clusters,
// which would both pin retired clusters' heaps in memory and desynchronize
// shuffle phases.
func SkywayFactory() CodecFactory {
	codecs := make(map[*Cluster]*serial.SkywayCodec)
	return func(c *Cluster, class string, needed []string) serial.Codec {
		codec, ok := codecs[c]
		if !ok {
			rts := make([]*vm.Runtime, len(c.Execs))
			for i, ex := range c.Execs {
				rts[i] = ex.RT
			}
			codec = serial.NewSkywayCodec(rts...)
			// Drop retired clusters so their heap slabs can be
			// reclaimed; only the live cluster stays cached.
			clear(codecs)
			codecs[c] = codec
		}
		codec.ShuffleStartAll()
		return codec
	}
}

// Emit routes one row to a destination task manager.
type Emit func(dst int, row heap.Addr)

// Exchange runs one hash exchange of rows of the given class: produce emits
// rows on every executor (computation), rows are serialized per destination
// block (measured), spilled and fetched (modelled), deserialized (measured),
// and handed to consume (computation).
func (c *Cluster) Exchange(class string, needed []string,
	produce func(ex *Executor, emit Emit) error,
	consume func(ex *Executor, rows []heap.Addr) error) (metrics.Breakdown, error) {

	var bd metrics.Breakdown
	p := c.Workers()
	codec := c.NewCodec(c, class, needed)

	blocks := make([][][]byte, p)
	for src := 0; src < p; src++ {
		ex := c.Execs[src]
		out := make([][]*gc.Handle, p)
		start := time.Now()
		err := produce(ex, func(dst int, row heap.Addr) {
			out[dst] = append(out[dst], ex.RT.Pin(row))
		})
		if err != nil {
			return bd, fmt.Errorf("batch: produce on tm-%d: %w", src, err)
		}
		bd.Compute += time.Since(start)

		blocks[src] = make([][]byte, p)
		serStart := time.Now()
		for dst := 0; dst < p; dst++ {
			if len(out[dst]) == 0 {
				continue
			}
			var buf bytes.Buffer
			enc := codec.NewEncoder(ex.RT, &buf)
			for _, h := range out[dst] {
				if err := enc.Write(h.Addr()); err != nil {
					return bd, fmt.Errorf("batch: serialize on tm-%d: %w", src, err)
				}
			}
			if err := enc.Flush(); err != nil {
				return bd, err
			}
			blocks[src][dst] = buf.Bytes()
			bd.Records += int64(len(out[dst]))
		}
		bd.Ser += time.Since(serStart)
		for dst := range out {
			for _, h := range out[dst] {
				h.Release()
			}
		}
		var written int64
		for dst := 0; dst < p; dst++ {
			written += int64(len(blocks[src][dst]))
		}
		bd.WriteIO += c.Model.WriteTime(written)
		bd.ShuffleBytes += written
	}
	c.sampleHeaps()

	for dst := 0; dst < p; dst++ {
		ex := c.Execs[dst]
		var localB, remoteB int64
		var handles []*gc.Handle
		var freers []interface{ Free() }
		for src := 0; src < p; src++ {
			block := blocks[src][dst]
			if len(block) == 0 {
				continue
			}
			if src == dst {
				localB += int64(len(block))
			} else {
				remoteB += int64(len(block))
			}
			deserStart := time.Now()
			dec := codec.NewDecoder(ex.RT, bytes.NewReader(block))
			for {
				row, err := dec.Read()
				if err != nil {
					if errors.Is(err, io.EOF) {
						break
					}
					return bd, fmt.Errorf("batch: deserialize on tm-%d: %w", dst, err)
				}
				handles = append(handles, ex.RT.Pin(row))
			}
			bd.Deser += time.Since(deserStart)
			if f, ok := dec.(interface{ Free() }); ok {
				freers = append(freers, f)
			}
			blocks[src][dst] = nil
		}
		bd.LocalBytes += localB
		bd.RemoteBytes += remoteB
		bd.ReadIO += c.Model.FetchTime(localB, remoteB)

		start := time.Now()
		rows := make([]heap.Addr, len(handles))
		for i, h := range handles {
			rows[i] = h.Addr()
		}
		if err := consume(ex, rows); err != nil {
			return bd, fmt.Errorf("batch: consume on tm-%d: %w", dst, err)
		}
		bd.Compute += time.Since(start)
		for _, h := range handles {
			h.Release()
		}
		// Rows were consumed into operator state; free the Skyway input
		// buffers (explicit-free API, §3.2).
		for _, f := range freers {
			f.Free()
		}
	}
	c.sampleHeaps()
	return bd, nil
}

// Compute runs fn on every executor under the computation timer.
func (c *Cluster) Compute(fn func(ex *Executor) error) (metrics.Breakdown, error) {
	var bd metrics.Breakdown
	for _, ex := range c.Execs {
		start := time.Now()
		if err := fn(ex); err != nil {
			return bd, err
		}
		bd.Compute += time.Since(start)
	}
	return bd, nil
}
