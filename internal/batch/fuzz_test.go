package batch

import (
	"bytes"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/vm"
)

func fuzzTupleHeap() heap.Config {
	return heap.Config{
		EdenSize:     1 << 20,
		SurvivorSize: 256 << 10,
		OldSize:      4 << 20,
		BufferSize:   1 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
}

// FuzzTupleCodec feeds arbitrary bytes to the schema-driven tuple decoder.
// The format carries no type tags (§5.3), so every byte is trusted to be in
// schema position — the decoder must still never panic or allocate absurdly
// off a corrupt length word; it either materializes a row of the schema
// class or returns an error.
func FuzzTupleCodec(f *testing.F) {
	cp := klass.NewPath()
	TPCHClasses(cp)
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "fuzz-tuple-snd", Registry: registry.InProc{R: reg}, Heap: fuzzTupleHeap()})
	if err != nil {
		f.Fatal(err)
	}
	ck := snd.MustLoad(CustomerClass)
	row := snd.MustNew(ck)
	rh := snd.Pin(row)
	snd.SetInt(rh.Addr(), ck.FieldByName("custkey"), 7)
	snd.SetInt(rh.Addr(), ck.FieldByName("nationkey"), 3)
	name := snd.Pin(snd.MustNewString("Customer#000000007"))
	snd.SetRef(rh.Addr(), ck.FieldByName("name"), name.Addr())
	snd.SetRef(rh.Addr(), ck.FieldByName("mktsegment"), heap.Null)
	snd.SetDouble(rh.Addr(), ck.FieldByName("acctbal"), 9561.95)

	codec := NewTupleCodec(CustomerClass, nil)
	var seed bytes.Buffer
	enc := codec.NewEncoder(snd, &seed)
	if err := enc.Write(rh.Addr()); err != nil {
		f.Fatal(err)
	}
	if err := enc.Write(rh.Addr()); err != nil {
		f.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		f.Fatal(err)
	}
	name.Release()
	rh.Release()
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:seed.Len()/2])                            // truncated record
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFE})                        // absurd string length in a string slot
	f.Add(bytes.Repeat([]byte{0x41}, 64))                        // schema-width garbage

	lazy := NewTupleCodec(CustomerClass, []string{"custkey", "name"})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range []*TupleCodec{codec, lazy} {
			rcv, err := vm.NewRuntime(cp, vm.Options{Name: "fuzz-tuple-rcv", Registry: registry.InProc{R: reg}, Heap: fuzzTupleHeap()})
			if err != nil {
				t.Fatal(err)
			}
			dec := c.NewDecoder(rcv, bytes.NewReader(data))
			for {
				a, err := dec.Read()
				if err != nil {
					break // any structured error ends the stream; panics are the bug
				}
				if got := rcv.KlassOf(a); got.Name != CustomerClass {
					t.Fatalf("decoder produced a %s from a %s stream", got.Name, CustomerClass)
				}
			}
		}
	})
}
