package batch

import (
	"bytes"
	"io"
	"sort"
	"testing"

	"skyway/internal/datagen"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/race"
	"skyway/internal/registry"
	"skyway/internal/verify"
	"skyway/internal/vm"
)

func smallHeap() heap.Config {
	return heap.Config{
		EdenSize:     24 << 20,
		SurvivorSize: 2 << 20,
		OldSize:      96 << 20,
		BufferSize:   64 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
}

func newTestCluster(t *testing.T, factory CodecFactory) *Cluster {
	t.Helper()
	cp := klass.NewPath()
	TPCHClasses(cp)
	c, err := NewCluster(cp, Config{Workers: 3, Heap: smallHeap()}, factory)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTupleCodecRoundTrip(t *testing.T) {
	cp := klass.NewPath()
	TPCHClasses(cp)
	reg := registry.NewRegistry()
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "s", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	rcv, err := vm.NewRuntime(cp, vm.Options{Name: "r", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}

	ck := snd.MustLoad(CustomerClass)
	row := snd.MustNew(ck)
	rh := snd.Pin(row)
	snd.SetInt(rh.Addr(), ck.FieldByName("custkey"), 42)
	snd.SetInt(rh.Addr(), ck.FieldByName("nationkey"), 7)
	snd.SetDouble(rh.Addr(), ck.FieldByName("acctbal"), -123.45)
	s := snd.MustNewString("BUILDING")
	snd.SetRef(rh.Addr(), ck.FieldByName("mktsegment"), s)
	// name left null.

	codec := NewTupleCodec(CustomerClass, nil)
	var buf bytes.Buffer
	enc := codec.NewEncoder(snd, &buf)
	if err := enc.Write(rh.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	if enc.Bytes() != int64(buf.Len()) {
		t.Errorf("Bytes() = %d, want %d", enc.Bytes(), buf.Len())
	}

	dec := codec.NewDecoder(rcv, &buf)
	got, err := dec.Read()
	if err != nil {
		t.Fatal(err)
	}
	rck := rcv.MustLoad(CustomerClass)
	if rcv.GetInt(got, rck.FieldByName("custkey")) != 42 {
		t.Error("custkey corrupted")
	}
	if rcv.GetDouble(got, rck.FieldByName("acctbal")) != -123.45 {
		t.Error("acctbal corrupted")
	}
	if rcv.GoString(rcv.GetRef(got, rck.FieldByName("mktsegment"))) != "BUILDING" {
		t.Error("string corrupted")
	}
	if rcv.GetRef(got, rck.FieldByName("name")) != heap.Null {
		t.Error("null string not preserved")
	}
	if _, err := dec.Read(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	rh.Release()
}

func TestTupleCodecLazyFields(t *testing.T) {
	cp := klass.NewPath()
	TPCHClasses(cp)
	reg := registry.NewRegistry()
	snd, _ := vm.NewRuntime(cp, vm.Options{Name: "s", Registry: registry.InProc{R: reg}})
	rcv, _ := vm.NewRuntime(cp, vm.Options{Name: "r", Registry: registry.InProc{R: reg}})

	ck := snd.MustLoad(CustomerClass)
	row := snd.MustNew(ck)
	rh := snd.Pin(row)
	snd.SetInt(rh.Addr(), ck.FieldByName("custkey"), 9)
	snd.SetDouble(rh.Addr(), ck.FieldByName("acctbal"), 55.5)
	s := snd.MustNewString("MACHINERY")
	snd.SetRef(rh.Addr(), ck.FieldByName("mktsegment"), s)

	// Only custkey is needed: strings and acctbal must be skipped (not
	// materialized).
	codec := NewTupleCodec(CustomerClass, []string{"custkey"})
	var buf bytes.Buffer
	enc := codec.NewEncoder(snd, &buf)
	if err := enc.Write(rh.Addr()); err != nil {
		t.Fatal(err)
	}
	enc.Flush()
	got, err := codec.NewDecoder(rcv, &buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	rck := rcv.MustLoad(CustomerClass)
	if rcv.GetInt(got, rck.FieldByName("custkey")) != 9 {
		t.Error("needed field missing")
	}
	if rcv.GetRef(got, rck.FieldByName("mktsegment")) != heap.Null {
		t.Error("lazy field was materialized")
	}
	if rcv.GetDouble(got, rck.FieldByName("acctbal")) != 0 {
		t.Error("skipped primitive was materialized")
	}
	rh.Release()
}

func TestTupleCodecRejectsWrongClass(t *testing.T) {
	cp := klass.NewPath()
	TPCHClasses(cp)
	reg := registry.NewRegistry()
	snd, _ := vm.NewRuntime(cp, vm.Options{Name: "s", Registry: registry.InProc{R: reg}})
	nk := snd.MustLoad(NationClass)
	row := snd.MustNew(nk)
	codec := NewTupleCodec(CustomerClass, nil)
	enc := codec.NewEncoder(snd, io.Discard)
	if err := enc.Write(row); err == nil {
		t.Error("encoding a wrong-class row succeeded")
	}
}

func loadTestDB(t *testing.T, c *Cluster) *DB {
	t.Helper()
	gen := datagen.GenTPCH(0.4, 11)
	db, err := Load(c, gen)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestAllQueriesAgreeAcrossSerializers(t *testing.T) {
	want := make(map[Query]float64)
	for _, mode := range []string{"builtin", "skyway"} {
		var factory CodecFactory
		if mode == "builtin" {
			factory = BuiltinFactory()
		} else {
			factory = SkywayFactory()
		}
		c := newTestCluster(t, factory)
		db := loadTestDB(t, c)
		for _, q := range AllQueries() {
			bd, digest, err := Run(c, q, db)
			if err != nil {
				t.Fatalf("%s/%s: %v", mode, q, err)
			}
			if bd.ShuffleBytes == 0 {
				t.Errorf("%s/%s: no exchange volume", mode, q)
			}
			if mode == "builtin" {
				want[q] = digest
			} else if digest != want[q] {
				t.Errorf("%s: skyway digest %f != builtin %f", q, digest, want[q])
			}
		}
		db.Free()
	}
}

func TestQueryDescriptions(t *testing.T) {
	for _, q := range AllQueries() {
		if Describe(q) == "unknown query" {
			t.Errorf("no description for %s", q)
		}
	}
	if Describe(Query("QZ")) != "unknown query" {
		t.Error("bogus query described")
	}
}

func TestBuiltinSmallerButSlowerThanSkywayOnDeser(t *testing.T) {
	// Table 4's shape: Skyway emits more bytes (1.23~2.03×) but cuts
	// deserialization (geomean 0.75). Byte counts are deterministic and
	// asserted strictly on a single run; wall-clock deserialization is
	// noisy on shared hardware, so the timing claim takes the median
	// sky/builtin ratio over interleaved trials with headroom, and is
	// skipped under -short.
	run := func(factory CodecFactory) (deserPerRec float64, bytes int64) {
		c := newTestCluster(t, factory)
		db := loadTestDB(t, c)
		defer db.Free()
		var totalDeser float64
		var totalRecs, totalBytes int64
		for _, q := range AllQueries() {
			bd, _, err := Run(c, q, db)
			if err != nil {
				t.Fatal(err)
			}
			totalDeser += float64(bd.Deser)
			totalRecs += bd.Records
			totalBytes += bd.ShuffleBytes
		}
		return totalDeser / float64(totalRecs), totalBytes
	}
	builtinDeser, builtinBytes := run(BuiltinFactory())
	skyDeser, skyBytes := run(SkywayFactory())
	if skyBytes <= builtinBytes {
		t.Errorf("skyway bytes (%d) not larger than builtin (%d)", skyBytes, builtinBytes)
	}
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if verify.Enabled() {
		t.Skip("timing comparison skipped under SKYWAY_VERIFY")
	}
	if race.Enabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	const trials = 5
	ratios := []float64{skyDeser / builtinDeser}
	for len(ratios) < trials {
		b, _ := run(BuiltinFactory())
		s, _ := run(SkywayFactory())
		ratios = append(ratios, s/b)
	}
	sort.Float64s(ratios)
	median := ratios[len(ratios)/2]
	// Headroom over the paper's ~0.75× effect: a median at or above 1.10×
	// means Skyway deserialization genuinely regressed, not that the
	// scheduler hiccuped on one trial.
	if median >= 1.10 {
		t.Errorf("median skyway/builtin per-record deser ratio %.3f over %d trials not below 1.10 (ratios %v)",
			median, trials, ratios)
	}
}
