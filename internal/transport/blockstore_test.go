package transport

import "testing"

func TestBlockStorePutGetDrop(t *testing.T) {
	s := NewBlockStore[string]()
	defer s.Close()

	s.Put("a", []byte("alpha"))
	s.Put("b", []byte("beta"))
	if s.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", s.Len())
	}
	if b, ok := s.Get("a"); !ok || string(b) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", b, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get of a missing key reported ok")
	}

	// Replacing a key frees the old blob and serves the new bytes.
	s.Put("a", []byte("alpha2"))
	if b, _ := s.Get("a"); string(b) != "alpha2" {
		t.Fatalf("Get after replace = %q", b)
	}

	s.Drop("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get after Drop reported ok")
	}
	s.Drop("a") // dropping a missing key is a no-op
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
}

func TestBlockStoreOffHeap(t *testing.T) {
	t.Setenv("SKYWAY_ARENA", "1")
	s := NewBlockStore[int]()
	defer s.Close()

	src := []byte("shuffle block")
	s.Put(7, src)
	src[0] = 'X' // sender recycles its buffer; the stored copy must not move
	if b, _ := s.Get(7); string(b) != "shuffle block" {
		t.Fatalf("off-heap block aliases the sender buffer: %q", b)
	}
	s.Close()
	if s.Len() != 0 {
		t.Fatalf("Len() after Close = %d, want 0", s.Len())
	}
}
