// Conformance suite for transport.Transport implementations: every behavior
// the dataflow engine relies on is pinned here against BOTH shipped
// transports — the in-process simulator (plain and spill-backed) and the
// real-socket TCP transport over in-process block servers — so the two
// worlds cannot drift apart behind the seam.
package transport_test

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"skyway/internal/netsim"
	"skyway/internal/transport"
	tcptransport "skyway/internal/transport/tcp"
)

const conformanceWorkers = 3

// eachTransport runs fn once per shipped implementation, with a fresh
// transport each time.
func eachTransport(t *testing.T, fn func(t *testing.T, tr transport.Transport)) {
	t.Helper()
	impls := map[string]func(t *testing.T) transport.Transport{
		"netsim": func(t *testing.T) transport.Transport {
			return netsim.NewLocalTransport(netsim.Paper1GbE(), "")
		},
		"netsim-spill": func(t *testing.T) transport.Transport {
			return netsim.NewLocalTransport(netsim.Paper1GbE(), t.TempDir())
		},
		"tcp": func(t *testing.T) transport.Transport {
			return startTCP(t, conformanceWorkers)
		},
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			tr := mk(t)
			t.Cleanup(func() { tr.Close() })
			fn(t, tr)
		})
	}
}

// startTCP boots n in-process executor block servers and a transport over
// them — the same server code skywayd -executor runs, minus the process
// boundary (the multi-process path is pinned by the dataflow cluster test).
func startTCP(t *testing.T, n int) *tcptransport.Transport {
	t.Helper()
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := tcptransport.Serve(i, ln)
		t.Cleanup(func() { srv.Close() })
		peers[i] = ln.Addr().String()
	}
	return tcptransport.New(peers)
}

// testBlock builds a deterministic block whose content encodes its identity,
// sized to span size bytes (several chunks when above the TCP chunk budget).
func testBlock(src, dst, size int) []byte {
	b := make([]byte, size)
	seed := byte(31*src + dst + 7)
	for i := range b {
		seed = seed*131 + byte(i)
		b[i] = seed
	}
	copy(b, []byte(fmt.Sprintf("block-%d-%d|", src, dst)))
	return b
}

// TestConformanceShuffleRoundtrip: every published (src, dst) block comes
// back bit-identical — including blocks large enough to cross the TCP
// transport's chunking — an unpublished pair fetches as nil, a dropped block
// is gone, and rounds are isolated by seq.
func TestConformanceShuffleRoundtrip(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr transport.Transport) {
		sh, err := tr.NewShuffle(1)
		if err != nil {
			t.Fatal(err)
		}
		defer sh.Close()

		sizes := []int{1, 4 << 10, 300 << 10, 1 << 20} // 300K and 1M span chunks
		want := make(map[[2]int][]byte)
		for src := 0; src < conformanceWorkers; src++ {
			for dst := 0; dst < conformanceWorkers; dst++ {
				if src == dst && src == 0 {
					continue // (0,0) stays unpublished
				}
				b := testBlock(src, dst, sizes[(src*conformanceWorkers+dst)%len(sizes)])
				want[[2]int{src, dst}] = b
				if _, err := sh.Put(src, dst, b); err != nil {
					t.Fatalf("Put(%d,%d): %v", src, dst, err)
				}
			}
		}
		for key, wb := range want {
			got, _, err := sh.Fetch(key[0], key[1])
			if err != nil {
				t.Fatalf("Fetch(%d,%d): %v", key[0], key[1], err)
			}
			if !bytes.Equal(got, wb) {
				t.Fatalf("Fetch(%d,%d): %d bytes, want %d, content differs=%v",
					key[0], key[1], len(got), len(wb), !bytes.Equal(got, wb))
			}
		}
		// Re-fetch: the stored block survives fetches (the degradation
		// ladder re-fetches from the intact source).
		if got, _, err := sh.Fetch(1, 2); err != nil || !bytes.Equal(got, want[[2]int{1, 2}]) {
			t.Fatalf("re-Fetch(1,2) = %d bytes, err %v", len(got), err)
		}
		if got, _, err := sh.Fetch(0, 0); err != nil || got != nil {
			t.Fatalf("Fetch of unpublished block = %d bytes, err %v; want nil, nil", len(got), err)
		}
		sh.Drop(1, 2)
		if got, _, err := sh.Fetch(1, 2); err != nil || got != nil {
			t.Fatalf("Fetch after Drop = %d bytes, err %v; want nil, nil", len(got), err)
		}

		sh2, err := tr.NewShuffle(2)
		if err != nil {
			t.Fatal(err)
		}
		defer sh2.Close()
		if got, _, err := sh2.Fetch(2, 1); err != nil || got != nil {
			t.Fatalf("round 2 sees round 1's block (%d bytes, err %v)", len(got), err)
		}
	})
}

// TestConformanceBroadcast: a broadcast payload reaches every executor
// bit-identical, and broadcast rounds are isolated by seq.
func TestConformanceBroadcast(t *testing.T) {
	eachTransport(t, func(t *testing.T, tr transport.Transport) {
		payload := testBlock(9, 9, 700<<10) // spans chunks on the TCP path
		if _, err := tr.Broadcast(7, payload); err != nil {
			t.Fatalf("Broadcast: %v", err)
		}
		for ex := 0; ex < conformanceWorkers; ex++ {
			got, _, err := tr.FetchBroadcast(7, ex)
			if err != nil {
				t.Fatalf("FetchBroadcast(7, %d): %v", ex, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("executor %d broadcast copy differs (%d bytes, want %d)", ex, len(got), len(payload))
			}
		}
		if _, _, err := tr.FetchBroadcast(8, 0); err == nil {
			t.Fatal("FetchBroadcast of an unpublished round succeeded")
		}
	})
}
