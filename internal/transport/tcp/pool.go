package tcp

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"skyway/internal/core"
	"skyway/internal/fault"
	"skyway/internal/obs"
)

// Pool dial/retry counters, exported on /metrics.
var (
	ctrPoolDials   = obs.NewCounter("skyway_transport_dials_total", "TCP transport connections dialed to peer block servers.")
	ctrPoolRetries = obs.NewCounter("skyway_transport_retries_total", "TCP transport exchanges retried on a fresh connection.")
)

// poolDefaults mirror the registry client's discipline: a per-exchange
// deadline, a couple of retries over fresh connections, doubling backoff.
const (
	poolTimeout = 5 * time.Second
	poolRetries = 2
	poolBackoff = 50 * time.Millisecond
)

// pool is a tiny per-peer connection pool: at most one cached connection per
// peer address, handed out exclusively for the duration of an exchange and
// returned only if the exchange succeeded. Any failure discards the
// connection — the next exchange dials fresh. Exchanges are retried with
// doubling backoff, and every attempt runs under a connection deadline that
// is reset via defer on every exit path (the lifecycle bug this PR fixes in
// the registry client: a deadline left armed poisons the next exchange on
// the same connection).
type pool struct {
	timeout time.Duration
	retries int
	backoff time.Duration

	mu    chan struct{} // 1-token semaphore guarding idle
	idles map[string]*poolConn
}

type poolConn struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func newPool() *pool {
	p := &pool{
		timeout: poolTimeout,
		retries: poolRetries,
		backoff: poolBackoff,
		mu:      make(chan struct{}, 1),
		idles:   make(map[string]*poolConn),
	}
	p.mu <- struct{}{}
	return p
}

// get returns a ready connection to addr: the cached idle one if present,
// else a fresh dial (hello included). The caller owns it until put/discard.
func (p *pool) get(addr string) (*poolConn, error) {
	<-p.mu
	pc := p.idles[addr]
	delete(p.idles, addr)
	p.mu <- struct{}{}
	if pc != nil {
		return pc, nil
	}
	// Failpoint: the dial itself fails — unreachable peer, refused port.
	if err := fault.Inject(fault.TransportDial); err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	conn, err := net.DialTimeout("tcp", addr, p.timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	ctrPoolDials.Inc()
	pc = &poolConn{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	hello := append([]byte(helloMagic), helloVersion)
	conn.SetDeadline(time.Now().Add(p.timeout))
	_, err = conn.Write(hello)
	conn.SetDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: hello %s: %w", addr, err)
	}
	return pc, nil
}

// put returns a healthy connection to the idle cache (displacing — and
// closing — any connection cached for addr in the meantime).
func (p *pool) put(addr string, pc *poolConn) {
	<-p.mu
	old := p.idles[addr]
	p.idles[addr] = pc
	p.mu <- struct{}{}
	if old != nil {
		old.conn.Close()
	}
}

// exchange runs fn against a pooled connection to addr, retrying on fresh
// connections with doubling backoff. Each attempt runs under a full-exchange
// deadline that a deferred reset disarms on every exit path, so a timeout on
// one exchange can never poison the next one on a reused connection. A
// *core.DecodeError (torn stream) is retried too — the peer's stored block
// is intact, so a fresh conversation can succeed — but if the tear persists
// past the retry budget the structured error surfaces to the caller, where
// the dataflow degradation ladder takes over.
func (p *pool) exchange(addr string, fn func(pc *poolConn) error) error {
	var err error
	for attempt := 0; attempt <= p.retries; attempt++ {
		if attempt > 0 {
			ctrPoolRetries.Inc()
			time.Sleep(p.backoff << (attempt - 1))
		}
		err = p.attempt(addr, fn)
		if err == nil {
			return nil
		}
	}
	if de, ok := core.AsDecodeError(err); ok {
		return de
	}
	return fmt.Errorf("transport: exchange with %s failed after %d attempts: %w", addr, p.retries+1, err)
}

func (p *pool) attempt(addr string, fn func(pc *poolConn) error) error {
	pc, err := p.get(addr)
	if err != nil {
		return err
	}
	pc.conn.SetDeadline(time.Now().Add(p.timeout))
	defer pc.conn.SetDeadline(time.Time{})
	if err := fn(pc); err != nil {
		pc.conn.Close()
		return err
	}
	p.put(addr, pc)
	return nil
}

// close discards every idle connection.
func (p *pool) close() {
	<-p.mu
	for addr, pc := range p.idles {
		pc.conn.Close()
		delete(p.idles, addr)
	}
	p.mu <- struct{}{}
}
