// Package tcp is the real-network transport.Transport: shuffle blocks and
// broadcast payloads move between a driver process and N executor block
// server processes over length-prefixed, CRC-32C-framed TCP streams.
//
// Wire protocol: a connection opens with a fixed hello and then carries
// frames, one request/response conversation at a time:
//
//	hello := "SKWT" ver(u8)
//	frame := op(u8) len(u32 BE) crc32c(u32 BE) payload
//
// The CRC covers the payload, Castagnoli polynomial — the same integrity
// discipline as Skyway wire v2, applied one layer down: a torn or
// bit-flipped transfer is rejected at the framing layer, before any of it
// reaches a decoder, and surfaces as a *core.DecodeError (kind "checksum").
//
// Requests (client → server):
//
//	'P' PUT        seq(u32) src(u32) dst(u32) total(u64) chunks(u32),
//	               then chunks × DATA frames  → ACK per DATA, then 'K'
//	'G' GET        seq(u32) src(u32) dst(u32)
//	               → 'H' total(u64) chunks(u32) + chunks × DATA (ACK each),
//	                 or 'N' when the block was never published
//	'T' DROP       seq(u32) src(u32) dst(u32) → 'K'
//	'B' BCAST-PUT  seq(u32) total(u64) chunks(u32), then DATA frames → 'K'
//	'F' BCAST-GET  seq(u32) → 'H' + DATA frames, or 'N'
//
//	'D' DATA       idx(u32) bytes — one chunk of a block
//	'A' ACK        idx(u32)       — receiver's credit grant for chunk idx
//	'K' OK         no payload
//	'E' ERR        kind(u8) len(u32) detail — kind 1 marks a decode-shaped
//	               failure (torn upload), which the client rehydrates as a
//	               *core.DecodeError so the error keeps its structure across
//	               the process boundary
//
// Flow control: a block travels as DATA frames of at most chunkBytes each,
// and the sender may have at most window chunks outstanding — it blocks on
// the receiver's cumulative ACKs before sending more. A slow receiver
// therefore exerts real backpressure on the sender (and on everything
// queued behind it on that connection) instead of ballooning kernel socket
// buffers; the conformance suite pins this with a deliberately slow reader.
package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"

	"skyway/internal/core"
	"skyway/internal/fault"
)

const (
	helloMagic   = "SKWT"
	helloVersion = 1

	opPut      = 'P'
	opGet      = 'G'
	opDrop     = 'T'
	opBPut     = 'B'
	opBGet     = 'F'
	opHdr      = 'H'
	opNil      = 'N'
	opData     = 'D'
	opAck      = 'A'
	opOK       = 'K'
	opErr      = 'E'
	opShutdown = 'Q'
)

const (
	// maxFramePayload caps one frame. A declared length beyond it is
	// corruption (or a hostile peer), not a big chunk — senders never
	// produce frames above chunkBytes plus the chunk index word.
	maxFramePayload = 8 << 20
	// maxBlockBytes caps a declared block size before any buffer is
	// allocated for it, mirroring core's maxSegmentBytes discipline.
	maxBlockBytes = 1 << 30

	// chunkBytes is the DATA frame payload budget.
	chunkBytes = 256 << 10
	// defaultWindow is how many DATA frames a sender may have outstanding
	// before it blocks on the receiver's ACKs.
	defaultWindow = 8
)

// crcTable is the Castagnoli table, as in Skyway wire v2.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// tornError builds the structured error a damaged frame surfaces as. The
// transport reuses core's DecodeError so the dataflow degradation ladder
// (and the chaos matrix's closed error set) treat a stream torn on the real
// wire exactly like one torn in a simulated transfer.
func tornError(detail string) error {
	return &core.DecodeError{Kind: core.DecodeChecksum, Detail: detail}
}

// framePool recycles received frame payloads. Every readFrame used to cost
// one fresh allocation of the declared length — under a shuffle that is one
// chunk-sized make per DATA frame, the transport's dominant allocation.
// Senders never produce frames beyond chunkBytes+4 (the read-side cap is
// slack for corruption detection), so that is the pooled capacity; the rare
// larger frame is allocated and left to the GC.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, chunkBytes+4)
		return &b
	},
}

// getFramePayload returns a length-n buffer, recycled when possible.
func getFramePayload(n uint32) []byte {
	b := *framePool.Get().(*[]byte)
	if uint64(cap(b)) < uint64(n) {
		framePool.Put(&b)
		return make([]byte, n)
	}
	return b[:n]
}

// releaseFrame hands a readFrame payload back to the pool. Safe on nil. A
// caller must be completely done with the bytes — the buffer backs the next
// frame read; anything worth keeping (an ERR detail, chunk bytes) is copied
// out before release.
func releaseFrame(b []byte) {
	if cap(b) == 0 || cap(b) > chunkBytes+4 {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// writeFrame emits one frame. The caller flushes. A payload over
// maxFramePayload is rejected before any bytes move: the uint32 length
// header would truncate silently and desync the stream, turning a local
// sizing bug into a peer-side "torn stream" misdiagnosis.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("transport: frame payload %d bytes over cap %d", len(payload), maxFramePayload)
	}
	var h [9]byte
	h[0] = op
	binary.BigEndian.PutUint32(h[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint32(h[5:9], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads and validates one frame. The declared length is bounds-
// checked at full width before any allocation; a CRC mismatch surfaces as a
// *core.DecodeError so callers can tell a torn stream from a dead peer.
func readFrame(r io.Reader) (op byte, payload []byte, err error) {
	var h [9]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, err
	}
	op = h[0]
	ln := binary.BigEndian.Uint32(h[1:5])
	if ln > maxFramePayload {
		return 0, nil, tornError(fmt.Sprintf("transport frame declares %d payload bytes (cap %d)", ln, maxFramePayload))
	}
	want := binary.BigEndian.Uint32(h[5:9])
	payload = getFramePayload(ln)
	if _, err := io.ReadFull(r, payload); err != nil {
		releaseFrame(payload)
		return 0, nil, noEOF(err)
	}
	// Failpoint: the stream is torn in flight — flip one deterministic
	// byte of the received payload before the integrity check, which must
	// reject it. Applied only to DATA frames so control frames keep the
	// conversation parseable (a torn control frame severs the connection,
	// which the dial/retry path already covers).
	if op == opData && len(payload) > 4 && fault.Eval(fault.TransportStreamTorn) {
		payload[4+(len(payload)-4)/2] ^= 0xFF
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		releaseFrame(payload)
		return 0, nil, tornError(fmt.Sprintf("transport frame CRC %#x, want %#x (stream torn in flight)", got, want))
	}
	return op, payload, nil
}

// noEOF maps a bare io.EOF inside a frame to io.ErrUnexpectedEOF: running
// out of bytes mid-frame is truncation, not a clean close.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// ERR frame kinds: how the receiving side should rehydrate the error.
const (
	errKindGeneric = 0
	errKindDecode  = 1
)

// maxErrDetail caps the detail string an ERR frame carries. An error message
// that embeds megabytes of context would push the ERR frame past
// maxFramePayload — the peer would then misdiagnose the oversized frame as a
// torn stream and lose the real error. Clamped details end in errTruncMark.
const (
	maxErrDetail = 64 << 10
	errTruncMark = "... [truncated]"
)

// encodeErr builds an ERR frame payload from a server-side failure,
// preserving the decode-error shape across the wire.
func encodeErr(err error) []byte {
	kind := byte(errKindGeneric)
	if _, ok := core.AsDecodeError(err); ok {
		kind = errKindDecode
	}
	detail := err.Error()
	if len(detail) > maxErrDetail {
		detail = detail[:maxErrDetail-len(errTruncMark)] + errTruncMark
	}
	p := make([]byte, 5, 5+len(detail))
	p[0] = kind
	binary.BigEndian.PutUint32(p[1:5], uint32(len(detail)))
	return append(p, detail...)
}

// decodeErrFrame turns a received ERR payload back into an error with the
// structure the sender declared.
func decodeErrFrame(payload []byte) error {
	if len(payload) < 5 {
		return fmt.Errorf("transport: malformed ERR frame (%d bytes)", len(payload))
	}
	n := binary.BigEndian.Uint32(payload[1:5])
	if uint64(n) != uint64(len(payload)-5) {
		return fmt.Errorf("transport: malformed ERR frame (declares %d detail bytes of %d)", n, len(payload)-5)
	}
	detail := string(payload[5:])
	if payload[0] == errKindDecode {
		return tornError(detail)
	}
	return fmt.Errorf("transport: server error: %s", detail)
}

// sendBlock streams block as CRC-framed DATA chunks under the credit
// window: at most window chunks are outstanding before the sender blocks on
// the peer's cumulative ACKs. w must be flushable (bufio) — the sender
// flushes before every blocking ACK read, or both sides would deadlock.
//
// conn, when non-nil, is the raw connection underneath w: each DATA frame is
// then handed to the kernel as one vectored write (frame header + chunk
// slice straight out of block), so a chunk crosses the transport without
// ever being copied into an intermediate frame buffer. With conn nil the
// same two pieces go through w sequentially — byte-identical on the wire,
// just without the writev coalescing.
func sendBlock(w *bufio.Writer, conn io.Writer, r io.Reader, block []byte, window int) error {
	if window < 1 {
		window = 1
	}
	chunks := (len(block) + chunkBytes - 1) / chunkBytes
	outstanding := 0
	acked := uint32(0)
	awaitAck := func() error {
		if err := w.Flush(); err != nil {
			return err
		}
		op, payload, err := readFrame(r)
		if err != nil {
			return err
		}
		defer releaseFrame(payload)
		if op == opErr {
			return decodeErrFrame(payload)
		}
		if op != opAck || len(payload) != 4 {
			return fmt.Errorf("transport: want ACK, got frame %q", op)
		}
		idx := binary.BigEndian.Uint32(payload)
		if idx != acked {
			return fmt.Errorf("transport: ACK for chunk %d, want %d", idx, acked)
		}
		acked++
		outstanding--
		return nil
	}
	// One reusable 13-byte header holds the frame header (9 bytes) and the
	// chunk index word (4 bytes); with the CRC folded over index and chunk
	// incrementally, the wire bytes are exactly those of
	// writeFrame(w, opData, append(idx, chunk...)) minus the append copy.
	var h [13]byte
	h[0] = opData
	vec := make(net.Buffers, 0, 2)
	for i := 0; i < chunks; i++ {
		lo, hi := i*chunkBytes, (i+1)*chunkBytes
		if hi > len(block) {
			hi = len(block)
		}
		body := block[lo:hi]
		binary.BigEndian.PutUint32(h[1:5], uint32(4+len(body)))
		binary.BigEndian.PutUint32(h[9:13], uint32(i))
		crc := crc32.Update(0, crcTable, h[9:13])
		crc = crc32.Update(crc, crcTable, body)
		binary.BigEndian.PutUint32(h[5:9], crc)
		if conn != nil {
			// Drain the buffered writer first so bytes stay ordered, then
			// header + chunk leave in one writev.
			if err := w.Flush(); err != nil {
				return err
			}
			vec = append(vec[:0], h[:], body)
			if _, err := vec.WriteTo(conn); err != nil {
				return err
			}
		} else {
			if _, err := w.Write(h[:]); err != nil {
				return err
			}
			if _, err := w.Write(body); err != nil {
				return err
			}
		}
		outstanding++
		if outstanding >= window {
			if err := awaitAck(); err != nil {
				return err
			}
		}
	}
	for outstanding > 0 {
		if err := awaitAck(); err != nil {
			return err
		}
	}
	return w.Flush()
}

// recvBlock receives a block announced as total bytes in chunks DATA
// frames, acknowledging each chunk (the sender's credit). Both counts were
// read off the wire, so they are bounds-checked at full width before any
// buffer is sized from them. The assembled block escapes to the caller (it
// lands in a server's block table or a fetcher's hands), so it is a real
// allocation; only the per-chunk frame payloads recycle.
func recvBlock(w *bufio.Writer, r io.Reader, total uint64, chunks uint32) ([]byte, error) {
	if total > maxBlockBytes {
		return nil, tornError(fmt.Sprintf("transport block declares %d bytes (cap %d)", total, maxBlockBytes))
	}
	if uint64(chunks) != (total+chunkBytes-1)/chunkBytes {
		return nil, tornError(fmt.Sprintf("transport block declares %d chunks for %d bytes", chunks, total))
	}
	block := make([]byte, 0, total)
	var ack [4]byte
	for i := uint32(0); i < chunks; i++ {
		op, payload, err := readFrame(r)
		if err != nil {
			return nil, err
		}
		if op != opData || len(payload) < 4 {
			releaseFrame(payload)
			return nil, fmt.Errorf("transport: want DATA, got frame %q", op)
		}
		if idx := binary.BigEndian.Uint32(payload[:4]); idx != i {
			releaseFrame(payload)
			return nil, fmt.Errorf("transport: DATA chunk %d out of order, want %d", idx, i)
		}
		if uint64(len(block))+uint64(len(payload)-4) > total {
			releaseFrame(payload)
			return nil, tornError("transport block longer than declared")
		}
		block = append(block, payload[4:]...)
		releaseFrame(payload)
		// Failpoint: a slow peer — the receiver stalls before granting the
		// sender's next credit, so the window turns the stall into real
		// sender-side backpressure.
		fault.Sleep(fault.TransportPeerSlow)
		binary.BigEndian.PutUint32(ack[:], i)
		if err := writeFrame(w, opAck, ack[:]); err != nil {
			return nil, err
		}
		if err := w.Flush(); err != nil {
			return nil, err
		}
	}
	if uint64(len(block)) != total {
		return nil, tornError(fmt.Sprintf("transport block %d bytes, declared %d", len(block), total))
	}
	return block, nil
}
