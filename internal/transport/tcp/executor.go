package tcp

import (
	"fmt"
	"net"
	"time"

	"skyway/internal/registry"
)

// Executor is one running block-server process half: the listener, its
// Server, and the registry connection that advertised it.
type Executor struct {
	srv *Server
	reg *registry.TCPClient
}

// Addr returns the address the executor's block server is listening on.
func (e *Executor) Addr() string { return e.srv.Addr().String() }

// Close stops the block server and releases the registry connection.
func (e *Executor) Close() error {
	err := e.srv.Close()
	if e.reg != nil {
		e.reg.Close()
	}
	return err
}

// StartExecutor brings up executor id as a block server: listen on
// listenAddr (":0" picks a port), start serving, dial the registry at
// registryAddr, and ANNOUNCE the bound address under id so the driver's
// transport can discover it with PEERS. This is the body of `skywayd
// -executor`, shared with the multi-process tests' re-exec trampoline.
//
// registryAddr may be empty for an unannounced server (the conformance
// suite's standalone mode).
func StartExecutor(id int, registryAddr, listenAddr string) (*Executor, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("executor %d: listen %s: %w", id, listenAddr, err)
	}
	e := &Executor{srv: Serve(id, ln)}
	if registryAddr != "" {
		cli, err := registry.Dial(registryAddr)
		if err != nil {
			e.srv.Close()
			return nil, fmt.Errorf("executor %d: registry %s: %w", id, registryAddr, err)
		}
		if err := cli.Announce(int32(id), ln.Addr().String()); err != nil {
			cli.Close()
			e.srv.Close()
			return nil, fmt.Errorf("executor %d: announce: %w", id, err)
		}
		e.reg = cli
	}
	return e, nil
}

// DiscoverTransport polls the registry through pc until want executors have
// announced (or tries runs out, one registry exchange apart), then returns a
// Transport over the advertised peers. The poll exists because executor
// processes race the driver's startup — PEERS is cheap and the registry
// client already carries the backoff discipline.
func DiscoverTransport(pc registry.PeerClient, want, tries int) (*Transport, error) {
	var peers map[int32]string
	for i := 0; i < tries; i++ {
		m, err := pc.Peers()
		if err != nil {
			return nil, err
		}
		if len(m) >= want {
			peers = m
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if peers == nil {
		return nil, fmt.Errorf("transport: %d executors never announced", want)
	}
	out := make(map[int]string, len(peers))
	for id, addr := range peers {
		out[int(id)] = addr
	}
	return New(out), nil
}
