package tcp

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"skyway/internal/core"
	"skyway/internal/fault"
)

// startCluster boots n in-process block servers and a transport over them.
func startCluster(t *testing.T, n int) *Transport {
	t.Helper()
	peers := make(map[int]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(i, ln)
		t.Cleanup(func() { srv.Close() })
		peers[i] = ln.Addr().String()
	}
	return New(peers)
}

func patternBlock(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + 3)
	}
	return b
}

// TestTornStreamSurfacesDecodeError: with the torn-stream failpoint firing
// on every DATA frame, a fetch exhausts the pool's retries and surfaces a
// *core.DecodeError (kind "checksum") — the same structured shape a torn
// simulated transfer produces, so the dataflow degradation ladder handles
// both identically. After the tear clears, the SAME stored block fetches
// intact: the damage was confined to the wire copy.
func TestTornStreamSurfacesDecodeError(t *testing.T) {
	tr := startCluster(t, 2)
	defer tr.Close()
	sh, err := tr.NewShuffle(1)
	if err != nil {
		t.Fatal(err)
	}
	want := patternBlock(600 << 10)
	if _, err := sh.Put(0, 1, want); err != nil {
		t.Fatal(err)
	}

	if err := fault.Configure(fault.TransportStreamTorn + ":on"); err != nil {
		t.Fatal(err)
	}
	got, _, err := sh.Fetch(0, 1)
	fault.Reset()
	if err == nil {
		t.Fatalf("fetch over a persistently torn stream returned %d bytes", len(got))
	}
	de, ok := core.AsDecodeError(err)
	if !ok {
		t.Fatalf("torn stream surfaced %T (%v), want *core.DecodeError", err, err)
	}
	if de.Kind != core.DecodeChecksum {
		t.Fatalf("torn stream DecodeError kind %v, want checksum", de.Kind)
	}

	got, _, err = sh.Fetch(0, 1)
	if err != nil {
		t.Fatalf("fetch after the tear cleared: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stored block damaged by the torn wire copies")
	}
}

// TestTornStreamTransientAbsorbedByRetry: a single torn frame is absorbed by
// the pool's fresh-connection retry — the caller sees a clean block.
func TestTornStreamTransientAbsorbedByRetry(t *testing.T) {
	tr := startCluster(t, 2)
	defer tr.Close()
	sh, err := tr.NewShuffle(1)
	if err != nil {
		t.Fatal(err)
	}
	want := patternBlock(64 << 10)
	if _, err := sh.Put(1, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := fault.Configure(fault.TransportStreamTorn + ":on*times=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	got, _, err := sh.Fetch(1, 0)
	if err != nil {
		t.Fatalf("fetch with one torn frame: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("retried fetch returned damaged bytes")
	}
	if fault.Fired(fault.TransportStreamTorn) == 0 {
		t.Fatal("torn failpoint never fired; the test exercised nothing")
	}
}

// TestSlowPeerBackpressure: a receiver stalled before each credit grant must
// slow the SENDER down — the send window blocks the Put until the acks
// arrive, so the measured put time is bounded below by the per-chunk stall
// times the chunk count. This is the test that says the window is real flow
// control, not decoration.
func TestSlowPeerBackpressure(t *testing.T) {
	tr := startCluster(t, 2)
	defer tr.Close()
	sh, err := tr.NewShuffle(1)
	if err != nil {
		t.Fatal(err)
	}
	const delay = 5 * time.Millisecond
	// 9 chunks: more than the send window, so the sender must block on
	// credits mid-stream, not just at the trailing ack drain.
	block := patternBlock(8*chunkBytes + 1)
	chunks := (len(block) + chunkBytes - 1) / chunkBytes
	if chunks <= defaultWindow {
		t.Fatalf("test block spans %d chunks, need > window %d", chunks, defaultWindow)
	}
	if err := fault.Configure(fault.TransportPeerSlow + ":on*arg=5ms"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	elapsed, err := sh.Put(0, 1, block)
	if err != nil {
		t.Fatalf("Put under slow peer: %v", err)
	}
	if floor := time.Duration(chunks) * delay; elapsed < floor {
		t.Fatalf("Put returned in %v, below the %v backpressure floor (%d chunks × %v)",
			elapsed, floor, chunks, delay)
	}
}

// TestDialFailpoint: a persistent dial failure surfaces as a *fault.Error
// once the retry budget is spent; a transient one is absorbed by the pool's
// backoff-and-redial discipline.
func TestDialFailpoint(t *testing.T) {
	tr := startCluster(t, 2)
	defer tr.Close()
	sh, err := tr.NewShuffle(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Configure(fault.TransportDial + ":on"); err != nil {
		t.Fatal(err)
	}
	_, err = sh.Put(0, 1, patternBlock(1024))
	fault.Reset()
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Point != fault.TransportDial {
		t.Fatalf("Put under persistent dial fault = %v, want *fault.Error for %s", err, fault.TransportDial)
	}

	if err := fault.Configure(fault.TransportDial + ":on*times=1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Reset()
	want := patternBlock(1024)
	if _, err := sh.Put(0, 1, want); err != nil {
		t.Fatalf("Put under transient dial fault: %v", err)
	}
	got, _, err := sh.Fetch(0, 1)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("fetch after transient dial fault: %d bytes, err %v", len(got), err)
	}
}

// TestPooledConnectionReuse: consecutive exchanges with the same peer reuse
// one pooled connection instead of dialing per exchange.
func TestPooledConnectionReuse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(0, ln)
	defer srv.Close()
	tr := New(map[int]string{0: ln.Addr().String()})
	defer tr.Close()
	sh, err := tr.NewShuffle(1)
	if err != nil {
		t.Fatal(err)
	}
	before := ctrPoolDials.Value()
	for i := 0; i < 5; i++ {
		if _, err := sh.Put(0, 0, patternBlock(512)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := sh.Fetch(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if dials := ctrPoolDials.Value() - before; dials != 1 {
		t.Fatalf("10 exchanges dialed %d connections, want 1 pooled connection", dials)
	}
}
