package tcp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"skyway/internal/core"
	"skyway/internal/race"
)

// A payload over maxFramePayload must be rejected before any bytes move:
// the uint32 length header would truncate and desync the stream, and the
// peer would misread everything after it.
func TestWriteFrameRejectsOversizedPayload(t *testing.T) {
	var buf bytes.Buffer
	err := writeFrame(&buf, opData, make([]byte, maxFramePayload+1))
	if err == nil {
		t.Fatal("writeFrame accepted a payload over maxFramePayload")
	}
	if buf.Len() != 0 {
		t.Errorf("writeFrame wrote %d bytes before rejecting the oversized payload", buf.Len())
	}
}

// An ERR frame's detail is clamped so a pathological error string cannot
// push the frame past maxFramePayload — which the peer would misdiagnose as
// a torn stream, losing the real error entirely.
func TestEncodeErrClampsDetail(t *testing.T) {
	huge := fmt.Errorf("boom: %s", strings.Repeat("x", 2*maxErrDetail))
	p := encodeErr(huge)
	if len(p) > 5+maxErrDetail {
		t.Fatalf("ERR payload %d bytes, want at most %d", len(p), 5+maxErrDetail)
	}
	back := decodeErrFrame(p)
	if back == nil {
		t.Fatal("clamped ERR frame did not decode")
	}
	if !strings.HasSuffix(back.Error(), errTruncMark) {
		t.Errorf("clamped detail does not end in the truncation marker: ...%q", back.Error()[len(back.Error())-40:])
	}
	if !strings.Contains(back.Error(), "boom") {
		t.Error("clamped detail lost the head of the message")
	}

	// The decode-error kind must survive the clamp too.
	torn := tornError(strings.Repeat("y", 2*maxErrDetail))
	back = decodeErrFrame(encodeErr(torn))
	if _, ok := core.AsDecodeError(back); !ok {
		t.Errorf("clamped decode-shaped error lost its structure: %T", back)
	}
}

// A short error must pass through encodeErr/decodeErrFrame untouched.
func TestEncodeErrRoundTripUnclamped(t *testing.T) {
	back := decodeErrFrame(encodeErr(fmt.Errorf("small failure")))
	if !strings.Contains(back.Error(), "small failure") {
		t.Errorf("round-tripped error lost its detail: %v", back)
	}
	if strings.Contains(back.Error(), errTruncMark) {
		t.Errorf("short detail was truncated: %v", back)
	}
}

// TestFrameRoundTripSteadyStateAllocs pins the transport's hot-path memory
// discipline: after warmup, a DATA-sized frame round trip draws its payload
// from the frame pool instead of allocating per frame.
func TestFrameRoundTripSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmark skipped in -short mode")
	}
	if race.Enabled {
		t.Skip("allocation accounting differs under the race detector")
	}
	payload := bytes.Repeat([]byte{0xA5}, chunkBytes)
	var buf bytes.Buffer
	buf.Grow(chunkBytes + 64)
	// Warm the pool.
	if err := writeFrame(&buf, opData, payload); err != nil {
		t.Fatal(err)
	}
	if _, p, err := readFrame(&buf); err != nil {
		t.Fatal(err)
	} else {
		releaseFrame(p)
	}

	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := writeFrame(&buf, opData, payload); err != nil {
				panic(err)
			}
			op, p, err := readFrame(&buf)
			if err != nil {
				panic(err)
			}
			if op != opData || len(p) != chunkBytes {
				panic("frame round trip corrupted the payload shape")
			}
			releaseFrame(p)
		}
	})
	// Budget: well under one chunk — the payload buffer must recycle. The
	// slack absorbs pool misses when a GC clears the pool mid-run.
	const budget = chunkBytes / 8
	if bpo := res.AllocedBytesPerOp(); bpo > budget {
		t.Errorf("frame round trip allocates %d bytes/op, budget %d (frame payloads must recycle)", bpo, budget)
	}
}
