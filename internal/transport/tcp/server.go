package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"skyway/internal/obs"
	"skyway/internal/transport"
)

// Block-server counters, exported on /metrics.
var (
	ctrSrvBlocks     = obs.NewCounter("skyway_transport_blocks_stored_total", "Shuffle blocks stored by TCP block servers.")
	ctrSrvBlockBytes = obs.NewCounter("skyway_transport_block_bytes_total", "Shuffle block bytes stored by TCP block servers.")
	ctrSrvFetches    = obs.NewCounter("skyway_transport_fetches_total", "Block fetches served by TCP block servers.")
)

// blockID keys one shuffle block within an executor's store.
type blockID struct {
	seq, src, dst uint32
}

// Server is one executor's block server: the map side publishes the
// executor's serialized shuffle blocks here, and reducers fetch them over
// the same framed protocol. It is the process boundary of the TCP cluster —
// everything stored here arrived over a real socket, and everything fetched
// leaves over one.
type Server struct {
	id int
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool
	blocks *transport.BlockStore[blockID]
	bcasts map[uint32][]byte
}

// Serve starts an executor block server for executor id on ln. It returns
// immediately; call Close to stop.
func Serve(id int, ln net.Listener) *Server {
	s := &Server{
		id: id, ln: ln,
		conns:  make(map[net.Conn]bool),
		blocks: transport.NewBlockStore[blockID](),
		bcasts: make(map[uint32][]byte),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address peers should dial.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// ID returns the executor ID this server stores blocks for.
func (s *Server) ID() int { return s.id }

// Close stops the server, severs open connections, and waits for the
// handlers to drain. The conn-map mutation is mutex-guarded against the
// accept loop (same discipline as registry.Server.Close).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	// All handlers have drained, so no send can still be reading a block:
	// safe to release the store's off-heap blobs.
	s.blocks.Close()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// store/load/drop delegate to the shared block store (off-heap blobs under
// the arena knob); the framed conversations never run under its lock, so a
// slow transfer on one connection cannot stall another connection's lookup.
// A loaded view stays valid while it is streamed because only the owning
// reducer drops a block, and only after its fetch completed.
func (s *Server) store(id blockID, block []byte) {
	s.blocks.Put(id, block)
	ctrSrvBlocks.Inc()
	ctrSrvBlockBytes.Add(int64(len(block)))
}

func (s *Server) load(id blockID) ([]byte, bool) {
	return s.blocks.Get(id)
}

func (s *Server) dropBlock(id blockID) {
	s.blocks.Drop(id)
}

// handle runs one connection's request loop. Any protocol violation severs
// the connection — the client's pool retries on a fresh one.
func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var hello [len(helloMagic) + 1]byte
	if _, err := readFull(r, hello[:]); err != nil {
		return
	}
	if string(hello[:len(helloMagic)]) != helloMagic || hello[len(helloMagic)] != helloVersion {
		return
	}
	for {
		op, payload, err := readFrame(r)
		if err != nil {
			return
		}
		switch op {
		case opPut:
			if len(payload) != 24 {
				s.sendErr(w, fmt.Errorf("PUT header size"))
				return
			}
			id := blockID{
				seq: binary.BigEndian.Uint32(payload[0:4]),
				src: binary.BigEndian.Uint32(payload[4:8]),
				dst: binary.BigEndian.Uint32(payload[8:12]),
			}
			total := binary.BigEndian.Uint64(payload[12:20])
			chunks := binary.BigEndian.Uint32(payload[20:24])
			releaseFrame(payload)
			block, err := recvBlock(w, r, total, chunks)
			if err != nil {
				s.sendErr(w, err)
				return
			}
			s.store(id, block)
			if err := s.sendOK(w); err != nil {
				return
			}
		case opGet:
			if len(payload) != 12 {
				s.sendErr(w, fmt.Errorf("GET header size"))
				return
			}
			id := blockID{
				seq: binary.BigEndian.Uint32(payload[0:4]),
				src: binary.BigEndian.Uint32(payload[4:8]),
				dst: binary.BigEndian.Uint32(payload[8:12]),
			}
			releaseFrame(payload)
			block, ok := s.load(id)
			if !ok {
				if err := writeFrame(w, opNil, nil); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
				continue
			}
			ctrSrvFetches.Inc()
			if err := s.sendBlockWithHdr(w, r, conn, block); err != nil {
				return
			}
		case opDrop:
			if len(payload) != 12 {
				s.sendErr(w, fmt.Errorf("DROP header size"))
				return
			}
			s.dropBlock(blockID{
				seq: binary.BigEndian.Uint32(payload[0:4]),
				src: binary.BigEndian.Uint32(payload[4:8]),
				dst: binary.BigEndian.Uint32(payload[8:12]),
			})
			releaseFrame(payload)
			if err := s.sendOK(w); err != nil {
				return
			}
		case opBPut:
			if len(payload) != 16 {
				s.sendErr(w, fmt.Errorf("BCAST-PUT header size"))
				return
			}
			seq := binary.BigEndian.Uint32(payload[0:4])
			total := binary.BigEndian.Uint64(payload[4:12])
			chunks := binary.BigEndian.Uint32(payload[12:16])
			releaseFrame(payload)
			block, err := recvBlock(w, r, total, chunks)
			if err != nil {
				s.sendErr(w, err)
				return
			}
			s.mu.Lock()
			s.bcasts[seq] = block
			s.mu.Unlock()
			if err := s.sendOK(w); err != nil {
				return
			}
		case opBGet:
			if len(payload) != 4 {
				s.sendErr(w, fmt.Errorf("BCAST-GET header size"))
				return
			}
			seq := binary.BigEndian.Uint32(payload)
			releaseFrame(payload)
			s.mu.Lock()
			block, ok := s.bcasts[seq]
			s.mu.Unlock()
			if !ok {
				if err := writeFrame(w, opNil, nil); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
				continue
			}
			if err := s.sendBlockWithHdr(w, r, conn, block); err != nil {
				return
			}
		default:
			s.sendErr(w, fmt.Errorf("unknown op %q", op))
			return
		}
	}
}

// sendBlockWithHdr announces a block ('H' total chunks) and streams it
// under the credit window, reading the client's ACKs. conn is the raw
// connection under w, so DATA chunks leave as vectored writes.
func (s *Server) sendBlockWithHdr(w *bufio.Writer, r *bufio.Reader, conn net.Conn, block []byte) error {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(len(block)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32((len(block)+chunkBytes-1)/chunkBytes))
	if err := writeFrame(w, opHdr, hdr[:]); err != nil {
		return err
	}
	return sendBlock(w, conn, r, block, defaultWindow)
}

func (s *Server) sendOK(w *bufio.Writer) error {
	if err := writeFrame(w, opOK, nil); err != nil {
		return err
	}
	return w.Flush()
}

// sendErr reports a failure before the server severs the connection,
// preserving decode-error structure across the wire; best-effort (the
// client may already be gone).
func (s *Server) sendErr(w *bufio.Writer, err error) {
	writeFrame(w, opErr, encodeErr(err))
	w.Flush()
}

// readFull is io.ReadFull over the connection's buffered reader, split out
// so handle's hello read mirrors the registry server's.
func readFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
