package tcp

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"skyway/internal/transport"
)

// Transport is the real-network transport.Transport: every shuffle block and
// broadcast payload crosses loopback (or the LAN) twice — once when the map
// side PUTs it to the block server that owns it, once when the reduce side
// GETs it back. Costs are measured wall-clock: the cost methods return the
// socket time the exchanges actually clocked, so a Breakdown produced under
// this transport reports real I/O where the simulator reports modelled I/O.
//
// Block placement follows the simulator's locality story: the blocks mapper
// src produced live on executor process src, so a reduce task on executor
// dst doing Fetch(src, dst) reads remotely for every src != dst.
type Transport struct {
	peers map[int]string // executor ID → block-server address
	pool  *pool
}

// New builds a TCP transport over the given executor ID → address map
// (usually the snapshot a registry PeerClient returned from Peers).
func New(peers map[int]string) *Transport {
	t := &Transport{peers: make(map[int]string, len(peers)), pool: newPool()}
	for id, addr := range peers {
		t.peers[id] = addr
	}
	return t
}

// Peers returns the executor IDs this transport can reach, sorted.
func (t *Transport) Peers() []int {
	out := make([]int, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

func (t *Transport) addrOf(ex int) (string, error) {
	addr, ok := t.peers[ex]
	if !ok {
		return "", fmt.Errorf("transport: no block server advertised for executor %d", ex)
	}
	return addr, nil
}

// NewShuffle implements transport.Transport.
func (t *Transport) NewShuffle(seq int) (transport.Shuffle, error) {
	return &tcpShuffle{t: t, seq: uint32(seq)}, nil
}

// WriteCost implements transport.Transport: the charge is exactly the socket
// time the task's Puts measured.
func (t *Transport) WriteCost(n int64, measured time.Duration) time.Duration {
	return measured
}

// FetchCost implements transport.Transport: the charge is exactly the socket
// time the task's fetches measured, every attempt included.
func (t *Transport) FetchCost(local, remote int64, measured time.Duration) time.Duration {
	return measured
}

// Broadcast implements transport.Transport: the payload is PUT to every
// executor's block server, so each executor's later fetch is served by its
// own process (the BitTorrent-ish alternative of peer-to-peer chunk exchange
// is out of scope; the paper's broadcasts are driver-fan-out too).
func (t *Transport) Broadcast(seq int, payload []byte) (time.Duration, error) {
	start := time.Now()
	for _, ex := range t.Peers() {
		addr, err := t.addrOf(ex)
		if err != nil {
			return time.Since(start), err
		}
		var hdr [16]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(seq))
		binary.BigEndian.PutUint64(hdr[4:12], uint64(len(payload)))
		binary.BigEndian.PutUint32(hdr[12:16], uint32((len(payload)+chunkBytes-1)/chunkBytes))
		err = t.pool.exchange(addr, func(pc *poolConn) error {
			if err := writeFrame(pc.w, opBPut, hdr[:]); err != nil {
				return err
			}
			if err := sendBlock(pc.w, pc.conn, pc.r, payload, defaultWindow); err != nil {
				return err
			}
			return awaitOK(pc)
		})
		if err != nil {
			return time.Since(start), err
		}
	}
	return time.Since(start), nil
}

// FetchBroadcast implements transport.Transport.
func (t *Transport) FetchBroadcast(seq, ex int) ([]byte, time.Duration, error) {
	addr, err := t.addrOf(ex)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(seq))
	block, err := t.fetchFramed(addr, opBGet, hdr[:])
	if err != nil {
		return nil, time.Since(start), err
	}
	if block == nil {
		return nil, time.Since(start), fmt.Errorf("transport: broadcast %d not published to executor %d", seq, ex)
	}
	return block, time.Since(start), nil
}

// BroadcastCost implements transport.Transport.
func (t *Transport) BroadcastCost(n int64, measured time.Duration) time.Duration {
	return measured
}

// Close implements transport.Transport.
func (t *Transport) Close() error {
	t.pool.close()
	return nil
}

// fetchFramed runs one GET-shaped conversation (request frame out, 'H' +
// DATA frames or 'N' back) and returns the block, nil when the server never
// had one.
func (t *Transport) fetchFramed(addr string, op byte, req []byte) ([]byte, error) {
	var block []byte
	err := t.pool.exchange(addr, func(pc *poolConn) error {
		block = nil
		if err := writeFrame(pc.w, op, req); err != nil {
			return err
		}
		if err := pc.w.Flush(); err != nil {
			return err
		}
		rop, payload, err := readFrame(pc.r)
		if err != nil {
			return err
		}
		defer releaseFrame(payload)
		switch rop {
		case opNil:
			return nil
		case opErr:
			return decodeErrFrame(payload)
		case opHdr:
			if len(payload) != 12 {
				return fmt.Errorf("transport: HDR payload %d bytes, want 12", len(payload))
			}
			total := binary.BigEndian.Uint64(payload[0:8])
			chunks := binary.BigEndian.Uint32(payload[8:12])
			block, err = recvBlock(pc.w, pc.r, total, chunks)
			return err
		default:
			return fmt.Errorf("transport: want HDR or NIL, got frame %q", rop)
		}
	})
	return block, err
}

// tcpShuffle is one round's block exchange over the peer block servers.
type tcpShuffle struct {
	t   *Transport
	seq uint32
}

// Put implements transport.Shuffle: the block lands on executor src's server.
func (s *tcpShuffle) Put(src, dst int, block []byte) (time.Duration, error) {
	addr, err := s.t.addrOf(src)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	var hdr [24]byte
	binary.BigEndian.PutUint32(hdr[0:4], s.seq)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(src))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(dst))
	binary.BigEndian.PutUint64(hdr[12:20], uint64(len(block)))
	binary.BigEndian.PutUint32(hdr[20:24], uint32((len(block)+chunkBytes-1)/chunkBytes))
	err = s.t.pool.exchange(addr, func(pc *poolConn) error {
		if err := writeFrame(pc.w, opPut, hdr[:]); err != nil {
			return err
		}
		if err := sendBlock(pc.w, pc.conn, pc.r, block, defaultWindow); err != nil {
			return err
		}
		return awaitOK(pc)
	})
	return time.Since(start), err
}

// Fetch implements transport.Shuffle. The bytes come back over a socket, so
// they are already the caller's private copy — safe to tear for fault
// injection without a defensive copy.
func (s *tcpShuffle) Fetch(src, dst int) ([]byte, time.Duration, error) {
	addr, err := s.t.addrOf(src)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], s.seq)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(src))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(dst))
	block, err := s.t.fetchFramed(addr, opGet, hdr[:])
	return block, time.Since(start), err
}

// Drop implements transport.Shuffle; best-effort (an unreachable server just
// keeps the block until its process exits).
func (s *tcpShuffle) Drop(src, dst int) {
	addr, err := s.t.addrOf(src)
	if err != nil {
		return
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], s.seq)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(src))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(dst))
	s.t.pool.exchange(addr, func(pc *poolConn) error {
		if err := writeFrame(pc.w, opDrop, hdr[:]); err != nil {
			return err
		}
		return awaitOK(pc)
	})
}

// Close implements transport.Shuffle. Blocks the reducers dropped are gone;
// anything left (an aborted stage) stays on the servers, keyed by a seq no
// future round reuses.
func (s *tcpShuffle) Close() error { return nil }

// awaitOK flushes and reads the server's closing 'K' frame.
func awaitOK(pc *poolConn) error {
	if err := pc.w.Flush(); err != nil {
		return err
	}
	op, payload, err := readFrame(pc.r)
	if err != nil {
		return err
	}
	defer releaseFrame(payload)
	switch op {
	case opOK:
		return nil
	case opErr:
		return decodeErrFrame(payload)
	default:
		return fmt.Errorf("transport: want OK, got frame %q", op)
	}
}
