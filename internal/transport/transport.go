// Package transport defines the seam between the dataflow shuffle/broadcast
// path and the layer that actually moves serialized bytes between executors.
// The dataflow engine produces and consumes opaque blocks (already framed and
// checksummed by the active codec's wire format); a Transport decides where
// those blocks live and what moving them costs.
//
// Two implementations ship: netsim.LocalTransport keeps blocks in process
// (optionally spilled to real files) and prices I/O with the analytic cost
// model — the fast CI path, bit-identical to the historical simulator — and
// transport/tcp moves every block through per-executor server processes over
// length-prefixed, CRC-framed TCP streams, where the costs are measured
// wall-clock rather than modelled.
//
// The cost methods exist because the two worlds account differently: the
// simulator charges modelled time derived from byte counts, a spill-backed
// simulator mixes measured disk time with a modelled network hop, and a real
// network transport charges exactly what its sockets measured. Keeping the
// pricing policy behind the seam lets the dataflow engine stay byte-count
// centric without knowing which world it is in.
package transport

import "time"

// Transport moves serialized blocks between the executors of one cluster.
// Implementations must be safe for concurrent use by parallel tasks.
type Transport interface {
	// NewShuffle opens the block exchange for one shuffle round. seq
	// distinguishes rounds so a transport with persistent storage (spill
	// files, remote block servers) never confuses two rounds' blocks.
	NewShuffle(seq int) (Shuffle, error)

	// WriteCost converts one map task's spill totals into its write-I/O
	// charge: n is the bytes the task published and measured is the real
	// I/O time its Puts clocked (zero under a purely modelled transport).
	WriteCost(n int64, measured time.Duration) time.Duration

	// FetchCost converts one reduce task's fetch totals into its read-I/O
	// charge. local and remote are the bytes *fetched* — every attempt
	// counts, so a block re-fetched by the degradation ladder is charged
	// again — and measured is the real I/O time the fetches clocked.
	FetchCost(local, remote int64, measured time.Duration) time.Duration

	// Broadcast publishes the driver's payload to every executor; seq
	// distinguishes broadcast rounds. Returns the measured publish time
	// (zero under a purely modelled transport).
	Broadcast(seq int, payload []byte) (time.Duration, error)

	// FetchBroadcast returns executor ex's copy of broadcast seq and the
	// measured fetch time. The returned slice must not be mutated — an
	// in-process transport may hand every executor the same backing array.
	FetchBroadcast(seq, ex int) ([]byte, time.Duration, error)

	// BroadcastCost converts one executor's broadcast receive of n bytes
	// (measured fetch time included) into its read-I/O charge.
	BroadcastCost(n int64, measured time.Duration) time.Duration

	// Close releases the transport's connections and round state.
	Close() error
}

// Shuffle is one round's block exchange. Blocks are keyed by the (mapper,
// partition) pair; a block stays available until Drop so a fetch whose copy
// was damaged in flight can be retried from the intact stored bytes.
type Shuffle interface {
	// Put publishes mapper src's serialized block for partition dst and
	// returns the measured I/O time (zero under a modelled transport).
	// Empty blocks need not be published.
	Put(src, dst int, block []byte) (time.Duration, error)

	// Fetch returns a copy-on-damage view of block (src, dst) and the
	// measured fetch time. A nil block means the mapper published nothing
	// for that partition. The caller must treat the returned bytes as
	// read-only (tearing them for fault injection requires a copy).
	Fetch(src, dst int) ([]byte, time.Duration, error)

	// Drop releases a block the reducer has fully decoded.
	Drop(src, dst int)

	// Close releases the round's residual state. Blocks never dropped (an
	// aborted stage) may survive Close; the next round uses a fresh seq.
	Close() error
}
