package transport

import (
	"os"
	"sync"

	"skyway/internal/arena"
)

// BlockStore is the shared block-parking helper behind both Transport
// implementations: netsim keys blocks by (seq, src, dst), the TCP block
// servers by their wire block ID. Blocks sit in the store from a map task's
// Put until the consuming reduce task's Drop — exactly the window where
// Skyway's receive buffers used to pin managed memory — so with the arena
// knob on, every stored block lives in its own off-heap arena.Blob and the
// runtime's collector never sees the bytes.
type BlockStore[K comparable] struct {
	mu      sync.Mutex
	blobs   map[K]*arena.Blob
	offHeap bool
}

// NewBlockStore builds an empty store. Off-heap storage follows the
// SKYWAY_ARENA knob, sampled once at construction.
func NewBlockStore[K comparable]() *BlockStore[K] {
	return &BlockStore[K]{
		blobs:   make(map[K]*arena.Blob),
		offHeap: arena.Enabled(os.Getenv("SKYWAY_ARENA")),
	}
}

// Put parks block under k, copying it off-heap when the arena knob is on.
// A replaced block's storage is freed.
func (s *BlockStore[K]) Put(k K, block []byte) {
	b := arena.NewBlob(block, s.offHeap)
	s.mu.Lock()
	prev := s.blobs[k]
	s.blobs[k] = b
	s.mu.Unlock()
	if prev != nil {
		prev.Free()
	}
}

// Get returns the block parked under k. The view stays valid until the
// block is dropped or the store closed; callers must not mutate it.
func (s *BlockStore[K]) Get(k K) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[k]
	if !ok {
		return nil, false
	}
	return b.Bytes(), true
}

// Drop releases the block parked under k, freeing its off-heap storage.
// Dropping an absent key is a no-op.
func (s *BlockStore[K]) Drop(k K) {
	s.mu.Lock()
	b, ok := s.blobs[k]
	delete(s.blobs, k)
	s.mu.Unlock()
	if ok {
		b.Free()
	}
}

// Len reports how many blocks are parked.
func (s *BlockStore[K]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

// Close drops every parked block.
func (s *BlockStore[K]) Close() {
	s.mu.Lock()
	blobs := s.blobs
	s.blobs = make(map[K]*arena.Blob)
	s.mu.Unlock()
	for _, b := range blobs {
		b.Free()
	}
}
