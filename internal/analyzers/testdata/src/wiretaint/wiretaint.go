// Package wiretaint is the analysis fixture for the wiretaint analyzer:
// integers decoded off the wire must pass a full-width bounds check before
// they size an allocation, index a slice, or offset a heap address.
package wiretaint

import (
	"encoding/binary"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/vm"
)

const limit = 1 << 16

// A wire length sizing a buffer with no check at all is the canonical bug.
func badMake(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) // want `wire-derived value reaches a make size/capacity without a dominating full-width bounds check`
}

// badWrap seeds the PR 5 regression shape: the only guard compares a
// TRUNCATED conversion of the value, so a length with bit 32 set passes the
// check and oversizes the instance computation.
func badWrap(b []byte, k *klass.Klass) uint32 {
	n := int64(binary.BigEndian.Uint32(b)) * 8
	if uint32(n) > limit {
		return 0
	}
	return k.InstanceBytes(int(n)) // want `wire-derived value reaches the InstanceBytes size argument without a dominating full-width bounds check`
}

// A varint-decoded count driving an array allocation is just as untrusted.
func badNewArray(rt *vm.Runtime, k *klass.Klass, b []byte) heap.Addr {
	n, _ := binary.Uvarint(b)
	return rt.MustNewArray(k, int(n)) // want `wire-derived value reaches the MustNewArray size argument without a dominating full-width bounds check`
}

// Wire offsets must not feed heap address arithmetic unchecked.
func badAddrAdd(a heap.Addr, b []byte) heap.Addr {
	off := binary.BigEndian.Uint32(b)
	return a.Add(off) // want `wire-derived value reaches the Add size argument without a dominating full-width bounds check`
}

// Indexing a table with a wire-read ordinal can read out of bounds.
func badIndex(table []heap.Addr, b []byte) heap.Addr {
	i := binary.BigEndian.Uint16(b)
	return table[i] // want `wire-derived value reaches a slice/array index without a dominating full-width bounds check`
}

// The taint is interprocedural: a helper returning a wire read taints its
// callers through the parameter→return summary.
func frameLen(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

func badThroughHelper(b []byte) []byte {
	return make([]byte, frameLen(b)) // want `wire-derived value reaches a make size/capacity without a dominating full-width bounds check`
}

// goodWidened mirrors the fixed decode path in internal/core/reader.go: the
// count is validated with a WIDENED comparison before it reaches the sink,
// so the wrap is impossible and nothing is reported.
func goodWidened(b []byte, k *klass.Klass) uint32 {
	n := int(int64(binary.BigEndian.Uint32(b)))
	if n < 0 || uint64(n)*8 > uint64(len(b)) {
		return 0
	}
	return k.InstanceBytes(n)
}

// A same-width comparison of an unwidened uint32 cannot wrap either — the
// compare sees every bit the sink sees.
func goodSameWidth(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	if n == 0 || n > limit {
		return nil
	}
	return make([]byte, n)
}

// Sanitizing inside a helper clears the summary, so callers are clean.
func clampedLen(b []byte) uint32 {
	n := binary.BigEndian.Uint32(b)
	if n > limit {
		return limit
	}
	return n
}

func goodClampedHelper(b []byte) []byte {
	return make([]byte, clampedLen(b))
}

// Sizes that never touched the wire are not findings.
func goodLocalSize(k *klass.Klass) uint32 {
	n := 12
	return k.InstanceBytes(n)
}
