// Package addrarith is the skywayvet fixture for the addrarith analyzer:
// raw heap.Addr arithmetic outside the slab layers must be flagged, while
// sanctioned derivation, comparisons, and explicit conversions stay silent.
package addrarith

import "skyway/internal/heap"

func bad(a heap.Addr, n uint32) heap.Addr {
	b := a + heap.Addr(n) // want `raw heap\.Addr arithmetic`
	b += 8                // want `raw heap\.Addr arithmetic`
	b++                   // want `raw heap\.Addr arithmetic`
	d := b - a            // want `raw heap\.Addr arithmetic`
	m := a & 7            // want `raw heap\.Addr arithmetic`
	return d + m          // want `raw heap\.Addr arithmetic`
}

func good(a heap.Addr, n uint32) heap.Addr {
	b := a.Add(n) // sanctioned derivation
	if b > a && b != heap.Null {
		return b // comparisons cannot misalign anything
	}
	span := uint64(b) - uint64(a) // explicit conversion signals intent
	_ = span
	return heap.Null
}
