// Package atomicbaddr is the skywayvet fixture for the atomicbaddr
// analyzer: plain Heap.Baddr/Heap.SetBaddr access outside internal/heap
// must be flagged, while the atomic variants and CAS stay silent.
package atomicbaddr

import "skyway/internal/heap"

func bad(h *heap.Heap, a heap.Addr) uint64 {
	h.SetBaddr(a, 1)        // want `non-atomic baddr access`
	read := h.Baddr         // want `non-atomic baddr access`
	return h.Baddr(a) +     // want `non-atomic baddr access`
		read(a)
}

func good(h *heap.Heap, a heap.Addr) uint64 {
	h.AtomicSetBaddr(a, 1)
	if h.CasBaddr(a, 1, 2) {
		return h.AtomicBaddr(a)
	}
	return h.AtomicBaddr(a)
}
