// Package writebarrier is the analysis fixture for the writebarrier
// analyzer: Heap.Store calls that can write a reference slot without
// dirtying its card.
package writebarrier

import (
	"skyway/internal/heap"
	"skyway/internal/klass"
)

// Storing a reference without the barrier hides the old-to-young edge from
// the next scavenge.
func badRefStore(h *heap.Heap, a heap.Addr, off uint32, v uint64) {
	h.Store(a, off, klass.Ref, v) // want `reference store through Heap\.Store bypasses the card-table write barrier`
}

// A kind only known at run time could be Ref.
func badDynamicKind(h *heap.Heap, a heap.Addr, f *klass.Field, v uint64) {
	h.Store(a, f.Offset, f.Kind, v) // want `Heap\.Store with a non-constant kind may write a reference slot`
}

// Constant primitive kinds cannot write a reference.
func goodPrimStore(h *heap.Heap, a heap.Addr, off uint32, v uint64) {
	h.Store(a, off, klass.Int64, v)
}

// Pairing the store with a card-dirtying call in the same function
// satisfies the barrier discipline.
func goodBarriered(h *heap.Heap, a heap.Addr, off uint32, v uint64) {
	h.Store(a, off, klass.Ref, v)
	h.DirtyCard(a)
}

func goodDynamicBarriered(h *heap.Heap, a heap.Addr, f *klass.Field, v uint64) {
	h.Store(a, f.Offset, f.Kind, v)
	if f.Kind == klass.Ref {
		h.DirtyRange(a, klass.WordSize)
	}
}

// A reviewed suppression silences the finding on the next line.
func suppressedStore(h *heap.Heap, a heap.Addr, f *klass.Field, v uint64) {
	//skyway:allow writebarrier — fixture: the caller has checked f.Kind is primitive
	h.Store(a, f.Offset, f.Kind, v)
}
