// Package rawslab is the skywayvet fixture for the rawslab analyzer:
// binary.LittleEndian (the slab byte order) must be flagged outside the
// slab layers, while big-endian and varint wire encoding stay silent.
package rawslab

import "encoding/binary"

func bad(word uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], word) // want `slab byte order`
	le := binary.LittleEndian                 // want `slab byte order`
	return le.Uint64(b[:])
}

func good(word uint64) uint64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], word) // network wire order
	var v [binary.MaxVarintLen64]byte
	binary.PutUvarint(v[:], word) // varint wire order
	return binary.BigEndian.Uint64(b[:])
}
