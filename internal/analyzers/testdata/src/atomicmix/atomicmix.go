// Package atomicmix is the analysis fixture for the atomicmix analyzer:
// once any access site touches a variable or field through sync/atomic,
// every plain load or store of the same memory is a data race.
package atomicmix

import "sync/atomic"

// hits is claimed by the atomic increment in recordHit; the plain increment
// in resetHits races with it.
var hits uint64

func recordHit() {
	atomic.AddUint64(&hits, 1)
}

func resetHits() {
	hits++ // want `package variable hits is accessed atomically via atomic\.AddUint64 .* but plainly here`
}

type counter struct {
	n   int64
	ptr atomic.Pointer[counter]
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

// A plain store to a CAS-claimed field is the boxField shape: the racing
// write can be lost or observed torn by the atomic readers.
func (c *counter) clear() {
	c.n = 0 // want `struct field n is accessed atomically via atomic\.LoadInt64 .* but plainly here`
}

// Plain reads race just as much as stores — the load can tear.
func (c *counter) peek() int64 {
	return c.n // want `struct field n is accessed atomically via atomic\.LoadInt64 .* but plainly here`
}

func (c *counter) swap(next *counter) *counter {
	return c.ptr.Swap(next)
}

// Copying a typed atomic out of its word is a plain access of claimed
// memory (and defeats the type's whole purpose).
func (c *counter) leak() atomic.Pointer[counter] {
	return c.ptr // want `struct field ptr is accessed atomically via \(atomic\.Pointer\)\.Swap .* but plainly here`
}

// Construction is not an access: the keyed literal initializes memory no
// other goroutine can reach yet.
func fresh() *counter {
	return &counter{n: 7}
}

// plainOnly is never touched atomically, so plain access is fine.
var plainOnly int64

func bumpPlain() {
	plainOnly++
}

// atomicOnly is only ever touched atomically — also fine.
var atomicOnly uint32

func bumpAtomic() {
	atomic.AddUint32(&atomicOnly, 1)
}
