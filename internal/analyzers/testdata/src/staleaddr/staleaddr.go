// Package staleaddr is the analysis fixture for the staleaddr analyzer:
// raw heap.Addr values held live across calls that may trigger a
// collection.
package staleaddr

import (
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/vm"
)

// A raw Addr live across an allocation entry point is the canonical bug.
func badAcross(rt *vm.Runtime, k *klass.Klass, obj heap.Addr) heap.Addr {
	other := rt.MustNew(k) // want `heap.Addr obj is live across the call to \(\*skyway/internal/vm\.Runtime\)\.MustNew in badAcross`
	_ = rt.GetInt(obj, k.FieldByName("f"))
	return other
}

// Calls through function values are conservatively treated as allocating.
func badDynamic(fn func(), rt *vm.Runtime, k *klass.Klass, obj heap.Addr) int64 {
	fn() // want `heap.Addr obj is live across the call to function value \(assumed to allocate\)`
	return rt.GetInt(obj, k.FieldByName("f"))
}

// Interface calls resolve by method name against the known-mayGC set.
type collector interface{ Scavenge(int) bool }

func badIface(c collector, rt *vm.Runtime, k *klass.Klass, obj heap.Addr) int64 {
	c.Scavenge(0) // want `heap.Addr obj is live across the call to interface method Scavenge`
	return rt.GetInt(obj, k.FieldByName("f"))
}

// Loop-carried: the node address survives each callback into the next
// pointer chase — the HashMapEach shape.
func badLoop(rt *vm.Runtime, next *klass.Field, head heap.Addr, fn func(heap.Addr)) {
	for n := head; n != heap.Null; n = rt.GetRef(n, next) {
		fn(n) // want `heap.Addr n is live across the call to function value \(assumed to allocate\)`
	}
}

// Within one call expression, an earlier operand's Addr is loaded before a
// later operand allocates.
func badIntraOrder(rt *vm.Runtime, k *klass.Klass, obj heap.Addr) {
	use(obj, rt.MustNew(k)) // want `heap.Addr obj is evaluated earlier in this call expression`
}

func use(a, b heap.Addr) {}

// Rooting in a handle and re-deriving after the allocation is the fix.
func goodPinned(rt *vm.Runtime, k *klass.Klass, obj heap.Addr) heap.Addr {
	h := rt.Pin(obj)
	other := rt.MustNew(k)
	_ = rt.GetInt(h.Addr(), k.FieldByName("f"))
	h.Release()
	return other
}

// A local closure bound once to a literal devirtualizes: its body makes no
// mayGC call, so holding obj across it is fine.
func goodLocalClosure(rt *vm.Runtime, k *klass.Klass, obj heap.Addr) int64 {
	get := func(a heap.Addr) int64 { return rt.GetInt(a, k.FieldByName("f")) }
	x := get(obj)
	y := get(obj)
	return x + y
}

// Re-deriving the address before each use keeps nothing live across the
// allocation.
func goodDeadAfter(rt *vm.Runtime, k *klass.Klass, obj heap.Addr) heap.Addr {
	_ = rt.GetInt(obj, k.FieldByName("f"))
	return rt.MustNew(k)
}

// A reviewed suppression silences the finding on the next line.
func suppressed(rt *vm.Runtime, k *klass.Klass, obj heap.Addr) heap.Addr {
	//skyway:allow staleaddr — fixture: obj models an address in pinned buffer space
	other := rt.MustNew(k)
	_ = rt.GetInt(obj, k.FieldByName("f"))
	return other
}

// --- arena promotion contract -------------------------------------------------
//
// The arena's copy-on-write promotion funnel allocates in pinned buffer
// space (Heap.AllocBuffer), which never triggers a collection. That is a
// design contract the whole accessor layer rests on: typed setters promote
// through it, so raw addresses stay valid across a setter, across Promote
// itself, and across AllocBuffer — a write barrier is not a safepoint. If
// promotion ever routes through a young-generation allocation these cases
// start failing, loudly flagging every setter in the module as mayGC.

func goodSetterAcross(rt *vm.Runtime, k *klass.Klass, obj, other heap.Addr) int64 {
	rt.SetInt(other, k.FieldByName("f"), 7)
	return rt.GetInt(obj, k.FieldByName("f"))
}

func goodPromoteAcross(rt *vm.Runtime, k *klass.Klass, obj, other heap.Addr) int64 {
	if _, err := rt.Promote(other); err != nil {
		return 0
	}
	return rt.GetInt(obj, k.FieldByName("f"))
}

func goodAllocBufferAcross(rt *vm.Runtime, k *klass.Klass, obj heap.Addr) heap.Addr {
	dst := rt.Heap.AllocBuffer(64)
	_ = rt.GetInt(obj, k.FieldByName("f"))
	return dst
}
