package analyzers

import (
	"go/ast"
	"go/types"

	"skyway/internal/analyzers/framework"
)

// AtomicBaddr flags non-atomic access to baddr header words outside
// internal/heap. Concurrent Skyway senders claim baddr words with CAS
// (Algorithm 2); mixing a plain load or store with those CASes is a data
// race the race detector only catches when two senders actually collide.
// Outside the heap package (which implements both flavors), Baddr/SetBaddr
// are off limits — use AtomicBaddr, AtomicSetBaddr, or CasBaddr.
var AtomicBaddr = &framework.Analyzer{
	Name: "atomicbaddr",
	Doc: "flag non-atomic Heap.Baddr/Heap.SetBaddr access outside internal/heap; " +
		"baddr words are CAS-claimed by concurrent senders, use the Atomic variants",
	Run: runAtomicBaddr,
}

func runAtomicBaddr(p *framework.Pass) error {
	if exemptPkg(p) {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := p.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			obj := s.Obj()
			if obj.Pkg() == nil || obj.Pkg().Path() != heapPkg {
				return true
			}
			if obj.Name() != "Baddr" && obj.Name() != "SetBaddr" {
				return true
			}
			if recv := namedRecv(s.Recv()); recv == nil || recv.Obj().Name() != "Heap" {
				return true
			}
			p.Reportf(sel.Pos(), "non-atomic baddr access (Heap.%s) races with senders' CAS claims; use AtomicBaddr/AtomicSetBaddr/CasBaddr", obj.Name())
			return true
		})
	}
	return nil
}
