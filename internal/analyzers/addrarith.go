package analyzers

import (
	"go/ast"
	"go/token"

	"skyway/internal/analyzers/framework"
)

// AddrArith flags raw arithmetic on heap.Addr values outside the slab
// layers. Everything above internal/heap and internal/core must derive
// addresses through the sanctioned APIs (Addr.Add, region allocators,
// object accessors): ad-hoc pointer math is how off-by-a-header bugs and
// unpadded sizes leak into GC walks and Skyway copies. Comparisons and
// explicit conversions stay legal — they cannot manufacture a misaligned
// address.
var AddrArith = &framework.Analyzer{
	Name: "addrarith",
	Doc: "flag raw heap.Addr arithmetic outside internal/heap and internal/core; " +
		"derive addresses with Addr.Add or the region allocators",
	Run: runAddrArith,
}

// arithOps are the operators that compute a new value (comparisons excluded).
var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.SHL: true, token.SHR: true, token.AND_NOT: true,
}

var arithAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.AND_ASSIGN: true,
	token.OR_ASSIGN: true, token.XOR_ASSIGN: true, token.SHL_ASSIGN: true,
	token.SHR_ASSIGN: true, token.AND_NOT_ASSIGN: true,
}

func runAddrArith(p *framework.Pass) error {
	if exemptPkg(p) {
		return nil
	}
	addrOperand := func(e ast.Expr) bool {
		tv, ok := p.TypesInfo.Types[e]
		return ok && isHeapAddr(tv.Type)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithOps[n.Op] && (addrOperand(n.X) || addrOperand(n.Y)) {
					p.Reportf(n.OpPos, "raw heap.Addr arithmetic (%s) outside the slab layers; derive addresses with Addr.Add or the region allocators", n.Op)
				}
			case *ast.AssignStmt:
				if arithAssignOps[n.Tok] && len(n.Lhs) == 1 && addrOperand(n.Lhs[0]) {
					p.Reportf(n.TokPos, "raw heap.Addr arithmetic (%s) outside the slab layers; derive addresses with Addr.Add or the region allocators", n.Tok)
				}
			case *ast.IncDecStmt:
				if addrOperand(n.X) {
					p.Reportf(n.TokPos, "raw heap.Addr arithmetic (%s) outside the slab layers; derive addresses with Addr.Add or the region allocators", n.Tok)
				}
			}
			return true
		})
	}
	return nil
}
