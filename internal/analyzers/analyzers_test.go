package analyzers_test

import (
	"testing"

	"skyway/internal/analyzers"
	"skyway/internal/analyzers/framework"
)

// Each analyzer proves itself against a fixture package holding positive
// (`// want`-annotated) and negative cases — the analysistest contract.

const fixtureRoot = "skyway/internal/analyzers/testdata/src/"

func TestAddrArithFixture(t *testing.T) {
	framework.RunFixture(t, analyzers.AddrArith, fixtureRoot+"addrarith")
}

func TestRawSlabFixture(t *testing.T) {
	framework.RunFixture(t, analyzers.RawSlab, fixtureRoot+"rawslab")
}

func TestAtomicBaddrFixture(t *testing.T) {
	framework.RunFixture(t, analyzers.AtomicBaddr, fixtureRoot+"atomicbaddr")
}

func TestStaleAddrFixture(t *testing.T) {
	framework.RunFixture(t, analyzers.StaleAddr, fixtureRoot+"staleaddr")
}

func TestWriteBarrierFixture(t *testing.T) {
	framework.RunFixture(t, analyzers.WriteBarrier, fixtureRoot+"writebarrier")
}

func TestWireTaintFixture(t *testing.T) {
	framework.RunFixture(t, analyzers.WireTaint, fixtureRoot+"wiretaint")
}

func TestAtomicMixFixture(t *testing.T) {
	framework.RunFixture(t, analyzers.AtomicMix, fixtureRoot+"atomicmix")
}

// TestSuiteRunsCleanOnRepo is the acceptance gate: the production tree must
// carry zero findings, so a regression against any slab-layer rule fails CI
// here as well as in `go run ./cmd/skywayvet ./...`.
func TestSuiteRunsCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := framework.Load(".", "skyway/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	findings, err := framework.RunAll(pkgs, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
