package analyzers

import (
	"go/ast"

	"skyway/internal/analyzers/framework"
)

// RawSlab flags use of encoding/binary's LittleEndian outside the slab
// layers. Little-endian is the simulated heap's byte order — the contract
// that lets Skyway's CopyOut/CopyIn move object images without rewriting
// scalars. Every other byte stream in the system is a network wire format
// and uses big-endian or varint encoding; a stray LittleEndian above the
// slab layers is almost always code peeking at heap words through a byte
// lens instead of using the typed accessors.
var RawSlab = &framework.Analyzer{
	Name: "rawslab",
	Doc: "flag binary.LittleEndian (the slab byte order) outside internal/heap " +
		"and internal/core; wire formats are big-endian/varint, heap words go " +
		"through typed accessors",
	Run: runRawSlab,
}

func runRawSlab(p *framework.Pass) error {
	if exemptPkg(p) {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "encoding/binary" && obj.Name() == "LittleEndian" {
				p.Reportf(sel.Pos(), "binary.LittleEndian is the slab byte order, confined to internal/heap and internal/core; use big-endian/varint for wire formats or typed heap accessors for object words")
			}
			return true
		})
	}
	return nil
}
