package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"skyway/internal/analyzers/framework"
)

// WriteBarrier flags direct Heap.Store calls outside the collector layers
// that can write a reference slot without dirtying its card. The card table
// is the scavenger's remembered set: an old-to-young edge stored without
// DirtyCard is invisible to the next scavenge, which then frees (or moves
// without retargeting) a live young object — silent corruption. A store is
// flagged when its kind operand is the klass.Ref constant, or when the kind
// is not a compile-time constant (a dynamic field/element kind that could
// be Ref at run time), unless the enclosing function declaration also calls
// DirtyCard/DirtyRange or a refBarrier helper.
var WriteBarrier = &framework.Analyzer{
	Name: "writebarrier",
	Doc: "flag Heap.Store calls that can write a reference slot without the " +
		"card-dirtying write barrier; use Runtime.SetRef/SetRaw or pair the store " +
		"with DirtyCard/DirtyRange",
	Run: runWriteBarrier,
}

func runWriteBarrier(p *framework.Pass) error {
	if exemptPkg(p) {
		return nil
	}
	refVal := lookupConst(p.Pkg, "skyway/internal/klass", "Ref")
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if callsBarrier(p, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 3 {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !isHeapMethod(p.TypesInfo.Selections[sel], "Store") {
					return true
				}
				kind := call.Args[2]
				tv, ok := p.TypesInfo.Types[kind]
				if !ok {
					return true
				}
				switch {
				case tv.Value == nil:
					p.Reportf(call.Pos(),
						"Heap.Store with a non-constant kind may write a reference slot without the card-table write barrier; use Runtime.SetRaw/SetRef or pair the store with DirtyCard/DirtyRange")
				case refVal != nil && constant.Compare(tv.Value, token.EQL, refVal):
					p.Reportf(call.Pos(),
						"reference store through Heap.Store bypasses the card-table write barrier; use Runtime.SetRef or pair the store with DirtyCard/DirtyRange")
				}
				return true
			})
		}
	}
	return nil
}

// callsBarrier reports whether body contains a call to one of the
// card-dirtying entry points: Heap.DirtyCard, Heap.DirtyRange, or any
// function or method named refBarrier.
func callsBarrier(p *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			sel := p.TypesInfo.Selections[fun]
			if isHeapMethod(sel, "DirtyCard") || isHeapMethod(sel, "DirtyRange") ||
				fun.Sel.Name == "refBarrier" {
				found = true
			}
		case *ast.Ident:
			if fun.Name == "refBarrier" {
				found = true
			}
		}
		return true
	})
	return found
}

// lookupConst resolves a named constant's value from the type-checked
// import graph (the package itself or any transitive import), or nil.
func lookupConst(pkg *types.Package, path, name string) constant.Value {
	seen := make(map[*types.Package]bool)
	var find func(p *types.Package) constant.Value
	find = func(p *types.Package) constant.Value {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			if c, ok := p.Scope().Lookup(name).(*types.Const); ok {
				return c.Val()
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if v := find(imp); v != nil {
				return v
			}
		}
		return nil
	}
	return find(pkg)
}
