package framework

import (
	"reflect"
	"testing"
)

func TestParseAllowForms(t *testing.T) {
	cases := []struct {
		comment   string
		checks    []string
		justified bool
		ok        bool
	}{
		{"//skyway:allow staleaddr — pinned buffer space", []string{"staleaddr"}, true, true},
		{"//skyway:allow a b -- two checks, one reason", []string{"a", "b"}, true, true},
		{"//skyway:allow wiretaint", []string{"wiretaint"}, false, true},
		{"//skyway:allow wiretaint —", []string{"wiretaint"}, false, true},
		{"//skyway:allow(wiretaint) — encode path is trusted", []string{"wiretaint"}, true, true},
		{"//skyway:allow(wiretaint, atomicmix) reason text", []string{"wiretaint", "atomicmix"}, true, true},
		{"//skyway:allow(atomicmix)", []string{"atomicmix"}, false, true},
		{"//skyway:allow()", nil, false, false},
		{"//skyway:allowance n", nil, false, false},
		{"// not a directive", nil, false, false},
	}
	for _, c := range cases {
		d, ok := parseAllow(c.comment)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.comment, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if !reflect.DeepEqual(d.checks, c.checks) {
			t.Errorf("%q: checks = %v, want %v", c.comment, d.checks, c.checks)
		}
		if d.justified != c.justified {
			t.Errorf("%q: justified = %v, want %v", c.comment, d.justified, c.justified)
		}
	}
}

// TestUnjustifiedSuppressionFinding: an allow with no reason still
// suppresses the target check but surfaces as a "suppression" finding, so
// it cannot land silently.
func TestUnjustifiedSuppressionFinding(t *testing.T) {
	pkg := loadSrc(t, `package p

func f() int {
	//skyway:allow(testcheck)
	return 1
}

func g() int {
	//skyway:allow testcheck — g is exempt because this is the justified fixture case
	return 2
}
`)
	idx := suppressionsOf(pkg)
	if len(idx.directives) != 2 {
		t.Fatalf("parsed %d directives, want 2", len(idx.directives))
	}
	var audit []Finding
	auditSuppressions(pkg, idx, func(f Finding) { audit = append(audit, f) })
	if len(audit) != 1 {
		t.Fatalf("audit produced %d findings, want 1 (only the unjustified allow): %v", len(audit), audit)
	}
	if audit[0].Analyzer != SuppressionAnalyzerName {
		t.Errorf("audit finding attributed to %q, want %q", audit[0].Analyzer, SuppressionAnalyzerName)
	}
	// Both directives must still suppress on their own line and the next.
	for _, d := range idx.directives {
		pos := pkg.Fset.Position(d.pos)
		pos.Line++
		if !idx.allows("testcheck", pos) {
			t.Errorf("directive at %v does not suppress the line below", pkg.Fset.Position(d.pos))
		}
	}
}
