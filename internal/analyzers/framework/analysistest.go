package framework

import (
	"fmt"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunFixture loads the fixture package at importPath (conventionally under
// testdata/src/), runs one analyzer over it, and checks the diagnostics
// against the fixture's `// want` comments — the analysistest contract:
//
//	h.SetBaddr(a, 1) // want `non-atomic baddr`
//
// Every want comment must be matched by a diagnostic on its line, every
// diagnostic must be claimed by a want comment, and the quoted text is a
// regular expression matched against the diagnostic message. Both
// backquoted and double-quoted patterns are accepted.
func RunFixture(t *testing.T, a *Analyzer, importPath string) {
	t.Helper()
	pkgs, err := Load(".", importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s resolved to %d packages, want 1", importPath, len(pkgs))
	}
	pkg := pkgs[0]

	findings, err := RunAll(pkgs, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, importPath, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pattern, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), pattern, err)
				}
				key := lineKey(pkg.Fset.Position(c.Pos()))
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}

	for _, f := range findings {
		key := lineKey(f.Pos)
		claimed := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic at %s: %s", f.Pos, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", key, w.re)
			}
		}
	}
}

// parseWant extracts the quoted pattern from a `// want "..."` or
// `// want `+"`...`"+`` comment.
func parseWant(comment string) (string, bool) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return "", false
	}
	text = strings.TrimSpace(strings.TrimPrefix(text, "want "))
	switch {
	case strings.HasPrefix(text, "`"):
		end := strings.LastIndex(text[1:], "`")
		if end < 0 {
			return "", false
		}
		return text[1 : 1+end], true
	case strings.HasPrefix(text, `"`):
		s, err := strconv.Unquote(text)
		if err != nil {
			return "", false
		}
		return s, true
	}
	return "", false
}

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
