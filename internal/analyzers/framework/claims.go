package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Module-wide atomic-claim sweep backing the atomicmix analyzer: find every
// package-level variable and struct field accessed through sync/atomic —
// either by address (atomic.AddUint64(&s.n, 1)) or as a typed atomic
// (s.ptr.Load() on an atomic.Pointer[T]) — and remember where, so a
// per-package pass can flag the remaining plain loads and stores of the
// same memory. Granularity is the types.Var: one struct field object is
// shared by every instance, which is exactly the invariant's scope ("this
// field is CAS-claimed" is a property of the field, not of one struct
// value).

// AtomicClaim records why a variable counts as atomically accessed.
type AtomicClaim struct {
	// Pos is the first atomic access site seen, for diagnostics.
	Pos token.Position
	// Via names the access: "atomic.AddInt64" or "(atomic.Pointer).Store".
	Via string
	// Typed is true when the claim comes from a sync/atomic value type
	// (atomic.Pointer, atomic.Uint64, ...) rather than an address-taking
	// atomic call.
	Typed bool
}

const atomicPkgPath = "sync/atomic"

// AtomicClaims sweeps every loaded package once and returns the claimed
// variables. Mentions that ARE the atomic access (the &x inside the atomic
// call, the receiver of a typed atomic's method) are recorded as sanctioned
// so the atomicmix pass can skip them; query with AtomicSanctioned.
func (m *Module) AtomicClaims() map[*types.Var]AtomicClaim {
	if m.atomicClaims != nil {
		return m.atomicClaims
	}
	m.atomicClaims = make(map[*types.Var]AtomicClaim)
	m.atomicSanctioned = make(map[token.Pos]bool)
	for _, pkg := range m.pkgs {
		for _, f := range pkg.Syntax {
			m.sweepFile(pkg, f)
		}
	}
	return m.atomicClaims
}

// AtomicSanctioned reports whether the identifier at pos is itself part of
// an atomic access (and therefore not a plain access). Valid only after
// AtomicClaims has run.
func (m *Module) AtomicSanctioned(pos token.Pos) bool {
	return m.atomicSanctioned[pos]
}

func (m *Module) sweepFile(pkg *Package, f *ast.File) {
	info := pkg.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Case 1: package-level sync/atomic function — the first argument
		// is the address of the claimed word.
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == atomicPkgPath &&
			fn.Type().(*types.Signature).Recv() == nil && len(call.Args) > 0 {
			if ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if v, id := m.claimTarget(info, ue.X); v != nil {
					m.claim(pkg, v, id, "atomic."+fn.Name(), false)
				}
			}
			return true
		}
		// Case 2: method on a sync/atomic value type — the receiver
		// expression names the claimed variable or field.
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			obj := s.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == atomicPkgPath {
				if v, id := m.claimTarget(info, sel.X); v != nil {
					recv := "atomic value"
					if named := namedOf(s.Recv()); named != nil {
						recv = "atomic." + named.Obj().Name()
					}
					m.claim(pkg, v, id, "("+recv+")."+obj.Name(), true)
				}
			}
		}
		return true
	})
}

// claimTarget resolves an expression naming atomically accessed memory to a
// package-level variable or struct field, along with the identifier that
// names it (for sanctioning). Locals are out of scope — the atomicmix
// invariant is about memory shared across functions — and element accesses
// (&s.words[i]) have no per-element types.Var to claim.
func (m *Module) claimTarget(info *types.Info, e ast.Expr) (*types.Var, *ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && claimable(v) {
			return v, e
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && claimable(v) {
			return v, e.Sel
		}
	case *ast.StarExpr:
		return m.claimTarget(info, e.X)
	}
	return nil, nil
}

// claimable restricts claims to struct fields and package-level variables.
func claimable(v *types.Var) bool {
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func (m *Module) claim(pkg *Package, v *types.Var, id *ast.Ident, via string, typed bool) {
	m.atomicSanctioned[id.Pos()] = true
	if _, ok := m.atomicClaims[v]; !ok {
		m.atomicClaims[v] = AtomicClaim{Pos: pkg.Fset.Position(id.Pos()), Via: via, Typed: typed}
	}
}

// namedOf unwraps a type to its named form through one pointer level.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
