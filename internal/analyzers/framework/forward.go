package framework

// This file is the forward half of the dataflow engine: a generic
// join-lattice worklist solver over the shared statement-granular CFG
// (cfg.go). The backward liveness pass (liveness.go) predates it and keeps
// its specialized solver; new forward analyses (taint.go) implement
// ForwardProblem and call SolveForward.

// State is one point in a join-semilattice of abstract program states.
// Join computes the least upper bound and must not mutate either operand;
// Equal decides fixpoint convergence. The solver represents bottom (the
// state of an unreached node) as a nil State, so implementations never see
// a nil argument.
type State interface {
	Join(State) State
	Equal(State) bool
}

// ForwardProblem describes one forward dataflow analysis: the state on
// function entry and the transfer function applied to each CFG node.
// Transfer must not mutate in; it returns the state after the node's
// payload executes. For the solver to terminate on its own the transfer
// function should be monotone over a finite-height lattice; the solver
// additionally accumulates each node's output by join and caps visits per
// node (the widening guard), so even a non-monotone or infinite-height
// problem cannot loop forever.
type ForwardProblem interface {
	Entry() State
	Transfer(n *CFGNode, in State) State
}

// widenFactor bounds solver visits per node: a finite-height lattice
// converges in height*|nodes| visits at worst, and well-formed skywayvet
// problems (powerset lattices over a function's variables) converge far
// sooner. The cap only matters for ill-behaved State implementations.
const widenFactor = 64

// SolveForward runs the worklist fixpoint for p over cfg and returns the
// state at the entry of every reached node (the "in" states). Nodes
// unreachable from Entry are absent from the result.
func SolveForward(cfg *CFG, p ForwardProblem) map[*CFGNode]State {
	in := make(map[*CFGNode]State, len(cfg.Nodes))
	out := make(map[*CFGNode]State, len(cfg.Nodes))
	visits := make(map[*CFGNode]int, len(cfg.Nodes))
	maxVisits := widenFactor * (len(cfg.Nodes) + 1)

	in[cfg.Entry] = p.Entry()
	work := []*CFGNode{cfg.Entry}
	queued := map[*CFGNode]bool{cfg.Entry: true}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		queued[n] = false
		if visits[n] >= maxVisits {
			// Widening guard: stop revisiting; the states computed so far
			// are a sound under-approximation for a may-analysis.
			continue
		}
		visits[n]++

		o := p.Transfer(n, in[n])
		if prev := out[n]; prev != nil {
			// Accumulate by join: output states only grow, which restores
			// monotonicity even if Transfer itself is not monotone.
			o = prev.Join(o)
			if o.Equal(prev) {
				continue
			}
		}
		out[n] = o
		for _, s := range n.Succs {
			joined := o
			if prev := in[s]; prev != nil {
				joined = prev.Join(o)
				if joined.Equal(prev) {
					continue
				}
			}
			in[s] = joined
			if !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return in
}
