// Package bad carries a deliberate type error so loader tests can assert
// that Load fails gracefully instead of panicking.
package bad

import "brokenmod/good"

// Oops assigns a string to an int.
var Oops int = "not an int"

// Fine is well-typed on its own.
func Fine() int { return good.Twice(21) }
