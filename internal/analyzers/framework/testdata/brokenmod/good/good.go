// Package good compiles; its sibling does not.
package good

// Twice doubles its argument.
func Twice(x int) int { return 2 * x }
