module okmod

go 1.22
