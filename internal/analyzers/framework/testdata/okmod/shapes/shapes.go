// Package shapes is half of the multi-package loader fixture.
package shapes

// Area computes a rectangle's area.
func Area(w, h int) int { return w * h }
