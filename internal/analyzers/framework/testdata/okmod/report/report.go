// Package report imports its sibling, exercising cross-package resolution
// inside a loaded fixture module.
package report

import (
	"fmt"

	"okmod/shapes"
)

// Describe formats a rectangle's area.
func Describe(w, h int) string {
	return fmt.Sprintf("%dx%d: %d", w, h, shapes.Area(w, h))
}
