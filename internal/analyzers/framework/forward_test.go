package framework

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
	"time"
)

// loadSrc parses and type-checks one source file into a framework Package,
// bypassing the go-list loader so framework tests need no module on disk.
func loadSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking test source: %v", err)
	}
	return &Package{ImportPath: "p", Fset: fset, Syntax: []*ast.File{f}, Types: tpkg, TypesInfo: info}
}

// funcBodyOf returns the body of the named top-level function.
func funcBodyOf(t *testing.T, pkg *Package, name string) *ast.BlockStmt {
	t.Helper()
	for _, decl := range pkg.Syntax[0].Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("no function %q in test source", name)
	return nil
}

// strSet is a powerset State over assigned-variable names, used to exercise
// the solver independently of the taint engine.
type strSet map[string]struct{}

func (s strSet) Join(o State) State {
	out := make(strSet, len(s))
	for k := range s {
		out[k] = struct{}{}
	}
	for k := range o.(strSet) {
		out[k] = struct{}{}
	}
	return out
}

func (s strSet) Equal(o State) bool {
	os := o.(strSet)
	if len(s) != len(os) {
		return false
	}
	for k := range s {
		if _, ok := os[k]; !ok {
			return false
		}
	}
	return true
}

// assignedNames implements ForwardProblem: the state is the set of variable
// names assigned on some path reaching the node.
type assignedNames struct{}

func (assignedNames) Entry() State { return make(strSet) }

func (assignedNames) Transfer(n *CFGNode, in State) State {
	out := in.Join(make(strSet)).(strSet)
	for _, pl := range n.Payload {
		if as, ok := pl.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					out[id.Name] = struct{}{}
				}
			}
		}
	}
	return out
}

// TestSolveForwardLoop checks fixpoint convergence on a CFG with a back
// edge: facts established inside the loop body must reach the loop head and
// the exit.
func TestSolveForwardLoop(t *testing.T) {
	pkg := loadSrc(t, `package p
func f() int {
	x := 0
	for i := 0; i < 10; i++ {
		y := i
		x = y
	}
	return x
}`)
	cfg := BuildCFG(funcBodyOf(t, pkg, "f"))
	in := SolveForward(cfg, assignedNames{})
	exit, ok := in[cfg.Exit]
	if !ok {
		t.Fatal("exit node unreached by forward solver")
	}
	got := exit.(strSet)
	for _, want := range []string{"x", "i", "y"} {
		if _, ok := got[want]; !ok {
			t.Errorf("exit state missing %q (loop-body facts must flow around the back edge); got %v", want, got)
		}
	}
}

// TestSolveForwardBranchJoin checks that the join at a merge point is the
// union of both branches.
func TestSolveForwardBranchJoin(t *testing.T) {
	pkg := loadSrc(t, `package p
func f(c bool) int {
	a := 0
	if c {
		b := 1
		a = b
	} else {
		d := 2
		a = d
	}
	return a
}`)
	cfg := BuildCFG(funcBodyOf(t, pkg, "f"))
	in := SolveForward(cfg, assignedNames{})
	got := in[cfg.Exit].(strSet)
	for _, want := range []string{"a", "b", "d"} {
		if _, ok := got[want]; !ok {
			t.Errorf("merge state missing %q: join must union both branches; got %v", want, got)
		}
	}
}

// divergent is an adversarial State whose Join always strictly grows — an
// infinite-ascending-chain lattice. The solver's widening guard must still
// terminate on a loop CFG.
type divergent int

func (d divergent) Join(o State) State {
	od := o.(divergent)
	if od > d {
		d = od
	}
	return d + 1
}
func (d divergent) Equal(o State) bool { return false }

type divergentProblem struct{}

func (divergentProblem) Entry() State                       { return divergent(0) }
func (divergentProblem) Transfer(n *CFGNode, in State) State { return in.(divergent) + 1 }

// TestSolveForwardWideningGuard: with a never-converging lattice on a loop,
// SolveForward must return (visit cap) instead of spinning forever.
func TestSolveForwardWideningGuard(t *testing.T) {
	pkg := loadSrc(t, `package p
func f() {
	for {
		_ = 1
	}
}`)
	cfg := BuildCFG(funcBodyOf(t, pkg, "f"))
	done := make(chan struct{})
	go func() {
		SolveForward(cfg, divergentProblem{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SolveForward did not terminate on a divergent lattice; widening guard broken")
	}
}
