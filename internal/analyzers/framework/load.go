package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string // export-data file, populated by -export
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
}

// Load resolves patterns (e.g. "./...", explicit import paths) with the go
// tool from dir, then parses and type-checks every matched package from
// source. Dependencies are satisfied from the toolchain's export data, so
// nothing outside the standard library is required.
//
// Only non-test GoFiles are analyzed: the vet rules police production code;
// tests legitimately poke at representations (e.g. corruption injection).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Incomplete"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			if p.Incomplete {
				return nil, fmt.Errorf("package %s did not compile; fix the build before vetting", p.ImportPath)
			}
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Syntax:     files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}
