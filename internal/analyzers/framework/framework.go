// Package framework is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repo's vet suite needs no network or vendored dependencies. It loads
// packages through `go list -deps -export` (type-checking targets from
// source against the toolchain's export data), runs Analyzer passes over
// their syntax and type information, and collects positioned diagnostics.
//
// The deliberate subset: no facts, no modular analysis, no SSA — the
// skywayvet analyzers are purely syntactic+type-based, which this covers.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by the multichecker.
	Doc string
	// Run executes the check over one package, reporting through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: which analyzer fired, where, and why.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAll applies every analyzer to every package and returns the findings
// sorted by file position.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
