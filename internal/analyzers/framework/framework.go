// Package framework is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library so the
// repo's vet suite needs no network or vendored dependencies. It loads
// packages through `go list -deps -export` (type-checking targets from
// source against the toolchain's export data), runs Analyzer passes over
// their syntax and type information, and collects positioned diagnostics.
//
// Beyond the per-package AST passes, the framework offers an
// interprocedural layer (interproc.go, liveness.go): analyzers that set
// NeedsModule receive a module-wide call graph with a transitive mayGC
// summary and can run CFG-based live-variable analysis per function. The
// remaining deliberate subset: no modular fact files, no SSA.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by the multichecker.
	Doc string
	// Run executes the check over one package, reporting through the pass.
	Run func(*Pass) error
	// NeedsModule requests the module-wide call graph: RunAll builds it
	// once over every loaded package and hands it to the pass.
	NeedsModule bool
}

// Pass carries one analyzed package to an Analyzer's Run, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module carries whole-program facts; non-nil iff the analyzer set
	// NeedsModule.
	Module *Module
	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: which analyzer fired, where, and why.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// RunAll applies every analyzer to every package and returns the findings
// sorted by file position. Findings on a line carrying (or directly below)
// a `//skyway:allow <check>` comment are suppressed. The module call graph
// is built once, lazily, if any analyzer requests it.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var module *Module
	for _, a := range analyzers {
		if a.NeedsModule {
			module = BuildModule(pkgs)
			break
		}
	}
	var findings []Finding
	for _, pkg := range pkgs {
		allow := suppressionsOf(pkg)
		auditSuppressions(pkg, allow, func(f Finding) { findings = append(findings, f) })
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if a.NeedsModule {
				pass.Module = module
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if allow.allows(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      pos,
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}
