package framework

import (
	"strings"
	"testing"
)

// TestLoadMultiPackage loads a fixture module holding two packages, one
// importing the other, and checks that every target comes back parsed and
// type-checked.
func TestLoadMultiPackage(t *testing.T) {
	pkgs, err := Load("testdata/okmod", "./...")
	if err != nil {
		t.Fatalf("loading okmod: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	byPath := make(map[string]*Package)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if len(p.Syntax) == 0 {
			t.Errorf("%s: no syntax", p.ImportPath)
		}
		if p.Types == nil || p.TypesInfo == nil {
			t.Errorf("%s: missing type information", p.ImportPath)
		}
	}
	rep, ok := byPath["okmod/report"]
	if !ok {
		t.Fatal("okmod/report not loaded")
	}
	// Cross-package resolution worked if report's imports include shapes.
	found := false
	for _, imp := range rep.Types.Imports() {
		if imp.Path() == "okmod/shapes" {
			found = true
		}
	}
	if !found {
		t.Error("okmod/report does not record its okmod/shapes import")
	}
}

// TestLoadTypeErrorFails loads a fixture module whose packages carry a
// deliberate type error and checks for a graceful error — not a panic, and
// not a silent success.
func TestLoadTypeErrorFails(t *testing.T) {
	pkgs, err := Load("testdata/brokenmod", "./...")
	if err == nil {
		t.Fatalf("loading brokenmod succeeded with %d packages; want an error", len(pkgs))
	}
	if !strings.Contains(err.Error(), "brokenmod") {
		t.Errorf("error does not name the failing module: %v", err)
	}
}

// TestLoadBadPattern checks that an unresolvable pattern reports the go
// tool's error instead of panicking.
func TestLoadBadPattern(t *testing.T) {
	if _, err := Load(".", "./no/such/dir"); err == nil {
		t.Fatal("loading a nonexistent pattern succeeded")
	}
}
