package framework

import (
	"go/token"
	"strings"
)

// Suppressions: a `//skyway:allow check1 check2 — justification` comment
// (or the paren form `//skyway:allow(check1,check2) — justification`)
// silences the named checks on its own line (inline form) and on the line
// directly below (standalone form). Everything after an em dash or a "--"
// separator is the human justification. Review policy requires one, and the
// framework enforces it: a directive with no justification still
// suppresses, but RunAll reports it as a "suppression" finding so an
// unexplained allow can never land silently.

const allowPrefix = "//skyway:allow"

// allowDirective is one parsed skyway:allow comment.
type allowDirective struct {
	checks    []string
	justified bool
	pos       token.Pos
}

// suppressionIndex maps file -> line -> the set of allowed check names, and
// keeps the parsed directives for the justification audit.
type suppressionIndex struct {
	lines      map[string]map[int]map[string]bool
	directives []allowDirective
}

// suppressionsOf scans a package's comments for skyway:allow directives.
func suppressionsOf(pkg *Package) suppressionIndex {
	idx := suppressionIndex{lines: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				d.pos = c.Pos()
				idx.directives = append(idx.directives, d)
				pos := pkg.Fset.Position(c.Pos())
				lines := idx.lines[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx.lines[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = make(map[string]bool)
					}
					for _, name := range d.checks {
						lines[line][name] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx suppressionIndex) allows(check string, pos token.Position) bool {
	return idx.lines[pos.Filename][pos.Line][check]
}

// parseAllow parses one comment into a directive. Accepted forms:
//
//	//skyway:allow check1 check2 — justification
//	//skyway:allow(check1, check2) — justification
//
// The justification separator may be an em dash or "--"; in the paren form
// any non-empty trailing text counts.
func parseAllow(comment string) (allowDirective, bool) {
	var d allowDirective
	if !strings.HasPrefix(comment, allowPrefix) {
		return d, false
	}
	rest := comment[len(allowPrefix):]
	if strings.HasPrefix(rest, "(") {
		end := strings.Index(rest, ")")
		if end < 0 {
			return d, false
		}
		for _, name := range strings.Split(rest[1:end], ",") {
			if name = strings.TrimSpace(name); name != "" {
				d.checks = append(d.checks, name)
			}
		}
		d.justified = justificationText(rest[end+1:]) != ""
		return d, len(d.checks) > 0
	}
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return d, false // e.g. //skyway:allowance
	}
	fields := strings.Fields(rest)
	for i, field := range fields {
		if field == "—" || field == "--" {
			d.justified = len(fields) > i+1
			break
		}
		d.checks = append(d.checks, field)
	}
	return d, len(d.checks) > 0
}

// justificationText strips a leading separator and surrounding space.
func justificationText(s string) string {
	s = strings.TrimSpace(s)
	for _, sep := range []string{"—", "--"} {
		s = strings.TrimSpace(strings.TrimPrefix(s, sep))
	}
	return s
}

// SuppressionAnalyzerName labels the framework's own findings about
// malformed suppressions; it is not a runnable analyzer.
const SuppressionAnalyzerName = "suppression"

// auditSuppressions reports each directive with no justification. The
// finding is attributed to the pseudo-analyzer "suppression" and cannot
// itself be suppressed.
func auditSuppressions(pkg *Package, idx suppressionIndex, report func(Finding)) {
	for _, d := range idx.directives {
		if d.justified {
			continue
		}
		report(Finding{
			Analyzer: SuppressionAnalyzerName,
			Pos:      pkg.Fset.Position(d.pos),
			Message: "skyway:allow(" + strings.Join(d.checks, ",") +
				") has no justification; append one after an em dash or \"--\" so the exemption is auditable",
		})
	}
}
