package framework

import (
	"go/token"
	"strings"
)

// Suppressions: a `//skyway:allow check1 check2 — justification` comment
// silences the named checks on its own line (inline form) and on the line
// directly below (standalone form). Everything after an em dash or a "--"
// separator is the human justification; review policy requires one.

const allowPrefix = "//skyway:allow"

// suppressionIndex maps file -> line -> the set of allowed check names.
type suppressionIndex map[string]map[int]map[string]bool

// suppressionsOf scans a package's comments for skyway:allow directives.
func suppressionsOf(pkg *Package) suppressionIndex {
	idx := make(suppressionIndex)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				checks := parseAllow(c.Text)
				if len(checks) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if lines[line] == nil {
						lines[line] = make(map[string]bool)
					}
					for _, name := range checks {
						lines[line][name] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx suppressionIndex) allows(check string, pos token.Position) bool {
	return idx[pos.Filename][pos.Line][check]
}

// parseAllow extracts the check names from one comment, or nil.
func parseAllow(comment string) []string {
	if !strings.HasPrefix(comment, allowPrefix) {
		return nil
	}
	rest := comment[len(allowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //skyway:allowance
	}
	var checks []string
	for _, field := range strings.Fields(rest) {
		if field == "—" || field == "--" {
			break
		}
		checks = append(checks, field)
	}
	return checks
}
