package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the module-wide taint engine on top of the forward
// solver (forward.go): an origins lattice per variable, a transfer function
// over the statement-granular CFG, and interprocedural parameter→return
// summaries computed to a fixpoint over the Module call graph. The policy —
// which calls are sources, which expressions are sinks — belongs to the
// analyzers (wiretaint); the engine only answers "where may this value come
// from at this node".

// Origins is a bitset describing where a value may come from: OriginSource
// marks data derived from an untrusted wire read; bit i < MaxTaintParams
// marks flow from the enclosing function's i-th parameter (the currency of
// interprocedural summaries).
type Origins uint64

const (
	// OriginSource marks a value derived from an untrusted wire read.
	OriginSource Origins = 1 << 63
	// MaxTaintParams is how many leading parameters a summary tracks;
	// later parameters simply never carry taint through a summary.
	MaxTaintParams = 62
)

// FromSource reports whether the value may derive from a wire read.
func (o Origins) FromSource() bool { return o&OriginSource != 0 }

func paramBit(i int) Origins {
	if i < 0 || i >= MaxTaintParams {
		return 0
	}
	return Origins(1) << uint(i)
}

// TaintState maps a function's variables to the origins their current
// value may have. Variables absent from the map are untainted. It is the
// powerset-lattice State of the forward taint problem: join is pointwise
// bitwise-or, so the lattice height is bounded by 64·|vars| and the solver
// terminates without needing its widening guard.
type TaintState map[*types.Var]Origins

// Join implements State by pointwise or-ing the origin sets.
func (s TaintState) Join(other State) State {
	o := other.(TaintState)
	out := make(TaintState, len(s)+len(o))
	for v, bits := range s {
		out[v] = bits
	}
	for v, bits := range o {
		out[v] |= bits
	}
	return out
}

// Equal implements State.
func (s TaintState) Equal(other State) bool {
	o := other.(TaintState)
	if len(s) != len(o) {
		return false
	}
	for v, bits := range s {
		if o[v] != bits {
			return false
		}
	}
	return true
}

func (s TaintState) clone() TaintState {
	out := make(TaintState, len(s))
	for v, bits := range s {
		out[v] = bits
	}
	return out
}

// TaintConfig parameterizes the engine with the source policy. Sanitization
// is fixed: a relational bounds comparison that mentions a variable at its
// full width (see killFullWidth) clears the variable's taint.
type TaintConfig struct {
	// IsSource reports whether call, appearing in the package with import
	// path pkgPath, reads untrusted wire data. Every non-error result of a
	// source call is tainted.
	IsSource func(pkgPath string, info *types.Info, call *ast.CallExpr) bool
}

// TaintSummary is one function's interprocedural fact: Results[i] holds the
// origins of the i-th result expressed in the caller's terms — OriginSource
// survives as-is, and param bit j means "result i is tainted whenever the
// caller's j-th argument is".
type TaintSummary struct {
	Results []Origins
}

func (a TaintSummary) equal(b TaintSummary) bool {
	if len(a.Results) != len(b.Results) {
		return false
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			return false
		}
	}
	return true
}

// TaintEngine holds the module's computed summaries plus the source policy
// they were computed under.
type TaintEngine struct {
	module *Module
	config TaintConfig
	sums   map[*types.Func]TaintSummary
	cfgs   map[*ast.BlockStmt]*CFG // CFGs are reusable across fixpoint rounds
}

// Taint returns the module's taint engine under config, computing the
// parameter→return summary fixpoint on first use. The engine is cached on
// the Module: one source policy per run (wiretaint is the sole client).
func (m *Module) Taint(config TaintConfig) *TaintEngine {
	if m.taint != nil {
		return m.taint
	}
	t := &TaintEngine{
		module: m,
		config: config,
		sums:   make(map[*types.Func]TaintSummary),
		cfgs:   make(map[*ast.BlockStmt]*CFG),
	}
	// Chaotic iteration to a fixpoint: summaries only grow (origins are
	// or-accumulated), so this terminates; the repo's taint chains are
	// shallow, so it converges in a handful of rounds.
	for changed := true; changed; {
		changed = false
		for fn, fb := range m.bodies {
			s := t.summarize(fn, fb)
			if !s.equal(t.sums[fn]) {
				t.sums[fn] = s
				changed = true
			}
		}
	}
	m.taint = t
	return t
}

// Summary returns fn's parameter→return summary, if fn's body was loaded.
func (t *TaintEngine) Summary(fn *types.Func) (TaintSummary, bool) {
	s, ok := t.sums[fn]
	return s, ok
}

// summarize runs the intraprocedural flow for fn with parameters seeded to
// their param bits and joins the origins of every return site.
func (t *TaintEngine) summarize(fn *types.Func, fb funcBody) TaintSummary {
	sig := fn.Type().(*types.Signature)
	nres := sig.Results().Len()
	sum := TaintSummary{Results: make([]Origins, nres)}
	if nres == 0 || fb.decl.Body == nil {
		return sum
	}
	ft := t.Flow(fb.pkg.TypesInfo, fb.pkg.ImportPath, fb.decl.Type, fb.decl.Body)

	// Named results receive values from bare returns and live to function
	// exit; resolve their vars once.
	var resultVars []*types.Var
	if res := fb.decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				v, _ := fb.pkg.TypesInfo.Defs[name].(*types.Var)
				resultVars = append(resultVars, v)
			}
		}
	}

	for _, n := range ft.cfg.Nodes {
		st := ft.stateAt(n)
		if st == nil {
			continue // unreachable
		}
		for _, pl := range n.Payload {
			ret, ok := pl.(*ast.ReturnStmt)
			if !ok {
				continue
			}
			switch {
			case len(ret.Results) == 0:
				for i, v := range resultVars {
					if v != nil && i < nres {
						sum.Results[i] |= st[v]
					}
				}
			case len(ret.Results) == nres:
				for i, e := range ret.Results {
					sum.Results[i] |= ft.origins(e, st)
				}
			case len(ret.Results) == 1 && nres > 1:
				// return f() forwarding a multi-result call.
				if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
					rs := ft.callResults(call, st)
					for i := 0; i < nres && i < len(rs); i++ {
						sum.Results[i] |= rs[i]
					}
				}
			}
		}
	}
	return sum
}

// FuncTaint is the solved taint flow of one function body: the CFG and the
// state at each node's entry.
type FuncTaint struct {
	cfg     *CFG
	in      map[*CFGNode]State
	eng     *TaintEngine
	info    *types.Info
	pkgPath string
}

// Flow solves the forward taint problem for one function (or function
// literal) body in the package identified by info/pkgPath. Parameters are
// seeded with their param bits, so the same flow serves both summarization
// and source checking — a checker only inspects the OriginSource bit.
func (t *TaintEngine) Flow(info *types.Info, pkgPath string, ftype *ast.FuncType, body *ast.BlockStmt) *FuncTaint {
	cfg := t.cfgs[body]
	if cfg == nil {
		cfg = BuildCFG(body)
		t.cfgs[body] = cfg
	}
	entry := make(TaintState)
	if ftype != nil && ftype.Params != nil {
		i := 0
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					if bit := paramBit(i); bit != 0 {
						entry[v] = bit
					}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++ // unnamed parameter still occupies a position
			}
		}
	}
	ft := &FuncTaint{cfg: cfg, eng: t, info: info, pkgPath: pkgPath}
	ft.in = SolveForward(cfg, &taintProblem{ft: ft, entry: entry})
	return ft
}

// Nodes returns the CFG nodes of the flow, in build order.
func (ft *FuncTaint) Nodes() []*CFGNode { return ft.cfg.Nodes }

// stateAt returns the taint state at n's entry, or nil if unreachable.
func (ft *FuncTaint) stateAt(n *CFGNode) TaintState {
	s, ok := ft.in[n]
	if !ok {
		return nil
	}
	return s.(TaintState)
}

// OriginsAt evaluates the origins of e in the state at node n's entry.
// Returns 0 for nodes the solver never reached.
func (ft *FuncTaint) OriginsAt(e ast.Expr, n *CFGNode) Origins {
	st := ft.stateAt(n)
	if st == nil {
		return 0
	}
	return ft.origins(e, st)
}

// taintProblem adapts FuncTaint to the forward solver.
type taintProblem struct {
	ft    *FuncTaint
	entry TaintState
}

func (p *taintProblem) Entry() State { return p.entry }

func (p *taintProblem) Transfer(n *CFGNode, in State) State {
	st := in.(TaintState).clone()
	for _, pl := range n.Payload {
		p.ft.apply(pl, st)
	}
	return st
}

// apply mutates st with the effect of one payload element.
func (ft *FuncTaint) apply(pl ast.Node, st TaintState) {
	switch s := pl.(type) {
	case *ast.AssignStmt:
		compound := s.Tok != token.ASSIGN && s.Tok != token.DEFINE
		if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
			// Tuple assignment from one multi-result call.
			var rs []Origins
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				rs = ft.callResults(call, st)
			}
			for i, l := range s.Lhs {
				var o Origins
				if i < len(rs) {
					o = rs[i]
				}
				ft.assign(l, o, compound, st)
			}
			return
		}
		// Evaluate every RHS before any assignment lands (a, b = b, a).
		origins := make([]Origins, len(s.Rhs))
		for i, r := range s.Rhs {
			origins[i] = ft.origins(r, st)
		}
		for i, l := range s.Lhs {
			if i < len(origins) {
				ft.assign(l, origins[i], compound, st)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if len(vs.Names) > 1 && len(vs.Values) == 1 {
				var rs []Origins
				if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
					rs = ft.callResults(call, st)
				}
				for i, name := range vs.Names {
					var o Origins
					if i < len(rs) {
						o = rs[i]
					}
					ft.assign(name, o, false, st)
				}
				continue
			}
			for i, name := range vs.Names {
				var o Origins
				if i < len(vs.Values) {
					o = ft.origins(vs.Values[i], st)
				}
				ft.assign(name, o, false, st)
			}
		}
	case *ast.RangeStmt:
		xo := ft.origins(s.X, st)
		if s.Key != nil {
			// Over a slice/array/string the key is a synthesized index,
			// not wire data; over a map or channel it is the element.
			ko := xo
			if t, ok := ft.info.Types[s.X]; ok {
				switch t.Type.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
					ko = 0
				}
			}
			ft.assign(s.Key, ko, false, st)
		}
		if s.Value != nil {
			ft.assign(s.Value, xo, false, st)
		}
	case *ast.IncDecStmt:
		// x++ keeps x's existing origins.
	case ast.Expr:
		// A condition (if/for/switch guard): bounds comparisons sanitize.
		ft.sanitize(s, st)
	}
}

// assign records origins flowing into one assignment target. Only plain
// identifiers are tracked (strong update); stores through fields, indexes,
// or dereferences leave the state unchanged — the engine does not model the
// heap.
func (ft *FuncTaint) assign(lhs ast.Expr, o Origins, compound bool, st TaintState) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := ft.info.Defs[id]
	if obj == nil {
		obj = ft.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if compound {
		o |= st[v]
	}
	if o == 0 {
		delete(st, v)
	} else {
		st[v] = o
	}
}

// origins evaluates the may-origins of e under st.
func (ft *FuncTaint) origins(e ast.Expr, st TaintState) Origins {
	switch e := e.(type) {
	case *ast.Ident:
		obj := ft.info.Uses[e]
		if obj == nil {
			obj = ft.info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return st[v]
		}
		return 0
	case *ast.ParenExpr:
		return ft.origins(e.X, st)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW { // channel receive: contents unmodelled
			return 0
		}
		return ft.origins(e.X, st)
	case *ast.StarExpr:
		return ft.origins(e.X, st)
	case *ast.TypeAssertExpr:
		return ft.origins(e.X, st)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			return 0 // boolean results carry no wire integer
		}
		return ft.origins(e.X, st) | ft.origins(e.Y, st)
	case *ast.CallExpr:
		rs := ft.callResults(e, st)
		if len(rs) == 0 {
			return 0
		}
		return rs[0]
	}
	// Index/selector/composite/literal expressions: container contents and
	// fields are not tracked intraprocedurally.
	return 0
}

// callResults computes the per-result origins of one call under st.
func (ft *FuncTaint) callResults(call *ast.CallExpr, st TaintState) []Origins {
	// Conversion: T(x) keeps x's origins (truncation does NOT sanitize —
	// that is precisely the uint32-wrap bug shape).
	if tv, ok := ft.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return []Origins{ft.origins(call.Args[0], st)}
		}
		return nil
	}
	resTypes := ft.resultTypes(call)
	if ft.eng.config.IsSource != nil && ft.eng.config.IsSource(ft.pkgPath, ft.info, call) {
		out := make([]Origins, len(resTypes))
		for i, rt := range resTypes {
			if !isErrorType(rt) {
				out[i] = OriginSource
			}
		}
		return out
	}
	c := resolveCallee(ft.info, call)
	if c.fn == nil {
		return make([]Origins, len(resTypes)) // dynamic/interface/builtin: unmodelled
	}
	sum, ok := ft.eng.sums[c.fn]
	if !ok {
		return make([]Origins, len(resTypes))
	}
	sig, _ := c.fn.Type().(*types.Signature)
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
	}
	out := make([]Origins, len(sum.Results))
	for r, bits := range sum.Results {
		out[r] = bits & OriginSource
		for j := 0; j < nparams && j < MaxTaintParams; j++ {
			if bits&paramBit(j) == 0 {
				continue
			}
			// Argument positions map to parameters; every variadic
			// argument maps to the final parameter.
			for ai, arg := range call.Args {
				pi := ai
				if pi >= nparams {
					pi = nparams - 1
				}
				if pi == j {
					out[r] |= ft.origins(arg, st)
				}
			}
		}
	}
	return out
}

// resultTypes returns the result types of call (empty for void).
func (ft *FuncTaint) resultTypes(call *ast.CallExpr) []types.Type {
	tv, ok := ft.info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		if t == nil || tv.IsVoid() {
			return nil
		}
		return []types.Type{t}
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// sanitize clears the taint of variables validated by a bounds comparison
// in cond. The rule: a relational comparison (< <= > >=) whose operand
// mentions the variable at its full width — no truncating conversion
// between the comparison and the variable — counts as the dominating bounds
// check wiretaint demands. Widening conversions (uint64(n)) qualify;
// truncating ones (uint32(n) of an int) do not, because the comparison then
// constrains only the wrapped value, which is the uint32-wrap bug shape.
// Equality tests and % remainders never sanitize.
func (ft *FuncTaint) sanitize(cond ast.Expr, st TaintState) {
	ast.Inspect(cond, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		b, ok := x.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch b.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{b.X, b.Y} {
			width := intWidth(ft.typeOf(side))
			if width == 0 {
				continue
			}
			ft.killFullWidth(side, width, st)
		}
		return true
	})
}

// killFullWidth walks one comparison operand and deletes from st every
// variable whose full value participates in the comparison: the path from
// the operand root to the variable must not pass a conversion narrower than
// the variable's own width.
func (ft *FuncTaint) killFullWidth(e ast.Expr, width int, st TaintState) {
	switch e := e.(type) {
	case *ast.Ident:
		obj := ft.info.Uses[e]
		if v, ok := obj.(*types.Var); ok {
			if w := intWidth(v.Type()); w > 0 && w <= width {
				delete(st, v)
			}
		}
	case *ast.ParenExpr:
		ft.killFullWidth(e.X, width, st)
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			ft.killFullWidth(e.X, width, st)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.REM:
			// n%k constrains only the remainder, not n.
			return
		case token.SHR, token.SHL:
			// A shifted value is not the value itself.
			return
		}
		ft.killFullWidth(e.X, width, st)
		ft.killFullWidth(e.Y, width, st)
	case *ast.CallExpr:
		// Only conversions pass through; a call result is not the var.
		if tv, ok := ft.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			w := intWidth(tv.Type)
			if w > 0 && w < width {
				width = w
			}
			ft.killFullWidth(e.Args[0], width, st)
		}
	}
}

func (ft *FuncTaint) typeOf(e ast.Expr) types.Type {
	if tv, ok := ft.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// intWidth returns the bit width of an integer type (named types resolve
// through their underlying type), or 0 for non-integers.
func intWidth(t types.Type) int {
	if t == nil {
		return 0
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 0
	}
	switch b.Kind() {
	case types.Int, types.Uint, types.Uintptr, types.Int64, types.Uint64,
		types.UntypedInt:
		return 64
	case types.Int32, types.Uint32:
		return 32
	case types.Int16, types.Uint16:
		return 16
	case types.Int8, types.Uint8:
		return 8
	}
	return 0
}
