package framework

import (
	"go/ast"
	"go/types"
	"testing"
)

// taintTestConfig marks calls to any function named "wireRead" or
// "wireRead2" as sources, standing in for binary.BigEndian.Uint32 and
// friends so the engine can be tested without real decode code.
func taintTestConfig() TaintConfig {
	return TaintConfig{
		IsSource: func(pkgPath string, info *types.Info, call *ast.CallExpr) bool {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			return ok && (id.Name == "wireRead" || id.Name == "wireRead2")
		},
	}
}

const taintSrc = `package p

func wireRead() uint32 { return 0 }
func wireRead2() (uint32, error) { return 0, nil }

// helper: a wire read escaping through a return — the interprocedural case.
func helper() uint32 { return wireRead() }

// add1: pure parameter passthrough.
func add1(n uint32) uint32 { return n + 1 }

// thru: source -> helper -> add1 -> return, two summary hops.
func thru() uint32 { return add1(helper()) }

// clamp: the parameter is bounds-checked at full width, so no origin
// survives to the return.
func clamp(n uint32) uint32 {
	if uint64(n) > 100 {
		return 100
	}
	return n
}

// second: taint positioned on the second parameter only.
func second(a, b uint32) uint32 { return b }

func sinkBad() []byte {
	n := wireRead()
	return make([]byte, n)
}

func sinkGood() []byte {
	n := wireRead()
	if uint64(n) > 64 {
		return nil
	}
	return make([]byte, n)
}

// sinkWrapped reproduces the uint32-wrap shape: the only "check" compares a
// truncated conversion, which must NOT sanitize n.
func sinkWrapped(limit uint32) []byte {
	n := int64(wireRead()) * 8
	if uint32(n) > limit {
		return nil
	}
	return make([]byte, n)
}

func tuple() uint32 {
	n, err := wireRead2()
	if err != nil {
		return 0
	}
	return n
}

// loopFlow: taint must survive the back edge into the loop head.
func loopFlow() uint32 {
	x := uint32(0)
	for i := 0; i < 4; i++ {
		x = wireRead()
	}
	return x
}
`

func taintEngineFor(t *testing.T, src string) (*Package, *TaintEngine) {
	t.Helper()
	pkg := loadSrc(t, src)
	m := BuildModule([]*Package{pkg})
	return pkg, m.Taint(taintTestConfig())
}

func lookupFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %q", name)
	}
	return fn
}

// TestTaintSummaries checks the interprocedural parameter→return facts,
// including a two-hop chain through a helper function.
func TestTaintSummaries(t *testing.T) {
	pkg, eng := taintEngineFor(t, taintSrc)
	cases := []struct {
		fn   string
		want Origins
	}{
		{"helper", OriginSource},              // wire read escapes through the return
		{"add1", paramBit(0)},                 // pure passthrough
		{"thru", OriginSource},                // source -> helper -> add1 -> return
		{"clamp", 0},                          // full-width bounds check sanitizes
		{"second", paramBit(1)},               // flow from the second parameter only
		{"tuple", OriginSource},               // tuple assignment from a source
		{"loopFlow", OriginSource},            // taint around the loop back edge
		{"wireRead", 0},                       // the source body itself returns a constant
	}
	for _, c := range cases {
		sum, ok := eng.Summary(lookupFunc(t, pkg, c.fn))
		if !ok {
			t.Errorf("%s: no summary", c.fn)
			continue
		}
		if len(sum.Results) == 0 {
			t.Errorf("%s: summary has no results", c.fn)
			continue
		}
		if sum.Results[0] != c.want {
			t.Errorf("%s: result origins = %#x, want %#x", c.fn, sum.Results[0], c.want)
		}
	}
}

// makeArgOrigins finds the make(...) call in fn and returns the origins of
// its size argument at the node evaluating it.
func makeArgOrigins(t *testing.T, pkg *Package, eng *TaintEngine, fn string) Origins {
	t.Helper()
	var decl *ast.FuncDecl
	for _, d := range pkg.Syntax[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			decl = fd
		}
	}
	if decl == nil {
		t.Fatalf("no function %q", fn)
	}
	ft := eng.Flow(pkg.TypesInfo, pkg.ImportPath, decl.Type, decl.Body)
	for _, n := range ft.Nodes() {
		for _, pl := range n.Payload {
			var got *Origins
			ast.Inspect(pl, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 2 {
					o := ft.OriginsAt(call.Args[1], n)
					got = &o
					return false
				}
				return true
			})
			if got != nil {
				return *got
			}
		}
	}
	t.Fatalf("no make() call found in %q", fn)
	return 0
}

// TestTaintFlowAtSinks drives the checking-phase API: OriginsAt must carry
// the source bit into an unguarded make, drop it after a full-width bounds
// check, and keep it when the only check compares a truncated conversion
// (the PR 5 uint32-wrap shape).
func TestTaintFlowAtSinks(t *testing.T) {
	pkg, eng := taintEngineFor(t, taintSrc)
	if o := makeArgOrigins(t, pkg, eng, "sinkBad"); !o.FromSource() {
		t.Error("sinkBad: make size argument lost its wire taint")
	}
	if o := makeArgOrigins(t, pkg, eng, "sinkGood"); o.FromSource() {
		t.Error("sinkGood: full-width bounds check did not sanitize the make size")
	}
	if o := makeArgOrigins(t, pkg, eng, "sinkWrapped"); !o.FromSource() {
		t.Error("sinkWrapped: a truncated-width comparison must not count as a sanitizer")
	}
}

// TestAtomicClaims checks the module-wide claim sweep: address-taking
// atomic calls and typed-atomic method calls claim package vars and fields,
// and the claiming mentions are sanctioned.
func TestAtomicClaims(t *testing.T) {
	pkg := loadSrc(t, `package p

import "sync/atomic"

var g uint64

type s struct {
	n   int64
	ptr atomic.Pointer[int]
}

func f(x *s) int64 {
	atomic.AddUint64(&g, 1)
	x.ptr.Load()
	return atomic.LoadInt64(&x.n)
}

func plain(x *s) { x.n = 4 }
`)
	m := BuildModule([]*Package{pkg})
	claims := m.AtomicClaims()
	byName := make(map[string]AtomicClaim)
	for v, c := range claims {
		byName[v.Name()] = c
	}
	if c, ok := byName["g"]; !ok || c.Via != "atomic.AddUint64" {
		t.Errorf("package var g not claimed correctly: %+v (ok=%v)", c, ok)
	}
	if c, ok := byName["n"]; !ok || c.Via != "atomic.LoadInt64" {
		t.Errorf("field n not claimed correctly: %+v (ok=%v)", c, ok)
	}
	if c, ok := byName["ptr"]; !ok || !c.Typed {
		t.Errorf("typed atomic field ptr not claimed: %+v (ok=%v)", c, ok)
	}
	// The plain store in plain() must not be sanctioned; the atomic
	// mentions in f() must be.
	sanctioned, unsanctioned := 0, 0
	ast.Inspect(pkg.Syntax[0], func(nd ast.Node) bool {
		id, ok := nd.(*ast.Ident)
		if !ok || id.Name != "n" {
			return true
		}
		if _, isVar := pkg.TypesInfo.Uses[id].(*types.Var); !isVar {
			return true
		}
		if m.AtomicSanctioned(id.Pos()) {
			sanctioned++
		} else {
			unsanctioned++
		}
		return true
	})
	if sanctioned != 1 || unsanctioned != 1 {
		t.Errorf("field n mentions: %d sanctioned, %d plain; want 1 and 1", sanctioned, unsanctioned)
	}
}
