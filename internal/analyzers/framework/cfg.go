package framework

import (
	"go/ast"
	"go/token"
)

// This file builds the statement-granular control-flow graph shared by both
// halves of the dataflow engine: the backward live-variable pass
// (liveness.go) and the forward join-lattice solver (forward.go). The CFG
// is deliberately statement-granular — skywayvet's clients reason about
// facts "at this statement"; per-expression ordering inside one statement
// is handled separately by the analyzers.

// CFGNode is one node of a function body's control-flow graph. Payload is
// the syntax evaluated at the node (a statement, a condition expression, or
// several for merged heads like switch); Succs/Preds are the control-flow
// edges.
type CFGNode struct {
	Payload []ast.Node
	Succs   []*CFGNode
	Preds   []*CFGNode
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Nodes holds every node in creation order (roughly bottom-up, so
	// forward iteration approximates reverse program order).
	Nodes []*CFGNode
	// Entry is the node where execution begins; Exit is the single node
	// every return (and normal fall-off) reaches. Deferred statements are
	// modelled as payload at Exit: they run on function exit using values
	// captured at the defer site.
	Entry, Exit *CFGNode
}

// BuildCFG constructs the control-flow graph for body and computes the
// predecessor edges.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{labels: make(map[string]*CFGNode)}
	b.exit = b.newNode()
	entry := b.stmtList(body.List, b.exit)
	for _, d := range b.defers {
		b.exit.Payload = append(b.exit.Payload, d)
	}
	for _, n := range b.nodes {
		for _, s := range n.Succs {
			s.Preds = append(s.Preds, n)
		}
	}
	return &CFG{Nodes: b.nodes, Entry: entry, Exit: b.exit}
}

type cfgBuilder struct {
	nodes  []*CFGNode
	exit   *CFGNode
	labels map[string]*CFGNode // label -> placeholder entry node
	defers []ast.Stmt

	// breakables tracks enclosing for/range/switch/select statements,
	// innermost last; cont is nil for non-loops.
	breakables []breakable
	// pendingLabel is the label of the LabeledStmt being built, consumed by
	// the next loop/switch/select so labeled break/continue resolve.
	pendingLabel string
	// fallTarget is the entry of the next case clause while a switch clause
	// body is being built.
	fallTarget *CFGNode
}

type breakable struct {
	label     string
	brk, cont *CFGNode
}

func (b *cfgBuilder) newNode(payload ...ast.Node) *CFGNode {
	n := &CFGNode{Payload: payload}
	b.nodes = append(b.nodes, n)
	return n
}

func (b *cfgBuilder) labelNode(name string) *CFGNode {
	if n, ok := b.labels[name]; ok {
		return n
	}
	n := b.newNode()
	b.labels[name] = n
	return n
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmtList builds list so control falls through to succ; returns the entry.
func (b *cfgBuilder) stmtList(list []ast.Stmt, succ *CFGNode) *CFGNode {
	for i := len(list) - 1; i >= 0; i-- {
		succ = b.stmt(list[i], succ)
	}
	return succ
}

// stmt builds one statement with successor succ and returns its entry node.
func (b *cfgBuilder) stmt(s ast.Stmt, succ *CFGNode) *CFGNode {
	switch s := s.(type) {
	case nil:
		return succ
	case *ast.BlockStmt:
		return b.stmtList(s.List, succ)
	case *ast.EmptyStmt:
		return succ
	case *ast.LabeledStmt:
		ph := b.labelNode(s.Label.Name)
		b.pendingLabel = s.Label.Name
		inner := b.stmt(s.Stmt, succ)
		b.pendingLabel = ""
		ph.Succs = append(ph.Succs, inner)
		return ph
	case *ast.IfStmt:
		thenE := b.stmt(s.Body, succ)
		elseE := succ
		if s.Else != nil {
			elseE = b.stmt(s.Else, succ)
		}
		cond := b.newNode(s.Cond)
		cond.Succs = []*CFGNode{thenE, elseE}
		if s.Init != nil {
			return b.stmt(s.Init, cond)
		}
		return cond
	case *ast.ForStmt:
		label := b.takeLabel()
		head := b.newNode()
		if s.Cond != nil {
			head.Payload = append(head.Payload, s.Cond)
			head.Succs = append(head.Succs, succ)
		}
		cont := head
		if s.Post != nil {
			post := b.newNode(s.Post)
			post.Succs = []*CFGNode{head}
			cont = post
		}
		b.breakables = append(b.breakables, breakable{label, succ, cont})
		bodyE := b.stmt(s.Body, cont)
		b.breakables = b.breakables[:len(b.breakables)-1]
		head.Succs = append(head.Succs, bodyE)
		if s.Init != nil {
			return b.stmt(s.Init, head)
		}
		return head
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newNode(s) // use/def walks X, Key, Value only
		head.Succs = []*CFGNode{succ}
		b.breakables = append(b.breakables, breakable{label, succ, head})
		bodyE := b.stmt(s.Body, head)
		b.breakables = b.breakables[:len(b.breakables)-1]
		head.Succs = append(head.Succs, bodyE)
		return head
	case *ast.SwitchStmt:
		return b.switchStmt(s.Init, s.Tag, nil, s.Body, succ)
	case *ast.TypeSwitchStmt:
		return b.switchStmt(s.Init, nil, s.Assign, s.Body, succ)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.newNode()
		b.breakables = append(b.breakables, breakable{label, succ, nil})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			comm := b.newNode()
			if cc.Comm != nil {
				comm.Payload = append(comm.Payload, cc.Comm)
			}
			comm.Succs = []*CFGNode{b.stmtList(cc.Body, succ)}
			head.Succs = append(head.Succs, comm)
		}
		b.breakables = b.breakables[:len(b.breakables)-1]
		return head
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			for i := len(b.breakables) - 1; i >= 0; i-- {
				t := b.breakables[i]
				if s.Label == nil || t.label == s.Label.Name {
					return t.brk
				}
			}
		case token.CONTINUE:
			for i := len(b.breakables) - 1; i >= 0; i-- {
				t := b.breakables[i]
				if t.cont != nil && (s.Label == nil || t.label == s.Label.Name) {
					return t.cont
				}
			}
		case token.GOTO:
			return b.labelNode(s.Label.Name)
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				return b.fallTarget
			}
		}
		return succ
	case *ast.ReturnStmt:
		n := b.newNode(s)
		n.Succs = []*CFGNode{b.exit}
		return n
	case *ast.DeferStmt:
		b.defers = append(b.defers, s)
		n := b.newNode(s)
		n.Succs = []*CFGNode{succ}
		return n
	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt.
		n := b.newNode(s)
		n.Succs = []*CFGNode{succ}
		return n
	}
}

// switchStmt builds an expression or type switch. For dataflow the clause
// guards can all be evaluated at the head — precision about Go's sequential
// case testing is unnecessary for a may-analysis.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, succ *CFGNode) *CFGNode {
	label := b.takeLabel()
	head := b.newNode()
	if tag != nil {
		head.Payload = append(head.Payload, tag)
	}
	if assign != nil {
		head.Payload = append(head.Payload, assign)
	}
	b.breakables = append(b.breakables, breakable{label, succ, nil})
	hasDefault := false
	next := succ // fallthrough target beyond the clause being built
	for i := len(body.List) - 1; i >= 0; i-- {
		cc := body.List[i].(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			head.Payload = append(head.Payload, e)
		}
		saved := b.fallTarget
		b.fallTarget = next
		bodyE := b.stmtList(cc.Body, succ)
		b.fallTarget = saved
		next = bodyE
		head.Succs = append(head.Succs, bodyE)
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	if !hasDefault {
		head.Succs = append(head.Succs, succ)
	}
	if init != nil {
		return b.stmt(init, head)
	}
	return head
}
