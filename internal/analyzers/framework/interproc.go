package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file grows the framework from a per-package AST multichecker into an
// interprocedural engine: a module-wide call graph over every loaded
// package's typed syntax, and a transitive mayGC summary over it. Analyzers
// that set NeedsModule receive the Module on their Pass and can ask whether
// any call expression can reach a collection entry point.

// mayGCSeeds are the collection/allocation entry points, keyed by
// types.Func.FullName. The transitive closure normally discovers the vm
// allocators from source (they call Scavenge/FullGC), but fixture packages
// and subset runs only see dependency export data — no bodies — so the
// allocation surface of internal/vm is seeded explicitly too.
var mayGCSeeds = map[string]bool{
	"(*skyway/internal/gc.Collector).Scavenge": true,
	"(*skyway/internal/gc.Collector).FullGC":   true,

	"(*skyway/internal/vm.Runtime).allocYoung":    true,
	"(*skyway/internal/vm.Runtime).New":           true,
	"(*skyway/internal/vm.Runtime).MustNew":       true,
	"(*skyway/internal/vm.Runtime).NewArray":      true,
	"(*skyway/internal/vm.Runtime).MustNewArray":  true,
	"(*skyway/internal/vm.Runtime).NewString":     true,
	"(*skyway/internal/vm.Runtime).MustNewString": true,
}

// callee classifies the target of one call expression.
type callee struct {
	fn      *types.Func  // static target (function or concrete method)
	iface   string       // interface method name, resolved by CHA over the module
	lit     *ast.FuncLit // immediately invoked function literal
	v       *types.Var   // variable the dynamic call goes through, if an identifier
	dynamic bool         // call through a function value: conservatively mayGC
	skip    bool         // not a function call (conversion, builtin)
}

// resolveCallee classifies call using the package's type information.
func resolveCallee(info *types.Info, call *ast.CallExpr) callee {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) wraps the callee in an index expr.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return callee{skip: true} // conversion, e.g. heap.Addr(x)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			return callee{fn: obj}
		case *types.Builtin, *types.Nil, nil:
			return callee{skip: true}
		case *types.Var: // local or parameter holding a func value
			return callee{dynamic: true, v: obj}
		default:
			return callee{dynamic: true}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				fn := sel.Obj().(*types.Func)
				if types.IsInterface(sel.Recv()) {
					return callee{iface: fn.Name()}
				}
				return callee{fn: fn}
			default: // FieldVal: func-typed struct field
				return callee{dynamic: true}
			}
		}
		// Qualified identifier pkg.F.
		switch obj := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return callee{fn: obj}
		case *types.TypeName, *types.Builtin, nil:
			return callee{skip: true}
		default: // package-level func variable
			return callee{dynamic: true}
		}
	case *ast.FuncLit:
		return callee{lit: fun}
	}
	// Anything else producing a func value (index into a slice of funcs,
	// type assertion, call returning a func, ...) is a dynamic call.
	return callee{dynamic: true}
}

// Module holds whole-program facts computed across every loaded package.
type Module struct {
	// calls maps each function with syntax to the callees of its body,
	// function literals included (a literal's calls are merged into the
	// enclosing declaration — the conservative closure treatment).
	calls map[*types.Func][]callee
	// mayGC is the fixpoint: functions that can reach a collection entry
	// point. Seeded functions may not appear here (no body loaded); query
	// through funcMayGC, which also consults mayGCSeeds.
	mayGC map[*types.Func]bool
	// gcMethodNames supports class-hierarchy analysis for interface calls:
	// the names of all known-mayGC methods. An interface call resolves by
	// name against this set — receiver-type matching is deliberately
	// skipped, keeping the analysis conservative.
	gcMethodNames map[string]bool
	// litOf devirtualizes local closures: a function-local variable bound
	// to exactly one function literal (and never aliased) resolves to that
	// literal instead of being treated as an unknown function value.
	litOf map[*types.Var]*ast.FuncLit
	// bodies records every function declaration with loaded syntax so
	// module-wide dataflow passes (the taint summarizer, the atomic-claim
	// sweep) can revisit the typed ASTs.
	bodies map[*types.Func]funcBody
	// pkgs retains the loaded packages for module-wide sweeps that need
	// file-level syntax (package-scope declarations, comments).
	pkgs []*Package

	// taint caches the module's taint engine; built lazily by Taint()
	// since only analyzers that need summaries pay for the fixpoint.
	taint *TaintEngine
	// atomicClaims / atomicSanctioned cache the module-wide atomic-claim
	// sweep (claims.go).
	atomicClaims     map[*types.Var]AtomicClaim
	atomicSanctioned map[token.Pos]bool
}

// funcBody ties a function declaration to the package it was loaded from.
type funcBody struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// BuildModule computes the call graph and mayGC summary over pkgs. Packages
// outside the loaded set contribute only their seeded entry points; the
// standard library is assumed unable to touch the simulated heap.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		calls:         make(map[*types.Func][]callee),
		mayGC:         make(map[*types.Func]bool),
		gcMethodNames: make(map[string]bool),
		litOf:         make(map[*types.Var]*ast.FuncLit),
		bodies:        make(map[*types.Func]funcBody),
		pkgs:          pkgs,
	}
	for _, seed := range []string{"Scavenge", "FullGC", "allocYoung",
		"New", "MustNew", "NewArray", "MustNewArray", "NewString", "MustNewString"} {
		m.gcMethodNames[seed] = true
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m.bodies[fn] = funcBody{decl: fd, pkg: pkg}
				lits := localFuncLits(pkg.TypesInfo, fd.Body)
				for v, lit := range lits {
					m.litOf[v] = lit
				}
				var calls []callee
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						c := resolveCallee(pkg.TypesInfo, call)
						// A devirtualized local closure is skipped like a
						// directly invoked literal: its body's calls are
						// already merged into this declaration's list.
						if c.dynamic && c.v != nil && lits[c.v] != nil {
							c = callee{skip: true}
						}
						if !c.skip && c.lit == nil {
							calls = append(calls, c)
						}
					}
					return true
				})
				m.calls[fn] = calls
			}
		}
	}
	// Transitive closure to a fixpoint. The module is small; a quadratic
	// sweep converges in a handful of rounds.
	for changed := true; changed; {
		changed = false
		for fn, calls := range m.calls {
			if m.mayGC[fn] {
				continue
			}
			for _, c := range calls {
				if m.calleeMayGC(c) {
					m.markMayGC(fn)
					changed = true
					break
				}
			}
		}
	}
	return m
}

func (m *Module) markMayGC(fn *types.Func) {
	m.mayGC[fn] = true
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		m.gcMethodNames[fn.Name()] = true
	}
}

func (m *Module) calleeMayGC(c callee) bool {
	switch {
	case c.dynamic:
		return true
	case c.iface != "":
		return m.gcMethodNames[c.iface]
	case c.fn != nil:
		return m.funcMayGC(c.fn)
	}
	return false
}

// funcMayGC reports whether fn can trigger a collection: either its body
// reaches one transitively, or it is a seeded entry point (needed when only
// export data was loaded for fn's package).
func (m *Module) funcMayGC(fn *types.Func) bool {
	return m.mayGC[fn] || mayGCSeeds[fn.FullName()]
}

// CallMayGC reports whether one call expression may trigger a collection,
// along with a printable description of the callee for diagnostics. An
// immediately invoked function literal — or a devirtualized local closure —
// is answered from the literal's own body.
func (m *Module) CallMayGC(info *types.Info, call *ast.CallExpr) (bool, string) {
	return m.callMayGC(info, call, nil)
}

func (m *Module) callMayGC(info *types.Info, call *ast.CallExpr, seen map[*ast.FuncLit]bool) (bool, string) {
	c := resolveCallee(info, call)
	desc := "function literal"
	if c.dynamic && c.v != nil {
		if lit := m.litOf[c.v]; lit != nil {
			desc = "local closure " + c.v.Name()
			c = callee{lit: lit}
		}
	}
	switch {
	case c.skip:
		return false, ""
	case c.lit != nil:
		if seen[c.lit] {
			return false, desc // recursive closure: already being scanned
		}
		if seen == nil {
			seen = make(map[*ast.FuncLit]bool)
		}
		seen[c.lit] = true
		may := false
		ast.Inspect(c.lit.Body, func(n ast.Node) bool {
			if may {
				return false
			}
			if inner, ok := n.(*ast.CallExpr); ok {
				if innerMay, _ := m.callMayGC(info, inner, seen); innerMay {
					may = true
				}
			}
			return true
		})
		return may, desc
	case c.dynamic:
		return true, "function value (assumed to allocate)"
	case c.iface != "":
		return m.gcMethodNames[c.iface], "interface method " + c.iface
	case c.fn != nil:
		return m.funcMayGC(c.fn), strings.TrimPrefix(c.fn.FullName(), "skyway/internal/")
	}
	return false, ""
}

// localFuncLits finds the function-local variables of body bound to exactly
// one function literal: a `var f func(...)` or `f := func(...) {...}`
// followed by no reassignment and no address-taking. Calls through such a
// variable resolve to the literal — the pattern behind every helper-closure
// in the codebase (readUvarint, clearRegion, ...).
func localFuncLits(info *types.Info, body *ast.BlockStmt) map[*types.Var]*ast.FuncLit {
	binds := make(map[*types.Var]int)
	lits := make(map[*types.Var]*ast.FuncLit)
	varOf := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, _ := obj.(*types.Var)
		return v
	}
	bind := func(lhs, rhs ast.Expr) {
		v := varOf(lhs)
		if v == nil {
			return
		}
		binds[v]++
		if lit, ok := rhs.(*ast.FuncLit); ok && binds[v] == 1 {
			lits[v] = lit
		} else {
			delete(lits, v)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				bind(lhs, rhs)
			}
		case *ast.ValueSpec:
			// A spec without values declares but does not bind, keeping
			// the recursive `var f func(); f = func() {...}` idiom
			// resolvable.
			for i, name := range n.Names {
				if i < len(n.Values) {
					bind(name, n.Values[i])
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if v := varOf(n.X); v != nil {
					binds[v] += 2 // aliased: disqualify
					delete(lits, v)
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				bind(n.Key, nil)
			}
			if n.Value != nil {
				bind(n.Value, nil)
			}
		}
		return true
	})
	for v := range lits {
		if binds[v] != 1 {
			delete(lits, v)
		}
	}
	return lits
}
