package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the backward half of the dataflow engine: live-variable
// analysis over the shared statement-granular CFG (cfg.go) for a
// caller-chosen set of variables (skywayvet tracks heap.Addr-typed locals
// and parameters). The forward half — the join-lattice fixpoint solver —
// lives in forward.go.

// FuncUnit is one function body analyzed as an independent liveness unit:
// every FuncDecl and every FuncLit. A literal is its own unit; variables it
// captures from the enclosing function are tracked there too, so a capture
// held across a collection inside the literal is still seen.
type FuncUnit struct {
	Name string // declaration name, or "function literal"
	Type *ast.FuncType
	Body *ast.BlockStmt
}

// Units enumerates the liveness units of file.
func Units(file *ast.File) []FuncUnit {
	var units []FuncUnit
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, FuncUnit{Name: fd.Name.Name, Type: fd.Type, Body: fd.Body})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, FuncUnit{Name: "function literal", Type: lit.Type, Body: lit.Body})
		}
		return true
	})
	return units
}

// LiveNode is one CFG node with its solved liveness: the syntax evaluated
// at the node and the tracked variables whose current value must survive
// past it (live on exit and not redefined here). A collection entry point
// reached from Payload invalidates every variable in Across.
type LiveNode struct {
	Payload []ast.Node
	Across  []*types.Var
}

// liveFacts carries one node's use/def sets and solved in/out liveness.
type liveFacts struct {
	use, def, in, out varSet
}

// LivenessOf builds the CFG for body, solves backward liveness for the
// variables accepted by isTracked, and returns the payload-bearing nodes.
func LivenessOf(body *ast.BlockStmt, info *types.Info, isTracked func(*types.Var) bool) []LiveNode {
	cfg := BuildCFG(body)

	facts := make(map[*CFGNode]*liveFacts, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		facts[n] = computeUseDef(n, info, isTracked)
	}
	// Backward fixpoint. Nodes were created roughly bottom-up, so forward
	// creation order approximates reverse program order — good enough; the
	// loop runs until stable regardless.
	for changed := true; changed; {
		changed = false
		for _, n := range cfg.Nodes {
			f := facts[n]
			out := make(varSet)
			for _, s := range n.Succs {
				for v := range facts[s].in {
					out[v] = struct{}{}
				}
			}
			in := make(varSet)
			for v := range out {
				if _, killed := f.def[v]; !killed {
					in[v] = struct{}{}
				}
			}
			for v := range f.use {
				in[v] = struct{}{}
			}
			if len(out) != len(f.out) || len(in) != len(f.in) {
				f.out, f.in = out, in
				changed = true
			} else {
				f.out, f.in = out, in
			}
		}
	}

	var result []LiveNode
	for _, n := range cfg.Nodes {
		if len(n.Payload) == 0 {
			continue
		}
		f := facts[n]
		var across []*types.Var
		for v := range f.out {
			if _, killed := f.def[v]; !killed {
				across = append(across, v)
			}
		}
		sort.Slice(across, func(i, j int) bool { return across[i].Pos() < across[j].Pos() })
		result = append(result, LiveNode{Payload: n.Payload, Across: across})
	}
	return result
}

type varSet map[*types.Var]struct{}

// --- use/def extraction ------------------------------------------------------

func computeUseDef(n *CFGNode, info *types.Info, isTracked func(*types.Var) bool) *liveFacts {
	f := &liveFacts{use: make(varSet), def: make(varSet)}
	track := func(id *ast.Ident) *types.Var {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && isTracked(v) {
			return v
		}
		return nil
	}
	addUses := func(node ast.Node) {
		if node == nil {
			return
		}
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				// A nested literal is opaque here: only the variables it
				// captures from outside count as uses at this node — its
				// own locals and parameters belong to the literal's unit.
				ast.Inspect(x.Body, func(y ast.Node) bool {
					if id, ok := y.(*ast.Ident); ok {
						if v := track(id); v != nil && (v.Pos() < x.Pos() || v.Pos() > x.End()) {
							f.use[v] = struct{}{}
						}
					}
					return true
				})
				return false
			case *ast.Ident:
				if v := track(x); v != nil {
					f.use[v] = struct{}{}
				}
			}
			return true
		})
	}
	// lhs records an assignment target: a plain identifier is a definition
	// (plus a use for compound ops); any other expression reads its parts.
	lhs := func(e ast.Expr, compound bool) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v := track(id); v != nil {
				f.def[v] = struct{}{}
				if compound {
					f.use[v] = struct{}{}
				}
			}
			return
		}
		addUses(e)
	}
	for _, p := range n.Payload {
		switch s := p.(type) {
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				addUses(r)
			}
			compound := s.Tok != token.ASSIGN && s.Tok != token.DEFINE
			for _, l := range s.Lhs {
				lhs(l, compound)
			}
		case *ast.IncDecStmt:
			lhs(s.X, true)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						addUses(v)
					}
					for _, name := range vs.Names {
						if v := track(name); v != nil {
							f.def[v] = struct{}{}
						}
					}
				}
			}
		case *ast.RangeStmt:
			addUses(s.X)
			if s.Key != nil {
				lhs(s.Key, false)
			}
			if s.Value != nil {
				lhs(s.Value, false)
			}
		default:
			addUses(p)
		}
	}
	return f
}
