package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file provides the intraprocedural half of the dataflow engine: a
// statement-level control-flow graph per function body and a backward
// live-variable pass over a caller-chosen set of variables (skywayvet
// tracks heap.Addr-typed locals and parameters). The CFG is deliberately
// statement-granular — skywayvet's clients reason about "is v live across
// this call", for which per-expression ordering inside one statement is
// handled separately by the analyzers.

// FuncUnit is one function body analyzed as an independent liveness unit:
// every FuncDecl and every FuncLit. A literal is its own unit; variables it
// captures from the enclosing function are tracked there too, so a capture
// held across a collection inside the literal is still seen.
type FuncUnit struct {
	Name string // declaration name, or "function literal"
	Body *ast.BlockStmt
}

// Units enumerates the liveness units of file.
func Units(file *ast.File) []FuncUnit {
	var units []FuncUnit
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		units = append(units, FuncUnit{Name: fd.Name.Name, Body: fd.Body})
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			units = append(units, FuncUnit{Name: "function literal", Body: lit.Body})
		}
		return true
	})
	return units
}

// LiveNode is one CFG node with its solved liveness: the syntax evaluated
// at the node and the tracked variables whose current value must survive
// past it (live on exit and not redefined here). A collection entry point
// reached from Payload invalidates every variable in Across.
type LiveNode struct {
	Payload []ast.Node
	Across  []*types.Var
}

// LivenessOf builds the CFG for body, solves backward liveness for the
// variables accepted by isTracked, and returns the payload-bearing nodes.
func LivenessOf(body *ast.BlockStmt, info *types.Info, isTracked func(*types.Var) bool) []LiveNode {
	b := &cfgBuilder{labels: make(map[string]*cfgNode)}
	b.exit = b.newNode()
	b.stmtList(body.List, b.exit)
	// Deferred statements execute on function exit using values captured at
	// the defer site; modelling them as uses at exit keeps those values live
	// from the defer statement to the end of the function.
	for _, d := range b.defers {
		b.exit.payload = append(b.exit.payload, d)
	}

	for _, n := range b.nodes {
		n.computeUseDef(info, isTracked)
	}
	// Backward fixpoint. Nodes were created roughly bottom-up, so forward
	// creation order approximates reverse program order — good enough; the
	// loop runs until stable regardless.
	for changed := true; changed; {
		changed = false
		for _, n := range b.nodes {
			out := make(varSet)
			for _, s := range n.succs {
				for v := range s.in {
					out[v] = struct{}{}
				}
			}
			in := make(varSet)
			for v := range out {
				if _, killed := n.def[v]; !killed {
					in[v] = struct{}{}
				}
			}
			for v := range n.use {
				in[v] = struct{}{}
			}
			if len(out) != len(n.out) || len(in) != len(n.in) {
				n.out, n.in = out, in
				changed = true
			} else {
				n.out, n.in = out, in
			}
		}
	}

	var result []LiveNode
	for _, n := range b.nodes {
		if len(n.payload) == 0 {
			continue
		}
		var across []*types.Var
		for v := range n.out {
			if _, killed := n.def[v]; !killed {
				across = append(across, v)
			}
		}
		sort.Slice(across, func(i, j int) bool { return across[i].Pos() < across[j].Pos() })
		result = append(result, LiveNode{Payload: n.payload, Across: across})
	}
	return result
}

type varSet map[*types.Var]struct{}

type cfgNode struct {
	payload []ast.Node
	succs   []*cfgNode

	use, def, in, out varSet
}

type cfgBuilder struct {
	nodes  []*cfgNode
	exit   *cfgNode
	labels map[string]*cfgNode // label -> placeholder entry node
	defers []ast.Stmt

	// breakables tracks enclosing for/range/switch/select statements,
	// innermost last; cont is nil for non-loops.
	breakables []breakable
	// pendingLabel is the label of the LabeledStmt being built, consumed by
	// the next loop/switch/select so labeled break/continue resolve.
	pendingLabel string
	// fallTarget is the entry of the next case clause while a switch clause
	// body is being built.
	fallTarget *cfgNode
}

type breakable struct {
	label     string
	brk, cont *cfgNode
}

func (b *cfgBuilder) newNode(payload ...ast.Node) *cfgNode {
	n := &cfgNode{payload: payload}
	b.nodes = append(b.nodes, n)
	return n
}

func (b *cfgBuilder) labelNode(name string) *cfgNode {
	if n, ok := b.labels[name]; ok {
		return n
	}
	n := b.newNode()
	b.labels[name] = n
	return n
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// stmtList builds list so control falls through to succ; returns the entry.
func (b *cfgBuilder) stmtList(list []ast.Stmt, succ *cfgNode) *cfgNode {
	for i := len(list) - 1; i >= 0; i-- {
		succ = b.stmt(list[i], succ)
	}
	return succ
}

// stmt builds one statement with successor succ and returns its entry node.
func (b *cfgBuilder) stmt(s ast.Stmt, succ *cfgNode) *cfgNode {
	switch s := s.(type) {
	case nil:
		return succ
	case *ast.BlockStmt:
		return b.stmtList(s.List, succ)
	case *ast.EmptyStmt:
		return succ
	case *ast.LabeledStmt:
		ph := b.labelNode(s.Label.Name)
		b.pendingLabel = s.Label.Name
		inner := b.stmt(s.Stmt, succ)
		b.pendingLabel = ""
		ph.succs = append(ph.succs, inner)
		return ph
	case *ast.IfStmt:
		thenE := b.stmt(s.Body, succ)
		elseE := succ
		if s.Else != nil {
			elseE = b.stmt(s.Else, succ)
		}
		cond := b.newNode(s.Cond)
		cond.succs = []*cfgNode{thenE, elseE}
		if s.Init != nil {
			return b.stmt(s.Init, cond)
		}
		return cond
	case *ast.ForStmt:
		label := b.takeLabel()
		head := b.newNode()
		if s.Cond != nil {
			head.payload = append(head.payload, s.Cond)
			head.succs = append(head.succs, succ)
		}
		cont := head
		if s.Post != nil {
			post := b.newNode(s.Post)
			post.succs = []*cfgNode{head}
			cont = post
		}
		b.breakables = append(b.breakables, breakable{label, succ, cont})
		bodyE := b.stmt(s.Body, cont)
		b.breakables = b.breakables[:len(b.breakables)-1]
		head.succs = append(head.succs, bodyE)
		if s.Init != nil {
			return b.stmt(s.Init, head)
		}
		return head
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newNode(s) // use/def walks X, Key, Value only
		head.succs = []*cfgNode{succ}
		b.breakables = append(b.breakables, breakable{label, succ, head})
		bodyE := b.stmt(s.Body, head)
		b.breakables = b.breakables[:len(b.breakables)-1]
		head.succs = append(head.succs, bodyE)
		return head
	case *ast.SwitchStmt:
		return b.switchStmt(s.Init, s.Tag, nil, s.Body, succ)
	case *ast.TypeSwitchStmt:
		return b.switchStmt(s.Init, nil, s.Assign, s.Body, succ)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.newNode()
		b.breakables = append(b.breakables, breakable{label, succ, nil})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			comm := b.newNode()
			if cc.Comm != nil {
				comm.payload = append(comm.payload, cc.Comm)
			}
			comm.succs = []*cfgNode{b.stmtList(cc.Body, succ)}
			head.succs = append(head.succs, comm)
		}
		b.breakables = b.breakables[:len(b.breakables)-1]
		return head
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			for i := len(b.breakables) - 1; i >= 0; i-- {
				t := b.breakables[i]
				if s.Label == nil || t.label == s.Label.Name {
					return t.brk
				}
			}
		case token.CONTINUE:
			for i := len(b.breakables) - 1; i >= 0; i-- {
				t := b.breakables[i]
				if t.cont != nil && (s.Label == nil || t.label == s.Label.Name) {
					return t.cont
				}
			}
		case token.GOTO:
			return b.labelNode(s.Label.Name)
		case token.FALLTHROUGH:
			if b.fallTarget != nil {
				return b.fallTarget
			}
		}
		return succ
	case *ast.ReturnStmt:
		n := b.newNode(s)
		n.succs = []*cfgNode{b.exit}
		return n
	case *ast.DeferStmt:
		b.defers = append(b.defers, s)
		n := b.newNode(s)
		n.succs = []*cfgNode{succ}
		return n
	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt.
		n := b.newNode(s)
		n.succs = []*cfgNode{succ}
		return n
	}
}

// switchStmt builds an expression or type switch. For liveness the clause
// guards can all be evaluated at the head — precision about Go's sequential
// case testing is unnecessary for a may-analysis.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, succ *cfgNode) *cfgNode {
	label := b.takeLabel()
	head := b.newNode()
	if tag != nil {
		head.payload = append(head.payload, tag)
	}
	if assign != nil {
		head.payload = append(head.payload, assign)
	}
	b.breakables = append(b.breakables, breakable{label, succ, nil})
	hasDefault := false
	next := succ // fallthrough target beyond the clause being built
	for i := len(body.List) - 1; i >= 0; i-- {
		cc := body.List[i].(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			head.payload = append(head.payload, e)
		}
		saved := b.fallTarget
		b.fallTarget = next
		bodyE := b.stmtList(cc.Body, succ)
		b.fallTarget = saved
		next = bodyE
		head.succs = append(head.succs, bodyE)
	}
	b.breakables = b.breakables[:len(b.breakables)-1]
	if !hasDefault {
		head.succs = append(head.succs, succ)
	}
	if init != nil {
		return b.stmt(init, head)
	}
	return head
}

// --- use/def extraction ------------------------------------------------------

func (n *cfgNode) computeUseDef(info *types.Info, isTracked func(*types.Var) bool) {
	n.use, n.def = make(varSet), make(varSet)
	track := func(id *ast.Ident) *types.Var {
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && isTracked(v) {
			return v
		}
		return nil
	}
	addUses := func(node ast.Node) {
		if node == nil {
			return
		}
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				// A nested literal is opaque here: only the variables it
				// captures from outside count as uses at this node — its
				// own locals and parameters belong to the literal's unit.
				ast.Inspect(x.Body, func(y ast.Node) bool {
					if id, ok := y.(*ast.Ident); ok {
						if v := track(id); v != nil && (v.Pos() < x.Pos() || v.Pos() > x.End()) {
							n.use[v] = struct{}{}
						}
					}
					return true
				})
				return false
			case *ast.Ident:
				if v := track(x); v != nil {
					n.use[v] = struct{}{}
				}
			}
			return true
		})
	}
	// lhs records an assignment target: a plain identifier is a definition
	// (plus a use for compound ops); any other expression reads its parts.
	lhs := func(e ast.Expr, compound bool) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v := track(id); v != nil {
				n.def[v] = struct{}{}
				if compound {
					n.use[v] = struct{}{}
				}
			}
			return
		}
		addUses(e)
	}
	for _, p := range n.payload {
		switch s := p.(type) {
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				addUses(r)
			}
			compound := s.Tok != token.ASSIGN && s.Tok != token.DEFINE
			for _, l := range s.Lhs {
				lhs(l, compound)
			}
		case *ast.IncDecStmt:
			lhs(s.X, true)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						addUses(v)
					}
					for _, name := range vs.Names {
						if v := track(name); v != nil {
							n.def[v] = struct{}{}
						}
					}
				}
			}
		case *ast.RangeStmt:
			addUses(s.X)
			if s.Key != nil {
				lhs(s.Key, false)
			}
			if s.Value != nil {
				lhs(s.Value, false)
			}
		default:
			addUses(p)
		}
	}
}
