package analyzers

import (
	"go/ast"
	"go/types"

	"skyway/internal/analyzers/framework"
)

// StaleAddr flags a raw heap.Addr whose value is held live across a call
// that may trigger a collection. The copying collector moves objects on
// every scavenge and full GC; only gc.Handle roots are retargeted, so a
// plain Addr local observed after a collection points at the object's old
// home — HotSpot's "oops live across a safepoint must be in Handles"
// discipline. The check is interprocedural: the framework's module call
// graph decides which calls can reach Scavenge/FullGC or an allocation
// entry point (calls through function values and interface methods resolve
// conservatively). Addresses into pinned buffer space never move; such
// sites carry a //skyway:allow staleaddr justification instead.
var StaleAddr = &framework.Analyzer{
	Name: "staleaddr",
	Doc: "flag heap.Addr values live across calls that may trigger GC; the copying " +
		"collector moves objects, so root them in a gc.Handle (Runtime.Pin) and " +
		"re-derive the address with Handle.Addr after the call",
	NeedsModule: true,
	Run:         runStaleAddr,
}

func runStaleAddr(p *framework.Pass) error {
	if exemptPkg(p) {
		return nil
	}
	// Only locals and parameters participate: a field or package variable
	// is re-read from memory at each mention, so statement liveness says
	// nothing about it (Addr-typed fields have their own discipline — see
	// DESIGN.md).
	tracked := func(v *types.Var) bool {
		if v.IsField() || !isHeapAddr(v.Type()) {
			return false
		}
		return v.Pkg() == nil || v.Parent() != v.Pkg().Scope()
	}
	for _, f := range p.Files {
		for _, unit := range framework.Units(f) {
			for _, n := range framework.LivenessOf(unit.Body, p.TypesInfo, tracked) {
				if len(n.Across) == 0 {
					continue
				}
				for _, payload := range n.Payload {
					name := unit.Name
					forEachCallNow(payload, func(call *ast.CallExpr) {
						may, who := p.Module.CallMayGC(p.TypesInfo, call)
						if !may {
							return
						}
						for _, v := range n.Across {
							p.Reportf(call.Pos(),
								"heap.Addr %s is live across the call to %s in %s, which may trigger a collection and move the object; root it in a gc.Handle (Runtime.Pin) and re-derive it with Addr()",
								v.Name(), who, name)
						}
					})
				}
			}
		}
		checkIntraCallOrder(p, f, tracked)
	}
	return nil
}

// forEachCallNow visits the calls in n that execute when n itself does:
// function-literal bodies are skipped (each literal is its own liveness
// unit, and an immediately invoked literal is still seen as the enclosing
// CallExpr), and a deferred call's target runs at function exit, so only
// its argument expressions are visited.
func forEachCallNow(n ast.Node, fn func(*ast.CallExpr)) {
	if d, ok := n.(*ast.DeferStmt); ok {
		forEachCallNow(d.Call.Fun, fn)
		for _, arg := range d.Call.Args {
			forEachCallNow(arg, fn)
		}
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn(x)
		}
		return true
	})
}

// checkIntraCallOrder catches the within-statement variant the CFG's
// statement granularity misses: in f(a, g(...)) the value of a is loaded
// before g runs, so if g collects, f receives a stale address. Flagged when
// an argument (or the receiver) reads a tracked variable and a later
// argument contains a mayGC call.
func checkIntraCallOrder(p *framework.Pass, f *ast.File, tracked func(*types.Var) bool) {
	readsTracked := func(e ast.Expr) *types.Var {
		var found *types.Var
		ast.Inspect(e, func(x ast.Node) bool {
			if found != nil {
				return false
			}
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if id, ok := x.(*ast.Ident); ok {
				if v, ok := p.TypesInfo.Uses[id].(*types.Var); ok && tracked(v) {
					found = v
				}
			}
			return true
		})
		return found
	}
	ast.Inspect(f, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Expressions evaluated left to right: receiver, then arguments.
		evaluated := make([]ast.Expr, 0, len(call.Args)+1)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			evaluated = append(evaluated, sel.X)
		}
		evaluated = append(evaluated, call.Args...)
		var pending *types.Var // earliest tracked read so far
		for _, e := range evaluated {
			if pending != nil {
				var gcCall *ast.CallExpr
				forEachCallNow(e, func(inner *ast.CallExpr) {
					if gcCall != nil {
						return
					}
					if may, _ := p.Module.CallMayGC(p.TypesInfo, inner); may {
						gcCall = inner
					}
				})
				if gcCall != nil {
					p.Reportf(gcCall.Pos(),
						"heap.Addr %s is evaluated earlier in this call expression; this operand may trigger a collection, so the callee would receive a stale address — evaluate the allocating expression first or pin the object",
						pending.Name())
					return true // one report per call expression
				}
			}
			if pending == nil {
				pending = readsTracked(e)
			}
		}
		return true
	})
}
