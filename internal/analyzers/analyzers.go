// Package analyzers holds the skywayvet checks: project-specific invariants
// of the simulated-heap architecture that the compiler cannot enforce.
// Each analyzer encodes one rule the Skyway design depends on:
//
//   - addrarith: heap.Addr values are derived, never computed ad hoc;
//   - rawslab: little-endian is the slab byte order, confined to the heap
//     and Skyway-core layers — the network wire format is big-endian/varint;
//   - atomicbaddr: baddr header words are claimed by concurrent senders via
//     CAS, so every access outside internal/heap must be atomic;
//   - staleaddr: a raw heap.Addr held live across a call that can trigger a
//     collection is a stale pointer once the copying GC moves the object —
//     root it in a gc.Handle instead (the safepoint discipline);
//   - writebarrier: a reference store that bypasses Runtime.SetRef must
//     still dirty the card table, or scavenges miss old-to-young edges;
//   - wiretaint: integers decoded off the wire must pass a full-width
//     bounds check before sizing an allocation, indexing, or offsetting a
//     heap address — truncated-width comparisons do not count;
//   - atomicmix: memory accessed through sync/atomic anywhere in the
//     module must never be loaded or stored plainly elsewhere.
package analyzers

import (
	"go/types"

	"skyway/internal/analyzers/framework"
)

// All returns every skywayvet analyzer, in the order the multichecker runs
// them.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{AddrArith, RawSlab, AtomicBaddr, StaleAddr, WriteBarrier, WireTaint, AtomicMix}
}

const (
	heapPkg = "skyway/internal/heap"
	corePkg = "skyway/internal/core"
	gcPkg   = "skyway/internal/gc"
)

// exemptions is the single source of truth for which packages may violate
// which check. The heap and Skyway core own the slab representation (raw
// address math, slab byte order); the heap implements both baddr access
// flavors; the collector and the heap manipulate raw addresses while the
// world is stopped, so safepoint and barrier rules do not apply beneath
// them.
var exemptions = map[string]map[string]bool{
	"addrarith":    {heapPkg: true, corePkg: true},
	"rawslab":      {heapPkg: true, corePkg: true},
	"atomicbaddr":  {heapPkg: true},
	"staleaddr":    {heapPkg: true, gcPkg: true},
	"writebarrier": {heapPkg: true, gcPkg: true},
	"atomicmix":    {heapPkg: true},
}

// exemptPkg reports whether the pass's package is allowlisted for the
// pass's analyzer.
func exemptPkg(p *framework.Pass) bool {
	return exemptions[p.Analyzer.Name][p.Pkg.Path()]
}

// isHeapAddr reports whether t is (an alias of) skyway/internal/heap.Addr.
func isHeapAddr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Addr" && obj.Pkg() != nil && obj.Pkg().Path() == heapPkg
}

// namedRecv unwraps a method receiver type to its named type, through one
// level of pointer.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isHeapMethod reports whether sel resolves to a method named name on
// heap.Heap (through a pointer receiver or not).
func isHeapMethod(sel *types.Selection, name string) bool {
	if sel == nil || sel.Kind() != types.MethodVal {
		return false
	}
	obj := sel.Obj()
	if obj.Name() != name || obj.Pkg() == nil || obj.Pkg().Path() != heapPkg {
		return false
	}
	recv := namedRecv(sel.Recv())
	return recv != nil && recv.Obj().Name() == "Heap"
}
