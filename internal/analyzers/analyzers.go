// Package analyzers holds the skywayvet checks: project-specific invariants
// of the simulated-heap architecture that the compiler cannot enforce.
// Each analyzer encodes one rule the Skyway design depends on:
//
//   - addrarith: heap.Addr values are derived, never computed ad hoc;
//   - rawslab: little-endian is the slab byte order, confined to the heap
//     and Skyway-core layers — the network wire format is big-endian/varint;
//   - atomicbaddr: baddr header words are claimed by concurrent senders via
//     CAS, so every access outside internal/heap must be atomic.
package analyzers

import (
	"go/types"

	"skyway/internal/analyzers/framework"
)

// All returns every skywayvet analyzer, in the order the multichecker runs
// them.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{AddrArith, RawSlab, AtomicBaddr}
}

const heapPkg = "skyway/internal/heap"

// slabLayers are the packages allowed to do raw address math and touch slab
// byte order: the heap itself and the Skyway core (whose copy loops and
// relativization passes are the reason the representation exists).
var slabLayers = map[string]bool{
	heapPkg:               true,
	"skyway/internal/core": true,
}

// isHeapAddr reports whether t is (an alias of) skyway/internal/heap.Addr.
func isHeapAddr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Addr" && obj.Pkg() != nil && obj.Pkg().Path() == heapPkg
}

// namedRecv unwraps a method receiver type to its named type, through one
// level of pointer.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
