package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"skyway/internal/analyzers/framework"
)

// AtomicMix flags memory that is accessed both atomically and plainly. The
// module-wide sweep (framework.AtomicClaims) collects every package-level
// variable and struct field that some code touches through sync/atomic —
// an address-taking call like atomic.AddInt64(&s.n, 1) or a method on a
// typed atomic like atomic.Pointer — and this pass then reports every
// remaining plain mention of the same variable anywhere in the module.
// One racy plain store invalidates all the atomic discipline around it:
// the race detector only catches the interleavings a test happens to run,
// while the claim set catches the pattern statically (the boxField race
// fixed in PR 3 was exactly this shape).
var AtomicMix = &framework.Analyzer{
	Name: "atomicmix",
	Doc: "flag variables and struct fields accessed both through sync/atomic and " +
		"via plain loads/stores; mixed access is a data race — once one access " +
		"site is atomic, every access must be",
	NeedsModule: true,
	Run:         runAtomicMix,
}

func runAtomicMix(p *framework.Pass) error {
	if exemptPkg(p) {
		return nil
	}
	claims := p.Module.AtomicClaims()
	if len(claims) == 0 {
		return nil
	}
	for _, f := range p.Files {
		compositeKeys := compositeKeyPositions(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := p.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			claim, claimed := claims[v]
			if !claimed || p.Module.AtomicSanctioned(id.Pos()) {
				return true
			}
			// A keyed composite literal initializes memory no other
			// goroutine can see yet; construction is not an access.
			if compositeKeys[id.Pos()] {
				return true
			}
			kind := "struct field"
			if !v.IsField() {
				kind = "package variable"
			}
			p.Reportf(id.Pos(),
				"%s %s is accessed atomically via %s (%s) but plainly here; mixing atomic and plain access is a data race — use the atomic API at every access site",
				kind, v.Name(), claim.Via, claim.Pos)
			return true
		})
	}
	return nil
}

// compositeKeyPositions collects the positions of field-name keys in keyed
// composite literals, which name a field without loading or storing it
// through shared memory.
func compositeKeyPositions(f *ast.File) map[token.Pos]bool {
	keys := make(map[token.Pos]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range cl.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					keys[id.Pos()] = true
				}
			}
		}
		return true
	})
	return keys
}
