package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"skyway/internal/analyzers/framework"
)

// WireTaint tracks integers read off the wire — binary.*Endian.Uint*,
// varint decodes, single-byte reads, and (in the decode layer) header words
// loaded from not-yet-validated chunk images — and flags any such value
// flowing into a size-like sink (make, slice indexing, heap address
// arithmetic, Klass.InstanceBytes, Runtime.NewArray, heap copy/alloc
// lengths) without a dominating full-width bounds comparison. A comparison
// against a TRUNCATED conversion does not sanitize: `uint32(n) > limit`
// with n an int64 is exactly the wrap pattern that let a crafted segment
// header oversize a decode buffer (fixed in internal/core/reader.go by
// widening the check to uint64). The analysis is interprocedural through
// parameter→return summaries, so a helper that returns a wire read taints
// its callers.
var WireTaint = &framework.Analyzer{
	Name: "wiretaint",
	Doc: "flag wire-derived integers (binary.*Endian.Uint*, varints, unvalidated " +
		"header words) reaching allocation sizes, slice indices, or heap address " +
		"arithmetic without a dominating full-width bounds check; comparisons of a " +
		"truncated conversion (uint32(n) on an int64) do not sanitize — widen the " +
		"check (uint64) instead",
	NeedsModule: true,
	Run:         runWireTaint,
}

const (
	klassPkg = "skyway/internal/klass"
	vmPkg    = "skyway/internal/vm"
)

// wireTaintConfig defines the source set. Everything decoded by
// encoding/binary is untrusted by definition; byte-at-a-time reads feed
// varint-style framing. Heap header reads (ArrayLen, KlassWord) are only
// sources inside the decode layer (corePkg), where they walk chunk images
// whose headers came off the network and have not been validated yet —
// everywhere else those words were written by the local allocator.
func wireTaintConfig() framework.TaintConfig {
	return framework.TaintConfig{IsSource: isWireSource}
}

func isWireSource(pkgPath string, info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "encoding/binary":
		// Uint16/Uint32/Uint64 (ByteOrder methods) and the varint family.
		// PutUint*/AppendUint* encode and do not match.
		return strings.HasPrefix(name, "Uint") ||
			name == "Uvarint" || name == "Varint" ||
			name == "ReadUvarint" || name == "ReadVarint"
	case "bufio", "bytes":
		return name == "ReadByte"
	case heapPkg:
		return pkgPath == corePkg && (name == "ArrayLen" || name == "KlassWord")
	}
	return false
}

func runWireTaint(p *framework.Pass) error {
	if exemptPkg(p) {
		return nil
	}
	eng := p.Module.Taint(wireTaintConfig())
	for _, f := range p.Files {
		for _, unit := range framework.Units(f) {
			checkWireFlows(p, eng, unit.Type, unit.Body)
		}
	}
	return nil
}

// checkWireFlows solves the taint flow for one function body and tests
// every sink expression against the state at its CFG node.
func checkWireFlows(p *framework.Pass, eng *framework.TaintEngine, ftype *ast.FuncType, body *ast.BlockStmt) {
	ft := eng.Flow(p.TypesInfo, p.Pkg.Path(), ftype, body)
	// Deferred statements appear both at the defer site and in the exit
	// node's payload; dedupe reports by sink position.
	reported := make(map[token.Pos]bool)
	tainted := func(n *framework.CFGNode, e ast.Expr) bool {
		return ft.OriginsAt(e, n).FromSource()
	}
	for _, n := range ft.Nodes() {
		for _, pl := range n.Payload {
			// A range head's payload is the whole statement, but its body
			// statements are separate nodes — only the range operand is
			// evaluated here.
			if rs, ok := pl.(*ast.RangeStmt); ok {
				pl = rs.X
				if pl == nil {
					continue
				}
			}
			ast.Inspect(pl, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false // its own flow unit
				case *ast.CallExpr:
					checkCallSinks(p, x, reported, func(e ast.Expr) bool { return tainted(n, e) })
				case *ast.IndexExpr:
					if indexableSink(p.TypesInfo, x.X) && tainted(n, x.Index) {
						reportWire(p, reported, x.Index.Pos(), "a slice/array index")
					}
				case *ast.SliceExpr:
					for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
						if b != nil && tainted(n, b) {
							reportWire(p, reported, b.Pos(), "a slice bound")
						}
					}
				case *ast.BinaryExpr:
					if x.Op == token.ADD || x.Op == token.SUB {
						checkAddrArithSink(p, x, reported, func(e ast.Expr) bool { return tainted(n, e) })
					}
				}
				return true
			})
		}
	}
}

// wireSinkArgs maps heap/klass/vm methods to the index of their size or
// length argument.
var wireSinkArgs = map[string]map[string]int{
	heapPkg: {
		"Add":         0, // (Addr).Add
		"AllocYoung":  0,
		"AllocOld":    0,
		"AllocBuffer": 0,
		"CopyOut":     1,
		"CopyIn":      1,
		"CopyWords":   2,
		"ZeroWords":   1,
		"DirtyRange":  1,
	},
	klassPkg: {"InstanceBytes": 0},
	vmPkg:    {"NewArray": 1, "MustNewArray": 1},
}

func checkCallSinks(p *framework.Pass, call *ast.CallExpr, reported map[token.Pos]bool, tainted func(ast.Expr) bool) {
	// Builtin make: every size/capacity argument is a sink.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "make" {
			for _, arg := range call.Args[1:] {
				if tainted(arg) {
					reportWire(p, reported, arg.Pos(), "a make size/capacity")
				}
			}
			return
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	argIdx, ok := wireSinkArgs[fn.Pkg().Path()][fn.Name()]
	if !ok || argIdx >= len(call.Args) {
		return
	}
	if tainted(call.Args[argIdx]) {
		reportWire(p, reported, call.Args[argIdx].Pos(),
			"the "+fn.Name()+" size argument")
	}
}

// checkAddrArithSink flags `addr + n` / `addr - n` where one operand is a
// heap.Addr and the other carries wire taint — the ad-hoc form of Addr.Add.
func checkAddrArithSink(p *framework.Pass, x *ast.BinaryExpr, reported map[token.Pos]bool, tainted func(ast.Expr) bool) {
	check := func(addrSide, offSide ast.Expr) {
		if t := p.TypesInfo.TypeOf(addrSide); t != nil && isHeapAddr(t) && tainted(offSide) {
			reportWire(p, reported, offSide.Pos(), "heap address arithmetic")
		}
	}
	check(x.X, x.Y)
	check(x.Y, x.X)
}

// indexableSink reports whether e is a slice, array, or string — map keys
// are not size-like and cannot go out of bounds.
func indexableSink(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func reportWire(p *framework.Pass, reported map[token.Pos]bool, pos token.Pos, sink string) {
	if reported[pos] {
		return
	}
	reported[pos] = true
	p.Reportf(pos,
		"wire-derived value reaches %s without a dominating full-width bounds check; a crafted length can wrap or oversize here — validate it widened, e.g. uint64 against a limit, first",
		sink)
}
