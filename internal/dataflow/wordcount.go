package dataflow

import (
	"strings"
	"sync/atomic"

	"skyway/internal/heap"
	"skyway/internal/metrics"
)

// RunWordCount executes the WC workload: one map phase with map-side
// combining followed by a single shuffle of (word, count) pair objects and
// a reduce-side sum — the one-round-of-shuffling application of §5.2.
// lines are pre-partitioned across executors by the caller.
// Returns the breakdown and the total word occurrences (for cross-codec
// result validation).
func RunWordCount(c *Cluster, lines [][]string) (metrics.Breakdown, int64, error) {
	WorkloadClasses(c.CP)
	var total int64 // summed atomically: Consume runs on concurrent tasks

	spec := ShuffleSpec{
		Produce: func(ex *Executor, emit Emit) error {
			pk := ex.RT.MustLoad(WordPairClass)
			wordF, countF := pk.FieldByName("word"), pk.FieldByName("count")
			// Map-side combine in a transient Go map, like Spark's
			// map-side aggregator.
			counts := make(map[string]int64)
			for _, line := range lines[ex.ID] {
				for _, w := range strings.Fields(line) {
					counts[w]++
				}
			}
			for w, n := range counts {
				s, err := ex.RT.NewString(w)
				if err != nil {
					return err
				}
				sp := ex.RT.Pin(s)
				pair, err := ex.RT.New(pk)
				if err != nil {
					sp.Release()
					return err
				}
				ex.RT.SetRef(pair, wordF, sp.Addr())
				ex.RT.SetLong(pair, countF, n)
				sp.Release()
				key := uint64(uint32(stringHash(w)))
				emit(int(key)%c.NumPartitions(), key, pair)
			}
			return nil
		},
		Consume: func(ex *Executor, recs []heap.Addr) error {
			pk := ex.RT.MustLoad(WordPairClass)
			wordF, countF := pk.FieldByName("word"), pk.FieldByName("count")
			agg := make(map[string]int64)
			for _, r := range recs {
				w := ex.RT.GoString(ex.RT.GetRef(r, wordF))
				agg[w] += ex.RT.GetLong(r, countF)
			}
			var sum int64
			for _, n := range agg {
				sum += n
			}
			atomic.AddInt64(&total, sum)
			return nil
		},
	}
	bd, err := c.RunShuffle(spec)
	return bd, total, err
}

// stringHash is Java's String.hashCode over ASCII bytes (the workload's
// vocabulary is ASCII), keeping partitioning identical across codecs.
func stringHash(s string) int32 {
	var h int32
	for i := 0; i < len(s); i++ {
		h = 31*h + int32(s[i])
	}
	return h
}
