// Package dataflow is a miniature Spark: a driver plus N executor runtimes
// (one simulated JVM each), datasets partitioned across executors, and a
// sort-based shuffle whose write/fetch/deserialize path matches the Spark
// pipeline the paper instruments (§2.2) — records are serialized with a
// pluggable serializer into per-reducer blocks, "spilled" to disk, fetched
// locally or remotely, and deserialized on the receiving executor. CPU-side
// S/D time is measured; disk and network time are modelled from byte counts
// by a netsim.CostModel.
package dataflow

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"skyway/internal/fault"
	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/metrics"
	"skyway/internal/netsim"
	"skyway/internal/obs"
	"skyway/internal/registry"
	"skyway/internal/serial"
	"skyway/internal/transport"
	"skyway/internal/vm"
)

// Scheduler counters, exported on /metrics.
var (
	ctrStages = obs.NewCounter("skyway_dataflow_stages_total", "Stages executed across all clusters.")
	ctrTasks  = obs.NewCounter("skyway_dataflow_tasks_total", "Executor tasks executed across all clusters.")
)

// Config sizes a cluster.
type Config struct {
	// Workers is the executor count (the paper's Spark experiments use 3).
	Workers int
	// Heap configures each executor's heap; zero value uses a default
	// sized for the bundled workloads.
	Heap heap.Config
	// Model prices disk and network I/O; zero value uses Paper1GbE.
	Model netsim.CostModel
	// SpillDir, when set, makes shuffles write real block files there and
	// read them back, replacing the modelled disk times with measured
	// ones (network stays modelled — the cluster is one process). Useful
	// for validating the cost model against a real filesystem.
	SpillDir string
	// Transport, when set, replaces the default in-process block exchange
	// (netsim.NewLocalTransport over Model and SpillDir) — e.g. a
	// transport/tcp.Transport moving blocks through executor server
	// processes over real sockets. When set, Model and SpillDir only
	// matter if the transport itself consults a cost model.
	Transport transport.Transport
	// RegistryClient, when set, supplies each runtime's connection to the
	// type registry (one fresh client per runtime — a TCP cluster gives
	// every runtime its own registry.TCPClient). Default: in-process
	// clients against the cluster's own Registry.
	RegistryClient func() (registry.Client, error)
	// PartitionsPerWorker sets how many shuffle partitions each executor
	// hosts (Spark defaults to several partitions per core); the total
	// partition count is Workers × PartitionsPerWorker. Default 2.
	// Partition p is placed on worker p mod Workers, so with a whole
	// multiple per worker, key → worker ownership is stable regardless
	// of the partition count.
	PartitionsPerWorker int
	// ParallelTasks caps how many executor tasks run concurrently per
	// stage (map side, reduce side, Compute, Broadcast receive). 0 or 1
	// preserves the historical sequential execution; values above the
	// worker count are clamped to it; negative means one goroutine per
	// executor. When zero, the SKYWAY_PARALLEL environment variable (an
	// integer) supplies the value, so whole test runs can be switched to
	// the concurrent path (the CI parallel job does exactly that).
	// Results are identical either way; only scheduling and the
	// wall-clock accounting differ (metrics.Breakdown.Wall).
	ParallelTasks int
	// ConcurrentSenders sets how many encoder goroutines serialize one
	// executor's shuffle blocks concurrently — the §4.2 multi-threaded
	// sender path, where several streams copy out of one heap at once and
	// contend on the CAS-claimed baddr words. 0 means auto: 2 when the
	// cluster is parallel and the codec reports ConcurrentEncoders, else
	// 1. Codecs without the capability always serialize sequentially.
	ConcurrentSenders int
}

// Cluster is one simulated Spark deployment.
type Cluster struct {
	CP     *klass.Path
	Reg    *registry.Registry
	Driver *vm.Runtime
	Execs  []*Executor
	Model  netsim.CostModel

	// Codec is the active data serializer (spark.serializer).
	Codec serial.Codec

	// Transport is the byte-moving layer shuffle blocks and broadcast
	// payloads travel through (netsim.LocalTransport by default).
	Transport transport.Transport

	// PeakHeap tracks the maximum per-executor heap usage, sampled at
	// every task completion, for the §5.2 memory-overhead experiment.
	// Guarded by peakMu; read it only after a run returns.
	PeakHeap uint64

	// Traffic is the fabric's shared byte accounting (spill writes,
	// local/remote fetches); safe for concurrent tasks.
	Traffic netsim.Traffic

	// shuffleSeq and broadcastSeq number transport rounds so a transport
	// with persistent storage never confuses two rounds' payloads.
	shuffleSeq   int
	broadcastSeq int

	partitionsPerWorker int
	parallelTasks       int
	concurrentSenders   int
	peakMu              sync.Mutex

	// excluded tracks map-side peers the reduce degradation ladder gave up
	// on (see faults.go); guarded by excludedMu.
	excludedMu sync.Mutex
	excluded   map[int]bool
}

// Executor is one worker JVM.
type Executor struct {
	ID int
	RT *vm.Runtime
}

// DefaultWorkerHeap sizes executor heaps for the bundled workloads.
func DefaultWorkerHeap() heap.Config {
	return heap.Config{
		EdenSize:     48 << 20,
		SurvivorSize: 4 << 20,
		OldSize:      96 << 20,
		BufferSize:   192 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
}

// NewCluster boots a driver and workers over a shared classpath, with the
// driver hosting the global type registry (§4.1).
func NewCluster(cp *klass.Path, cfg Config, codec serial.Codec) (*Cluster, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Heap.EdenSize == 0 {
		cfg.Heap = DefaultWorkerHeap()
	}
	if cfg.Model.NetBandwidth == 0 {
		cfg.Model = netsim.Paper1GbE()
	}
	if cfg.Model.Trace == nil {
		// Modelled disk/network charges get their own trace timeline.
		cfg.Model.Trace = obs.NewTracer("fabric")
	}
	reg := registry.NewRegistry()
	if cfg.RegistryClient == nil {
		cfg.RegistryClient = func() (registry.Client, error) { return registry.InProc{R: reg}, nil }
	}
	regClient, err := cfg.RegistryClient()
	if err != nil {
		return nil, err
	}
	driver, err := vm.NewRuntime(cp, vm.Options{Name: "driver", Registry: regClient})
	if err != nil {
		return nil, err
	}
	if cfg.PartitionsPerWorker <= 0 {
		cfg.PartitionsPerWorker = 2
	}
	if cfg.ParallelTasks == 0 {
		if n, err := strconv.Atoi(os.Getenv("SKYWAY_PARALLEL")); err == nil {
			cfg.ParallelTasks = n
		}
	}
	if cfg.ParallelTasks < 0 || cfg.ParallelTasks > cfg.Workers {
		cfg.ParallelTasks = cfg.Workers
	}
	if cfg.Transport == nil {
		cfg.Transport = netsim.NewLocalTransport(cfg.Model, cfg.SpillDir)
	}
	c := &Cluster{
		CP: cp, Reg: reg, Driver: driver, Model: cfg.Model, Codec: codec,
		Transport: cfg.Transport, partitionsPerWorker: cfg.PartitionsPerWorker,
		parallelTasks: cfg.ParallelTasks, concurrentSenders: cfg.ConcurrentSenders,
	}
	for i := 0; i < cfg.Workers; i++ {
		rc, err := cfg.RegistryClient()
		if err != nil {
			return nil, err
		}
		rt, err := vm.NewRuntime(cp, vm.Options{
			Name:     fmt.Sprintf("worker-%d", i),
			Heap:     cfg.Heap,
			Registry: rc,
		})
		if err != nil {
			return nil, err
		}
		c.Execs = append(c.Execs, &Executor{ID: i, RT: rt})
	}
	return c, nil
}

// Workers returns the executor count.
func (c *Cluster) Workers() int { return len(c.Execs) }

// Parallel reports whether executor tasks run concurrently.
func (c *Cluster) Parallel() bool { return c.parallelTasks > 1 }

// taskSlots returns how many executor tasks may run at once.
func (c *Cluster) taskSlots() int {
	if c.parallelTasks > 1 {
		return c.parallelTasks
	}
	return 1
}

// senderSlots returns how many encoder goroutines serialize one executor's
// blocks, bounded by the block count; >1 only when the codec declares its
// encoders concurrency-safe (serial.ConcurrentCodec).
func (c *Cluster) senderSlots(blocks int) int {
	n := c.concurrentSenders
	if n == 0 {
		if c.Parallel() {
			n = 2
		} else {
			n = 1
		}
	}
	if n > 1 {
		if cc, ok := c.Codec.(serial.ConcurrentCodec); !ok || !cc.ConcurrentEncoders() {
			n = 1
		}
	}
	if n > blocks {
		n = blocks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NumPartitions returns the shuffle partition count.
func (c *Cluster) NumPartitions() int { return len(c.Execs) * c.partitionsPerWorker }

// GCStats aggregates collector statistics across the driver and all
// executors — the per-deployment GC pause totals the benchmark trajectory
// records next to each figure's breakdown.
func (c *Cluster) GCStats() gc.Stats {
	s := c.Driver.GC.Stats()
	for _, ex := range c.Execs {
		s.Merge(ex.RT.GC.Stats())
	}
	return s
}

// BufferPeak returns the largest input-buffer high-water mark across the
// executors (driver heaps never host input buffers in these workloads).
func (c *Cluster) BufferPeak() uint64 {
	var peak uint64
	for _, ex := range c.Execs {
		if hw := ex.RT.Heap.BufferHighWater(); hw > peak {
			peak = hw
		}
	}
	return peak
}

// OwnerOf returns the executor hosting shuffle partition p.
func (c *Cluster) OwnerOf(p int) int { return p % len(c.Execs) }

// sampleHeap records one executor's current heap usage into the cluster
// peak. It reads only ex's own heap, so a task may call it for itself while
// other executors run; the peak update itself is mutex-guarded. Sampling at
// task completion (rather than only at phase boundaries, which missed the
// receive-side high-water mark) is what the §5.2 memory-overhead numbers
// are built on.
func (c *Cluster) sampleHeap(ex *Executor) {
	u := ex.RT.Heap.UsedBytes()
	c.peakMu.Lock()
	if u > c.PeakHeap {
		c.PeakHeap = u
	}
	c.peakMu.Unlock()
}

// shuffleStart advances the Skyway shuffle phase when the active codec is
// Skyway — the one-line integration mark of §3.3. Baseline codecs need no
// phase management.
func (c *Cluster) shuffleStart() {
	if s, ok := c.Codec.(interface{ ShuffleStartAll() }); ok {
		s.ShuffleStartAll()
	}
}

// records is a GC-safe record list: one pinned heap ArrayList per executor
// partition.
type records struct {
	ex  *Executor
	pin interface{ Addr() heap.Addr }
	rel func()
}

func newRecords(ex *Executor) (*records, error) {
	l, err := ex.RT.NewArrayList(64)
	if err != nil {
		return nil, err
	}
	h := ex.RT.Pin(l)
	return &records{ex: ex, pin: h, rel: h.Release}, nil
}

func (r *records) add(a heap.Addr) error { return r.ex.RT.ListAdd(r.pin.Addr(), a) }
func (r *records) len() int              { return r.ex.RT.ListLen(r.pin.Addr()) }
func (r *records) get(i int) heap.Addr   { return r.ex.RT.ListGet(r.pin.Addr(), i) }
func (r *records) free()                 { r.rel() }

// Task execution -----------------------------------------------------------

// taskResult is one executor task's contribution to a stage: its breakdown
// components (which sum across executors into the per-node totals of §2.2)
// and its own elapsed wall time (measured CPU plus modelled I/O; with
// concurrent senders inside the task, the slowest sender, not their sum).
type taskResult struct {
	bd   metrics.Breakdown
	wall time.Duration
}

// mergeBreakdowns folds per-executor task results into one stage breakdown.
// Components always sum — they are per-node CPU and I/O totals. Wall-clock
// does NOT equal that sum when tasks ran concurrently: the stage takes as
// long as its slowest executor, so the parallel merge records the per-
// executor max in Breakdown.Wall. Sequential runs leave Wall zero and
// Total() falls back to the sum, preserving the historical numbers.
func mergeBreakdowns(parallel bool, parts []taskResult) metrics.Breakdown {
	var out metrics.Breakdown
	var maxWall time.Duration
	for _, p := range parts {
		out.Add(p.bd)
		if p.wall > maxWall {
			maxWall = p.wall
		}
	}
	if parallel {
		out.Wall = maxWall
	}
	return out
}

// runPerExecutor runs task once per executor — concurrently, up to
// taskSlots goroutines, when the cluster is parallel — and merges the
// per-executor results. Each executor's runtime is confined to the single
// goroutine running its task for the duration of the stage; stage
// boundaries are barriers.
func (c *Cluster) runPerExecutor(stage string, task func(ex *Executor) (taskResult, error)) (metrics.Breakdown, error) {
	ctrStages.Inc()
	ctrTasks.Add(int64(len(c.Execs)))
	stageSpan := c.Driver.Trace.Span("stage", stage)
	defer stageSpan.End()
	if fault.Active() {
		// Failpoint: an executor dies mid-stage. The injected error takes
		// the normal task-failure path — the stage completes its barrier and
		// aborts cleanly with the executor named.
		inner := task
		task = func(ex *Executor) (taskResult, error) {
			if err := fault.Inject(fault.DataflowTaskDie); err != nil {
				ctrStageAborts.Inc()
				return taskResult{}, fmt.Errorf("executor %d killed: %w", ex.ID, err)
			}
			return inner(ex)
		}
	}
	if obs.Enabled() {
		// Wrap each task in a span on its executor's timeline carrying the
		// task's breakdown components.
		inner := task
		task = func(ex *Executor) (taskResult, error) {
			sp := ex.RT.Trace.Span("task", stage)
			res, err := inner(ex)
			sp.Arg("compute_ns", int64(res.bd.Compute)).
				Arg("ser_ns", int64(res.bd.Ser)).
				Arg("deser_ns", int64(res.bd.Deser)).
				Arg("write_io_ns", int64(res.bd.WriteIO)).
				Arg("read_io_ns", int64(res.bd.ReadIO)).
				Arg("shuffle_bytes", res.bd.ShuffleBytes).
				Arg("records", res.bd.Records).
				End()
			return res, err
		}
	}
	results := make([]taskResult, len(c.Execs))
	errs := make([]error, len(c.Execs))
	if slots := c.taskSlots(); slots > 1 {
		sem := make(chan struct{}, slots)
		var wg sync.WaitGroup
		for _, ex := range c.Execs {
			wg.Add(1)
			go func(ex *Executor) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[ex.ID], errs[ex.ID] = task(ex)
			}(ex)
		}
		wg.Wait()
	} else {
		for _, ex := range c.Execs {
			results[ex.ID], errs[ex.ID] = task(ex)
			if errs[ex.ID] != nil {
				break
			}
		}
	}
	bd := mergeBreakdowns(c.Parallel(), results)
	for id, err := range errs {
		if err != nil {
			return bd, fmt.Errorf("dataflow: %s on worker %d: %w", stage, id, err)
		}
	}
	return bd, nil
}
