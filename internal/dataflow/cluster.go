// Package dataflow is a miniature Spark: a driver plus N executor runtimes
// (one simulated JVM each), datasets partitioned across executors, and a
// sort-based shuffle whose write/fetch/deserialize path matches the Spark
// pipeline the paper instruments (§2.2) — records are serialized with a
// pluggable serializer into per-reducer blocks, "spilled" to disk, fetched
// locally or remotely, and deserialized on the receiving executor. CPU-side
// S/D time is measured; disk and network time are modelled from byte counts
// by a netsim.CostModel.
package dataflow

import (
	"fmt"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/metrics"
	"skyway/internal/netsim"
	"skyway/internal/registry"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

// Config sizes a cluster.
type Config struct {
	// Workers is the executor count (the paper's Spark experiments use 3).
	Workers int
	// Heap configures each executor's heap; zero value uses a default
	// sized for the bundled workloads.
	Heap heap.Config
	// Model prices disk and network I/O; zero value uses Paper1GbE.
	Model netsim.CostModel
	// SpillDir, when set, makes shuffles write real block files there and
	// read them back, replacing the modelled disk times with measured
	// ones (network stays modelled — the cluster is one process). Useful
	// for validating the cost model against a real filesystem.
	SpillDir string
	// PartitionsPerWorker sets how many shuffle partitions each executor
	// hosts (Spark defaults to several partitions per core); the total
	// partition count is Workers × PartitionsPerWorker. Default 2.
	// Partition p is placed on worker p mod Workers, so with a whole
	// multiple per worker, key → worker ownership is stable regardless
	// of the partition count.
	PartitionsPerWorker int
}

// Cluster is one simulated Spark deployment.
type Cluster struct {
	CP     *klass.Path
	Reg    *registry.Registry
	Driver *vm.Runtime
	Execs  []*Executor
	Model  netsim.CostModel

	// Codec is the active data serializer (spark.serializer).
	Codec serial.Codec

	// PeakHeap tracks the maximum per-executor heap usage observed at
	// shuffle boundaries, for the §5.2 memory-overhead experiment.
	PeakHeap uint64

	// SpillDir and shuffleSeq implement optional real disk spilling.
	SpillDir   string
	shuffleSeq int

	partitionsPerWorker int
}

// Executor is one worker JVM.
type Executor struct {
	ID int
	RT *vm.Runtime
}

// DefaultWorkerHeap sizes executor heaps for the bundled workloads.
func DefaultWorkerHeap() heap.Config {
	return heap.Config{
		EdenSize:     48 << 20,
		SurvivorSize: 4 << 20,
		OldSize:      96 << 20,
		BufferSize:   192 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
}

// NewCluster boots a driver and workers over a shared classpath, with the
// driver hosting the global type registry (§4.1).
func NewCluster(cp *klass.Path, cfg Config, codec serial.Codec) (*Cluster, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 3
	}
	if cfg.Heap.EdenSize == 0 {
		cfg.Heap = DefaultWorkerHeap()
	}
	if cfg.Model.NetBandwidth == 0 {
		cfg.Model = netsim.Paper1GbE()
	}
	reg := registry.NewRegistry()
	driver, err := vm.NewRuntime(cp, vm.Options{Name: "driver", Registry: registry.InProc{R: reg}})
	if err != nil {
		return nil, err
	}
	if cfg.PartitionsPerWorker <= 0 {
		cfg.PartitionsPerWorker = 2
	}
	c := &Cluster{
		CP: cp, Reg: reg, Driver: driver, Model: cfg.Model, Codec: codec,
		SpillDir: cfg.SpillDir, partitionsPerWorker: cfg.PartitionsPerWorker,
	}
	for i := 0; i < cfg.Workers; i++ {
		rt, err := vm.NewRuntime(cp, vm.Options{
			Name:     fmt.Sprintf("worker-%d", i),
			Heap:     cfg.Heap,
			Registry: registry.InProc{R: reg},
		})
		if err != nil {
			return nil, err
		}
		c.Execs = append(c.Execs, &Executor{ID: i, RT: rt})
	}
	return c, nil
}

// Workers returns the executor count.
func (c *Cluster) Workers() int { return len(c.Execs) }

// NumPartitions returns the shuffle partition count.
func (c *Cluster) NumPartitions() int { return len(c.Execs) * c.partitionsPerWorker }

// OwnerOf returns the executor hosting shuffle partition p.
func (c *Cluster) OwnerOf(p int) int { return p % len(c.Execs) }

// sampleHeaps records peak executor heap usage.
func (c *Cluster) sampleHeaps() {
	for _, ex := range c.Execs {
		if u := ex.RT.Heap.UsedBytes(); u > c.PeakHeap {
			c.PeakHeap = u
		}
	}
}

// shuffleStart advances the Skyway shuffle phase when the active codec is
// Skyway — the one-line integration mark of §3.3. Baseline codecs need no
// phase management.
func (c *Cluster) shuffleStart() {
	if s, ok := c.Codec.(interface{ ShuffleStartAll() }); ok {
		s.ShuffleStartAll()
	}
}

// records is a GC-safe record list: one pinned heap ArrayList per executor
// partition.
type records struct {
	ex  *Executor
	pin interface{ Addr() heap.Addr }
	rel func()
}

func newRecords(ex *Executor) (*records, error) {
	l, err := ex.RT.NewArrayList(64)
	if err != nil {
		return nil, err
	}
	h := ex.RT.Pin(l)
	return &records{ex: ex, pin: h, rel: h.Release}, nil
}

func (r *records) add(a heap.Addr) error { return r.ex.RT.ListAdd(r.pin.Addr(), a) }
func (r *records) len() int              { return r.ex.RT.ListLen(r.pin.Addr()) }
func (r *records) get(i int) heap.Addr   { return r.ex.RT.ListGet(r.pin.Addr(), i) }
func (r *records) free()                 { r.rel() }

// Breakdown helpers --------------------------------------------------------

// mergeBreakdowns sums per-executor contributions; the simulated cluster
// executes executors sequentially, so wall-clock equals the sum, matching
// the single-executor-per-node setup of §2.2.
func mergeBreakdowns(parts ...metrics.Breakdown) metrics.Breakdown {
	var out metrics.Breakdown
	for _, p := range parts {
		out.Add(p)
	}
	return out
}
