package dataflow

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"testing"

	"skyway/internal/core"
	"skyway/internal/datagen"
	"skyway/internal/fault"
	"skyway/internal/klass"
	"skyway/internal/metrics"
	"skyway/internal/registry"
	"skyway/internal/serial"
	tcptransport "skyway/internal/transport/tcp"
	"skyway/internal/vm"
)

// The re-exec trampoline: when the test binary is launched with
// SKYWAY_TCP_EXECUTOR set, it is an executor block-server process, not a
// test run — it joins the cluster, serves blocks, and exits when the parent
// closes its stdin. This is how the multi-process tests get real executor
// OS processes without shelling out to `go build`.
const (
	executorEnvID       = "SKYWAY_TCP_EXECUTOR"
	executorEnvRegistry = "SKYWAY_TCP_REGISTRY"
)

func TestMain(m *testing.M) {
	if idStr := os.Getenv(executorEnvID); idStr != "" {
		os.Exit(runExecutorProcess(idStr))
	}
	os.Exit(m.Run())
}

func runExecutorProcess(idStr string) int {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "executor trampoline: bad id %q: %v\n", idStr, err)
		return 1
	}
	ex, err := tcptransport.StartExecutor(id, os.Getenv(executorEnvRegistry), "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "executor trampoline: %v\n", err)
		return 1
	}
	// Print the bound address as a liveness marker, then serve until the
	// parent closes stdin (its exit, clean or not, tears us down).
	fmt.Printf("executor %d ready on %s\n", id, ex.Addr())
	io.Copy(io.Discard, os.Stdin)
	ex.Close()
	return 0
}

// spawnExecutors launches n executor block-server processes that announce
// themselves to the registry at regAddr, and wires their lifetime to the
// test's.
func spawnExecutors(t *testing.T, n int, regAddr string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			executorEnvID+"="+strconv.Itoa(i),
			executorEnvRegistry+"="+regAddr)
		cmd.Stdout = io.Discard
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning executor %d: %v", i, err)
		}
		t.Cleanup(func() {
			stdin.Close() // EOF tells the executor to exit
			cmd.Wait()
		})
	}
}

// tcpWordCountInput builds the deterministic workload both the TCP and the
// netsim runs consume.
func tcpWordCountInput(workers int) [][]string {
	lines := datagen.TextSpec{Lines: 400, WordsPerLine: 10, Vocabulary: 300, Seed: 77}.Generate()
	parts := make([][]string, workers)
	for i, l := range lines {
		parts[i%workers] = append(parts[i%workers], l)
	}
	return parts
}

// runTCPWordCount builds a Skyway-codec cluster over tr — with every
// runtime's registry view served over real TCP when regAddr is set — and
// runs WordCount on it.
func runTCPWordCount(t *testing.T, workers int, tr *tcptransport.Transport, regAddr string) (metrics.Breakdown, int64, error) {
	t.Helper()
	cp := klass.NewPath()
	WorkloadClasses(cp)
	cfg := Config{Workers: workers, Heap: smallHeap(), Transport: tr}
	if regAddr != "" {
		cfg.RegistryClient = func() (registry.Client, error) { return registry.Dial(regAddr) }
	}
	c, err := NewCluster(cp, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rts := []*vm.Runtime{}
	for _, ex := range c.Execs {
		rts = append(rts, ex.RT)
	}
	c.Codec = serial.NewSkywayCodec(rts...)
	return RunWordCount(c, tcpWordCountInput(workers))
}

// TestClusterWordCountOverTCPProcesses is the acceptance test for the TCP
// transport: a real multi-process WordCount. The test process is the driver
// (registry daemon included); two executor block-server OS processes are
// spawned, announce themselves over the SKYR protocol, and every shuffle
// block crosses loopback sockets twice (map PUT to the owning executor
// process, reduce GET back). The decoded result must be bit-identical to
// the same job on the in-process netsim transport, and the byte accounting
// must agree — the transport moves bytes, it must not change them.
func TestClusterWordCountOverTCPProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test spawns executor processes")
	}
	const workers = 2

	reg := registry.NewRegistry()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := registry.Serve(reg, ln)
	defer srv.Close()
	regAddr := ln.Addr().String()

	spawnExecutors(t, workers, regAddr)
	tr, err := tcptransport.DiscoverTransport(registry.InProc{R: reg}, workers, 500)
	if err != nil {
		t.Fatalf("executor processes never announced: %v", err)
	}
	defer tr.Close()
	if peers := tr.Peers(); len(peers) != workers {
		t.Fatalf("discovered peers %v, want %d executors", peers, workers)
	}

	tcpBD, tcpTotal, err := runTCPWordCount(t, workers, tr, regAddr)
	if err != nil {
		t.Fatalf("WordCount over TCP executor processes: %v", err)
	}

	// Reference run: same input, same codec, in-process netsim transport.
	cp := klass.NewPath()
	WorkloadClasses(cp)
	simC, err := NewCluster(cp, Config{Workers: workers, Heap: smallHeap()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rts := []*vm.Runtime{}
	for _, ex := range simC.Execs {
		rts = append(rts, ex.RT)
	}
	simC.Codec = serial.NewSkywayCodec(rts...)
	simBD, simTotal, err := RunWordCount(simC, tcpWordCountInput(workers))
	if err != nil {
		t.Fatalf("netsim reference run: %v", err)
	}

	if tcpTotal != simTotal || tcpTotal == 0 {
		t.Fatalf("digest over TCP = %d, netsim = %d (must be bit-identical and nonzero)", tcpTotal, simTotal)
	}
	if tcpBD.ShuffleBytes != simBD.ShuffleBytes || tcpBD.ShuffleBytes == 0 {
		t.Fatalf("shuffle bytes over TCP = %d, netsim = %d", tcpBD.ShuffleBytes, simBD.ShuffleBytes)
	}
	if tcpBD.Records != simBD.Records {
		t.Fatalf("records over TCP = %d, netsim = %d", tcpBD.Records, simBD.Records)
	}
	// TCP I/O charges are measured socket time: real sockets take real time.
	if tcpBD.ReadIO <= 0 || tcpBD.WriteIO <= 0 {
		t.Fatalf("measured TCP I/O charges ReadIO=%v WriteIO=%v, want both positive", tcpBD.ReadIO, tcpBD.WriteIO)
	}
}

// TestTCPChaosMatrix runs WordCount over the TCP transport (in-process block
// servers, so failpoints fire deterministically in one process) once per
// transport failpoint, transient and persistent. The chaos invariant is the
// same closed set the netsim matrix enforces: a digest bit-identical to the
// fault-free run, or a structured error — never a panic, never a wrong
// answer.
func TestTCPChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	const workers = 2
	fault.Seed(0xC0FFEE)
	defer fault.Seed(0)

	run := func(t *testing.T, spec string) (int64, error) {
		t.Helper()
		if err := fault.Configure(spec); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(fault.Reset)
		peers := make(map[int]string, workers)
		for i := 0; i < workers; i++ {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := tcptransport.Serve(i, ln)
			t.Cleanup(func() { srv.Close() })
			peers[i] = ln.Addr().String()
		}
		tr := tcptransport.New(peers)
		t.Cleanup(func() { tr.Close() })
		_, total, err := runTCPWordCount(t, workers, tr, "")
		return total, err
	}

	want, err := run(t, "")
	if err != nil {
		t.Fatalf("fault-free TCP run: %v", err)
	}

	structured := func(err error) bool {
		if _, ok := core.AsDecodeError(err); ok {
			return true
		}
		var abort *StageAbortError
		if errors.As(err, &abort) {
			return true
		}
		var fe *fault.Error
		return errors.As(err, &fe)
	}

	points := []string{fault.TransportDial, fault.TransportStreamTorn, fault.TransportPeerSlow}
	modes := []struct{ name, trigger string }{
		{"transient", ":on*times=1"},
		{"persistent", ":1in3"},
	}
	for _, point := range points {
		for _, mode := range modes {
			point, mode := point, mode
			t.Run(point+"/"+mode.name, func(t *testing.T) {
				got, err := run(t, point+mode.trigger)
				if err != nil {
					if !structured(err) {
						t.Fatalf("unstructured failure under %s%s: %T: %v", point, mode.trigger, err, err)
					}
					t.Logf("%s%s: structured abort: %v", point, mode.trigger, err)
					return
				}
				if got != want {
					t.Fatalf("silent corruption: digest under %s%s = %d, fault-free = %d",
						point, mode.trigger, got, want)
				}
			})
		}
	}
}

// TestRetriedFetchChargedInReadIO is the regression test for the fault-path
// accounting bug: the read I/O a re-fetch performs used to vanish from the
// metrics Breakdown — a transient torn fetch produced the SAME ReadIO as a
// fault-free run even though a block crossed the wire twice. Attempt bytes
// are now priced into FetchCost, so the run that re-fetched must charge
// strictly more read I/O than the clean run.
func TestRetriedFetchChargedInReadIO(t *testing.T) {
	run := func(t *testing.T, spec string) metrics.Breakdown {
		t.Helper()
		if err := fault.Configure(spec); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(fault.Reset)
		c := newSkywayCluster(t)
		lines := datagen.TextSpec{Lines: 600, WordsPerLine: 8, Vocabulary: 200, Seed: 11}.Generate()
		bd, _, err := RunWordCount(c, [][]string{lines[:200], lines[200:400], lines[400:]})
		if err != nil {
			t.Fatalf("run under %q: %v", spec, err)
		}
		return bd
	}

	clean := run(t, "")
	retried := run(t, fault.DataflowFetchTorn+":on*times=1")
	if fault.Fired(fault.DataflowFetchTorn) != 1 {
		t.Fatalf("torn failpoint fired %d times, want 1", fault.Fired(fault.DataflowFetchTorn))
	}
	if retried.ReadIO <= clean.ReadIO {
		t.Fatalf("ReadIO with one re-fetch = %v, fault-free = %v; the retried fetch's I/O is not being charged",
			retried.ReadIO, clean.ReadIO)
	}
	// The retry must not leak into any other component: the job decoded the
	// same records and shuffled the same bytes.
	if retried.ShuffleBytes != clean.ShuffleBytes || retried.Records != clean.Records {
		t.Fatalf("retry changed byte accounting: shuffle %d vs %d, records %d vs %d",
			retried.ShuffleBytes, clean.ShuffleBytes, retried.Records, clean.Records)
	}
}
