package dataflow

import (
	"bytes"
	"fmt"
	"time"

	"skyway/internal/heap"
	"skyway/internal/metrics"
)

// Broadcast ships an object graph from the driver to every executor — the
// paper's closure serialization path (§2.1): Spark launches the program on
// the driver and must transfer each task's closure, and everything it
// captures, to the workers before the task can run there. The active data
// serializer carries the closure, exactly like shuffle records.
//
// Returns the per-executor copies and the transfer cost breakdown (ser on
// the driver, deser on each worker, network modelled per worker).
func (c *Cluster) Broadcast(root heap.Addr) ([]heap.Addr, metrics.Breakdown, error) {
	var bd metrics.Breakdown
	c.shuffleStart()
	c.broadcastSeq++
	seq := c.broadcastSeq

	start := time.Now()
	var buf bytes.Buffer
	enc := c.Codec.NewEncoder(c.Driver, &buf)
	if err := enc.Write(root); err != nil {
		return nil, bd, fmt.Errorf("dataflow: broadcast serialize: %w", err)
	}
	if err := enc.Flush(); err != nil {
		return nil, bd, err
	}
	bd.Ser = time.Since(start)
	payload := buf.Bytes()
	bd.ShuffleBytes = int64(len(payload)) * int64(c.Workers())
	bd.RemoteBytes = bd.ShuffleBytes

	// Publish through the transport: in process this parks the payload for
	// zero measured cost; over TCP it really ships a copy to every executor
	// server, and the publish time lands in the write-I/O column.
	pubTime, err := c.Transport.Broadcast(seq, payload)
	if err != nil {
		return nil, bd, fmt.Errorf("dataflow: broadcast publish: %w", err)
	}
	bd.WriteIO = c.Transport.WriteCost(0, pubTime)

	// Every worker decodes its own copy — concurrently when the cluster is
	// parallel (each writes only its own out slot and its own runtime).
	out := make([]heap.Addr, c.Workers())
	rbd, err := c.runPerExecutor("broadcast", func(ex *Executor) (taskResult, error) {
		var res taskResult
		copyB, fetchTime, err := c.Transport.FetchBroadcast(seq, ex.ID)
		if err != nil {
			return res, fmt.Errorf("fetch broadcast: %w", err)
		}
		start := time.Now()
		dec := c.Codec.NewDecoder(ex.RT, bytes.NewReader(copyB))
		got, err := dec.Read()
		if err != nil {
			return res, fmt.Errorf("deserialize: %w", err)
		}
		res.bd.Deser = time.Since(start)
		res.bd.ReadIO = c.Transport.BroadcastCost(int64(len(copyB)), fetchTime)
		out[ex.ID] = got
		res.wall = res.bd.Deser + res.bd.ReadIO
		c.sampleHeap(ex)
		return res, nil
	})
	bd.Add(rbd)
	if bd.Wall > 0 {
		// The driver-side encode precedes the concurrent receive stage.
		bd.Wall += bd.Ser
	}
	if err != nil {
		return nil, bd, err
	}
	bd.Records = int64(c.Workers())
	return out, bd, nil
}
