package dataflow

import (
	"fmt"
	"sort"

	"skyway/internal/obs"
)

// Degradation-ladder counters, exported on /metrics.
var (
	ctrRefetches     = obs.NewCounter("skyway_shuffle_refetches_total", "Shuffle block fetches retried after a failed decode.")
	ctrPeersExcluded = obs.NewCounter("skyway_shuffle_peers_excluded_total", "Map-side peers excluded after persistent block failures.")
	ctrStageAborts   = obs.NewCounter("skyway_shuffle_stage_aborts_total", "Stages aborted by the shuffle degradation ladder.")
)

// maxFetchAttempts bounds the first rung of the reduce-side degradation
// ladder: one fetch plus two re-fetches per (mapper, partition) block. A
// decode failure releases everything the attempt pinned, so the heap is
// exactly as it was; the re-fetch starts from the intact stored block. Only
// when every attempt fails does the ladder climb: the peer is excluded and
// the stage aborts with a StageAbortError — degraded, never corrupted.
const maxFetchAttempts = 3

// StageAbortError is the structured terminal error of the shuffle
// degradation ladder: a (mapper, partition) block failed to decode on every
// bounded re-fetch, the mapper was excluded, and the stage cannot produce
// correct results without the block. The wrapped cause is the last decode
// error (usually a *core.DecodeError; errors.As reaches it).
type StageAbortError struct {
	Stage    string // "reduce"
	Src      int    // the excluded map executor
	Dst      int    // the partition whose block failed
	Attempts int    // fetch attempts consumed
	Err      error  // last decode failure
}

func (e *StageAbortError) Error() string {
	return fmt.Sprintf("dataflow: %s stage aborted: block (mapper %d, partition %d) failed %d fetch attempts, peer %d excluded: %v",
		e.Stage, e.Src, e.Dst, e.Attempts, e.Src, e.Err)
}

func (e *StageAbortError) Unwrap() error { return e.Err }

// excludePeer records a map executor whose blocks persistently fail to
// decode, so diagnostics (and a scheduler with replicas to re-run on) can
// tell a bad peer from a bad stream.
func (c *Cluster) excludePeer(src int) {
	c.excludedMu.Lock()
	first := !c.excluded[src]
	if first {
		if c.excluded == nil {
			c.excluded = make(map[int]bool)
		}
		c.excluded[src] = true
	}
	c.excludedMu.Unlock()
	if first {
		ctrPeersExcluded.Inc()
	}
}

// ExcludedPeers lists executors excluded by the degradation ladder, in
// ascending ID order. Empty on every healthy run.
func (c *Cluster) ExcludedPeers() []int {
	c.excludedMu.Lock()
	defer c.excludedMu.Unlock()
	out := make([]int, 0, len(c.excluded))
	for id := range c.excluded {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
