package dataflow

import (
	"testing"

	"skyway/internal/klass"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

// The closure-shipping path of §2.1: a DateParser-like object created on the
// driver must reach every worker before tasks referencing it can run there.

func closurePath() *klass.Path {
	cp := klass.NewPath()
	WorkloadClasses(cp)
	cp.MustDefine(&klass.ClassDef{Name: "DateParser", Fields: []klass.FieldDef{
		{Name: "format", Kind: klass.Ref, Class: vm.StringClass},
		{Name: "lenient", Kind: klass.Bool},
	}})
	return cp
}

func TestBroadcastClosure(t *testing.T) {
	for _, mode := range []string{"java", "skyway"} {
		t.Run(mode, func(t *testing.T) {
			cp := closurePath()
			c, err := NewCluster(cp, Config{Workers: 3, Heap: smallHeap()}, nil)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "java":
				c.Codec = serial.JavaCodec()
			case "skyway":
				rts := []*vm.Runtime{c.Driver}
				for _, ex := range c.Execs {
					rts = append(rts, ex.RT)
				}
				c.Codec = serial.NewSkywayCodec(rts...)
			}

			// Build the closure on the driver.
			pk := c.Driver.MustLoad("DateParser")
			parser := c.Driver.MustNew(pk)
			ph := c.Driver.Pin(parser)
			fs := c.Driver.MustNewString("yyyy-MM-dd")
			c.Driver.SetRef(ph.Addr(), pk.FieldByName("format"), fs)
			c.Driver.SetBool(ph.Addr(), pk.FieldByName("lenient"), true)

			copies, bd, err := c.Broadcast(ph.Addr())
			ph.Release()
			if err != nil {
				t.Fatal(err)
			}
			if len(copies) != 3 {
				t.Fatalf("%d copies", len(copies))
			}
			if bd.Ser == 0 || bd.Deser == 0 || bd.ShuffleBytes == 0 {
				t.Errorf("broadcast breakdown incomplete: %+v", bd)
			}
			for i, ex := range c.Execs {
				k := ex.RT.MustLoad("DateParser")
				if !ex.RT.GetBool(copies[i], k.FieldByName("lenient")) {
					t.Errorf("worker %d: bool field lost", i)
				}
				f := ex.RT.GetRef(copies[i], k.FieldByName("format"))
				if ex.RT.GoString(f) != "yyyy-MM-dd" {
					t.Errorf("worker %d: captured string corrupted", i)
				}
			}
		})
	}
}
