package dataflow

import (
	"sync/atomic"

	"skyway/internal/datagen"
	"skyway/internal/heap"
	"skyway/internal/metrics"
)

// graphState is the per-executor vertex state for the iterative graph
// workloads: vertex IDs owned by the executor (v % workers == ID) plus
// their adjacency. Vertex state stays executor-local; only message objects
// cross heaps, which is where S/D cost arises.
type graphState struct {
	vertices []int32
	adj      map[int32][]int32
	ranks    map[int32]float64
	labels   map[int32]int64
}

func buildStates(c *Cluster, g *datagen.Graph) []*graphState {
	p := c.Workers()
	states := make([]*graphState, p)
	for i := range states {
		states[i] = &graphState{adj: make(map[int32][]int32)}
	}
	for v := 0; v < g.N; v++ {
		s := states[v%p]
		s.vertices = append(s.vertices, int32(v))
		if len(g.Adj[v]) > 0 {
			s.adj[int32(v)] = g.Adj[v]
		}
	}
	return states
}

// RunPageRank executes iters rounds of classic Spark PageRank over g: each
// round shuffles one RankMsg object per edge. Returns the breakdown and
// the rank mass (sum of ranks) for cross-codec validation.
func RunPageRank(c *Cluster, g *datagen.Graph, iters int) (metrics.Breakdown, float64, error) {
	WorkloadClasses(c.CP)
	states := buildStates(c, g)
	for _, s := range states {
		s.ranks = make(map[int32]float64, len(s.vertices))
		for _, v := range s.vertices {
			s.ranks[v] = 1.0
		}
	}
	p := c.NumPartitions()
	var bd metrics.Breakdown

	for it := 0; it < iters; it++ {
		sums := make([]map[int32]float64, c.Workers())
		spec := ShuffleSpec{
			Produce: func(ex *Executor, emit Emit) error {
				mk := ex.RT.MustLoad(RankMsgClass)
				s := states[ex.ID]
				for _, v := range s.vertices {
					nbrs := s.adj[v]
					if len(nbrs) == 0 {
						continue
					}
					contrib := s.ranks[v] / float64(len(nbrs))
					for _, u := range nbrs {
						msg, err := ex.RT.New(mk)
						if err != nil {
							return err
						}
						setLong(ex, msg, mk, "dst", int64(u))
						setDouble(ex, msg, mk, "value", contrib)
						emit(int(u)%p, uint64(u), msg)
					}
				}
				return nil
			},
			Consume: func(ex *Executor, recs []heap.Addr) error {
				mk := ex.RT.MustLoad(RankMsgClass)
				agg := make(map[int32]float64)
				for _, r := range recs {
					agg[int32(getLong(ex, r, mk, "dst"))] += getDouble(ex, r, mk, "value")
				}
				sums[ex.ID] = agg
				return nil
			},
		}
		sbd, err := c.RunShuffle(spec)
		if err != nil {
			return bd, 0, err
		}
		bd.Add(sbd)

		ubd, err := c.Compute(func(ex *Executor) error {
			s := states[ex.ID]
			agg := sums[ex.ID]
			for _, v := range s.vertices {
				s.ranks[v] = 0.15 + 0.85*agg[v]
			}
			return nil
		})
		if err != nil {
			return bd, 0, err
		}
		bd.Add(ubd)
	}

	// Sum in vertex order: map iteration order would perturb the float
	// sum's last ulp and break cross-serializer digest comparisons.
	var mass float64
	for _, s := range states {
		for _, v := range s.vertices {
			mass += s.ranks[v]
		}
	}
	return bd, mass, nil
}

// RunConnectedComponents executes label propagation until convergence (or
// maxIters): every round, each vertex broadcasts its current component
// label to its neighbours as LabelMsg objects; vertices adopt the minimum
// label seen. Returns the breakdown and the number of components found.
func RunConnectedComponents(c *Cluster, g *datagen.Graph, maxIters int) (metrics.Breakdown, int, error) {
	WorkloadClasses(c.CP)
	states := buildStates(c, g)
	for _, s := range states {
		s.labels = make(map[int32]int64, len(s.vertices))
		for _, v := range s.vertices {
			s.labels[v] = int64(v)
		}
	}
	p := c.NumPartitions()
	var bd metrics.Breakdown

	for it := 0; it < maxIters; it++ {
		// Summed atomically: the Compute closure runs on concurrent tasks.
		var changedTotal int64
		mins := make([]map[int32]int64, c.Workers())
		spec := ShuffleSpec{
			Produce: func(ex *Executor, emit Emit) error {
				mk := ex.RT.MustLoad(LabelMsgClass)
				s := states[ex.ID]
				for _, v := range s.vertices {
					label := s.labels[v]
					for _, u := range s.adj[v] {
						msg, err := ex.RT.New(mk)
						if err != nil {
							return err
						}
						setLong(ex, msg, mk, "dst", int64(u))
						setLong(ex, msg, mk, "label", label)
						emit(int(u)%p, uint64(u), msg)
					}
				}
				return nil
			},
			Consume: func(ex *Executor, recs []heap.Addr) error {
				mk := ex.RT.MustLoad(LabelMsgClass)
				agg := make(map[int32]int64)
				for _, r := range recs {
					dst := int32(getLong(ex, r, mk, "dst"))
					l := getLong(ex, r, mk, "label")
					if cur, ok := agg[dst]; !ok || l < cur {
						agg[dst] = l
					}
				}
				mins[ex.ID] = agg
				return nil
			},
		}
		sbd, err := c.RunShuffle(spec)
		if err != nil {
			return bd, 0, err
		}
		bd.Add(sbd)

		ubd, err := c.Compute(func(ex *Executor) error {
			s := states[ex.ID]
			var changed int64
			for v, l := range mins[ex.ID] {
				if l < s.labels[v] {
					s.labels[v] = l
					changed++
				}
			}
			atomic.AddInt64(&changedTotal, changed)
			return nil
		})
		if err != nil {
			return bd, 0, err
		}
		bd.Add(ubd)
		if changedTotal == 0 {
			break
		}
	}

	comps := make(map[int64]bool)
	for _, s := range states {
		for _, l := range s.labels {
			comps[l] = true
		}
	}
	return bd, len(comps), nil
}
