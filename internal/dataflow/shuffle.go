package dataflow

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"skyway/internal/arena"
	"skyway/internal/fault"
	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/metrics"
	"skyway/internal/obs"
	"skyway/internal/transport"
)

// Emit sends one record to a destination shuffle partition during the map
// side of a shuffle (partitions number Cluster.NumPartitions and are placed
// on executors by Cluster.OwnerOf). Sort keys drive the sort-based shuffle
// ordering (Tungsten sort).
type Emit func(dst int, sortKey uint64, rec heap.Addr)

// ShuffleSpec describes one shuffle phase.
type ShuffleSpec struct {
	// Produce runs on every executor and emits keyed records. It executes
	// under the computation timer. With a parallel cluster, Produce runs
	// for several executors at once (one goroutine per executor), so it
	// must only touch ex-local and read-only shared state, or synchronize.
	Produce func(ex *Executor, emit Emit) error
	// Consume runs on every executor over the records it received (in
	// sorted key order per sending block). It executes under the
	// computation timer, with the same concurrency contract as Produce.
	Consume func(ex *Executor, recs []heap.Addr) error
}

// outRecord is a map-side buffered record, held through a GC handle so the
// producer's further allocations cannot invalidate it.
type outRecord struct {
	key uint64
	h   *gc.Handle
}

// RunShuffle executes one full shuffle phase over the cluster and returns
// its cost breakdown:
//
//	compute: Produce + sort + Consume (measured)
//	ser:     encoding each (mapper, reducer) block (measured)
//	writeIO: publishing blocks to the transport (modelled from bytes, or
//	         measured when the transport does real I/O)
//	readIO:  fetching blocks, split local/remote (modelled or measured)
//	deser:   decoding fetched blocks on the reducer (measured)
//
// Blocks move through the cluster's Transport: the in-process simulator
// stores them in memory (or spill files) and prices I/O with the cost
// model; the TCP transport moves them through executor block servers and
// charges measured socket time. The map side and the reduce side are stages
// separated by a barrier; with a parallel cluster, each stage's executor
// tasks run on concurrent goroutines and the stage's wall-clock
// contribution is its slowest task (metrics.Breakdown.Wall), while the
// components above still sum across executors.
func (c *Cluster) RunShuffle(spec ShuffleSpec) (metrics.Breakdown, error) {
	p := c.NumPartitions()
	c.shuffleStart()
	c.shuffleSeq++
	sh, err := c.Transport.NewShuffle(c.shuffleSeq)
	if err != nil {
		return metrics.Breakdown{}, fmt.Errorf("dataflow: transport: %w", err)
	}
	defer sh.Close()

	bd, err := c.runPerExecutor("map", func(ex *Executor) (taskResult, error) {
		return c.mapTask(ex, spec, sh, p)
	})
	if err != nil {
		return bd, err
	}
	rbd, err := c.runPerExecutor("reduce", func(ex *Executor) (taskResult, error) {
		return c.reduceTask(ex, spec, sh, p)
	})
	bd.Add(rbd)
	// The stage has retired: any arena region this round's decoders staged
	// is dead, reachable records having been consumed or promoted. Refcounts
	// already reclaimed the regions of decoders that were Freed; this is the
	// epoch backstop that sweeps the rest (an aborted stage's stragglers).
	// Regions never bound to a shuffle epoch — broadcast decodes — are
	// exempt and live by refcount alone.
	for _, ex := range c.Execs {
		ex.RT.Arena.RetireThrough(uint64(c.shuffleSeq))
	}
	return bd, err
}

// mapTask runs one executor's map side: produce + sort + serialize + spill.
// Serialization fans out over senderSlots concurrent encoder streams when
// the codec supports it — the §4.2 multi-threaded sender path, with several
// streams claiming baddr words out of this executor's heap at once.
func (c *Cluster) mapTask(ex *Executor, spec ShuffleSpec, sh transport.Shuffle, p int) (taskResult, error) {
	var res taskResult
	out := make([][]outRecord, p)

	release := func() {
		for dst := range out {
			for _, r := range out[dst] {
				r.h.Release()
			}
		}
	}

	start := time.Now()
	err := spec.Produce(ex, func(dst int, key uint64, rec heap.Addr) {
		if dst < 0 || dst >= p {
			panic(fmt.Sprintf("dataflow: emit to partition %d of %d", dst, p))
		}
		out[dst] = append(out[dst], outRecord{key: key, h: ex.RT.Pin(rec)})
	})
	if err != nil {
		release()
		return res, fmt.Errorf("produce: %w", err)
	}
	// Sort each block by key (sort-based shuffle).
	for dst := range out {
		recs := out[dst]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	}
	res.bd.Compute = time.Since(start)

	// Serialize blocks. Each (mapper, partition) block is its own encoder
	// stream; sender slot k encodes blocks k, k+senders, ... so the block
	// set is statically partitioned across the concurrent streams. The
	// encoders only read the heap (produce is done, and this executor
	// allocates nothing until the reduce stage), so the streams race only
	// on the §4.2 baddr claims, which is the point.
	senders := c.senderSlots(p)
	blocks := make([][]byte, p)
	serTime := make([]time.Duration, senders)
	serErr := make([]error, senders)
	serRecs := make([]int64, senders)
	serBytes := make([]int64, senders)
	encode := func(slot int) {
		// Codec-agnostic transfer span: baseline serializers never enter
		// internal/core, so the encode stream itself is the traced unit.
		sp := ex.RT.Trace.Span("transfer", "shuffle.encode")
		start := time.Now()
		defer func() {
			serTime[slot] = time.Since(start)
			sp.Arg("bytes", serBytes[slot]).Arg("records", serRecs[slot]).Arg("slot", int64(slot)).End()
		}()
		for dst := slot; dst < p; dst += senders {
			if len(out[dst]) == 0 {
				continue
			}
			var buf bytes.Buffer
			enc := c.Codec.NewEncoder(ex.RT, &buf)
			for _, r := range out[dst] {
				if err := enc.Write(r.h.Addr()); err != nil {
					enc.Flush() // close the stream; output is discarded
					serErr[slot] = fmt.Errorf("serialize: %w", err)
					return
				}
			}
			if err := enc.Flush(); err != nil {
				serErr[slot] = err
				return
			}
			blocks[dst] = buf.Bytes()
			serRecs[slot] += int64(len(out[dst]))
			serBytes[slot] += int64(len(buf.Bytes()))
		}
	}
	if senders > 1 {
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				encode(s)
			}(s)
		}
		wg.Wait()
	} else {
		encode(0)
	}
	// Handles are released on the task goroutine after the sender streams
	// join: the gc.Collector's handle table is runtime-confined.
	release()
	var serMax time.Duration
	for s := 0; s < senders; s++ {
		if serErr[s] != nil {
			return res, serErr[s]
		}
		res.bd.Ser += serTime[s]
		res.bd.Records += serRecs[s]
		if serTime[s] > serMax {
			serMax = serTime[s]
		}
	}

	// Publish blocks to the transport. The transport measures whatever I/O
	// it really performs (spill files, sockets); WriteCost folds that and
	// the modelled remainder into the write-I/O charge.
	var written int64
	var putTime time.Duration
	for dst := 0; dst < p; dst++ {
		if len(blocks[dst]) == 0 {
			continue
		}
		written += int64(len(blocks[dst]))
		d, err := sh.Put(ex.ID, dst, blocks[dst])
		if err != nil {
			return res, fmt.Errorf("publish block (%d→%d): %w", ex.ID, dst, err)
		}
		putTime += d
	}
	res.bd.WriteIO = c.Transport.WriteCost(written, putTime)
	c.Traffic.AddWrite(written)
	res.bd.ShuffleBytes = written
	// The task's elapsed time: concurrent sender streams overlap, so the
	// slowest stream bounds the serialization wall time.
	res.wall = res.bd.Compute + serMax + res.bd.WriteIO
	c.sampleHeap(ex)
	return res, nil
}

// decodeBlock decodes one fetched block into pinned records. On failure it
// releases every handle and input buffer the attempt created — the heap is
// exactly as it was before the attempt — and returns the decode error, so
// the caller's bounded re-fetch starts from a clean slate.
//
// A decoder on the arena path stages the block's segments in an off-heap
// region; a successful decode binds that region to this shuffle round's
// epoch so RunShuffle's stage-retirement backstop can reclaim it even if
// the decoder is never Freed.
func (c *Cluster) decodeBlock(ex *Executor, block []byte) (hs []*gc.Handle, freer interface{ Free() }, d time.Duration, err error) {
	start := time.Now()
	dec := c.Codec.NewDecoder(ex.RT, bytes.NewReader(block))
	f, _ := dec.(interface{ Free() })
	for {
		rec, rerr := dec.Read()
		if rerr != nil {
			if isEOF(rerr) {
				if ar, ok := dec.(interface{ ArenaRegion() *arena.Region }); ok {
					if reg := ar.ArenaRegion(); reg != nil {
						reg.BindEpoch(uint64(c.shuffleSeq))
					}
				}
				return hs, f, time.Since(start), nil
			}
			for _, h := range hs {
				h.Release()
			}
			if f != nil {
				f.Free()
			}
			return nil, nil, time.Since(start), rerr
		}
		hs = append(hs, ex.RT.Pin(rec))
	}
}

// reduceTask runs one executor's reduce side: it drains every partition it
// hosts, pulling that partition's block from every map worker, then
// deserializes and consumes the records.
//
// Fetched blocks run the degradation ladder: a block whose fetch or decode
// fails (a torn transfer, a checksum mismatch, any *core.DecodeError) is
// re-fetched from the intact stored bytes up to maxFetchAttempts times; if
// every attempt fails, the mapper is excluded and the stage aborts with a
// StageAbortError. Every exit path releases the handles and input buffers
// it acquired, so an aborted stage leaves no pins behind — and every exit
// path, the aborts included, charges the read I/O its fetches really did
// (attempted bytes and measured time, not just the blocks that decoded).
func (c *Cluster) reduceTask(ex *Executor, spec ShuffleSpec, sh transport.Shuffle, p int) (taskResult, error) {
	var res taskResult
	w := c.Workers()
	var localB, remoteB int64 // unique bytes consumed (Figure 3(b) accounting)
	var triedLocal, triedRemote int64
	var fetchTime time.Duration // measured I/O across every attempt
	var slowPenalty time.Duration
	var handles []*gc.Handle
	var freers []interface{ Free() }
	// chargeRead prices the task's fetches. It runs on every exit path:
	// re-fetch attempts beyond the first do real I/O too, and an aborted
	// stage must not understate the read I/O it consumed before giving up.
	chargeRead := func() {
		res.bd.LocalBytes = localB
		res.bd.RemoteBytes = remoteB
		c.Traffic.AddFetch(localB, remoteB)
		res.bd.ReadIO = c.Transport.FetchCost(triedLocal, triedRemote, fetchTime) + slowPenalty
	}
	fail := func(err error) (taskResult, error) {
		for _, h := range handles {
			h.Release()
		}
		for _, f := range freers {
			f.Free()
		}
		chargeRead()
		return res, err
	}

	for dst := 0; dst < p; dst++ {
		if c.OwnerOf(dst) != ex.ID {
			continue
		}
		for src := 0; src < w; src++ {
			// fetch returns a copy-on-damage view of the stored block; the
			// transport keeps the original until Drop.
			fetch := func() ([]byte, error) {
				block, d, err := sh.Fetch(src, dst)
				if err != nil {
					return nil, err
				}
				fetchTime += d
				if len(block) == 0 {
					return nil, nil
				}
				if src == ex.ID {
					triedLocal += int64(len(block))
				} else {
					triedRemote += int64(len(block))
				}
				// Failpoint: the fetched copy is torn in flight. Only the
				// copy is damaged — the stored block stays intact, so a
				// re-fetch can succeed.
				if fault.Eval(fault.DataflowFetchTorn) {
					block = append([]byte(nil), block...)
					block[len(block)/2] ^= 0xFF
				}
				// Failpoint: a slow peer — charge extra modelled read time.
				if fault.Eval(fault.DataflowFetchSlow) {
					slowPenalty += fault.DurationArg(fault.DataflowFetchSlow, time.Millisecond)
				}
				return block, nil
			}

			var lastErr error
			decoded := false
			var blockLen int
			for attempt := 1; attempt <= maxFetchAttempts; attempt++ {
				block, err := fetch()
				if err != nil {
					// A failed fetch (a torn stream the transport's own
					// framing rejected, a dead peer) rides the same ladder
					// as a failed decode: re-fetch, then exclude.
					lastErr = fmt.Errorf("fetch block (%d→%d): %w", src, dst, err)
					if attempt < maxFetchAttempts {
						ctrRefetches.Inc()
					}
					continue
				}
				if block == nil {
					decoded = true // empty block: nothing to do
					break
				}
				blockLen = len(block)
				hs, freer, d, derr := c.decodeBlock(ex, block)
				res.bd.Deser += d
				if derr == nil {
					handles = append(handles, hs...)
					if freer != nil {
						freers = append(freers, freer)
					}
					if obs.Enabled() {
						ex.RT.Trace.Emit("transfer", "shuffle.decode", time.Now().Add(-d), d,
							obs.I64("bytes", int64(blockLen)),
							obs.I64("src", int64(src)), obs.I64("dst", int64(dst)),
							obs.I64("attempt", int64(attempt)))
					}
					decoded = true
					break
				}
				lastErr = fmt.Errorf("deserialize block (%d→%d): %w", src, dst, derr)
				if attempt < maxFetchAttempts {
					ctrRefetches.Inc()
				}
			}
			if !decoded {
				// The ladder's last rungs: exclude the peer, abort the stage.
				c.excludePeer(src)
				ctrStageAborts.Inc()
				return fail(&StageAbortError{
					Stage: "reduce", Src: src, Dst: dst,
					Attempts: maxFetchAttempts, Err: lastErr,
				})
			}
			if blockLen > 0 {
				sh.Drop(src, dst)
				if src == ex.ID {
					localB += int64(blockLen)
				} else {
					remoteB += int64(blockLen)
				}
			}
		}
	}
	chargeRead()

	start := time.Now()
	recs := make([]heap.Addr, len(handles))
	for i, h := range handles {
		recs[i] = h.Addr()
	}
	if spec.Consume != nil {
		if err := spec.Consume(ex, recs); err != nil {
			for _, h := range handles {
				h.Release()
			}
			for _, f := range freers {
				f.Free()
			}
			return res, fmt.Errorf("consume: %w", err)
		}
	}
	res.bd.Compute = time.Since(start)
	// Sample the high-water mark while the received records and their
	// input buffers are still live — the receive side is where the §5.2
	// memory overhead peaks.
	c.sampleHeap(ex)
	for _, h := range handles {
		h.Release()
	}
	// The reduce side has consumed the records; release the Skyway input
	// buffers (the explicit-free API of §3.2 — Spark keeps buffers only
	// while the RDD is cached, and these records are not).
	for _, f := range freers {
		f.Free()
	}
	res.wall = res.bd.Deser + res.bd.ReadIO + res.bd.Compute
	return res, nil
}

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// Compute runs fn on every executor under the computation timer, outside
// any shuffle — for per-partition setup and iteration bookkeeping. With a
// parallel cluster the per-executor calls run concurrently (same contract
// as ShuffleSpec.Produce).
func (c *Cluster) Compute(fn func(ex *Executor) error) (metrics.Breakdown, error) {
	return c.runPerExecutor("compute", func(ex *Executor) (taskResult, error) {
		var res taskResult
		start := time.Now()
		if err := fn(ex); err != nil {
			return res, err
		}
		res.bd.Compute = time.Since(start)
		res.wall = res.bd.Compute
		c.sampleHeap(ex)
		return res, nil
	})
}
