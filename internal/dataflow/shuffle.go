package dataflow

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/metrics"
)

// Emit sends one record to a destination shuffle partition during the map
// side of a shuffle (partitions number Cluster.NumPartitions and are placed
// on executors by Cluster.OwnerOf). Sort keys drive the sort-based shuffle
// ordering (Tungsten sort).
type Emit func(dst int, sortKey uint64, rec heap.Addr)

// ShuffleSpec describes one shuffle phase.
type ShuffleSpec struct {
	// Produce runs on every executor and emits keyed records. It executes
	// under the computation timer.
	Produce func(ex *Executor, emit Emit) error
	// Consume runs on every executor over the records it received (in
	// sorted key order per sending block). It executes under the
	// computation timer.
	Consume func(ex *Executor, recs []heap.Addr) error
}

// outRecord is a map-side buffered record, held through a GC handle so the
// producer's further allocations cannot invalidate it.
type outRecord struct {
	key uint64
	h   *gc.Handle
}

// RunShuffle executes one full shuffle phase over the cluster and returns
// its cost breakdown:
//
//	compute: Produce + sort + Consume (measured)
//	ser:     encoding each (mapper, reducer) block (measured)
//	writeIO: spilling blocks to shuffle files (modelled from bytes)
//	readIO:  fetching blocks, split local/remote (modelled from bytes)
//	deser:   decoding fetched blocks on the reducer (measured)
func (c *Cluster) RunShuffle(spec ShuffleSpec) (metrics.Breakdown, error) {
	var bd metrics.Breakdown
	w := c.Workers()
	p := c.NumPartitions()
	c.shuffleStart()
	c.shuffleSeq++

	// --- map side: produce + sort + serialize -------------------------
	blocks := make([][][]byte, w) // blocks[srcWorker][dstPartition]
	for src := 0; src < w; src++ {
		ex := c.Execs[src]
		out := make([][]outRecord, p)

		start := time.Now()
		err := spec.Produce(ex, func(dst int, key uint64, rec heap.Addr) {
			if dst < 0 || dst >= p {
				panic(fmt.Sprintf("dataflow: emit to partition %d of %d", dst, p))
			}
			out[dst] = append(out[dst], outRecord{key: key, h: ex.RT.Pin(rec)})
		})
		if err != nil {
			return bd, fmt.Errorf("dataflow: produce on worker %d: %w", src, err)
		}
		// Sort each block by key (sort-based shuffle).
		for dst := range out {
			recs := out[dst]
			sort.SliceStable(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
		}
		bd.Compute += time.Since(start)

		// Serialize blocks.
		blocks[src] = make([][]byte, p)
		serStart := time.Now()
		for dst := 0; dst < p; dst++ {
			if len(out[dst]) == 0 {
				continue
			}
			var buf bytes.Buffer
			enc := c.Codec.NewEncoder(ex.RT, &buf)
			for _, r := range out[dst] {
				if err := enc.Write(r.h.Addr()); err != nil {
					return bd, fmt.Errorf("dataflow: serialize on worker %d: %w", src, err)
				}
			}
			if err := enc.Flush(); err != nil {
				return bd, err
			}
			blocks[src][dst] = buf.Bytes()
			bd.Records += int64(len(out[dst]))
		}
		bd.Ser += time.Since(serStart)
		for dst := range out {
			for _, r := range out[dst] {
				r.h.Release()
			}
		}

		// Spill to shuffle files: modelled by default, or real files
		// when Config.SpillDir is set.
		var written int64
		for dst := 0; dst < p; dst++ {
			written += int64(len(blocks[src][dst]))
		}
		if c.SpillDir == "" {
			bd.WriteIO += c.Model.WriteTime(written)
		} else {
			start := time.Now()
			for dst := 0; dst < p; dst++ {
				if len(blocks[src][dst]) == 0 {
					continue
				}
				if err := os.WriteFile(c.spillPath(src, dst), blocks[src][dst], 0o644); err != nil {
					return bd, fmt.Errorf("dataflow: spill: %w", err)
				}
				blocks[src][dst] = nil // force the fetch through the file
			}
			bd.WriteIO += time.Since(start)
		}
		bd.ShuffleBytes += written
	}
	c.sampleHeaps()

	// --- reduce side: fetch + deserialize + consume --------------------
	// Each reduce worker drains every partition it hosts, pulling that
	// partition's block from every map worker.
	for worker := 0; worker < w; worker++ {
		ex := c.Execs[worker]
		var localB, remoteB int64
		var handles []*gc.Handle
		var freers []interface{ Free() }

		var fetchTime time.Duration
		for dst := 0; dst < p; dst++ {
			if c.OwnerOf(dst) != worker {
				continue
			}
			for src := 0; src < w; src++ {
				block := blocks[src][dst]
				if block == nil && c.SpillDir != "" {
					// Fetch the real block file (measured read I/O).
					start := time.Now()
					var err error
					block, err = os.ReadFile(c.spillPath(src, dst))
					if err != nil {
						if os.IsNotExist(err) {
							continue
						}
						return bd, fmt.Errorf("dataflow: fetch: %w", err)
					}
					fetchTime += time.Since(start)
					os.Remove(c.spillPath(src, dst))
				}
				if len(block) == 0 {
					continue
				}
				if src == worker {
					localB += int64(len(block))
				} else {
					remoteB += int64(len(block))
				}
				deserStart := time.Now()
				dec := c.Codec.NewDecoder(ex.RT, bytes.NewReader(block))
				for {
					rec, err := dec.Read()
					if err != nil {
						if isEOF(err) {
							break
						}
						return bd, fmt.Errorf("dataflow: deserialize on worker %d: %w", worker, err)
					}
					handles = append(handles, ex.RT.Pin(rec))
				}
				bd.Deser += time.Since(deserStart)
				if f, ok := dec.(interface{ Free() }); ok {
					freers = append(freers, f)
				}
				blocks[src][dst] = nil
			}
		}
		bd.LocalBytes += localB
		bd.RemoteBytes += remoteB
		if c.SpillDir == "" {
			bd.ReadIO += c.Model.FetchTime(localB, remoteB)
		} else {
			// Disk reads are measured; the remote hop stays modelled
			// (the simulated cluster shares one machine).
			bd.ReadIO += fetchTime + c.Model.NetTime(remoteB)
		}

		start := time.Now()
		recs := make([]heap.Addr, len(handles))
		for i, h := range handles {
			recs[i] = h.Addr()
		}
		if spec.Consume != nil {
			if err := spec.Consume(ex, recs); err != nil {
				return bd, fmt.Errorf("dataflow: consume on worker %d: %w", worker, err)
			}
		}
		bd.Compute += time.Since(start)
		for _, h := range handles {
			h.Release()
		}
		// The reduce side has consumed the records; release the Skyway
		// input buffers (the explicit-free API of §3.2 — Spark keeps
		// buffers only while the RDD is cached, and these records are
		// not).
		for _, f := range freers {
			f.Free()
		}
	}
	c.sampleHeaps()
	return bd, nil
}

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// spillPath names the shuffle block file for one (mapper, reducer) pair of
// the current shuffle.
func (c *Cluster) spillPath(src, dst int) string {
	return filepath.Join(c.SpillDir, fmt.Sprintf("shuffle-%d-%d-%d.block", c.shuffleSeq, src, dst))
}

// Compute runs fn on every executor under the computation timer, outside
// any shuffle — for per-partition setup and iteration bookkeeping.
func (c *Cluster) Compute(fn func(ex *Executor) error) (metrics.Breakdown, error) {
	var bd metrics.Breakdown
	for _, ex := range c.Execs {
		start := time.Now()
		if err := fn(ex); err != nil {
			return bd, err
		}
		bd.Compute += time.Since(start)
	}
	return bd, nil
}
