package dataflow

import (
	"testing"

	"skyway/internal/datagen"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

func newParallelCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cp := klass.NewPath()
	WorkloadClasses(cp)
	if cfg.Heap.EdenSize == 0 {
		cfg.Heap = smallHeap()
	}
	c, err := NewCluster(cp, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func skywayFor(c *Cluster) *serial.SkywayCodec {
	rts := []*vm.Runtime{}
	for _, ex := range c.Execs {
		rts = append(rts, ex.RT)
	}
	return serial.NewSkywayCodec(rts...)
}

// Parallel execution must be invisible in the answers: every codec, four
// executors shuffling concurrently, same results as the sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	lines := datagen.TextSpec{Lines: 800, WordsPerLine: 8, Vocabulary: 250, Seed: 11}.Generate()
	parts := [][]string{lines[:200], lines[200:400], lines[400:600], lines[600:]}
	g := datagen.GraphSpec{Name: "par", Vertices: 1200, AvgDegree: 6, Seed: 17}.Generate()

	codecs := map[string]func(c *Cluster) serial.Codec{
		"java":   func(*Cluster) serial.Codec { return serial.JavaCodec() },
		"kryo":   func(*Cluster) serial.Codec { return serial.KryoCodec(WorkloadRegistration()) },
		"skyway": func(c *Cluster) serial.Codec { return skywayFor(c) },
	}
	for name, mk := range codecs {
		t.Run(name, func(t *testing.T) {
			run := func(parallel int) (int64, float64) {
				c := newParallelCluster(t, Config{Workers: 4, ParallelTasks: parallel})
				c.Codec = mk(c)
				wbd, words, err := RunWordCount(c, parts)
				if err != nil {
					t.Fatal(err)
				}
				pbd, mass, err := RunPageRank(c, g, 2)
				if err != nil {
					t.Fatal(err)
				}
				if parallel > 1 {
					if !c.Parallel() {
						t.Error("cluster not parallel despite ParallelTasks > 1")
					}
					if wbd.Wall == 0 || pbd.Wall == 0 {
						t.Error("parallel run reported no wall time")
					}
					if wbd.Wall > wbd.Sum() || pbd.Wall > pbd.Sum() {
						t.Errorf("wall exceeds component sum: wc %v/%v pr %v/%v",
							wbd.Wall, wbd.Sum(), pbd.Wall, pbd.Sum())
					}
				} else {
					if c.Parallel() {
						t.Error("cluster parallel despite ParallelTasks = 1")
					}
					if wbd.Wall != 0 || pbd.Wall != 0 {
						t.Error("sequential run reported wall time; benchmark numbers would change")
					}
				}
				return words, mass
			}
			seqWords, seqMass := run(1)
			parWords, parMass := run(4)
			if seqWords != parWords {
				t.Errorf("word count: parallel %d != sequential %d", parWords, seqWords)
			}
			if seqMass != parMass {
				t.Errorf("rank mass: parallel %v != sequential %v", parMass, seqMass)
			}
		})
	}
}

// Concurrent senders inside one map task: records bound for different
// partitions share a payload object, so with two encoder streams drawing
// from one heap at once, only one stream can claim the shared object's
// baddr word — the others must take the §4.2 hash-table fallback, observable
// via OverflowHits.
func TestParallelConcurrentSendersShareHeap(t *testing.T) {
	c := newParallelCluster(t, Config{
		Workers:             4,
		PartitionsPerWorker: 4, // 16 partitions: several blocks per sender slot
		ParallelTasks:       4,
		ConcurrentSenders:   4,
	})
	codec := skywayFor(c)
	c.Codec = codec

	const cells = 64
	var wantSum int64
	for i := 0; i < cells; i++ {
		wantSum += int64(i)
	}

	p := c.NumPartitions()
	var got [4]int64
	spec := ShuffleSpec{
		Produce: func(ex *Executor, emit Emit) error {
			mk := ex.RT.MustLoad(AdjMsgClass)
			arrK := ex.RT.MustLoad("long[]")
			arr, err := ex.RT.NewArray(arrK, cells)
			if err != nil {
				return err
			}
			ah := ex.RT.Pin(arr)
			defer ah.Release()
			for i := 0; i < cells; i++ {
				ex.RT.ArraySetLong(ah.Addr(), i, int64(i))
			}
			// One record per partition, every record referencing the one
			// shared array: blocks encoded by different sender goroutines
			// collide on its baddr claim.
			for dst := 0; dst < p; dst++ {
				msg, err := ex.RT.New(mk)
				if err != nil {
					return err
				}
				setLong(ex, msg, mk, "src", int64(ex.ID))
				setLong(ex, msg, mk, "dst", int64(dst))
				ex.RT.SetRef(msg, mk.FieldByName("neighbors"), ah.Addr())
				emit(dst, uint64(dst), msg)
			}
			return nil
		},
		Consume: func(ex *Executor, recs []heap.Addr) error {
			mk := ex.RT.MustLoad(AdjMsgClass)
			nF := mk.FieldByName("neighbors")
			var sum int64
			for _, r := range recs {
				arr := ex.RT.GetRef(r, nF)
				n := ex.RT.ArrayLen(arr)
				for i := 0; i < n; i++ {
					sum += ex.RT.ArrayGetLong(arr, i)
				}
			}
			got[ex.ID] = sum
			return nil
		},
	}
	bd, err := c.RunShuffle(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Each executor sent p records, each dragging a full copy of the shared
	// array; each executor receives PartitionsPerWorker × Workers records.
	var total int64
	for _, s := range got {
		total += s
	}
	if want := wantSum * int64(p) * int64(c.Workers()); total != want {
		t.Errorf("received payload sum %d, want %d", total, want)
	}
	if bd.Records != int64(p*c.Workers()) {
		t.Errorf("records = %d, want %d", bd.Records, p*c.Workers())
	}
	var overflow uint64
	for _, ex := range c.Execs {
		overflow += codec.ServiceFor(ex.RT).Snapshot().OverflowHits
	}
	if overflow == 0 {
		t.Error("no overflow-table hits: concurrent sender streams never collided on a shared object")
	}
}

// SKYWAY_PARALLEL switches otherwise-default clusters onto the concurrent
// path (the CI parallel job sets it); an explicit ParallelTasks wins.
func TestParallelEnvVar(t *testing.T) {
	t.Setenv("SKYWAY_PARALLEL", "4")
	if c := newParallelCluster(t, Config{Workers: 4}); !c.Parallel() {
		t.Error("SKYWAY_PARALLEL=4 did not enable parallel tasks")
	}
	if c := newParallelCluster(t, Config{Workers: 4, ParallelTasks: 1}); c.Parallel() {
		t.Error("explicit ParallelTasks=1 overridden by env")
	}
	t.Setenv("SKYWAY_PARALLEL", "")
	if c := newParallelCluster(t, Config{Workers: 4}); c.Parallel() {
		t.Error("parallel without opt-in")
	}
	// Negative means one goroutine per executor.
	if c := newParallelCluster(t, Config{Workers: 4, ParallelTasks: -1}); !c.Parallel() {
		t.Error("ParallelTasks=-1 did not clamp to worker count")
	}
}

// The shared Traffic accounting must balance under concurrent tasks: bytes
// fetched (local + remote) equal bytes written, and remote transfers happen
// on a multi-worker shuffle.
func TestParallelTrafficAccounting(t *testing.T) {
	lines := datagen.TextSpec{Lines: 400, WordsPerLine: 8, Vocabulary: 120, Seed: 23}.Generate()
	parts := [][]string{lines[:100], lines[100:200], lines[200:300], lines[300:]}
	c := newParallelCluster(t, Config{Workers: 4, ParallelTasks: 4})
	c.Codec = serial.KryoCodec(WorkloadRegistration())
	bd, _, err := RunWordCount(c, parts)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Traffic.Snapshot()
	if snap.Written != bd.ShuffleBytes {
		t.Errorf("traffic written %d != breakdown shuffle bytes %d", snap.Written, bd.ShuffleBytes)
	}
	if snap.LocalRead+snap.RemoteRead != snap.Written {
		t.Errorf("fetched %d+%d != written %d", snap.LocalRead, snap.RemoteRead, snap.Written)
	}
	if snap.RemoteXfers == 0 {
		t.Error("no remote transfers on a 4-worker shuffle")
	}
	if c.PeakHeap == 0 {
		t.Error("peak heap not sampled from parallel tasks")
	}
}
