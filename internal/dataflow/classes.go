package dataflow

import (
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

// Record classes shuffled by the Spark workloads. Like the paper's Spark
// setup, shuffled data are ordinary heap objects; only these classes cross
// executor heaps.
const (
	// WordPairClass is WordCount's (word, count) pair.
	WordPairClass = "wc.WordPair"
	// RankMsgClass is PageRank's (dst, contribution) message.
	RankMsgClass = "graph.RankMsg"
	// LabelMsgClass is ConnectedComponents' (dst, label) message.
	LabelMsgClass = "graph.LabelMsg"
	// AdjMsgClass is TriangleCounting's (src, dst, neighbors) message.
	AdjMsgClass = "graph.AdjMsg"
)

// WorkloadClasses defines the record schemas on cp (idempotent).
func WorkloadClasses(cp *klass.Path) {
	vm.EnsureBuiltins(cp)
	if cp.Lookup(WordPairClass) != nil {
		return
	}
	cp.MustDefine(
		&klass.ClassDef{Name: WordPairClass, Fields: []klass.FieldDef{
			{Name: "word", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "count", Kind: klass.Int64},
		}},
		&klass.ClassDef{Name: RankMsgClass, Fields: []klass.FieldDef{
			{Name: "dst", Kind: klass.Int64},
			{Name: "value", Kind: klass.Float64},
		}},
		&klass.ClassDef{Name: LabelMsgClass, Fields: []klass.FieldDef{
			{Name: "dst", Kind: klass.Int64},
			{Name: "label", Kind: klass.Int64},
		}},
		&klass.ClassDef{Name: AdjMsgClass, Fields: []klass.FieldDef{
			{Name: "src", Kind: klass.Int64},
			{Name: "dst", Kind: klass.Int64},
			{Name: "neighbors", Kind: klass.Ref, Class: "long[]"},
		}},
	)
}

// WorkloadRegistration returns the Kryo-style registration list covering
// every class the workloads shuffle — the manual step Skyway eliminates.
func WorkloadRegistration() *serial.Registration {
	return serial.NewRegistration(
		WordPairClass, RankMsgClass, LabelMsgClass, AdjMsgClass,
		vm.StringClass, vm.CharArrayClass, "long[]",
	)
}

// field shorthand helpers -----------------------------------------------------

func setLong(ex *Executor, obj heap.Addr, k *klass.Klass, field string, v int64) {
	ex.RT.SetLong(obj, k.FieldByName(field), v)
}

func getLong(ex *Executor, obj heap.Addr, k *klass.Klass, field string) int64 {
	return ex.RT.GetLong(obj, k.FieldByName(field))
}

func setDouble(ex *Executor, obj heap.Addr, k *klass.Klass, field string, v float64) {
	ex.RT.SetDouble(obj, k.FieldByName(field), v)
}

func getDouble(ex *Executor, obj heap.Addr, k *klass.Klass, field string) float64 {
	return ex.RT.GetDouble(obj, k.FieldByName(field))
}
