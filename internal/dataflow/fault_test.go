package dataflow

import (
	"errors"
	"testing"

	"skyway/internal/core"
	"skyway/internal/datagen"
	"skyway/internal/fault"
	"skyway/internal/klass"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

// newSkywayCluster boots a cluster running the Skyway codec — the fault
// tests target the hardened decode path, which baseline serializers never
// enter.
func newSkywayCluster(t *testing.T) *Cluster {
	t.Helper()
	cp := klass.NewPath()
	WorkloadClasses(cp)
	c := newTestCluster(t, nil, cp)
	rts := []*vm.Runtime{}
	for _, ex := range c.Execs {
		rts = append(rts, ex.RT)
	}
	c.Codec = serial.NewSkywayCodec(rts...)
	return c
}

func faultWordCount(t *testing.T, spec string) (int64, []int, error) {
	t.Helper()
	if err := fault.Configure(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
	lines := datagen.TextSpec{Lines: 600, WordsPerLine: 8, Vocabulary: 200, Seed: 11}.Generate()
	parts := [][]string{lines[:200], lines[200:400], lines[400:]}
	c := newSkywayCluster(t)
	_, total, err := RunWordCount(c, parts)
	return total, c.ExcludedPeers(), err
}

// TestTransientTornFetchRetriesToIdenticalResult: one shuffle block arrives
// torn; the bounded re-fetch decodes the intact stored block and the job
// completes with a result bit-identical to the fault-free run. No peer is
// excluded.
func TestTransientTornFetchRetriesToIdenticalResult(t *testing.T) {
	want, _, err := faultWordCount(t, "")
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	got, excluded, err := faultWordCount(t, fault.DataflowFetchTorn+":on*times=1")
	if err != nil {
		t.Fatalf("run under transient torn fetch: %v", err)
	}
	if fault.Fired(fault.DataflowFetchTorn) != 1 {
		t.Fatalf("torn failpoint fired %d times, want 1", fault.Fired(fault.DataflowFetchTorn))
	}
	if got != want {
		t.Fatalf("result under retry = %d, fault-free = %d", got, want)
	}
	if len(excluded) != 0 {
		t.Fatalf("transient fault excluded peers %v", excluded)
	}
}

// TestPersistentTornFetchAbortsStage: every fetch of a block arrives torn;
// the ladder exhausts its re-fetch budget, excludes the peer, and aborts the
// stage with a StageAbortError wrapping the checksum DecodeError — no panic,
// no wrong answer.
func TestPersistentTornFetchAbortsStage(t *testing.T) {
	_, excluded, err := faultWordCount(t, fault.DataflowFetchTorn+":on")
	if err == nil {
		t.Fatal("persistent torn fetch completed without error")
	}
	var abort *StageAbortError
	if !errors.As(err, &abort) {
		t.Fatalf("error is %T (%v), want *StageAbortError", err, err)
	}
	if abort.Attempts != maxFetchAttempts {
		t.Errorf("abort after %d attempts, want %d", abort.Attempts, maxFetchAttempts)
	}
	de, ok := core.AsDecodeError(err)
	if !ok {
		t.Fatalf("abort does not wrap a DecodeError: %v", err)
	}
	if de.Kind != core.DecodeChecksum {
		t.Errorf("decode kind = %s, want %s (torn bytes must fail the CRC)", de.Kind, core.DecodeChecksum)
	}
	found := false
	for _, id := range excluded {
		if id == abort.Src {
			found = true
		}
	}
	if !found {
		t.Errorf("excluded peers %v do not include aborting src %d", excluded, abort.Src)
	}
}

// TestTaskDieAbortsStageCleanly: an executor dies mid-stage; the stage
// aborts with the injected fault surfaced and the executor named.
func TestTaskDieAbortsStageCleanly(t *testing.T) {
	_, _, err := faultWordCount(t, fault.DataflowTaskDie+":on*times=1")
	if err == nil {
		t.Fatal("task death completed without error")
	}
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Point != fault.DataflowTaskDie {
		t.Fatalf("error %v does not wrap the task-die fault", err)
	}
}

// TestFetchSlowKeepsResultsIdentical: a slow peer charges modelled read
// time; results must not change.
func TestFetchSlowKeepsResultsIdenticalAcrossRuns(t *testing.T) {
	want, _, err := faultWordCount(t, "")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := faultWordCount(t, fault.DataflowFetchSlow+":on*arg=2ms")
	if err != nil {
		t.Fatalf("run under slow fetch: %v", err)
	}
	if got != want {
		t.Fatalf("slow-peer run changed result: %d != %d", got, want)
	}
}
