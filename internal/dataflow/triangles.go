package dataflow

import (
	"sort"
	"sync/atomic"

	"skyway/internal/datagen"
	"skyway/internal/heap"
	"skyway/internal/metrics"
)

// RunTriangleCounting counts the triangles induced by g's edges with the
// standard distributed algorithm: the graph is first symmetrized and
// deduplicated; then for every edge (u, v) with u < v, the sender ships
// u's (pruned) neighbour list to v's owner as an AdjMsg carrying a long[]
// payload, and the receiver intersects it with v's local neighbour set.
// Shipping adjacency arrays makes TC the shuffle-heaviest workload, as in
// the paper, where TC dominates Figures 3 and 8(a). Returns the breakdown
// and the triangle count.
func RunTriangleCounting(c *Cluster, g *datagen.Graph) (metrics.Breakdown, int64, error) {
	WorkloadClasses(c.CP)
	p := c.NumPartitions()

	// Symmetrize + dedup into undirected adjacency, then keep only
	// higher-numbered neighbours (each triangle counted once).
	und := make([][]int32, g.N)
	for u := range g.Adj {
		for _, v := range g.Adj[u] {
			und[u] = append(und[u], v)
			und[v] = append(und[v], int32(u))
		}
	}
	for v := range und {
		nb := und[v]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		uniq := nb[:0]
		var prev int32 = -1
		for _, u := range nb {
			if u != prev && u != int32(v) {
				uniq = append(uniq, u)
				prev = u
			}
		}
		und[v] = uniq
	}
	// Orient each edge toward the higher-(degree, id) endpoint — the
	// standard degree orientation that bounds every out-list by O(√E)
	// and keeps the adjacency shuffle tractable on power-law graphs.
	// Any total order counts each triangle exactly once at its minimum
	// vertex; plain ID order would make the hubs' out-lists quadratic.
	follows := func(a, b int32) bool {
		da, db := len(und[a]), len(und[b])
		if da != db {
			return da > db
		}
		return a > b
	}
	higher := make([][]int32, g.N)
	for v := range und {
		for _, u := range und[v] {
			if follows(u, int32(v)) {
				higher[v] = append(higher[v], u)
			}
		}
		// Keep lists ID-sorted so the reducer's merge-intersection
		// works.
		sort.Slice(higher[v], func(i, j int) bool { return higher[v][i] < higher[v][j] })
	}

	var total int64 // summed atomically: Consume runs on concurrent tasks
	spec := ShuffleSpec{
		Produce: func(ex *Executor, emit Emit) error {
			mk := ex.RT.MustLoad(AdjMsgClass)
			arrK := ex.RT.MustLoad("long[]")
			for v := ex.ID; v < g.N; v += c.Workers() {
				hs := higher[v]
				if len(hs) == 0 {
					continue
				}
				for _, u := range hs {
					// Ship N⁺(v) to u's owner for intersection
					// with N⁺(u).
					arr, err := ex.RT.NewArray(arrK, len(hs))
					if err != nil {
						return err
					}
					ah := ex.RT.Pin(arr)
					for i, w := range hs {
						ex.RT.ArraySetLong(ah.Addr(), i, int64(w))
					}
					msg, err := ex.RT.New(mk)
					if err != nil {
						ah.Release()
						return err
					}
					setLong(ex, msg, mk, "src", int64(v))
					setLong(ex, msg, mk, "dst", int64(u))
					ex.RT.SetRef(msg, mk.FieldByName("neighbors"), ah.Addr())
					ah.Release()
					emit(int(u)%p, uint64(u), msg)
				}
			}
			return nil
		},
		Consume: func(ex *Executor, recs []heap.Addr) error {
			mk := ex.RT.MustLoad(AdjMsgClass)
			nF := mk.FieldByName("neighbors")
			var found int64
			for _, r := range recs {
				u := int32(getLong(ex, r, mk, "dst"))
				arr := ex.RT.GetRef(r, nF)
				n := ex.RT.ArrayLen(arr)
				// Intersect sorted N⁺(v) (shipped) with N⁺(u)
				// (local).
				local := higher[u]
				i, j := 0, 0
				for i < n && j < len(local) {
					w := int32(ex.RT.ArrayGetLong(arr, i))
					switch {
					case w < local[j]:
						i++
					case w > local[j]:
						j++
					default:
						found++
						i++
						j++
					}
				}
			}
			atomic.AddInt64(&total, found)
			return nil
		},
	}
	bd, err := c.RunShuffle(spec)
	return bd, total, err
}
