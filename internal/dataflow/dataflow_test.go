package dataflow

import (
	"testing"

	"skyway/internal/datagen"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/race"
	"skyway/internal/serial"
	"skyway/internal/verify"
	"skyway/internal/vm"
)

func smallHeap() heap.Config {
	return heap.Config{
		EdenSize:     16 << 20,
		SurvivorSize: 2 << 20,
		OldSize:      32 << 20,
		BufferSize:   64 << 20,
		Layout:       klass.Layout{Baddr: true},
	}
}

func newTestCluster(t *testing.T, codec serial.Codec, cp *klass.Path) *Cluster {
	t.Helper()
	c, err := NewCluster(cp, Config{Workers: 3, Heap: smallHeap()}, codec)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testCodecs(t *testing.T, cp *klass.Path) map[string]func(*Cluster) serial.Codec {
	t.Helper()
	return map[string]func(*Cluster) serial.Codec{
		"java": func(*Cluster) serial.Codec { return serial.JavaCodec() },
		"kryo": func(*Cluster) serial.Codec { return serial.KryoCodec(WorkloadRegistration()) },
		"skyway": func(c *Cluster) serial.Codec {
			rts := []*vm.Runtime{}
			for _, ex := range c.Execs {
				rts = append(rts, ex.RT)
			}
			return serial.NewSkywayCodec(rts...)
		},
	}
}

// runAll runs a workload under every codec and checks all codecs agree on
// the result — data-transfer plumbing must not change answers.
func runAll(t *testing.T, run func(c *Cluster) (int64, error)) {
	t.Helper()
	cpBase := klass.NewPath()
	WorkloadClasses(cpBase)
	var want int64
	first := true
	for name, mk := range testCodecs(t, cpBase) {
		cp := klass.NewPath()
		WorkloadClasses(cp)
		c := newTestCluster(t, nil, cp)
		c.Codec = mk(c)
		got, err := run(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if first {
			want = got
			first = false
		} else if got != want {
			t.Errorf("%s: result %d differs from %d", name, got, want)
		}
	}
}

func TestWordCountAcrossCodecs(t *testing.T) {
	lines := datagen.TextSpec{Lines: 900, WordsPerLine: 8, Vocabulary: 300, Seed: 7}.Generate()
	parts := [][]string{lines[:300], lines[300:600], lines[600:]}
	runAll(t, func(c *Cluster) (int64, error) {
		bd, total, err := RunWordCount(c, parts)
		if err != nil {
			return 0, err
		}
		if bd.Records == 0 || bd.ShuffleBytes == 0 {
			t.Error("no shuffle accounted")
		}
		if total != 900*8 {
			t.Errorf("total words = %d, want %d", total, 900*8)
		}
		return total, nil
	})
}

func testGraph() *datagen.Graph {
	return datagen.GraphSpec{Name: "test", Vertices: 1500, AvgDegree: 6, Seed: 99}.Generate()
}

func TestPageRankAcrossCodecs(t *testing.T) {
	g := testGraph()
	runAll(t, func(c *Cluster) (int64, error) {
		bd, mass, err := RunPageRank(c, g, 3)
		if err != nil {
			return 0, err
		}
		if bd.Records == 0 {
			t.Error("no messages shuffled")
		}
		if mass <= 0 {
			t.Error("non-positive rank mass")
		}
		return int64(mass * 1e6), nil
	})
}

func TestConnectedComponentsAcrossCodecs(t *testing.T) {
	g := testGraph()
	runAll(t, func(c *Cluster) (int64, error) {
		_, comps, err := RunConnectedComponents(c, g, 10)
		if err != nil {
			return 0, err
		}
		if comps <= 0 || comps > g.N {
			t.Errorf("implausible component count %d", comps)
		}
		return int64(comps), nil
	})
}

func TestTriangleCountingAcrossCodecs(t *testing.T) {
	g := testGraph()
	runAll(t, func(c *Cluster) (int64, error) {
		bd, tris, err := RunTriangleCounting(c, g)
		if err != nil {
			return 0, err
		}
		if bd.ShuffleBytes == 0 {
			t.Error("TC shuffled nothing")
		}
		return tris, nil
	})
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	g := datagen.GraphSpec{Name: "tiny", Vertices: 60, AvgDegree: 5, Seed: 3}.Generate()
	cp := klass.NewPath()
	WorkloadClasses(cp)
	c := newTestCluster(t, serial.JavaCodec(), cp)
	_, got, err := RunTriangleCounting(c, g)
	if err != nil {
		t.Fatal(err)
	}

	// Brute force over the symmetrized simple graph.
	adj := make([]map[int32]bool, g.N)
	for i := range adj {
		adj[i] = make(map[int32]bool)
	}
	for u := range g.Adj {
		for _, v := range g.Adj[u] {
			if int32(u) != v {
				adj[u][v] = true
				adj[v][int32(u)] = true
			}
		}
	}
	var want int64
	for u := 0; u < g.N; u++ {
		for v := range adj[u] {
			if v <= int32(u) {
				continue
			}
			for w := range adj[v] {
				if w > v && adj[u][w] {
					want++
				}
			}
		}
	}
	if got != want {
		t.Errorf("triangles = %d, want %d", got, want)
	}
}

func TestPageRankMassConvergesToN(t *testing.T) {
	// With damping 0.85 and contributions only along edges, total mass
	// stays bounded by N (equals N on graphs without dangling vertices).
	g := testGraph()
	cp := klass.NewPath()
	WorkloadClasses(cp)
	c := newTestCluster(t, serial.KryoCodec(WorkloadRegistration()), cp)
	_, mass, err := RunPageRank(c, g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mass <= 0 || mass > float64(g.N)*1.01 {
		t.Errorf("rank mass %f implausible for N=%d", mass, g.N)
	}
}

func TestShuffleByteAccounting(t *testing.T) {
	lines := datagen.TextSpec{Lines: 300, WordsPerLine: 8, Vocabulary: 100, Seed: 1}.Generate()
	parts := [][]string{lines[:100], lines[100:200], lines[200:]}
	cp := klass.NewPath()
	WorkloadClasses(cp)
	c := newTestCluster(t, serial.KryoCodec(WorkloadRegistration()), cp)
	bd, _, err := RunWordCount(c, parts)
	if err != nil {
		t.Fatal(err)
	}
	if bd.LocalBytes+bd.RemoteBytes != bd.ShuffleBytes {
		t.Errorf("local(%d)+remote(%d) != shuffled(%d)", bd.LocalBytes, bd.RemoteBytes, bd.ShuffleBytes)
	}
	if bd.RemoteBytes == 0 {
		t.Error("no remote fetches on a 3-worker shuffle")
	}
	if bd.WriteIO == 0 || bd.ReadIO == 0 {
		t.Error("modelled I/O missing")
	}
	if c.PeakHeap == 0 {
		t.Error("peak heap not sampled")
	}
}

func TestSkywayShufflesMoreBytesButLessSD(t *testing.T) {
	// The paper's headline tradeoff: Skyway moves more bytes than Kryo
	// (1.77× in §5.2) yet spends less CPU time in S/D.
	g := testGraph()
	run := func(mk func(c *Cluster) serial.Codec) (sd float64, bytes int64) {
		cp := klass.NewPath()
		WorkloadClasses(cp)
		c := newTestCluster(t, nil, cp)
		c.Codec = mk(c)
		bd, _, err := RunPageRank(c, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		return float64(bd.Ser+bd.Deser) / float64(bd.Records), bd.ShuffleBytes
	}
	kryoSD, kryoBytes := run(func(*Cluster) serial.Codec { return serial.KryoCodec(WorkloadRegistration()) })
	skySD, skyBytes := run(func(c *Cluster) serial.Codec {
		rts := []*vm.Runtime{}
		for _, ex := range c.Execs {
			rts = append(rts, ex.RT)
		}
		return serial.NewSkywayCodec(rts...)
	})
	if skyBytes <= kryoBytes {
		t.Errorf("skyway bytes (%d) not larger than kryo (%d)", skyBytes, kryoBytes)
	}
	if verify.Enabled() {
		// The verifier walks the whole heap at every collection, and the
		// Skyway path collects more; wall-clock comparisons on an
		// instrumented run measure the instrumentation.
		t.Skip("timing comparison skipped under SKYWAY_VERIFY")
	}
	if race.Enabled {
		t.Skip("timing comparison skipped under the race detector")
	}
	if skySD >= kryoSD {
		t.Errorf("skyway per-record S/D (%f) not below kryo (%f)", skySD, kryoSD)
	}
}

func TestSpillToDiskMatchesModelled(t *testing.T) {
	lines := datagen.TextSpec{Lines: 300, WordsPerLine: 8, Vocabulary: 100, Seed: 5}.Generate()
	parts := [][]string{lines[:100], lines[100:200], lines[200:]}

	run := func(spill string) (int64, int64) {
		cp := klass.NewPath()
		WorkloadClasses(cp)
		c, err := NewCluster(cp, Config{Workers: 3, Heap: smallHeap(), SpillDir: spill}, serial.KryoCodec(WorkloadRegistration()))
		if err != nil {
			t.Fatal(err)
		}
		bd, total, err := RunWordCount(c, parts)
		if err != nil {
			t.Fatal(err)
		}
		if bd.WriteIO == 0 || bd.ReadIO == 0 {
			t.Error("I/O components missing")
		}
		return total, bd.ShuffleBytes
	}
	total1, bytes1 := run("")
	total2, bytes2 := run(t.TempDir())
	if total1 != total2 {
		t.Errorf("spilled run result %d != modelled %d", total2, total1)
	}
	if bytes1 != bytes2 {
		t.Errorf("spilled run bytes %d != modelled %d", bytes2, bytes1)
	}
}

func TestPartitionCountsDoNotChangeResults(t *testing.T) {
	g := testGraph()
	var want float64
	for i, ppw := range []int{1, 2, 4} {
		cp := klass.NewPath()
		WorkloadClasses(cp)
		c, err := NewCluster(cp, Config{Workers: 3, Heap: smallHeap(), PartitionsPerWorker: ppw},
			serial.KryoCodec(WorkloadRegistration()))
		if err != nil {
			t.Fatal(err)
		}
		if c.NumPartitions() != 3*ppw {
			t.Fatalf("NumPartitions = %d, want %d", c.NumPartitions(), 3*ppw)
		}
		for p := 0; p < c.NumPartitions(); p++ {
			if o := c.OwnerOf(p); o < 0 || o >= 3 {
				t.Fatalf("OwnerOf(%d) = %d", p, o)
			}
		}
		_, mass, err := RunPageRank(c, g, 3)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = mass
		} else if mass != want {
			t.Errorf("ppw=%d: mass %v differs from ppw=1's %v", ppw, mass, want)
		}
	}
}
