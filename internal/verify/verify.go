// Package verify implements the heap and buffer invariant verifier — the
// repro's analogue of HotSpot's VerifyBeforeGC/VerifyAfterGC. It walks the
// live regions (eden, from-space survivor, old generation) and the parsed
// Skyway input-buffer chunks and checks the invariants the paper states but
// ordinary execution never re-derives:
//
//   - header sanity: every klass word resolves to a loaded class, the mark
//     word's cached hash is a valid 31-bit identity hash, no forwarding tag
//     or GC mark bit survives outside a collection, and the baddr word is
//     either zero or a well-formed in-flight claim;
//   - reference sanity: every reference slot holds Null or the start
//     address of a live object;
//   - card-table soundness: every tenured object (old generation or parsed
//     input buffer) holding a young pointer is covered by a dirty card, so
//     the next scavenge cannot miss the edge;
//   - buffer relativization (CheckChunk): pre-absolutization images carry
//     only in-range relative offsets.
//
// Verification is opt-in via the SKYWAY_VERIFY environment variable (or
// vm.Options.Verify); when enabled, the vm runtime wires Verify into the
// collector's before/after hooks and the core writer/reader enable cheap
// per-object debug assertions.
package verify

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

// enabled holds the process-wide verification switch, seeded from the
// SKYWAY_VERIFY environment variable.
var enabled atomic.Bool

func init() {
	v := os.Getenv("SKYWAY_VERIFY")
	enabled.Store(v != "" && v != "0")
}

// Enabled reports whether heap verification is switched on for the process.
func Enabled() bool { return enabled.Load() }

// SetEnabled flips the process-wide verification switch and returns the
// previous value; tests use it to exercise both modes deterministically.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Kind classifies a Violation.
type Kind string

// Violation kinds, one per invariant class.
const (
	// BadKlass: an object's klass word does not resolve to a loaded class.
	BadKlass Kind = "bad-klass"
	// BadMark: the mark word carries an invalid cached hash, or a
	// forwarding tag / GC mark bit outside a collection.
	BadMark Kind = "bad-mark"
	// BadBaddr: the Skyway baddr word is neither zero nor a well-formed
	// in-flight claim.
	BadBaddr Kind = "bad-baddr"
	// BadWalk: a region walk could not complete (zero/unaligned object
	// size, or an object overrunning its region).
	BadWalk Kind = "bad-walk"
	// DanglingRef: a reference slot points at something that is not the
	// start of a live object.
	DanglingRef Kind = "dangling-ref"
	// MissingCard: a tenured object holds a young pointer but no card
	// covering it is dirty, so a scavenge would miss the edge.
	MissingCard Kind = "missing-card"
	// BadBufferRel: a pre-absolutization buffer image carries a reference
	// that is not a well-formed relative offset into the flushed stream.
	BadBufferRel Kind = "bad-buffer-rel"
)

// Violation is one invariant breach found by the verifier.
type Violation struct {
	Kind Kind
	// Addr is the address of the offending object (the owner, for
	// reference-slot violations).
	Addr heap.Addr
	// Off is the byte offset of the offending slot within the object, for
	// reference violations; 0 otherwise.
	Off    uint32
	Detail string
}

func (v Violation) String() string {
	if v.Off != 0 {
		return fmt.Sprintf("%s at %#x+%d: %s", v.Kind, uint64(v.Addr), v.Off, v.Detail)
	}
	return fmt.Sprintf("%s at %#x: %s", v.Kind, uint64(v.Addr), v.Detail)
}

// Meta supplies the object-model knowledge the verifier needs; it is
// implemented by the vm Runtime. It deliberately mirrors gc.Meta (plus klass
// resolution and pinned-chunk enumeration) so the verifier stays decoupled
// from the class loader.
type Meta interface {
	// ObjectSize returns the padded byte size of the live object at a.
	ObjectSize(a heap.Addr) uint32
	// RefSlots invokes fn with the byte offset of every reference slot of
	// the live object at a.
	RefSlots(a heap.Addr, fn func(off uint32))
	// ValidKlassWord reports whether a live object's klass word resolves
	// to a loaded class.
	ValidKlassWord(w uint64) bool
	// EachPinned invokes fn for every live Skyway input-buffer chunk.
	EachPinned(fn func(start heap.Addr, size uint32, parsed bool))
}

// walkedObject records one object found during the region walk, with enough
// context for the reference/card passes.
type walkedObject struct {
	addr    heap.Addr
	size    uint32
	tenured bool // old generation or parsed input buffer: card rules apply
}

// Verify checks every invariant over the heap's live regions and parsed
// input-buffer chunks and returns the violations found (nil when the heap is
// sound). Unparsed chunks are skipped — their images still carry global type
// IDs and relative pointers and are audited separately via CheckChunk.
func Verify(h *heap.Heap, meta Meta) []Violation {
	var vs []Violation
	starts := make(map[heap.Addr]struct{}, 1024)
	var objs []walkedObject

	walk := func(region string, start, end heap.Addr, tenured bool) {
		a := start
		for a < end {
			w := h.KlassWord(a)
			if !meta.ValidKlassWord(w) {
				vs = append(vs, Violation{Kind: BadKlass, Addr: a, Detail: fmt.Sprintf(
					"klass word %#x does not resolve to a loaded class; aborting %s walk", w, region)})
				return
			}
			size := meta.ObjectSize(a)
			if size == 0 || size%klass.WordSize != 0 {
				vs = append(vs, Violation{Kind: BadWalk, Addr: a, Detail: fmt.Sprintf(
					"object size %d is not a positive word multiple; aborting %s walk", size, region)})
				return
			}
			next := a.Add(size)
			if next > end {
				vs = append(vs, Violation{Kind: BadWalk, Addr: a, Detail: fmt.Sprintf(
					"object of size %d overruns %s end %#x", size, region, uint64(end))})
				return
			}
			starts[a] = struct{}{}
			objs = append(objs, walkedObject{addr: a, size: size, tenured: tenured})
			vs = checkHeader(h, a, vs)
			a = next
		}
	}

	walk("eden", h.Eden.Start, h.Eden.Top, false)
	walk("from-space", h.From.Start, h.From.Top, false)
	walk("old-gen", h.Old.Start, h.Old.Top, true)
	meta.EachPinned(func(start heap.Addr, size uint32, parsed bool) {
		if parsed {
			walk("input-buffer chunk", start, start.Add(size), true)
		}
	})

	for _, o := range objs {
		meta.RefSlots(o.addr, func(off uint32) {
			ref := heap.Addr(h.Load(o.addr, off, klass.Ref))
			if ref == heap.Null {
				return
			}
			// Tagged arena handles point outside the managed heap by
			// design: promoted objects may reference still-relativized
			// arena neighbours, and those edges are resolved by the vm
			// accessor layer, not the heap walk.
			if heap.IsArenaAddr(ref) {
				return
			}
			if _, ok := starts[ref]; !ok {
				vs = append(vs, Violation{Kind: DanglingRef, Addr: o.addr, Off: off, Detail: fmt.Sprintf(
					"reference %#x is not the start of a live object", uint64(ref))})
				return
			}
			// The scavenger finds old-to-young edges by scanning tenured
			// objects whose span overlaps a dirty card; an undirty young
			// pointer would silently survive pointing at reclaimed space.
			if o.tenured && h.InYoung(ref) && !h.RangeDirty(o.addr, o.size) {
				vs = append(vs, Violation{Kind: MissingCard, Addr: o.addr, Off: off, Detail: fmt.Sprintf(
					"tenured object holds young pointer %#x but no covering card is dirty", uint64(ref))})
			}
		})
	}
	return vs
}

// checkHeader audits one object's mark and baddr words.
func checkHeader(h *heap.Heap, a heap.Addr, vs []Violation) []Violation {
	if _, fwd := h.Forwarded(a); fwd {
		vs = append(vs, Violation{Kind: BadMark, Addr: a, Detail: "forwarding tag set outside a scavenge"})
		// The mark word is a forwarding pointer, not a header: the hash
		// and mark-bit checks below would read garbage.
		return vs
	}
	if h.Marked(a) {
		vs = append(vs, Violation{Kind: BadMark, Addr: a, Detail: "GC mark bit set outside a full collection"})
	}
	if hash, hashed := h.HashOf(a); hashed && hash > 0x7FFFFFFF {
		vs = append(vs, Violation{Kind: BadMark, Addr: a, Detail: fmt.Sprintf(
			"cached hash %#x exceeds the 31-bit identity-hash range", hash)})
	}
	if h.Layout().Baddr {
		if v := h.AtomicBaddr(a); v != 0 {
			if heap.BaddrPhase(v) == 0 {
				vs = append(vs, Violation{Kind: BadBaddr, Addr: a, Detail: fmt.Sprintf(
					"nonzero baddr word %#x has zero phase: not a cleared word, not an in-flight claim", v)})
			} else if heap.BaddrRel(v) < heap.RelBias {
				vs = append(vs, Violation{Kind: BadBaddr, Addr: a, Detail: fmt.Sprintf(
					"baddr word %#x carries relative address %#x below the null bias", v, heap.BaddrRel(v))})
			}
		}
	}
	return vs
}

// Must panics with a formatted report when vs is non-empty. The GC hooks use
// it so that a corrupted heap stops the run at the first collection that
// observes it rather than corrupting further.
func Must(stage string, vs []Violation) {
	if len(vs) == 0 {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %s: %d violation(s):", stage, len(vs))
	for _, v := range vs {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	panic(b.String())
}
