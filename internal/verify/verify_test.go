package verify_test

import (
	"fmt"
	"strings"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
	"skyway/internal/verify"
	"skyway/internal/vm"
)

// The corruption-injection tests seed one precise breach per invariant class
// and assert the verifier reports exactly that violation — no more, no less.

func newRT(t testing.TB) *vm.Runtime {
	t.Helper()
	cp := klass.NewPath()
	cp.MustDefine(&klass.ClassDef{Name: "Node", Fields: []klass.FieldDef{
		{Name: "v", Kind: klass.Int64},
		{Name: "next", Kind: klass.Ref, Class: "Node"},
	}})
	rt, err := vm.NewRuntime(cp, vm.Options{Name: "verifier", Registry: registry.InProc{R: registry.NewRegistry()}})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func mustClean(t *testing.T, rt *vm.Runtime) {
	t.Helper()
	if vs := verify.Verify(rt.Heap, rt); len(vs) != 0 {
		t.Fatalf("heap not clean before corruption: %v", vs)
	}
}

// exactlyOne asserts vs holds one violation of the given kind at the given
// object address and returns it.
func exactlyOne(t *testing.T, vs []verify.Violation, kind verify.Kind, addr heap.Addr) verify.Violation {
	t.Helper()
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want exactly 1 %s: %v", len(vs), kind, vs)
	}
	if vs[0].Kind != kind {
		t.Fatalf("got violation kind %s, want %s: %v", vs[0].Kind, kind, vs[0])
	}
	if vs[0].Addr != addr {
		t.Fatalf("violation at %#x, want %#x: %v", uint64(vs[0].Addr), uint64(addr), vs[0])
	}
	return vs[0]
}

func TestVerifyFlagsFlippedKlassWord(t *testing.T) {
	rt := newRT(t)
	a := rt.MustNew(rt.MustLoad("Node"))
	p := rt.Pin(a)
	defer p.Release()
	mustClean(t, rt)

	rt.Heap.SetKlassWord(a, rt.Heap.KlassWord(a)|0x8000) // no runtime loads 32768 classes

	exactlyOne(t, verify.Verify(rt.Heap, rt), verify.BadKlass, a)
}

func TestVerifyFlagsDanglingReference(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("Node")
	f := k.FieldByName("next")
	a, b := rt.MustNew(k), rt.MustNew(k)
	pa, pb := rt.Pin(a), rt.Pin(b)
	defer pa.Release()
	defer pb.Release()
	rt.SetRef(a, f, b)
	mustClean(t, rt)

	// Point a.next into the middle of b: a mapped address, but not the
	// start of any live object.
	rt.Heap.Store(a, f.Offset, klass.Ref, uint64(b.Add(8)))

	v := exactlyOne(t, verify.Verify(rt.Heap, rt), verify.DanglingRef, a)
	if v.Off != f.Offset {
		t.Errorf("violation slot offset %d, want %d", v.Off, f.Offset)
	}
}

func TestVerifyFlagsClearedDirtyCard(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("Node")
	f := k.FieldByName("next")
	p := rt.Pin(rt.MustNew(k))
	defer p.Release()
	rt.GC.FullGC() // tenure the pinned object
	old := p.Addr()
	if !rt.Heap.InOld(old) {
		t.Fatalf("object at %#x did not tenure", uint64(old))
	}
	young := rt.MustNew(k)
	py := rt.Pin(young)
	defer py.Release()
	rt.SetRef(old, f, young) // write barrier dirties the covering card
	mustClean(t, rt)

	rt.Heap.CleanCards(rt.Heap.Old.Start, rt.Heap.Old.Used())

	v := exactlyOne(t, verify.Verify(rt.Heap, rt), verify.MissingCard, old)
	if v.Off != f.Offset {
		t.Errorf("violation slot offset %d, want %d", v.Off, f.Offset)
	}
}

func TestVerifyFlagsMalformedBaddrWord(t *testing.T) {
	rt := newRT(t)
	a := rt.MustNew(rt.MustLoad("Node"))
	p := rt.Pin(a)
	defer p.Release()
	mustClean(t, rt)

	// Nonzero baddr with a zero phase is neither a cleared word nor a
	// well-formed in-flight claim.
	rt.Heap.AtomicSetBaddr(a, heap.BaddrRelMask&0xBEEF)

	exactlyOne(t, verify.Verify(rt.Heap, rt), verify.BadBaddr, a)
}

func TestCheckChunkFlagsUnrelativizedPointer(t *testing.T) {
	rt := newRT(t)
	k := rt.MustLoad("Node")
	f := k.FieldByName("next")
	h := rt.Heap

	// Hand-build a two-image wire-form chunk: klass words hold the global
	// type ID, the only reference is a relative offset into the stream.
	base := h.AllocBuffer(2 * k.Size)
	if base == heap.Null {
		t.Fatal("buffer allocation failed")
	}
	h.ZeroWords(base, 2*k.Size)
	img1, img2 := base, base.Add(k.Size)
	h.SetKlassWord(img1, uint64(uint32(k.TID)))
	h.SetKlassWord(img2, uint64(uint32(k.TID)))
	limit := heap.RelBias + uint64(2*k.Size) // sender's flushed watermark
	h.Store(img1, f.Offset, klass.Ref, heap.RelBias+uint64(k.Size))
	chunk := verify.Chunk{Base: base, Size: 2 * k.Size, Done: 0, Limit: limit}
	if vs := verify.CheckChunk(h, rt, chunk); len(vs) != 0 {
		t.Fatalf("well-formed chunk reported violations: %v", vs)
	}

	// Corrupt: img2.next carries an absolute heap address the sender never
	// relativized — far past any plausible flushed watermark.
	h.Store(img2, f.Offset, klass.Ref, uint64(img1))

	v := exactlyOne(t, verify.CheckChunk(h, rt, chunk), verify.BadBufferRel, img2)
	if v.Off != f.Offset {
		t.Errorf("violation slot offset %d, want %d", v.Off, f.Offset)
	}
}

func TestGCVerifyHookPanicsOnCorruption(t *testing.T) {
	cp := klass.NewPath()
	cp.MustDefine(&klass.ClassDef{Name: "Node", Fields: []klass.FieldDef{
		{Name: "v", Kind: klass.Int64},
		{Name: "next", Kind: klass.Ref, Class: "Node"},
	}})
	rt, err := vm.NewRuntime(cp, vm.Options{Name: "hooked", Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Pin(rt.MustNew(rt.MustLoad("Node")))
	defer p.Release()
	rt.GC.FullGC() // clean heap: before/after hooks run silently

	rt.Heap.SetKlassWord(p.Addr(), 0xDEAD)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FullGC on a corrupted heap did not panic under Options.Verify")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, string(verify.BadKlass)) {
			t.Errorf("panic %q does not name the %s violation", msg, verify.BadKlass)
		}
	}()
	rt.GC.FullGC()
}

func TestSetEnabledSwapsProcessFlag(t *testing.T) {
	prev := verify.SetEnabled(true)
	defer verify.SetEnabled(prev)
	if !verify.Enabled() {
		t.Error("Enabled() false after SetEnabled(true)")
	}
	if !verify.SetEnabled(false) {
		t.Error("SetEnabled did not report the previous value")
	}
	if verify.Enabled() {
		t.Error("Enabled() true after SetEnabled(false)")
	}
}
