package verify

import (
	"fmt"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

// Chunk describes one Skyway input-buffer chunk that is still (fully or
// partially) in its wire form: klass words hold global type IDs and
// reference slots hold relative buffer offsets. The reader builds these from
// its chunk table; tests build them by hand around seeded corruption.
type Chunk struct {
	// Base is the chunk's address in the heap's pinned buffer space.
	Base heap.Addr
	// Size is the chunk length in bytes.
	Size uint32
	// Done is the absolutized prefix length in bytes: images in
	// [Base, Base+Done) are already live objects and are audited by Verify
	// instead.
	Done uint32
	// Limit is the exclusive upper bound of the received relative address
	// space — the sender's flushed watermark as seen by the receiver. A
	// well-formed image references only [RelBias, Limit).
	Limit uint64
}

// ChunkMeta resolves the wire-form images inside an unparsed chunk; it is
// implemented by the vm Runtime (resolving global type IDs through the
// registry view).
type ChunkMeta interface {
	// ImageSize returns the padded byte size of the buffer image at a,
	// whose klass word holds a global type ID, and reports whether that
	// type ID resolves to a class.
	ImageSize(a heap.Addr) (uint32, bool)
	// ImageRefSlots invokes fn with the byte offset of every reference
	// slot of the buffer image at a.
	ImageRefSlots(a heap.Addr, fn func(off uint32))
}

// CheckChunk audits the not-yet-absolutized suffix of one input-buffer
// chunk: every image's type ID must resolve, every image must fit the
// chunk, and — the §4.3 relativization invariant — every non-null reference
// must be a relative offset in [RelBias, Limit). An absolute heap pointer
// that was never relativized, or an offset past the flushed watermark,
// surfaces as a BadBufferRel violation here rather than as a hung stream.
func CheckChunk(h *heap.Heap, meta ChunkMeta, c Chunk) []Violation {
	var vs []Violation
	a := c.Base.Add(c.Done)
	end := c.Base.Add(c.Size)
	for a < end {
		w := h.KlassWord(a)
		size, ok := meta.ImageSize(a)
		if !ok {
			vs = append(vs, Violation{Kind: BadKlass, Addr: a, Detail: fmt.Sprintf(
				"buffer image type ID %#x does not resolve to a class; aborting chunk walk", w)})
			return vs
		}
		if size == 0 || size%klass.WordSize != 0 {
			vs = append(vs, Violation{Kind: BadWalk, Addr: a, Detail: fmt.Sprintf(
				"buffer image size %d is not a positive word multiple; aborting chunk walk", size)})
			return vs
		}
		next := a.Add(size)
		if next > end {
			vs = append(vs, Violation{Kind: BadWalk, Addr: a, Detail: fmt.Sprintf(
				"buffer image of size %d overruns its chunk end %#x", size, uint64(end))})
			return vs
		}
		//skyway:allow staleaddr — chunk images live in pinned buffer space and never move
		meta.ImageRefSlots(a, func(off uint32) {
			rel := h.Load(a, off, klass.Ref)
			if rel == 0 {
				return
			}
			if rel < heap.RelBias || rel >= c.Limit {
				vs = append(vs, Violation{Kind: BadBufferRel, Addr: a, Off: off, Detail: fmt.Sprintf(
					"reference %#x is not a relative offset in [%#x, %#x): unrelativized or past the flushed watermark",
					rel, uint64(heap.RelBias), c.Limit)})
			}
		})
		a = next
	}
	return vs
}
