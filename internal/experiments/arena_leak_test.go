package experiments

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"

	"skyway/internal/datagen"
	"skyway/internal/obs"
)

func TestArenaRegionLeak(t *testing.T) {
	cfg := DefaultSparkConfig()
	cfg.GraphScale = 0.02
	spec, _ := datagen.GraphByName("LiveJournal", cfg.GraphScale)
	g := spec.Generate()
	for _, app := range SparkApps() {
		if _, err := SparkRunInfo(app, g, "skyway-arena", cfg); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	var created, reclaimed int64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) != 2 {
			continue
		}
		v, _ := strconv.ParseInt(f[1], 10, 64)
		switch f[0] {
		case "skyway_arena_regions_total":
			created = v
		case "skyway_arena_regions_reclaimed_total":
			reclaimed = v
		}
	}
	t.Logf("regions created=%d reclaimed=%d", created, reclaimed)
	if created != reclaimed {
		t.Errorf("leaked %d arena regions", created-reclaimed)
	}
}
