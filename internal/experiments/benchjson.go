package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"skyway/internal/gc"
	"skyway/internal/metrics"
)

// BenchEntry is one figure cell of the benchmark trajectory: the per-figure
// totals plus GC pause accounting, serialized to BENCH_spark.json /
// BENCH_flink.json so CI can compare runs over time.
type BenchEntry struct {
	Figure     string `json:"figure"`          // "fig3", "fig8a", "fig8b"
	App        string `json:"app,omitempty"`   // Spark workload (WC/PR/CC/TC)
	Graph      string `json:"graph,omitempty"` // input graph name
	Query      string `json:"query,omitempty"` // Flink query (QA..QE)
	Serializer string `json:"serializer"`      // java/kryo/skyway/flink-builtin

	TotalNS int64   `json:"total_ns"` // Breakdown.Total
	SumNS   int64   `json:"sum_ns"`   // Breakdown.Sum (component sum)
	WallNS  int64   `json:"wall_ns"`  // Breakdown.Wall (0 when sequential)
	SDShare float64 `json:"sd_share"` // S/D fraction of the component sum

	ShuffleBytes int64 `json:"shuffle_bytes"`
	RemoteBytes  int64 `json:"remote_bytes"`
	Records      int64 `json:"records"`

	GCPauses      int   `json:"gc_pauses"`
	GCPauseNS     int64 `json:"gc_pause_ns"`
	GCFullGCs     int   `json:"gc_full_gcs"`
	GCPromotionFG int   `json:"gc_promotion_full_gcs"`

	BufferPeak uint64 `json:"buffer_peak,omitempty"`

	// GBps is the measured throughput for "speed" figure entries
	// (cmd/speedbench): bytes moved per wall-clock second, best of K passes.
	GBps float64 `json:"gbps,omitempty"`
}

// BenchFile is the checked-in trajectory document.
type BenchFile struct {
	Engine  string       `json:"engine"` // "spark" or "flink"
	Entries []BenchEntry `json:"entries"`
}

// Key identifies an entry across runs.
func (e BenchEntry) Key() string {
	return fmt.Sprintf("%s/%s%s%s/%s", e.Figure, e.App, e.Graph, e.Query, e.Serializer)
}

func benchEntry(figure string, bd metrics.Breakdown, gcs gc.Stats) BenchEntry {
	return BenchEntry{
		Figure:        figure,
		TotalNS:       int64(bd.Total()),
		SumNS:         int64(bd.Sum()),
		WallNS:        int64(bd.Wall),
		SDShare:       bd.SDShare(),
		ShuffleBytes:  bd.ShuffleBytes,
		RemoteBytes:   bd.RemoteBytes,
		Records:       bd.Records,
		GCPauses:      gcs.Pauses,
		GCPauseNS:     int64(gcs.TotalPause()),
		GCFullGCs:     gcs.FullGCs,
		GCPromotionFG: gcs.PromotionFullGCs,
	}
}

// SparkBenchFile assembles the Spark trajectory from Figure 3 results and
// Figure 8(a) matrix cells.
func SparkBenchFile(fig3 []Fig3Result, cells []SparkCell) BenchFile {
	f := BenchFile{Engine: "spark"}
	for _, r := range fig3 {
		e := benchEntry("fig3", r.Breakdown, r.GC)
		e.App, e.Graph, e.Serializer = "TC", "LiveJournal", r.Serializer
		f.Entries = append(f.Entries, e)
	}
	for _, c := range cells {
		e := benchEntry("fig8a", c.Breakdown, c.GC)
		e.App, e.Graph, e.Serializer = string(c.App), c.Graph, c.Serializer
		e.BufferPeak = c.BufferPeak
		f.Entries = append(f.Entries, e)
	}
	f.sort()
	return f
}

// FlinkBenchFile assembles the Flink trajectory from Figure 8(b) cells.
func FlinkBenchFile(cells []FlinkCell) BenchFile {
	f := BenchFile{Engine: "flink"}
	for _, c := range cells {
		e := benchEntry("fig8b", c.Breakdown, c.GC)
		e.Query, e.Serializer = string(c.Query), c.Serializer
		e.BufferPeak = c.BufferPeak
		f.Entries = append(f.Entries, e)
	}
	f.sort()
	return f
}

func (f *BenchFile) sort() {
	sort.Slice(f.Entries, func(i, j int) bool { return f.Entries[i].Key() < f.Entries[j].Key() })
}

// Write saves the trajectory as indented JSON.
func (f BenchFile) Write(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadBenchFile loads a trajectory document.
func ReadBenchFile(path string) (BenchFile, error) {
	var f BenchFile
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	err = json.Unmarshal(b, &f)
	return f, err
}

// Regression is one entry whose Total regressed past the tolerance.
type Regression struct {
	Key           string
	BaseNS, CurNS int64
	Ratio         float64
	Missing       bool // entry present in base but absent from cur
}

// CompareBench flags entries of cur whose Total exceeds base's by more than
// tol (e.g. 0.20 = +20%), and base entries missing from cur. Entries new in
// cur are ignored (the trajectory is allowed to grow).
func CompareBench(base, cur BenchFile, tol float64) []Regression {
	curBy := make(map[string]BenchEntry, len(cur.Entries))
	for _, e := range cur.Entries {
		curBy[e.Key()] = e
	}
	var out []Regression
	for _, b := range base.Entries {
		c, ok := curBy[b.Key()]
		if !ok {
			out = append(out, Regression{Key: b.Key(), BaseNS: b.TotalNS, Missing: true})
			continue
		}
		if b.TotalNS <= 0 {
			continue
		}
		ratio := float64(c.TotalNS) / float64(b.TotalNS)
		if ratio > 1+tol {
			out = append(out, Regression{Key: b.Key(), BaseNS: b.TotalNS, CurNS: c.TotalNS, Ratio: ratio})
		}
	}
	return out
}
