package experiments

import (
	"math"
	"testing"

	"skyway/internal/batch"
	"skyway/internal/datagen"
	"skyway/internal/netsim"
)

func tinySparkConfig() SparkConfig {
	cfg := DefaultSparkConfig()
	cfg.GraphScale = 0.02
	cfg.PRIters = 2
	cfg.CCIters = 3
	return cfg
}

func TestRunJSBSSmall(t *testing.T) {
	results, err := RunJSBS(60, netsim.Paper1GbE())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 17 {
		t.Fatalf("%d libraries", len(results))
	}
	seen := make(map[string]JSBSResult)
	for _, r := range results {
		if r.Ser <= 0 || r.Deser <= 0 || r.Bytes <= 0 {
			t.Errorf("%s has empty measurements: %+v", r.Lib, r)
		}
		seen[r.Lib] = r
	}
	for _, lib := range []string{"skyway", "kryo", "kryo-manual", "colfer", "java"} {
		if _, ok := seen[lib]; !ok {
			t.Errorf("library %s missing", lib)
		}
	}
	// Headline shape: Skyway moves more bytes than the compact codecs but
	// has the fastest deserialization.
	if seen["skyway"].Bytes <= seen["kryo"].Bytes {
		t.Error("skyway bytes not larger than kryo bytes")
	}
	for lib, r := range seen {
		if lib != "skyway" && r.Deser < seen["skyway"].Deser {
			t.Logf("note: %s deser (%v) beat skyway (%v) in this tiny run", lib, r.Deser, seen["skyway"].Deser)
		}
	}
}

func TestSparkRunDigestsAgree(t *testing.T) {
	cfg := tinySparkConfig()
	spec, err := datagen.GraphByName("LiveJournal", cfg.GraphScale)
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Generate()
	for _, app := range SparkApps() {
		var want float64
		for i, ser := range SparkSerializers() {
			bd, digest, peak, err := SparkRun(app, g, ser, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", app, ser, err)
			}
			if bd.Records == 0 {
				t.Errorf("%s/%s shuffled nothing", app, ser)
			}
			if peak == 0 {
				t.Errorf("%s/%s peak heap not sampled", app, ser)
			}
			if i == 0 {
				want = digest
			} else if digest != want {
				t.Errorf("%s: %s digest %v != %v", app, ser, digest, want)
			}
		}
	}
}

func TestFig3SDShare(t *testing.T) {
	res, err := RunFig3(tinySparkConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d serializers", len(res))
	}
	for _, r := range res {
		// §2.2: S/D takes a substantial share under both serializers.
		if r.Breakdown.SDShare() < 0.10 {
			t.Errorf("%s S/D share %.1f%% implausibly low", r.Serializer, r.Breakdown.SDShare()*100)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	cfg := tinySparkConfig()
	spec, _ := datagen.GraphByName("LiveJournal", cfg.GraphScale)
	cells, err := RunSparkMatrix(cfg, []datagen.GraphSpec{spec}, []SparkApp{PR, TC})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*len(SparkSerializers()) {
		t.Fatalf("%d cells", len(cells))
	}
	sums := Table2(cells)
	if sums["kryo"].Len() != 2 || sums["skyway"].Len() != 2 {
		t.Fatalf("summary lens: kryo=%d skyway=%d", sums["kryo"].Len(), sums["skyway"].Len())
	}
}

func TestMemOverheadPositive(t *testing.T) {
	res, err := RunMemOverhead(tinySparkConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d apps", len(res))
	}
	for _, r := range res {
		// The baddr word adds 8 bytes per object: overhead must be
		// positive and below 100%.
		if r.OverheadFraction <= 0 || r.OverheadFraction > 1 {
			t.Errorf("%s overhead %.1f%% implausible", r.App, r.OverheadFraction*100)
		}
	}
}

func TestExtraBytesComposition(t *testing.T) {
	eb, err := RunExtraBytes(tinySparkConfig())
	if err != nil {
		t.Fatal(err)
	}
	if eb.SkywayBytes <= eb.KryoBytes {
		t.Error("skyway not larger than kryo")
	}
	if eb.HeaderShare <= 0 {
		t.Error("no header share attributed")
	}
	// Headers dominate the extra bytes (paper: 51%).
	if eb.HeaderShare < eb.PtrShare {
		t.Errorf("headers (%.2f) below pointers (%.2f)", eb.HeaderShare, eb.PtrShare)
	}
}

func TestFlinkMatrixAndTable4(t *testing.T) {
	cfg := DefaultFlinkConfig()
	cfg.SF = 0.2
	cells, err := RunFlinkMatrix(cfg, []batch.Query{batch.QA, batch.QE})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("%d cells", len(cells))
	}
	digests := make(map[batch.Query]float64)
	for _, c := range cells {
		if prev, ok := digests[c.Query]; ok && prev != c.Digest {
			t.Errorf("%s digests differ across serializers", c.Query)
		}
		digests[c.Query] = c.Digest
	}
	sum := Table4(cells)
	if sum.Len() != 2 {
		t.Fatalf("Table4 len %d", sum.Len())
	}
	row := sum.Row()
	if row == "" || math.IsNaN(0) {
		t.Error("empty Table 4 row")
	}
}

func TestSkywayCompactSparkSerializer(t *testing.T) {
	cfg := tinySparkConfig()
	spec, err := datagen.GraphByName("LiveJournal", cfg.GraphScale)
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Generate()
	bd1, d1, _, err := SparkRun(PR, g, "skyway", cfg)
	if err != nil {
		t.Fatal(err)
	}
	bd2, d2, _, err := SparkRun(PR, g, "skyway-compact", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("compact digest %v != standard %v", d2, d1)
	}
	if bd2.ShuffleBytes >= bd1.ShuffleBytes {
		t.Errorf("compact bytes %d not below standard %d", bd2.ShuffleBytes, bd1.ShuffleBytes)
	}
}
