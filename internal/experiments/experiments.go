// Package experiments contains the reproduction harnesses for every table
// and figure in the paper's evaluation (§2.2, §5), shared by the cmd/
// binaries and the repository's benchmarks. Each experiment returns
// structured results; formatting lives with the callers.
package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"time"

	"skyway/internal/batch"
	"skyway/internal/dataflow"
	"skyway/internal/datagen"
	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/metrics"
	"skyway/internal/netsim"
	"skyway/internal/registry"
	"skyway/internal/serial"
	"skyway/internal/vm"
)

// --- Figure 7: JSBS ----------------------------------------------------------

// JSBSResult is one bar of Figure 7.
type JSBSResult struct {
	Lib   string
	Ser   time.Duration // total serialization time
	Deser time.Duration // total deserialization time
	Net   time.Duration // modelled broadcast time
	Bytes int64         // serialized volume
}

// Total returns the bar height.
func (r JSBSResult) Total() time.Duration { return r.Ser + r.Deser + r.Net }

// jsbsEnv is the JSBS cluster scaffolding: one sender plus a factory for
// fresh receiver runtimes attached to the same registry and classpath.
type jsbsEnv struct {
	cp  *klass.Path
	reg *registry.Registry
	snd *vm.Runtime
}

func newJSBSEnv() (*jsbsEnv, error) {
	cp := klass.NewPath()
	datagen.MediaClasses(cp)
	env := &jsbsEnv{cp: cp, reg: registry.NewRegistry()}
	snd, err := vm.NewRuntime(cp, vm.Options{Name: "jsbs-snd", Heap: jsbsHeap(), Registry: registry.InProc{R: env.reg}})
	if err != nil {
		return nil, err
	}
	env.snd = snd
	return env, nil
}

func jsbsHeap() heap.Config {
	big := heap.DefaultConfig()
	big.EdenSize = 64 << 20
	big.OldSize = 256 << 20
	big.BufferSize = 256 << 20
	return big
}

func (e *jsbsEnv) newReceiver(name string) (*vm.Runtime, error) {
	return vm.NewRuntime(e.cp, vm.Options{Name: name, Heap: jsbsHeap(), Registry: registry.InProc{R: e.reg}})
}

// JSBSCodecs returns the Figure 7 library lineup (Skyway first), extended
// with the compact-headers mode (the paper's §5.2 future work).
func JSBSCodecs(snd, rcv *vm.Runtime) []serial.Codec {
	reg := serial.NewRegistration(datagen.MediaClassNames()...)
	return []serial.Codec{
		serial.NewSkywayCodec(snd, rcv),
		serial.NewSkywayCompactCodec(snd, rcv),
		serial.ColferCodec(reg),
		serial.ProtostuffCodec(reg),
		serial.DatakernelCodec(reg),
		serial.ProtostuffRuntimeCodec(reg),
		serial.KryoManualCodec(reg),
		serial.KryoOptCodec(reg),
		serial.KryoCodec(reg),
		serial.ThriftCodec(reg),
		serial.FSTCodec(),
		serial.AvroGenericCodec(reg),
		serial.WoblyCodec(reg),
		serial.SmileCodec(),
		serial.CBORCodec(),
		serial.JavaCodec(),
		serial.JsonLikeCodec(),
	}
}

// RunJSBS reproduces Figure 7: n media-content graphs are serialized,
// "broadcast" to the other nodes of a 5-node cluster (network modelled),
// and deserialized; per-library totals are returned sorted fastest-first.
func RunJSBS(n int, model netsim.CostModel) ([]JSBSResult, error) {
	env, err := newJSBSEnv()
	if err != nil {
		return nil, err
	}
	snd := env.snd
	gen := datagen.NewMediaGen(snd, 7)
	roots, release, err := gen.Batch(n)
	if err != nil {
		return nil, err
	}
	defer release()

	// 5-node cluster, switched full-duplex fabric: the four per-peer
	// unicasts proceed concurrently (distinct receiver NICs; the switch
	// is non-blocking), so a broadcast round costs one transmission time.
	// This matches the paper's observation that shipping 50% more bytes
	// barely moves the network cost (§1, §5.1).

	var out []JSBSResult
	for li := range JSBSCodecs(snd, snd) {
		// Fresh receiver per library: no codec inherits another's heap
		// garbage or GC debt.
		rcv, err := env.newReceiver(fmt.Sprintf("jsbs-rcv-%d", li))
		if err != nil {
			return nil, err
		}
		// JSBS serializes each record through a fresh stream (a new
		// ObjectOutputStream per operation), so stream-scoped state —
		// the Java serializer's class descriptors above all — is paid
		// per record, as in the original benchmark. Each library runs
		// three repetitions; the best one is reported (JSBS likewise
		// repeats until timings stabilize).
		const reps = 5
		codec := JSBSCodecs(snd, rcv)[li]
		best := JSBSResult{Ser: 1 << 62, Deser: 1 << 62}
		for rep := 0; rep < reps; rep++ {
			// A repetition is a new shuffle phase: without the phase
			// bump the sender's baddr words would say "already sent".
			if s, ok := codec.(interface{ ShuffleStartAll() }); ok {
				s.ShuffleStartAll()
			}
			// Collect Go-side garbage outside the timed sections so
			// background GC does not preempt a measurement (the
			// harness host may be a single-core machine).
			runtime.GC()
			payloads := make([][]byte, n)
			var total int64
			start := time.Now()
			for i, r := range roots {
				var buf bytes.Buffer
				enc := codec.NewEncoder(snd, &buf)
				if err := enc.Write(r); err != nil {
					return nil, fmt.Errorf("%s: %w", codec.Name(), err)
				}
				if err := enc.Flush(); err != nil {
					return nil, err
				}
				payloads[i] = buf.Bytes()
				total += int64(len(payloads[i]))
			}
			ser := time.Since(start)

			start = time.Now()
			for i := range payloads {
				dec := codec.NewDecoder(rcv, bytes.NewReader(payloads[i]))
				if _, err := dec.Read(); err != nil {
					return nil, fmt.Errorf("%s: record %d: %w", codec.Name(), i, err)
				}
			}
			deser := time.Since(start)

			if ser < best.Ser {
				best.Ser = ser
			}
			if deser < best.Deser {
				best.Deser = deser
			}
			best.Lib = codec.Name()
			best.Net = model.NetTime(total)
			best.Bytes = total
			// Clear receiver-side garbage between repetitions.
			rcv.GC.FullGC()
		}
		out = append(out, best)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total() < out[j].Total() })
	return out, nil
}

// --- Spark experiments (Figures 3, 8(a), Tables 1-2, §5.2 extras) -------------

// SparkApp names one of the four workloads.
type SparkApp string

// The Spark workloads of §5.2.
const (
	WC SparkApp = "WC"
	PR SparkApp = "PR"
	CC SparkApp = "CC"
	TC SparkApp = "TC"
)

// SparkApps lists the workloads in report order.
func SparkApps() []SparkApp { return []SparkApp{WC, PR, CC, TC} }

// SparkSerializers lists the Figure 8(a) serializers in report order. The
// skyway-arena column is the lazy-decode extension (DESIGN.md "Arena & lazy
// absolutization"): same wire bytes as skyway, received chunks held off-heap,
// so its gc_pauses row in BENCH_spark.json tracks the arena's GC payoff.
func SparkSerializers() []string { return []string{"java", "kryo", "skyway", "skyway-arena"} }

// SparkConfig parameterizes the Spark matrix.
type SparkConfig struct {
	Workers    int
	GraphScale float64 // 1.0 = 1/100 of the paper's graph sizes
	PRIters    int
	CCIters    int
	Model      netsim.CostModel
	// Layout overrides the executor heap layout (memory-overhead
	// experiment); zero value keeps the default (baddr on).
	Layout *klass.Layout
	// HeapMB scales each executor heap (eden ≈ HeapMB/8, old ≈ HeapMB/2,
	// buffers ≈ HeapMB/2); zero keeps dataflow.DefaultWorkerHeap. The
	// shuffle-heavy TriangleCounting runs need room proportional to the
	// graph scale, like the paper's 20-30 GB executor heaps.
	HeapMB int
	// Parallel is dataflow.Config.ParallelTasks: how many executor tasks
	// run concurrently per stage. 0/1 keeps the sequential harness (0 still
	// honors SKYWAY_PARALLEL); -1 means one goroutine per executor.
	Parallel int
}

// DefaultSparkConfig returns laptop-sized parameters.
func DefaultSparkConfig() SparkConfig {
	return SparkConfig{Workers: 3, GraphScale: 0.15, PRIters: 3, CCIters: 5, Model: netsim.Paper1GbE()}
}

func newSparkCluster(cfg SparkConfig, codecName string) (*dataflow.Cluster, error) {
	cp := klass.NewPath()
	dataflow.WorkloadClasses(cp)
	hc := dataflow.DefaultWorkerHeap()
	if cfg.HeapMB > 0 {
		mb := uint64(cfg.HeapMB) << 20
		hc.EdenSize = mb / 8
		hc.SurvivorSize = mb / 64
		hc.OldSize = mb / 2
		hc.BufferSize = mb / 2
	}
	if cfg.Layout != nil {
		hc.Layout = *cfg.Layout
	}
	c, err := dataflow.NewCluster(cp, dataflow.Config{
		Workers: cfg.Workers, Heap: hc, Model: cfg.Model, ParallelTasks: cfg.Parallel,
	}, nil)
	if err != nil {
		return nil, err
	}
	switch codecName {
	case "java":
		c.Codec = serial.JavaCodec()
	case "kryo":
		c.Codec = serial.KryoCodec(dataflow.WorkloadRegistration())
	case "skyway", "skyway-compact", "skyway-arena":
		rts := make([]*vm.Runtime, 0, len(c.Execs)+1)
		rts = append(rts, c.Driver)
		for _, ex := range c.Execs {
			rts = append(rts, ex.RT)
		}
		sk := serial.NewSkywayCodec(rts...)
		sk.Compact = codecName == "skyway-compact"
		sk.Arena = codecName == "skyway-arena"
		c.Codec = sk
	default:
		return nil, fmt.Errorf("experiments: unknown serializer %q", codecName)
	}
	return c, nil
}

// RunInfo is the full result of one experiment cell: the cost breakdown
// plus the observability extras the benchmark trajectory records.
type RunInfo struct {
	Breakdown  metrics.Breakdown
	Digest     float64
	PeakHeap   uint64   // peak executor heap usage
	BufferPeak uint64   // peak input-buffer usage (Skyway receive side)
	GC         gc.Stats // pause and promotion totals across the cluster
}

// SparkRun executes one (app, graph, serializer) cell and returns the
// breakdown, a result digest (codec-independent) and the cluster's peak
// executor heap usage.
func SparkRun(app SparkApp, g *datagen.Graph, codecName string, cfg SparkConfig) (metrics.Breakdown, float64, uint64, error) {
	info, err := SparkRunInfo(app, g, codecName, cfg)
	return info.Breakdown, info.Digest, info.PeakHeap, err
}

// SparkRunInfo is SparkRun returning the full RunInfo, including the
// cluster's GC statistics and buffer high-water mark.
func SparkRunInfo(app SparkApp, g *datagen.Graph, codecName string, cfg SparkConfig) (RunInfo, error) {
	// Start every cell from a clean Go heap so one cell's garbage does
	// not become background GC work inside the next cell's timers.
	runtime.GC()
	c, err := newSparkCluster(cfg, codecName)
	if err != nil {
		return RunInfo{}, err
	}
	var bd metrics.Breakdown
	var digest float64
	switch app {
	case WC:
		lines := datagen.TextSpec{Lines: g.N * 2, WordsPerLine: 12, Vocabulary: 20000, Seed: g.Spec.Seed}.Generate()
		parts := make([][]string, cfg.Workers)
		for i, l := range lines {
			parts[i%cfg.Workers] = append(parts[i%cfg.Workers], l)
		}
		var total int64
		bd, total, err = dataflow.RunWordCount(c, parts)
		digest = float64(total)
	case PR:
		var mass float64
		bd, mass, err = dataflow.RunPageRank(c, g, cfg.PRIters)
		digest = mass
	case CC:
		var comps int
		bd, comps, err = dataflow.RunConnectedComponents(c, g, cfg.CCIters)
		digest = float64(comps)
	case TC:
		var tris int64
		bd, tris, err = dataflow.RunTriangleCounting(c, g)
		digest = float64(tris)
	default:
		err = fmt.Errorf("experiments: unknown app %q", app)
	}
	return RunInfo{
		Breakdown:  bd,
		Digest:     digest,
		PeakHeap:   c.PeakHeap,
		BufferPeak: c.BufferPeak(),
		GC:         c.GCStats(),
	}, err
}

// SparkCell is one bar of Figure 8(a).
type SparkCell struct {
	App        SparkApp
	Graph      string
	Serializer string
	Breakdown  metrics.Breakdown
	Digest     float64
	GC         gc.Stats
	BufferPeak uint64
}

// RunSparkMatrix reproduces Figure 8(a): every app × graph × serializer.
func RunSparkMatrix(cfg SparkConfig, graphs []datagen.GraphSpec, apps []SparkApp) ([]SparkCell, error) {
	var cells []SparkCell
	for _, spec := range graphs {
		g := spec.Generate()
		for _, app := range apps {
			for _, ser := range SparkSerializers() {
				info, err := SparkRunInfo(app, g, ser, cfg)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", app, spec.Name, ser, err)
				}
				cells = append(cells, SparkCell{
					App: app, Graph: spec.Name, Serializer: ser,
					Breakdown: info.Breakdown, Digest: info.Digest,
					GC: info.GC, BufferPeak: info.BufferPeak,
				})
			}
		}
	}
	return cells, nil
}

// Table2 aggregates Figure 8(a) cells into the Table 2 normalized summary:
// per serializer, each (app, graph) run normalized to the Java serializer.
func Table2(cells []SparkCell) map[string]*metrics.Summary {
	base := make(map[string]metrics.Breakdown) // app/graph -> java breakdown
	for _, c := range cells {
		if c.Serializer == "java" {
			base[string(c.App)+"/"+c.Graph] = c.Breakdown
		}
	}
	out := map[string]*metrics.Summary{"kryo": {}, "skyway": {}}
	for _, c := range cells {
		if c.Serializer == "java" {
			continue
		}
		b, ok := base[string(c.App)+"/"+c.Graph]
		if !ok {
			continue
		}
		s, ok := out[c.Serializer]
		if !ok {
			// Extension columns (skyway-arena) are not part of the paper's
			// Table 2 comparison.
			continue
		}
		s.Add(metrics.Normalize(c.Breakdown, b))
	}
	return out
}

// Fig3Result is the §2.2 motivation experiment: TriangleCounting over the
// LiveJournal-shaped graph under Kryo and the Java serializer.
type Fig3Result struct {
	Serializer string
	Breakdown  metrics.Breakdown
	GC         gc.Stats
}

// RunFig3 reproduces Figure 3(a)/(b).
func RunFig3(cfg SparkConfig) ([]Fig3Result, error) {
	spec, err := datagen.GraphByName("LiveJournal", cfg.GraphScale)
	if err != nil {
		return nil, err
	}
	g := spec.Generate()
	var out []Fig3Result
	for _, ser := range []string{"kryo", "java"} {
		info, err := SparkRunInfo(TC, g, ser, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig3Result{Serializer: ser, Breakdown: info.Breakdown, GC: info.GC})
	}
	return out, nil
}

// MemOverheadResult is the §5.2 memory-overhead experiment for one app.
type MemOverheadResult struct {
	App              SparkApp
	PeakWithBaddr    uint64
	PeakWithoutBaddr uint64
	OverheadFraction float64
}

// RunMemOverhead measures peak executor heap usage with and without the
// baddr header word, running each app under Kryo (the serializer must not
// need baddr so the no-baddr layout stays valid).
func RunMemOverhead(cfg SparkConfig) ([]MemOverheadResult, error) {
	spec, err := datagen.GraphByName("LiveJournal", cfg.GraphScale)
	if err != nil {
		return nil, err
	}
	g := spec.Generate()
	var out []MemOverheadResult
	for _, app := range SparkApps() {
		with := cfg
		withLayout := klass.Layout{Baddr: true}
		with.Layout = &withLayout
		_, _, peakWith, err := SparkRun(app, g, "kryo", with)
		if err != nil {
			return nil, err
		}
		without := cfg
		withoutLayout := klass.Layout{Baddr: false}
		without.Layout = &withoutLayout
		_, _, peakWithout, err := SparkRun(app, g, "kryo", without)
		if err != nil {
			return nil, err
		}
		out = append(out, MemOverheadResult{
			App:              app,
			PeakWithBaddr:    peakWith,
			PeakWithoutBaddr: peakWithout,
			OverheadFraction: float64(peakWith)/float64(peakWithout) - 1,
		})
	}
	return out, nil
}

// ExtraBytes reports the byte-composition analysis of §5.2: what Skyway's
// extra bytes consist of (headers, padding, pointers).
type ExtraBytes struct {
	SkywayBytes, KryoBytes          int64
	HeaderShare, PadShare, PtrShare float64
}

// RunExtraBytes measures Skyway's byte overhead vs Kryo on PageRank and
// decomposes the Skyway stream.
func RunExtraBytes(cfg SparkConfig) (ExtraBytes, error) {
	spec, err := datagen.GraphByName("LiveJournal", cfg.GraphScale)
	if err != nil {
		return ExtraBytes{}, err
	}
	g := spec.Generate()

	kbd, _, _, err := SparkRun(PR, g, "kryo", cfg)
	if err != nil {
		return ExtraBytes{}, err
	}

	c, err := newSparkCluster(cfg, "skyway")
	if err != nil {
		return ExtraBytes{}, err
	}
	sbd, _, err2 := dataflow.RunPageRank(c, g, cfg.PRIters)
	if err2 != nil {
		return ExtraBytes{}, err2
	}
	sky := c.Codec.(*serial.SkywayCodec)
	var stats struct{ hdr, pad, ptr, total uint64 }
	for _, ex := range c.Execs {
		s := sky.ServiceFor(ex.RT).Snapshot()
		stats.hdr += s.HeaderBytes
		stats.pad += s.PaddingBytes
		stats.ptr += s.PointerBytes
		stats.total += s.BytesSent
	}
	extra := float64(sbd.ShuffleBytes - kbd.ShuffleBytes)
	if extra <= 0 {
		extra = 1
	}
	return ExtraBytes{
		SkywayBytes: sbd.ShuffleBytes,
		KryoBytes:   kbd.ShuffleBytes,
		HeaderShare: float64(stats.hdr) / extra,
		PadShare:    float64(stats.pad) / extra,
		PtrShare:    float64(stats.ptr) / extra,
	}, nil
}

// --- Flink experiments (Figure 8(b), Tables 3-4) -------------------------------

// FlinkCell is one bar of Figure 8(b).
type FlinkCell struct {
	Query      batch.Query
	Serializer string
	Breakdown  metrics.Breakdown
	Digest     float64
	GC         gc.Stats
	BufferPeak uint64
}

// FlinkConfig parameterizes the Flink matrix.
type FlinkConfig struct {
	Workers int
	SF      float64
	Model   netsim.CostModel
}

// DefaultFlinkConfig returns laptop-sized parameters.
func DefaultFlinkConfig() FlinkConfig {
	return FlinkConfig{Workers: 3, SF: 1.0, Model: netsim.Paper1GbE()}
}

// RunFlinkMatrix reproduces Figure 8(b): QA–QE under the built-in
// serializers and Skyway.
func RunFlinkMatrix(cfg FlinkConfig, queries []batch.Query) ([]FlinkCell, error) {
	gen := datagen.GenTPCH(cfg.SF, 2024)
	var cells []FlinkCell
	for _, mode := range []string{"flink-builtin", "skyway"} {
		factory := batch.BuiltinFactory()
		if mode == "skyway" {
			factory = batch.SkywayFactory()
		}
		for _, q := range queries {
			cp := klass.NewPath()
			batch.TPCHClasses(cp)
			c, err := batch.NewCluster(cp, batch.Config{Workers: cfg.Workers, Model: cfg.Model}, factory)
			if err != nil {
				return nil, err
			}
			db, err := batch.Load(c, gen)
			if err != nil {
				return nil, err
			}
			bd, digest, err := batch.Run(c, q, db)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", mode, q, err)
			}
			db.Free()
			cells = append(cells, FlinkCell{
				Query: q, Serializer: mode, Breakdown: bd, Digest: digest,
				GC: c.GCStats(), BufferPeak: c.BufferPeak(),
			})
		}
	}
	return cells, nil
}

// Table4 aggregates Figure 8(b) cells into the Table 4 normalized summary
// (Skyway vs the built-in serializers).
func Table4(cells []FlinkCell) *metrics.Summary {
	base := make(map[batch.Query]metrics.Breakdown)
	for _, c := range cells {
		if c.Serializer == "flink-builtin" {
			base[c.Query] = c.Breakdown
		}
	}
	sum := &metrics.Summary{}
	for _, c := range cells {
		if c.Serializer != "skyway" {
			continue
		}
		if b, ok := base[c.Query]; ok {
			sum.Add(metrics.Normalize(c.Breakdown, b))
		}
	}
	return sum
}
