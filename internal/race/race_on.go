//go:build race

// Package race exposes whether the Go race detector is compiled in, mirroring
// the runtime's internal/race. Timing-sensitive tests consult Enabled: the
// detector's slowdown is non-uniform (heaviest on memory-copy-dense paths), so
// wall-clock comparisons on an instrumented build measure the instrumentation.
package race

// Enabled reports that this binary was built with -race.
const Enabled = true
