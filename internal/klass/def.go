package klass

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// FieldDef declares one instance field in a ClassDef.
type FieldDef struct {
	Name string
	Kind Kind
	// Class names the static type of a Ref field (informational; used by
	// schema-compiled serializers and by array element typing).
	Class string
	// Transient marks the field as excluded from conventional
	// serialization, like Java's transient keyword. Serializer baselines
	// skip it; Skyway's whole-object copy ships it anyway — receivers
	// that need Java-like reset semantics use the §3.3 field-update API.
	Transient bool
}

// ClassDef is the portable description of a class — the equivalent of a
// class file on the cluster classpath. Definitions carry no layout; layout
// is computed per runtime when the class is loaded, because header geometry
// may differ between runtimes (§3.1 heterogeneous clusters).
type ClassDef struct {
	Name   string
	Super  string // superclass name; "" means java.lang.Object
	Fields []FieldDef
}

// Validate checks structural well-formedness of the definition.
func (d *ClassDef) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("klass: class definition with empty name")
	}
	if strings.HasSuffix(d.Name, "[]") {
		return fmt.Errorf("klass: %s: array classes are implicit, do not define them", d.Name)
	}
	seen := make(map[string]bool, len(d.Fields))
	for _, f := range d.Fields {
		if f.Name == "" {
			return fmt.Errorf("klass: %s: field with empty name", d.Name)
		}
		if seen[f.Name] {
			return fmt.Errorf("klass: %s: duplicate field %q", d.Name, f.Name)
		}
		seen[f.Name] = true
		if f.Kind == Invalid || f.Kind > Ref {
			return fmt.Errorf("klass: %s.%s: invalid kind", d.Name, f.Name)
		}
		if f.Kind == Ref && f.Class == "" {
			return fmt.Errorf("klass: %s.%s: reference field needs a class", d.Name, f.Name)
		}
		if f.Kind != Ref && f.Class != "" {
			return fmt.Errorf("klass: %s.%s: primitive field must not name a class", d.Name, f.Name)
		}
	}
	return nil
}

// Path is a set of class definitions shared by every node in the cluster —
// the classpath. It is safe for concurrent use.
type Path struct {
	mu   sync.RWMutex
	defs map[string]*ClassDef
}

// NewPath returns an empty classpath.
func NewPath() *Path { return &Path{defs: make(map[string]*ClassDef)} }

// Define adds definitions to the classpath. Redefining a name is an error.
func (p *Path) Define(defs ...*ClassDef) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, d := range defs {
		if err := d.Validate(); err != nil {
			return err
		}
		if _, dup := p.defs[d.Name]; dup {
			return fmt.Errorf("klass: class %s already defined", d.Name)
		}
		p.defs[d.Name] = d
	}
	return nil
}

// MustDefine is Define but panics on error; intended for static schemas.
func (p *Path) MustDefine(defs ...*ClassDef) *Path {
	if err := p.Define(defs...); err != nil {
		panic(err)
	}
	return p
}

// Lookup returns the definition for name, or nil if absent.
func (p *Path) Lookup(name string) *ClassDef {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.defs[name]
}

// Names returns all defined class names, sorted.
func (p *Path) Names() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, 0, len(p.defs))
	for n := range p.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ArrayName returns the implicit class name of an array type, e.g.
// ArrayName(Int32, "") == "int[]" and ArrayName(Ref, "Date") == "Date[]".
func ArrayName(elem Kind, elemClass string) string {
	if elem == Ref {
		return elemClass + "[]"
	}
	return elem.String() + "[]"
}

// ParseArrayName splits an array class name into its element type.
// ok is false if name is not an array class name.
func ParseArrayName(name string) (elem Kind, elemClass string, ok bool) {
	if !strings.HasSuffix(name, "[]") {
		return Invalid, "", false
	}
	base := strings.TrimSuffix(name, "[]")
	switch base {
	case "boolean":
		return Bool, "", true
	case "byte":
		return Int8, "", true
	case "short":
		return Int16, "", true
	case "char":
		return Char, "", true
	case "int":
		return Int32, "", true
	case "float":
		return Float32, "", true
	case "long":
		return Int64, "", true
	case "double":
		return Float64, "", true
	default:
		return Ref, base, true
	}
}
