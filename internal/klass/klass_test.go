package klass

import (
	"testing"
	"testing/quick"
)

func TestKindSizes(t *testing.T) {
	want := map[Kind]uint32{
		Bool: 1, Int8: 1, Int16: 2, Char: 2,
		Int32: 4, Float32: 4, Int64: 8, Float64: 8, Ref: 8,
	}
	for k, sz := range want {
		if got := k.Size(); got != sz {
			t.Errorf("%v.Size() = %d, want %d", k, got, sz)
		}
	}
	if Invalid.Size() != 0 {
		t.Errorf("Invalid.Size() = %d, want 0", Invalid.Size())
	}
}

func TestClassDefValidate(t *testing.T) {
	cases := []struct {
		name string
		def  ClassDef
		ok   bool
	}{
		{"empty name", ClassDef{}, false},
		{"array name", ClassDef{Name: "int[]"}, false},
		{"plain", ClassDef{Name: "A", Fields: []FieldDef{{Name: "x", Kind: Int32}}}, true},
		{"dup field", ClassDef{Name: "A", Fields: []FieldDef{{Name: "x", Kind: Int32}, {Name: "x", Kind: Int64}}}, false},
		{"ref without class", ClassDef{Name: "A", Fields: []FieldDef{{Name: "r", Kind: Ref}}}, false},
		{"prim with class", ClassDef{Name: "A", Fields: []FieldDef{{Name: "x", Kind: Int32, Class: "B"}}}, false},
		{"ref with class", ClassDef{Name: "A", Fields: []FieldDef{{Name: "r", Kind: Ref, Class: "B"}}}, true},
	}
	for _, c := range cases {
		err := c.def.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPathDefineAndLookup(t *testing.T) {
	p := NewPath()
	if err := p.Define(&ClassDef{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := p.Define(&ClassDef{Name: "A"}); err == nil {
		t.Fatal("duplicate Define succeeded")
	}
	if p.Lookup("A") == nil {
		t.Fatal("Lookup(A) = nil")
	}
	if p.Lookup("B") != nil {
		t.Fatal("Lookup(B) != nil")
	}
}

func TestArrayNames(t *testing.T) {
	cases := []struct {
		elem  Kind
		class string
		want  string
	}{
		{Int32, "", "int[]"},
		{Int64, "", "long[]"},
		{Char, "", "char[]"},
		{Ref, "com.example.Date", "com.example.Date[]"},
	}
	for _, c := range cases {
		name := ArrayName(c.elem, c.class)
		if name != c.want {
			t.Errorf("ArrayName(%v,%q) = %q, want %q", c.elem, c.class, name, c.want)
		}
		elem, class, ok := ParseArrayName(name)
		if !ok || elem != c.elem || class != c.class {
			t.Errorf("ParseArrayName(%q) = (%v,%q,%v)", name, elem, class, ok)
		}
	}
	if _, _, ok := ParseArrayName("NotAnArray"); ok {
		t.Error("ParseArrayName accepted a non-array name")
	}
}

func mustResolve(t *testing.T, def *ClassDef, super *Klass, l Layout) *Klass {
	t.Helper()
	k, err := ResolveLayout(def, super, l)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestLayoutPacking(t *testing.T) {
	l := Layout{Baddr: true}
	def := &ClassDef{Name: "P", Fields: []FieldDef{
		{Name: "b", Kind: Int8},
		{Name: "l", Kind: Int64},
		{Name: "s", Kind: Int16},
		{Name: "i", Kind: Int32},
		{Name: "r", Kind: Ref, Class: "P"},
	}}
	k := mustResolve(t, def, nil, l)
	// Largest-first: l(8) r(8) i(4) s(2) b(1) starting at header end 24.
	offs := map[string]uint32{"l": 24, "r": 32, "i": 40, "s": 44, "b": 46}
	for name, want := range offs {
		if got := k.FieldByName(name).Offset; got != want {
			t.Errorf("field %s offset = %d, want %d", name, got, want)
		}
	}
	if k.Size != 48 { // 47 used, padded to 48
		t.Errorf("Size = %d, want 48", k.Size)
	}
	if len(k.RefOffsets) != 1 || k.RefOffsets[0] != 32 {
		t.Errorf("RefOffsets = %v", k.RefOffsets)
	}
}

func TestLayoutInheritance(t *testing.T) {
	l := Layout{Baddr: true}
	sup := mustResolve(t, &ClassDef{Name: "S", Fields: []FieldDef{{Name: "x", Kind: Int32}}}, nil, l)
	sub := mustResolve(t, &ClassDef{Name: "T", Super: "S", Fields: []FieldDef{{Name: "y", Kind: Int64}}}, sup, l)
	if sub.FieldByName("x").Offset != sup.FieldByName("x").Offset {
		t.Error("inherited field moved")
	}
	if sub.FieldByName("y").Offset < sup.Size {
		t.Error("subclass field overlaps superclass suffix")
	}
	if sub.Super != sup {
		t.Error("Super link wrong")
	}
}

func TestLayoutWithoutBaddr(t *testing.T) {
	with := Layout{Baddr: true}
	without := Layout{Baddr: false}
	def := &ClassDef{Name: "A", Fields: []FieldDef{{Name: "x", Kind: Int64}}}
	kw := mustResolve(t, def, nil, with)
	ko := mustResolve(t, def, nil, without)
	if kw.Size-ko.Size != 8 {
		t.Errorf("baddr overhead = %d, want 8", kw.Size-ko.Size)
	}
	if without.OffBaddr() != -1 {
		t.Errorf("OffBaddr without baddr = %d, want -1", without.OffBaddr())
	}
	if with.ArrayHeaderSize() != 32 || without.ArrayHeaderSize() != 24 {
		t.Errorf("array header sizes = %d/%d", with.ArrayHeaderSize(), without.ArrayHeaderSize())
	}
}

func TestArrayKlassSizes(t *testing.T) {
	l := Layout{Baddr: true}
	ka, err := ResolveArray("int[]", l)
	if err != nil {
		t.Fatal(err)
	}
	if ka.InstanceBytes(3) != Pad(32+12) {
		t.Errorf("int[3] bytes = %d", ka.InstanceBytes(3))
	}
	kr, err := ResolveArray("X[]", l)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Elem != Ref || kr.ElemClass != "X" {
		t.Errorf("ref array elem = %v %q", kr.Elem, kr.ElemClass)
	}
	if kr.InstanceBytes(2) != 32+16 {
		t.Errorf("X[2] bytes = %d", kr.InstanceBytes(2))
	}
}

// Property: every resolved layout places fields without overlap, aligned to
// their size, inside the instance, and Size is word-padded.
func TestLayoutInvariantsQuick(t *testing.T) {
	kinds := []Kind{Bool, Int8, Int16, Char, Int32, Float32, Int64, Float64, Ref}
	f := func(sel []uint8) bool {
		if len(sel) > 24 {
			sel = sel[:24]
		}
		def := &ClassDef{Name: "Q"}
		for i, s := range sel {
			kind := kinds[int(s)%len(kinds)]
			fd := FieldDef{Name: fieldName(i), Kind: kind}
			if kind == Ref {
				fd.Class = "Q"
			}
			def.Fields = append(def.Fields, fd)
		}
		k, err := ResolveLayout(def, nil, Layout{Baddr: true})
		if err != nil {
			return false
		}
		if k.Size%WordSize != 0 {
			return false
		}
		type span struct{ lo, hi uint32 }
		var spans []span
		for _, fl := range k.Fields {
			sz := fl.Kind.Size()
			if fl.Offset%sz != 0 || fl.Offset < 24 || fl.Offset+sz > k.Size {
				return false
			}
			spans = append(spans, span{fl.Offset, fl.Offset + sz})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func fieldName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }
