package klass

import "fmt"

// Layout describes the object header geometry of one runtime. The paper's
// Figure 6 shows the Skyway layout on a 64-bit HotSpot: an 8-byte mark word
// (locks, hash, GC bits), an 8-byte klass word, and Skyway's extra 8-byte
// baddr word; arrays add an 8-byte length word. Heterogeneous clusters
// (§3.1) are modelled by runtimes with different Layout values.
type Layout struct {
	// Baddr records whether the runtime reserves the Skyway baddr header
	// word. A vanilla (non-Skyway) runtime sets it false; the §5.2 memory
	// overhead experiment compares peak heap under both settings.
	Baddr bool
}

// Header geometry in bytes. Word size is 8 throughout.
const (
	WordSize = 8

	// OffMark is the byte offset of the mark word in every object.
	OffMark = 0
	// OffKlass is the byte offset of the klass word.
	OffKlass = 8
)

// OffBaddr returns the byte offset of the baddr word, or -1 when the layout
// has no baddr word.
func (l Layout) OffBaddr() int {
	if l.Baddr {
		return 16
	}
	return -1
}

// HeaderSize returns the header size of a non-array object.
func (l Layout) HeaderSize() uint32 {
	if l.Baddr {
		return 24
	}
	return 16
}

// OffArrayLen returns the byte offset of the array length word.
func (l Layout) OffArrayLen() uint32 { return l.HeaderSize() }

// ArrayHeaderSize returns the header size of an array object (header plus
// the length word).
func (l Layout) ArrayHeaderSize() uint32 { return l.HeaderSize() + WordSize }

// Field is a resolved instance field with its byte offset from the start of
// the object under a particular Layout.
type Field struct {
	Name       string
	Kind       Kind
	Class      string // static type of a Ref field
	DeclaredBy string // class that declared the field
	Offset     uint32 // byte offset from object start
	Transient  bool   // skipped by conventional serializers
}

// Klass is a loaded class in one runtime — the paper's "klass" meta object.
// It carries the resolved field layout, the local ID (its position in the
// runtime's klass table, standing in for the meta object's address) and the
// cluster-global type ID assigned by the registry (§4.1).
type Klass struct {
	Name  string
	Super *Klass

	// Fields lists every instance field, inherited first, in layout order.
	Fields []Field
	// RefOffsets caches the byte offsets of all reference fields; the
	// Skyway writer's hot loop (Algorithm 2 lines 15-27) iterates these.
	RefOffsets []uint32
	// fieldsByName supports the reflective baselines' per-field lookups.
	fieldsByName map[string]*Field

	// Size is the padded instance size in bytes including the header.
	// For array klasses it is the array header size; element storage is
	// added per instance.
	Size uint32

	IsArray   bool
	Elem      Kind   // element kind, for array klasses
	ElemClass string // element class, for Ref-element array klasses

	// LID is the index of this klass in its runtime's klass table. It is
	// the value stored in live objects' klass words, standing in for the
	// meta object pointer of a real JVM.
	LID int32
	// TID is the cluster-global type ID from the registry, or -1 when the
	// runtime is not attached to a registry.
	TID int32
}

// FieldByName returns the resolved field with the given name, or nil. The
// reflective serializer baselines go through this (string-keyed) lookup for
// every field of every object, reproducing the reflection cost the paper
// measures in §2.
func (k *Klass) FieldByName(name string) *Field { return k.fieldsByName[name] }

// HasRefs reports whether instances contain any reference slots.
func (k *Klass) HasRefs() bool {
	if k.IsArray {
		return k.Elem == Ref
	}
	return len(k.RefOffsets) > 0
}

// ElemSize returns the element size of an array klass.
func (k *Klass) ElemSize() uint32 {
	if !k.IsArray {
		return 0
	}
	return k.Elem.Size()
}

// Pad rounds n up to the next multiple of the word size, mirroring object
// padding on a 64-bit JVM.
func Pad(n uint32) uint32 { return (n + WordSize - 1) &^ (WordSize - 1) }

// ResolveLayout computes the resolved field layout of def under layout l.
// super must be the already-resolved superclass klass (nil for roots).
// Fields are packed HotSpot-style: inherited fields keep their offsets; new
// fields are appended largest-first so that alignment gaps stay small, and
// the instance size is padded to a word multiple.
func ResolveLayout(def *ClassDef, super *Klass, l Layout) (*Klass, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	k := &Klass{
		Name:  def.Name,
		Super: super,
		TID:   -1,
	}
	next := l.HeaderSize()
	if super != nil {
		if super.IsArray {
			return nil, fmt.Errorf("klass: %s: cannot extend array class %s", def.Name, super.Name)
		}
		k.Fields = append(k.Fields, super.Fields...)
		next = super.Size // start after the (padded) superclass suffix
	}

	// Stable largest-first packing: indices sorted by descending size,
	// ties broken by declaration order so layout is deterministic.
	order := make([]int, len(def.Fields))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := def.Fields[order[j-1]], def.Fields[order[j]]
			if a.Kind.Size() < b.Kind.Size() {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	for _, idx := range order {
		fd := def.Fields[idx]
		sz := fd.Kind.Size()
		off := align(next, sz)
		k.Fields = append(k.Fields, Field{
			Name:       fd.Name,
			Kind:       fd.Kind,
			Class:      fd.Class,
			DeclaredBy: def.Name,
			Offset:     off,
			Transient:  fd.Transient,
		})
		next = off + sz
	}
	k.Size = Pad(next)

	k.fieldsByName = make(map[string]*Field, len(k.Fields))
	for i := range k.Fields {
		f := &k.Fields[i]
		// Subclass fields shadow superclass fields of the same name,
		// matching Java's innermost-wins resolution.
		k.fieldsByName[f.Name] = f
		if f.Kind == Ref {
			k.RefOffsets = append(k.RefOffsets, f.Offset)
		}
	}
	return k, nil
}

// ResolveArray builds the klass for an array type under layout l.
func ResolveArray(name string, l Layout) (*Klass, error) {
	elem, elemClass, ok := ParseArrayName(name)
	if !ok {
		return nil, fmt.Errorf("klass: %s is not an array class name", name)
	}
	return &Klass{
		Name:      name,
		IsArray:   true,
		Elem:      elem,
		ElemClass: elemClass,
		Size:      l.ArrayHeaderSize(),
		TID:       -1,
	}, nil
}

// InstanceBytes returns the total padded size in bytes of an instance of k;
// n is the element count for arrays and ignored otherwise.
func (k *Klass) InstanceBytes(n int) uint32 {
	if !k.IsArray {
		return k.Size
	}
	return Pad(k.Size + uint32(n)*k.ElemSize())
}

func align(off, sz uint32) uint32 {
	if sz == 0 {
		return off
	}
	return (off + sz - 1) &^ (sz - 1)
}
