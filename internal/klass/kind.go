// Package klass models class metadata for the simulated managed runtime:
// class definitions ("class files"), loaded klasses with HotSpot-style field
// layout, and array klasses. A klass.Path plays the role of the cluster-wide
// classpath: every node loads the same definitions, mirroring the paper's
// assumption that "the sender and the receiver use the same version of each
// transfer-related class" (§3.1).
package klass

import "fmt"

// Kind identifies the primitive category of a field or array element,
// mirroring the JVM's primitive types plus reference.
type Kind uint8

// Field kinds. Sizes match the 64-bit HotSpot object model the paper's
// Figure 6 is drawn from: references are 8 bytes (no compressed oops).
const (
	Invalid Kind = iota
	Bool         // 1 byte
	Int8         // 1 byte
	Int16        // 2 bytes
	Char         // 2 bytes (UTF-16 code unit, like a Java char)
	Int32        // 4 bytes
	Float32      // 4 bytes
	Int64        // 8 bytes
	Float64      // 8 bytes
	Ref          // 8 bytes (in-heap address)
)

// Size returns the field size in bytes for the kind.
func (k Kind) Size() uint32 {
	switch k {
	case Bool, Int8:
		return 1
	case Int16, Char:
		return 2
	case Int32, Float32:
		return 4
	case Int64, Float64, Ref:
		return 8
	}
	return 0
}

// String returns the Java-like name of the kind.
func (k Kind) String() string {
	switch k {
	case Bool:
		return "boolean"
	case Int8:
		return "byte"
	case Int16:
		return "short"
	case Char:
		return "char"
	case Int32:
		return "int"
	case Float32:
		return "float"
	case Int64:
		return "long"
	case Float64:
		return "double"
	case Ref:
		return "ref"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// IsPrimitive reports whether the kind is a primitive (non-reference) type.
func (k Kind) IsPrimitive() bool { return k != Invalid && k != Ref }
