package vm

import (
	"fmt"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/verify"
)

// The Runtime implements verify.Meta and verify.ChunkMeta, giving the heap
// verifier the class-resolution knowledge it needs without coupling it to
// the class loader.

// ValidKlassWord implements verify.Meta: it reports whether a live object's
// klass word resolves to a loaded class.
func (rt *Runtime) ValidKlassWord(w uint64) bool {
	return w < uint64(len(rt.klasses))
}

// EachPinned implements verify.Meta by forwarding to the collector's pinned
// input-buffer chunk table.
func (rt *Runtime) EachPinned(fn func(start heap.Addr, size uint32, parsed bool)) {
	rt.GC.EachPinned(fn)
}

// ImageSize implements verify.ChunkMeta: the padded size of the wire-form
// buffer image at a, whose klass word holds a global type ID.
func (rt *Runtime) ImageSize(a heap.Addr) (uint32, bool) {
	k, ok := rt.imageKlass(a)
	if !ok {
		return 0, false
	}
	if !k.IsArray {
		return k.Size, true
	}
	n := rt.Heap.ArrayLen(a)
	if n < 0 {
		return 0, false
	}
	return k.InstanceBytes(n), true
}

// ImageRefSlots implements verify.ChunkMeta: the reference slot offsets of
// the wire-form buffer image at a.
func (rt *Runtime) ImageRefSlots(a heap.Addr, fn func(off uint32)) {
	k, ok := rt.imageKlass(a)
	if !ok {
		return
	}
	if k.IsArray {
		if k.Elem != klass.Ref {
			return
		}
		n := rt.Heap.ArrayLen(a)
		base := rt.Heap.Layout().ArrayHeaderSize()
		for i := 0; i < n; i++ {
			fn(base + uint32(i)*klass.WordSize)
		}
		return
	}
	for _, off := range k.RefOffsets {
		fn(off)
	}
}

// imageKlass resolves the global type ID in a buffer image's klass word.
func (rt *Runtime) imageKlass(a heap.Addr) (*klass.Klass, bool) {
	tid := int32(uint32(rt.Heap.KlassWord(a)))
	k, err := rt.KlassByTID(tid)
	if err != nil {
		return nil, false
	}
	return k, true
}

// wireVerifier installs the heap verifier as the collector's before/after
// hook — HotSpot's VerifyBeforeGC/VerifyAfterGC, opted into per-runtime via
// Options.Verify or process-wide via SKYWAY_VERIFY.
func (rt *Runtime) wireVerifier() {
	rt.GC.VerifyHook = func(stage string) {
		verify.Must(fmt.Sprintf("%s %s", rt.Name, stage), verify.Verify(rt.Heap, rt))
	}
}
