package vm

import (
	"errors"
	"testing"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

func tinyRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := NewRuntime(testPath(), Options{Name: "tiny", Heap: heap.Config{
		EdenSize:     16 << 10,
		SurvivorSize: 4 << 10,
		OldSize:      32 << 10,
		BufferSize:   8 << 10,
		Layout:       klass.Layout{Baddr: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestOOMSurfacesTypedError(t *testing.T) {
	rt := tinyRuntime(t)
	k := rt.MustLoad("long[]")
	// Pin allocations until nothing fits anywhere.
	var pins []interface{ Release() }
	defer func() {
		for _, p := range pins {
			p.Release()
		}
	}()
	for {
		a, err := rt.NewArray(k, 512)
		if err != nil {
			if !errors.Is(err, ErrOOM) {
				t.Fatalf("allocation failed with %v, want ErrOOM", err)
			}
			return
		}
		pins = append(pins, rt.Pin(a))
	}
}

func TestOOMRecoversAfterRelease(t *testing.T) {
	rt := tinyRuntime(t)
	k := rt.MustLoad("long[]")
	var pins []interface{ Release() }
	for {
		a, err := rt.NewArray(k, 512)
		if err != nil {
			break
		}
		pins = append(pins, rt.Pin(a))
	}
	for _, p := range pins {
		p.Release()
	}
	// With the roots gone, allocation must succeed again (via GC).
	if _, err := rt.NewArray(k, 512); err != nil {
		t.Fatalf("allocation failed after releasing all roots: %v", err)
	}
}

func TestMustNewPanicsOnOOM(t *testing.T) {
	rt := tinyRuntime(t)
	k := rt.MustLoad("long[]")
	var pins []interface{ Release() }
	defer func() {
		if recover() == nil {
			t.Error("MustNewArray did not panic on OOM")
		}
		for _, p := range pins {
			p.Release()
		}
	}()
	for {
		pins = append(pins, rt.Pin(rt.MustNewArray(k, 512)))
	}
}

func TestHugeObjectGoesToOldGen(t *testing.T) {
	rt := tinyRuntime(t)
	k := rt.MustLoad("long[]")
	// Larger than eden (16 KiB) but fits old gen (32 KiB).
	a, err := rt.NewArray(k, 2500) // ~20 KiB
	if err != nil {
		t.Fatal(err)
	}
	if !rt.Heap.InOld(a) {
		t.Error("eden-exceeding allocation not placed in old gen")
	}
}

func TestGoStringOfNullValueArray(t *testing.T) {
	rt := testRuntime(t)
	sk := rt.MustLoad(StringClass)
	s := rt.MustNew(sk) // value field left null
	if got := rt.GoString(s); got != "" {
		t.Errorf("GoString of null-value String = %q", got)
	}
}

func TestHashMapEach(t *testing.T) {
	rt := testRuntime(t)
	m, err := rt.NewHashMap(8)
	if err != nil {
		t.Fatal(err)
	}
	mp := rt.Pin(m)
	defer mp.Release()
	for i := 0; i < 25; i++ {
		k := rt.MustNewString("k")
		kp := rt.Pin(k)
		v := rt.MustNewString("v")
		vp := rt.Pin(v)
		if err := rt.HashMapPut(mp.Addr(), kp.Addr(), vp.Addr()); err != nil {
			t.Fatal(err)
		}
		kp.Release()
		vp.Release()
	}
	n := 0
	rt.HashMapEach(mp.Addr(), func(k, v heap.Addr) {
		if rt.GoString(k) != "k" || rt.GoString(v) != "v" {
			t.Error("entry corrupted")
		}
		n++
	})
	if n != 25 {
		t.Errorf("iterated %d entries", n)
	}
}

func TestRehashRejectsNonMap(t *testing.T) {
	rt := testRuntime(t)
	s := rt.MustNewString("not a map")
	if err := rt.HashMapRehash(s); err == nil {
		t.Error("rehash of a String succeeded")
	}
}

func TestHashSet(t *testing.T) {
	rt := testRuntime(t)
	s, err := rt.NewHashSet(8)
	if err != nil {
		t.Fatal(err)
	}
	sp := rt.Pin(s)
	defer sp.Release()

	// Hold elements through GC-safe handles: later allocations may move
	// earlier elements.
	var elems []interface {
		Addr() heap.Addr
		Release()
	}
	for i := 0; i < 30; i++ {
		e := rt.MustNewString("e")
		eh := rt.Pin(e)
		added, err := rt.HashSetAdd(sp.Addr(), eh.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if !added {
			t.Fatal("fresh element reported as duplicate")
		}
		elems = append(elems, eh)
		defer eh.Release()
	}
	if rt.HashSetLen(sp.Addr()) != 30 {
		t.Fatalf("len = %d", rt.HashSetLen(sp.Addr()))
	}
	// Re-adding an existing element is a no-op.
	added, err := rt.HashSetAdd(sp.Addr(), elems[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Error("duplicate add succeeded")
	}
	for _, e := range elems {
		if !rt.HashSetContains(sp.Addr(), e.Addr()) {
			t.Fatal("member missing")
		}
	}
	n := 0
	rt.HashSetEach(sp.Addr(), func(heap.Addr) { n++ })
	if n != 30 {
		t.Errorf("iterated %d", n)
	}
}
