package vm

import (
	"unicode/utf16"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

// StringClass names the built-in string class: a Java-like String holding a
// char[] plus a cached content hash. It is defined automatically on every
// classpath so string-bearing schemas work out of the box.
const StringClass = "java.lang.String"

// CharArrayClass names the char[] backing array class.
const CharArrayClass = "char[]"

// EnsureBuiltins defines the built-in classes on cp if absent. It is called
// implicitly by schema constructors in datagen and by NewRuntime.
func EnsureBuiltins(cp *klass.Path) {
	if cp.Lookup(StringClass) == nil {
		cp.MustDefine(&klass.ClassDef{
			Name: StringClass,
			Fields: []klass.FieldDef{
				{Name: "value", Kind: klass.Ref, Class: CharArrayClass},
				{Name: "hash", Kind: klass.Int32},
			},
		})
	}
}

// NewString allocates a String object (and its char[] value array) holding
// the UTF-16 encoding of s.
func (rt *Runtime) NewString(s string) (heap.Addr, error) {
	units := utf16.Encode([]rune(s))
	arrK, err := rt.LoadClass(CharArrayClass)
	if err != nil {
		return heap.Null, err
	}
	strK, err := rt.LoadClass(StringClass)
	if err != nil {
		return heap.Null, err
	}
	arr, err := rt.NewArray(arrK, len(units))
	if err != nil {
		return heap.Null, err
	}
	// Protect arr across the second allocation, which may GC.
	h := rt.Pin(arr)
	defer h.Release()
	for i, u := range units {
		rt.ArraySetChar(arr, i, u)
	}
	obj, err := rt.New(strK)
	if err != nil {
		return heap.Null, err
	}
	rt.SetRef(obj, strK.FieldByName("value"), h.Addr())
	rt.SetInt(obj, strK.FieldByName("hash"), int64(int32(StringHash(s))))
	return obj, nil
}

// MustNewString is NewString panicking on OOM.
func (rt *Runtime) MustNewString(s string) heap.Addr {
	a, err := rt.NewString(s)
	if err != nil {
		panic(err)
	}
	return a
}

// GoString decodes the String object at a back into a Go string.
func (rt *Runtime) GoString(a heap.Addr) string {
	k := rt.KlassOf(a)
	arr := rt.GetRef(a, k.FieldByName("value"))
	if arr == heap.Null {
		return ""
	}
	n := rt.ArrayLen(arr)
	units := make([]uint16, n)
	for i := 0; i < n; i++ {
		units[i] = rt.ArrayGetChar(arr, i)
	}
	return string(utf16.Decode(units))
}

// StringHash computes the Java String.hashCode of s (over UTF-16 units).
// Baseline serializers recompute it on deserialization (the paper's
// "rehashing" cost); Skyway ships the stored field unchanged.
func StringHash(s string) int32 {
	var h int32
	for _, u := range utf16.Encode([]rune(s)) {
		h = 31*h + int32(u)
	}
	return h
}
