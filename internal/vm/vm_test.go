package vm

import (
	"strings"
	"testing"
	"testing/quick"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/registry"
)

func testPath() *klass.Path {
	p := klass.NewPath()
	p.MustDefine(
		&klass.ClassDef{Name: "Point", Fields: []klass.FieldDef{
			{Name: "x", Kind: klass.Int32},
			{Name: "y", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: "Node", Fields: []klass.FieldDef{
			{Name: "val", Kind: klass.Int64},
			{Name: "next", Kind: klass.Ref, Class: "Node"},
		}},
		&klass.ClassDef{Name: "Point3D", Super: "Point", Fields: []klass.FieldDef{
			{Name: "z", Kind: klass.Int32},
		}},
	)
	return p
}

func testRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := NewRuntime(testPath(), Options{Name: "test"})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func smallRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := NewRuntime(testPath(), Options{Name: "small", Heap: heap.Config{
		EdenSize:     64 << 10,
		SurvivorSize: 16 << 10,
		OldSize:      512 << 10,
		BufferSize:   64 << 10,
		Layout:       klass.Layout{Baddr: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestLoadClassIdempotent(t *testing.T) {
	rt := testRuntime(t)
	a := rt.MustLoad("Point")
	b := rt.MustLoad("Point")
	if a != b {
		t.Error("LoadClass returned distinct klasses for one name")
	}
	if rt.KlassAt(a.LID) != a {
		t.Error("KlassAt(LID) mismatch")
	}
}

func TestLoadClassMissing(t *testing.T) {
	rt := testRuntime(t)
	if _, err := rt.LoadClass("NoSuchClass"); err == nil {
		t.Error("loading a missing class succeeded")
	}
}

func TestLoadSuperChain(t *testing.T) {
	rt := testRuntime(t)
	k := rt.MustLoad("Point3D")
	if k.Super == nil || k.Super.Name != "Point" {
		t.Fatal("superclass not resolved")
	}
	if k.FieldByName("x") == nil || k.FieldByName("z") == nil {
		t.Fatal("fields not inherited")
	}
}

func TestNewAndFieldAccess(t *testing.T) {
	rt := testRuntime(t)
	k := rt.MustLoad("Point")
	p := rt.MustNew(k)
	rt.SetInt(p, k.FieldByName("x"), -42)
	rt.SetInt(p, k.FieldByName("y"), 17)
	if rt.GetInt(p, k.FieldByName("x")) != -42 {
		t.Error("x readback (sign extension) failed")
	}
	if rt.GetInt(p, k.FieldByName("y")) != 17 {
		t.Error("y readback failed")
	}
	if rt.KlassOf(p) != k {
		t.Error("KlassOf mismatch")
	}
	if rt.ObjectSize(p) != k.Size {
		t.Error("ObjectSize mismatch")
	}
}

func TestArrays(t *testing.T) {
	rt := testRuntime(t)
	ak := rt.MustLoad("long[]")
	a := rt.MustNewArray(ak, 10)
	for i := 0; i < 10; i++ {
		rt.ArraySetLong(a, i, int64(i*i)-5)
	}
	for i := 0; i < 10; i++ {
		if rt.ArrayGetLong(a, i) != int64(i*i)-5 {
			t.Fatalf("elem %d wrong", i)
		}
	}
	if rt.ArrayLen(a) != 10 {
		t.Error("ArrayLen wrong")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-bounds access did not panic")
			}
		}()
		rt.ArrayGetLong(a, 10)
	}()
}

func TestStringsRoundTrip(t *testing.T) {
	rt := testRuntime(t)
	for _, s := range []string{"", "hello", "日本語 text", strings.Repeat("x", 1000)} {
		a := rt.MustNewString(s)
		if got := rt.GoString(a); got != s {
			t.Errorf("GoString = %q, want %q", got, s)
		}
	}
}

func TestStringHashMatchesJava(t *testing.T) {
	// Known Java String.hashCode values.
	cases := map[string]int32{"": 0, "a": 97, "ab": 3105, "hello": 99162322}
	for s, want := range cases {
		if got := StringHash(s); got != want {
			t.Errorf("StringHash(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestHashCodeStable(t *testing.T) {
	rt := testRuntime(t)
	p := rt.MustNew(rt.MustLoad("Point"))
	h1 := rt.HashCode(p)
	h2 := rt.HashCode(p)
	if h1 != h2 {
		t.Error("HashCode not stable")
	}
}

func TestGCPreservesLinkedList(t *testing.T) {
	rt := smallRuntime(t)
	k := rt.MustLoad("Node")
	valF, nextF := k.FieldByName("val"), k.FieldByName("next")

	const n = 500
	head := rt.MustNew(k)
	rt.SetInt(head, valF, 0)
	hd := rt.Pin(head)
	defer hd.Release()
	prev := head
	prevPin := rt.Pin(prev)
	for i := 1; i < n; i++ {
		node := rt.MustNew(k) // may GC
		prev = prevPin.Addr()
		rt.SetInt(node, valF, int64(i))
		rt.SetRef(prev, nextF, node)
		prevPin.Set(node)
	}
	prevPin.Release()

	// Allocate garbage to force several scavenges and a full GC.
	for i := 0; i < 2000; i++ {
		rt.MustNewArray(rt.MustLoad("long[]"), 16)
	}
	rt.GC.FullGC()

	cur := hd.Addr()
	for i := 0; i < n; i++ {
		if cur == heap.Null {
			t.Fatalf("list truncated at %d", i)
		}
		if got := rt.GetInt(cur, valF); got != int64(i) {
			t.Fatalf("node %d holds %d", i, got)
		}
		cur = rt.GetRef(cur, nextF)
	}
	if cur != heap.Null {
		t.Error("list longer than built")
	}
	if rt.GC.Stats().Scavenges == 0 && rt.GC.Stats().FullGCs == 0 {
		t.Error("test exercised no collection")
	}
}

func TestGCPreservesHashcode(t *testing.T) {
	rt := smallRuntime(t)
	k := rt.MustLoad("Point")
	p := rt.MustNew(k)
	h := rt.Pin(p)
	defer h.Release()
	want := rt.HashCode(p)
	for i := 0; i < 3000; i++ {
		rt.MustNewArray(rt.MustLoad("long[]"), 16)
	}
	rt.GC.FullGC()
	if got := rt.HashCode(h.Addr()); got != want {
		t.Errorf("hash changed across GC: %#x -> %#x", want, got)
	}
	if h.Addr() == p && rt.GC.Stats().Scavenges == 0 {
		t.Log("object never moved; test weak")
	}
}

func TestOldToYoungViaCardTable(t *testing.T) {
	rt := smallRuntime(t)
	k := rt.MustLoad("Node")
	valF, nextF := k.FieldByName("val"), k.FieldByName("next")

	// Tenure one node via a full GC.
	old := rt.MustNew(k)
	oldPin := rt.Pin(old)
	defer oldPin.Release()
	rt.GC.FullGC()
	old = oldPin.Addr()
	if !rt.Heap.InOld(old) {
		t.Fatal("object not tenured by full GC")
	}

	// Point the tenured node at a fresh young node (write barrier dirties
	// the card), then scavenge; the young node must survive via the card.
	young := rt.MustNew(k)
	rt.SetInt(young, valF, 77)
	rt.SetRef(oldPin.Addr(), nextF, young)
	if !rt.GC.Scavenge() {
		t.Fatal("scavenge refused")
	}
	got := rt.GetRef(oldPin.Addr(), nextF)
	if got == heap.Null || rt.GetInt(got, valF) != 77 {
		t.Fatal("young object referenced only from old gen was lost")
	}
	if rt.Heap.InYoung(got) && rt.Heap.Eden.Contains(got) {
		t.Error("survivor left in eden")
	}
}

func TestHashMapPutGet(t *testing.T) {
	rt := testRuntime(t)
	m, err := rt.NewHashMap(16)
	if err != nil {
		t.Fatal(err)
	}
	mPin := rt.Pin(m)
	defer mPin.Release()
	keys := make([]*gcHandle, 0, 100)
	type gcHandlePair struct{ k, v heap.Addr }
	var pairs []gcHandlePair
	for i := 0; i < 100; i++ {
		k := rt.MustNewString("key")
		kp := rt.Pin(k)
		v := rt.MustNew(rt.MustLoad("Point"))
		vp := rt.Pin(v)
		if err := rt.HashMapPut(mPin.Addr(), kp.Addr(), vp.Addr()); err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, gcHandlePair{kp.Addr(), vp.Addr()})
		keys = append(keys, &gcHandle{kp, vp})
	}
	if rt.HashMapLen(mPin.Addr()) != 100 {
		t.Fatalf("len = %d", rt.HashMapLen(mPin.Addr()))
	}
	for _, p := range pairs {
		got, ok := rt.HashMapGet(mPin.Addr(), p.k)
		if !ok || got != p.v {
			t.Fatal("lookup failed")
		}
	}
	if !rt.HashMapValid(mPin.Addr()) {
		t.Error("fresh map invalid")
	}
	for _, h := range keys {
		h.a.Release()
		h.b.Release()
	}
}

type gcHandle struct{ a, b interface{ Release() } }

func TestArrayList(t *testing.T) {
	rt := testRuntime(t)
	l, err := rt.NewArrayList(2)
	if err != nil {
		t.Fatal(err)
	}
	lp := rt.Pin(l)
	defer lp.Release()
	for i := 0; i < 50; i++ {
		s := rt.MustNewString("x")
		if err := rt.ListAdd(lp.Addr(), s); err != nil {
			t.Fatal(err)
		}
	}
	if rt.ListLen(lp.Addr()) != 50 {
		t.Fatalf("len = %d", rt.ListLen(lp.Addr()))
	}
	for i := 0; i < 50; i++ {
		if rt.GoString(rt.ListGet(lp.Addr(), i)) != "x" {
			t.Fatal("element corrupted")
		}
	}
}

func TestRegistryAssignsTIDs(t *testing.T) {
	reg := registry.NewRegistry()
	rt1, err := NewRuntime(testPath(), Options{Name: "w1", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRuntime(testPath(), Options{Name: "w2", Registry: registry.InProc{R: reg}})
	if err != nil {
		t.Fatal(err)
	}
	// Load in different orders; TIDs must agree.
	k1 := rt1.MustLoad("Point")
	rt1.MustLoad("Node")
	rt2.MustLoad("Node")
	k2 := rt2.MustLoad("Point")
	if k1.TID < 0 || k1.TID != k2.TID {
		t.Errorf("Point TIDs differ: %d vs %d", k1.TID, k2.TID)
	}
	k, err := rt2.KlassByTID(k1.TID)
	if err != nil || k.Name != "Point" {
		t.Errorf("KlassByTID = %v, %v", k, err)
	}
}

func TestRegisterUpdate(t *testing.T) {
	rt := testRuntime(t)
	if err := rt.RegisterUpdate("Point", "x", func(rt *Runtime, obj heap.Addr) uint64 { return 9 }); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterUpdate("Point", "nope", nil); err == nil {
		t.Error("registering an unknown field succeeded")
	}
	ups := rt.UpdatesFor(rt.MustLoad("Point"))
	if len(ups) != 1 || ups[0].Field.Name != "x" {
		t.Errorf("UpdatesFor = %+v", ups)
	}
}

// Property: identity hashes are 31-bit and reasonably distinct.
func TestHashDistribution(t *testing.T) {
	rt := testRuntime(t)
	k := rt.MustLoad("Point")
	seen := make(map[uint32]bool)
	dups := 0
	for i := 0; i < 1000; i++ {
		h := rt.HashCode(rt.MustNew(k))
		if h&0x80000000 != 0 {
			t.Fatal("hash exceeded 31 bits")
		}
		if seen[h] {
			dups++
		}
		seen[h] = true
	}
	if dups > 2 {
		t.Errorf("%d duplicate hashes in 1000", dups)
	}
}

// Property: sub-word field writes never corrupt sibling fields.
func TestFieldIsolationQuick(t *testing.T) {
	rt := testRuntime(t)
	k := rt.MustLoad("Point")
	xF, yF := k.FieldByName("x"), k.FieldByName("y")
	p := rt.MustNew(k)
	f := func(x, y int32) bool {
		rt.SetInt(p, xF, int64(x))
		rt.SetInt(p, yF, int64(y))
		return rt.GetInt(p, xF) == int64(x) && rt.GetInt(p, yF) == int64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
