package vm

import (
	"skyway/internal/heap"
	"skyway/internal/klass"
)

// HashSet mirrors java.util.HashSet: a thin wrapper over a HashMap whose
// values are a shared sentinel. Like HashMap, a Skyway-transferred HashSet
// stays valid on the receiver because the element hashcodes travel in the
// mark words; reflective serializers must rebuild it.

// HashSetClass names the built-in hash set class.
const HashSetClass = "java.util.HashSet"

// EnsureHashSet defines the class on cp if absent.
func EnsureHashSet(cp *klass.Path) {
	EnsureCollections(cp)
	if cp.Lookup(HashSetClass) == nil {
		cp.MustDefine(&klass.ClassDef{
			Name: HashSetClass,
			Fields: []klass.FieldDef{
				{Name: "map", Kind: klass.Ref, Class: HashMapClass},
				{Name: "present", Kind: klass.Ref, Class: ObjectClass},
			},
		})
	}
}

// NewHashSet allocates a HashSet sized for the given element count.
func (rt *Runtime) NewHashSet(elems int) (heap.Addr, error) {
	EnsureHashSet(rt.cp)
	setK, err := rt.LoadClass(HashSetClass)
	if err != nil {
		return heap.Null, err
	}
	m, err := rt.NewHashMap(elems)
	if err != nil {
		return heap.Null, err
	}
	mh := rt.Pin(m)
	defer mh.Release()
	// The PRESENT sentinel: any object shared by all entries.
	sentinel, err := rt.NewString("")
	if err != nil {
		return heap.Null, err
	}
	sh := rt.Pin(sentinel)
	defer sh.Release()
	s, err := rt.New(setK)
	if err != nil {
		return heap.Null, err
	}
	rt.SetRef(s, setK.FieldByName("map"), mh.Addr())
	rt.SetRef(s, setK.FieldByName("present"), sh.Addr())
	return s, nil
}

// HashSetAdd inserts elem; returns false if it was already present.
func (rt *Runtime) HashSetAdd(s, elem heap.Addr) (bool, error) {
	setK := rt.KlassOf(s)
	m := rt.GetRef(s, setK.FieldByName("map"))
	if _, present := rt.HashMapGet(m, elem); present {
		return false, nil
	}
	sh := rt.Pin(s)
	eh := rt.Pin(elem)
	defer sh.Release()
	defer eh.Release()
	sentinel := rt.GetRef(sh.Addr(), setK.FieldByName("present"))
	err := rt.HashMapPut(rt.GetRef(sh.Addr(), setK.FieldByName("map")), eh.Addr(), sentinel)
	return err == nil, err
}

// HashSetContains reports membership by element identity.
func (rt *Runtime) HashSetContains(s, elem heap.Addr) bool {
	setK := rt.KlassOf(s)
	_, ok := rt.HashMapGet(rt.GetRef(s, setK.FieldByName("map")), elem)
	return ok
}

// HashSetLen returns the element count.
func (rt *Runtime) HashSetLen(s heap.Addr) int64 {
	setK := rt.KlassOf(s)
	return rt.HashMapLen(rt.GetRef(s, setK.FieldByName("map")))
}

// HashSetEach iterates the elements.
func (rt *Runtime) HashSetEach(s heap.Addr, fn func(elem heap.Addr)) {
	setK := rt.KlassOf(s)
	rt.HashMapEach(rt.GetRef(s, setK.FieldByName("map")), func(k, _ heap.Addr) { fn(k) })
}
