package vm

import (
	"math"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

// Typed field and array accessors. Every read goes through the rt.load
// funnel (arena.go), which resolves tagged arena addresses against their
// off-heap region; every write goes through rt.mutable first, promoting an
// arena-resident object into the managed heap on its first mutation
// (copy-on-write). Reference stores go through a card-table write barrier:
// a pointer written into tenured space (old generation or a Skyway input
// buffer) dirties the owner's card so the next scavenge can find
// old-to-young edges (§4.3).

// GetRef loads the reference field f of the object at a.
func (rt *Runtime) GetRef(a heap.Addr, f *klass.Field) heap.Addr {
	return heap.Addr(rt.load(a, f.Offset, klass.Ref))
}

// SetRef stores v into the reference field f of the object at a.
func (rt *Runtime) SetRef(a heap.Addr, f *klass.Field, v heap.Addr) {
	a = rt.mutable(a)
	rt.Heap.Store(a, f.Offset, klass.Ref, uint64(v))
	rt.refBarrier(a)
}

func (rt *Runtime) refBarrier(owner heap.Addr) {
	if rt.Heap.InOld(owner) || rt.Heap.InBuffers(owner) {
		rt.Heap.DirtyCard(owner)
	}
}

// storePrim stores a value whose kind is only known at run time but must be
// primitive; the typed setters route their dynamic-kind stores through this
// single checked funnel, which is also where arena objects promote.
func (rt *Runtime) storePrim(a heap.Addr, off uint32, kind klass.Kind, v uint64) {
	if kind == klass.Ref {
		panic("vm: storePrim on a reference slot; use SetRef/ArraySetRef")
	}
	a = rt.mutable(a)
	//skyway:allow writebarrier — kind is checked non-Ref above, so no reference is written
	rt.Heap.Store(a, off, kind, v)
}

// GetLong loads a 64-bit integer field.
func (rt *Runtime) GetLong(a heap.Addr, f *klass.Field) int64 {
	return int64(rt.load(a, f.Offset, f.Kind))
}

// SetLong stores a 64-bit integer field.
func (rt *Runtime) SetLong(a heap.Addr, f *klass.Field, v int64) {
	rt.storePrim(a, f.Offset, f.Kind, uint64(v))
}

// GetInt loads an integer field of any width, sign-extended.
func (rt *Runtime) GetInt(a heap.Addr, f *klass.Field) int64 {
	raw := rt.load(a, f.Offset, f.Kind)
	switch f.Kind {
	case klass.Int8:
		return int64(int8(raw))
	case klass.Int16:
		return int64(int16(raw))
	case klass.Int32:
		return int64(int32(raw))
	default:
		return int64(raw)
	}
}

// SetInt stores an integer field of any width (truncating).
func (rt *Runtime) SetInt(a heap.Addr, f *klass.Field, v int64) {
	rt.storePrim(a, f.Offset, f.Kind, uint64(v))
}

// GetBool loads a boolean field.
func (rt *Runtime) GetBool(a heap.Addr, f *klass.Field) bool {
	return rt.load(a, f.Offset, klass.Bool) != 0
}

// SetBool stores a boolean field.
func (rt *Runtime) SetBool(a heap.Addr, f *klass.Field, v bool) {
	var raw uint64
	if v {
		raw = 1
	}
	rt.storePrim(a, f.Offset, klass.Bool, raw)
}

// GetDouble loads a float64 field.
func (rt *Runtime) GetDouble(a heap.Addr, f *klass.Field) float64 {
	return math.Float64frombits(rt.load(a, f.Offset, klass.Float64))
}

// SetDouble stores a float64 field.
func (rt *Runtime) SetDouble(a heap.Addr, f *klass.Field, v float64) {
	rt.storePrim(a, f.Offset, klass.Float64, math.Float64bits(v))
}

// GetFloat loads a float32 field.
func (rt *Runtime) GetFloat(a heap.Addr, f *klass.Field) float32 {
	return math.Float32frombits(uint32(rt.load(a, f.Offset, klass.Float32)))
}

// SetFloat stores a float32 field.
func (rt *Runtime) SetFloat(a heap.Addr, f *klass.Field, v float32) {
	rt.storePrim(a, f.Offset, klass.Float32, uint64(math.Float32bits(v)))
}

// GetRaw loads the raw bits of any field (for reference fields of arena
// objects, the tagged handle).
func (rt *Runtime) GetRaw(a heap.Addr, f *klass.Field) uint64 {
	return rt.load(a, f.Offset, f.Kind)
}

// SetRaw stores raw bits into any field, applying the write barrier for
// reference fields.
func (rt *Runtime) SetRaw(a heap.Addr, f *klass.Field, v uint64) {
	a = rt.mutable(a)
	rt.Heap.Store(a, f.Offset, f.Kind, v)
	if f.Kind == klass.Ref {
		rt.refBarrier(a)
	}
}

// --- arrays -------------------------------------------------------------------

func (rt *Runtime) elemOff(a heap.Addr, i int) (uint32, klass.Kind) {
	k := rt.KlassOf(a)
	n := rt.ArrayLen(a)
	if i < 0 || i >= n {
		panic("vm: array index out of bounds")
	}
	return rt.Heap.ElemOffset(k.Elem, i), k.Elem
}

// ArrayGetRef loads element i of a reference array.
func (rt *Runtime) ArrayGetRef(a heap.Addr, i int) heap.Addr {
	off, _ := rt.elemOff(a, i)
	return heap.Addr(rt.load(a, off, klass.Ref))
}

// ArraySetRef stores element i of a reference array.
func (rt *Runtime) ArraySetRef(a heap.Addr, i int, v heap.Addr) {
	a = rt.mutable(a)
	off, _ := rt.elemOff(a, i)
	rt.Heap.Store(a, off, klass.Ref, uint64(v))
	rt.refBarrier(a)
}

// ArrayGetLong loads element i of an integer array, sign-extended.
func (rt *Runtime) ArrayGetLong(a heap.Addr, i int) int64 {
	off, kind := rt.elemOff(a, i)
	raw := rt.load(a, off, kind)
	switch kind {
	case klass.Int8:
		return int64(int8(raw))
	case klass.Int16:
		return int64(int16(raw))
	case klass.Int32:
		return int64(int32(raw))
	default:
		return int64(raw)
	}
}

// ArraySetLong stores element i of an integer array (truncating).
func (rt *Runtime) ArraySetLong(a heap.Addr, i int, v int64) {
	off, kind := rt.elemOff(a, i)
	rt.storePrim(a, off, kind, uint64(v))
}

// ArrayGetDouble loads element i of a double array.
func (rt *Runtime) ArrayGetDouble(a heap.Addr, i int) float64 {
	off, _ := rt.elemOff(a, i)
	return math.Float64frombits(rt.load(a, off, klass.Float64))
}

// ArraySetDouble stores element i of a double array.
func (rt *Runtime) ArraySetDouble(a heap.Addr, i int, v float64) {
	off, _ := rt.elemOff(a, i)
	rt.storePrim(a, off, klass.Float64, math.Float64bits(v))
}

// ArrayGetChar loads element i of a char array.
func (rt *Runtime) ArrayGetChar(a heap.Addr, i int) uint16 {
	off, _ := rt.elemOff(a, i)
	return uint16(rt.load(a, off, klass.Char))
}

// ArraySetChar stores element i of a char array.
func (rt *Runtime) ArraySetChar(a heap.Addr, i int, v uint16) {
	off, _ := rt.elemOff(a, i)
	rt.storePrim(a, off, klass.Char, uint64(v))
}

// ArrayLen returns the length of the array at a.
func (rt *Runtime) ArrayLen(a heap.Addr) int {
	if heap.IsArenaAddr(a) {
		return int(rt.load(a, rt.Heap.Layout().OffArrayLen(), klass.Int64))
	}
	return rt.Heap.ArrayLen(a)
}
