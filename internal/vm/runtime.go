// Package vm ties the substrates into a node runtime — the role played by
// one JVM process in the paper: a managed heap, a classloader wired to the
// global type registry (§4.1), a garbage collector, and a typed object
// access API with a card-table write barrier.
package vm

import (
	"errors"
	"fmt"

	"skyway/internal/arena"
	"skyway/internal/fault"
	"skyway/internal/gc"
	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/obs"
	"skyway/internal/registry"
	"skyway/internal/verify"
)

// ErrOOM is returned when an allocation cannot be satisfied even after a
// full collection.
var ErrOOM = errors.New("vm: out of memory")

// Runtime is one simulated JVM instance.
type Runtime struct {
	// Name identifies the node (e.g. "driver", "worker-2") in diagnostics.
	Name string

	Heap *heap.Heap
	GC   *gc.Collector

	// Arena is the node's off-heap region space: received Skyway segments
	// staged there stay relativized and invisible to GC, read through
	// tagged addresses the accessor layer routes (see arena.go).
	Arena *arena.Space

	// Trace is the runtime's observability timeline (one thread row in the
	// Chrome trace): GC pauses, Skyway transfers, and executor tasks on
	// this runtime all land here. Always non-nil; spans are no-ops until
	// tracing is enabled (SKYWAY_TRACE).
	Trace *obs.Tracer

	cp      *klass.Path
	klasses []*klass.Klass // indexed by LID
	byName  map[string]*klass.Klass
	byTID   map[int32]*klass.Klass

	// View is the node's registry view; nil for a detached runtime (then
	// classes get TID -1 and Skyway transfer is unavailable).
	View *registry.View

	hashState uint64

	// fieldUpdates holds the §3.3 post-transfer field update hooks,
	// keyed by class name.
	fieldUpdates map[string][]FieldUpdate

	// ClassesLoaded counts classloading events, for registry statistics.
	ClassesLoaded int
}

// FieldUpdate is a registered post-transfer update (§3.3): after an object
// of the class arrives, fn is invoked to recompute the field's value.
type FieldUpdate struct {
	Field *klass.Field
	Fn    func(rt *Runtime, obj heap.Addr) uint64
}

// Options configures NewRuntime.
type Options struct {
	Name string
	Heap heap.Config
	// Registry connects the runtime to the driver registry; nil leaves the
	// runtime detached.
	Registry registry.Client
	// Verify enables the heap invariant verifier around every collection
	// for this runtime, regardless of the SKYWAY_VERIFY environment
	// variable (which enables it process-wide).
	Verify bool
}

// NewRuntime boots a runtime over the given classpath.
func NewRuntime(cp *klass.Path, opts Options) (*Runtime, error) {
	if opts.Heap.EdenSize == 0 {
		opts.Heap = heap.DefaultConfig()
	}
	rt := &Runtime{
		Name:         opts.Name,
		Heap:         heap.New(opts.Heap),
		Arena:        arena.NewSpace(),
		cp:           cp,
		byName:       make(map[string]*klass.Klass),
		byTID:        make(map[int32]*klass.Klass),
		hashState:    0x9E3779B97F4A7C15,
		fieldUpdates: make(map[string][]FieldUpdate),
	}
	rt.Trace = obs.NewTracer(opts.Name)
	rt.GC = gc.New(rt.Heap, rt)
	rt.GC.Trace = rt.Trace
	if opts.Verify || verify.Enabled() {
		rt.wireVerifier()
	}
	EnsureBuiltins(cp)
	EnsureCollections(cp)
	if opts.Registry != nil {
		v, err := registry.NewView(opts.Registry)
		if err != nil {
			return nil, err
		}
		rt.View = v
	}
	if _, err := rt.LoadClass(StringClass); err != nil {
		return nil, err
	}
	return rt, nil
}

// ClassPath returns the classpath the runtime loads from.
func (rt *Runtime) ClassPath() *klass.Path { return rt.cp }

// --- classloading -----------------------------------------------------------

// LoadClass loads (or returns the already-loaded) klass for name, resolving
// its superclass chain, computing the field layout for this runtime's header
// geometry, and — when attached to a registry — obtaining the global type ID
// and writing it into the klass meta object (Algorithm 1, worker part 2).
func (rt *Runtime) LoadClass(name string) (*klass.Klass, error) {
	if k, ok := rt.byName[name]; ok {
		return k, nil
	}
	var k *klass.Klass
	var err error
	if _, _, isArr := klass.ParseArrayName(name); isArr {
		k, err = klass.ResolveArray(name, rt.Heap.Layout())
		if err != nil {
			return nil, err
		}
	} else {
		def := rt.cp.Lookup(name)
		if def == nil {
			return nil, fmt.Errorf("vm: %s: class %s not found on classpath", rt.Name, name)
		}
		var super *klass.Klass
		if def.Super != "" {
			super, err = rt.LoadClass(def.Super)
			if err != nil {
				return nil, err
			}
		}
		k, err = klass.ResolveLayout(def, super, rt.Heap.Layout())
		if err != nil {
			return nil, err
		}
	}
	k.LID = int32(len(rt.klasses))
	if rt.View != nil {
		tid, err := rt.View.IDFor(name)
		if err != nil {
			return nil, err
		}
		k.TID = tid // WRITETID(metaObj, id)
		rt.byTID[tid] = k
	}
	rt.klasses = append(rt.klasses, k)
	rt.byName[name] = k
	rt.ClassesLoaded++
	return k, nil
}

// MustLoad is LoadClass panicking on error, for statically known schemas.
func (rt *Runtime) MustLoad(name string) *klass.Klass {
	k, err := rt.LoadClass(name)
	if err != nil {
		panic(err)
	}
	return k
}

// KlassAt returns the klass with local ID lid.
func (rt *Runtime) KlassAt(lid int32) *klass.Klass {
	if lid < 0 || int(lid) >= len(rt.klasses) {
		panic(fmt.Sprintf("vm: %s: bad klass LID %d", rt.Name, lid))
	}
	return rt.klasses[lid]
}

// KlassByName returns the loaded klass for name, or nil.
func (rt *Runtime) KlassByName(name string) *klass.Klass { return rt.byName[name] }

// KlassByTID resolves a global type ID to a local klass, loading the class
// by name through the registry if it has not been loaded yet — the §4.1
// "if we encounter an unloaded class ... Skyway instructs the class loader
// to load the missing class" path.
func (rt *Runtime) KlassByTID(tid int32) (*klass.Klass, error) {
	if k, ok := rt.byTID[tid]; ok {
		return k, nil
	}
	if rt.View == nil {
		return nil, fmt.Errorf("vm: %s: no registry view to resolve type ID %d", rt.Name, tid)
	}
	name, err := rt.View.NameFor(tid)
	if err != nil {
		return nil, err
	}
	return rt.LoadClass(name)
}

// KlassOf returns the klass of the live object at a. For an arena-resident
// object the klass word still holds the wire's global type ID (the lazy
// counterpart of absolutization's klass-word rewrite); decode-time
// validation already resolved and loaded every class in the stream, so the
// TID lookup cannot miss on a valid handle.
func (rt *Runtime) KlassOf(a heap.Addr) *klass.Klass {
	if heap.IsArenaAddr(a) {
		reg, rel := rt.arenaObject(a)
		if p := reg.PromotedAddr(rel); p != heap.Null {
			return rt.KlassAt(int32(rt.Heap.KlassWord(p)))
		}
		tid := int32(uint32(rt.load(a, klass.OffKlass, klass.Int64)))
		k, err := rt.KlassByTID(tid)
		if err != nil {
			panic(fmt.Sprintf("vm: %s: arena object %#x has unresolvable type ID %d: %v", rt.Name, uint64(a), tid, err))
		}
		return k
	}
	return rt.KlassAt(int32(rt.Heap.KlassWord(a)))
}

// --- gc.Meta ---------------------------------------------------------------

// ObjectSize implements gc.Meta.
func (rt *Runtime) ObjectSize(a heap.Addr) uint32 {
	k := rt.KlassOf(a)
	if !k.IsArray {
		return k.Size
	}
	return k.InstanceBytes(rt.Heap.ArrayLen(a))
}

// RefSlots implements gc.Meta.
func (rt *Runtime) RefSlots(a heap.Addr, fn func(off uint32)) {
	k := rt.KlassOf(a)
	if k.IsArray {
		if k.Elem != klass.Ref {
			return
		}
		n := rt.Heap.ArrayLen(a)
		base := rt.Heap.Layout().ArrayHeaderSize()
		for i := 0; i < n; i++ {
			fn(base + uint32(i)*8)
		}
		return
	}
	for _, off := range k.RefOffsets {
		fn(off)
	}
}

// --- allocation --------------------------------------------------------------

func (rt *Runtime) allocYoung(size uint32) (heap.Addr, error) {
	// Failpoint: miss the fast path at exactly this safepoint, forcing a
	// collection here (the GC-interaction stress of §4.3); with arg=oom the
	// allocation fails outright instead.
	if fault.Eval(fault.GCAllocFail) {
		if arg, _ := fault.Arg(fault.GCAllocFail); arg == "oom" {
			return heap.Null, fmt.Errorf("%w: %s: injected allocation failure of %d bytes", ErrOOM, rt.Name, size)
		}
	} else if a := rt.Heap.AllocYoung(size); a != heap.Null {
		return a, nil
	}
	if !rt.GC.Scavenge() {
		rt.GC.FullGC()
	}
	if a := rt.Heap.AllocYoung(size); a != heap.Null {
		return a, nil
	}
	rt.GC.FullGC()
	if a := rt.Heap.AllocYoung(size); a != heap.Null {
		return a, nil
	}
	// Objects larger than eden go straight to the old generation.
	if a := rt.Heap.AllocOld(size); a != heap.Null {
		return a, nil
	}
	return heap.Null, fmt.Errorf("%w: %s allocating %d bytes", ErrOOM, rt.Name, size)
}

// New allocates and zero-initializes an instance of k.
func (rt *Runtime) New(k *klass.Klass) (heap.Addr, error) {
	if k.IsArray {
		return heap.Null, fmt.Errorf("vm: New(%s): use NewArray for arrays", k.Name)
	}
	a, err := rt.allocYoung(k.Size)
	if err != nil {
		return heap.Null, err
	}
	rt.Heap.ZeroWords(a, k.Size)
	rt.Heap.SetKlassWord(a, uint64(k.LID))
	return a, nil
}

// NewArray allocates a zeroed array of n elements of array klass k.
func (rt *Runtime) NewArray(k *klass.Klass, n int) (heap.Addr, error) {
	if !k.IsArray {
		return heap.Null, fmt.Errorf("vm: NewArray(%s): not an array klass", k.Name)
	}
	// Widen before multiplying: InstanceBytes computes in uint32, so an
	// attacker-sized n (a decoded wire length) would wrap and yield an
	// undersized allocation whose element writes land out of bounds.
	if n < 0 || uint64(k.Size)+uint64(n)*uint64(k.ElemSize())+klass.WordSize > 1<<32-1 {
		return heap.Null, fmt.Errorf("vm: NewArray(%s): length %d out of range", k.Name, n)
	}
	size := k.InstanceBytes(n)
	a, err := rt.allocYoung(size)
	if err != nil {
		return heap.Null, err
	}
	rt.Heap.ZeroWords(a, size)
	rt.Heap.SetKlassWord(a, uint64(k.LID))
	rt.Heap.SetArrayLen(a, n)
	return a, nil
}

// MustNew is New panicking on OOM; workload code that treats OOM as fatal
// (as Spark executors do) uses this.
func (rt *Runtime) MustNew(k *klass.Klass) heap.Addr {
	a, err := rt.New(k)
	if err != nil {
		panic(err)
	}
	return a
}

// MustNewArray is NewArray panicking on OOM.
func (rt *Runtime) MustNewArray(k *klass.Klass, n int) heap.Addr {
	a, err := rt.NewArray(k, n)
	if err != nil {
		panic(err)
	}
	return a
}

// Pin registers a GC root handle for a.
func (rt *Runtime) Pin(a heap.Addr) *gc.Handle { return rt.GC.NewHandle(a) }

// --- identity hash ------------------------------------------------------------

// HashCode returns the object's identity hashcode, computing and caching it
// in the mark word on first use — exactly the JVM behaviour that makes
// Skyway's header-preserving copy skip receiver-side rehashing. Caching a
// hash in an arena image is identity metadata, not a logical mutation, so
// it does not trigger promotion (mirroring how eager absolutization leaves
// wire mark words in place).
func (rt *Runtime) HashCode(a heap.Addr) uint32 {
	if heap.IsArenaAddr(a) {
		reg, rel := rt.arenaObject(a)
		p := reg.PromotedAddr(rel)
		if p == heap.Null {
			b, err := reg.Resolve(rel+uint64(klass.OffMark), klass.WordSize)
			if err != nil {
				panic(fmt.Sprintf("vm: %s: arena read escapes its segment: %v", rt.Name, err))
			}
			m := heap.LoadBytes(b, 0, klass.Int64)
			if h, ok := heap.MarkHash(m); ok {
				return h
			}
			h := rt.nextHash()
			heap.StoreBytes(b, 0, klass.Int64, heap.MarkWithHash(m, h))
			return h
		}
		a = p
	}
	if h, ok := rt.Heap.HashOf(a); ok {
		return h
	}
	h := rt.nextHash()
	rt.Heap.SetHash(a, h)
	return h
}

// nextHash draws the next identity hash: a splitmix64 step over
// runtime-local state — repeatable per run order, well distributed.
func (rt *Runtime) nextHash() uint32 {
	rt.hashState += 0x9E3779B97F4A7C15
	z := rt.hashState
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return uint32((z ^ (z >> 31)) & 0x7FFFFFFF)
}

// --- field update registration (§3.3) ---------------------------------------

// RegisterUpdate registers a post-transfer field update for className.field.
// The Skyway reader applies it to every received instance of the class.
func (rt *Runtime) RegisterUpdate(className, field string, fn func(rt *Runtime, obj heap.Addr) uint64) error {
	k, err := rt.LoadClass(className)
	if err != nil {
		return err
	}
	f := k.FieldByName(field)
	if f == nil {
		return fmt.Errorf("vm: %s has no field %q", className, field)
	}
	rt.fieldUpdates[className] = append(rt.fieldUpdates[className], FieldUpdate{Field: f, Fn: fn})
	return nil
}

// UpdatesFor returns the registered field updates for klass k, or nil.
func (rt *Runtime) UpdatesFor(k *klass.Klass) []FieldUpdate { return rt.fieldUpdates[k.Name] }
