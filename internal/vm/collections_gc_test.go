package vm

import (
	"testing"

	"skyway/internal/heap"
)

// TestHashMapEachAllocatingCallback locks in the handle-based HashMapEach
// walk. The callback allocates enough to force scavenges mid-iteration, so
// the map, its table, and its nodes all move while the walk is in flight; a
// walk holding raw node addresses across the callback (the pre-handle code)
// reads reused eden memory and loses or corrupts entries.
func TestHashMapEachAllocatingCallback(t *testing.T) {
	rt := smallRuntime(t)
	pk := rt.MustLoad("Point")
	xf := pk.FieldByName("x")
	m, err := rt.NewHashMap(8)
	if err != nil {
		t.Fatal(err)
	}
	mp := rt.Pin(m)
	defer mp.Release()

	const entries = 64
	for i := 0; i < entries; i++ {
		kp := rt.Pin(rt.MustNew(pk))
		rt.SetInt(kp.Addr(), xf, int64(i))
		vp := rt.Pin(rt.MustNew(pk))
		rt.SetInt(vp.Addr(), xf, int64(1000+i))
		if err := rt.HashMapPut(mp.Addr(), kp.Addr(), vp.Addr()); err != nil {
			t.Fatal(err)
		}
		kp.Release()
		vp.Release()
	}

	longArr := rt.MustLoad("long[]")
	seen := make(map[int64]int)
	rt.HashMapEach(mp.Addr(), func(key, value heap.Addr) {
		kx := rt.GetInt(key, xf)
		vx := rt.GetInt(value, xf)
		// Churn eden: with a 64 KiB eden, four 8 KiB arrays per entry force
		// a scavenge every couple of callbacks and overwrite the memory any
		// stale node pointer would still be reading.
		for j := 0; j < 4; j++ {
			rt.MustNewArray(longArr, 1024)
		}
		if vx != kx+1000 {
			t.Fatalf("key %d paired with value %d", kx, vx)
		}
		seen[kx]++
	})
	if len(seen) != entries {
		t.Fatalf("visited %d of %d entries", len(seen), entries)
	}
	for i := int64(0); i < entries; i++ {
		if seen[i] != 1 {
			t.Fatalf("entry %d visited %d times", i, seen[i])
		}
	}
}
