package vm

import (
	"fmt"

	"skyway/internal/arena"
	"skyway/internal/fault"
	"skyway/internal/heap"
	"skyway/internal/klass"
)

// Arena routing: the lazy-absolutization half of the accessor layer.
//
// A tagged arena address (heap.IsArenaAddr) names an object that still lives
// in its received wire image inside an off-heap region — relativized
// references, global type ID in the klass word, untouched by the collector.
// Reads resolve through the region's bounds-checked segment table; reference
// loads re-tag the stored relative address instead of translating it, so
// following a pointer costs one compose, not a table rewrite. The first
// mutation promotes the object into the managed heap (copy-on-write), after
// which the region forwards every access to the promoted copy.

// arenaObject resolves a tagged address to its region and biased relative
// address, failing loudly on a handle that outlived its region.
func (rt *Runtime) arenaObject(a heap.Addr) (*arena.Region, uint64) {
	return rt.Arena.MustRegion(heap.ArenaRegionOf(a)), heap.ArenaRelOf(a)
}

// load is the kind-typed read funnel shared by every accessor: managed
// addresses hit the word slab, arena addresses resolve through the region
// (or its promoted copy), and arena reference slots come back re-tagged.
func (rt *Runtime) load(a heap.Addr, off uint32, kind klass.Kind) uint64 {
	if !heap.IsArenaAddr(a) {
		return rt.Heap.Load(a, off, kind)
	}
	reg, rel := rt.arenaObject(a)
	if p := reg.PromotedAddr(rel); p != heap.Null {
		return rt.Heap.Load(p, off, kind)
	}
	b, err := reg.Resolve(rel+uint64(off), kind.Size())
	if err != nil {
		// Decode-time validation proved every object (and so every field)
		// fits its segment; an escaping read can only be a forged or stale
		// handle, which must not become an out-of-region read.
		panic(fmt.Sprintf("vm: %s: arena read escapes its segment: %v", rt.Name, err))
	}
	v := heap.LoadBytes(b, 0, kind)
	if kind == klass.Ref && v != 0 {
		v = uint64(heap.ComposeArenaAddr(reg.ID(), v))
	}
	return v
}

// mutable returns a managed-heap address for a, promoting an arena-resident
// object on its first mutation. Promotion failure is fatal here for the same
// reason MustNew treats OOM as fatal: the typed setters have no error path,
// and a workload that needs to survive promotion failure uses Promote
// directly.
func (rt *Runtime) mutable(a heap.Addr) heap.Addr {
	if !heap.IsArenaAddr(a) {
		return a
	}
	p, err := rt.Promote(a)
	if err != nil {
		panic(err)
	}
	return p
}

// Promote copies the arena-resident object at a into the managed heap,
// leaving the arena image untouched and forwarding all subsequent access to
// the copy. Idempotent: promoting an already-promoted object returns the
// existing copy. The copy is in exactly the state eager absolutization
// would have produced — local klass word, field updates applied (they were
// applied to the image at validation time) — except that its reference
// slots hold tagged arena addresses instead of chunk addresses: the rest of
// the graph stays lazy.
//
// The copy lands in the same pinned buffer space eager absolutization fills:
// non-moving, registered with the collector as a parsed root, freed when the
// region retires. Allocating there never triggers a collection, which keeps
// the typed setters GC-free for managed addresses — a write barrier is not a
// safepoint.
func (rt *Runtime) Promote(a heap.Addr) (heap.Addr, error) {
	if !heap.IsArenaAddr(a) {
		return a, nil
	}
	reg, rel := rt.arenaObject(a)
	if p := reg.PromotedAddr(rel); p != heap.Null {
		return p, nil
	}
	if err := fault.Inject(fault.ArenaPromoteFail); err != nil {
		return heap.Null, fmt.Errorf("vm: %s: promote %#x: %w", rt.Name, uint64(a), err)
	}
	k := rt.KlassOf(a)
	size := k.Size
	if k.IsArray {
		size = k.InstanceBytes(rt.ArrayLen(a))
	}
	img, err := reg.Resolve(rel, size)
	if err != nil {
		return heap.Null, fmt.Errorf("vm: %s: promote %#x: %w", rt.Name, uint64(a), err)
	}
	dst := rt.Heap.AllocBuffer(size)
	if dst == heap.Null {
		return heap.Null, fmt.Errorf("%w: %s: promoting %d bytes from arena region %d", ErrOOM, rt.Name, size, reg.ID())
	}
	h := rt.Heap
	h.CopyIn(dst, size, img)
	// The image mirrors an eager chunk byte for byte, so the promoted copy
	// needs the same single header fixup absolutization performs: global
	// type ID -> local klass ID. References are re-tagged rather than
	// translated — their targets still live in the region.
	h.SetKlassWord(dst, uint64(k.LID))
	// Walked inline rather than through RefSlots: its callback parameter is a
	// dynamic call the staleaddr call graph must treat as allocating, and
	// this funnel sits under every typed setter.
	retag := func(off uint32) {
		if r := h.Load(dst, off, klass.Ref); r != 0 {
			//skyway:allow writebarrier — the stored value is a tagged arena address, not a young-generation pointer; the card table has nothing to find
			h.Store(dst, off, klass.Ref, uint64(heap.ComposeArenaAddr(reg.ID(), r)))
		}
	}
	if k.IsArray {
		if k.Elem == klass.Ref {
			n := h.ArrayLen(dst)
			base := h.Layout().ArrayHeaderSize()
			for i := 0; i < n; i++ {
				retag(base + uint32(i)*8)
			}
		}
	} else {
		for _, off := range k.RefOffsets {
			retag(off)
		}
	}
	pin := rt.GC.Pin(dst, size)
	pin.Parsed = true
	if winner := reg.SetPromoted(rel, dst, func() { rt.GC.Unpin(pin) }); winner != dst {
		rt.GC.Unpin(pin)
		return winner, nil
	}
	return dst, nil
}
