package vm

import (
	"fmt"

	"skyway/internal/heap"
	"skyway/internal/klass"
)

// Heap-resident collections. HashMap mirrors java.util.HashMap's chained
// table keyed by the objects' cached identity hashcodes. Because Skyway
// copies mark words (where the hashcode lives) verbatim, a transferred
// HashMap's bucket layout remains valid on the receiver; reflective
// serializers allocate fresh objects with fresh identity hashes and must
// reinsert every entry — the rehashing cost §1 and §2 describe.

// Collection class names.
const (
	ObjectClass      = "java.lang.Object"
	HashMapClass     = "java.util.HashMap"
	HashMapNodeClass = "java.util.HashMap$Node"
	ArrayListClass   = "java.util.ArrayList"
)

// EnsureCollections defines the collection classes on cp if absent.
func EnsureCollections(cp *klass.Path) {
	if cp.Lookup(HashMapNodeClass) == nil {
		cp.MustDefine(
			&klass.ClassDef{
				Name: HashMapNodeClass,
				Fields: []klass.FieldDef{
					{Name: "hash", Kind: klass.Int32},
					{Name: "key", Kind: klass.Ref, Class: ObjectClass},
					{Name: "value", Kind: klass.Ref, Class: ObjectClass},
					{Name: "next", Kind: klass.Ref, Class: HashMapNodeClass},
				},
			},
			&klass.ClassDef{
				Name: HashMapClass,
				Fields: []klass.FieldDef{
					{Name: "table", Kind: klass.Ref, Class: HashMapNodeClass + "[]"},
					{Name: "size", Kind: klass.Int32},
				},
			},
			&klass.ClassDef{
				Name: ArrayListClass,
				Fields: []klass.FieldDef{
					{Name: "elementData", Kind: klass.Ref, Class: ObjectClass + "[]"},
					{Name: "size", Kind: klass.Int32},
				},
			},
		)
	}
}

// NewHashMap allocates a HashMap with the given bucket count (rounded up to
// a power of two).
func (rt *Runtime) NewHashMap(buckets int) (heap.Addr, error) {
	EnsureCollections(rt.cp)
	cap := 16
	for cap < buckets {
		cap <<= 1
	}
	mapK, err := rt.LoadClass(HashMapClass)
	if err != nil {
		return heap.Null, err
	}
	tabK, err := rt.LoadClass(HashMapNodeClass + "[]")
	if err != nil {
		return heap.Null, err
	}
	tab, err := rt.NewArray(tabK, cap)
	if err != nil {
		return heap.Null, err
	}
	h := rt.Pin(tab)
	defer h.Release()
	m, err := rt.New(mapK)
	if err != nil {
		return heap.Null, err
	}
	rt.SetRef(m, mapK.FieldByName("table"), h.Addr())
	return m, nil
}

// HashMapPut inserts (key → value) using the key's identity hashcode. An
// existing entry with an identical key object is overwritten.
func (rt *Runtime) HashMapPut(m, key, value heap.Addr) error {
	mapK := rt.KlassOf(m)
	nodeK, err := rt.LoadClass(HashMapNodeClass)
	if err != nil {
		return err
	}
	hash := rt.HashCode(key)

	mh := rt.Pin(m)
	kh := rt.Pin(key)
	vh := rt.Pin(value)
	defer mh.Release()
	defer kh.Release()
	defer vh.Release()

	node, err := rt.New(nodeK) // may GC and move m/key/value
	if err != nil {
		return err
	}
	m, key, value = mh.Addr(), kh.Addr(), vh.Addr()

	tab := rt.GetRef(m, mapK.FieldByName("table"))
	idx := int(hash) & (rt.ArrayLen(tab) - 1)

	// Overwrite an existing identical key.
	for n := rt.ArrayGetRef(tab, idx); n != heap.Null; n = rt.GetRef(n, nodeK.FieldByName("next")) {
		if rt.GetRef(n, nodeK.FieldByName("key")) == key {
			rt.SetRef(n, nodeK.FieldByName("value"), value)
			return nil
		}
	}
	rt.SetInt(node, nodeK.FieldByName("hash"), int64(int32(hash)))
	rt.SetRef(node, nodeK.FieldByName("key"), key)
	rt.SetRef(node, nodeK.FieldByName("value"), value)
	rt.SetRef(node, nodeK.FieldByName("next"), rt.ArrayGetRef(tab, idx))
	rt.ArraySetRef(tab, idx, node)
	rt.SetInt(m, mapK.FieldByName("size"), rt.HashMapLen(m)+1)
	return nil
}

// HashMapGet looks value up by key object identity; the second result is
// false if absent. Correct results after a transfer require the bucket
// layout to match the keys' hashcodes — see HashMapValid.
func (rt *Runtime) HashMapGet(m, key heap.Addr) (heap.Addr, bool) {
	mapK := rt.KlassOf(m)
	nodeK := rt.MustLoad(HashMapNodeClass)
	tab := rt.GetRef(m, mapK.FieldByName("table"))
	hash := rt.HashCode(key)
	idx := int(hash) & (rt.ArrayLen(tab) - 1)
	for n := rt.ArrayGetRef(tab, idx); n != heap.Null; n = rt.GetRef(n, nodeK.FieldByName("next")) {
		if rt.GetRef(n, nodeK.FieldByName("key")) == key {
			return rt.GetRef(n, nodeK.FieldByName("value")), true
		}
	}
	return heap.Null, false
}

// HashMapLen returns the entry count.
func (rt *Runtime) HashMapLen(m heap.Addr) int64 {
	mapK := rt.KlassOf(m)
	return rt.GetInt(m, mapK.FieldByName("size"))
}

// HashMapEach iterates all entries. The callback may allocate — and so may
// trigger a collection that moves the map, its table, and its nodes — so the
// walk roots the map and the current node in handles and re-derives every
// address after each call. The key/value addresses passed to fn are valid
// until fn's own first allocation.
func (rt *Runtime) HashMapEach(m heap.Addr, fn func(key, value heap.Addr)) {
	mapK := rt.KlassOf(m)
	nodeK := rt.MustLoad(HashMapNodeClass)
	tableF := mapK.FieldByName("table")
	keyF := nodeK.FieldByName("key")
	valueF := nodeK.FieldByName("value")
	nextF := nodeK.FieldByName("next")
	mh := rt.Pin(m)
	defer mh.Release()
	nh := rt.Pin(heap.Null)
	defer nh.Release()
	n := rt.ArrayLen(rt.GetRef(mh.Addr(), tableF))
	for i := 0; i < n; i++ {
		tab := rt.GetRef(mh.Addr(), tableF)
		nh.Set(rt.ArrayGetRef(tab, i))
		for nh.Addr() != heap.Null {
			fn(rt.GetRef(nh.Addr(), keyF), rt.GetRef(nh.Addr(), valueF))
			nh.Set(rt.GetRef(nh.Addr(), nextF))
		}
	}
}

// HashMapValid reports whether every entry sits in the bucket its key's
// current identity hashcode selects. True after a Skyway transfer (hashes
// ride along in the mark word); false after a reflective deserialization
// until the structure is rehashed.
func (rt *Runtime) HashMapValid(m heap.Addr) bool {
	mapK := rt.KlassOf(m)
	nodeK := rt.MustLoad(HashMapNodeClass)
	tab := rt.GetRef(m, mapK.FieldByName("table"))
	mask := rt.ArrayLen(tab) - 1
	for i, n := 0, rt.ArrayLen(tab); i < n; i++ {
		for node := rt.ArrayGetRef(tab, i); node != heap.Null; node = rt.GetRef(node, nodeK.FieldByName("next")) {
			key := rt.GetRef(node, nodeK.FieldByName("key"))
			if int(rt.HashCode(key))&mask != i {
				return false
			}
		}
	}
	return true
}

// HashMapRehash rebuilds the bucket table from the keys' current identity
// hashcodes — what a reflective deserializer must do after recreating keys.
// The structure is validated as it is walked (deserializers call this on
// data from the wire, and type confusion must surface as an error, the way
// a ClassCastException would on a JVM).
func (rt *Runtime) HashMapRehash(m heap.Addr) error {
	mapK := rt.KlassOf(m)
	if mapK.Name != HashMapClass {
		return fmt.Errorf("vm: HashMapRehash on a %s", mapK.Name)
	}
	nodeK := rt.MustLoad(HashMapNodeClass)
	tabF := mapK.FieldByName("table")
	tab := rt.GetRef(m, tabF)
	if tab == heap.Null || rt.KlassOf(tab).Name != HashMapNodeClass+"[]" {
		return fmt.Errorf("vm: HashMap table is not a node array")
	}
	cap := rt.ArrayLen(tab)

	// Detach all nodes, then reinsert by current hash.
	var nodes []heap.Addr
	for i := 0; i < cap; i++ {
		for node := rt.ArrayGetRef(tab, i); node != heap.Null; {
			if rt.KlassOf(node) != nodeK {
				return fmt.Errorf("vm: HashMap bucket holds a %s", rt.KlassOf(node).Name)
			}
			next := rt.GetRef(node, nodeK.FieldByName("next"))
			nodes = append(nodes, node)
			node = next
			if len(nodes) > cap*1024 {
				return fmt.Errorf("vm: HashMap bucket chain does not terminate")
			}
		}
		rt.ArraySetRef(tab, i, heap.Null)
	}
	for _, node := range nodes {
		key := rt.GetRef(node, nodeK.FieldByName("key"))
		hash := rt.HashCode(key)
		rt.SetInt(node, nodeK.FieldByName("hash"), int64(int32(hash)))
		idx := int(hash) & (cap - 1)
		rt.SetRef(node, nodeK.FieldByName("next"), rt.ArrayGetRef(tab, idx))
		rt.ArraySetRef(tab, idx, node)
	}
	return nil
}

// NewArrayList allocates an ArrayList with the given capacity.
func (rt *Runtime) NewArrayList(capacity int) (heap.Addr, error) {
	EnsureCollections(rt.cp)
	if capacity < 4 {
		capacity = 4
	}
	listK, err := rt.LoadClass(ArrayListClass)
	if err != nil {
		return heap.Null, err
	}
	arrK, err := rt.LoadClass(ObjectClass + "[]")
	if err != nil {
		return heap.Null, err
	}
	arr, err := rt.NewArray(arrK, capacity)
	if err != nil {
		return heap.Null, err
	}
	h := rt.Pin(arr)
	defer h.Release()
	l, err := rt.New(listK)
	if err != nil {
		return heap.Null, err
	}
	rt.SetRef(l, listK.FieldByName("elementData"), h.Addr())
	return l, nil
}

// ListAdd appends v to the ArrayList at l, growing the backing array as
// needed, and returns the (possibly unchanged) list address.
func (rt *Runtime) ListAdd(l, v heap.Addr) error {
	listK := rt.KlassOf(l)
	dataF := listK.FieldByName("elementData")
	sizeF := listK.FieldByName("size")
	arr := rt.GetRef(l, dataF)
	size := int(rt.GetInt(l, sizeF))
	if size == rt.ArrayLen(arr) {
		lh := rt.Pin(l)
		vh := rt.Pin(v)
		arrK := rt.MustLoad(ObjectClass + "[]")
		bigger, err := rt.NewArray(arrK, size*2)
		if err != nil {
			lh.Release()
			vh.Release()
			return err
		}
		l, v = lh.Addr(), vh.Addr()
		lh.Release()
		vh.Release()
		arr = rt.GetRef(l, dataF)
		for i := 0; i < size; i++ {
			rt.ArraySetRef(bigger, i, rt.ArrayGetRef(arr, i))
		}
		rt.SetRef(l, dataF, bigger)
		arr = bigger
	}
	rt.ArraySetRef(arr, size, v)
	rt.SetInt(l, sizeF, int64(size+1))
	return nil
}

// ListLen returns the ArrayList's element count.
func (rt *Runtime) ListLen(l heap.Addr) int {
	return int(rt.GetInt(l, rt.KlassOf(l).FieldByName("size")))
}

// ListGet returns element i of the ArrayList.
func (rt *Runtime) ListGet(l heap.Addr, i int) heap.Addr {
	listK := rt.KlassOf(l)
	if i < 0 || i >= int(rt.GetInt(l, listK.FieldByName("size"))) {
		panic("vm: list index out of bounds")
	}
	return rt.ArrayGetRef(rt.GetRef(l, listK.FieldByName("elementData")), i)
}
