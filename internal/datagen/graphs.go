package datagen

import "fmt"

// GraphSpec shapes one synthetic graph. The four named specs mirror the
// Table 1 corpora (LiveJournal, Orkut, UK-2005, Twitter-2010): the vertex
// counts are scaled down by a user factor while the published |E|/|V|
// ratios and the social-network degree skew are preserved, which is what
// the Spark workloads are sensitive to.
type GraphSpec struct {
	Name        string
	Description string
	Vertices    int
	AvgDegree   float64
	Seed        uint64
}

// The paper's graph inputs (Table 1), scaled: scale=1.0 yields 1/100 of the
// published vertex counts, keeping runs laptop-sized.
func paperGraphs(scale float64) []GraphSpec {
	s := func(v int) int {
		n := int(float64(v) * scale / 100)
		if n < 1000 {
			n = 1000
		}
		return n
	}
	return []GraphSpec{
		{Name: "LiveJournal", Description: "Social network", Vertices: s(4_800_000), AvgDegree: 69.0 / 4.8, Seed: 41},
		{Name: "Orkut", Description: "Social network", Vertices: s(3_000_000), AvgDegree: 117.0 / 3.0, Seed: 42},
		{Name: "UK-2005", Description: "Web graph", Vertices: s(39_500_000), AvgDegree: 936.0 / 39.5, Seed: 43},
		{Name: "Twitter-2010", Description: "Social network", Vertices: s(41_600_000), AvgDegree: 1500.0 / 41.6, Seed: 44},
	}
}

// PaperGraphs returns the four Table 1 specs at the given scale.
func PaperGraphs(scale float64) []GraphSpec { return paperGraphs(scale) }

// GraphByName returns the named Table 1 spec at the given scale.
func GraphByName(name string, scale float64) (GraphSpec, error) {
	for _, g := range paperGraphs(scale) {
		if g.Name == name {
			return g, nil
		}
	}
	return GraphSpec{}, fmt.Errorf("datagen: unknown graph %q", name)
}

// Graph is an in-memory directed graph in CSR form.
type Graph struct {
	Spec GraphSpec
	N    int
	// Adj[v] lists v's out-neighbours.
	Adj [][]int32
	// M is the edge count.
	M int
}

// Generate materializes the spec with an R-MAT-style recursive generator
// (the standard model for social-graph degree skew).
func (spec GraphSpec) Generate() *Graph {
	n := spec.Vertices
	// Round vertex count up to a power of two for R-MAT, then mod back.
	levels := 0
	for 1<<levels < n {
		levels++
	}
	m := int(float64(n) * spec.AvgDegree)
	rng := NewRNG(spec.Seed)
	const a, b, c = 0.57, 0.19, 0.19 // d = 0.05

	adj := make([][]int32, n)
	edges := 0
	for i := 0; i < m; i++ {
		var u, v int
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left
			case r < a+b:
				v |= 1 << l
			case r < a+b+c:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		u %= n
		v %= n
		if u == v {
			continue
		}
		adj[u] = append(adj[u], int32(v))
		edges++
	}
	return &Graph{Spec: spec, N: n, Adj: adj, M: edges}
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v int) int { return len(g.Adj[v]) }

// MaxDegree returns the maximum out-degree (skew diagnostic).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.Adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// Partition splits vertex IDs round-robin across p partitions, returning
// the vertex lists — how the Spark harness distributes graph state.
func (g *Graph) Partition(p int) [][]int32 {
	parts := make([][]int32, p)
	for v := 0; v < g.N; v++ {
		parts[v%p] = append(parts[v%p], int32(v))
	}
	return parts
}
