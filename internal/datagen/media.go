package datagen

import (
	"fmt"

	"skyway/internal/heap"
	"skyway/internal/klass"
	"skyway/internal/vm"
)

// The JSBS workload (§5.1): media-content objects of roughly 1 KB in JSON
// form, mixing primitive int/long fields with reference fields — a Media
// record with a person list, plus a couple of Image records.

// Media-content class names.
const (
	MediaContentClass = "serializers.MediaContent"
	MediaClass        = "serializers.Media"
	ImageClass        = "serializers.Image"
)

// MediaClasses defines the JSBS schema on cp (idempotent).
func MediaClasses(cp *klass.Path) {
	vm.EnsureBuiltins(cp)
	if cp.Lookup(MediaClass) != nil {
		return
	}
	cp.MustDefine(
		&klass.ClassDef{Name: MediaClass, Fields: []klass.FieldDef{
			{Name: "uri", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "title", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "width", Kind: klass.Int32},
			{Name: "height", Kind: klass.Int32},
			{Name: "format", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "duration", Kind: klass.Int64},
			{Name: "size", Kind: klass.Int64},
			{Name: "bitrate", Kind: klass.Int32},
			{Name: "hasBitrate", Kind: klass.Bool},
			{Name: "persons", Kind: klass.Ref, Class: vm.StringClass + "[]"},
			{Name: "player", Kind: klass.Int32},
			{Name: "copyright", Kind: klass.Ref, Class: vm.StringClass},
		}},
		&klass.ClassDef{Name: ImageClass, Fields: []klass.FieldDef{
			{Name: "uri", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "title", Kind: klass.Ref, Class: vm.StringClass},
			{Name: "width", Kind: klass.Int32},
			{Name: "height", Kind: klass.Int32},
			{Name: "size", Kind: klass.Int32},
		}},
		&klass.ClassDef{Name: MediaContentClass, Fields: []klass.FieldDef{
			{Name: "media", Kind: klass.Ref, Class: MediaClass},
			{Name: "images", Kind: klass.Ref, Class: ImageClass + "[]"},
		}},
	)
}

// MediaClassNames lists every class a media graph can reach, in a fixed
// order usable as a Kryo registration list.
func MediaClassNames() []string {
	return []string{
		MediaContentClass, MediaClass, ImageClass,
		ImageClass + "[]", vm.StringClass, vm.CharArrayClass, vm.StringClass + "[]",
	}
}

// MediaGen builds media-content object graphs on a runtime.
type MediaGen struct {
	rt  *vm.Runtime
	rng *RNG
}

// NewMediaGen creates a generator; the schema must be on the classpath
// (call MediaClasses first or use a shared classpath that includes it).
func NewMediaGen(rt *vm.Runtime, seed uint64) *MediaGen {
	MediaClasses(rt.ClassPath())
	return &MediaGen{rt: rt, rng: NewRNG(seed)}
}

// One allocates one MediaContent graph (a Media with persons plus two
// Images — the canonical JSBS record) and returns a pinned-free address;
// callers pin if they allocate before using it.
func (g *MediaGen) One(i int) (heap.Addr, error) {
	rt := g.rt
	mck := rt.MustLoad(MediaContentClass)
	mk := rt.MustLoad(MediaClass)
	ik := rt.MustLoad(ImageClass)

	newStr := func(s string) (heap.Addr, *vmHandle, error) {
		a, err := rt.NewString(s)
		if err != nil {
			return heap.Null, nil, err
		}
		h := rt.Pin(a)
		return a, &vmHandle{h}, nil
	}
	var pins []*vmHandle
	defer func() {
		for _, p := range pins {
			p.release()
		}
	}()
	pin := func(a heap.Addr) *vmHandle {
		h := &vmHandle{rt.Pin(a)}
		pins = append(pins, h)
		return h
	}

	// Media.
	media, err := rt.New(mk)
	if err != nil {
		return heap.Null, err
	}
	mh := pin(media)
	set := func(obj *vmHandle, k *klass.Klass, field, val string) error {
		s, sh, err := newStr(val)
		if err != nil {
			return err
		}
		pins = append(pins, sh)
		_ = s
		rt.SetRef(obj.addr(), k.FieldByName(field), sh.addr())
		return nil
	}
	if err := set(mh, mk, "uri", fmt.Sprintf("http://javaone.com/keynote_%d.mpg", i)); err != nil {
		return heap.Null, err
	}
	if err := set(mh, mk, "title", "Javaone Keynote"); err != nil {
		return heap.Null, err
	}
	if err := set(mh, mk, "format", "video/mpg4"); err != nil {
		return heap.Null, err
	}
	if err := set(mh, mk, "copyright", "None"); err != nil {
		return heap.Null, err
	}
	rt.SetInt(mh.addr(), mk.FieldByName("width"), 640)
	rt.SetInt(mh.addr(), mk.FieldByName("height"), 480)
	rt.SetLong(mh.addr(), mk.FieldByName("duration"), 18000000)
	rt.SetLong(mh.addr(), mk.FieldByName("size"), 58982400+int64(g.rng.Intn(1<<20)))
	rt.SetInt(mh.addr(), mk.FieldByName("bitrate"), 262144)
	rt.SetBool(mh.addr(), mk.FieldByName("hasBitrate"), true)
	rt.SetInt(mh.addr(), mk.FieldByName("player"), int64(g.rng.Intn(2)))

	// Persons.
	sak := rt.MustLoad(vm.StringClass + "[]")
	persons, err := rt.NewArray(sak, 2)
	if err != nil {
		return heap.Null, err
	}
	ph := pin(persons)
	for j, name := range []string{"Bill Gates", "Steve Jobs"} {
		s, sh, err := newStr(name)
		if err != nil {
			return heap.Null, err
		}
		pins = append(pins, sh)
		_ = s
		rt.ArraySetRef(ph.addr(), j, sh.addr())
	}
	rt.SetRef(mh.addr(), mk.FieldByName("persons"), ph.addr())

	// Images.
	iak := rt.MustLoad(ImageClass + "[]")
	images, err := rt.NewArray(iak, 2)
	if err != nil {
		return heap.Null, err
	}
	iah := pin(images)
	sizes := [2][3]int64{{1024, 768, 0}, {320, 240, 1}}
	for j := 0; j < 2; j++ {
		img, err := rt.New(ik)
		if err != nil {
			return heap.Null, err
		}
		imgH := pin(img)
		if err := set(imgH, ik, "uri", fmt.Sprintf("http://javaone.com/keynote_%s_%d.jpg", []string{"large", "small"}[j], i)); err != nil {
			return heap.Null, err
		}
		if err := set(imgH, ik, "title", "Javaone Keynote"); err != nil {
			return heap.Null, err
		}
		rt.SetInt(imgH.addr(), ik.FieldByName("width"), sizes[j][0])
		rt.SetInt(imgH.addr(), ik.FieldByName("height"), sizes[j][1])
		rt.SetInt(imgH.addr(), ik.FieldByName("size"), sizes[j][2])
		rt.ArraySetRef(iah.addr(), j, imgH.addr())
	}

	mc, err := rt.New(mck)
	if err != nil {
		return heap.Null, err
	}
	rt.SetRef(mc, mck.FieldByName("media"), mh.addr())
	rt.SetRef(mc, mck.FieldByName("images"), iah.addr())
	return mc, nil
}

// Batch allocates n MediaContent graphs, returning handles that the caller
// must release.
func (g *MediaGen) Batch(n int) ([]heap.Addr, func(), error) {
	handles := make([]*vmHandle, 0, n)
	release := func() {
		for _, h := range handles {
			h.release()
		}
	}
	addrs := make([]heap.Addr, n)
	for i := 0; i < n; i++ {
		a, err := g.One(i)
		if err != nil {
			release()
			return nil, nil, err
		}
		h := &vmHandle{g.rt.Pin(a)}
		handles = append(handles, h)
	}
	for i, h := range handles {
		addrs[i] = h.addr()
	}
	return addrs, release, nil
}

// vmHandle narrows gc.Handle for local use.
type vmHandle struct {
	h interface {
		Addr() heap.Addr
		Release()
	}
}

func (v *vmHandle) addr() heap.Addr { return v.h.Addr() }
func (v *vmHandle) release()        { v.h.Release() }
