package datagen

import (
	"strings"
	"testing"
	"testing/quick"

	"skyway/internal/klass"
	"skyway/internal/vm"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Next() == NewRNG(2).Next() {
		t.Error("different seeds collide on first draw")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		if r.Int63() < 0 {
			t.Fatal("Int63 negative")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(3)
	z := NewZipf(r, 1000, 1.05)
	counts := make([]int, 1000)
	for i := 0; i < 20000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] < counts[500]*5 {
		t.Errorf("no heavy head: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestGraphSpecsMatchPaperShapes(t *testing.T) {
	specs := PaperGraphs(1.0)
	if len(specs) != 4 {
		t.Fatalf("%d specs", len(specs))
	}
	// Published |E|/|V| ratios (Table 1).
	wantRatio := map[string]float64{
		"LiveJournal":  69.0 / 4.8,
		"Orkut":        117.0 / 3.0,
		"UK-2005":      936.0 / 39.5,
		"Twitter-2010": 1500.0 / 41.6,
	}
	for _, s := range specs {
		if s.AvgDegree != wantRatio[s.Name] {
			t.Errorf("%s degree %f, want %f", s.Name, s.AvgDegree, wantRatio[s.Name])
		}
	}
}

func TestGraphGeneration(t *testing.T) {
	g := GraphSpec{Name: "t", Vertices: 5000, AvgDegree: 8, Seed: 1}.Generate()
	if g.N != 5000 {
		t.Fatalf("N = %d", g.N)
	}
	ratio := float64(g.M) / float64(g.N)
	if ratio < 6 || ratio > 8.5 {
		t.Errorf("edge ratio %.1f far from requested 8", ratio)
	}
	// Power-law-ish: max degree well above average.
	if g.MaxDegree() < 5*int(ratio) {
		t.Errorf("max degree %d shows no skew", g.MaxDegree())
	}
	// Determinism.
	g2 := GraphSpec{Name: "t", Vertices: 5000, AvgDegree: 8, Seed: 1}.Generate()
	if g2.M != g.M {
		t.Error("same spec generated different graphs")
	}
	// No self loops.
	for v := range g.Adj {
		for _, u := range g.Adj[v] {
			if int(u) == v {
				t.Fatal("self loop")
			}
			if u < 0 || int(u) >= g.N {
				t.Fatal("edge out of range")
			}
		}
	}
}

func TestGraphByName(t *testing.T) {
	if _, err := GraphByName("LiveJournal", 1); err != nil {
		t.Error(err)
	}
	if _, err := GraphByName("nope", 1); err == nil {
		t.Error("unknown graph accepted")
	}
}

func TestGraphPartition(t *testing.T) {
	g := GraphSpec{Name: "t", Vertices: 100, AvgDegree: 2, Seed: 9}.Generate()
	parts := g.Partition(3)
	total := 0
	seen := make(map[int32]bool)
	for _, p := range parts {
		for _, v := range p {
			if seen[v] {
				t.Fatal("vertex in two partitions")
			}
			seen[v] = true
			total++
		}
	}
	if total != 100 {
		t.Errorf("partitioned %d of 100 vertices", total)
	}
}

func TestMediaGenGraphShape(t *testing.T) {
	cp := klass.NewPath()
	MediaClasses(cp)
	rt, err := vm.NewRuntime(cp, vm.Options{Name: "mt"})
	if err != nil {
		t.Fatal(err)
	}
	g := NewMediaGen(rt, 1)
	mc, err := g.One(0)
	if err != nil {
		t.Fatal(err)
	}
	mck := rt.MustLoad(MediaContentClass)
	mk := rt.MustLoad(MediaClass)
	media := rt.GetRef(mc, mck.FieldByName("media"))
	if media == 0 {
		t.Fatal("no media")
	}
	uri := rt.GoString(rt.GetRef(media, mk.FieldByName("uri")))
	if !strings.Contains(uri, "keynote") {
		t.Errorf("uri = %q", uri)
	}
	images := rt.GetRef(mc, mck.FieldByName("images"))
	if rt.ArrayLen(images) != 2 {
		t.Errorf("%d images", rt.ArrayLen(images))
	}
	persons := rt.GetRef(media, mk.FieldByName("persons"))
	if rt.GoString(rt.ArrayGetRef(persons, 0)) != "Bill Gates" {
		t.Error("persons corrupted")
	}
}

func TestMediaBatch(t *testing.T) {
	cp := klass.NewPath()
	MediaClasses(cp)
	rt, err := vm.NewRuntime(cp, vm.Options{Name: "mb"})
	if err != nil {
		t.Fatal(err)
	}
	g := NewMediaGen(rt, 2)
	roots, release, err := g.Batch(50)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if len(roots) != 50 {
		t.Fatalf("%d roots", len(roots))
	}
	mck := rt.MustLoad(MediaContentClass)
	for _, r := range roots {
		if rt.KlassOf(r) != mck {
			t.Fatal("wrong root class")
		}
	}
}

func TestTPCHShape(t *testing.T) {
	db := GenTPCH(1.0, 5)
	if len(db.Regions) != 5 || len(db.Nations) != 25 {
		t.Errorf("dims: %d regions, %d nations", len(db.Regions), len(db.Nations))
	}
	if len(db.LineItems) < 3*len(db.Orders) {
		t.Errorf("lineitems (%d) not ~4x orders (%d)", len(db.LineItems), len(db.Orders))
	}
	if len(db.PartSupps) != 4*len(db.Parts) {
		t.Errorf("partsupp %d != 4x parts %d", len(db.PartSupps), len(db.Parts))
	}
	// Key integrity.
	nCust, nPart, nSupp := int32(len(db.Customers)), int32(len(db.Parts)), int32(len(db.Suppliers))
	for _, o := range db.Orders {
		if o.CustKey < 0 || o.CustKey >= nCust {
			t.Fatal("order custkey out of range")
		}
	}
	returned := 0
	for _, li := range db.LineItems {
		if li.PartKey < 0 || li.PartKey >= nPart || li.SuppKey < 0 || li.SuppKey >= nSupp {
			t.Fatal("lineitem FK out of range")
		}
		if li.ReceiptDate <= li.ShipDate {
			t.Fatal("receipt before shipment")
		}
		if li.ReturnFlag == 'R' {
			returned++
		}
	}
	if returned == 0 {
		t.Error("no returned items; QE would be empty")
	}
	// Determinism.
	db2 := GenTPCH(1.0, 5)
	if len(db2.LineItems) != len(db.LineItems) || db2.LineItems[0] != db.LineItems[0] {
		t.Error("same seed generated different data")
	}
}

func TestTextCorpus(t *testing.T) {
	lines := TextSpec{Lines: 100, WordsPerLine: 7, Vocabulary: 50, Seed: 4}.Generate()
	if len(lines) != 100 {
		t.Fatalf("%d lines", len(lines))
	}
	counts := make(map[string]int)
	for _, l := range lines {
		ws := strings.Fields(l)
		if len(ws) != 7 {
			t.Fatalf("line has %d words", len(ws))
		}
		for _, w := range ws {
			counts[w]++
		}
	}
	if len(counts) < 10 || len(counts) > 50 {
		t.Errorf("vocabulary used: %d", len(counts))
	}
}

// Property: scaled graph specs always have at least the floor vertex count
// and preserve the requested ratio.
func TestGraphScaleQuick(t *testing.T) {
	f := func(scale float64) bool {
		if scale < 0 {
			scale = -scale
		}
		scale = 0.01 + scale/1e17 // keep tiny
		for _, s := range PaperGraphs(scale) {
			if s.Vertices < 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
