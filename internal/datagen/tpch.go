package datagen

import "fmt"

// TPC-H-shaped relational generator (§5.3 substitution for dbgen). Scale
// factor 1.0 here produces roughly 60k lineitems — about 1/100000 of the
// paper's 100 GB input — with the schema, key relationships, and value
// distributions the five queries depend on. Rows are generated as plain Go
// structs; the batch engine materializes them as heap tuples per node.

// TPCHRegion is one REGION row.
type TPCHRegion struct {
	RegionKey int32
	Name      string
}

// TPCHNation is one NATION row.
type TPCHNation struct {
	NationKey int32
	Name      string
	RegionKey int32
}

// TPCHSupplier is one SUPPLIER row.
type TPCHSupplier struct {
	SuppKey   int32
	Name      string
	NationKey int32
	AcctBal   float64
}

// TPCHCustomer is one CUSTOMER row.
type TPCHCustomer struct {
	CustKey    int32
	Name       string
	NationKey  int32
	MktSegment string
	AcctBal    float64
}

// TPCHPart is one PART row.
type TPCHPart struct {
	PartKey int32
	Name    string
	Type    string
	Size    int32
}

// TPCHPartSupp is one PARTSUPP row.
type TPCHPartSupp struct {
	PartKey    int32
	SuppKey    int32
	SupplyCost float64
}

// TPCHOrder is one ORDERS row. Dates are integer days since the epoch of
// the dataset (day 0 = 1992-01-01), spanning ~2500 days like dbgen.
type TPCHOrder struct {
	OrderKey     int32
	CustKey      int32
	OrderStatus  byte
	TotalPrice   float64
	OrderDate    int32
	ShipPriority int32
}

// TPCHLineItem is one LINEITEM row.
type TPCHLineItem struct {
	OrderKey      int32
	PartKey       int32
	SuppKey       int32
	LineNumber    int32
	Quantity      float64
	ExtendedPrice float64
	Discount      float64
	Tax           float64
	ReturnFlag    byte // 'R', 'A', 'N'
	LineStatus    byte // 'O', 'F'
	ShipDate      int32
	CommitDate    int32
	ReceiptDate   int32
}

// TPCH is a generated database.
type TPCH struct {
	Regions   []TPCHRegion
	Nations   []TPCHNation
	Suppliers []TPCHSupplier
	Customers []TPCHCustomer
	Parts     []TPCHPart
	PartSupps []TPCHPartSupp
	Orders    []TPCHOrder
	LineItems []TPCHLineItem
}

// TPCH date span in days (≈1992-01-01 .. 1998-12-01, like dbgen).
const TPCHDays = 2520

var (
	regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	partTypes   = []string{"STANDARD BRUSHED TIN", "ECONOMY ANODIZED STEEL", "PROMO POLISHED COPPER",
		"MEDIUM PLATED BRASS", "LARGE BURNISHED NICKEL", "SMALL PLATED COPPER"}
)

// GenTPCH generates a database at the given scale factor with a fixed seed.
func GenTPCH(sf float64, seed uint64) *TPCH {
	if sf <= 0 {
		sf = 1
	}
	rng := NewRNG(seed)
	db := &TPCH{}

	for i, n := range regionNames {
		db.Regions = append(db.Regions, TPCHRegion{RegionKey: int32(i), Name: n})
	}
	for i := 0; i < 25; i++ {
		db.Nations = append(db.Nations, TPCHNation{
			NationKey: int32(i),
			Name:      fmt.Sprintf("NATION_%02d", i),
			RegionKey: int32(i % 5),
		})
	}
	nSupp := scaleCount(100, sf)
	for i := 0; i < nSupp; i++ {
		db.Suppliers = append(db.Suppliers, TPCHSupplier{
			SuppKey:   int32(i),
			Name:      fmt.Sprintf("Supplier#%09d", i),
			NationKey: int32(rng.Intn(25)),
			AcctBal:   float64(rng.Intn(1100000))/100 - 1000,
		})
	}
	nCust := scaleCount(1500, sf)
	for i := 0; i < nCust; i++ {
		db.Customers = append(db.Customers, TPCHCustomer{
			CustKey:    int32(i),
			Name:       fmt.Sprintf("Customer#%09d", i),
			NationKey:  int32(rng.Intn(25)),
			MktSegment: segments[rng.Intn(len(segments))],
			AcctBal:    float64(rng.Intn(1100000))/100 - 1000,
		})
	}
	nPart := scaleCount(2000, sf)
	for i := 0; i < nPart; i++ {
		db.Parts = append(db.Parts, TPCHPart{
			PartKey: int32(i),
			Name:    fmt.Sprintf("part %d", i),
			Type:    partTypes[rng.Intn(len(partTypes))],
			Size:    int32(1 + rng.Intn(50)),
		})
		// 4 suppliers per part, dbgen-style.
		for j := 0; j < 4; j++ {
			db.PartSupps = append(db.PartSupps, TPCHPartSupp{
				PartKey:    int32(i),
				SuppKey:    int32((i + j*(nSupp/4+1)) % nSupp),
				SupplyCost: float64(100+rng.Intn(99900)) / 100,
			})
		}
	}
	nOrders := scaleCount(15000, sf)
	lineNo := 0
	for i := 0; i < nOrders; i++ {
		od := int32(rng.Intn(TPCHDays - 151))
		o := TPCHOrder{
			OrderKey:     int32(i),
			CustKey:      int32(rng.Intn(nCust)),
			TotalPrice:   0,
			OrderDate:    od,
			ShipPriority: 0,
		}
		nLines := 1 + rng.Intn(7)
		for l := 0; l < nLines; l++ {
			qty := float64(1 + rng.Intn(50))
			price := float64(90000+rng.Intn(110000)) / 100 * qty / 10
			ship := od + int32(1+rng.Intn(121))
			commit := od + int32(30+rng.Intn(61))
			receipt := ship + int32(1+rng.Intn(30))
			rf := byte('N')
			ls := byte('O')
			if int(receipt) <= TPCHDays-170 { // old enough to be final
				ls = 'F'
				if rng.Bool(0.25) {
					rf = 'R'
				} else if rng.Bool(0.33) {
					rf = 'A'
				}
			}
			db.LineItems = append(db.LineItems, TPCHLineItem{
				OrderKey:      o.OrderKey,
				PartKey:       int32(rng.Intn(nPart)),
				SuppKey:       int32(rng.Intn(nSupp)),
				LineNumber:    int32(l + 1),
				Quantity:      qty,
				ExtendedPrice: price,
				Discount:      float64(rng.Intn(11)) / 100,
				Tax:           float64(rng.Intn(9)) / 100,
				ReturnFlag:    rf,
				LineStatus:    ls,
				ShipDate:      ship,
				CommitDate:    commit,
				ReceiptDate:   receipt,
			})
			o.TotalPrice += price
			lineNo++
		}
		if rng.Bool(0.5) {
			o.OrderStatus = 'F'
		} else {
			o.OrderStatus = 'O'
		}
		db.Orders = append(db.Orders, o)
	}
	return db
}

func scaleCount(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 10 {
		n = 10
	}
	return n
}
