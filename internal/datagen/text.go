package datagen

import "fmt"

// Text corpus for WordCount: lines of Zipf-distributed words over a fixed
// vocabulary, matching the heavy-hitter skew of natural text that makes
// WordCount's single shuffle small relative to its input.

// TextSpec shapes a corpus.
type TextSpec struct {
	Lines        int
	WordsPerLine int
	Vocabulary   int
	Seed         uint64
}

// Generate materializes the corpus as one string per line.
func (s TextSpec) Generate() []string {
	if s.WordsPerLine == 0 {
		s.WordsPerLine = 10
	}
	if s.Vocabulary == 0 {
		s.Vocabulary = 10000
	}
	rng := NewRNG(s.Seed)
	zipf := NewZipf(rng, s.Vocabulary, 1.05)
	vocab := make([]string, s.Vocabulary)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("word%05d", i)
	}
	lines := make([]string, s.Lines)
	for i := range lines {
		line := make([]byte, 0, s.WordsPerLine*10)
		for w := 0; w < s.WordsPerLine; w++ {
			if w > 0 {
				line = append(line, ' ')
			}
			line = append(line, vocab[zipf.Sample()]...)
		}
		lines[i] = string(line)
	}
	return lines
}
