// Package datagen provides the deterministic synthetic datasets the
// reproduction substitutes for the paper's inputs: power-law graphs shaped
// like the Table 1 corpora, the JSBS media-content objects (§5.1), a TPC-H
// shaped relational generator (§5.3), and a Zipfian text corpus for
// WordCount. Everything is seeded, so runs are repeatable.
package datagen

import "math"

// RNG is a splitmix64 generator: tiny, fast, stable across Go releases
// (unlike math/rand's unexported algorithm choices).
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed + 0x9E3779B97F4A7C15} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("datagen: Intn with n <= 0")
	}
	return int(r.Next() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Next() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 { return float64(r.Next()>>11) / (1 << 53) }

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Zipf samples from a Zipf-like distribution over [0, n) with exponent s,
// using inverse-CDF over a precomputed table.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler of n ranks with exponent s (s > 0; s≈1 is
// classic word-frequency skew).
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Sample draws one rank.
func (z *Zipf) Sample() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
