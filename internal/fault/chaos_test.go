package fault_test

import (
	"errors"
	"testing"

	"skyway/internal/core"
	"skyway/internal/datagen"
	"skyway/internal/dataflow"
	"skyway/internal/experiments"
	"skyway/internal/fault"
	"skyway/internal/verify"
	"skyway/internal/vm"
)

// The chaos matrix: a real 4-executor Spark pipeline (WordCount over the
// Skyway codec — the full send/receive/absolutize path) is run once per
// catalog failpoint, in a transient and a persistent mode, with the heap
// invariant verifier armed. The invariant under every injection:
//
//   - the job either completes with a digest bit-identical to the
//     fault-free run (the fault was absorbed by a retry or was pure delay),
//   - or fails with a STRUCTURED error (*core.DecodeError,
//     *dataflow.StageAbortError, *fault.Error, or vm.ErrOOM),
//   - and it never panics and never trips the heap verifier.
//
// Wrong answers and corrupted heaps are the two outcomes Skyway's hardened
// decode path exists to rule out; this is the test that says so.

func chaosConfig() experiments.SparkConfig {
	cfg := experiments.DefaultSparkConfig()
	cfg.Workers = 4
	cfg.GraphScale = 0.02
	return cfg
}

func chaosRun(t *testing.T, spec string) (float64, error) {
	t.Helper()
	if err := fault.Configure(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
	g, err := datagen.GraphByName("LiveJournal", chaosConfig().GraphScale)
	if err != nil {
		t.Fatal(err)
	}
	info, runErr := experiments.SparkRunInfo(experiments.WC, g.Generate(), "skyway", chaosConfig())
	return info.Digest, runErr
}

// structuredChaosError reports whether err belongs to the closed set of
// failure shapes the degradation ladder is allowed to surface.
func structuredChaosError(err error) bool {
	if _, ok := core.AsDecodeError(err); ok {
		return true
	}
	var abort *dataflow.StageAbortError
	if errors.As(err, &abort) {
		return true
	}
	var fe *fault.Error
	if errors.As(err, &fe) {
		return true
	}
	return errors.Is(err, vm.ErrOOM)
}

func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	wasOn := verify.SetEnabled(true)
	defer verify.SetEnabled(wasOn)
	fault.Seed(0xC0FFEE)
	defer fault.Seed(0)

	want, err := chaosRun(t, "")
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	modes := []struct {
		name, trigger string
	}{
		{"transient", ":on*times=1"},
		{"persistent", ":1in3"},
	}
	for _, point := range fault.Catalog() {
		for _, mode := range modes {
			point, mode := point, mode
			t.Run(point+"/"+mode.name, func(t *testing.T) {
				got, err := chaosRun(t, point+mode.trigger)
				if err != nil {
					if !structuredChaosError(err) {
						t.Fatalf("unstructured failure under %s%s: %T: %v", point, mode.trigger, err, err)
					}
					t.Logf("%s%s: structured abort: %v", point, mode.trigger, err)
					return
				}
				if got != want {
					t.Fatalf("silent corruption: digest under %s%s = %v, fault-free = %v",
						point, mode.trigger, got, want)
				}
			})
		}
	}
}

// TestChaosSeedDeterminism: the same seed and spec must fire the same
// failpoints the same number of times — chaos runs are replayable.
func TestChaosSeedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos determinism is not a -short test")
	}
	counts := func() int64 {
		fault.Seed(0xDECAF)
		defer fault.Seed(0)
		_, _ = chaosRun(t, fault.DataflowFetchTorn+":1in4")
		return fault.Fired(fault.DataflowFetchTorn)
	}
	a := counts()
	fault.Reset()
	b := counts()
	if a != b || a == 0 {
		t.Fatalf("torn-fetch firings not deterministic: %d then %d", a, b)
	}
}
