package fault

import (
	"errors"
	"testing"
	"time"
)

// configure installs a plan for the test and restores quiet at cleanup.
func configure(t *testing.T, spec string) {
	t.Helper()
	if err := Configure(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(Reset)
}

func TestInactiveByDefault(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("active with no plan")
	}
	if Eval("core.chunk.bitflip") {
		t.Fatal("fired with no plan")
	}
	if err := Inject("core.chunk.bitflip"); err != nil {
		t.Fatalf("inject with no plan: %v", err)
	}
}

func TestOnFiresEveryTime(t *testing.T) {
	configure(t, "p:on")
	for i := 0; i < 5; i++ {
		if !Eval("p") {
			t.Fatalf("eval %d did not fire", i)
		}
	}
	if Fired("p") != 5 {
		t.Fatalf("fired = %d, want 5", Fired("p"))
	}
	if Eval("q") {
		t.Fatal("unconfigured point fired")
	}
}

func TestOffNeverFires(t *testing.T) {
	configure(t, "p:off")
	for i := 0; i < 5; i++ {
		if Eval("p") {
			t.Fatal("off point fired")
		}
	}
}

func TestTimesBoundsFirings(t *testing.T) {
	configure(t, "p:on*times=2")
	fired := 0
	for i := 0; i < 10; i++ {
		if Eval("p") {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestAfterSkipsPrefix(t *testing.T) {
	configure(t, "p:on*after=3")
	var pattern []bool
	for i := 0; i < 6; i++ {
		pattern = append(pattern, Eval("p"))
	}
	want := []bool{false, false, false, true, true, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("eval %d = %v, want %v (pattern %v)", i, pattern[i], want[i], pattern)
		}
	}
}

func TestOneInIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		configure(t, "p:1in4")
		Seed(seed)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, Eval("p"))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at eval %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	var fired int
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("1in4 fired %d/%d times — not probabilistic", fired, len(a))
	}
}

func TestPointsDrawIndependentStreams(t *testing.T) {
	configure(t, "p:1in2;q:1in2")
	Seed(1)
	var pp, qq []bool
	for i := 0; i < 64; i++ {
		pp = append(pp, Eval("p"))
		qq = append(qq, Eval("q"))
	}
	same := true
	for i := range pp {
		if pp[i] != qq[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two points share one schedule")
	}
}

func TestInjectReturnsStructuredError(t *testing.T) {
	configure(t, "p:on*times=1")
	err := Inject("p")
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "p" {
		t.Fatalf("inject = %v, want *fault.Error{p}", err)
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("second inject = %v, want nil (times=1)", err)
	}
}

func TestArgAndDuration(t *testing.T) {
	configure(t, "p:on*arg=3ms;q:on")
	if s, ok := Arg("p"); !ok || s != "3ms" {
		t.Fatalf("arg = %q, %v", s, ok)
	}
	if d := DurationArg("p", time.Second); d != 3*time.Millisecond {
		t.Fatalf("duration = %v", d)
	}
	if d := DurationArg("q", time.Second); d != time.Second {
		t.Fatalf("default duration = %v", d)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"noseparator",
		"p:maybe",
		"p:1in0",
		"p:on*after=x",
		"p:on*times=-1",
		"p:on*bogus=1",
		":on",
	} {
		if err := Configure(bad); err == nil {
			Reset()
			t.Errorf("Configure(%q) accepted", bad)
		}
	}
	Reset()
}

func TestConfigureEmptyClears(t *testing.T) {
	configure(t, "p:on")
	if !Active() {
		t.Fatal("not active")
	}
	if err := Configure(""); err != nil {
		t.Fatal(err)
	}
	if Active() {
		t.Fatal("still active after clear")
	}
}

func TestSnapshotCounts(t *testing.T) {
	configure(t, "p:on*times=2;q:off")
	for i := 0; i < 4; i++ {
		Eval("p")
		Eval("q")
	}
	snap := Snapshot()
	if snap["p"] != 2 || snap["q"] != 0 {
		t.Fatalf("snapshot = %v", snap)
	}
}

func TestCatalogNamesAreUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Catalog() {
		if seen[name] {
			t.Errorf("duplicate catalog name %s", name)
		}
		seen[name] = true
		if err := Configure(name + ":on"); err != nil {
			t.Errorf("catalog name %s does not parse: %v", name, err)
		}
	}
	Reset()
}
