package fault_test

import (
	"testing"

	"skyway/internal/datagen"
	"skyway/internal/experiments"
	"skyway/internal/fault"
	"skyway/internal/verify"
)

// chaosRunArena is chaosRun over the skyway-arena codec: the same 4-executor
// WordCount pipeline, with received segments staged lazily in off-heap
// regions and read through bounds-checked handles.
func chaosRunArena(t *testing.T, spec string) (float64, error) {
	t.Helper()
	if err := fault.Configure(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Reset)
	g, err := datagen.GraphByName("LiveJournal", chaosConfig().GraphScale)
	if err != nil {
		t.Fatal(err)
	}
	info, runErr := experiments.SparkRunInfo(experiments.WC, g.Generate(), "skyway-arena", chaosConfig())
	return info.Digest, runErr
}

// TestChaosMatrixArena runs the chaos invariant over the lazy decode path:
// the fault-free arena digest must be bit-identical to the eager digest
// (lazy absolutization is a pure receive-side policy), and under every
// arena-relevant failpoint the job either reproduces that digest or fails
// with a structured error — never a panic, never silent corruption, never a
// read outside a region.
func TestChaosMatrixArena(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	wasOn := verify.SetEnabled(true)
	defer verify.SetEnabled(wasOn)
	fault.Seed(0xC0FFEE)
	defer fault.Seed(0)

	eager, err := chaosRun(t, "")
	if err != nil {
		t.Fatalf("fault-free eager run: %v", err)
	}
	fault.Reset()
	want, err := chaosRunArena(t, "")
	if err != nil {
		t.Fatalf("fault-free arena run: %v", err)
	}
	if want != eager {
		t.Fatalf("arena digest %v diverges from eager digest %v on the fault-free run", want, eager)
	}

	// The arena failpoints plus the wire/chunk damage points the lazy
	// validation scan must absorb exactly like the eager one.
	points := []string{
		fault.ArenaMapFail,
		fault.ArenaPromoteFail,
		fault.ArenaRegionPrematureFree,
		fault.CoreChunkBitflip,
		fault.CoreChunkTruncate,
		fault.CoreChunkBadTID,
		fault.CoreChunkBadPtr,
		fault.CoreAllocBuffer,
	}
	modes := []struct {
		name, trigger string
	}{
		{"transient", ":on*times=1"},
		{"persistent", ":1in3"},
	}
	for _, point := range points {
		for _, mode := range modes {
			point, mode := point, mode
			t.Run(point+"/"+mode.name, func(t *testing.T) {
				got, err := chaosRunArena(t, point+mode.trigger)
				if err != nil {
					if !structuredChaosError(err) {
						t.Fatalf("unstructured failure under %s%s: %T: %v", point, mode.trigger, err, err)
					}
					t.Logf("%s%s: structured abort: %v", point, mode.trigger, err)
					return
				}
				if got != want {
					t.Fatalf("silent corruption: digest under %s%s = %v, fault-free = %v",
						point, mode.trigger, got, want)
				}
			})
		}
	}
}

// TestArenaFailpointsFire proves the new failpoints sit on live paths: a
// shuffle-heavy arena run under an always-on trigger must actually evaluate
// arena.map.fail and arena.region.premature-free (promote only fires when a
// workload mutates received records, which WordCount does not — its firing
// is covered by core's TestArenaPromoteFailpoint).
func TestArenaFailpointsFire(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is not a -short test")
	}
	fault.Seed(0xC0FFEE)
	defer fault.Seed(0)
	for _, point := range []string{fault.ArenaMapFail, fault.ArenaRegionPrematureFree} {
		point := point
		t.Run(point, func(t *testing.T) {
			_, err := chaosRunArena(t, point+":on*times=1")
			if fault.Fired(point) == 0 {
				t.Fatalf("%s never fired under the arena codec (run err: %v); the failpoint is dead", point, err)
			}
		})
	}
}
