package fault

// The failpoint catalog. Every injection site in the tree uses one of these
// names, so the chaos matrix, the docs, and the call sites cannot drift
// apart. Sites interpret their own firing (drop a connection, stomp a byte,
// pretend an allocation failed); the registry only decides *when*.
const (
	// RegistryDial fails TCPClient dials with an injected error.
	RegistryDial = "registry.dial"
	// RegistryExchangeDrop severs the client connection just before an
	// exchange, exercising the redial/retry path.
	RegistryExchangeDrop = "registry.exchange.drop"
	// RegistryExchangeDelay sleeps (arg duration, default 1ms) before an
	// exchange, exercising the per-exchange deadline.
	RegistryExchangeDelay = "registry.exchange.delay"
	// RegistryExchangeDup duplicates the request frame on the wire, leaving
	// a replayed response buffered on the connection — the failure the
	// exchange nonce exists to catch.
	RegistryExchangeDup = "registry.exchange.dup"

	// CoreWriteFail fails a writer segment flush with an injected error.
	CoreWriteFail = "core.write.fail"
	// CoreChunkTruncate zeroes the tail of a received segment before the
	// checksum check (a torn transfer).
	CoreChunkTruncate = "core.chunk.truncate"
	// CoreChunkBitflip flips one deterministic bit of a received segment
	// before the checksum check.
	CoreChunkBitflip = "core.chunk.bitflip"
	// CoreChunkBadTID overwrites the first object's type ID after the
	// checksum check, exercising the absolutization-time class validation.
	CoreChunkBadTID = "core.chunk.badtid"
	// CoreChunkBadPtr overwrites a reference slot with an out-of-range
	// relative pointer after the checksum check, exercising the
	// absolutization-time bounds validation.
	CoreChunkBadPtr = "core.chunk.badptr"
	// CoreAllocBuffer makes the reader's input-chunk allocation fail once,
	// exercising the buffer-exhaustion decode error.
	CoreAllocBuffer = "core.alloc.buffer"

	// DataflowFetchTorn corrupts the fetched copy of a shuffle block (the
	// stored block stays intact, so a re-fetch can succeed).
	DataflowFetchTorn = "dataflow.fetch.torn"
	// DataflowFetchSlow charges extra modelled read time (arg duration,
	// default 1ms) on a shuffle fetch — a slow peer.
	DataflowFetchSlow = "dataflow.fetch.slow"
	// DataflowTaskDie kills an executor task mid-stage with an injected
	// error, exercising the clean stage-abort path.
	DataflowTaskDie = "dataflow.task.die"

	// NetsimFetchSlow adds the arg duration (default 1ms) of modelled time
	// to a fabric fetch — congestion on the modelled wire.
	NetsimFetchSlow = "netsim.fetch.slow"

	// TransportDial fails a TCP transport dial to a peer block server with
	// an injected error, exercising the pool's retry/backoff path.
	TransportDial = "transport.dial"
	// TransportStreamTorn flips one byte of a received transport data
	// frame before its CRC-32C check — a torn stream, rejected at the
	// framing layer and surfaced as a *core.DecodeError.
	TransportStreamTorn = "transport.stream.torn"
	// TransportPeerSlow stalls the receiver (arg duration, default 1ms)
	// before it acknowledges a transport data frame — a slow peer, which
	// the sender's credit window turns into real backpressure.
	TransportPeerSlow = "transport.peer.slow"

	// GCAllocFail makes an allocation miss its fast path at the chosen
	// safepoint, forcing a collection there; with arg=oom the allocation
	// fails outright with ErrOOM.
	GCAllocFail = "gc.alloc.fail"

	// ArenaMapFail fails an arena region's segment mapping, exercising the
	// decode-time resource error on the off-heap staging path.
	ArenaMapFail = "arena.map.fail"
	// ArenaPromoteFail fails the copy-on-write promotion of an arena
	// object graph into the managed heap, exercising the mutation-path
	// error surface.
	ArenaPromoteFail = "arena.promote.fail"
	// ArenaRegionPrematureFree retires an arena region while its decoder
	// still holds a reference, exercising the use-after-retire guard: the
	// decode must fail with a structured error, never read freed memory.
	ArenaRegionPrematureFree = "arena.region.premature-free"
)

// Catalog lists every registered failpoint name; the chaos matrix iterates
// it, and the docs table is generated from the same order.
func Catalog() []string {
	return []string{
		RegistryDial,
		RegistryExchangeDrop,
		RegistryExchangeDelay,
		RegistryExchangeDup,
		CoreWriteFail,
		CoreChunkTruncate,
		CoreChunkBitflip,
		CoreChunkBadTID,
		CoreChunkBadPtr,
		CoreAllocBuffer,
		DataflowFetchTorn,
		DataflowFetchSlow,
		DataflowTaskDie,
		NetsimFetchSlow,
		TransportDial,
		TransportStreamTorn,
		TransportPeerSlow,
		GCAllocFail,
		ArenaMapFail,
		ArenaPromoteFail,
		ArenaRegionPrematureFree,
	}
}
