// Package fault is the deterministic failpoint registry: named injection
// points threaded through the layers that can actually fail in production
// (registry exchanges, shuffle fetches, the Skyway decode path, allocation
// safepoints) are evaluated against an env-driven configuration, so chaos
// tests and operators can reproduce a specific failure schedule bit for bit.
//
// Configuration comes from the SKYWAY_FAULT environment variable (or
// Configure), in the same spirit as the SKYWAY_VERIFY and SKYWAY_TRACE knobs:
//
//	SKYWAY_FAULT = point ":" spec { ";" point ":" spec }
//	spec         = trigger { "*" modifier }
//	trigger      = "on" | "off" | "1in" N            (fire always / never /
//	                                                  pseudo-randomly with
//	                                                  probability 1/N)
//	modifier     = "after=" N                        (skip the first N hits)
//	             | "times=" N                        (fire at most N times)
//	             | "arg=" value                      (site-specific argument,
//	                                                  e.g. a delay duration)
//
// Example:
//
//	SKYWAY_FAULT='core.chunk.bitflip:1in8*times=3;dataflow.fetch.slow:on*arg=2ms'
//
// The "1inN" trigger is driven by a per-point splitmix64 stream seeded from
// SKYWAY_FAULT_SEED (or Seed) and the point name, so a (spec, seed) pair
// replays the same injection schedule on every run regardless of how other
// points interleave. Evaluation order within a point is its call order, which
// the single-goroutine-per-task execution model keeps deterministic.
//
// Zero cost when disabled: every public evaluation helper first checks one
// atomic bool, so production binaries with SKYWAY_FAULT unset pay a single
// atomic load per failpoint site. The package is stdlib-only (plus the
// in-repo obs counters).
package fault

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skyway/internal/obs"
)

// Injection counters, exported on /metrics.
var (
	ctrInjections = obs.NewCounter("skyway_fault_injections_total", "Failpoint firings across all points.")
	ctrEvals      = obs.NewCounter("skyway_fault_evals_total", "Failpoint evaluations while a fault plan was active.")
)

// tracer carries one span per firing when tracing is enabled.
var tracer = obs.NewTracer("fault")

// Error is the structured error an injected failure surfaces as. Call sites
// that need their own error shape (e.g. core.DecodeError) wrap it.
type Error struct {
	Point string // failpoint name, e.g. "registry.exchange.drop"
}

func (e *Error) Error() string { return "fault: injected failure at " + e.Point }

// point is one configured failpoint.
type point struct {
	name  string
	oneIn uint64 // 0 = always fire, 1<<63 flag for "off"
	off   bool
	after int64  // skip the first `after` would-be firings
	times int64  // fire at most `times` times; <0 = unlimited
	arg   string // site-specific argument

	mu    sync.Mutex
	rng   uint64 // splitmix64 state
	hits  int64  // times the trigger matched (before after/times gating)
	fired int64  // times the point actually fired
}

// plan is an immutable parsed configuration; the active plan is swapped
// atomically so hot-path readers never take a lock to find their point.
type plan struct {
	points map[string]*point
}

var (
	active  atomic.Bool
	current atomic.Pointer[plan]
	seed    atomic.Uint64
)

func init() {
	if v := os.Getenv("SKYWAY_FAULT_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			seed.Store(n)
		}
	}
	if spec := os.Getenv("SKYWAY_FAULT"); spec != "" {
		if err := Configure(spec); err != nil {
			// A malformed plan must not be half-applied silently: fail loud
			// at process start, like a bad flag would.
			panic(fmt.Sprintf("fault: bad SKYWAY_FAULT: %v", err))
		}
	}
}

// Active reports whether any failpoint is configured. Call sites use it (or
// the evaluation helpers, which check it first) to keep disabled runs at one
// atomic load per site.
func Active() bool { return active.Load() }

// Seed reseeds the per-point random streams and resets all counters; tests
// use it to replay a schedule. The default seed is SKYWAY_FAULT_SEED or 0.
func Seed(s uint64) {
	seed.Store(s)
	if p := current.Load(); p != nil {
		for _, pt := range p.points {
			pt.mu.Lock()
			pt.rng = mix(s ^ hashName(pt.name))
			pt.hits, pt.fired = 0, 0
			pt.mu.Unlock()
		}
	}
}

// Configure installs a failpoint plan from a spec string (see the package
// comment for the grammar). An empty spec clears the plan.
func Configure(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		Reset()
		return nil
	}
	p := &plan{points: make(map[string]*point)}
	s := seed.Load()
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, rest, ok := strings.Cut(entry, ":")
		if !ok {
			return fmt.Errorf("fault: %q: want point:spec", entry)
		}
		pt, err := parsePoint(strings.TrimSpace(name), strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		pt.rng = mix(s ^ hashName(pt.name))
		p.points[pt.name] = pt
	}
	current.Store(p)
	active.Store(len(p.points) > 0)
	return nil
}

// Reset clears the plan; all failpoints go quiet.
func Reset() {
	current.Store(nil)
	active.Store(false)
}

func parsePoint(name, spec string) (*point, error) {
	if name == "" {
		return nil, fmt.Errorf("fault: empty point name in %q", spec)
	}
	pt := &point{name: name, times: -1}
	parts := strings.Split(spec, "*")
	trigger := strings.TrimSpace(parts[0])
	switch {
	case trigger == "on" || trigger == "":
		pt.oneIn = 0
	case trigger == "off":
		pt.off = true
	case strings.HasPrefix(trigger, "1in"):
		n, err := strconv.ParseUint(trigger[3:], 10, 32)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("fault: %s: bad trigger %q", name, trigger)
		}
		pt.oneIn = n
	default:
		return nil, fmt.Errorf("fault: %s: unknown trigger %q", name, trigger)
	}
	for _, mod := range parts[1:] {
		key, val, ok := strings.Cut(strings.TrimSpace(mod), "=")
		if !ok {
			return nil, fmt.Errorf("fault: %s: bad modifier %q", name, mod)
		}
		switch key {
		case "after":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: %s: bad after=%q", name, val)
			}
			pt.after = n
		case "times":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("fault: %s: bad times=%q", name, val)
			}
			pt.times = n
		case "arg":
			pt.arg = val
		default:
			return nil, fmt.Errorf("fault: %s: unknown modifier %q", name, mod)
		}
	}
	return pt, nil
}

// hashName is FNV-1a over the point name, mixing the name into the seed so
// distinct points draw independent streams.
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix is the splitmix64 output function; each Eval advances the point's
// state through it, giving a reproducible uniform stream.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// lookup finds the configured point for name, or nil.
func lookup(name string) *point {
	p := current.Load()
	if p == nil {
		return nil
	}
	return p.points[name]
}

// eval decides whether the point fires on this evaluation.
func (pt *point) eval() bool {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.off {
		return false
	}
	if pt.oneIn > 1 {
		pt.rng = mix(pt.rng)
		if pt.rng%pt.oneIn != 0 {
			return false
		}
	}
	pt.hits++
	if pt.hits <= pt.after {
		return false
	}
	if pt.times >= 0 && pt.fired >= pt.times {
		return false
	}
	pt.fired++
	return true
}

// Eval reports whether the named failpoint fires now. The zero-cost path:
// one atomic load when no plan is active.
func Eval(name string) bool {
	if !active.Load() {
		return false
	}
	ctrEvals.Inc()
	pt := lookup(name)
	if pt == nil || !pt.eval() {
		return false
	}
	ctrInjections.Inc()
	if obs.Enabled() {
		tracer.Emit("fault", name, time.Now(), 0)
	}
	return true
}

// Arg returns the configured site-specific argument for name (whether or not
// the point would fire), and whether the point is configured at all.
func Arg(name string) (string, bool) {
	if !active.Load() {
		return "", false
	}
	pt := lookup(name)
	if pt == nil {
		return "", false
	}
	return pt.arg, true
}

// Inject returns a *fault.Error when the named point fires, nil otherwise —
// the one-liner for error-returning failpoints.
func Inject(name string) error {
	if Eval(name) {
		return &Error{Point: name}
	}
	return nil
}

// Sleep fires the named point as a delay: when it fires, the goroutine
// sleeps for the point's arg duration (default 1ms) and Sleep reports true.
func Sleep(name string) bool {
	if !Eval(name) {
		return false
	}
	time.Sleep(DurationArg(name, time.Millisecond))
	return true
}

// DurationArg parses the point's arg as a time.Duration, falling back to
// def when absent or malformed.
func DurationArg(name string, def time.Duration) time.Duration {
	s, ok := Arg(name)
	if !ok || s == "" {
		return def
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return def
	}
	return d
}

// Snapshot returns the per-point firing counts of the active plan — bench
// binaries report it so a faulted run is visibly faulted.
func Snapshot() map[string]int64 {
	p := current.Load()
	if p == nil {
		return nil
	}
	out := make(map[string]int64, len(p.points))
	for name, pt := range p.points {
		pt.mu.Lock()
		out[name] = pt.fired
		pt.mu.Unlock()
	}
	return out
}

// Report writes the firing counts of the active plan to w, sorted by point
// name — bench binaries defer it so a faulted run is visibly faulted in its
// own output, not just slower or wronger.
func Report(w io.Writer) {
	snap := Snapshot()
	if snap == nil {
		return
	}
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\nfault injection report (seed %#x):\n", seed.Load())
	for _, name := range names {
		fmt.Fprintf(w, "  %-28s fired %d\n", name, snap[name])
	}
}

// Fired returns how many times the named point has fired.
func Fired(name string) int64 {
	pt := lookup(name)
	if pt == nil {
		return 0
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	return pt.fired
}
