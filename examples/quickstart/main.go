// Quickstart: transfer an object graph between two managed heaps without
// serialization — the paper's Figure 2 scenario (Date objects parsed from
// strings) reduced to its essence.
package main

import (
	"bytes"
	"fmt"
	"log"

	"skyway"
)

func main() {
	// The cluster classpath: every node shares the same class versions,
	// exactly the assumption real serializers make too (§3.1).
	cp := skyway.NewClassPath(
		&skyway.ClassDef{Name: "Date", Fields: []skyway.FieldDef{
			{Name: "year", Kind: skyway.Ref, Class: "Year4D"},
			{Name: "month", Kind: skyway.Int32},
			{Name: "day", Kind: skyway.Int32},
		}},
		&skyway.ClassDef{Name: "Year4D", Fields: []skyway.FieldDef{
			{Name: "value", Kind: skyway.Int32},
		}},
	)

	// Global type numbering (§4.1): a driver registry assigns every class
	// a cluster-wide integer ID as each runtime loads it.
	reg := skyway.NewInProcRegistry()
	sender, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "sender", Registry: reg.Client()})
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := skyway.NewRuntime(cp, skyway.RuntimeOptions{Name: "receiver", Registry: reg.Client()})
	if err != nil {
		log.Fatal(err)
	}

	// Build a Date → Year4D object graph in the sender's heap.
	dateK := sender.MustLoad("Date")
	yearK := sender.MustLoad("Year4D")
	year := sender.MustNew(yearK)
	sender.SetInt(year, yearK.FieldByName("value"), 2018)
	// The next allocation may scavenge and move the Year4D, so the raw
	// year address goes stale: pin it and re-derive through the handle.
	yh := sender.Pin(year)
	date := sender.MustNew(dateK)
	sender.SetRef(date, dateK.FieldByName("year"), yh.Addr())
	sender.SetInt(date, dateK.FieldByName("month"), 3)
	sender.SetInt(date, dateK.FieldByName("day"), 24)

	hash := sender.HashCode(date)
	fmt.Printf("sender:   Date{%d-%02d-%02d} identity hash %#x\n",
		sender.GetInt(yh.Addr(), yearK.FieldByName("value")),
		sender.GetInt(date, dateK.FieldByName("month")),
		sender.GetInt(date, dateK.FieldByName("day")), hash)
	yh.Release()

	// Transfer: no per-field access, no type strings, no constructors on
	// the far side. Any io.Writer/io.Reader works; here a buffer stands
	// in for the socket.
	var wire bytes.Buffer
	svc := skyway.NewService(sender)
	w := svc.NewWriter(&wire)
	if err := w.WriteObject(date); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wire:     %d bytes (%d objects)\n", wire.Len(), w.Objects)

	r := skyway.NewReader(receiver, &wire)
	remote, err := r.ReadObject()
	if err != nil {
		log.Fatal(err)
	}

	rDateK := receiver.MustLoad("Date")
	rYearK := receiver.MustLoad("Year4D")
	rYear := receiver.GetRef(remote, rDateK.FieldByName("year"))
	rHash, _ := receiver.Heap.HashOf(remote)
	fmt.Printf("receiver: Date{%d-%02d-%02d} identity hash %#x (preserved: %v)\n",
		receiver.GetInt(rYear, rYearK.FieldByName("value")),
		receiver.GetInt(remote, rDateK.FieldByName("month")),
		receiver.GetInt(remote, rDateK.FieldByName("day")),
		rHash, rHash == hash)
}
